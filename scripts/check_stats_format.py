#!/usr/bin/env python3
"""Validate the telemetry dump formats the Session writes for operators:

  dtl-stats.jsonl   one JSON object per line — {"t_us": <int>, "metrics": {...}}
                    with non-decreasing timestamps (the recorder's sample ring)
  dtl-stats.prom    Prometheus text exposition — `# TYPE` comments plus
                    `name{label="x"} value` sample lines with finite values

Both files are hand-rendered in C++ (no serializer dependency), so a refactor
can silently break what a scraper or the evaluation tooling parses. This gate
fails CI when either emitted file stops conforming.

Usage:
  check_stats_format.py --self-test     validator sanity (static-checks CI)
  check_stats_format.py <dir>           validate both dtl-stats.* under <dir>
  check_stats_format.py <file>...       validate files by extension
"""
import json
import math
import os
import re
import sys

PROM_COMMENT_RE = re.compile(r"^#( (TYPE|HELP) [a-zA-Z_:][a-zA-Z0-9_:]* ?.*)?$")
PROM_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" (?P<value>\S+)$")


def check_jsonl(text, name):
    errors = []
    last_t = None
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        return [f"{name}: empty — the recorder captured nothing"]
    for i, line in enumerate(lines, 1):
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"{name}:{i}: invalid JSON: {exc}")
            continue
        if not isinstance(obj, dict):
            errors.append(f"{name}:{i}: expected an object per line")
            continue
        t = obj.get("t_us")
        if not isinstance(t, int) or t < 0:
            errors.append(f"{name}:{i}: missing or non-integer 't_us'")
        elif last_t is not None and t < last_t:
            errors.append(f"{name}:{i}: 't_us' went backwards ({t} < {last_t})")
        else:
            last_t = t
        if not isinstance(obj.get("metrics"), dict):
            errors.append(f"{name}:{i}: missing 'metrics' object")
    return errors


def check_prom(text, name):
    errors = []
    typed = set()    # families with a # TYPE line
    sampled = set()  # families that emitted at least one sample
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        return [f"{name}: empty — nothing exposed"]
    for i, line in enumerate(lines, 1):
        if line.startswith("#"):
            if not PROM_COMMENT_RE.match(line):
                errors.append(f"{name}:{i}: malformed comment: {line!r}")
            elif line.startswith("# TYPE "):
                parts = line.split(" ")
                typed.add(parts[2])
                if parts[3] not in ("counter", "gauge", "histogram", "summary",
                                    "untyped"):
                    errors.append(f"{name}:{i}: unknown metric type {parts[3]!r}")
            continue
        m = PROM_SAMPLE_RE.match(line)
        if not m:
            errors.append(f"{name}:{i}: malformed sample line: {line!r}")
            continue
        try:
            value = float(m.group("value"))
        except ValueError:
            errors.append(f"{name}:{i}: non-numeric value {m.group('value')!r}")
            continue
        if not math.isfinite(value):
            errors.append(f"{name}:{i}: non-finite value {m.group('value')!r}")
        # Histogram series (_bucket/_sum/_count) are typed under the base name.
        family = re.sub(r"_(bucket|sum|count)$", "", m.group("name"))
        sampled.add(m.group("name"))
        sampled.add(family)
    if not typed:
        errors.append(f"{name}: no # TYPE comments — not an exposition dump")
    for fam in sorted(typed):
        if fam not in sampled:
            errors.append(f"{name}: # TYPE {fam} has no sample lines")
    return errors


def check_path(path):
    name = os.path.basename(path)
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as exc:
        return [f"{name}: unreadable: {exc}"]
    if name.endswith(".jsonl"):
        return check_jsonl(text, name)
    if name.endswith(".prom"):
        return check_prom(text, name)
    return [f"{name}: unknown telemetry format (expected .jsonl or .prom)"]


GOOD_JSONL = """\
{"t_us":1000,"metrics":{"counters":{"scan.rows":5},"gauges":{},"histograms":{},"views":{}}}
{"t_us":2000,"metrics":{"counters":{"scan.rows":2},"gauges":{},"histograms":{},"views":{}}}
"""
BAD_JSONL = [
    '{"t_us":1000}\n',                                # no metrics
    '{"metrics":{}}\n',                               # no t_us
    '{"t_us":2000,"metrics":{}}\n{"t_us":1000,"metrics":{}}\n',  # backwards
    'not json\n',
    '',
]
GOOD_PROM = """\
# TYPE dtl_scan_rows counter
dtl_scan_rows 42
# TYPE dtl_maintenance_rounds counter
dtl_maintenance_rounds{label="t"} 3
# TYPE dtl_dualtable_union_read_seconds histogram
dtl_dualtable_union_read_seconds_bucket{label="t",le="0"} 1
dtl_dualtable_union_read_seconds_bucket{label="t",le="+Inf"} 2
dtl_dualtable_union_read_seconds_sum{label="t"} 3
dtl_dualtable_union_read_seconds_count{label="t"} 2
"""
BAD_PROM = [
    "dtl_scan_rows 42\n",                             # no TYPE anywhere
    "# TYPE dtl_scan_rows counter\ndtl_scan_rows nan\n",
    "# TYPE dtl_scan_rows counter\ndtl_scan_rows{broken 42\n",
    "# TYPE dtl_scan_rows counter\n",                 # typed but never sampled
    "",
]


def self_test():
    failures = []
    if check_jsonl(GOOD_JSONL, "good.jsonl"):
        failures.append("valid JSON-lines fixture rejected: "
                        + "; ".join(check_jsonl(GOOD_JSONL, "good.jsonl")))
    for i, bad in enumerate(BAD_JSONL):
        if not check_jsonl(bad, f"bad{i}.jsonl"):
            failures.append(f"invalid JSON-lines fixture {i} accepted")
    if check_prom(GOOD_PROM, "good.prom"):
        failures.append("valid Prometheus fixture rejected: "
                        + "; ".join(check_prom(GOOD_PROM, "good.prom")))
    for i, bad in enumerate(BAD_PROM):
        if not check_prom(bad, f"bad{i}.prom"):
            failures.append(f"invalid Prometheus fixture {i} accepted")
    for f in failures:
        print(f"check_stats_format self-test: {f}", file=sys.stderr)
    print(f"check_stats_format: self-test "
          f"{'FAILED' if failures else 'ok'} "
          f"({len(BAD_JSONL) + len(BAD_PROM) + 2} fixtures)")
    return 1 if failures else 0


def main(argv):
    if len(argv) > 1 and argv[1] == "--self-test":
        return self_test()
    targets = argv[1:] or ["."]
    paths = []
    for t in targets:
        if os.path.isdir(t):
            for name in ("dtl-stats.jsonl", "dtl-stats.prom"):
                paths.append(os.path.join(t, name))
        else:
            paths.append(t)
    failures = []
    for path in paths:
        errors = check_path(path)
        print(f"{'FAIL' if errors else 'ok':4s}  {path}")
        failures.extend(errors)
    for error in failures:
        print(f"  {error}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
