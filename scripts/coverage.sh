#!/usr/bin/env bash
# Line-coverage summary for the test suite.
#
# Builds an instrumented tree (-DDTL_COVERAGE=ON), runs ctest, and prints a
# per-module line-coverage table for src/. Uses gcovr when available;
# otherwise falls back to raw `gcov --json-format` plus a small Python
# aggregator, so the report works in the bare toolchain image.
#
# Usage: scripts/coverage.sh [build-dir]     (default: <repo>/build-cov)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-cov}"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Debug -DDTL_COVERAGE=ON >/dev/null
cmake --build "$BUILD" -j "$(nproc)" >/dev/null
(cd "$BUILD" && ctest -j "$(nproc)" --output-on-failure >/dev/null)

if command -v gcovr >/dev/null 2>&1; then
  gcovr -r "$ROOT" "$BUILD" --filter "$ROOT/src/" --sort-percentage
  exit 0
fi

python3 - "$ROOT" "$BUILD" <<'PYEOF'
import collections
import gzip
import json
import os
import subprocess
import sys

root, build = sys.argv[1], sys.argv[2]
src_prefix = os.path.join(root, "src") + os.sep

# line coverage per source file: file -> {line -> hit?}; union across TUs so
# a line is covered if any test binary executed it.
lines = collections.defaultdict(dict)
for dirpath, _, names in os.walk(build):
    for name in names:
        if not name.endswith(".gcda"):
            continue
        gcda = os.path.join(dirpath, name)
        out = subprocess.run(
            ["gcov", "--stdout", "--json-format", gcda],
            cwd=dirpath, capture_output=True, check=False)
        if out.returncode != 0 or not out.stdout:
            continue
        # --stdout emits one JSON document per object file, possibly gzipped
        # on older gcc; handle both.
        payload = out.stdout
        if payload[:2] == b"\x1f\x8b":
            payload = gzip.decompress(payload)
        for doc in payload.decode("utf-8", "replace").splitlines():
            doc = doc.strip()
            if not doc.startswith("{"):
                continue
            try:
                data = json.loads(doc)
            except json.JSONDecodeError:
                continue
            for f in data.get("files", []):
                path = os.path.normpath(os.path.join(root, f["file"]))
                if not path.startswith(src_prefix):
                    continue
                table = lines[path]
                for ln in f.get("lines", []):
                    n = ln["line_number"]
                    table[n] = table.get(n, False) or ln["count"] > 0

if not lines:
    sys.exit("no .gcda coverage data found under " + build)

per_module = collections.defaultdict(lambda: [0, 0])  # module -> [covered, total]
for path, table in lines.items():
    module = os.path.relpath(path, src_prefix).split(os.sep)[0]
    per_module[module][0] += sum(table.values())
    per_module[module][1] += len(table)

print(f"{'module':<12} {'lines':>7} {'covered':>8} {'percent':>8}")
total_cov = total_all = 0
for module in sorted(per_module):
    cov, all_ = per_module[module]
    total_cov += cov
    total_all += all_
    print(f"{module:<12} {all_:>7} {cov:>8} {100.0 * cov / all_:>7.1f}%")
print(f"{'TOTAL':<12} {total_all:>7} {total_cov:>8} {100.0 * total_cov / total_all:>7.1f}%")
PYEOF
