#!/usr/bin/env python3
"""Schema-validate every BENCH_*.json in a directory.

The bench binaries hand-render their JSON (no serializer dependency), so a
refactor can silently emit something the evaluation plots cannot read. This
gate fails CI when any emitted file is unparseable, empty, contains a
non-finite number, or is missing the fields its consumers index by.

Usage: check_bench_json.py [dir]   (default: current directory)
"""
import glob
import json
import math
import os
import sys

# Per-file required keys. Array-shaped files list the keys of every element;
# object-shaped files map each top-level section to its elements' keys. A
# bench absent from this table still gets the generic checks.
ARRAY_SCHEMAS = {
    "BENCH_snapshot.json": {
        "readers", "writers", "seconds", "selects", "updates",
        "select_qps", "update_qps", "total_qps",
        "snapshots_acquired", "live_generations",
    },
    "BENCH_scan.json": {"workload", "path", "rows", "seconds", "rows_per_sec"},
    "BENCH_point_lookup.json": {
        "path", "rows", "seconds", "lookups", "qps", "speedup_vs_scan",
        "stripes_skipped", "stripes_skipped_bloom", "files_skipped",
        "cache_hits", "cache_misses", "cache_hit_rate",
        "index_lookups", "index_stale_dropped",
    },
    "BENCH_parallel_scan.json": {
        "workload", "workers", "rows", "seconds",
        "wall_speedup", "modeled_speedup",
    },
    "BENCH_observability.json": {
        "workload", "scan", "rows", "rows_per_sec_on", "rows_per_sec_off",
        "overhead_pct", "cost_audit_records",
        "hist_observe_ns", "hist_rotate_ns", "recorder_samples",
    },
}
OBJECT_SCHEMAS = {
    "BENCH_incremental_compact.json": {
        "rounds": {
            "mode", "round", "read_modeled_seconds", "read_wall_seconds",
            "maintenance_modeled_seconds", "read_overlay_rows",
            "rows_rewritten", "attached_bytes", "compacted",
        },
        "summary": {
            "mode", "read_p50", "read_p99", "read_p99_over_p50",
            "maintenance_modeled_total", "rows_rewritten_total",
        },
        "calibration": {
            "gain", "statements", "first_half_mean_error",
            "second_half_mean_error", "edit_cost_scale", "overwrite_cost_scale",
        },
    },
    "BENCH_adaptive_maintenance.json": {
        "rounds": {
            "mode", "round", "burst", "read_modeled_seconds",
            "read_wall_seconds", "maintenance_modeled_seconds", "attached_bytes",
        },
        "summary": {
            "mode", "read_p50", "read_p99", "read_p99_over_p50",
            "maintenance_modeled_total", "rounds", "preview_scans", "skips",
            "incremental_compacts", "triggers_density", "triggers_latency",
            "triggers_bytes",
        },
    },
}


def walk_numbers(node, path, errors):
    if isinstance(node, float) and not math.isfinite(node):
        errors.append(f"{path}: non-finite number {node!r}")
    elif isinstance(node, dict):
        for key, value in node.items():
            walk_numbers(value, f"{path}.{key}", errors)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            walk_numbers(value, f"{path}[{i}]", errors)


def check_elements(elements, required, path, errors):
    if not elements:
        errors.append(f"{path}: empty — a bench that measured nothing")
        return
    for i, element in enumerate(elements):
        if not isinstance(element, dict):
            errors.append(f"{path}[{i}]: expected an object, got {type(element).__name__}")
            continue
        missing = required - element.keys()
        if missing:
            errors.append(f"{path}[{i}]: missing keys {sorted(missing)}")


def check_file(path):
    name = os.path.basename(path)
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{name}: unreadable or invalid JSON: {exc}"]

    walk_numbers(data, name, errors)

    if name in ARRAY_SCHEMAS:
        if not isinstance(data, list):
            errors.append(f"{name}: expected a top-level array")
        else:
            check_elements(data, ARRAY_SCHEMAS[name], name, errors)
    elif name in OBJECT_SCHEMAS:
        if not isinstance(data, dict):
            errors.append(f"{name}: expected a top-level object")
        else:
            for section, required in OBJECT_SCHEMAS[name].items():
                if section not in data:
                    errors.append(f"{name}: missing section {section!r}")
                elif not isinstance(data[section], list):
                    errors.append(f"{name}.{section}: expected an array")
                else:
                    check_elements(data[section], required, f"{name}.{section}", errors)
    elif isinstance(data, (list, dict)) and not data:
        errors.append(f"{name}: empty document")
    return errors


def main():
    directory = sys.argv[1] if len(sys.argv) > 1 else "."
    files = sorted(glob.glob(os.path.join(directory, "BENCH_*.json")))
    if not files:
        print(f"check_bench_json: no BENCH_*.json under {directory}", file=sys.stderr)
        return 1
    failures = []
    for path in files:
        errors = check_file(path)
        status = "FAIL" if errors else "ok"
        print(f"{status:4s}  {path}")
        failures.extend(errors)
    for error in failures:
        print(f"  {error}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
