#!/usr/bin/env python3
"""Repo-invariant lints that clang-tidy cannot express.

Enforced invariants (see DESIGN.md §7):

  1. append-only-fs   The simulated HDFS never grows in-place mutation: the
                      WritableFile surface stays exactly {Append, Sync, Close},
                      and no code anywhere names a positional-write primitive
                      (WriteAt/Truncate/pwrite). This is the paper's core
                      storage constraint — every "update" must rewrite files
                      or go through the attached KV table.
  2. no-raw-new       No raw new/delete expressions outside the skip-list's
                      arena allocator (src/common/skiplist.h). `new` wrapped
                      directly in a smart pointer (the private-constructor
                      factory idiom) is allowed.
  3. no-sleep-locked  In src/fs and src/kv, no thread sleeps while a
                      std::mutex is held (lock_guard/unique_lock/scoped_lock
                      in scope): simulated client latency must be paid with
                      the store available to other threads.
  4. include-hygiene  Headers start with #pragma once, never contain
                      file-scope `using namespace`, and project includes are
                      quote-form src-relative paths (no "..", no .cc).
  5. no-void-discard  Statuses are never swallowed with a bare `(void)call()`
                      cast; DTL_IGNORE_STATUS(st, "reason") is the only
                      sanctioned way to drop one, and it is greppable.
  6. metric-hygiene   Instrument and span names at call sites in src/ come
                      from the registered constexpr constants in
                      src/obs/metric_names.h, never from inline string
                      literals: counter("foo") drifts, counter(kFoo) cannot.
                      (Span/AddNode detail strings — the 2nd argument — stay
                      free-form.) The registry itself must stay well-formed:
                      every declared name is lowercase dot-separated
                      ([a-z0-9_-] segments) and no two constants alias the
                      same string, so the telemetry surface is enumerable
                      from that one header.
  7. no-raw-clock     Outside dtl::Stopwatch (src/common/stopwatch.h) and the
                      obs layer, nothing reads std::chrono clocks directly;
                      all timing flows through the stopwatch so traces,
                      metrics, and benches agree on one monotonic source.
  8. snapshot-reads   In the MVCC layers (src/dualtable, src/exec, src/sql)
                      every read goes through a pinned snapshot: no
                      latest-visible scanner creation (NewScanner /
                      NewCellScanner / NewRowScanner — the *At variants take
                      a KvSnapshot), and MasterTable scan/plan calls must
                      pass a pinned generation as the first argument. The
                      snapshot machinery itself (master_table, attached_table,
                      snapshot.h) and the non-MVCC baselines are exempt.

Usage:  scripts/lint.py [paths...]      (defaults to src/ tests/ bench/ examples/)
Exit status: 0 clean, 1 findings (one line each: path:line: [rule] message).
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

DEFAULT_DIRS = ["src", "tests", "bench", "examples"]

# Rule 1: the only mutating methods WritableFile may declare.
WRITABLE_FILE_ALLOWED = {"Append", "Sync", "Close"}
FORBIDDEN_FS_TOKENS = ["WriteAt(", "Truncate(", "truncate(", "pwrite(", "PWrite("]

# Rule 2 allowances: the skip-list arena, and `new` wrapped in a smart pointer
# on the same or one of the two preceding lines (multi-line factory calls).
RAW_NEW_ALLOWED_FILES = {"src/common/skiplist.h"}
SMART_PTR_RE = re.compile(r"(_ptr<|make_unique|make_shared)")
NEW_EXPR_RE = re.compile(r"(^|[^\w.])new\b(?!\s*\()")  # `new T`, not `operator new(`
DELETE_EXPR_RE = re.compile(r"(^|[^\w.])delete\b(\s*\[\s*\])?\s")

LOCK_DECL_RE = re.compile(r"\b(?:std::)?(lock_guard|unique_lock|scoped_lock)\s*<")
SLEEP_RE = re.compile(r"\bsleep_(for|until)\s*\(")

PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\b")
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\b")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(["<])([^">]+)[">]')

VOID_DISCARD_RE = re.compile(r"\(void\)\s*[\w:.>-]*\w\s*\(")

# Rule 6: registration/span call sites whose NAME argument is a raw string
# literal instead of an obs::names constant. The Span pattern anchors on the
# 2-arg name position (tracer, "name"); AddNode/AddLeaf anchor on the 1st
# argument, so free-form detail strings in later positions stay legal.
METRIC_LITERAL_RES = [
    re.compile(r"(?:->|\.)\s*(?:counter|gauge|histogram)\s*\(\s*\""),
    re.compile(r"\bRegisterView\s*\(\s*\""),
    re.compile(r"\bAddNode\s*\(\s*\""),
    re.compile(r"\bAddLeaf\s*\(\s*\""),
    re.compile(r"\bSpan\s+\w+\s*\(\s*[^,()]+,\s*\""),
]
METRIC_HYGIENE_EXEMPT = ("src/obs/",)  # the layer that defines the names

# Rule 6b: the declaration side of metric hygiene. Matches the one sanctioned
# declaration form in metric_names.h (possibly wrapped across lines).
METRIC_NAMES_HEADER = "src/obs/metric_names.h"
METRIC_DECL_RE = re.compile(
    r'inline\s+constexpr\s+const\s+char\*\s+(k\w+)\s*=\s*"([^"]*)"\s*;')
METRIC_NAME_FORMAT_RE = re.compile(r"^[a-z][a-z0-9_-]*(\.[a-z0-9_-]+)*$")

# Rule 7: direct chrono clock reads. Stopwatch is the one sanctioned reader.
RAW_CLOCK_RE = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\b")
RAW_CLOCK_EXEMPT = ("src/common/stopwatch.h", "src/obs/")

# Rule 8: latest-visible reads are banned in the MVCC layers. The snapshot
# machinery itself — the files that *implement* pinning and the latest-visible
# conveniences kept for the non-MVCC baselines — is exempt, as are the
# baselines and the KV store (its latest-visible scanners are the attached
# table's implementation detail, wrapped before the MVCC layers see them).
SNAPSHOT_GUARDED_DIRS = ("src/dualtable/", "src/exec/", "src/sql/")
SNAPSHOT_EXEMPT_FILES = {
    "src/dualtable/snapshot.h",
    "src/dualtable/master_table.h",
    "src/dualtable/master_table.cc",
    "src/dualtable/attached_table.h",
    "src/dualtable/attached_table.cc",
}
# Latest-visible scanner creators; the sanctioned forms end in ...At( and
# take an explicit KvSnapshot, so they do not match.
LATEST_SCANNER_RE = re.compile(r"\b(NewScanner|NewCellScanner|NewRowScanner)\s*\(")
# MasterTable scan/plan entry points: the first argument must be a pinned
# generation (the generation-less overloads pin CurrentGeneration() per call,
# which tears under a racing COMPACT).
MASTER_SCAN_RE = re.compile(
    r"\b(NewScanIterator|NewFileScanIterator|NewBatchScanIterator|"
    r"NewFileBatchScanIterator|PlanMorsels|NewMorselBatchScanIterator)\s*\(")
PINNED_ARG_RE = re.compile(r"gen|snapshot", re.I)


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


def strip_comments_only(text: str) -> str:
    """Blanks comments but KEEPS string literals (for literal-name lints)."""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
            elif c == "'":
                state = "char"
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
            out.append(c if c == "\n" else " ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append(text[i:i + 2])
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(c)
        i += 1
    return "".join(out)


def rel(path: Path) -> str:
    try:
        return str(path.relative_to(REPO))
    except ValueError:
        return str(path)


def check_writable_file_surface(findings):
    """Rule 1a: WritableFile declares no mutators beyond Append/Sync/Close."""
    path = REPO / "src/fs/filesystem.h"
    text = strip_comments_and_strings(path.read_text())
    m = re.search(r"class WritableFile\s*{(.*?)\n};", text, re.S)
    if not m:
        findings.append((rel(path), 1, "append-only-fs", "cannot locate class WritableFile"))
        return
    body = m.group(1)
    for lineno_off, line in enumerate(body.splitlines()):
        decl = re.match(r"\s*Status\s+(\w+)\s*\(", line)
        if decl and decl.group(1) not in WRITABLE_FILE_ALLOWED:
            lineno = text[: m.start(1)].count("\n") + 1 + lineno_off
            findings.append((rel(path), lineno, "append-only-fs",
                             f"WritableFile::{decl.group(1)} is not in the append-only "
                             f"surface {sorted(WRITABLE_FILE_ALLOWED)}"))


def check_metric_name_registry(findings):
    """Rule 6b: metric_names.h itself is well-formed. Every declared name
    follows the naming scheme (lowercase dot-separated; hyphens only inside
    span/operator segments), and no two constants alias one string — an alias
    silently splits a logical series across two identifiers."""
    path = REPO / METRIC_NAMES_HEADER
    text = path.read_text()
    rp = rel(path)
    seen = {}
    for m in METRIC_DECL_RE.finditer(text):
        ident, value = m.groups()
        lineno = text[: m.start()].count("\n") + 1
        if not METRIC_NAME_FORMAT_RE.match(value):
            findings.append((rp, lineno, "metric-hygiene",
                             f'{ident} = "{value}" violates the naming scheme '
                             "(lowercase, dot-separated [a-z0-9_-] segments)"))
        if value in seen:
            findings.append((rp, lineno, "metric-hygiene",
                             f'{ident} aliases "{value}", already declared as '
                             f"{seen[value]}"))
        else:
            seen[value] = ident
    if not seen:
        findings.append((rp, 1, "metric-hygiene",
                         "no metric-name declarations parsed — the declaration "
                         "form changed under the lint"))


def check_file(path: Path, findings):
    raw = path.read_text()
    text = strip_comments_and_strings(raw)
    lines = text.splitlines()
    rp = rel(path)
    is_header = path.suffix == ".h"
    in_fs_kv = rp.startswith(("src/fs/", "src/kv/"))

    # Rule 1b: no positional-write primitives anywhere.
    for i, line in enumerate(lines, 1):
        for tok in FORBIDDEN_FS_TOKENS:
            if tok in line:
                findings.append((rp, i, "append-only-fs",
                                 f"'{tok.rstrip('(')}' suggests in-place file mutation; "
                                 "the simulated HDFS is append-only"))

    # Rule 2: raw new/delete.
    if rp not in RAW_NEW_ALLOWED_FILES:
        for i, line in enumerate(lines, 1):
            if NEW_EXPR_RE.search(line):
                context = " ".join(lines[max(0, i - 3):i])
                if not SMART_PTR_RE.search(context):
                    findings.append((rp, i, "no-raw-new",
                                     "raw `new` outside a smart-pointer wrapper "
                                     "(arena allocation lives in src/common/skiplist.h)"))
            m = DELETE_EXPR_RE.search(line)
            if m and not re.search(r"=\s*delete\b", line):
                findings.append((rp, i, "no-raw-new",
                                 "raw `delete` expression (only the skip-list arena "
                                 "manages raw memory)"))

    # Rule 3: no sleep while a lock is in scope (fs/kv only).
    if in_fs_kv:
        depth = 0
        lock_depths = []  # brace depths at which a lock was declared
        for i, line in enumerate(lines, 1):
            if LOCK_DECL_RE.search(line):
                lock_depths.append(depth)
            if SLEEP_RE.search(line) and lock_depths:
                findings.append((rp, i, "no-sleep-locked",
                                 "sleeping while a mutex is held; pay simulated "
                                 "latency after releasing the lock"))
            for ch in line:
                if ch == "{":
                    depth += 1
                elif ch == "}":
                    depth -= 1
                    while lock_depths and lock_depths[-1] >= depth:
                        lock_depths.pop()

    # Rule 4: include hygiene.
    if is_header:
        for i, line in enumerate(lines, 1):
            if line.strip():
                if not PRAGMA_ONCE_RE.match(line):
                    findings.append((rp, i, "include-hygiene",
                                     "headers must start with #pragma once"))
                break
        for i, line in enumerate(lines, 1):
            if USING_NAMESPACE_RE.match(line):
                findings.append((rp, i, "include-hygiene",
                                 "file-scope `using namespace` in a header"))
    for i, line in enumerate(lines, 1):
        m = INCLUDE_RE.match(line)
        if not m:
            continue
        form, inc = m.groups()
        if inc.endswith(".cc"):
            findings.append((rp, i, "include-hygiene", "never #include a .cc file"))
        if form == '"':
            if inc.startswith(".."):
                findings.append((rp, i, "include-hygiene",
                                 "relative '..' include; use an src-rooted path"))
            elif not (REPO / "src" / inc).exists() and not (path.parent / inc).exists():
                findings.append((rp, i, "include-hygiene",
                                 f'"{inc}" does not resolve under src/'))

    # Rules 6/7 look at comment-stripped text that KEEPS string literals,
    # since both key off quoted call arguments / clock spellings.
    code_lines = strip_comments_only(raw).splitlines()

    # Rule 6: instrument/span names in src/ must be obs::names constants.
    if rp.startswith("src/") and not rp.startswith(METRIC_HYGIENE_EXEMPT):
        for i, line in enumerate(code_lines, 1):
            for pattern in METRIC_LITERAL_RES:
                if pattern.search(line):
                    findings.append((rp, i, "metric-hygiene",
                                     "metric/span name is an inline string literal; "
                                     "use a constant from src/obs/metric_names.h"))
                    break

    # Rule 7: no direct chrono clock reads outside the stopwatch / obs layer.
    if not rp.startswith(RAW_CLOCK_EXEMPT):
        for i, line in enumerate(code_lines, 1):
            if RAW_CLOCK_RE.search(line):
                findings.append((rp, i, "no-raw-clock",
                                 "raw std::chrono clock read; time everything "
                                 "through dtl::Stopwatch (src/common/stopwatch.h)"))

    # Rule 8: in the MVCC layers, reads go through a pinned snapshot.
    if rp.startswith(SNAPSHOT_GUARDED_DIRS) and rp not in SNAPSHOT_EXEMPT_FILES:
        for i, line in enumerate(lines, 1):
            if LATEST_SCANNER_RE.search(line):
                findings.append((rp, i, "snapshot-reads",
                                 "latest-visible scanner in an MVCC layer; use the "
                                 "...At( variant with a pinned KvSnapshot"))
            for m in MASTER_SCAN_RE.finditer(line):
                # The pinned-generation first argument may wrap; scan the call
                # text across up to three lines for the gen/snapshot token.
                call = " ".join(lines[i - 1:i + 2])[m.start():]
                first_arg = call.split(",", 1)[0]
                if not PINNED_ARG_RE.search(first_arg):
                    findings.append((rp, i, "snapshot-reads",
                                     f"{m.group(1)} without a pinned generation; "
                                     "pass snapshot->generation so a racing "
                                     "COMPACT cannot tear the scan"))

    # Rule 5: no (void)-discarded calls; DTL_IGNORE_STATUS is the audit trail.
    if rp != "src/common/status.h":  # the macro's own definition
        for i, line in enumerate(lines, 1):
            if VOID_DISCARD_RE.search(line):
                findings.append((rp, i, "no-void-discard",
                                 "discarding a call result with (void); use "
                                 'DTL_IGNORE_STATUS(st, "reason") for Status, or '
                                 "consume the value"))


def main(argv):
    targets = argv[1:] or DEFAULT_DIRS
    files = []
    for t in targets:
        p = (REPO / t) if not Path(t).is_absolute() else Path(t)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.h")))
            files.extend(sorted(p.rglob("*.cc")))
        elif p.suffix in (".h", ".cc") and p.exists():
            files.append(p)

    findings = []
    check_writable_file_surface(findings)
    check_metric_name_registry(findings)
    for f in files:
        check_file(f, findings)

    for path, line, rule, msg in findings:
        print(f"{path}:{line}: [{rule}] {msg}")

    ignores = 0
    for f in files:
        ignores += f.read_text().count("DTL_IGNORE_STATUS(")
    print(f"lint.py: {len(files)} files, {len(findings)} finding(s), "
          f"{ignores} DTL_IGNORE_STATUS site(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
