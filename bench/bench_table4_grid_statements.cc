// Paper Table IV: the eight representative statements extracted from the
// line-loss and low-voltage calculation modules (U#1-U#4 updates at ratios
// 0.1%-5%, D#1-D#4 deletes at ratios 0.01%-5%), run on Hive and on
// DualTable with the cost model, reporting the improvement percentage
// exactly as the paper's table does ((hive/dual) x 100%).
//
// Shape to reproduce: DualTable wins every statement by a large factor at
// these small modification ratios, with the biggest wins at the smallest
// ratios (paper: 173% .. 976%).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"

namespace {

using dtl::bench::Env;
using dtl::bench::MakeGridTableIII;
using dtl::bench::RunSql;

void RunComparison() {
  std::printf("== Reproduction of paper Table IV: real State Grid statements ==\n");
  std::printf("%-5s %-8s %9s %12s %12s %12s %6s\n", "Stmt", "ratio", "rows",
              "Hive (ms)", "Dual (ms)", "improvement", "plan");

  // Fresh environments per statement so statements do not interfere.
  for (const auto& stmt : dtl::workload::TableIVStatements()) {
    Env hive = MakeGridTableIII("hive");
    Env dual = MakeGridTableIII("dualtable");
    auto hive_stats = RunSql(&hive, stmt.sql);
    auto dual_stats = RunSql(&dual, stmt.sql);
    double improvement = 100.0 * hive_stats.seconds / std::max(1e-9, dual_stats.seconds);
    std::printf("%-5s %7.2f%% %9llu %12.2f %12.2f %11.0f%% %6s\n", stmt.id.c_str(),
                stmt.ratio * 100, static_cast<unsigned long long>(dual_stats.affected_rows),
                hive_stats.seconds * 1e3, dual_stats.seconds * 1e3, improvement,
                dual_stats.plan.c_str());
  }
  std::printf("(paper reports improvements of 311/173/819/976/206/216/423/478%%)\n\n");
}

/// Registered benchmark: one statement pair for the harness output.
void BM_Table4_Statement(benchmark::State& state, const std::string& kind, int index) {
  auto statements = dtl::workload::TableIVStatements();
  const auto& stmt = statements[static_cast<size_t>(index)];
  for (auto _ : state) {
    Env env = MakeGridTableIII(kind);
    auto stats = RunSql(&env, stmt.sql);
    state.SetIterationTime(stats.seconds);
    state.counters["model_s"] = stats.modeled_seconds;
    state.counters["rows_changed"] = static_cast<double>(stats.affected_rows);
  }
  state.SetLabel(stmt.id);
}

void RegisterAll() {
  auto statements = dtl::workload::TableIVStatements();
  for (int i = 0; i < static_cast<int>(statements.size()); ++i) {
    for (const char* kind : {"hive", "dualtable"}) {
      std::string name = "BM_Table4/" + statements[i].id + "/" + kind;
      benchmark::RegisterBenchmark(name.c_str(),
                                   [kind, i](benchmark::State& state) {
                                     BM_Table4_Statement(state, kind, i);
                                   })
          ->Unit(benchmark::kMillisecond)
          ->UseManualTime()
          ->Iterations(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  dtl::bench::ParseScaleFlag(&argc, argv);
  RunComparison();
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
