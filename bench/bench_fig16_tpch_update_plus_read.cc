// Paper Fig. 16: update-plus-successive-read total on TPC-H lineitem, "the
// most realistic case, where updates are performed and then the updated
// data set is analyzed". Series: DualTable-EDIT (+UnionRead), Hive (+read),
// DualTable cost model (+read). The crossover sits slightly below Fig. 13's
// because of the extra UnionRead merging cost.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using dtl::bench::Env;
using dtl::bench::MakeTpch;
using dtl::bench::PlanMode;
using dtl::bench::RunSql;

std::string UpdateSql(int percent) {
  return "UPDATE lineitem SET l_discount = 0.99 WHERE " +
         dtl::workload::LineitemRatioPredicate(percent / 100.0) + " WITH RATIO " +
         std::to_string(percent / 100.0);
}

const char kScanSql[] =
    "SELECT COUNT(*), SUM(l_quantity), SUM(l_discount) FROM lineitem";

void RunUpdatePlusRead(benchmark::State& state, const std::string& kind, PlanMode mode) {
  const int percent = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Env env = MakeTpch(kind, mode);
    auto update = RunSql(&env, UpdateSql(percent));
    auto read = RunSql(&env, kScanSql);
    state.SetIterationTime(update.seconds + read.seconds);
    state.counters["model_s"] = update.modeled_seconds + read.modeled_seconds;
    state.counters["plan_edit"] = update.plan == "EDIT" ? 1 : 0;
  }
  state.SetLabel(std::to_string(percent) + "%");
}

void BM_Fig16_DualTableEditPlusUnionRead(benchmark::State& state) {
  RunUpdatePlusRead(state, "dualtable", PlanMode::kForceEdit);
}
void BM_Fig16_HivePlusRead(benchmark::State& state) {
  RunUpdatePlusRead(state, "hive", PlanMode::kCostModel);
}
void BM_Fig16_DualTablePlusRead(benchmark::State& state) {
  RunUpdatePlusRead(state, "dualtable", PlanMode::kCostModel);
}

void RatioArgs(benchmark::internal::Benchmark* bench) {
  for (int percent : {1, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50}) bench->Arg(percent);
  bench->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
}

}  // namespace

BENCHMARK(BM_Fig16_DualTableEditPlusUnionRead)->Apply(RatioArgs);
BENCHMARK(BM_Fig16_HivePlusRead)->Apply(RatioArgs);
BENCHMARK(BM_Fig16_DualTablePlusRead)->Apply(RatioArgs);

int main(int argc, char** argv) {
  dtl::bench::ParseScaleFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
