// Ablation: COMPACT policy. The paper notes "the more data is in the
// Attached Table, the higher the cost of the UNION READ" and that COMPACT
// "can be scheduled to off-line hours". This bench quantifies both sides:
// read cost as the attached table grows, the one-time cost of COMPACT, and
// the read cost afterwards — i.e. how many subsequent reads amortize a
// compaction at each attached size.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "dualtable/dual_table.h"

namespace {

using dtl::bench::Env;
using dtl::bench::MakeTpch;
using dtl::bench::PlanMode;
using dtl::bench::RunSql;

std::string UpdateSql(int percent) {
  return "UPDATE lineitem SET l_discount = 0.99 WHERE " +
         dtl::workload::LineitemRatioPredicate(percent / 100.0) + " WITH RATIO " +
         std::to_string(percent / 100.0);
}

const char kScanSql[] = "SELECT COUNT(*), SUM(l_discount) FROM lineitem";

void BM_ReadWithAttached(benchmark::State& state) {
  const int percent = static_cast<int>(state.range(0));
  Env env = MakeTpch("dualtable", PlanMode::kForceEdit);
  if (percent > 0) RunSql(&env, UpdateSql(percent));
  for (auto _ : state) {
    auto stats = RunSql(&env, kScanSql);
    state.SetIterationTime(stats.seconds);
  }
  state.SetLabel("attached=" + std::to_string(percent) + "%");
}

void BM_CompactCost(benchmark::State& state) {
  const int percent = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Env env = MakeTpch("dualtable", PlanMode::kForceEdit);
    RunSql(&env, UpdateSql(percent));
    dtl::Stopwatch watch;
    auto compact = env.session->Execute("COMPACT TABLE lineitem");
    if (!compact.ok()) state.SkipWithError(compact.status().ToString().c_str());
    state.SetIterationTime(watch.ElapsedSeconds());
  }
  state.SetLabel("attached=" + std::to_string(percent) + "%");
}

void BM_ReadAfterCompact(benchmark::State& state) {
  const int percent = static_cast<int>(state.range(0));
  Env env = MakeTpch("dualtable", PlanMode::kForceEdit);
  RunSql(&env, UpdateSql(percent));
  auto compact = env.session->Execute("COMPACT TABLE lineitem");
  if (!compact.ok()) state.SkipWithError(compact.status().ToString().c_str());
  for (auto _ : state) {
    auto stats = RunSql(&env, kScanSql);
    state.SetIterationTime(stats.seconds);
  }
  state.SetLabel("attached=" + std::to_string(percent) + "% (compacted)");
}

void PercentArgs(benchmark::internal::Benchmark* bench) {
  for (int percent : {0, 5, 15, 30, 50}) bench->Arg(percent);
  bench->Unit(benchmark::kMillisecond)->UseManualTime();
}

}  // namespace

BENCHMARK(BM_ReadWithAttached)->Apply(PercentArgs);
BENCHMARK(BM_CompactCost)->Apply(PercentArgs)->Iterations(1);
BENCHMARK(BM_ReadAfterCompact)->Apply(PercentArgs);

int main(int argc, char** argv) {
  dtl::bench::ParseScaleFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
