// Paper Fig. 11: read performance on the TPC-H data set for Hive(HDFS),
// Hive(HBase), and DualTable across Query-a (TPC-H Q1), Query-b (Q12 join),
// and Query-c (COUNT on lineitem), with an empty attached table.
//
// Shapes to reproduce: DualTable's overhead over Hive(HDFS) is negligible;
// Hive(HBase) is much slower on every query (LSM batch-read penalty).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using dtl::bench::Env;
using dtl::bench::MakeTpch;
using dtl::bench::PlanMode;
using dtl::bench::RunSql;

void BM_QueryA(benchmark::State& state, const std::string& kind) {
  Env env = MakeTpch(kind, PlanMode::kCostModel, /*with_orders=*/false);
  for (auto _ : state) {
    auto stats = RunSql(&env, dtl::workload::QueryA("lineitem"));
    state.SetIterationTime(stats.seconds);
    state.counters["model_s"] = stats.modeled_seconds;
  }
}

void BM_QueryB(benchmark::State& state, const std::string& kind) {
  Env env = MakeTpch(kind, PlanMode::kCostModel, /*with_orders=*/true);
  for (auto _ : state) {
    auto stats = RunSql(&env, dtl::workload::QueryB("lineitem", "orders"));
    state.SetIterationTime(stats.seconds);
    state.counters["model_s"] = stats.modeled_seconds;
  }
}

void BM_QueryC(benchmark::State& state, const std::string& kind) {
  Env env = MakeTpch(kind, PlanMode::kCostModel, /*with_orders=*/false);
  for (auto _ : state) {
    auto stats = RunSql(&env, dtl::workload::QueryC("lineitem"));
    state.SetIterationTime(stats.seconds);
    state.counters["model_s"] = stats.modeled_seconds;
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_QueryA, hive_hdfs, "hive")->Unit(benchmark::kMillisecond)->UseManualTime();
BENCHMARK_CAPTURE(BM_QueryA, hive_hbase, "hbase")->Unit(benchmark::kMillisecond)->UseManualTime();
BENCHMARK_CAPTURE(BM_QueryA, dualtable, "dualtable")->Unit(benchmark::kMillisecond)->UseManualTime();
BENCHMARK_CAPTURE(BM_QueryB, hive_hdfs, "hive")->Unit(benchmark::kMillisecond)->UseManualTime();
BENCHMARK_CAPTURE(BM_QueryB, hive_hbase, "hbase")->Unit(benchmark::kMillisecond)->UseManualTime();
BENCHMARK_CAPTURE(BM_QueryB, dualtable, "dualtable")->Unit(benchmark::kMillisecond)->UseManualTime();
BENCHMARK_CAPTURE(BM_QueryC, hive_hdfs, "hive")->Unit(benchmark::kMillisecond)->UseManualTime();
BENCHMARK_CAPTURE(BM_QueryC, hive_hbase, "hbase")->Unit(benchmark::kMillisecond)->UseManualTime();
BENCHMARK_CAPTURE(BM_QueryC, dualtable, "dualtable")->Unit(benchmark::kMillisecond)->UseManualTime();

BENCHMARK_MAIN();
