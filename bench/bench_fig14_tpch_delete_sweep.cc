// Paper Fig. 14: DELETE run time on TPC-H lineitem for ratios 1%..50%.
// Unlike updates, Hive's rewrite gets CHEAPER with the ratio (less data
// survives), so the crossover sits lower than Fig. 13's; the cost model
// again finds the right switch point.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using dtl::bench::Env;
using dtl::bench::MakeTpch;
using dtl::bench::PlanMode;
using dtl::bench::RunSql;

std::string DeleteSql(int percent) {
  return "DELETE FROM lineitem WHERE " +
         dtl::workload::LineitemRatioPredicate(percent / 100.0) + " WITH RATIO " +
         std::to_string(percent / 100.0);
}

void RunDeleteSweep(benchmark::State& state, const std::string& kind, PlanMode mode) {
  const int percent = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Env env = MakeTpch(kind, mode);
    auto stats = RunSql(&env, DeleteSql(percent));
    state.SetIterationTime(stats.seconds);
    state.counters["model_s"] = stats.modeled_seconds;
    state.counters["rows_changed"] = static_cast<double>(stats.affected_rows);
    state.counters["plan_edit"] = stats.plan == "EDIT" ? 1 : 0;
  }
  state.SetLabel(std::to_string(percent) + "%");
}

void BM_Fig14_DualTableEdit(benchmark::State& state) {
  RunDeleteSweep(state, "dualtable", PlanMode::kForceEdit);
}
void BM_Fig14_Hive(benchmark::State& state) {
  RunDeleteSweep(state, "hive", PlanMode::kCostModel);
}
void BM_Fig14_DualTableCostModel(benchmark::State& state) {
  RunDeleteSweep(state, "dualtable", PlanMode::kCostModel);
}

void RatioArgs(benchmark::internal::Benchmark* bench) {
  for (int percent : {1, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50}) bench->Arg(percent);
  bench->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
}

}  // namespace

BENCHMARK(BM_Fig14_DualTableEdit)->Apply(RatioArgs);
BENCHMARK(BM_Fig14_Hive)->Apply(RatioArgs);
BENCHMARK(BM_Fig14_DualTableCostModel)->Apply(RatioArgs);

int main(int argc, char** argv) {
  dtl::bench::ParseScaleFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
