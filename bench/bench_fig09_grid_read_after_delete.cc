// Paper Fig. 9: SELECT run time after the Fig. 6 DELETE. Hive's read gets
// CHEAPER as the delete ratio grows (fewer surviving rows to scan after the
// rewrite); DualTable's UnionRead keeps reading the full master plus the
// delete markers, so it grows with the ratio.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using dtl::bench::Env;
using dtl::bench::MakeGridMx;
using dtl::bench::PlanMode;
using dtl::bench::RunSql;

void RunReadAfterDelete(benchmark::State& state, const std::string& kind, PlanMode mode) {
  const int days = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Env env = MakeGridMx(kind, mode);
    RunSql(&env, dtl::workload::GridDeleteDays(days));  // untimed setup
    RunSql(&env, dtl::workload::GridReadAfterDml());     // warm-up read (untimed)
    auto stats = RunSql(&env, dtl::workload::GridReadAfterDml());
    state.SetIterationTime(stats.seconds);
    state.counters["model_s"] = stats.modeled_seconds;
  }
  state.SetLabel(dtl::bench::DayLabel(days));
}

void BM_Fig09_ReadInHive(benchmark::State& state) {
  RunReadAfterDelete(state, "hive", PlanMode::kCostModel);
}
void BM_Fig09_UnionReadInDualTable(benchmark::State& state) {
  RunReadAfterDelete(state, "dualtable", PlanMode::kForceEdit);
}

}  // namespace

BENCHMARK(BM_Fig09_ReadInHive)
    ->DenseRange(1, 17, 2)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);
BENCHMARK(BM_Fig09_UnionReadInDualTable)
    ->DenseRange(1, 17, 2)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);

int main(int argc, char** argv) {
  dtl::bench::ParseScaleFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
