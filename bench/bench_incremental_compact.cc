// Incremental-COMPACT maintenance comparison (BENCH_incremental_compact.json).
//
// Part 1 — sustained EDITs, three maintenance policies over the same table
// layout and update stream (one dense slice of a rotating file per round):
//   * none:        deltas pile up in the attached table forever;
//   * full:        threshold-triggered full COMPACT (the paper's off-line
//                  rewrite) — read-after-update cost saw-tooths: it climbs
//                  while debt accumulates, then resets when the whole table
//                  is rewritten at once;
//   * incremental: per-stripe incremental COMPACT every round — only the
//                  dense file folds (clean stripes are raw-copied), so the
//                  read cost stays flat and the rewrite work per round is a
//                  fraction of the full rewrite.
// Per round we record modelled cluster seconds (paper-scale arithmetic over
// metered I/O; the attached store is flushed each round so delta bytes are
// visible to the meter) for the read-after-update scan plus the maintenance
// work, and summarize flatness as read p99/p50 per mode.
//
// Part 2 — closed-loop cost-model calibration: the same cost-model-planned
// UPDATE stream with calibration gain 0 (open loop) vs >0. The audit log
// pairs each prediction with modelled actuals; the summary compares the mean
// prediction error over the second half of each run — the calibrated loop
// must land well below the open-loop model.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "dualtable/dual_table.h"
#include "obs/cost_audit.h"
#include "sql/session.h"

namespace {

using dtl::Row;
using dtl::Value;

constexpr int kFiles = 8;
constexpr int kRounds = 32;
constexpr double kUpdateFraction = 0.6;  // of one file, per round

[[noreturn]] void Die(const std::string& what) {
  std::fprintf(stderr, "bench_incremental_compact failed: %s\n", what.c_str());
  std::exit(1);
}

struct RoundEntry {
  std::string mode;
  int round = 0;
  double read_modeled_seconds = 0;
  double read_wall_seconds = 0;
  double maintenance_modeled_seconds = 0;
  uint64_t read_overlay_rows = 0;  // rows patched/masked by the UNION READ
  uint64_t rows_rewritten = 0;     // master rows re-encoded this round
  uint64_t attached_bytes = 0;     // debt left after maintenance
  bool compacted = false;
};

struct ModeSummary {
  std::string mode;
  double read_p50 = 0;
  double read_p99 = 0;
  double flatness = 0;  // p99 / p50: ~1 is flat, the saw-tooth pushes it up
  double maintenance_total = 0;
  uint64_t rows_rewritten_total = 0;
};

dtl::Schema BenchSchema() {
  return dtl::Schema({{"id", dtl::DataType::kInt64}, {"amount", dtl::DataType::kDouble}});
}

std::shared_ptr<dtl::dual::DualTable> MakeTable(dtl::sql::Session* session,
                                                const std::string& name,
                                                dtl::dual::DualTableOptions options,
                                                int64_t rows_per_file) {
  auto table = session->CreateDualTable(name, BenchSchema(), options);
  if (!table.ok()) Die("create " + name + ": " + table.status().ToString());
  for (int f = 0; f < kFiles; ++f) {
    std::vector<Row> batch;
    batch.reserve(static_cast<size_t>(rows_per_file));
    for (int64_t i = 0; i < rows_per_file; ++i) {
      const int64_t id = f * rows_per_file + i;
      batch.push_back(Row{Value::Int64(id), Value::Double(id * 0.5)});
    }
    if (!(*table)->InsertRows(batch).ok()) Die("insert file " + std::to_string(f));
  }
  return *table;
}

dtl::Status UpdateRange(dtl::dual::DualTable* table, int64_t lo, int64_t hi) {
  dtl::table::ScanSpec filter;
  filter.predicate_columns = {0};
  filter.predicate = [lo, hi](const Row& row) {
    return row[0].AsInt64() >= lo && row[0].AsInt64() < hi;
  };
  dtl::table::Assignment assign;
  assign.column = 1;
  assign.input_columns = {1};
  assign.compute = [](const Row& row) {
    return Value::Double(row[1].AsDouble() + 0.25);
  };
  return table->Update(filter, {assign}).status();
}

uint64_t CountRows(dtl::dual::DualTable* table) {
  auto it = table->ScanBatches(dtl::table::ScanSpec{});
  if (!it.ok()) Die("scan: " + it.status().ToString());
  dtl::table::RowBatch batch;
  uint64_t rows = 0;
  while ((*it)->Next(&batch)) rows += batch.size();
  if (!(*it)->status().ok()) Die("scan: " + (*it)->status().ToString());
  return rows;
}

std::vector<RoundEntry> RunMaintenanceMode(const std::string& mode,
                                           int64_t rows_per_file) {
  auto session = dtl::sql::Session::Create({});
  if (!session.ok()) Die("session: " + session.status().ToString());

  dtl::dual::DualTableOptions options = (*session)->options().dual_defaults;
  options.plan_mode = dtl::dual::DualTableOptions::PlanMode::kForceEdit;
  options.writer_options.stripe_rows = 512;
  // Full COMPACT keeps the 8-file layout so its rounds stay comparable.
  options.rewrite_file_rows = static_cast<uint64_t>(rows_per_file);
  // Let debt build across a few rounds before the full rewrite triggers —
  // that accumulation/reset cycle IS the saw-tooth this bench plots.
  options.compact_threshold = 1.0;
  // Pin the density bar below the per-round update fraction so the three
  // runs compare maintenance POLICY under one fixed selection rule. (The
  // production default derives the bar from the calibrated update crossover,
  // which at this bench's toy master size sits near 1.0 and would select
  // nothing; the calibration section below exercises that derivation.)
  options.incremental_density_override = 0.35;
  auto table = MakeTable(session->get(), "m_" + mode, options, rows_per_file);

  const uint64_t total_rows = static_cast<uint64_t>(kFiles) * rows_per_file;
  const auto dense_rows = static_cast<int64_t>(rows_per_file * kUpdateFraction);

  std::vector<RoundEntry> rounds;
  rounds.reserve(kRounds);
  for (int r = 0; r < kRounds; ++r) {
    const int64_t file = r % kFiles;
    const int64_t lo = file * rows_per_file;
    if (!UpdateRange(table.get(), lo, lo + dense_rows).ok()) Die("update");
    // Flush the memtable so attached bytes flow through the metered file
    // system: the modelled read cost then reflects the real UNION READ debt.
    if (!table->attached()->store()->Flush().ok()) Die("flush");

    RoundEntry entry;
    entry.mode = mode;
    entry.round = r;

    (*session)->MarkIo();
    if (mode == "full") {
      if (table->NeedsCompaction()) {
        if (!table->Compact().ok()) Die("compact");
        entry.rows_rewritten = total_rows;
        entry.compacted = true;
      }
    } else if (mode == "incremental") {
      auto stats = table->CompactIncremental();
      if (!stats.ok()) Die("incremental: " + stats.status().ToString());
      entry.rows_rewritten = stats->rows_rewritten;
      entry.compacted = stats->files_selected > 0;
    }
    entry.maintenance_modeled_seconds = (*session)->ModeledSeconds((*session)->IoDelta());

    // Warm-up scan: prime the generation's ORC reader cache so the timed
    // read below prices the steady state, not the one-off cold read of files
    // a rewrite just published.
    if (CountRows(table.get()) != total_rows) Die("row count drifted");

    const dtl::table::ScanSnapshot scan_before = dtl::table::GlobalScanMeter().Snapshot();
    (*session)->MarkIo();
    dtl::Stopwatch watch;
    if (CountRows(table.get()) != total_rows) Die("row count drifted");
    entry.read_wall_seconds = watch.ElapsedSeconds();
    const dtl::table::ScanSnapshot scan = dtl::table::GlobalScanMeter().Snapshot() - scan_before;
    // Read price = scan arithmetic over every byte this SELECT touched: the
    // decoded master columns (cache-stable, identical floor across modes)
    // plus the attached-table bytes re-read from HBase each scan — the
    // UNION READ debt the maintenance policies differ on.
    const dtl::fs::IoSnapshot io = (*session)->IoDelta();
    entry.read_modeled_seconds = (*session)->cluster()->ScanSeconds(
        scan.bytes + io.hbase_bytes_read + io.hdfs_bytes_read, 1);
    entry.read_overlay_rows = scan.patched_rows + scan.masked_rows;
    entry.attached_bytes = table->attached()->ApproximateBytes();
    rounds.push_back(entry);
  }
  return rounds;
}

ModeSummary Summarize(const std::string& mode, const std::vector<RoundEntry>& rounds) {
  ModeSummary s;
  s.mode = mode;
  std::vector<double> reads;
  for (const RoundEntry& e : rounds) {
    if (e.mode != mode) continue;
    reads.push_back(e.read_modeled_seconds);
    s.maintenance_total += e.maintenance_modeled_seconds;
    s.rows_rewritten_total += e.rows_rewritten;
  }
  if (reads.empty()) Die("no rounds for mode " + mode);
  std::sort(reads.begin(), reads.end());
  s.read_p50 = reads[reads.size() / 2];
  s.read_p99 = reads[std::min(reads.size() - 1,
                              static_cast<size_t>(reads.size() * 0.99))];
  s.flatness = s.read_p50 > 0 ? s.read_p99 / s.read_p50 : 0;
  return s;
}

struct CalibrationResult {
  double gain = 0;
  size_t statements = 0;
  double open_window_error = 0;      // mean error, first half
  double settled_window_error = 0;   // mean error, second half
  double edit_scale = 1.0;
  double overwrite_scale = 1.0;
};

CalibrationResult RunCalibration(double gain, int64_t rows_per_file) {
  auto session = dtl::sql::Session::Create({});
  if (!session.ok()) Die("session: " + session.status().ToString());

  dtl::dual::DualTableOptions options = (*session)->options().dual_defaults;
  options.plan_mode = dtl::dual::DualTableOptions::PlanMode::kCostModel;
  options.writer_options.stripe_rows = 512;
  options.cost_audit = (*session)->cost_audit();
  options.cost_calibration_gain = gain;
  const std::string name = gain > 0 ? "cal_closed" : "cal_open";
  auto table = MakeTable(session->get(), name, options, rows_per_file);

  // A sweep of modification ratios around the crossover, so the audit sees
  // both EDIT and OVERWRITE decisions and the loop calibrates both scales.
  constexpr int kStatements = 48;
  const int64_t total_rows = kFiles * rows_per_file;
  for (int i = 0; i < kStatements; ++i) {
    const double fraction = 0.02 + 0.96 * ((i * 7) % kStatements) / kStatements;
    const auto span = static_cast<int64_t>(total_rows * fraction);
    const int64_t lo = (i * 131) % std::max<int64_t>(1, total_rows - span);
    if (!UpdateRange(table.get(), lo, lo + span).ok()) Die("calibration update");
  }

  const auto records = (*session)->cost_audit()->Records();
  if (records.size() < kStatements) Die("audit log under-filled");
  CalibrationResult result;
  result.gain = gain;
  result.statements = records.size();
  const size_t half = records.size() / 2;
  double first = 0;
  for (size_t i = 0; i < half; ++i) first += records[i].PredictionErrorFraction();
  result.open_window_error = first / half;
  result.settled_window_error = (*session)->cost_audit()->MeanPredictionErrorSince(half);
  const auto params = table->cost_model_params();
  result.edit_scale = params.edit_cost_scale;
  result.overwrite_scale = params.overwrite_cost_scale;
  return result;
}

void WriteJson(const std::vector<RoundEntry>& rounds,
               const std::vector<ModeSummary>& summaries,
               const std::vector<CalibrationResult>& calibration,
               const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"rounds\": [\n";
  for (size_t i = 0; i < rounds.size(); ++i) {
    const RoundEntry& e = rounds[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"mode\":\"%s\",\"round\":%d,"
                  "\"read_modeled_seconds\":%.6f,\"read_wall_seconds\":%.6f,"
                  "\"maintenance_modeled_seconds\":%.6f,\"read_overlay_rows\":%llu,"
                  "\"rows_rewritten\":%llu,"
                  "\"attached_bytes\":%llu,\"compacted\":%s}",
                  e.mode.c_str(), e.round, e.read_modeled_seconds,
                  e.read_wall_seconds, e.maintenance_modeled_seconds,
                  static_cast<unsigned long long>(e.read_overlay_rows),
                  static_cast<unsigned long long>(e.rows_rewritten),
                  static_cast<unsigned long long>(e.attached_bytes),
                  e.compacted ? "true" : "false");
    out << buf << (i + 1 < rounds.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"summary\": [\n";
  for (size_t i = 0; i < summaries.size(); ++i) {
    const ModeSummary& s = summaries[i];
    char buf[384];
    std::snprintf(buf, sizeof(buf),
                  "    {\"mode\":\"%s\",\"read_p50\":%.6f,\"read_p99\":%.6f,"
                  "\"read_p99_over_p50\":%.3f,"
                  "\"maintenance_modeled_total\":%.6f,\"rows_rewritten_total\":%llu}",
                  s.mode.c_str(), s.read_p50, s.read_p99, s.flatness,
                  s.maintenance_total,
                  static_cast<unsigned long long>(s.rows_rewritten_total));
    out << buf << (i + 1 < summaries.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"calibration\": [\n";
  for (size_t i = 0; i < calibration.size(); ++i) {
    const CalibrationResult& c = calibration[i];
    char buf[384];
    std::snprintf(buf, sizeof(buf),
                  "    {\"gain\":%.2f,\"statements\":%zu,"
                  "\"first_half_mean_error\":%.4f,\"second_half_mean_error\":%.4f,"
                  "\"edit_cost_scale\":%.4f,\"overwrite_cost_scale\":%.4f}",
                  c.gain, c.statements, c.open_window_error, c.settled_window_error,
                  c.edit_scale, c.overwrite_scale);
    out << buf << (i + 1 < calibration.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::fprintf(stderr, "wrote %zu rounds, %zu summaries, %zu calibration runs to %s\n",
               rounds.size(), summaries.size(), calibration.size(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  dtl::bench::ParseScaleFlag(&argc, argv);
  const auto rows_per_file = static_cast<int64_t>(1500 * dtl::bench::ScaleMult());

  std::vector<RoundEntry> rounds;
  std::vector<ModeSummary> summaries;
  for (const std::string mode : {"none", "full", "incremental"}) {
    std::vector<RoundEntry> mode_rounds = RunMaintenanceMode(mode, rows_per_file);
    summaries.push_back(Summarize(mode, mode_rounds));
    rounds.insert(rounds.end(), mode_rounds.begin(), mode_rounds.end());
    const ModeSummary& s = summaries.back();
    std::printf("%-12s read p50=%.4fs p99=%.4fs (p99/p50=%.2f)  "
                "maintenance=%.3fs rows_rewritten=%llu\n",
                s.mode.c_str(), s.read_p50, s.read_p99, s.flatness,
                s.maintenance_total,
                static_cast<unsigned long long>(s.rows_rewritten_total));
  }

  std::vector<CalibrationResult> calibration;
  for (const double gain : {0.0, 0.5}) {
    calibration.push_back(RunCalibration(gain, rows_per_file));
    const CalibrationResult& c = calibration.back();
    std::printf("calibration gain=%.1f  mean error first-half=%.3f second-half=%.3f  "
                "scales edit=%.3f overwrite=%.3f\n",
                c.gain, c.open_window_error, c.settled_window_error, c.edit_scale,
                c.overwrite_scale);
  }

  WriteJson(rounds, summaries, calibration, "BENCH_incremental_compact.json");
  return 0;
}
