// Shared setup for the per-figure/per-table bench binaries: builds fresh
// sessions loaded with the grid or TPC-H workloads at bench scale, runs SQL
// with wall-clock + modelled-cluster timing, and aborts loudly on any error
// (a bench must never silently measure a failed statement).
//
// Scale control: a `--scale=N` command-line flag (parsed by ParseScaleFlag
// before benchmark::Initialize) or the DTL_BENCH_SCALE env var multiplies
// data sizes (default 1.0; the flag wins). The reproduced *shapes* are
// scale-invariant; absolute milliseconds are not. N in the 100-1000 range
// pushes the workload generators from bench scale toward paper scale.
#pragma once

#include <memory>
#include <string>

#include "sql/session.h"
#include "table/scan_stats.h"
#include "workload/grid_gen.h"
#include "workload/tpch_gen.h"

namespace dtl::bench {

/// Workload size multiplier: the `--scale=N` flag when given, else the
/// DTL_BENCH_SCALE env var, else 1.0.
double ScaleMult();

/// Strips a `--scale=N` (or `--scale N`) flag out of argv and records it as
/// the ScaleMult override. Call before benchmark::Initialize, which rejects
/// flags it does not recognize.
void ParseScaleFlag(int* argc, char** argv);

/// A session preloaded with one workload.
struct Env {
  std::unique_ptr<sql::Session> session;
  uint64_t rows = 0;  // rows in the primary table
};

/// Outcome of one timed statement.
struct RunStats {
  double seconds = 0;
  double modeled_seconds = 0;  // paper-scale cluster arithmetic from metered I/O
  uint64_t affected_rows = 0;
  std::string plan;
};

/// Plan-selection mode for DualTable-backed environments.
using PlanMode = dual::DualTableOptions::PlanMode;

/// Builds a session holding only tj_gbsjwzl_mx (the Fig. 5-10 sweep table)
/// stored as `kind` ("hive" or "dualtable").
Env MakeGridMx(const std::string& kind, PlanMode mode = PlanMode::kCostModel);

/// Builds a session holding all six paper-Table-II grid tables.
/// `observability` toggles SessionOptions::observability: the off setting is
/// the baseline for the instrumentation-overhead guard (bench_observability).
Env MakeGridTableII(const std::string& kind, bool observability = true);

/// Builds a session holding all six paper-Table-III grid tables.
Env MakeGridTableIII(const std::string& kind, PlanMode mode = PlanMode::kCostModel);

/// Builds a session holding TPC-H lineitem (and orders when requested).
Env MakeTpch(const std::string& kind, PlanMode mode = PlanMode::kCostModel,
             bool with_orders = false);

/// Executes one statement; aborts the bench on failure.
RunStats RunSql(Env* env, const std::string& sql);

/// Renders a ratio like 5/36 for series labels.
std::string DayLabel(int days);

/// One raw-scan measurement (row-at-a-time vs batch read path) destined for
/// BENCH_scan.json. Every field describes ONE scan of the table: each
/// logical row is counted exactly once, `rows / seconds == rows_per_sec`,
/// and the meter delta is normalized by the iteration count (a pass-through
/// batch therefore contributes its rows once, not once per timed iteration).
struct ScanBenchEntry {
  std::string workload;  // "grid" | "tpch"
  std::string path;      // "row" | "batch"
  uint64_t rows = 0;     // logical rows visited by one scan
  double seconds = 0;    // mean wall seconds for one scan
  double rows_per_sec = 0;
  table::ScanSnapshot scan;  // per-scan scan-meter delta
};

/// Queues an entry for FlushScanBench.
void RecordScanBench(ScanBenchEntry entry);

/// Writes every recorded entry as a machine-readable JSON array. Entries
/// already in the file from OTHER workloads are preserved (the grid and
/// TPC-H read benches share one BENCH_scan.json).
void FlushScanBench(const std::string& path = "BENCH_scan.json");

/// One morsel-driven parallel scan measurement (worker-count sweep) destined
/// for BENCH_parallel_scan.json.
struct ParallelScanBenchEntry {
  std::string workload;  // "grid" | "tpch"
  int workers = 0;       // ParallelScanner parallelism degree
  uint64_t rows = 0;     // rows counted per iteration
  double seconds = 0;    // wall seconds per iteration (single-core container!)
  uint64_t scan_bytes = 0;       // encoded bytes metered for one scan
  double modeled_seconds = 0;    // ClusterModel::ScanSeconds(bytes, workers)
  double wall_speedup = 1.0;     // serial wall / this wall (filled at flush)
  double modeled_speedup = 1.0;  // serial modeled / this modeled (at flush)
};

/// Queues an entry for FlushParallelScanBench (dedups by workload+workers).
void RecordParallelScanBench(ParallelScanBenchEntry entry);

/// Writes the worker sweep with speedups relative to the workers=1 entry of
/// the same workload. Entries from other workloads already in the file are
/// preserved (grid and TPC-H share one BENCH_parallel_scan.json).
void FlushParallelScanBench(const std::string& path = "BENCH_parallel_scan.json");

}  // namespace dtl::bench
