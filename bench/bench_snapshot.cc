// Mixed multi-session SELECT/UPDATE throughput under MVCC snapshots — the
// headline number for the snapshot read path (BENCH_snapshot.json).
//
// N reader threads each loop "one SELECT": acquire a statement snapshot,
// scan it fully through the vectorized UNION READ, verify the row count, and
// release it. M writer threads loop EDIT UPDATE statements over rotating
// residue classes, and the first writer folds in a COMPACT every few rounds
// so snapshots keep pinning replaced generations mid-sweep. Readers never
// take the writer lock and writers never wait for readers; the sweep over
// (readers, writers) mixes reports how combined QPS scales.
//
// A reader observing anything other than exactly kRows rows is a snapshot
// isolation bug and aborts the bench loudly.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "dualtable/dual_table.h"

namespace {

using dtl::Row;
using dtl::Value;

constexpr double kSecondsPerConfig = 0.4;

struct MixResult {
  int readers = 0;
  int writers = 0;
  double seconds = 0;
  uint64_t selects = 0;
  uint64_t updates = 0;
  uint64_t snapshots_acquired = 0;
  int64_t live_generations = 0;
};

[[noreturn]] void Die(const std::string& what) {
  std::fprintf(stderr, "bench_snapshot failed: %s\n", what.c_str());
  std::exit(1);
}

std::shared_ptr<dtl::dual::DualTable> MakeMixedTable(dtl::sql::Session* session,
                                                     int64_t rows) {
  dtl::Schema schema({{"id", dtl::DataType::kInt64}, {"amount", dtl::DataType::kDouble}});
  dtl::dual::DualTableOptions options = session->options().dual_defaults;
  // Every UPDATE must take the EDIT plan: the bench measures snapshot reads
  // racing attached-table writes, not the cost model's OVERWRITE choice.
  options.plan_mode = dtl::dual::DualTableOptions::PlanMode::kForceEdit;
  auto table = session->CreateDualTable("mixed", schema, options);
  if (!table.ok()) Die("create: " + table.status().ToString());
  std::vector<Row> batch;
  batch.reserve(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    batch.push_back(Row{Value::Int64(i), Value::Double(i * 0.5)});
  }
  if (!(*table)->InsertRows(batch).ok()) Die("insert");
  return *table;
}

dtl::Status RunOneUpdate(dtl::dual::DualTable* table, int64_t residue) {
  dtl::table::ScanSpec filter;
  filter.predicate_columns = {0};
  filter.predicate = [residue](const Row& row) {
    return row[0].AsInt64() % 16 == residue;
  };
  dtl::table::Assignment assign;
  assign.column = 1;
  assign.input_columns = {1};
  assign.compute = [](const Row& row) {
    return Value::Double(row[1].AsDouble() + 0.25);
  };
  return table->Update(filter, {assign}).status();
}

/// One SELECT: statement snapshot -> full batch UNION READ -> row count.
uint64_t RunOneSelect(dtl::dual::DualTable* table) {
  const dtl::dual::SnapshotPtr snapshot = table->AcquireSnapshot();
  auto it = table->ScanBatchesAt(snapshot, dtl::table::ScanSpec{});
  if (!it.ok()) Die("select: " + it.status().ToString());
  dtl::table::RowBatch batch;
  uint64_t rows = 0;
  while ((*it)->Next(&batch)) rows += batch.size();
  if (!(*it)->status().ok()) Die("select scan: " + (*it)->status().ToString());
  return rows;
}

MixResult RunMix(int readers, int writers, int64_t rows) {
  auto session = dtl::sql::Session::Create({});
  if (!session.ok()) Die("session: " + session.status().ToString());
  auto table = MakeMixedTable(session->get(), rows);

  const uint64_t snapshots_before = table->snapshot_tracker()->acquired();
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> selects{0};
  std::atomic<uint64_t> updates{0};

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(readers + writers));
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&table, &stop, &selects, rows] {
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t seen = RunOneSelect(table.get());
        if (seen != static_cast<uint64_t>(rows)) {
          Die("snapshot isolation violated: saw " + std::to_string(seen) +
              " rows, expected " + std::to_string(rows));
        }
        selects.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&table, &stop, &updates, w] {
      int64_t round = 0;
      while (!stop.load(std::memory_order_acquire)) {
        if (!RunOneUpdate(table.get(), (w * 7 + round) % 16).ok()) Die("update");
        // Writer 0 periodically folds the deltas into a fresh master
        // generation; live snapshots keep pinning the replaced one.
        if (w == 0 && round % 25 == 24 && !table->Compact().ok()) Die("compact");
        ++round;
        updates.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  dtl::Stopwatch watch;
  while (watch.ElapsedSeconds() < kSecondsPerConfig) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  MixResult result;
  result.readers = readers;
  result.writers = writers;
  result.seconds = watch.ElapsedSeconds();
  result.selects = selects.load();
  result.updates = updates.load();
  result.snapshots_acquired = table->snapshot_tracker()->acquired() - snapshots_before;
  result.live_generations = table->master()->LiveGenerations();
  return result;
}

void WriteJson(const std::vector<MixResult>& results, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  out << "[\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const MixResult& r = results[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "  {\"readers\":%d,\"writers\":%d,\"seconds\":%.3f,"
                  "\"selects\":%llu,\"updates\":%llu,"
                  "\"select_qps\":%.1f,\"update_qps\":%.1f,\"total_qps\":%.1f,"
                  "\"snapshots_acquired\":%llu,\"live_generations\":%lld}",
                  r.readers, r.writers, r.seconds,
                  static_cast<unsigned long long>(r.selects),
                  static_cast<unsigned long long>(r.updates),
                  static_cast<double>(r.selects) / r.seconds,
                  static_cast<double>(r.updates) / r.seconds,
                  static_cast<double>(r.selects + r.updates) / r.seconds,
                  static_cast<unsigned long long>(r.snapshots_acquired),
                  static_cast<long long>(r.live_generations));
    out << buf << (i + 1 < results.size() ? ",\n" : "\n");
  }
  out << "]\n";
  std::fprintf(stderr, "wrote %zu mixed-workload entries to %s\n", results.size(),
               path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  dtl::bench::ParseScaleFlag(&argc, argv);
  const auto rows = static_cast<int64_t>(8000 * dtl::bench::ScaleMult());

  const std::vector<std::pair<int, int>> mixes = {{1, 1}, {3, 1}, {3, 3}, {6, 2}};
  std::vector<MixResult> results;
  results.reserve(mixes.size());
  for (const auto& [readers, writers] : mixes) {
    MixResult r = RunMix(readers, writers, rows);
    std::printf("readers=%d writers=%d  select_qps=%.1f update_qps=%.1f  "
                "snapshots=%llu live_generations=%lld\n",
                r.readers, r.writers, static_cast<double>(r.selects) / r.seconds,
                static_cast<double>(r.updates) / r.seconds,
                static_cast<unsigned long long>(r.snapshots_acquired),
                static_cast<long long>(r.live_generations));
    results.push_back(r);
  }
  WriteJson(results, "BENCH_snapshot.json");
  return 0;
}
