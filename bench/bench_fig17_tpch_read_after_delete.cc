// Paper Fig. 17: full-table-scan run time after deleting 1%..50% of
// lineitem. Hive's read shrinks with the ratio (less data survives its
// rewrite); DualTable's UnionRead still reads the whole master plus the
// delete markers, so the gap widens at high delete ratios.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using dtl::bench::Env;
using dtl::bench::MakeTpch;
using dtl::bench::PlanMode;
using dtl::bench::RunSql;

std::string DeleteSql(int percent) {
  return "DELETE FROM lineitem WHERE " +
         dtl::workload::LineitemRatioPredicate(percent / 100.0) + " WITH RATIO " +
         std::to_string(percent / 100.0);
}

const char kScanSql[] =
    "SELECT COUNT(*), SUM(l_quantity), SUM(l_discount) FROM lineitem";

void RunReadAfterDelete(benchmark::State& state, const std::string& kind, PlanMode mode) {
  const int percent = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Env env = MakeTpch(kind, mode);
    RunSql(&env, DeleteSql(percent));  // untimed setup
    RunSql(&env, kScanSql);                              // warm-up read (untimed)
    auto stats = RunSql(&env, kScanSql);
    state.SetIterationTime(stats.seconds);
    state.counters["model_s"] = stats.modeled_seconds;
  }
  state.SetLabel(std::to_string(percent) + "%");
}

void BM_Fig17_UnionReadInDualTable(benchmark::State& state) {
  RunReadAfterDelete(state, "dualtable", PlanMode::kForceEdit);
}
void BM_Fig17_ReadInHive(benchmark::State& state) {
  RunReadAfterDelete(state, "hive", PlanMode::kCostModel);
}

void RatioArgs(benchmark::internal::Benchmark* bench) {
  for (int percent : {1, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50}) bench->Arg(percent);
  bench->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
}

}  // namespace

BENCHMARK(BM_Fig17_UnionReadInDualTable)->Apply(RatioArgs);
BENCHMARK(BM_Fig17_ReadInHive)->Apply(RatioArgs);

int main(int argc, char** argv) {
  dtl::bench::ParseScaleFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
