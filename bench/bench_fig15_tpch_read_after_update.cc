// Paper Fig. 15: full-table-scan run time after updating 1%..50% of
// lineitem, DualTable in forced-EDIT mode (no cost model, as in the paper's
// experiment). The UnionRead overhead is linear in the attached-table size,
// while Hive's read is unaffected (its update rewrote the data).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using dtl::bench::Env;
using dtl::bench::MakeTpch;
using dtl::bench::PlanMode;
using dtl::bench::RunSql;

std::string UpdateSql(int percent) {
  return "UPDATE lineitem SET l_discount = 0.99 WHERE " +
         dtl::workload::LineitemRatioPredicate(percent / 100.0) + " WITH RATIO " +
         std::to_string(percent / 100.0);
}

const char kScanSql[] =
    "SELECT COUNT(*), SUM(l_quantity), SUM(l_discount) FROM lineitem";

void RunReadAfterUpdate(benchmark::State& state, const std::string& kind, PlanMode mode) {
  const int percent = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Env env = MakeTpch(kind, mode);
    RunSql(&env, UpdateSql(percent));  // untimed setup
    RunSql(&env, kScanSql);                              // warm-up read (untimed)
    auto stats = RunSql(&env, kScanSql);
    state.SetIterationTime(stats.seconds);
    state.counters["model_s"] = stats.modeled_seconds;
  }
  state.SetLabel(std::to_string(percent) + "%");
}

void BM_Fig15_UnionReadInDualTable(benchmark::State& state) {
  RunReadAfterUpdate(state, "dualtable", PlanMode::kForceEdit);
}
void BM_Fig15_ReadInHive(benchmark::State& state) {
  RunReadAfterUpdate(state, "hive", PlanMode::kCostModel);
}

void RatioArgs(benchmark::internal::Benchmark* bench) {
  for (int percent : {1, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50}) bench->Arg(percent);
  bench->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
}

}  // namespace

BENCHMARK(BM_Fig15_UnionReadInDualTable)->Apply(RatioArgs);
BENCHMARK(BM_Fig15_ReadInHive)->Apply(RatioArgs);

int main(int argc, char** argv) {
  dtl::bench::ParseScaleFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
