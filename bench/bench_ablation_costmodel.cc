// Ablation: cost-model accuracy. Measures the EMPIRICAL crossover ratio
// (where forced-EDIT becomes slower than forced-OVERWRITE on real runs) and
// compares it with the decision the cost model takes at each ratio — the
// model earns its keep when it switches plans on the correct side of the
// empirical crossover. Also prints Eq. 1/2's analytic crossover for the
// modelled paper-scale cluster.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "dualtable/dual_table.h"

namespace {

using dtl::bench::Env;
using dtl::bench::MakeTpch;
using dtl::bench::PlanMode;
using dtl::bench::RunSql;

std::string UpdateSql(int percent) {
  return "UPDATE lineitem SET l_discount = 0.99 WHERE " +
         dtl::workload::LineitemRatioPredicate(percent / 100.0) + " WITH RATIO " +
         std::to_string(percent / 100.0);
}

const char kScanSql[] = "SELECT COUNT(*), SUM(l_discount) FROM lineitem";

/// Update+read total for one forced plan at one ratio (measured, seconds).
double MeasureForcedPlan(int percent, PlanMode mode) {
  Env env = MakeTpch("dualtable", mode);
  auto update = RunSql(&env, UpdateSql(percent));
  auto read = RunSql(&env, kScanSql);
  return update.seconds + read.seconds;
}

void PrintCrossoverStudy() {
  std::printf("== Ablation: cost-model accuracy (update + 1 read, measured) ==\n");
  std::printf("%8s %12s %14s %14s %12s\n", "ratio", "edit (ms)", "overwrite (ms)",
              "faster plan", "model picks");

  Env probe = MakeTpch("dualtable", PlanMode::kCostModel);
  auto entry = probe.session->catalog()->Lookup("lineitem");
  auto* dual = dynamic_cast<dtl::dual::DualTable*>(entry->table.get());

  int measured_crossover = -1;
  int model_crossover = -1;
  for (int percent : {1, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 60, 75, 90}) {
    double edit_s = MeasureForcedPlan(percent, PlanMode::kForceEdit);
    double over_s = MeasureForcedPlan(percent, PlanMode::kForceOverwrite);
    const char* faster = edit_s < over_s ? "EDIT" : "OVERWRITE";
    auto decision = dual->PreviewUpdateDecision(percent / 100.0);
    const char* model = dtl::table::DmlPlanName(decision.plan);
    std::printf("%7d%% %12.1f %14.1f %14s %12s\n", percent, edit_s * 1e3, over_s * 1e3,
                faster, model);
    if (measured_crossover < 0 && edit_s >= over_s) measured_crossover = percent;
    if (model_crossover < 0 && decision.plan == dtl::table::DmlPlan::kOverwrite) {
      model_crossover = percent;
    }
  }
  std::printf("\nfirst ratio where OVERWRITE measured faster: %d%%\n", measured_crossover);
  std::printf("first ratio where the model picks OVERWRITE:  %d%%\n", model_crossover);
  std::printf("analytic crossover (Eq. 1, modelled cluster): %.1f%%\n\n",
              100.0 * dual->cost_model().UpdateCrossoverRatio(
                          dual->master()->TotalBytes()));
}

/// Registered benchmark: k-sensitivity of the analytic crossover.
void BM_CrossoverVsK(benchmark::State& state) {
  const double k = static_cast<double>(state.range(0));
  Env env = MakeTpch("dualtable", PlanMode::kCostModel);
  auto entry = env.session->catalog()->Lookup("lineitem");
  auto* dual = dynamic_cast<dtl::dual::DualTable*>(entry->table.get());
  dtl::dual::CostModelParams params;
  params.k = k;
  dtl::dual::CostModel model(env.session->cluster(), params);
  double crossover = 0;
  for (auto _ : state) {
    crossover = model.UpdateCrossoverRatio(dual->master()->TotalBytes());
    benchmark::DoNotOptimize(crossover);
  }
  state.counters["crossover_pct"] = crossover * 100.0;
  state.SetLabel("k=" + std::to_string(static_cast<int>(k)));
}

}  // namespace

BENCHMARK(BM_CrossoverVsK)->Arg(1)->Arg(2)->Arg(5)->Arg(10)->Arg(30);

int main(int argc, char** argv) {
  dtl::bench::ParseScaleFlag(&argc, argv);
  PrintCrossoverStudy();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
