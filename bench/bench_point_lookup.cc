// Point-lookup serving tier (BENCH_point_lookup.json): indexed DualTable
// point SELECTs vs the full-scan plan vs the Hive/HBase baselines.
//
// Four tables get the same rows (ids inserted in shuffled order, so stripe
// min/max ranges overlap and pruning has to come from the bloom filters):
//
//   dual-index : DualTable, INDEX (id)  -> SQL index fast path
//   dual-scan  : DualTable, no index    -> vectorized scan + stripe skipping
//   hive       : HiveTable              -> full file scan per query
//   hbase      : HBaseTable             -> KV row scan per query
//
// Each arm runs `SELECT id, v FROM t WHERE id = <k>` through the SQL engine
// for a fixed wall budget, rotating k over a pseudo-random key sequence, and
// verifies every answer against the expected v (EDIT updates are applied to
// the dual tables first, so lookups exercise the delta patch). Per-arm
// scan-meter and stripe-cache deltas surface the skip counters and the hot
// stripe hit rate next to the QPS figures.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "dualtable/dual_table.h"
#include "orc/stripe_cache.h"

namespace {

using dtl::Row;
using dtl::Value;

constexpr double kSecondsPerConfig = 0.4;
constexpr int kWarmupLookups = 32;

struct ArmResult {
  std::string path;
  int64_t rows = 0;
  double seconds = 0;
  uint64_t lookups = 0;
  double qps = 0;
  double speedup_vs_scan = 0;
  uint64_t stripes_skipped = 0;
  uint64_t stripes_skipped_bloom = 0;
  uint64_t files_skipped = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double cache_hit_rate = 0;
  uint64_t index_lookups = 0;
  uint64_t index_stale_dropped = 0;
};

[[noreturn]] void Die(const std::string& what) {
  std::fprintf(stderr, "bench_point_lookup failed: %s\n", what.c_str());
  std::exit(1);
}

/// v is a function of id so every lookup is self-checking; ids congruent to
/// 3 mod 97 carry an EDIT update on the dual tables.
int64_t ExpectedValue(int64_t id, bool updated_tables) {
  int64_t v = id * 3;
  if (updated_tables && id % 97 == 3) v += 1000000;
  return v;
}

std::vector<int64_t> ShuffledIds(int64_t rows) {
  std::vector<int64_t> ids(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) ids[static_cast<size_t>(i)] = i;
  std::mt19937_64 rng(0xB10F11E5u);
  std::shuffle(ids.begin(), ids.end(), rng);
  return ids;
}

std::vector<Row> MakeRows(const std::vector<int64_t>& ids) {
  std::vector<Row> rows;
  rows.reserve(ids.size());
  for (const int64_t id : ids) {
    rows.push_back(Row{Value::Int64(id), Value::Int64(ExpectedValue(id, false))});
  }
  return rows;
}

/// Runs point SELECTs against `table` for the wall budget and fills the
/// QPS + skip/cache counters. `dual` (may be null) supplies index stats.
ArmResult RunArm(dtl::sql::Session* session, const std::string& path,
                 const std::string& table, int64_t rows, bool updated,
                 dtl::dual::DualTable* dual) {
  std::mt19937_64 rng(0x9E3779B9u);
  const auto probe = [&](int64_t key) {
    const std::string sql =
        "SELECT id, v FROM " + table + " WHERE id = " + std::to_string(key);
    auto result = session->Execute(sql);
    if (!result.ok()) Die(path + ": " + result.status().ToString());
    if (result->rows.size() != 1) {
      Die(path + ": key " + std::to_string(key) + " returned " +
          std::to_string(result->rows.size()) + " rows");
    }
    const Row& row = result->rows[0];
    if (row[0].AsInt64() != key ||
        row[1].AsInt64() != ExpectedValue(key, updated)) {
      Die(path + ": wrong row for key " + std::to_string(key));
    }
  };

  for (int i = 0; i < kWarmupLookups; ++i) {
    probe(static_cast<int64_t>(rng() % static_cast<uint64_t>(rows)));
  }

  const dtl::table::ScanSnapshot scan_before = session->scan_meter()->Snapshot();
  const dtl::orc::StripeCacheStats cache_before =
      dtl::orc::StripeCache::Default()->Stats();
  const uint64_t index_lookups_before =
      dual != nullptr && dual->secondary_index() != nullptr
          ? dual->secondary_index()->stats().lookups.load()
          : 0;
  const uint64_t stale_before =
      dual != nullptr && dual->secondary_index() != nullptr
          ? dual->secondary_index()->stats().stale_dropped.load()
          : 0;

  dtl::Stopwatch watch;
  uint64_t lookups = 0;
  while (watch.ElapsedSeconds() < kSecondsPerConfig) {
    probe(static_cast<int64_t>(rng() % static_cast<uint64_t>(rows)));
    ++lookups;
  }

  ArmResult r;
  r.path = path;
  r.rows = rows;
  r.seconds = watch.ElapsedSeconds();
  r.lookups = lookups;
  r.qps = static_cast<double>(lookups) / r.seconds;

  const dtl::table::ScanSnapshot scan =
      session->scan_meter()->Snapshot() - scan_before;
  r.stripes_skipped = scan.stripes_skipped;
  r.stripes_skipped_bloom = scan.stripes_skipped_bloom;
  r.files_skipped = scan.files_skipped;

  const dtl::orc::StripeCacheStats cache_now =
      dtl::orc::StripeCache::Default()->Stats();
  r.cache_hits = cache_now.hits - cache_before.hits;
  r.cache_misses = cache_now.misses - cache_before.misses;
  const uint64_t cache_total = r.cache_hits + r.cache_misses;
  r.cache_hit_rate = cache_total == 0
                         ? 0.0
                         : static_cast<double>(r.cache_hits) /
                               static_cast<double>(cache_total);

  if (dual != nullptr && dual->secondary_index() != nullptr) {
    r.index_lookups =
        dual->secondary_index()->stats().lookups.load() - index_lookups_before;
    r.index_stale_dropped =
        dual->secondary_index()->stats().stale_dropped.load() - stale_before;
  }
  return r;
}

void WriteJson(const std::vector<ArmResult>& results, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  out << "[\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ArmResult& r = results[i];
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "  {\"path\":\"%s\",\"rows\":%lld,\"seconds\":%.3f,"
        "\"lookups\":%llu,\"qps\":%.1f,\"speedup_vs_scan\":%.2f,"
        "\"stripes_skipped\":%llu,\"stripes_skipped_bloom\":%llu,"
        "\"files_skipped\":%llu,\"cache_hits\":%llu,\"cache_misses\":%llu,"
        "\"cache_hit_rate\":%.3f,\"index_lookups\":%llu,"
        "\"index_stale_dropped\":%llu}",
        r.path.c_str(), static_cast<long long>(r.rows), r.seconds,
        static_cast<unsigned long long>(r.lookups), r.qps, r.speedup_vs_scan,
        static_cast<unsigned long long>(r.stripes_skipped),
        static_cast<unsigned long long>(r.stripes_skipped_bloom),
        static_cast<unsigned long long>(r.files_skipped),
        static_cast<unsigned long long>(r.cache_hits),
        static_cast<unsigned long long>(r.cache_misses), r.cache_hit_rate,
        static_cast<unsigned long long>(r.index_lookups),
        static_cast<unsigned long long>(r.index_stale_dropped));
    out << buf << (i + 1 < results.size() ? ",\n" : "\n");
  }
  out << "]\n";
  std::fprintf(stderr, "wrote %zu point-lookup entries to %s\n", results.size(),
               path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  dtl::bench::ParseScaleFlag(&argc, argv);
  const auto rows = static_cast<int64_t>(20000 * dtl::bench::ScaleMult());

  auto session = dtl::sql::Session::Create({});
  if (!session.ok()) Die("session: " + session.status().ToString());
  dtl::sql::Session* s = session->get();

  const dtl::Schema schema({{"id", dtl::DataType::kInt64},
                            {"v", dtl::DataType::kInt64}});
  const std::vector<int64_t> ids = ShuffledIds(rows);
  const std::vector<Row> data = MakeRows(ids);

  // Small stripes so the key space spans many stripes per file; shuffled ids
  // keep every stripe's min/max near the full range, so skipping a stripe is
  // the bloom filter's doing, not the (trivial) sorted-data range check.
  dtl::dual::DualTableOptions indexed_options = s->options().dual_defaults;
  indexed_options.writer_options.stripe_rows = 16384;
  indexed_options.indexed_columns = {0};
  dtl::dual::DualTableOptions scan_options = indexed_options;
  scan_options.indexed_columns.clear();

  auto indexed = s->CreateDualTable("dual_index", schema, indexed_options);
  if (!indexed.ok()) Die("create dual_index: " + indexed.status().ToString());
  auto plain = s->CreateDualTable("dual_scan", schema, scan_options);
  if (!plain.ok()) Die("create dual_scan: " + plain.status().ToString());
  auto hive = s->CreateHiveTable("hive_base", schema);
  if (!hive.ok()) Die("create hive_base: " + hive.status().ToString());
  auto hbase = s->CreateHBaseTable("hbase_base", schema);
  if (!hbase.ok()) Die("create hbase_base: " + hbase.status().ToString());

  if (!(*indexed)->InsertRows(data).ok()) Die("insert dual_index");
  if (!(*plain)->InsertRows(data).ok()) Die("insert dual_scan");
  if (!(*hive)->InsertRows(data).ok()) Die("insert hive_base");
  if (!(*hbase)->InsertRows(data).ok()) Die("insert hbase_base");

  // EDIT a sparse slice of both dual tables so lookups cross the UNION READ
  // delta patch (and the index sees transactional maintenance). The scan arm
  // is then compacted: stats pruning is disabled while attached deltas exist
  // (an update could move a value across a stripe boundary), so folding the
  // deltas gives the full-scan baseline its best case — bloom/min-max
  // skipping active — while the indexed arm keeps its deltas live.
  for (const char* table : {"dual_index", "dual_scan"}) {
    auto updated = s->Execute(std::string("UPDATE ") + table +
                              " SET v = v + 1000000 WHERE id % 97 = 3");
    if (!updated.ok()) Die("update: " + updated.status().ToString());
  }
  if (auto c = s->Execute("COMPACT TABLE dual_scan"); !c.ok()) {
    Die("compact: " + c.status().ToString());
  }

  std::vector<ArmResult> results;
  results.push_back(
      RunArm(s, "dual-index", "dual_index", rows, true, indexed->get()));
  results.push_back(RunArm(s, "dual-scan", "dual_scan", rows, true, nullptr));
  results.push_back(RunArm(s, "hive", "hive_base", rows, false, nullptr));
  results.push_back(RunArm(s, "hbase", "hbase_base", rows, false, nullptr));

  const double scan_qps = results[1].qps;
  for (ArmResult& r : results) {
    r.speedup_vs_scan = scan_qps > 0 ? r.qps / scan_qps : 0.0;
  }
  if (results[0].qps <= scan_qps) {
    Die("index path is not faster than the full scan (" +
        std::to_string(results[0].qps) + " vs " + std::to_string(scan_qps) +
        " qps)");
  }

  for (const ArmResult& r : results) {
    std::printf(
        "%-10s qps=%9.1f  speedup=%6.2fx  skipped=%llu (bloom %llu)  "
        "files_skipped=%llu  cache_hit_rate=%.2f  index_lookups=%llu\n",
        r.path.c_str(), r.qps, r.speedup_vs_scan,
        static_cast<unsigned long long>(r.stripes_skipped),
        static_cast<unsigned long long>(r.stripes_skipped_bloom),
        static_cast<unsigned long long>(r.files_skipped),
        r.cache_hit_rate,
        static_cast<unsigned long long>(r.index_lookups));
  }
  WriteJson(results, "BENCH_point_lookup.json");
  return 0;
}
