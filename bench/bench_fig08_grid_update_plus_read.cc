// Paper Fig. 8: total run time of the UPDATE plus the following SELECT —
// the realistic end-to-end cost. Series: Hive (+read), DualTable-EDIT
// (+UnionRead), DualTable cost model (+read). The shape mirrors Fig. 5 with
// the crossover pulled slightly lower by the UnionRead overhead.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using dtl::bench::Env;
using dtl::bench::MakeGridMx;
using dtl::bench::PlanMode;
using dtl::bench::RunSql;

void RunUpdatePlusRead(benchmark::State& state, const std::string& kind, PlanMode mode) {
  const int days = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Env env = MakeGridMx(kind, mode);
    auto update = RunSql(&env, dtl::workload::GridUpdateDays(days));
    auto read = RunSql(&env, dtl::workload::GridReadAfterDml());
    state.SetIterationTime(update.seconds + read.seconds);
    state.counters["model_s"] = update.modeled_seconds + read.modeled_seconds;
    state.counters["plan_edit"] = update.plan == "EDIT" ? 1 : 0;
  }
  state.SetLabel(dtl::bench::DayLabel(days));
}

void BM_Fig08_HivePlusRead(benchmark::State& state) {
  RunUpdatePlusRead(state, "hive", PlanMode::kCostModel);
}
void BM_Fig08_DualTableEditPlusUnionRead(benchmark::State& state) {
  RunUpdatePlusRead(state, "dualtable", PlanMode::kForceEdit);
}
void BM_Fig08_DualTablePlusRead(benchmark::State& state) {
  RunUpdatePlusRead(state, "dualtable", PlanMode::kCostModel);
}

}  // namespace

BENCHMARK(BM_Fig08_HivePlusRead)
    ->DenseRange(1, 17, 2)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);
BENCHMARK(BM_Fig08_DualTableEditPlusUnionRead)
    ->DenseRange(1, 17, 2)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);
BENCHMARK(BM_Fig08_DualTablePlusRead)
    ->DenseRange(1, 17, 2)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);

int main(int argc, char** argv) {
  dtl::bench::ParseScaleFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
