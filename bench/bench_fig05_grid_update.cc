// Paper Fig. 5: UPDATE run time vs modification ratio (1/36 .. 17/36 of the
// 36-day consumption table) for Hive(HDFS), DualTable in forced-EDIT mode,
// and DualTable with the cost model.
//
// Shapes to reproduce: Hive flat across ratios (always a full rewrite);
// DT-EDIT grows with the ratio and beats Hive at small ratios; the
// cost-model series follows EDIT below the crossover and switches to
// OVERWRITE above it (paper: switch at 6/36).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using dtl::bench::Env;
using dtl::bench::MakeGridMx;
using dtl::bench::PlanMode;
using dtl::bench::RunSql;

void RunUpdateSweep(benchmark::State& state, const std::string& kind, PlanMode mode) {
  const int days = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Env env = MakeGridMx(kind, mode);  // fresh table per measurement
    auto stats = RunSql(&env, dtl::workload::GridUpdateDays(days));
    state.SetIterationTime(stats.seconds);
    state.counters["model_s"] = stats.modeled_seconds;
    state.counters["rows_changed"] = static_cast<double>(stats.affected_rows);
    state.counters["plan_edit"] = stats.plan == "EDIT" ? 1 : 0;
  }
  state.SetLabel(dtl::bench::DayLabel(days));
}

void BM_Fig05_Hive(benchmark::State& state) {
  RunUpdateSweep(state, "hive", PlanMode::kCostModel);
}
void BM_Fig05_DualTableEdit(benchmark::State& state) {
  RunUpdateSweep(state, "dualtable", PlanMode::kForceEdit);
}
void BM_Fig05_DualTableCostModel(benchmark::State& state) {
  RunUpdateSweep(state, "dualtable", PlanMode::kCostModel);
}

}  // namespace

BENCHMARK(BM_Fig05_Hive)
    ->DenseRange(1, 17, 2)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);
BENCHMARK(BM_Fig05_DualTableEdit)
    ->DenseRange(1, 17, 2)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);
BENCHMARK(BM_Fig05_DualTableCostModel)
    ->DenseRange(1, 17, 2)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);

int main(int argc, char** argv) {
  dtl::bench::ParseScaleFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
