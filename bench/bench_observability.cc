// Instrumentation-overhead guard for the unified observability layer
// (DESIGN.md §10, §14). Runs the Fig. 4 grid-read scan (SELECT #2: COUNT(*)
// on the big consumption table, executed through the SQL engine) against two
// sessions — one fully wired (metrics registry with windowed histograms,
// session scan meter forwarding into the global meter, tracer configured but
// idle, cost audit armed, query log + metrics recorder live) and one with
// SessionOptions::observability = false — and writes both rows/sec rates
// plus the relative overhead to BENCH_observability.json.
//
// The two sides are measured INTERLEAVED, one scan each per round, and each
// side's rate comes from its minimum scan time. Sequential A-then-B runs on
// a shared container showed up to ~2.6% spread between two identical
// baseline runs (thermal / scheduling drift); strict alternation cancels
// that drift so the differential actually measures instrumentation cost.
// The contract is overhead_pct < 3. Bisecting with this estimator puts the
// query-log capture + windowed histograms at ~1 point of it; the rest is
// the §10 substrate (per-batch meter forwarding, tracer probes), which was
// originally quoted at 1.9% from a sequential estimator whose A/A bias the
// interleaved one exposed — expect ~3-5% on a noisy shared container. The
// instrumented session also runs a small cost-model DML mix so the JSON
// carries a nonzero cost_audit_records count.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>

#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/telemetry_clock.h"
#include "workload/grid_gen.h"

namespace {

using dtl::bench::Env;
using dtl::bench::MakeGridTableII;

struct ObsBenchResult {
  uint64_t rows = 0;
  double rows_per_sec_on = 0;
  double rows_per_sec_off = 0;
  uint64_t cost_audit_records = 0;
  double hist_observe_ns = 0;   // per-Observe cost with the window ring live
  double hist_rotate_ns = 0;    // per-MaybeRotate cost, rotation forced
  uint64_t recorder_samples = 0;  // recorder ticks taken during the on-run
};

ObsBenchResult& Result() {
  static ObsBenchResult result;
  return result;
}

double RunScan(Env* env, const std::string& select) {
  dtl::Stopwatch watch;
  auto result = env->session->Execute(select);
  if (!result.ok()) {
    std::fprintf(stderr, "observability bench: select failed: %s\n",
                 result.status().message().c_str());
    return -1;
  }
  return watch.ElapsedSeconds();
}

/// Interleaved differential: one baseline scan then one instrumented scan
/// per round, minimum per side. On the instrumented session every scan flows
/// through the session meter (which forwards into the global meter),
/// sql.statements counters tick, windowed histograms observe, the query log
/// records the statement, and the idle tracer is probed per stage — the
/// exact hot path of a production query. The baseline session wires none of
/// it.
bool MeasureScanOverhead() {
  Env off = MakeGridTableII("dualtable", false);
  Env on = MakeGridTableII("dualtable", true);
  const std::string select = dtl::workload::GridSelect2();

  constexpr int kWarmup = 3;
  constexpr int kRounds = 1000;
  for (int i = 0; i < kWarmup; ++i) {
    if (RunScan(&off, select) < 0 || RunScan(&on, select) < 0) return false;
  }

  double best_off = std::numeric_limits<double>::infinity();
  double best_on = std::numeric_limits<double>::infinity();
  double since_tick = 0;
  for (int i = 0; i < kRounds; ++i) {
    const double s_off = RunScan(&off, select);
    const double s_on = RunScan(&on, select);
    if (s_off < 0 || s_on < 0) return false;
    best_off = std::min(best_off, s_off);
    best_on = std::min(best_on, s_on);
    // The recorder ticks between rounds at roughly the background sampler's
    // cadence (sub-second, time-based — not per query, which no deployment
    // does): the instrumented scans run with the window ring and the sample
    // ring both live, which is the state the <3% contract covers.
    since_tick += s_on;
    if (on.session->recorder() != nullptr && since_tick >= 0.25) {
      on.session->recorder()->Tick();
      since_tick = 0;
    }
  }

  auto& result = Result();
  result.rows = on.rows;
  if (best_off > 0) result.rows_per_sec_off = static_cast<double>(off.rows) / best_off;
  if (best_on > 0) result.rows_per_sec_on = static_cast<double>(on.rows) / best_on;
  std::fprintf(stderr,
               "grid_read_scan: off %.3f ms (%.3e rows/s)  on %.3f ms (%.3e "
               "rows/s)  [%d interleaved rounds]\n",
               best_off * 1e3, result.rows_per_sec_off, best_on * 1e3,
               result.rows_per_sec_on, kRounds);

  // A small cost-model DML mix: one update on each side of the EDIT /
  // OVERWRITE frontier plus a delete, so the audit satellite is exercised
  // end-to-end on the same session the overhead was measured on.
  dtl::bench::RunSql(&on, dtl::workload::GridUpdateDays(1));
  dtl::bench::RunSql(&on, dtl::workload::GridUpdateDays(30));
  dtl::bench::RunSql(&on, dtl::workload::GridDeleteDays(1));
  result.cost_audit_records = on.session->cost_audit()->size();
  if (on.session->recorder() != nullptr) {
    result.recorder_samples = on.session->recorder()->total_samples();
  }
  return true;
}

/// Micro-costs of the windowed histogram itself: the per-Observe price with
/// the slot ring live (lifetime + window writes), and the per-MaybeRotate
/// price with a rotation forced every call (a manual clock jumping one slot
/// width per call — the worst case; the steady-state early exit is cheaper).
void MeasureHistogramMicro() {
  auto& result = Result();
  dtl::obs::Histogram hist;

  constexpr uint64_t kObserves = 4'000'000;
  dtl::Stopwatch watch;
  for (uint64_t i = 0; i < kObserves; ++i) hist.Observe(i & 4095);
  result.hist_observe_ns = watch.ElapsedSeconds() * 1e9 / kObserves;

  dtl::obs::ManualTelemetryClock clock;
  hist.MaybeRotate(clock.NowMicros());  // anchor the ring
  constexpr uint64_t kRotates = 200'000;
  watch.Restart();
  for (uint64_t i = 0; i < kRotates; ++i) {
    clock.Advance(dtl::obs::Histogram::kDefaultSlotWidthMicros);
    hist.MaybeRotate(clock.NowMicros());
  }
  result.hist_rotate_ns = watch.ElapsedSeconds() * 1e9 / kRotates;
}

void FlushObservabilityBench(const std::string& path) {
  const ObsBenchResult& result = Result();
  if (result.rows_per_sec_on <= 0 || result.rows_per_sec_off <= 0) {
    std::fprintf(stderr, "observability bench incomplete; not writing %s\n",
                 path.c_str());
    return;
  }
  const double overhead_pct = (result.rows_per_sec_off - result.rows_per_sec_on) /
                              result.rows_per_sec_off * 100.0;
  char buf[640];
  std::snprintf(buf, sizeof(buf),
                "  {\"workload\":\"grid\",\"scan\":\"fig04_select2\","
                "\"rows\":%llu,\"rows_per_sec_on\":%.1f,"
                "\"rows_per_sec_off\":%.1f,\"overhead_pct\":%.3f,"
                "\"cost_audit_records\":%llu,"
                "\"hist_observe_ns\":%.2f,\"hist_rotate_ns\":%.2f,"
                "\"recorder_samples\":%llu}",
                static_cast<unsigned long long>(result.rows),
                result.rows_per_sec_on, result.rows_per_sec_off, overhead_pct,
                static_cast<unsigned long long>(result.cost_audit_records),
                result.hist_observe_ns, result.hist_rotate_ns,
                static_cast<unsigned long long>(result.recorder_samples));
  std::ofstream out(path, std::ios::trunc);
  out << "[\n" << buf << "\n]\n";
  std::fprintf(stderr, "wrote %s (overhead %.3f%%, contract < 3%%)\n",
               path.c_str(), overhead_pct);
}

}  // namespace

int main(int argc, char** argv) {
  dtl::bench::ParseScaleFlag(&argc, argv);
  if (!MeasureScanOverhead()) return 1;
  MeasureHistogramMicro();
  FlushObservabilityBench("BENCH_observability.json");
  return 0;
}
