// Instrumentation-overhead guard for the unified observability layer
// (DESIGN.md §10). Runs the Fig. 4 grid-read scan (SELECT #2: COUNT(*) on
// the big consumption table, executed through the SQL engine) twice — once
// on a fully wired session (metrics registry, session scan meter forwarding
// into the global meter, tracer configured but idle, cost audit armed) and
// once with SessionOptions::observability = false — and writes both
// rows/sec rates plus the relative overhead to BENCH_observability.json.
// The contract is overhead_pct < 3. The instrumented session also runs a
// small cost-model DML mix so the JSON carries a nonzero
// cost_audit_records count.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>

#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "workload/grid_gen.h"

namespace {

using dtl::bench::Env;
using dtl::bench::MakeGridTableII;

struct ObsBenchResult {
  uint64_t rows = 0;
  double rows_per_sec_on = 0;
  double rows_per_sec_off = 0;
  uint64_t cost_audit_records = 0;
};

ObsBenchResult& Result() {
  static ObsBenchResult result;
  return result;
}

void BM_GridReadScan(benchmark::State& state, bool observability) {
  Env env = MakeGridTableII("dualtable", observability);
  const std::string select = dtl::workload::GridSelect2();

  // On the instrumented session every scan flows through the session meter
  // (which forwards into the global meter), sql.statements counters tick,
  // and the idle tracer is probed per stage — the exact hot path of a
  // production query. The baseline session wires none of it. Rows/sec comes
  // from the MINIMUM iteration time — the most noise-robust point estimate
  // on a shared container.
  double best = std::numeric_limits<double>::infinity();
  for (auto _ : state) {
    dtl::Stopwatch watch;
    auto result = env.session->Execute(select);
    const double s = watch.ElapsedSeconds();
    if (!result.ok()) { state.SkipWithError("select failed"); return; }
    state.SetIterationTime(s);
    best = std::min(best, s);
  }
  const uint64_t rows = env.rows;
  state.counters["rows_per_sec"] =
      best > 0 ? static_cast<double>(rows) / best : 0.0;

  auto& result = Result();
  if (best > 0 && rows > 0) {
    result.rows = rows;
    (observability ? result.rows_per_sec_on : result.rows_per_sec_off) =
        static_cast<double>(rows) / best;
  }
  if (observability) {
    // A small cost-model DML mix: one update on each side of the EDIT /
    // OVERWRITE frontier plus a delete, so the audit satellite is exercised
    // end-to-end on the same session the overhead was measured on.
    dtl::bench::RunSql(&env, dtl::workload::GridUpdateDays(1));
    dtl::bench::RunSql(&env, dtl::workload::GridUpdateDays(30));
    dtl::bench::RunSql(&env, dtl::workload::GridDeleteDays(1));
    result.cost_audit_records = env.session->cost_audit()->size();
  }
}

void FlushObservabilityBench(const std::string& path) {
  const ObsBenchResult& result = Result();
  if (result.rows_per_sec_on <= 0 || result.rows_per_sec_off <= 0) {
    std::fprintf(stderr, "observability bench incomplete; not writing %s\n",
                 path.c_str());
    return;
  }
  const double overhead_pct = (result.rows_per_sec_off - result.rows_per_sec_on) /
                              result.rows_per_sec_off * 100.0;
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  {\"workload\":\"grid\",\"scan\":\"fig04_select2\","
                "\"rows\":%llu,\"rows_per_sec_on\":%.1f,"
                "\"rows_per_sec_off\":%.1f,\"overhead_pct\":%.3f,"
                "\"cost_audit_records\":%llu}",
                static_cast<unsigned long long>(result.rows),
                result.rows_per_sec_on, result.rows_per_sec_off, overhead_pct,
                static_cast<unsigned long long>(result.cost_audit_records));
  std::ofstream out(path, std::ios::trunc);
  out << "[\n" << buf << "\n]\n";
  std::fprintf(stderr, "wrote %s (overhead %.3f%%, contract < 3%%)\n",
               path.c_str(), overhead_pct);
}

}  // namespace

BENCHMARK_CAPTURE(BM_GridReadScan, metrics_off, false)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime();
BENCHMARK_CAPTURE(BM_GridReadScan, metrics_on, true)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime();

int main(int argc, char** argv) {
  dtl::bench::ParseScaleFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  FlushObservabilityBench("BENCH_observability.json");
  return 0;
}
