// Paper Fig. 12: DML performance on the TPC-H data set across the three
// systems. DML-a updates 5% of lineitem, DML-b deletes 2% of lineitem,
// DML-c joins lineitem with orders and updates ~16% of orders.
//
// Shape to reproduce: "DualTable is most efficient for all updates, since
// it avoids unnecessary writes that Hive on HDFS would have to perform, but
// features faster reads than HBase."
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "common/stopwatch.h"

namespace {

using dtl::bench::Env;
using dtl::bench::MakeTpch;
using dtl::bench::PlanMode;
using dtl::bench::RunSql;

void BM_DmlA(benchmark::State& state, const std::string& kind) {
  for (auto _ : state) {
    Env env = MakeTpch(kind);
    auto stats = RunSql(&env, dtl::workload::DmlA("lineitem"));
    state.SetIterationTime(stats.seconds);
    state.counters["model_s"] = stats.modeled_seconds;
    state.counters["rows_changed"] = static_cast<double>(stats.affected_rows);
  }
}

void BM_DmlB(benchmark::State& state, const std::string& kind) {
  for (auto _ : state) {
    Env env = MakeTpch(kind);
    auto stats = RunSql(&env, dtl::workload::DmlB("lineitem"));
    state.SetIterationTime(stats.seconds);
    state.counters["model_s"] = stats.modeled_seconds;
    state.counters["rows_changed"] = static_cast<double>(stats.affected_rows);
  }
}

void BM_DmlC(benchmark::State& state, const std::string& kind) {
  for (auto _ : state) {
    Env env = MakeTpch(kind, PlanMode::kCostModel, /*with_orders=*/true);
    auto li = env.session->catalog()->Lookup("lineitem");
    auto ord = env.session->catalog()->Lookup("orders");
    dtl::Stopwatch watch;
    auto result = dtl::workload::RunDmlC(ord->table.get(), li->table.get());
    double seconds = watch.ElapsedSeconds();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    state.SetIterationTime(seconds);
    if (result.ok()) {
      state.counters["rows_changed"] = static_cast<double>(result->rows_matched);
    }
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_DmlA, hive_hdfs, "hive")->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
BENCHMARK_CAPTURE(BM_DmlA, hive_hbase, "hbase")->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
BENCHMARK_CAPTURE(BM_DmlA, dualtable, "dualtable")->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
BENCHMARK_CAPTURE(BM_DmlB, hive_hdfs, "hive")->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
BENCHMARK_CAPTURE(BM_DmlB, hive_hbase, "hbase")->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
BENCHMARK_CAPTURE(BM_DmlB, dualtable, "dualtable")->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
BENCHMARK_CAPTURE(BM_DmlC, hive_hdfs, "hive")->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
BENCHMARK_CAPTURE(BM_DmlC, hive_hbase, "hbase")->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
BENCHMARK_CAPTURE(BM_DmlC, dualtable, "dualtable")->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);

int main(int argc, char** argv) {
  dtl::bench::ParseScaleFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
