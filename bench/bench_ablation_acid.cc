// Ablation (paper §V-C): DualTable's HBase-backed attached table vs the
// HIVE-5317 base+delta design where deltas live in the same HDFS format and
// must be scanned sequentially on every read.
//
// We apply N successive small update transactions and then time a full
// read. ACID's merge-on-read must re-scan every delta file (cost grows with
// the number of transactions and with deltas holding WHOLE records); the
// DualTable UnionRead merges one sorted attached stream. Also measures
// ACID's minor compaction as its mitigation.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "common/stopwatch.h"

namespace {

using dtl::bench::Env;
using dtl::bench::MakeTpch;
using dtl::bench::PlanMode;
using dtl::bench::RunSql;

std::string SmallUpdate(int index) {
  // Each transaction touches a ~1% slice at a different date offset.
  const int64_t lo = dtl::workload::kDateEpoch + index * 24;
  const int64_t hi = lo + 24;
  return "UPDATE lineitem SET l_discount = 0.5 WHERE l_shipdate >= " +
         std::to_string(lo) + " AND l_shipdate < " + std::to_string(hi) +
         " WITH RATIO 0.01";
}

const char kScanSql[] = "SELECT COUNT(*), SUM(l_discount) FROM lineitem";

void RunReadAfterNTransactions(benchmark::State& state, const std::string& kind,
                               PlanMode mode, bool minor_compact) {
  const int transactions = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Env env = MakeTpch(kind, mode);
    for (int i = 0; i < transactions; ++i) RunSql(&env, SmallUpdate(i));
    if (minor_compact) {
      auto entry = env.session->catalog()->Lookup("lineitem");
      auto* acid = dynamic_cast<dtl::baseline::AcidTable*>(entry->table.get());
      if (acid != nullptr) {
        auto st = acid->MinorCompact();
        if (!st.ok()) state.SkipWithError(st.ToString().c_str());
      }
    }
    auto stats = RunSql(&env, kScanSql);
    state.SetIterationTime(stats.seconds);
    state.counters["model_s"] = stats.modeled_seconds;
  }
  state.SetLabel(std::to_string(transactions) + " txns");
}

void BM_AblationAcid_DualTableUnionRead(benchmark::State& state) {
  RunReadAfterNTransactions(state, "dualtable", PlanMode::kForceEdit, false);
}
void BM_AblationAcid_AcidMergeOnRead(benchmark::State& state) {
  RunReadAfterNTransactions(state, "acid", PlanMode::kCostModel, false);
}
void BM_AblationAcid_AcidAfterMinorCompact(benchmark::State& state) {
  RunReadAfterNTransactions(state, "acid", PlanMode::kCostModel, true);
}

void TxnArgs(benchmark::internal::Benchmark* bench) {
  for (int txns : {1, 4, 16, 32, 64}) bench->Arg(txns);
  bench->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
}

}  // namespace

BENCHMARK(BM_AblationAcid_DualTableUnionRead)->Apply(TxnArgs);
BENCHMARK(BM_AblationAcid_AcidMergeOnRead)->Apply(TxnArgs);
BENCHMARK(BM_AblationAcid_AcidAfterMinorCompact)->Apply(TxnArgs);

int main(int argc, char** argv) {
  dtl::bench::ParseScaleFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
