// Paper Table I: ratio of DML operations in the five core grid business
// scenarios. Reproduces the derived %DML column from the statement counts
// and verifies the paper's headline claim that every scenario is >= 50% DML.
// Also times a replayed statement mix drawn from scenario 1's proportions to
// show what that mix costs on DualTable vs Hive.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "workload/grid_gen.h"

namespace {

using dtl::bench::Env;
using dtl::bench::MakeGridMx;
using dtl::bench::RunSql;

void PrintTableI() {
  std::printf("== Reproduction of paper Table I: RATIO OF DML OPERATIONS ==\n");
  std::printf("%-9s %6s %7s %7s %6s %6s\n", "Scenario", "Total", "Delete", "Update",
              "Merge", "%DML");
  for (const auto& mix : dtl::workload::ScenarioMixes()) {
    std::printf("%-9d %6d %7d %7d %6d %5.0f%%\n", mix.scenario, mix.total, mix.deletes,
                mix.updates, mix.merges, mix.dml_percent());
  }
  std::printf("(paper reports 62 / 72 / 79 / 50 / 63)\n\n");
}

/// Replays a scenario-1-proportioned mini statement mix (per 10 statements:
/// ~4 updates, ~1 delete, ~1 merge-as-update, ~4 reads).
void BM_ScenarioMixReplay(benchmark::State& state, const std::string& kind) {
  for (auto _ : state) {
    Env env = MakeGridMx(kind);
    dtl::Stopwatch watch;
    for (int round = 0; round < 2; ++round) {
      RunSql(&env, "UPDATE tj_gbsjwzl_mx SET cjbm = 'u1' WHERE rq = 736001 "
                   "WITH RATIO 0.028");
      RunSql(&env, "UPDATE tj_gbsjwzl_mx SET yhlx = 9 WHERE rq = 736002 AND yhlx = 3 "
                   "WITH RATIO 0.001");
      RunSql(&env, "SELECT COUNT(*), SUM(yhlx) FROM tj_gbsjwzl_mx");
      RunSql(&env, "UPDATE tj_gbsjwzl_mx SET cjbm = 'merged' WHERE dwdm = 'org_05' "
                   "AND rq = 736003 WITH RATIO 0.001");
      RunSql(&env, "DELETE FROM tj_gbsjwzl_mx WHERE rq = 736004 AND dwdm = 'org_09' "
                   "WITH RATIO 0.001");
      RunSql(&env, "SELECT yhlx, COUNT(*) FROM tj_gbsjwzl_mx GROUP BY yhlx");
    }
    state.SetIterationTime(watch.ElapsedSeconds());
    state.counters["rows"] = static_cast<double>(env.rows);
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_ScenarioMixReplay, hive, "hive")
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_ScenarioMixReplay, dualtable, "dualtable")
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);

int main(int argc, char** argv) {
  dtl::bench::ParseScaleFlag(&argc, argv);
  PrintTableI();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
