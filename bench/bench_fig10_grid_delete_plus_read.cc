// Paper Fig. 10: total run time of the DELETE plus the following SELECT.
// Series: Hive (+read), DualTable-EDIT (+UnionRead), DualTable cost model
// (+read).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using dtl::bench::Env;
using dtl::bench::MakeGridMx;
using dtl::bench::PlanMode;
using dtl::bench::RunSql;

void RunDeletePlusRead(benchmark::State& state, const std::string& kind, PlanMode mode) {
  const int days = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Env env = MakeGridMx(kind, mode);
    auto del = RunSql(&env, dtl::workload::GridDeleteDays(days));
    auto read = RunSql(&env, dtl::workload::GridReadAfterDml());
    state.SetIterationTime(del.seconds + read.seconds);
    state.counters["model_s"] = del.modeled_seconds + read.modeled_seconds;
    state.counters["plan_edit"] = del.plan == "EDIT" ? 1 : 0;
  }
  state.SetLabel(dtl::bench::DayLabel(days));
}

void BM_Fig10_HivePlusRead(benchmark::State& state) {
  RunDeletePlusRead(state, "hive", PlanMode::kCostModel);
}
void BM_Fig10_DualTableEditPlusUnionRead(benchmark::State& state) {
  RunDeletePlusRead(state, "dualtable", PlanMode::kForceEdit);
}
void BM_Fig10_DualTablePlusRead(benchmark::State& state) {
  RunDeletePlusRead(state, "dualtable", PlanMode::kCostModel);
}

}  // namespace

BENCHMARK(BM_Fig10_HivePlusRead)
    ->DenseRange(1, 17, 2)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);
BENCHMARK(BM_Fig10_DualTableEditPlusUnionRead)
    ->DenseRange(1, 17, 2)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);
BENCHMARK(BM_Fig10_DualTablePlusRead)
    ->DenseRange(1, 17, 2)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);

int main(int argc, char** argv) {
  dtl::bench::ParseScaleFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
