// Paper Fig. 13: UPDATE run time on TPC-H lineitem for ratios 1%..50%.
// Series: DualTable-EDIT, Hive(HDFS), DualTable cost model.
//
// Shapes to reproduce: Hive flat; EDIT linear in the ratio; cost model
// follows EDIT until the crossover (paper: ~35% with k=1) and then tracks
// Hive's overwrite cost plus a small overhead.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using dtl::bench::Env;
using dtl::bench::MakeTpch;
using dtl::bench::PlanMode;
using dtl::bench::RunSql;

std::string UpdateSql(int percent) {
  return "UPDATE lineitem SET l_discount = 0.99 WHERE " +
         dtl::workload::LineitemRatioPredicate(percent / 100.0) + " WITH RATIO " +
         std::to_string(percent / 100.0);
}

void RunUpdateSweep(benchmark::State& state, const std::string& kind, PlanMode mode) {
  const int percent = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Env env = MakeTpch(kind, mode);
    auto stats = RunSql(&env, UpdateSql(percent));
    state.SetIterationTime(stats.seconds);
    state.counters["model_s"] = stats.modeled_seconds;
    state.counters["rows_changed"] = static_cast<double>(stats.affected_rows);
    state.counters["plan_edit"] = stats.plan == "EDIT" ? 1 : 0;
  }
  state.SetLabel(std::to_string(percent) + "%");
}

void BM_Fig13_DualTableEdit(benchmark::State& state) {
  RunUpdateSweep(state, "dualtable", PlanMode::kForceEdit);
}
void BM_Fig13_Hive(benchmark::State& state) {
  RunUpdateSweep(state, "hive", PlanMode::kCostModel);
}
void BM_Fig13_DualTableCostModel(benchmark::State& state) {
  RunUpdateSweep(state, "dualtable", PlanMode::kCostModel);
}

void RatioArgs(benchmark::internal::Benchmark* bench) {
  for (int percent : {1, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50}) bench->Arg(percent);
  bench->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
}

}  // namespace

BENCHMARK(BM_Fig13_DualTableEdit)->Apply(RatioArgs);
BENCHMARK(BM_Fig13_Hive)->Apply(RatioArgs);
BENCHMARK(BM_Fig13_DualTableCostModel)->Apply(RatioArgs);

int main(int argc, char** argv) {
  dtl::bench::ParseScaleFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
