// Obs-driven adaptive maintenance comparison (BENCH_adaptive_maintenance.json).
//
// A bursty EDIT stream over the same table layout: every kBurstEvery-th round
// updates a dense slice of one rotating file; the rounds between are idle
// (read-only). Each round runs one BackgroundMaintenance() pass under one of
// two trigger policies:
//   * preview:  PR 7 behavior — the round always runs the preview scan over
//               the attached store and compacts whatever it selects, burst
//               round or not;
//   * adaptive: the round first consults live telemetry (the delta-density
//               gauge and the windowed union-read p95) and SKIPS everything —
//               preview scan included — until a trigger fires.
// Both policies compact the same bursts, so the read-after-update profile
// must match (adaptive p99/p50 at or under preview's); the win is that the
// adaptive run issues preview scans only on trigger rounds, visible in the
// maintenance.* counters the summary records.
//
// The adaptive session also drives the MetricsRecorder ring (one Tick per
// round) and dumps dtl-stats.jsonl / dtl-stats.prom — the stats files CI
// validates with scripts/check_stats_format.py.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "dualtable/dual_table.h"
#include "obs/recorder.h"
#include "sql/session.h"

namespace {

using dtl::Row;
using dtl::Value;

constexpr int kFiles = 8;
constexpr int kRounds = 32;
constexpr int kBurstEvery = 4;               // one burst, then idle rounds
constexpr double kUpdateFraction = 0.6;      // of one file, per burst
// Selection bar AND adaptive density trigger, pinned below the table-wide
// density one burst produces (0.6 / 8 files = 0.075) so a single burst is
// enough to fire the trigger; idle rounds sit at ~0 and skip.
constexpr double kDensityBar = 0.06;

[[noreturn]] void Die(const std::string& what) {
  std::fprintf(stderr, "bench_adaptive_maintenance failed: %s\n", what.c_str());
  std::exit(1);
}

struct RoundEntry {
  std::string mode;
  int round = 0;
  bool burst = false;
  double read_modeled_seconds = 0;
  double read_wall_seconds = 0;
  double maintenance_modeled_seconds = 0;
  uint64_t attached_bytes = 0;
};

struct ModeSummary {
  std::string mode;
  double read_p50 = 0;
  double read_p99 = 0;
  double flatness = 0;
  double maintenance_total = 0;
  uint64_t rounds = 0;
  uint64_t preview_scans = 0;
  uint64_t skips = 0;
  uint64_t incremental_compacts = 0;
  uint64_t triggers_density = 0;
  uint64_t triggers_latency = 0;
  uint64_t triggers_bytes = 0;
};

dtl::Schema BenchSchema() {
  return dtl::Schema({{"id", dtl::DataType::kInt64}, {"amount", dtl::DataType::kDouble}});
}

std::shared_ptr<dtl::dual::DualTable> MakeTable(dtl::sql::Session* session,
                                                const std::string& name,
                                                dtl::dual::DualTableOptions options,
                                                int64_t rows_per_file) {
  auto table = session->CreateDualTable(name, BenchSchema(), options);
  if (!table.ok()) Die("create " + name + ": " + table.status().ToString());
  for (int f = 0; f < kFiles; ++f) {
    std::vector<Row> batch;
    batch.reserve(static_cast<size_t>(rows_per_file));
    for (int64_t i = 0; i < rows_per_file; ++i) {
      const int64_t id = f * rows_per_file + i;
      batch.push_back(Row{Value::Int64(id), Value::Double(id * 0.5)});
    }
    if (!(*table)->InsertRows(batch).ok()) Die("insert file " + std::to_string(f));
  }
  return *table;
}

dtl::Status UpdateRange(dtl::dual::DualTable* table, int64_t lo, int64_t hi) {
  dtl::table::ScanSpec filter;
  filter.predicate_columns = {0};
  filter.predicate = [lo, hi](const Row& row) {
    return row[0].AsInt64() >= lo && row[0].AsInt64() < hi;
  };
  dtl::table::Assignment assign;
  assign.column = 1;
  assign.input_columns = {1};
  assign.compute = [](const Row& row) {
    return Value::Double(row[1].AsDouble() + 0.25);
  };
  return table->Update(filter, {assign}).status();
}

uint64_t CountRows(dtl::dual::DualTable* table) {
  auto it = table->ScanBatches(dtl::table::ScanSpec{});
  if (!it.ok()) Die("scan: " + it.status().ToString());
  dtl::table::RowBatch batch;
  uint64_t rows = 0;
  while ((*it)->Next(&batch)) rows += batch.size();
  if (!(*it)->status().ok()) Die("scan: " + (*it)->status().ToString());
  return rows;
}

/// Sum of every counter keyed `name` or `name{...}` in the snapshot.
uint64_t SumCounters(const dtl::obs::MetricsSnapshot& snap, const std::string& name) {
  uint64_t sum = 0;
  const std::string open = name + "{";
  for (const auto& [key, value] : snap.counters) {
    if (key == name ||
        (key.size() > open.size() && key.compare(0, open.size(), open) == 0)) {
      sum += value;
    }
  }
  return sum;
}

std::vector<RoundEntry> RunMode(const std::string& mode, int64_t rows_per_file,
                                ModeSummary* summary) {
  auto session = dtl::sql::Session::Create({});
  if (!session.ok()) Die("session: " + session.status().ToString());

  dtl::dual::DualTableOptions options = (*session)->options().dual_defaults;
  options.plan_mode = dtl::dual::DualTableOptions::PlanMode::kForceEdit;
  options.writer_options.stripe_rows = 512;
  options.rewrite_file_rows = static_cast<uint64_t>(rows_per_file);
  options.compact_threshold = 1.0;  // keep the bytes fallback out of the way
  options.incremental_density_override = kDensityBar;
  options.adaptive_maintenance = mode == "adaptive";
  auto table = MakeTable(session->get(), "m_" + mode, options, rows_per_file);

  const uint64_t total_rows = static_cast<uint64_t>(kFiles) * rows_per_file;
  const auto dense_rows = static_cast<int64_t>(rows_per_file * kUpdateFraction);

  std::vector<RoundEntry> rounds;
  rounds.reserve(kRounds);
  for (int r = 0; r < kRounds; ++r) {
    RoundEntry entry;
    entry.mode = mode;
    entry.round = r;
    entry.burst = r % kBurstEvery == 0;
    if (entry.burst) {
      const int64_t file = (r / kBurstEvery) % kFiles;
      const int64_t lo = file * rows_per_file;
      if (!UpdateRange(table.get(), lo, lo + dense_rows).ok()) Die("update");
      // Flush so attached bytes flow through the metered file system and the
      // modelled read cost reflects the real UNION READ debt.
      if (!table->attached()->store()->Flush().ok()) Die("flush");
    }

    (*session)->MarkIo();
    table->BackgroundMaintenance();
    entry.maintenance_modeled_seconds = (*session)->ModeledSeconds((*session)->IoDelta());

    // Warm-up scan primes the ORC reader cache; the timed read below prices
    // the steady state, not the cold read of files a rewrite just published.
    if (CountRows(table.get()) != total_rows) Die("row count drifted");

    const dtl::table::ScanSnapshot scan_before = dtl::table::GlobalScanMeter().Snapshot();
    (*session)->MarkIo();
    dtl::Stopwatch watch;
    if (CountRows(table.get()) != total_rows) Die("row count drifted");
    entry.read_wall_seconds = watch.ElapsedSeconds();
    const dtl::table::ScanSnapshot scan =
        dtl::table::GlobalScanMeter().Snapshot() - scan_before;
    const dtl::fs::IoSnapshot io = (*session)->IoDelta();
    entry.read_modeled_seconds = (*session)->cluster()->ScanSeconds(
        scan.bytes + io.hbase_bytes_read + io.hdfs_bytes_read, 1);
    entry.attached_bytes = table->attached()->ApproximateBytes();
    rounds.push_back(entry);

    // One recorder sample per round: the sample ring and the dtl-stats dump
    // files carry real maintenance.* movement.
    if ((*session)->recorder() != nullptr) (*session)->recorder()->Tick();
  }

  const dtl::obs::MetricsSnapshot snap = (*session)->metrics()->Snapshot();
  summary->mode = mode;
  summary->rounds = SumCounters(snap, "maintenance.rounds");
  summary->preview_scans = SumCounters(snap, "maintenance.preview_scans");
  summary->skips = SumCounters(snap, "maintenance.skips");
  summary->incremental_compacts = SumCounters(snap, "maintenance.incremental_compacts");
  summary->triggers_density = snap.counters.count("maintenance.triggers{density}")
                                  ? snap.counters.at("maintenance.triggers{density}")
                                  : 0;
  summary->triggers_latency = snap.counters.count("maintenance.triggers{latency}")
                                  ? snap.counters.at("maintenance.triggers{latency}")
                                  : 0;
  summary->triggers_bytes = snap.counters.count("maintenance.triggers{bytes}")
                                ? snap.counters.at("maintenance.triggers{bytes}")
                                : 0;

  std::vector<double> reads;
  for (const RoundEntry& e : rounds) {
    reads.push_back(e.read_modeled_seconds);
    summary->maintenance_total += e.maintenance_modeled_seconds;
  }
  std::sort(reads.begin(), reads.end());
  summary->read_p50 = reads[reads.size() / 2];
  summary->read_p99 =
      reads[std::min(reads.size() - 1, static_cast<size_t>(reads.size() * 0.99))];
  summary->flatness = summary->read_p50 > 0 ? summary->read_p99 / summary->read_p50 : 0;

  if (mode == "adaptive") {
    dtl::Status wrote = (*session)->WriteStatsFiles(".");
    if (!wrote.ok()) Die("stats dump: " + wrote.ToString());
    std::fprintf(stderr, "wrote ./dtl-stats.jsonl and ./dtl-stats.prom\n");
  }
  return rounds;
}

void WriteJson(const std::vector<RoundEntry>& rounds,
               const std::vector<ModeSummary>& summaries, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"rounds\": [\n";
  for (size_t i = 0; i < rounds.size(); ++i) {
    const RoundEntry& e = rounds[i];
    char buf[384];
    std::snprintf(buf, sizeof(buf),
                  "    {\"mode\":\"%s\",\"round\":%d,\"burst\":%s,"
                  "\"read_modeled_seconds\":%.6f,\"read_wall_seconds\":%.6f,"
                  "\"maintenance_modeled_seconds\":%.6f,\"attached_bytes\":%llu}",
                  e.mode.c_str(), e.round, e.burst ? "true" : "false",
                  e.read_modeled_seconds, e.read_wall_seconds,
                  e.maintenance_modeled_seconds,
                  static_cast<unsigned long long>(e.attached_bytes));
    out << buf << (i + 1 < rounds.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"summary\": [\n";
  for (size_t i = 0; i < summaries.size(); ++i) {
    const ModeSummary& s = summaries[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"mode\":\"%s\",\"read_p50\":%.6f,\"read_p99\":%.6f,"
        "\"read_p99_over_p50\":%.3f,\"maintenance_modeled_total\":%.6f,"
        "\"rounds\":%llu,\"preview_scans\":%llu,\"skips\":%llu,"
        "\"incremental_compacts\":%llu,\"triggers_density\":%llu,"
        "\"triggers_latency\":%llu,\"triggers_bytes\":%llu}",
        s.mode.c_str(), s.read_p50, s.read_p99, s.flatness, s.maintenance_total,
        static_cast<unsigned long long>(s.rounds),
        static_cast<unsigned long long>(s.preview_scans),
        static_cast<unsigned long long>(s.skips),
        static_cast<unsigned long long>(s.incremental_compacts),
        static_cast<unsigned long long>(s.triggers_density),
        static_cast<unsigned long long>(s.triggers_latency),
        static_cast<unsigned long long>(s.triggers_bytes));
    out << buf << (i + 1 < summaries.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::fprintf(stderr, "wrote %zu rounds, %zu summaries to %s\n", rounds.size(),
               summaries.size(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  dtl::bench::ParseScaleFlag(&argc, argv);
  const auto rows_per_file = static_cast<int64_t>(1500 * dtl::bench::ScaleMult());

  std::vector<RoundEntry> rounds;
  std::vector<ModeSummary> summaries;
  for (const std::string mode : {"preview", "adaptive"}) {
    ModeSummary summary;
    std::vector<RoundEntry> mode_rounds = RunMode(mode, rows_per_file, &summary);
    rounds.insert(rounds.end(), mode_rounds.begin(), mode_rounds.end());
    summaries.push_back(summary);
    std::printf(
        "%-9s read p50=%.4fs p99=%.4fs (p99/p50=%.2f)  rounds=%llu "
        "preview_scans=%llu skips=%llu compacts=%llu triggers d/l/b=%llu/%llu/%llu\n",
        summary.mode.c_str(), summary.read_p50, summary.read_p99, summary.flatness,
        static_cast<unsigned long long>(summary.rounds),
        static_cast<unsigned long long>(summary.preview_scans),
        static_cast<unsigned long long>(summary.skips),
        static_cast<unsigned long long>(summary.incremental_compacts),
        static_cast<unsigned long long>(summary.triggers_density),
        static_cast<unsigned long long>(summary.triggers_latency),
        static_cast<unsigned long long>(summary.triggers_bytes));
  }

  WriteJson(rounds, summaries, "BENCH_adaptive_maintenance.json");
  return 0;
}
