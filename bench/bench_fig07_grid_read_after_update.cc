// Paper Fig. 7: run time of a SELECT issued AFTER the Fig. 5 UPDATE, i.e.
// the UnionRead cost as a function of the attached-table size. Hive's read
// is flat (data was rewritten in place); DualTable's UnionRead grows with
// the update ratio because every read merges master rows with attached
// deltas (paper: up to 2.7x slower at 18/36). DualTable runs in forced-EDIT
// mode so that every ratio actually populates the attached table.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using dtl::bench::Env;
using dtl::bench::MakeGridMx;
using dtl::bench::PlanMode;
using dtl::bench::RunSql;

void RunReadAfterUpdate(benchmark::State& state, const std::string& kind, PlanMode mode) {
  const int days = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Env env = MakeGridMx(kind, mode);
    RunSql(&env, dtl::workload::GridUpdateDays(days));  // untimed setup
    RunSql(&env, dtl::workload::GridReadAfterDml());     // warm-up read (untimed)
    auto stats = RunSql(&env, dtl::workload::GridReadAfterDml());
    state.SetIterationTime(stats.seconds);
    state.counters["model_s"] = stats.modeled_seconds;
  }
  state.SetLabel(dtl::bench::DayLabel(days));
}

void BM_Fig07_ReadInHive(benchmark::State& state) {
  RunReadAfterUpdate(state, "hive", PlanMode::kCostModel);
}
void BM_Fig07_UnionReadInDualTable(benchmark::State& state) {
  RunReadAfterUpdate(state, "dualtable", PlanMode::kForceEdit);
}

}  // namespace

BENCHMARK(BM_Fig07_ReadInHive)
    ->DenseRange(1, 17, 2)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);
BENCHMARK(BM_Fig07_UnionReadInDualTable)
    ->DenseRange(1, 17, 2)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);

int main(int argc, char** argv) {
  dtl::bench::ParseScaleFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
