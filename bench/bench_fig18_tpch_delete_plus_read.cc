// Paper Fig. 18: delete-plus-successive-read total on TPC-H lineitem.
// Series: DualTable-EDIT (+UnionRead), Hive (+read), DualTable cost model
// (+read). Shape: DualTable wins below roughly 30%; "the cost model always
// chooses the best plan".
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using dtl::bench::Env;
using dtl::bench::MakeTpch;
using dtl::bench::PlanMode;
using dtl::bench::RunSql;

std::string DeleteSql(int percent) {
  return "DELETE FROM lineitem WHERE " +
         dtl::workload::LineitemRatioPredicate(percent / 100.0) + " WITH RATIO " +
         std::to_string(percent / 100.0);
}

const char kScanSql[] =
    "SELECT COUNT(*), SUM(l_quantity), SUM(l_discount) FROM lineitem";

void RunDeletePlusRead(benchmark::State& state, const std::string& kind, PlanMode mode) {
  const int percent = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Env env = MakeTpch(kind, mode);
    auto del = RunSql(&env, DeleteSql(percent));
    auto read = RunSql(&env, kScanSql);
    state.SetIterationTime(del.seconds + read.seconds);
    state.counters["model_s"] = del.modeled_seconds + read.modeled_seconds;
    state.counters["plan_edit"] = del.plan == "EDIT" ? 1 : 0;
  }
  state.SetLabel(std::to_string(percent) + "%");
}

void BM_Fig18_DualTableEditPlusUnionRead(benchmark::State& state) {
  RunDeletePlusRead(state, "dualtable", PlanMode::kForceEdit);
}
void BM_Fig18_HivePlusRead(benchmark::State& state) {
  RunDeletePlusRead(state, "hive", PlanMode::kCostModel);
}
void BM_Fig18_DualTablePlusRead(benchmark::State& state) {
  RunDeletePlusRead(state, "dualtable", PlanMode::kCostModel);
}

void RatioArgs(benchmark::internal::Benchmark* bench) {
  for (int percent : {1, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50}) bench->Arg(percent);
  bench->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
}

}  // namespace

BENCHMARK(BM_Fig18_DualTableEditPlusUnionRead)->Apply(RatioArgs);
BENCHMARK(BM_Fig18_HivePlusRead)->Apply(RatioArgs);
BENCHMARK(BM_Fig18_DualTablePlusRead)->Apply(RatioArgs);

int main(int argc, char** argv) {
  dtl::bench::ParseScaleFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
