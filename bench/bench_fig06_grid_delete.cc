// Paper Fig. 6: DELETE run time vs deletion ratio (1/36 .. 17/36) for
// Hive(HDFS), DualTable-EDIT, and DualTable with the cost model.
//
// Shapes to reproduce: Hive's time FALLS as the ratio grows (a rewrite
// writes less data); DT-EDIT grows with the ratio (one delete marker per
// removed row); the crossover sits LOWER than the update crossover, with
// the cost model switching plans there (paper: 10/36).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using dtl::bench::Env;
using dtl::bench::MakeGridMx;
using dtl::bench::PlanMode;
using dtl::bench::RunSql;

void RunDeleteSweep(benchmark::State& state, const std::string& kind, PlanMode mode) {
  const int days = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Env env = MakeGridMx(kind, mode);
    auto stats = RunSql(&env, dtl::workload::GridDeleteDays(days));
    state.SetIterationTime(stats.seconds);
    state.counters["model_s"] = stats.modeled_seconds;
    state.counters["rows_changed"] = static_cast<double>(stats.affected_rows);
    state.counters["plan_edit"] = stats.plan == "EDIT" ? 1 : 0;
  }
  state.SetLabel(dtl::bench::DayLabel(days));
}

void BM_Fig06_Hive(benchmark::State& state) {
  RunDeleteSweep(state, "hive", PlanMode::kCostModel);
}
void BM_Fig06_DualTableEdit(benchmark::State& state) {
  RunDeleteSweep(state, "dualtable", PlanMode::kForceEdit);
}
void BM_Fig06_DualTableCostModel(benchmark::State& state) {
  RunDeleteSweep(state, "dualtable", PlanMode::kCostModel);
}

}  // namespace

BENCHMARK(BM_Fig06_Hive)
    ->DenseRange(1, 17, 2)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);
BENCHMARK(BM_Fig06_DualTableEdit)
    ->DenseRange(1, 17, 2)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);
BENCHMARK(BM_Fig06_DualTableCostModel)
    ->DenseRange(1, 17, 2)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);

int main(int argc, char** argv) {
  dtl::bench::ParseScaleFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
