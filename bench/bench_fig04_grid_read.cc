// Paper Fig. 4: read performance of Hive vs DualTable with an EMPTY attached
// table, on the two grid SELECT statements — #1 is a 3-way join with
// predicates, #2 is COUNT(*) on the big consumption table. The paper finds
// DualTable 8-12% slower due to the (empty) attached-table lookup overhead;
// the shape to reproduce is "DualTable read overhead is small".
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "dualtable/dual_table.h"
#include "exec/parallel_scan.h"

namespace {

using dtl::bench::Env;
using dtl::bench::MakeGridTableII;
using dtl::bench::RunSql;

void BM_GridSelect1(benchmark::State& state, const std::string& kind) {
  Env env = MakeGridTableII(kind);
  for (auto _ : state) {
    auto stats = RunSql(&env, dtl::workload::GridSelect1());
    state.SetIterationTime(stats.seconds);
    state.counters["model_s"] = stats.modeled_seconds;
  }
  state.counters["rows"] = static_cast<double>(env.rows);
}

void BM_GridSelect2(benchmark::State& state, const std::string& kind) {
  Env env = MakeGridTableII(kind);
  for (auto _ : state) {
    auto stats = RunSql(&env, dtl::workload::GridSelect2());
    state.SetIterationTime(stats.seconds);
    state.counters["model_s"] = stats.modeled_seconds;
  }
}

// Raw storage scan of the big consumption table, row-at-a-time (the seed
// read path, kept as ScanLegacyRows) vs the vectorized batch pipeline.
// Feeds the row-vs-batch rows/sec comparison in BENCH_scan.json.
void BM_RawScan(benchmark::State& state, const std::string& path) {
  Env env = MakeGridTableII("dualtable");
  auto entry = env.session->catalog()->Lookup("tj_gbsjwzl_mx");
  if (!entry.ok()) { state.SkipWithError("lookup failed"); return; }
  auto dual = std::dynamic_pointer_cast<dtl::dual::DualTable>(entry->table);
  if (dual == nullptr) { state.SkipWithError("not a DualTable"); return; }

  const auto before = dtl::table::GlobalScanMeter().Snapshot();
  double total_s = 0;
  uint64_t rows_per_scan = 0;
  uint64_t checksum = 0;
  for (auto _ : state) {
    dtl::Stopwatch watch;
    uint64_t n = 0;
    if (path == "row") {
      auto it = dual->ScanLegacyRows({});
      if (!it.ok()) { state.SkipWithError("scan failed"); return; }
      while ((*it)->Next()) {
        benchmark::DoNotOptimize((*it)->row());
        ++n;
      }
    } else {
      auto it = dual->ScanBatches({});
      if (!it.ok()) { state.SkipWithError("scan failed"); return; }
      dtl::table::RowBatch batch;
      while ((*it)->Next(&batch)) {
        // Consume each logical row once: read every visible cell. Crediting
        // whole batches (n += batch.size()) did no per-row work, so
        // pass-through view batches multiplied straight into the rows/sec
        // figure (a nonsensical ~1e9+ "view-flow" rate).
        for (size_t i = 0; i < batch.size(); ++i) {
          const size_t phys = batch.row_index(i);
          for (size_t c = 0; c < batch.num_columns(); ++c) {
            const dtl::Value& v = batch.column(c).at(phys);
            checksum += v.is_int64() ? static_cast<uint64_t>(v.AsInt64()) : 1;
          }
          ++n;
        }
      }
    }
    const double s = watch.ElapsedSeconds();
    state.SetIterationTime(s);
    total_s += s;
    rows_per_scan = n;
  }
  benchmark::DoNotOptimize(checksum);
  const auto iters = static_cast<uint64_t>(state.iterations());
  const double per_scan_s = total_s / static_cast<double>(iters);
  state.counters["rows_per_sec"] =
      benchmark::Counter(static_cast<double>(rows_per_scan) / per_scan_s);

  dtl::bench::ScanBenchEntry record;
  record.workload = "grid";
  record.path = path;
  record.rows = rows_per_scan;
  record.seconds = per_scan_s;
  record.rows_per_sec = static_cast<double>(rows_per_scan) / per_scan_s;
  // Per-scan meter delta: the raw delta spans every timed iteration, which
  // re-counted the same rows, batches, and bytes once per iteration.
  record.scan = (dtl::table::GlobalScanMeter().Snapshot() - before) / iters;
  dtl::bench::RecordScanBench(std::move(record));
}

// Morsel-driven parallel scan of the big consumption table, swept over the
// worker count for BENCH_parallel_scan.json. Wall seconds on this container
// are bounded by its physical cores; modeled_seconds is the paper-scale
// cluster arithmetic (workers multiply the per-task read rate until the
// aggregate HDFS rate saturates), which is what the speedup claim is about.
void BM_ParallelScan(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  Env env = MakeGridTableII("dualtable");
  auto entry = env.session->catalog()->Lookup("tj_gbsjwzl_mx");
  if (!entry.ok()) { state.SkipWithError("lookup failed"); return; }
  auto dual = std::dynamic_pointer_cast<dtl::dual::DualTable>(entry->table);
  if (dual == nullptr) { state.SkipWithError("not a DualTable"); return; }

  double total_s = 0;
  uint64_t rows_per_iter = 0;
  uint64_t bytes_per_iter = 0;
  for (auto _ : state) {
    dtl::table::ScanMeter meter;
    dtl::table::ScanSpec spec;
    spec.meter = &meter;
    dtl::exec::ParallelScanOptions popts;
    popts.pool = env.session->pool();
    popts.parallelism = static_cast<size_t>(workers);
    popts.morsel_stripes = 2;
    dtl::exec::ParallelScanner scanner(dual.get(), spec, popts);
    dtl::Stopwatch watch;
    auto count = scanner.Count();
    const double s = watch.ElapsedSeconds();
    if (!count.ok()) { state.SkipWithError("parallel scan failed"); return; }
    state.SetIterationTime(s);
    total_s += s;
    rows_per_iter = *count;
    bytes_per_iter = meter.Snapshot().bytes;
  }

  dtl::bench::ParallelScanBenchEntry record;
  record.workload = "grid";
  record.workers = workers;
  record.rows = rows_per_iter;
  record.seconds = total_s / static_cast<double>(state.iterations());
  record.scan_bytes = bytes_per_iter;
  record.modeled_seconds =
      env.session->cluster()->ScanSeconds(bytes_per_iter, workers);
  state.counters["model_s"] = record.modeled_seconds;
  dtl::bench::RecordParallelScanBench(std::move(record));
}

}  // namespace

BENCHMARK(BM_ParallelScan)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime();
BENCHMARK_CAPTURE(BM_RawScan, row_path, "row")
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime();
BENCHMARK_CAPTURE(BM_RawScan, batch_path, "batch")
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime();
BENCHMARK_CAPTURE(BM_GridSelect1, hive, "hive")
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime();
BENCHMARK_CAPTURE(BM_GridSelect1, dualtable, "dualtable")
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime();
BENCHMARK_CAPTURE(BM_GridSelect2, hive, "hive")
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime();
BENCHMARK_CAPTURE(BM_GridSelect2, dualtable, "dualtable")
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime();

int main(int argc, char** argv) {
  dtl::bench::ParseScaleFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  dtl::bench::FlushScanBench();
  dtl::bench::FlushParallelScanBench();
  return 0;
}
