// Paper Fig. 4: read performance of Hive vs DualTable with an EMPTY attached
// table, on the two grid SELECT statements — #1 is a 3-way join with
// predicates, #2 is COUNT(*) on the big consumption table. The paper finds
// DualTable 8-12% slower due to the (empty) attached-table lookup overhead;
// the shape to reproduce is "DualTable read overhead is small".
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "dualtable/dual_table.h"

namespace {

using dtl::bench::Env;
using dtl::bench::MakeGridTableII;
using dtl::bench::RunSql;

void BM_GridSelect1(benchmark::State& state, const std::string& kind) {
  Env env = MakeGridTableII(kind);
  for (auto _ : state) {
    auto stats = RunSql(&env, dtl::workload::GridSelect1());
    state.SetIterationTime(stats.seconds);
    state.counters["model_s"] = stats.modeled_seconds;
  }
  state.counters["rows"] = static_cast<double>(env.rows);
}

void BM_GridSelect2(benchmark::State& state, const std::string& kind) {
  Env env = MakeGridTableII(kind);
  for (auto _ : state) {
    auto stats = RunSql(&env, dtl::workload::GridSelect2());
    state.SetIterationTime(stats.seconds);
    state.counters["model_s"] = stats.modeled_seconds;
  }
}

// Raw storage scan of the big consumption table, row-at-a-time (the seed
// read path, kept as ScanLegacyRows) vs the vectorized batch pipeline.
// Feeds the row-vs-batch rows/sec comparison in BENCH_scan.json.
void BM_RawScan(benchmark::State& state, const std::string& path) {
  Env env = MakeGridTableII("dualtable");
  auto entry = env.session->catalog()->Lookup("tj_gbsjwzl_mx");
  if (!entry.ok()) { state.SkipWithError("lookup failed"); return; }
  auto dual = std::dynamic_pointer_cast<dtl::dual::DualTable>(entry->table);
  if (dual == nullptr) { state.SkipWithError("not a DualTable"); return; }

  const auto before = dtl::table::GlobalScanMeter().Snapshot();
  double total_s = 0;
  uint64_t rows_per_iter = 0;
  for (auto _ : state) {
    dtl::Stopwatch watch;
    uint64_t n = 0;
    if (path == "row") {
      auto it = dual->ScanLegacyRows({});
      if (!it.ok()) { state.SkipWithError("scan failed"); return; }
      while ((*it)->Next()) {
        benchmark::DoNotOptimize((*it)->row());
        ++n;
      }
    } else {
      auto it = dual->ScanBatches({});
      if (!it.ok()) { state.SkipWithError("scan failed"); return; }
      dtl::table::RowBatch batch;
      while ((*it)->Next(&batch)) n += batch.size();
    }
    const double s = watch.ElapsedSeconds();
    state.SetIterationTime(s);
    total_s += s;
    rows_per_iter = n;
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(rows_per_iter) * static_cast<double>(state.iterations()) /
          total_s);

  dtl::bench::ScanBenchEntry record;
  record.workload = "grid";
  record.path = path;
  record.rows = rows_per_iter;
  record.seconds = total_s;
  record.rows_per_sec =
      static_cast<double>(rows_per_iter) * static_cast<double>(state.iterations()) /
      total_s;
  record.scan = dtl::table::GlobalScanMeter().Snapshot() - before;
  dtl::bench::RecordScanBench(std::move(record));
}

}  // namespace

BENCHMARK_CAPTURE(BM_RawScan, row_path, "row")
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime();
BENCHMARK_CAPTURE(BM_RawScan, batch_path, "batch")
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime();
BENCHMARK_CAPTURE(BM_GridSelect1, hive, "hive")
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime();
BENCHMARK_CAPTURE(BM_GridSelect1, dualtable, "dualtable")
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime();
BENCHMARK_CAPTURE(BM_GridSelect2, hive, "hive")
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime();
BENCHMARK_CAPTURE(BM_GridSelect2, dualtable, "dualtable")
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime();

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  dtl::bench::FlushScanBench();
  return 0;
}
