// Paper Fig. 4: read performance of Hive vs DualTable with an EMPTY attached
// table, on the two grid SELECT statements — #1 is a 3-way join with
// predicates, #2 is COUNT(*) on the big consumption table. The paper finds
// DualTable 8-12% slower due to the (empty) attached-table lookup overhead;
// the shape to reproduce is "DualTable read overhead is small".
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using dtl::bench::Env;
using dtl::bench::MakeGridTableII;
using dtl::bench::RunSql;

void BM_GridSelect1(benchmark::State& state, const std::string& kind) {
  Env env = MakeGridTableII(kind);
  for (auto _ : state) {
    auto stats = RunSql(&env, dtl::workload::GridSelect1());
    state.SetIterationTime(stats.seconds);
    state.counters["model_s"] = stats.modeled_seconds;
  }
  state.counters["rows"] = static_cast<double>(env.rows);
}

void BM_GridSelect2(benchmark::State& state, const std::string& kind) {
  Env env = MakeGridTableII(kind);
  for (auto _ : state) {
    auto stats = RunSql(&env, dtl::workload::GridSelect2());
    state.SetIterationTime(stats.seconds);
    state.counters["model_s"] = stats.modeled_seconds;
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_GridSelect1, hive, "hive")
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime();
BENCHMARK_CAPTURE(BM_GridSelect1, dualtable, "dualtable")
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime();
BENCHMARK_CAPTURE(BM_GridSelect2, hive, "hive")
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime();
BENCHMARK_CAPTURE(BM_GridSelect2, dualtable, "dualtable")
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime();

BENCHMARK_MAIN();
