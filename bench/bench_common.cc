#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <vector>

#include "common/stopwatch.h"

namespace dtl::bench {

namespace {

[[noreturn]] void Die(const std::string& what, const Status& status) {
  std::fprintf(stderr, "bench setup failed: %s: %s\n", what.c_str(),
               status.ToString().c_str());
  std::exit(1);
}

sql::SessionOptions BenchSessionOptions(PlanMode mode) {
  sql::SessionOptions options;
  // The sweep figures issue one read after each DML, so k = 1.
  options.dual_defaults.cost_params.k = 1.0;
  options.dual_defaults.plan_mode = mode;
  // Several stripes per table even at bench scale.
  options.dual_defaults.writer_options.stripe_rows = 8 * 1024;
  options.hive_defaults.writer_options.stripe_rows = 8 * 1024;
  options.acid_defaults.writer_options.stripe_rows = 8 * 1024;

  // Per-record write cost of the HBase substrate. An in-process LSM store
  // has no RPC or group-commit latency, so without this the EDIT plan is
  // unrealistically cheap and no crossover appears in the swept range. 6 microseconds
  // per put is a conservative batched-client figure; it puts the measured
  // update crossover near the paper's ~35% at bench scale.
  options.dual_defaults.attached_options.put_latency_micros = 6.0;
  options.hbase_defaults.store_options.put_latency_micros = 6.0;

  // Cost-model rates: calibrated EFFECTIVE attached-table throughputs (the
  // paper derives C^A the same way, from observed HBase throughput). With
  // k=1 these place Eq. 1's analytic crossover at 35%, matching Fig. 13.
  options.cluster.hbase_write_bps = 0.175e9;
  options.cluster.hbase_read_bps = 0.35e9;
  // Effective delete-marker size m (paper: "determined via data sampling"):
  // per-put cost dominates, so a marker costs about as much as an update
  // record, which puts the delete crossover below the update one (Fig. 14).
  options.dual_defaults.cost_params.delete_marker_bytes = 200.0;
  return options;
}

std::string CreateSql(const std::string& name, const Schema& schema,
                      const std::string& kind) {
  std::string sql = "CREATE TABLE " + name + " (";
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    if (i > 0) sql += ", ";
    sql += schema.field(i).name;
    sql += " ";
    sql += DataTypeName(schema.field(i).type);
  }
  sql += ") STORED AS " + kind;
  return sql;
}

void CreateAndFill(sql::Session* session, const workload::GridTableSpec& spec,
                   const workload::GridConfig& config, const std::string& kind) {
  auto created = session->Execute(CreateSql(spec.name, spec.schema, kind));
  if (!created.ok()) Die("create " + spec.name, created.status());
  auto entry = session->catalog()->Lookup(spec.name);
  if (!entry.ok()) Die("lookup " + spec.name, entry.status());
  Status st = workload::GenerateGridTable(spec, config, entry->table.get());
  if (!st.ok()) Die("generate " + spec.name, st);
}

}  // namespace

namespace {

/// ParseScaleFlag result; <= 0 means "not given, fall back to the env var".
double& ScaleOverride() {
  static double scale = 0.0;
  return scale;
}

}  // namespace

double ScaleMult() {
  if (ScaleOverride() > 0) return ScaleOverride();
  const char* env = std::getenv("DTL_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

void ParseScaleFlag(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string arg = argv[i];
    const std::string prefix = "--scale";
    double value = 0.0;
    if (arg.rfind(prefix + "=", 0) == 0) {
      value = std::atof(arg.c_str() + prefix.size() + 1);
    } else if (arg == prefix && i + 1 < *argc) {
      value = std::atof(argv[++i]);
    } else {
      argv[out++] = argv[i];
      continue;
    }
    if (value <= 0) {
      std::fprintf(stderr, "ignoring %s: scale must be a positive number\n",
                   arg.c_str());
      continue;
    }
    ScaleOverride() = value;
  }
  *argc = out;
}

Env MakeGridMx(const std::string& kind, PlanMode mode) {
  Env env;
  auto session = sql::Session::Create(BenchSessionOptions(mode));
  if (!session.ok()) Die("session", session.status());
  env.session = std::move(*session);

  workload::GridConfig config;
  config.fraction = ScaleMult() / 8000.0;  // ~30k rows in tj_gbsjwzl_mx
  auto specs = workload::TableIISpecs(config);
  const auto& mx = specs[4];
  CreateAndFill(env.session.get(), mx, config, kind);
  env.rows = workload::ScaledRows(mx, config);
  env.session->MarkIo();
  return env;
}

Env MakeGridTableII(const std::string& kind, bool observability) {
  Env env;
  auto options = BenchSessionOptions(PlanMode::kCostModel);
  options.observability = observability;
  auto session = sql::Session::Create(std::move(options));
  if (!session.ok()) Die("session", session.status());
  env.session = std::move(*session);

  workload::GridConfig config;
  config.fraction = ScaleMult() / 16000.0;
  config.min_rows = 500;
  for (const auto& spec : workload::TableIISpecs(config)) {
    CreateAndFill(env.session.get(), spec, config, kind);
    if (spec.name == "tj_gbsjwzl_mx") env.rows = workload::ScaledRows(spec, config);
  }
  env.session->MarkIo();
  return env;
}

Env MakeGridTableIII(const std::string& kind, PlanMode mode) {
  Env env;
  auto session = sql::Session::Create(BenchSessionOptions(mode));
  if (!session.ok()) Die("session", session.status());
  env.session = std::move(*session);

  workload::GridConfig config;
  config.fraction = ScaleMult() / 8000.0;
  config.min_rows = 2000;
  for (const auto& spec : workload::TableIIISpecs(config)) {
    CreateAndFill(env.session.get(), spec, config, kind);
  }
  env.session->MarkIo();
  return env;
}

Env MakeTpch(const std::string& kind, PlanMode mode, bool with_orders) {
  Env env;
  auto session = sql::Session::Create(BenchSessionOptions(mode));
  if (!session.ok()) Die("session", session.status());
  env.session = std::move(*session);

  workload::TpchConfig config;
  config.scale_factor = 0.004 * ScaleMult();  // ~24k lineitem rows by default
  auto created =
      env.session->Execute(CreateSql("lineitem", workload::LineitemSchema(), kind));
  if (!created.ok()) Die("create lineitem", created.status());
  auto li = env.session->catalog()->Lookup("lineitem");
  Status st = workload::GenerateLineitem(li->table.get(), config);
  if (!st.ok()) Die("generate lineitem", st);
  env.rows = config.lineitem_rows();

  if (with_orders) {
    auto created2 =
        env.session->Execute(CreateSql("orders", workload::OrdersSchema(), kind));
    if (!created2.ok()) Die("create orders", created2.status());
    auto ord = env.session->catalog()->Lookup("orders");
    st = workload::GenerateOrders(ord->table.get(), config);
    if (!st.ok()) Die("generate orders", st);
  }
  env.session->MarkIo();
  return env;
}

RunStats RunSql(Env* env, const std::string& sql) {
  env->session->MarkIo();
  Stopwatch watch;
  auto result = env->session->Execute(sql);
  RunStats stats;
  stats.seconds = watch.ElapsedSeconds();
  if (!result.ok()) Die("run: " + sql, result.status());
  stats.modeled_seconds = env->session->ModeledSeconds(env->session->IoDelta());
  stats.affected_rows = result->affected_rows;
  stats.plan = result->dml_plan;
  return stats;
}

std::string DayLabel(int days) { return std::to_string(days) + "/36"; }

namespace {

std::vector<ScanBenchEntry>& ScanBenchEntries() {
  static std::vector<ScanBenchEntry> entries;
  return entries;
}

std::string FormatScanEntry(const ScanBenchEntry& e) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "  {\"workload\":\"%s\",\"path\":\"%s\",\"rows\":%llu,"
      "\"seconds\":%.6f,\"rows_per_sec\":%.1f,\"batches\":%llu,"
      "\"passthrough_batches\":%llu,\"bytes\":%llu,\"materialized_rows\":%llu}",
      e.workload.c_str(), e.path.c_str(), static_cast<unsigned long long>(e.rows),
      e.seconds, e.rows_per_sec, static_cast<unsigned long long>(e.scan.batches),
      static_cast<unsigned long long>(e.scan.passthrough_batches),
      static_cast<unsigned long long>(e.scan.bytes),
      static_cast<unsigned long long>(e.scan.materialized_rows));
  return buf;
}

/// Pulls the workload name out of a line FormatScanEntry wrote.
std::string LineWorkload(const std::string& line) {
  const std::string key = "\"workload\":\"";
  auto start = line.find(key);
  if (start == std::string::npos) return "";
  start += key.size();
  auto end = line.find('"', start);
  if (end == std::string::npos) return "";
  return line.substr(start, end - start);
}

}  // namespace

void RecordScanBench(ScanBenchEntry entry) {
  // The benchmark harness re-runs a function while calibrating iteration
  // counts; keep only the final (longest, most stable) run per series.
  for (auto& e : ScanBenchEntries()) {
    if (e.workload == entry.workload && e.path == entry.path) {
      e = std::move(entry);
      return;
    }
  }
  ScanBenchEntries().push_back(std::move(entry));
}

void FlushScanBench(const std::string& path) {
  if (ScanBenchEntries().empty()) return;
  std::set<std::string> ours;
  for (const auto& e : ScanBenchEntries()) ours.insert(e.workload);

  // Keep entries other bench binaries wrote for other workloads.
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      std::string workload = LineWorkload(line);
      if (workload.empty() || ours.count(workload)) continue;
      if (!line.empty() && line.back() == ',') line.pop_back();
      lines.push_back(line);
    }
  }
  for (const auto& e : ScanBenchEntries()) lines.push_back(FormatScanEntry(e));

  std::ofstream out(path, std::ios::trunc);
  out << "[\n";
  for (size_t i = 0; i < lines.size(); ++i) {
    out << lines[i] << (i + 1 < lines.size() ? ",\n" : "\n");
  }
  out << "]\n";
  std::fprintf(stderr, "wrote %zu scan entries to %s\n", lines.size(), path.c_str());
}

namespace {

std::vector<ParallelScanBenchEntry>& ParallelScanBenchEntries() {
  static std::vector<ParallelScanBenchEntry> entries;
  return entries;
}

std::string FormatParallelScanEntry(const ParallelScanBenchEntry& e) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "  {\"workload\":\"%s\",\"workers\":%d,\"rows\":%llu,"
      "\"seconds\":%.6f,\"scan_bytes\":%llu,\"modeled_seconds\":%.6f,"
      "\"wall_speedup\":%.3f,\"modeled_speedup\":%.3f}",
      e.workload.c_str(), e.workers, static_cast<unsigned long long>(e.rows),
      e.seconds, static_cast<unsigned long long>(e.scan_bytes), e.modeled_seconds,
      e.wall_speedup, e.modeled_speedup);
  return buf;
}

}  // namespace

void RecordParallelScanBench(ParallelScanBenchEntry entry) {
  for (auto& e : ParallelScanBenchEntries()) {
    if (e.workload == entry.workload && e.workers == entry.workers) {
      e = std::move(entry);
      return;
    }
  }
  ParallelScanBenchEntries().push_back(std::move(entry));
}

void FlushParallelScanBench(const std::string& path) {
  auto& entries = ParallelScanBenchEntries();
  if (entries.empty()) return;
  // Speedups are relative to the workers=1 sweep point of the same workload.
  // On this container wall_speedup is bounded by the physical core count;
  // modeled_speedup is the paper-scale cluster arithmetic (workers scale the
  // per-task read rate until the aggregate HDFS rate saturates).
  for (auto& e : entries) {
    for (const auto& base : entries) {
      if (base.workload == e.workload && base.workers == 1) {
        if (e.seconds > 0) e.wall_speedup = base.seconds / e.seconds;
        if (e.modeled_seconds > 0) {
          e.modeled_speedup = base.modeled_seconds / e.modeled_seconds;
        }
      }
    }
  }

  std::set<std::string> ours;
  for (const auto& e : entries) ours.insert(e.workload);
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      std::string workload = LineWorkload(line);
      if (workload.empty() || ours.count(workload)) continue;
      if (!line.empty() && line.back() == ',') line.pop_back();
      lines.push_back(line);
    }
  }
  for (const auto& e : entries) lines.push_back(FormatParallelScanEntry(e));

  std::ofstream out(path, std::ios::trunc);
  out << "[\n";
  for (size_t i = 0; i < lines.size(); ++i) {
    out << lines[i] << (i + 1 < lines.size() ? ",\n" : "\n");
  }
  out << "]\n";
  std::fprintf(stderr, "wrote %zu parallel-scan entries to %s\n", lines.size(),
               path.c_str());
}

}  // namespace dtl::bench
