// Differential test suite for the morsel-driven parallel executor: every
// parallel result (rows, counts, aggregates, merged ScanMeter counts) must
// be IDENTICAL to the serial UNION READ scan at parallelism 1, 2, 7 and 16,
// over tables carrying interleaved EDIT updates and deletes. Aggregate
// inputs are multiples of 0.5, so double sums are exact and therefore
// order-independent — "identical" means EXPECT_EQ, not EXPECT_NEAR.
//
// Also covered here: the parallel-COMPACT equivalence + crash sweep (the
// manifest rename must stay the single commit point when the rewrite fans
// out over the pool), and the background-compaction scheduler regression
// (write-only workloads must not accumulate compaction debt).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/background_scheduler.h"
#include "common/thread_pool.h"
#include "dualtable/dual_table.h"
#include "exec/operators.h"
#include "exec/parallel_scan.h"
#include "fs/fault_injection.h"
#include "fs/filesystem.h"
#include "kv/store.h"
#include "sql/session.h"
#include "table/scan_stats.h"

namespace dtl {
namespace {

constexpr int64_t kDays = 36;

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"day", DataType::kDate},
                 {"amount", DataType::kDouble},
                 {"tag", DataType::kString}});
}

// amount is a multiple of 0.5 and every update adds a multiple of 0.5, so
// all aggregate sums stay exactly representable (see file comment).
Row MakeRow(int64_t i) {
  return Row{Value::Int64(i), Value::Date(i % kDays), Value::Double(i * 0.5),
             Value::String("t" + std::to_string(i % 7))};
}

Status InsertRange(dual::DualTable* table, int64_t begin, int64_t end) {
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(end - begin));
  for (int64_t i = begin; i < end; ++i) rows.push_back(MakeRow(i));
  return table->InsertRows(rows);
}

Status UpdateWhere(dual::DualTable* table, const std::function<bool(int64_t)>& pred,
                   double bump) {
  table::ScanSpec filter;
  filter.predicate_columns = {0};
  filter.predicate = [pred](const Row& row) { return pred(row[0].AsInt64()); };
  table::Assignment a;
  a.column = 2;
  a.input_columns = {2};
  a.compute = [bump](const Row& row) { return Value::Double(row[2].AsDouble() + bump); };
  return table->Update(filter, {a}).status();
}

Status DeleteWhere(dual::DualTable* table, const std::function<bool(int64_t)>& pred) {
  table::ScanSpec filter;
  filter.predicate_columns = {0};
  filter.predicate = [pred](const Row& row) { return pred(row[0].AsInt64()); };
  return table->Delete(filter).status();
}

/// Serial baseline: the production ScanBatches path, metered into `meter`.
Result<std::vector<Row>> SerialRows(dual::DualTable* table, table::ScanSpec spec,
                                    table::ScanMeter* meter) {
  spec.meter = meter;
  DTL_ASSIGN_OR_RETURN(auto it, table->ScanBatches(spec));
  std::vector<Row> rows;
  table::RowBatch batch;
  Row scratch;
  while (it->Next(&batch)) {
    for (size_t i = 0; i < batch.size(); ++i) {
      batch.MaterializeRow(i, &scratch);
      rows.push_back(scratch);
    }
  }
  DTL_RETURN_NOT_OK(it->status());
  return rows;
}

void ExpectRowsEqual(const std::vector<Row>& serial, const std::vector<Row>& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(RowToString(serial[i]), RowToString(parallel[i])) << "row " << i;
  }
}

void ExpectMetersEqual(const table::ScanSnapshot& serial,
                       const table::ScanSnapshot& parallel) {
  EXPECT_EQ(serial.batches, parallel.batches);
  EXPECT_EQ(serial.rows, parallel.rows);
  EXPECT_EQ(serial.bytes, parallel.bytes);
  EXPECT_EQ(serial.passthrough_batches, parallel.passthrough_batches);
  EXPECT_EQ(serial.patched_rows, parallel.patched_rows);
  EXPECT_EQ(serial.masked_rows, parallel.masked_rows);
  EXPECT_EQ(serial.predicate_drops, parallel.predicate_drops);
  EXPECT_EQ(serial.materialized_rows, parallel.materialized_rows);
}

const std::vector<size_t> kDegrees = {1, 2, 7, 16};

class ParallelScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs_ = std::make_unique<fs::SimFileSystem>();
    auto meta = dual::MetadataTable::Open(fs_.get());
    ASSERT_TRUE(meta.ok());
    metadata_ = std::move(*meta);
    cluster_ = std::make_unique<fs::ClusterModel>();
    pool_ = std::make_unique<ThreadPool>(4);
  }

  dual::DualTableOptions BaseOptions() {
    dual::DualTableOptions options;
    options.plan_mode = dual::DualTableOptions::PlanMode::kForceEdit;
    options.writer_options.stripe_rows = 256;
    options.scan_batch_rows = 100;  // misaligned with stripe_rows on purpose
    options.pool = pool_.get();
    return options;
  }

  Result<std::shared_ptr<dual::DualTable>> OpenTable(const std::string& name,
                                                     dual::DualTableOptions options) {
    return dual::DualTable::Open(fs_.get(), metadata_.get(), cluster_.get(), name,
                                 TestSchema(), options);
  }

  /// Three master files + interleaved EDIT updates/deletes touching all of
  /// them (head, tail, modulo stripes in the middle).
  void BuildGridTable(dual::DualTable* table) {
    ASSERT_TRUE(InsertRange(table, 0, 2000).ok());
    ASSERT_TRUE(InsertRange(table, 2000, 3500).ok());
    ASSERT_TRUE(InsertRange(table, 3500, 4200).ok());
    ASSERT_TRUE(UpdateWhere(table, [](int64_t id) { return id % 7 == 3; }, 100.0).ok());
    ASSERT_TRUE(DeleteWhere(table, [](int64_t id) { return id % 13 == 5; }).ok());
    ASSERT_TRUE(UpdateWhere(table, [](int64_t id) { return id >= 3900; }, 0.5).ok());
    ASSERT_TRUE(DeleteWhere(table, [](int64_t id) { return id < 50; }).ok());
    ASSERT_EQ(table->master()->files().size(), 3u);
  }

  std::unique_ptr<fs::SimFileSystem> fs_;
  std::unique_ptr<dual::MetadataTable> metadata_;
  std::unique_ptr<fs::ClusterModel> cluster_;
  std::unique_ptr<ThreadPool> pool_;
};

TEST_F(ParallelScanTest, RowsAndMetersMatchSerialAtEveryDegree) {
  auto t = OpenTable("grid", BaseOptions());
  ASSERT_TRUE(t.ok());
  BuildGridTable(t->get());

  for (int with_predicate = 0; with_predicate < 2; ++with_predicate) {
    table::ScanSpec spec;
    if (with_predicate == 1) {
      spec.predicate_columns = {1};
      spec.predicate = [](const Row& row) {
        return !row[1].is_null() && row[1].AsInt64() < 20;
      };
    }
    table::ScanMeter serial_meter;
    auto serial = SerialRows(t->get(), spec, &serial_meter);
    ASSERT_TRUE(serial.ok());
    ASSERT_FALSE(serial->empty());

    for (size_t degree : kDegrees) {
      for (size_t morsel_stripes : std::vector<size_t>{1, 3}) {
        SCOPED_TRACE("predicate=" + std::to_string(with_predicate) + " parallelism=" +
                     std::to_string(degree) + " morsel_stripes=" +
                     std::to_string(morsel_stripes));
        table::ScanMeter parallel_meter;
        table::ScanSpec pspec = spec;
        pspec.meter = &parallel_meter;
        exec::ParallelScanOptions popts;
        popts.pool = pool_.get();
        popts.parallelism = degree;
        popts.morsel_stripes = morsel_stripes;
        exec::ParallelScanner scanner(t->get(), pspec, popts);
        auto rows = scanner.CollectRows();
        ASSERT_TRUE(rows.ok());
        ExpectRowsEqual(*serial, *rows);
        ExpectMetersEqual(serial_meter.Snapshot(), parallel_meter.Snapshot());
      }
    }
  }
}

TEST_F(ParallelScanTest, AggregatesMatchSerialAtEveryDegree) {
  auto t = OpenTable("agg", BaseOptions());
  ASSERT_TRUE(t.ok());
  BuildGridTable(t->get());

  auto serial = SerialRows(t->get(), table::ScanSpec{}, nullptr);
  ASSERT_TRUE(serial.ok());
  int64_t count = 0, isum = 0, min_day = INT64_MAX, max_day = INT64_MIN;
  double dsum = 0;
  for (const Row& row : *serial) {
    ++count;
    isum += row[0].AsInt64();
    dsum += row[2].AsDouble();
    min_day = std::min(min_day, row[1].AsInt64());
    max_day = std::max(max_day, row[1].AsInt64());
  }

  std::vector<exec::AggSpec> aggs;
  aggs.push_back({exec::AggKind::kCountStar, {}});
  aggs.push_back({exec::AggKind::kSum, [](const Row& r) { return r[0]; }});
  aggs.push_back({exec::AggKind::kSum, [](const Row& r) { return r[2]; }});
  aggs.push_back({exec::AggKind::kMin, [](const Row& r) { return r[1]; }});
  aggs.push_back({exec::AggKind::kMax, [](const Row& r) { return r[1]; }});
  aggs.push_back({exec::AggKind::kAvg, [](const Row& r) { return r[2]; }});

  for (size_t degree : kDegrees) {
    SCOPED_TRACE("parallelism=" + std::to_string(degree));
    exec::ParallelScanOptions popts;
    popts.pool = pool_.get();
    popts.parallelism = degree;
    exec::ParallelScanner scanner(t->get(), table::ScanSpec{}, popts);

    auto n = scanner.Count();
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, static_cast<uint64_t>(count));

    exec::ParallelScanner agg_scanner(t->get(), table::ScanSpec{}, popts);
    auto row = agg_scanner.Aggregate(aggs);
    ASSERT_TRUE(row.ok());
    ASSERT_EQ(row->size(), aggs.size());
    EXPECT_EQ((*row)[0].AsInt64(), count);
    EXPECT_EQ((*row)[1].AsInt64(), isum);
    // Exact by construction (multiples of 0.5), so EQ rather than NEAR.
    EXPECT_EQ((*row)[2].AsDouble(), dsum);
    EXPECT_EQ((*row)[3].AsInt64(), min_day);
    EXPECT_EQ((*row)[4].AsInt64(), max_day);
    EXPECT_EQ((*row)[5].AsDouble(), dsum / static_cast<double>(count));
  }
}

TEST_F(ParallelScanTest, EmptyTableEdgeCases) {
  auto t = OpenTable("empty", BaseOptions());
  ASSERT_TRUE(t.ok());

  exec::ParallelScanOptions popts;
  popts.pool = pool_.get();
  popts.parallelism = 16;
  exec::ParallelScanner scanner(t->get(), table::ScanSpec{}, popts);
  auto rows = scanner.CollectRows();
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());

  exec::ParallelScanner counter(t->get(), table::ScanSpec{}, popts);
  auto n = counter.Count();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);

  // SQL empty-input semantics: COUNT 0, SUM/MIN/AVG NULL — one row always.
  std::vector<exec::AggSpec> aggs;
  aggs.push_back({exec::AggKind::kCountStar, {}});
  aggs.push_back({exec::AggKind::kSum, [](const Row& r) { return r[2]; }});
  aggs.push_back({exec::AggKind::kMin, [](const Row& r) { return r[0]; }});
  aggs.push_back({exec::AggKind::kAvg, [](const Row& r) { return r[2]; }});
  exec::ParallelScanner agg_scanner(t->get(), table::ScanSpec{}, popts);
  auto row = agg_scanner.Aggregate(aggs);
  ASSERT_TRUE(row.ok());
  ASSERT_EQ(row->size(), 4u);
  EXPECT_EQ((*row)[0].AsInt64(), 0);
  EXPECT_TRUE((*row)[1].is_null());
  EXPECT_TRUE((*row)[2].is_null());
  EXPECT_TRUE((*row)[3].is_null());
}

TEST_F(ParallelScanTest, SingleStripeAndAllDeletedEdgeCases) {
  // Single stripe, fewer rows than one batch: parallelism must clamp to the
  // single morsel and still match serial.
  auto t = OpenTable("tiny", BaseOptions());
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(InsertRange(t->get(), 0, 50).ok());
  ASSERT_TRUE(UpdateWhere(t->get(), [](int64_t id) { return id % 2 == 0; }, 1.0).ok());

  table::ScanMeter serial_meter;
  auto serial = SerialRows(t->get(), table::ScanSpec{}, &serial_meter);
  ASSERT_TRUE(serial.ok());
  ASSERT_EQ(serial->size(), 50u);
  for (size_t degree : kDegrees) {
    SCOPED_TRACE("parallelism=" + std::to_string(degree));
    table::ScanMeter parallel_meter;
    table::ScanSpec spec;
    spec.meter = &parallel_meter;
    exec::ParallelScanOptions popts;
    popts.pool = pool_.get();
    popts.parallelism = degree;
    exec::ParallelScanner scanner(t->get(), spec, popts);
    auto rows = scanner.CollectRows();
    ASSERT_TRUE(rows.ok());
    ExpectRowsEqual(*serial, *rows);
    ExpectMetersEqual(serial_meter.Snapshot(), parallel_meter.Snapshot());
    serial_meter.Reset();
    auto again = SerialRows(t->get(), table::ScanSpec{}, &serial_meter);
    ASSERT_TRUE(again.ok());
  }

  // Every row deleted: master stripes still decode, zero rows survive.
  ASSERT_TRUE(DeleteWhere(t->get(), [](int64_t) { return true; }).ok());
  exec::ParallelScanOptions popts;
  popts.pool = pool_.get();
  popts.parallelism = 7;
  exec::ParallelScanner scanner(t->get(), table::ScanSpec{}, popts);
  auto rows = scanner.CollectRows();
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
  exec::ParallelScanner counter(t->get(), table::ScanSpec{}, popts);
  auto n = counter.Count();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

TEST_F(ParallelScanTest, ParallelCompactMatchesSerialCompact) {
  dual::DualTableOptions parallel_options = BaseOptions();
  auto par = OpenTable("cpar", parallel_options);
  ASSERT_TRUE(par.ok());
  dual::DualTableOptions serial_options = BaseOptions();
  serial_options.pool = nullptr;  // forces the serial RewriteMaster path
  auto ser = OpenTable("cser", serial_options);
  ASSERT_TRUE(ser.ok());

  BuildGridTable(par->get());
  BuildGridTable(ser->get());

  ASSERT_TRUE(par->get()->Compact().ok());
  ASSERT_TRUE(ser->get()->Compact().ok());

  auto par_rows = SerialRows(par->get(), table::ScanSpec{}, nullptr);
  auto ser_rows = SerialRows(ser->get(), table::ScanSpec{}, nullptr);
  ASSERT_TRUE(par_rows.ok());
  ASSERT_TRUE(ser_rows.ok());
  // Record IDs differ across generations; compare logical content by id.
  auto by_id = [](const Row& a, const Row& b) { return a[0].AsInt64() < b[0].AsInt64(); };
  std::sort(par_rows->begin(), par_rows->end(), by_id);
  std::sort(ser_rows->begin(), ser_rows->end(), by_id);
  ExpectRowsEqual(*ser_rows, *par_rows);

  // COMPACT folded the attached table into the new generation.
  EXPECT_EQ(par->get()->attached()->store()->ApproximateCellCount(), 0u);
  EXPECT_FALSE(par->get()->NeedsCompaction());
  // The parallel rewrite keeps per-file parallelism: one output per input.
  EXPECT_EQ(par->get()->master()->files().size(), 3u);
}

// --- parallel COMPACT crash sweep -------------------------------------------------

std::vector<uint64_t> SweepPoints(uint64_t total) {
  constexpr uint64_t kDefaultPoints = 25;
  std::vector<uint64_t> points;
  const char* full = std::getenv("DTL_FAULT_SWEEP_FULL");
  if ((full != nullptr && std::string(full) == "1") || total <= kDefaultPoints) {
    for (uint64_t k = 1; k <= total; ++k) points.push_back(k);
    return points;
  }
  uint64_t last = 0;
  for (uint64_t i = 1; i <= kDefaultPoints; ++i) {
    const uint64_t k = std::max<uint64_t>(1, total * i / kDefaultPoints);
    if (k != last) points.push_back(k);
    last = k;
  }
  return points;
}

struct CompactSweepEnv {
  std::unique_ptr<dual::MetadataTable> metadata;
  std::unique_ptr<fs::ClusterModel> cluster;
  std::shared_ptr<dual::DualTable> table;
};

std::unique_ptr<CompactSweepEnv> CompactSweepSetup(fs::SimFileSystem* fs,
                                                   ThreadPool* pool, bool populate) {
  auto env = std::make_unique<CompactSweepEnv>();
  auto metadata = dual::MetadataTable::Open(fs);
  if (!metadata.ok()) return nullptr;
  env->metadata = std::move(*metadata);
  env->cluster = std::make_unique<fs::ClusterModel>();
  dual::DualTableOptions options;
  options.plan_mode = dual::DualTableOptions::PlanMode::kForceEdit;
  options.writer_options.stripe_rows = 32;
  options.pool = pool;  // nullptr on reopen-for-verify
  auto table = dual::DualTable::Open(fs, env->metadata.get(), env->cluster.get(),
                                     "sweep", TestSchema(), options);
  if (!table.ok()) return nullptr;
  env->table = std::move(*table);
  if (!populate) return env;
  if (!InsertRange(env->table.get(), 0, 120).ok()) return nullptr;
  if (!InsertRange(env->table.get(), 120, 220).ok()) return nullptr;
  if (!InsertRange(env->table.get(), 220, 300).ok()) return nullptr;
  if (!UpdateWhere(env->table.get(), [](int64_t id) { return id % 3 == 0; }, 10.0).ok()) {
    return nullptr;
  }
  if (!DeleteWhere(env->table.get(), [](int64_t id) { return id >= 260; }).ok()) {
    return nullptr;
  }
  return env;
}

std::vector<std::string> LogicalRowStrings(dual::DualTable* table) {
  auto rows = SerialRows(table, table::ScanSpec{}, nullptr);
  if (!rows.ok()) return {std::string("scan error: ") + rows.status().ToString()};
  std::vector<std::string> out;
  out.reserve(rows->size());
  for (const Row& row : *rows) out.push_back(RowToString(row));
  std::sort(out.begin(), out.end());
  return out;
}

// COMPACT is logically a no-op: at EVERY crash point inside the parallel
// rewrite, the reopened table must show exactly the pre-compact rows. The
// per-file jobs only stage files; the manifest rename is the one operation
// that changes what a reader sees.
TEST(ParallelCompactCrashSweepTest, ManifestRenameIsTheSingleCommitPoint) {
  uint64_t total_ops = 0;
  std::vector<std::string> expected;
  {
    fs::SimFileSystem fs;
    ThreadPool pool(3);
    auto env = CompactSweepSetup(&fs, &pool, /*populate=*/true);
    ASSERT_NE(env, nullptr);
    ASSERT_GE(env->table->master()->files().size(), 2u);  // parallel path engages
    expected = LogicalRowStrings(env->table.get());
    ASSERT_FALSE(expected.empty());
    const uint64_t before = fs.MutatingOpCount();
    ASSERT_TRUE(env->table->Compact().ok());
    total_ops = fs.MutatingOpCount() - before;
    EXPECT_EQ(LogicalRowStrings(env->table.get()), expected);
  }
  ASSERT_GT(total_ops, 0u);

  for (const uint64_t k : SweepPoints(total_ops)) {
    SCOPED_TRACE("crash at mutating op " + std::to_string(k) + "/" +
                 std::to_string(total_ops));
    fs::SimFileSystem fs;
    {
      ThreadPool pool(3);
      auto env = CompactSweepSetup(&fs, &pool, /*populate=*/true);
      ASSERT_NE(env, nullptr);
      fs::FaultPolicy policy;
      policy.mode = fs::FaultMode::kCrash;
      policy.trigger_after_ops = k;
      fs.SetFaultPolicy(policy);
      DTL_IGNORE_STATUS(env->table->Compact(),
                        "the sweep checks recovered state, not this status");
      // Process death: destructors run while the fs is still down.
    }
    fs.ClearFaultPolicy();
    auto reopened = CompactSweepSetup(&fs, nullptr, /*populate=*/false);
    ASSERT_NE(reopened, nullptr);
    EXPECT_EQ(LogicalRowStrings(reopened->table.get()), expected);
  }
}

// --- background compaction scheduler ----------------------------------------------

// Regression: NeedsCompaction() used to be surfaced only via scans, so a
// write-only workload accumulated compaction debt forever. The background
// scheduler polls it now.
TEST(BackgroundCompactionTest, WriteOnlyWorkloadIsCompactedByScheduler) {
  fs::SimFileSystem fs;
  auto metadata = dual::MetadataTable::Open(&fs);
  ASSERT_TRUE(metadata.ok());
  fs::ClusterModel cluster;
  // Huge poll interval: rounds happen only when Quiesce/Wake asks, which
  // makes the pre/post assertions deterministic.
  auto scheduler = std::make_shared<BackgroundScheduler>(std::chrono::milliseconds(3600000));

  dual::DualTableOptions options;
  options.plan_mode = dual::DualTableOptions::PlanMode::kForceEdit;
  options.writer_options.stripe_rows = 64;
  options.compact_threshold = 0.01;
  options.scheduler = scheduler;
  options.background_compaction = true;
  auto table = dual::DualTable::Open(&fs, metadata->get(), &cluster, "bg", TestSchema(),
                                     options);
  ASSERT_TRUE(table.ok());

  // Write-only: inserts + EDIT updates, never a scan.
  ASSERT_TRUE(InsertRange(table->get(), 0, 800).ok());
  ASSERT_TRUE(UpdateWhere(table->get(), [](int64_t id) { return id % 2 == 0; }, 1.0).ok());
  ASSERT_TRUE((*table)->NeedsCompaction());

  scheduler->Quiesce();  // one full round: the poll job runs Compact()

  EXPECT_FALSE((*table)->NeedsCompaction());
  EXPECT_EQ((*table)->attached()->store()->ApproximateCellCount(), 0u);
  auto rows = SerialRows(table->get(), table::ScanSpec{}, nullptr);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 800u);

  table->reset();  // unregisters its poll job (blocking out an in-flight one)
  scheduler->Shutdown();
}

TEST(BackgroundCompactionTest, WithoutSchedulerDebtAccumulates) {
  fs::SimFileSystem fs;
  auto metadata = dual::MetadataTable::Open(&fs);
  ASSERT_TRUE(metadata.ok());
  fs::ClusterModel cluster;
  dual::DualTableOptions options;
  options.plan_mode = dual::DualTableOptions::PlanMode::kForceEdit;
  options.writer_options.stripe_rows = 64;
  options.compact_threshold = 0.01;
  auto table = dual::DualTable::Open(&fs, metadata->get(), &cluster, "nobg", TestSchema(),
                                     options);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(InsertRange(table->get(), 0, 800).ok());
  ASSERT_TRUE(UpdateWhere(table->get(), [](int64_t id) { return id % 2 == 0; }, 1.0).ok());
  // No scan, no scheduler: the debt just sits there.
  EXPECT_TRUE((*table)->NeedsCompaction());
}

TEST(BackgroundCompactionTest, KvStoreDefersSizeTieredMergesToScheduler) {
  fs::SimFileSystem fs;
  auto scheduler = std::make_shared<BackgroundScheduler>(std::chrono::milliseconds(3600000));
  kv::KvStoreOptions options;
  options.dir = "/hbase/bg";
  options.memtable_flush_bytes = 512;  // flush on nearly every write burst
  options.l0_compaction_trigger = 2;
  options.scheduler = scheduler;
  auto store = kv::KvStore::Open(&fs, options);
  ASSERT_TRUE(store.ok());

  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        (*store)->Put("r" + std::to_string(i % 37), 0, "v" + std::to_string(i)).ok());
  }
  // WriteCell never merged inline — it only woke the scheduler. One full
  // round later the L0 run count is back under the trigger.
  scheduler->Quiesce();
  EXPECT_LE((*store)->NumSstables(), static_cast<size_t>(options.l0_compaction_trigger));
  for (int i = 0; i < 200; ++i) {
    auto got = (*store)->Get("r" + std::to_string(i % 37), 0);
    ASSERT_TRUE(got.ok());
  }
  store->reset();
  scheduler->Shutdown();
}

// --- SQL layer --------------------------------------------------------------------

Result<std::vector<std::string>> RunScriptAndQuery(sql::Session* session,
                                                   const std::string& query) {
  std::vector<std::string> script;
  script.push_back("CREATE TABLE t (id BIGINT, day BIGINT, price DOUBLE)");
  for (int chunk = 0; chunk < 3; ++chunk) {
    std::string insert = "INSERT INTO t VALUES ";
    for (int i = chunk * 200; i < (chunk + 1) * 200; ++i) {
      if (i % 200 != 0) insert += ", ";
      insert += "(" + std::to_string(i) + ", " + std::to_string(i % 36) + ", " +
                std::to_string(i * 0.5) + ")";
    }
    script.push_back(insert);
  }
  script.push_back("UPDATE t SET price = price + 100 WHERE id < 120");
  script.push_back("DELETE FROM t WHERE id >= 560");
  for (const std::string& stmt : script) {
    DTL_RETURN_NOT_OK(session->Execute(stmt).status());
  }
  DTL_ASSIGN_OR_RETURN(sql::QueryResult result, session->Execute(query));
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const Row& row : result.rows) rows.push_back(RowToString(row));
  return rows;
}

TEST(ParallelSqlTest, GlobalAggregatesMatchSerialSession) {
  sql::SessionOptions parallel_options;
  parallel_options.pool_threads = 4;
  parallel_options.parallelism = 4;
  parallel_options.morsel_stripes = 2;
  parallel_options.dual_defaults.writer_options.stripe_rows = 64;
  parallel_options.dual_defaults.scan_batch_rows = 48;
  parallel_options.dual_defaults.plan_mode =
      dual::DualTableOptions::PlanMode::kForceEdit;
  sql::SessionOptions serial_options = parallel_options;
  serial_options.parallelism = 1;

  const std::vector<std::string> queries = {
      // Parallel fast path: single DualTable, global aggregates only.
      "SELECT COUNT(*), SUM(price), MIN(price), MAX(price), AVG(price) FROM t",
      "SELECT COUNT(*), SUM(id) FROM t WHERE day < 12",
      "SELECT COUNT(*) FROM t WHERE id >= 900",  // empty input
      // Serial fallbacks (order-sensitive / grouped plans must not change).
      "SELECT day, COUNT(*) FROM t GROUP BY day",
      "SELECT id, price FROM t WHERE id < 5 ORDER BY id",
  };
  for (const std::string& query : queries) {
    SCOPED_TRACE(query);
    auto parallel_session = sql::Session::Create(parallel_options);
    ASSERT_TRUE(parallel_session.ok());
    auto serial_session = sql::Session::Create(serial_options);
    ASSERT_TRUE(serial_session.ok());
    auto parallel_rows = RunScriptAndQuery(parallel_session->get(), query);
    ASSERT_TRUE(parallel_rows.ok());
    auto serial_rows = RunScriptAndQuery(serial_session->get(), query);
    ASSERT_TRUE(serial_rows.ok());
    EXPECT_EQ(*parallel_rows, *serial_rows);
  }
}

TEST(ParallelSqlTest, BackgroundCompactionSessionKnob) {
  sql::SessionOptions options;
  options.pool_threads = 2;
  options.background_compaction = true;
  options.dual_defaults.plan_mode = dual::DualTableOptions::PlanMode::kForceEdit;
  options.dual_defaults.writer_options.stripe_rows = 64;
  options.dual_defaults.compact_threshold = 0.01;
  auto session = sql::Session::Create(options);
  ASSERT_TRUE(session.ok());
  ASSERT_NE((*session)->scheduler(), nullptr);

  ASSERT_TRUE((*session)->Execute("CREATE TABLE t (id BIGINT, v DOUBLE)").ok());
  std::string insert = "INSERT INTO t VALUES ";
  for (int i = 0; i < 400; ++i) {
    if (i > 0) insert += ", ";
    insert += "(" + std::to_string(i) + ", " + std::to_string(i * 0.5) + ")";
  }
  ASSERT_TRUE((*session)->Execute(insert).ok());
  ASSERT_TRUE((*session)->Execute("UPDATE t SET v = v + 1 WHERE id < 200").ok());

  (*session)->scheduler()->Quiesce();
  auto count = (*session)->Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(count.ok());
  ASSERT_EQ(count->rows.size(), 1u);
  EXPECT_EQ(count->rows[0][0].AsInt64(), 400);
  // Session teardown: scheduler shutdown before pool/tables — must not hang
  // or race (the destructor ordering contract).
}

}  // namespace
}  // namespace dtl
