#include <gtest/gtest.h>

#include "fs/cluster_model.h"
#include "fs/filesystem.h"

namespace dtl::fs {
namespace {

TEST(FileSystemTest, WriteThenReadBack) {
  SimFileSystem fs;
  auto writer = fs.NewWritableFile("/data/a.txt");
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append("hello ").ok());
  ASSERT_TRUE((*writer)->Append("world").ok());
  ASSERT_TRUE((*writer)->Close().ok());

  auto reader = fs.NewSequentialFile("/data/a.txt");
  ASSERT_TRUE(reader.ok());
  std::string out;
  ASSERT_TRUE((*reader)->Read(100, &out).ok());
  EXPECT_EQ(out, "hello world");
  EXPECT_TRUE((*reader)->AtEnd());
}

TEST(FileSystemTest, FileInvisibleUntilClose) {
  SimFileSystem fs;
  auto writer = fs.NewWritableFile("/pending");
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append("xyz").ok());
  EXPECT_FALSE(fs.Exists("/pending"));
  ASSERT_TRUE((*writer)->Close().ok());
  EXPECT_TRUE(fs.Exists("/pending"));
}

TEST(FileSystemTest, SyncPublishesPrefix) {
  SimFileSystem fs;
  auto writer = fs.NewWritableFile("/wal");
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append("record1").ok());
  ASSERT_TRUE((*writer)->Sync().ok());
  auto size = fs.FileSize("/wal");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 7u);
  ASSERT_TRUE((*writer)->Append("record2").ok());
  // Not yet synced: readers still see the old prefix.
  EXPECT_EQ(*fs.FileSize("/wal"), 7u);
  ASSERT_TRUE((*writer)->Close().ok());
  EXPECT_EQ(*fs.FileSize("/wal"), 14u);
}

TEST(FileSystemTest, NoRandomWritesApi) {
  // The append-only property is structural: WritableFile exposes only
  // Append/Sync/Close. This test documents HDFS semantics: re-creating a
  // path replaces the file wholesale.
  SimFileSystem fs;
  {
    auto w = fs.NewWritableFile("/f");
    ASSERT_TRUE((*w)->Append("version1").ok());
    ASSERT_TRUE((*w)->Close().ok());
  }
  {
    auto w = fs.NewWritableFile("/f");
    ASSERT_TRUE((*w)->Append("v2").ok());
    ASSERT_TRUE((*w)->Close().ok());
  }
  auto reader = fs.NewSequentialFile("/f");
  std::string out;
  ASSERT_TRUE((*reader)->Read(100, &out).ok());
  EXPECT_EQ(out, "v2");
}

TEST(FileSystemTest, SnapshotIsolationForReaders) {
  SimFileSystem fs;
  {
    auto w = fs.NewWritableFile("/f");
    ASSERT_TRUE((*w)->Append("old-contents").ok());
    ASSERT_TRUE((*w)->Close().ok());
  }
  auto reader = fs.NewSequentialFile("/f");
  {
    auto w = fs.NewWritableFile("/f");
    ASSERT_TRUE((*w)->Append("new").ok());
    ASSERT_TRUE((*w)->Close().ok());
  }
  std::string out;
  ASSERT_TRUE((*reader)->Read(100, &out).ok());
  EXPECT_EQ(out, "old-contents");  // reader pinned the pre-replace snapshot
}

TEST(FileSystemTest, RandomAccessRead) {
  SimFileSystem fs;
  auto w = fs.NewWritableFile("/f");
  ASSERT_TRUE((*w)->Append("0123456789").ok());
  ASSERT_TRUE((*w)->Close().ok());
  auto r = fs.NewRandomAccessFile("/f");
  ASSERT_TRUE(r.ok());
  std::string out;
  ASSERT_TRUE((*r)->ReadAt(3, 4, &out).ok());
  EXPECT_EQ(out, "3456");
  ASSERT_TRUE((*r)->ReadAt(8, 10, &out).ok());  // short read at EOF
  EXPECT_EQ(out, "89");
  EXPECT_TRUE((*r)->ReadAt(100, 1, &out).IsOutOfRange());
}

TEST(FileSystemTest, ListDirReturnsDirectChildren) {
  SimFileSystem fs;
  for (const char* path : {"/d/a", "/d/b", "/d/sub/c", "/other/x"}) {
    auto w = fs.NewWritableFile(path);
    ASSERT_TRUE((*w)->Close().ok());
  }
  auto names = fs.ListDir("/d");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 2u);
}

TEST(FileSystemTest, DeleteAndRename) {
  SimFileSystem fs;
  auto w = fs.NewWritableFile("/a");
  ASSERT_TRUE((*w)->Close().ok());
  ASSERT_TRUE(fs.Rename("/a", "/b").ok());
  EXPECT_FALSE(fs.Exists("/a"));
  EXPECT_TRUE(fs.Exists("/b"));
  ASSERT_TRUE(fs.Delete("/b").ok());
  EXPECT_FALSE(fs.Exists("/b"));
  EXPECT_TRUE(fs.Delete("/b").IsNotFound());
}

TEST(FileSystemTest, DeleteRecursively) {
  SimFileSystem fs;
  for (const char* path : {"/t/1", "/t/2", "/t/s/3"}) {
    auto w = fs.NewWritableFile(path);
    ASSERT_TRUE((*w)->Close().ok());
  }
  ASSERT_TRUE(fs.DeleteRecursively("/t").ok());
  EXPECT_FALSE(fs.Exists("/t/1"));
  EXPECT_FALSE(fs.Exists("/t/s/3"));
}

TEST(FileSystemTest, MeterChargesChannels) {
  FileSystemOptions options;
  options.hbase_prefix = "/hbase/";
  SimFileSystem fs(options);
  {
    auto w = fs.NewWritableFile("/warehouse/f");
    ASSERT_TRUE((*w)->Append(std::string(1000, 'x')).ok());
    ASSERT_TRUE((*w)->Close().ok());
  }
  {
    auto w = fs.NewWritableFile("/hbase/t/sst");
    ASSERT_TRUE((*w)->Append(std::string(500, 'y')).ok());
    ASSERT_TRUE((*w)->Close().ok());
  }
  IoSnapshot snap = fs.meter()->Snapshot();
  EXPECT_EQ(snap.hdfs_bytes_written, 1000u);
  EXPECT_EQ(snap.hbase_bytes_written, 500u);

  auto r = fs.NewSequentialFile("/warehouse/f");
  std::string out;
  ASSERT_TRUE((*r)->Read(1000, &out).ok());
  snap = fs.meter()->Snapshot();
  EXPECT_EQ(snap.hdfs_bytes_read, 1000u);
  EXPECT_EQ(snap.hbase_bytes_read, 0u);
}

TEST(FileSystemTest, NumChunksFollowsChunkSize) {
  FileSystemOptions options;
  options.chunk_size_bytes = 100;
  SimFileSystem fs(options);
  auto w = fs.NewWritableFile("/f");
  ASSERT_TRUE((*w)->Append(std::string(250, 'x')).ok());
  ASSERT_TRUE((*w)->Close().ok());
  auto chunks = fs.NumChunks("/f");
  ASSERT_TRUE(chunks.ok());
  EXPECT_EQ(*chunks, 3);
}

TEST(ClusterModelTest, PaperExampleCostArithmetic) {
  // Section IV worked example: D=100GB, alpha=0.01, k=30; HDFS write 1 GB/s
  // (without replication in the example), HBase write 0.8, read 0.5 GB/s:
  // CostU = 100/1 - 0.01*(100/0.8 + 30*100/0.5) = 38.75s.
  ClusterConfig config;
  config.hdfs_write_bps = 1e9;
  config.hdfs_replication = 1;  // the example folds replication into the rate
  config.hbase_write_bps = 0.8e9;
  config.hbase_read_bps = 0.5e9;
  ClusterModel model(config);
  const uint64_t d = 100ull << 30;
  const double gb = static_cast<double>(1ull << 30) / 1e9;
  double cost_u = model.WriteSeconds(Channel::kHdfs, d) -
                  0.01 * (model.WriteSeconds(Channel::kHBase, d) +
                          30 * model.ReadSeconds(Channel::kHBase, d));
  EXPECT_NEAR(cost_u, 38.75 * gb, 1.0);
  EXPECT_GT(cost_u, 0);  // EDIT plan wins, as in the paper
}

TEST(ClusterModelTest, JobSecondsIncludesScheduling) {
  ClusterModel model;
  IoSnapshot delta;
  delta.hdfs_bytes_read = 1ull << 30;
  double no_tasks = model.JobSeconds(delta, 0);
  double with_tasks = model.JobSeconds(delta, 10);
  EXPECT_GT(with_tasks, no_tasks);
}

}  // namespace
}  // namespace dtl::fs
