// Crash-point recovery sweep (the fault-injection tentpole): each engine's
// mutation workload is replayed with a simulated process crash at the Nth
// mutating file-system operation, for a sweep of N covering the whole
// workload. After each crash the harness "restarts" — drops the dead engine
// instance while the file system is still down (so buffered writers are
// lost, not published), clears the fault, reopens from the surviving bytes —
// and checks the recovery contract:
//   * every acknowledged statement is fully visible after reopen,
//   * the statement in flight at the crash is atomic where the engine
//     promises atomicity (ACID deltas, Hive generation swaps) and at worst
//     row-wise old-or-new where it does not (KV cells, DualTable EDIT),
//   * recovery itself succeeds and reads never crash or return garbage.
// By default ~25 evenly spaced crash points per configuration keep the suite
// fast; DTL_FAULT_SWEEP_FULL=1 sweeps every single operation (the CI
// fault-matrix job does). The bite test at the bottom disables the master
// manifest commit and demonstrates the sweep catching the regression.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baseline/acid_table.h"
#include "baseline/hive_table.h"
#include "dualtable/dual_table.h"
#include "dualtable/metadata.h"
#include "fs/filesystem.h"
#include "kv/store.h"
#include "table/storage_table.h"

namespace dtl {
namespace {

using fs::FaultMode;
using fs::FaultOp;
using fs::FaultPolicy;

// --- Sweep driver ---------------------------------------------------------------

/// Crash points to test out of `total` mutating operations: every one under
/// DTL_FAULT_SWEEP_FULL=1, otherwise ~25 evenly spaced (always ending at the
/// last operation).
std::vector<uint64_t> SelectCrashPoints(uint64_t total) {
  constexpr uint64_t kDefaultPoints = 25;
  std::vector<uint64_t> points;
  const char* full = std::getenv("DTL_FAULT_SWEEP_FULL");
  if ((full != nullptr && std::string(full) == "1") || total <= kDefaultPoints) {
    for (uint64_t k = 1; k <= total; ++k) points.push_back(k);
    return points;
  }
  uint64_t last = 0;
  for (uint64_t i = 1; i <= kDefaultPoints; ++i) {
    const uint64_t k = std::max<uint64_t>(1, total * i / kDefaultPoints);
    if (k != last) points.push_back(k);
    last = k;
  }
  return points;
}

/// Runs one engine's sweep. `setup` builds the initial committed state on a
/// fresh file system and returns the live engine context (null fails the
/// test); `statement(env, i)` executes the i-th of `num_statements`
/// statements; `verify(fs, acked, total)` reopens from the surviving bytes
/// and asserts the recovery contract given that the first `acked` statements
/// were acknowledged (statement `acked`, if < total, was in flight).
template <typename Env>
void RunCrashSweep(const std::string& label, double tear_fraction, size_t num_statements,
                   const std::function<std::unique_ptr<Env>(fs::SimFileSystem*)>& setup,
                   const std::function<Status(Env*, size_t)>& statement,
                   const std::function<void(fs::SimFileSystem*, size_t, size_t)>& verify) {
  // Dry run: count the mutating ops the statements perform, and check that a
  // clean shutdown recovers the full final state.
  uint64_t total_ops = 0;
  {
    fs::SimFileSystem fs;
    auto env = setup(&fs);
    ASSERT_NE(env, nullptr) << label << ": setup failed";
    const uint64_t before = fs.MutatingOpCount();
    for (size_t i = 0; i < num_statements; ++i) {
      const Status st = statement(env.get(), i);
      ASSERT_TRUE(st.ok()) << label << " dry-run statement " << i << ": " << st.ToString();
    }
    total_ops = fs.MutatingOpCount() - before;
    env.reset();
    verify(&fs, num_statements, num_statements);
  }
  ASSERT_GT(total_ops, 0u) << label;

  for (const uint64_t k : SelectCrashPoints(total_ops)) {
    SCOPED_TRACE(label + ": crash at mutating op " + std::to_string(k) + "/" +
                 std::to_string(total_ops));
    fs::SimFileSystem fs;
    auto env = setup(&fs);
    ASSERT_NE(env, nullptr);
    FaultPolicy policy;
    policy.mode = FaultMode::kCrash;
    policy.trigger_after_ops = k;
    policy.tear_fraction = tear_fraction;
    fs.SetFaultPolicy(policy);
    // A statement is acknowledged when it returns OK; the first failure is
    // the statement in flight at the crash (the sticky crash fails every
    // later one too, so nothing after it is attempted). A statement that
    // returns OK even though the crash already fired swallowed an injected
    // failure somewhere — counting it as acknowledged holds the engine to
    // the promise its OK made.
    size_t acked = 0;
    while (acked < num_statements && statement(env.get(), acked).ok()) ++acked;
    // Process death: destructors run while the file system is still down,
    // so un-synced buffers are lost with the process, never published.
    env.reset();
    fs.ClearFaultPolicy();
    verify(&fs, acked, num_statements);
  }
}

// --- Row-table model ------------------------------------------------------------

/// Reference contents of a two-column (id, v) table.
using State = std::map<int64_t, int64_t>;

State InitialState(int64_t rows) {
  State state;
  for (int64_t id = 0; id < rows; ++id) state[id] = 0;
  return state;
}

std::vector<Row> InitialRows(int64_t rows) {
  std::vector<Row> out;
  for (int64_t id = 0; id < rows; ++id) {
    out.push_back({Value::Int64(id), Value::Int64(0)});
  }
  return out;
}

Schema TableSchema() {
  return Schema({{"id", DataType::kInt64}, {"v", DataType::kInt64}});
}

std::string FormatState(const State& state) {
  std::string out = "{";
  for (const auto& [id, v] : state) {
    out += std::to_string(id) + ":" + std::to_string(v) + " ";
  }
  out += "}";
  return out;
}

/// Reads the reopened table into id -> v. Returns false (without failing the
/// test) on a scan error or a duplicate id; the sweep tests treat that as a
/// contract violation in context.
bool TryReadState(table::StorageTable* table, State* out, std::string* why) {
  auto rows = table::CollectRows(table, table::ScanSpec());
  if (!rows.ok()) {
    *why = "scan failed: " + rows.status().ToString();
    return false;
  }
  out->clear();
  for (const Row& row : *rows) {
    if (row.size() != 2) {
      *why = "row width " + std::to_string(row.size());
      return false;
    }
    const int64_t id = row[0].AsInt64();
    if (!out->emplace(id, row[1].AsInt64()).second) {
      *why = "duplicate id " + std::to_string(id);
      return false;
    }
  }
  return true;
}

/// The recovery contract on table contents. `before` is the state after the
/// acknowledged prefix; `after` (when a statement was in flight) is the state
/// with that statement applied too. Atomic engines must land on exactly one
/// of the two states; non-atomic (EDIT-style) engines may show each affected
/// row in either its old or new state, but never anything else.
bool TableStateMatches(const State& actual, const State& before,
                       const std::optional<State>& after, bool statement_atomic) {
  if (!after.has_value()) return actual == before;
  if (statement_atomic) return actual == before || actual == *after;
  for (const auto& [id, v] : actual) {
    const auto b = before.find(id);
    const auto a = after->find(id);
    const bool old_ok = b != before.end() && b->second == v;
    const bool new_ok = a != after->end() && a->second == v;
    if (!old_ok && !new_ok) return false;  // garbage value or ghost row
  }
  for (const auto& [id, v] : before) {
    // A row live in both states must not vanish.
    if (after->count(id) != 0 && actual.count(id) == 0) return false;
  }
  return true;
}

/// One DML statement plus its model-side application. Predicates are on id
/// and assignments are constants, so the model stays deterministic no matter
/// which prefix of earlier statements was applied.
template <typename Env>
struct Statement {
  std::function<Status(Env*)> run;
  std::function<void(State*)> apply;
};

Status RunUpdate(table::StorageTable* table, int64_t value,
                 const std::function<bool(int64_t)>& pred) {
  table::ScanSpec filter;
  filter.predicate_columns = {0};
  filter.predicate = [pred](const Row& row) { return pred(row[0].AsInt64()); };
  table::Assignment assign;
  assign.column = 1;
  assign.input_columns = {0};
  assign.compute = [value](const Row&) { return Value::Int64(value); };
  return table->Update(filter, {assign}).status();
}

Status RunDelete(table::StorageTable* table, const std::function<bool(int64_t)>& pred) {
  table::ScanSpec filter;
  filter.predicate_columns = {0};
  filter.predicate = [pred](const Row& row) { return pred(row[0].AsInt64()); };
  return table->Delete(filter).status();
}

void ApplyUpdate(State* state, int64_t value, const std::function<bool(int64_t)>& pred) {
  for (auto& [id, v] : *state) {
    if (pred(id)) v = value;
  }
}

void ApplyDelete(State* state, const std::function<bool(int64_t)>& pred) {
  for (auto it = state->begin(); it != state->end();) {
    it = pred(it->first) ? state->erase(it) : std::next(it);
  }
}

/// Builds the shared verify lambda for a row-table engine: recompute the
/// model from the acknowledged prefix and compare against a fresh reopen.
template <typename Env>
std::function<void(fs::SimFileSystem*, size_t, size_t)> MakeTableVerifier(
    const std::vector<Statement<Env>>* statements, int64_t initial_rows,
    bool statement_atomic,
    std::function<Result<std::shared_ptr<table::StorageTable>>(fs::SimFileSystem*)> reopen) {
  return [=](fs::SimFileSystem* fs, size_t acked, size_t total) {
    auto table = reopen(fs);
    ASSERT_TRUE(table.ok()) << "recovery failed: " << table.status().ToString();
    State actual;
    std::string why;
    if (!TryReadState(table->get(), &actual, &why)) {
      ADD_FAILURE() << "reopened table unreadable: " << why;
      return;
    }
    State before = InitialState(initial_rows);
    for (size_t i = 0; i < acked; ++i) (*statements)[i].apply(&before);
    std::optional<State> after;
    if (acked < total) {
      after = before;
      (*statements)[acked].apply(&*after);
    }
    EXPECT_TRUE(TableStateMatches(actual, before, after, statement_atomic))
        << "acked=" << acked << "\n  actual=" << FormatState(actual)
        << "\n  before=" << FormatState(before)
        << (after.has_value() ? "\n  after=" + FormatState(*after) : "");
  };
}

// --- KV store sweep -------------------------------------------------------------

struct KvOp {
  enum Kind { kPut, kDeleteRow, kFlush, kCompact } kind = kPut;
  std::string row;
  std::string value;
};

/// Mixed workload exercising WAL append/sync, memtable flush (both explicit
/// and size-triggered via the tiny flush threshold below), tombstones, and
/// full compaction.
std::vector<KvOp> KvWorkload() {
  std::vector<KvOp> ops;
  for (int i = 0; i < 6; ++i) {
    ops.push_back({KvOp::kPut, "k" + std::to_string(i), "a" + std::to_string(i)});
  }
  ops.push_back({KvOp::kDeleteRow, "k1", ""});
  ops.push_back({KvOp::kPut, "k6", "a6"});
  ops.push_back({KvOp::kFlush, "", ""});
  ops.push_back({KvOp::kPut, "k0", "b0"});
  ops.push_back({KvOp::kPut, "k2", "b2"});
  ops.push_back({KvOp::kDeleteRow, "k3", ""});
  ops.push_back({KvOp::kCompact, "", ""});
  ops.push_back({KvOp::kPut, "k7", "b7"});
  ops.push_back({KvOp::kPut, "k1", "b1"});
  ops.push_back({KvOp::kFlush, "", ""});
  ops.push_back({KvOp::kPut, "k4", "c4"});
  return ops;
}

kv::KvStoreOptions KvSweepOptions() {
  kv::KvStoreOptions options;
  options.dir = "/hbase/sweep";
  options.wal_sync_interval_bytes = 0;  // an acknowledged write is a synced write
  options.memtable_flush_bytes = 256;   // force size-triggered flushes mid-workload
  return options;
}

Status RunKvOp(kv::KvStore* store, const KvOp& op) {
  switch (op.kind) {
    case KvOp::kPut:
      return store->Put(op.row, 1, op.value);
    case KvOp::kDeleteRow:
      return store->DeleteRow(op.row);
    case KvOp::kFlush:
      return store->Flush();
    case KvOp::kCompact:
      return store->Compact();
  }
  return Status::OK();
}

void ApplyKvOp(std::map<std::string, std::string>* model, const KvOp& op) {
  switch (op.kind) {
    case KvOp::kPut:
      (*model)[op.row] = op.value;
      break;
    case KvOp::kDeleteRow:
      model->erase(op.row);
      break;
    case KvOp::kFlush:
    case KvOp::kCompact:
      break;  // no logical effect
  }
}

struct KvEnv {
  std::unique_ptr<kv::KvStore> store;
};

void RunKvCrashSweep(double tear_fraction) {
  const std::vector<KvOp> ops = KvWorkload();
  std::vector<std::string> keys;
  for (int i = 0; i < 8; ++i) keys.push_back("k" + std::to_string(i));

  auto setup = [](fs::SimFileSystem* fs) -> std::unique_ptr<KvEnv> {
    auto store = kv::KvStore::Open(fs, KvSweepOptions());
    if (!store.ok()) return nullptr;
    auto env = std::make_unique<KvEnv>();
    env->store = std::move(store.value());
    return env;
  };
  auto statement = [&ops](KvEnv* env, size_t i) { return RunKvOp(env->store.get(), ops[i]); };
  auto verify = [&](fs::SimFileSystem* fs, size_t acked, size_t total) {
    auto reopened = kv::KvStore::Open(fs, KvSweepOptions());
    ASSERT_TRUE(reopened.ok()) << "recovery failed: " << reopened.status().ToString();
    std::map<std::string, std::string> model;
    for (size_t i = 0; i < acked; ++i) ApplyKvOp(&model, ops[i]);
    for (const std::string& key : keys) {
      auto got = (*reopened)->Get(key, 1);
      ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
      // Allowed: the acknowledged state, or — for the key the in-flight
      // statement touched — its post-statement state (the write can be
      // durable without its ack having been delivered).
      std::vector<std::optional<std::string>> allowed;
      const auto it = model.find(key);
      allowed.push_back(it == model.end() ? std::nullopt
                                          : std::optional<std::string>(it->second));
      if (acked < total && ops[acked].row == key) {
        std::map<std::string, std::string> with_inflight = model;
        ApplyKvOp(&with_inflight, ops[acked]);
        const auto it2 = with_inflight.find(key);
        allowed.push_back(it2 == with_inflight.end()
                              ? std::nullopt
                              : std::optional<std::string>(it2->second));
      }
      bool ok = false;
      for (const auto& candidate : allowed) ok = ok || *got == candidate;
      EXPECT_TRUE(ok) << "key " << key << " recovered as "
                      << (got->has_value() ? "\"" + **got + "\"" : "<absent>")
                      << " after " << acked << "/" << total << " acked ops";
    }
  };
  RunCrashSweep<KvEnv>("kv tear=" + std::to_string(tear_fraction), tear_fraction,
                       ops.size(), setup, statement, verify);
}

TEST(CrashSweepTest, KvStoreCleanTailLoss) { RunKvCrashSweep(0.0); }

TEST(CrashSweepTest, KvStoreTornTail) { RunKvCrashSweep(0.5); }

// --- DualTable EDIT sweep -------------------------------------------------------

struct DualEnv {
  std::unique_ptr<dual::MetadataTable> metadata;
  fs::ClusterModel cluster;
  std::shared_ptr<dual::DualTable> table;
};

dual::DualTableOptions DualSweepOptions() {
  dual::DualTableOptions options;
  options.plan_mode = dual::DualTableOptions::PlanMode::kForceEdit;
  options.writer_options.stripe_rows = 32;
  return options;
}

/// UPDATE/DELETE through the attached store (EDIT plan) plus an explicit
/// COMPACT — the generation swap whose manifest commit the sweep guards.
std::vector<Statement<DualEnv>> DualStatements() {
  auto update = [](int64_t value, std::function<bool(int64_t)> pred) {
    return Statement<DualEnv>{
        [value, pred](DualEnv* env) { return RunUpdate(env->table.get(), value, pred); },
        [value, pred](State* state) { ApplyUpdate(state, value, pred); }};
  };
  auto remove = [](std::function<bool(int64_t)> pred) {
    return Statement<DualEnv>{
        [pred](DualEnv* env) { return RunDelete(env->table.get(), pred); },
        [pred](State* state) { ApplyDelete(state, pred); }};
  };
  std::vector<Statement<DualEnv>> statements;
  statements.push_back(update(1, [](int64_t id) { return id % 3 == 0; }));
  statements.push_back(remove([](int64_t id) { return id >= 80; }));
  statements.push_back(update(2, [](int64_t id) { return id < 40; }));
  // COMPACT folds the attached modifications into a new master generation;
  // it must be a logical no-op at every crash point.
  statements.push_back({[](DualEnv* env) { return env->table->Compact(); },
                        [](State*) {}});
  statements.push_back(update(3, [](int64_t id) { return id % 5 == 0; }));
  statements.push_back(remove([](int64_t id) { return id < 10; }));
  return statements;
}

void RunDualCrashSweep(double tear_fraction) {
  static const std::vector<Statement<DualEnv>> statements = DualStatements();
  constexpr int64_t kRows = 100;

  auto setup = [](fs::SimFileSystem* fs) -> std::unique_ptr<DualEnv> {
    auto env = std::make_unique<DualEnv>();
    auto metadata = dual::MetadataTable::Open(fs);
    if (!metadata.ok()) return nullptr;
    env->metadata = std::move(metadata.value());
    auto table = dual::DualTable::Open(fs, env->metadata.get(), &env->cluster, "t",
                                       TableSchema(), DualSweepOptions());
    if (!table.ok()) return nullptr;
    env->table = std::move(table.value());
    if (!env->table->InsertRows(InitialRows(kRows)).ok()) return nullptr;
    return env;
  };
  auto statement = [](DualEnv* env, size_t i) { return statements[i].run(env); };
  auto verify = MakeTableVerifier<DualEnv>(
      &statements, kRows, /*statement_atomic=*/false,
      [](fs::SimFileSystem* fs) -> Result<std::shared_ptr<table::StorageTable>> {
        // The reopened instance owns its metadata/cluster for the check's
        // lifetime; shared_ptr aliasing keeps them alive with the table.
        auto metadata = dual::MetadataTable::Open(fs);
        if (!metadata.ok()) return metadata.status();
        auto cluster = std::make_shared<fs::ClusterModel>();
        auto table = dual::DualTable::Open(fs, metadata->get(), cluster.get(), "t",
                                           TableSchema(), DualSweepOptions());
        if (!table.ok()) return table.status();
        struct Holder {
          std::unique_ptr<dual::MetadataTable> metadata;
          std::shared_ptr<fs::ClusterModel> cluster;
          std::shared_ptr<dual::DualTable> table;
        };
        auto holder = std::make_shared<Holder>();
        holder->metadata = std::move(metadata.value());
        holder->cluster = std::move(cluster);
        holder->table = std::move(table.value());
        return std::shared_ptr<table::StorageTable>(holder, holder->table.get());
      });
  RunCrashSweep<DualEnv>("dualtable tear=" + std::to_string(tear_fraction), tear_fraction,
                         statements.size(), setup, statement, verify);
}

TEST(CrashSweepTest, DualTableEditAndCompact) { RunDualCrashSweep(0.0); }

TEST(CrashSweepTest, DualTableEditAndCompactTornTail) { RunDualCrashSweep(0.5); }

// --- Indexed-dual sweep: EDIT/COMPACT with a secondary index --------------------

// Same EDIT/COMPACT workload, but with a secondary index on `id`. The index
// adds its own mutating file-system operations (entry puts, WAL syncs, the
// meta commit, fold+compact during the generation swap), so the sweep lands
// crash points inside every window of index publication. The recovery
// contract: after reopen — which rebuilds the index whenever its persisted
// meta does not match the recovered table — every surviving row is reachable
// through an index point lookup with exactly its table value, and no phantom
// row is served for a key the table does not hold.
void RunIndexedDualCrashSweep(double tear_fraction) {
  static const std::vector<Statement<DualEnv>> statements = DualStatements();
  constexpr int64_t kRows = 100;

  auto options = []() {
    dual::DualTableOptions opt = DualSweepOptions();
    opt.indexed_columns = {0};
    return opt;
  };
  auto setup = [options](fs::SimFileSystem* fs) -> std::unique_ptr<DualEnv> {
    auto env = std::make_unique<DualEnv>();
    auto metadata = dual::MetadataTable::Open(fs);
    if (!metadata.ok()) return nullptr;
    env->metadata = std::move(metadata.value());
    auto table = dual::DualTable::Open(fs, env->metadata.get(), &env->cluster, "t",
                                       TableSchema(), options());
    if (!table.ok()) return nullptr;
    env->table = std::move(table.value());
    if (!env->table->InsertRows(InitialRows(kRows)).ok()) return nullptr;
    return env;
  };
  auto statement = [](DualEnv* env, size_t i) { return statements[i].run(env); };
  auto reopen = [options](fs::SimFileSystem* fs)
      -> Result<std::shared_ptr<table::StorageTable>> {
    auto metadata = dual::MetadataTable::Open(fs);
    if (!metadata.ok()) return metadata.status();
    auto cluster = std::make_shared<fs::ClusterModel>();
    auto table = dual::DualTable::Open(fs, metadata->get(), cluster.get(), "t",
                                       TableSchema(), options());
    if (!table.ok()) return table.status();
    struct Holder {
      std::unique_ptr<dual::MetadataTable> metadata;
      std::shared_ptr<fs::ClusterModel> cluster;
      std::shared_ptr<dual::DualTable> table;
    };
    auto holder = std::make_shared<Holder>();
    holder->metadata = std::move(metadata.value());
    holder->cluster = std::move(cluster);
    holder->table = std::move(table.value());
    return std::shared_ptr<table::StorageTable>(holder, holder->table.get());
  };
  auto base_verify =
      MakeTableVerifier<DualEnv>(&statements, kRows, /*statement_atomic=*/false, reopen);
  auto verify = [base_verify, reopen](fs::SimFileSystem* fs, size_t acked, size_t total) {
    base_verify(fs, acked, total);
    if (::testing::Test::HasFailure()) return;
    auto table = reopen(fs);
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    auto* dual = dynamic_cast<dual::DualTable*>(table->get());
    ASSERT_NE(dual, nullptr);
    ASSERT_NE(dual->secondary_index(), nullptr);
    State actual;
    std::string why;
    ASSERT_TRUE(TryReadState(table->get(), &actual, &why)) << why;
    dual::SnapshotPtr snap = dual->AcquireSnapshot();
    for (const auto& [id, v] : actual) {
      auto looked = dual->IndexLookupAt(snap, 0, {Value::Int64(id)}, table::ScanSpec());
      ASSERT_TRUE(looked.ok()) << looked.status().ToString();
      ASSERT_EQ(looked->size(), 1u) << "index lost or duplicated id " << id;
      EXPECT_EQ(looked->front().second[1].AsInt64(), v) << "stale value for id " << id;
    }
    for (const int64_t id : {int64_t{-5}, int64_t{99999}}) {
      auto looked = dual->IndexLookupAt(snap, 0, {Value::Int64(id)}, table::ScanSpec());
      ASSERT_TRUE(looked.ok());
      EXPECT_TRUE(looked->empty()) << "phantom index hit for id " << id;
    }
  };
  RunCrashSweep<DualEnv>("indexed-dualtable tear=" + std::to_string(tear_fraction),
                         tear_fraction, statements.size(), setup, statement, verify);
}

TEST(CrashSweepTest, IndexedDualTableEditAndCompact) { RunIndexedDualCrashSweep(0.0); }

TEST(CrashSweepTest, IndexedDualTableEditAndCompactTornTail) {
  RunIndexedDualCrashSweep(0.5);
}

// --- Generation-pin sweep (snapshot vs COMPACT publish) ---------------------------

/// Reads a snapshot's row set into id -> v through the MVCC scan path.
bool TryReadSnapshotState(dual::DualTable* table, const dual::SnapshotPtr& snapshot,
                         State* out, std::string* why) {
  auto it = table->ScanAt(snapshot, table::ScanSpec());
  if (!it.ok()) {
    *why = "snapshot scan failed: " + it.status().ToString();
    return false;
  }
  out->clear();
  while ((*it)->Next()) {
    const Row& row = (*it)->row();
    if (row.size() != 2) {
      *why = "row width " + std::to_string(row.size());
      return false;
    }
    if (!out->emplace(row[0].AsInt64(), row[1].AsInt64()).second) {
      *why = "duplicate id " + std::to_string(row[0].AsInt64());
      return false;
    }
  }
  if (!(*it)->status().ok()) {
    *why = "snapshot scan errored: " + (*it)->status().ToString();
    return false;
  }
  return true;
}

// COMPACT's generation swap racing a live snapshot pin, crashed at every
// mutating op of the publish. Two contracts at each crash point:
//   * the pinned snapshot keeps reading its exact acquisition-time rows —
//     a partial publish must never have deleted a pinned old-generation
//     file (deferred GC only fires when the pin drops, and a failed delete
//     merely leaks the file, never tears a reader);
//   * a restart from the surviving bytes lands on exactly ONE valid
//     generation (the duplicate-id check catches a resurrected old
//     generation; the row-state check catches a half-published new one),
//     and since COMPACT is a logical no-op that state is the pre-COMPACT
//     table contents.
TEST(CrashSweepTest, CompactGenerationSwapWithPinnedSnapshot) {
  constexpr int64_t kRows = 100;
  const auto pred = [](int64_t id) { return id % 3 == 0; };

  auto setup = [&pred](fs::SimFileSystem* fs) -> std::unique_ptr<DualEnv> {
    auto env = std::make_unique<DualEnv>();
    auto metadata = dual::MetadataTable::Open(fs);
    if (!metadata.ok()) return nullptr;
    env->metadata = std::move(metadata.value());
    auto table = dual::DualTable::Open(fs, env->metadata.get(), &env->cluster, "pin",
                                       TableSchema(), DualSweepOptions());
    if (!table.ok()) return nullptr;
    env->table = std::move(table.value());
    if (!env->table->InsertRows(InitialRows(kRows)).ok()) return nullptr;
    // Attached deltas so COMPACT has something to fold into the new master.
    if (!RunUpdate(env->table.get(), 1, pred).ok()) return nullptr;
    return env;
  };

  State expected = InitialState(kRows);
  ApplyUpdate(&expected, 1, pred);

  uint64_t total_ops = 0;
  {
    fs::SimFileSystem fs;
    auto env = setup(&fs);
    ASSERT_NE(env, nullptr);
    const uint64_t before = fs.MutatingOpCount();
    ASSERT_TRUE(env->table->Compact().ok());
    total_ops = fs.MutatingOpCount() - before;
  }
  ASSERT_GT(total_ops, 0u);

  for (const uint64_t k : SelectCrashPoints(total_ops)) {
    SCOPED_TRACE("compact crash at mutating op " + std::to_string(k) + "/" +
                 std::to_string(total_ops));
    fs::SimFileSystem fs;
    auto env = setup(&fs);
    ASSERT_NE(env, nullptr);

    dual::SnapshotPtr snapshot = env->table->AcquireSnapshot();
    State baseline;
    std::string why;
    ASSERT_TRUE(TryReadSnapshotState(env->table.get(), snapshot, &baseline, &why)) << why;
    ASSERT_EQ(baseline, expected);

    FaultPolicy policy;
    policy.mode = FaultMode::kCrash;
    policy.trigger_after_ops = k;
    fs.SetFaultPolicy(policy);
    const Status compact_status = env->table->Compact();

    // Live-process contract: whether the publish committed or died halfway,
    // every file the snapshot pins is still readable and the snapshot's view
    // is bit-for-bit its acquisition-time row set.
    State pinned;
    ASSERT_TRUE(TryReadSnapshotState(env->table.get(), snapshot, &pinned, &why))
        << why << " (compact: " << compact_status.ToString() << ")";
    EXPECT_EQ(pinned, baseline);

    // Release the pin with the file system still down: the deferred GC of a
    // committed publish runs here and its deletes fail — files may leak,
    // readers must never have been torn. Then the process dies.
    snapshot.reset();
    env.reset();
    fs.ClearFaultPolicy();

    auto metadata = dual::MetadataTable::Open(&fs);
    ASSERT_TRUE(metadata.ok());
    fs::ClusterModel cluster;
    auto reopened = dual::DualTable::Open(&fs, metadata->get(), &cluster, "pin",
                                          TableSchema(), DualSweepOptions());
    ASSERT_TRUE(reopened.ok()) << "recovery failed: " << reopened.status().ToString();
    State recovered;
    ASSERT_TRUE(TryReadState(reopened->get(), &recovered, &why))
        << "reopened table unreadable (two live generations?): " << why;
    EXPECT_EQ(recovered, expected) << FormatState(recovered);
  }
}

// --- DualTable incremental-COMPACT sweep ------------------------------------------

dual::DualTableOptions DualIncrementalSweepOptions() {
  dual::DualTableOptions options = DualSweepOptions();
  // Mid-bar selection: dense files fold, sparse files survive with their
  // attached deltas — so every crash point lands inside a PARTIAL fold
  // (kept files + rewritten files + per-record tombstoning).
  options.incremental_density_override = 0.5;
  return options;
}

std::vector<Row> RowsInRange(int64_t lo, int64_t hi) {
  std::vector<Row> out;
  for (int64_t id = lo; id < hi; ++id) {
    out.push_back({Value::Int64(id), Value::Int64(0)});
  }
  return out;
}

/// EDITs at very different densities interleaved with incremental COMPACTs.
/// The first compact folds only the dense file (the sparse file's deltas stay
/// attached across the generation swap); the second folds the follow-up
/// damage. Both are logical no-ops at every crash point.
std::vector<Statement<DualEnv>> DualIncrementalStatements() {
  auto update = [](int64_t value, std::function<bool(int64_t)> pred) {
    return Statement<DualEnv>{
        [value, pred](DualEnv* env) { return RunUpdate(env->table.get(), value, pred); },
        [value, pred](State* state) { ApplyUpdate(state, value, pred); }};
  };
  auto remove = [](std::function<bool(int64_t)> pred) {
    return Statement<DualEnv>{
        [pred](DualEnv* env) { return RunDelete(env->table.get(), pred); },
        [pred](State* state) { ApplyDelete(state, pred); }};
  };
  auto incremental = []() {
    return Statement<DualEnv>{
        [](DualEnv* env) { return env->table->CompactIncremental().status(); },
        [](State*) {}};
  };
  std::vector<Statement<DualEnv>> statements;
  statements.push_back(update(1, [](int64_t id) { return id < 50; }));             // dense, file 1
  statements.push_back(update(2, [](int64_t id) { return id >= 60 && id < 66; })); // sparse, file 2
  statements.push_back(incremental());
  statements.push_back(remove([](int64_t id) { return id % 4 == 0; }));
  statements.push_back(update(3, [](int64_t id) { return id >= 30 && id < 90; }));
  statements.push_back(incremental());
  return statements;
}

void RunDualIncrementalCrashSweep(double tear_fraction) {
  static const std::vector<Statement<DualEnv>> statements = DualIncrementalStatements();
  constexpr int64_t kRows = 120;

  auto setup = [](fs::SimFileSystem* fs) -> std::unique_ptr<DualEnv> {
    auto env = std::make_unique<DualEnv>();
    auto metadata = dual::MetadataTable::Open(fs);
    if (!metadata.ok()) return nullptr;
    env->metadata = std::move(metadata.value());
    auto table = dual::DualTable::Open(fs, env->metadata.get(), &env->cluster, "it",
                                       TableSchema(), DualIncrementalSweepOptions());
    if (!table.ok()) return nullptr;
    env->table = std::move(table.value());
    // Two master files, so incremental selection has both a fold target and
    // a keeper at every point in the workload.
    if (!env->table->InsertRows(RowsInRange(0, 60)).ok()) return nullptr;
    if (!env->table->InsertRows(RowsInRange(60, kRows)).ok()) return nullptr;
    return env;
  };
  auto statement = [](DualEnv* env, size_t i) { return statements[i].run(env); };
  auto verify = MakeTableVerifier<DualEnv>(
      &statements, kRows, /*statement_atomic=*/false,
      [](fs::SimFileSystem* fs) -> Result<std::shared_ptr<table::StorageTable>> {
        auto metadata = dual::MetadataTable::Open(fs);
        if (!metadata.ok()) return metadata.status();
        auto cluster = std::make_shared<fs::ClusterModel>();
        auto table = dual::DualTable::Open(fs, metadata->get(), cluster.get(), "it",
                                           TableSchema(), DualIncrementalSweepOptions());
        if (!table.ok()) return table.status();
        struct Holder {
          std::unique_ptr<dual::MetadataTable> metadata;
          std::shared_ptr<fs::ClusterModel> cluster;
          std::shared_ptr<dual::DualTable> table;
        };
        auto holder = std::make_shared<Holder>();
        holder->metadata = std::move(metadata.value());
        holder->cluster = std::move(cluster);
        holder->table = std::move(table.value());
        return std::shared_ptr<table::StorageTable>(holder, holder->table.get());
      });
  RunCrashSweep<DualEnv>("dualtable incremental tear=" + std::to_string(tear_fraction),
                         tear_fraction, statements.size(), setup, statement, verify);
}

TEST(CrashSweepTest, DualTableIncrementalCompact) { RunDualIncrementalCrashSweep(0.0); }

TEST(CrashSweepTest, DualTableIncrementalCompactTornTail) {
  RunDualIncrementalCrashSweep(0.5);
}

// Incremental COMPACT's generation swap racing a live snapshot pin, crashed
// at every mutating op of the partial fold (stripe rewrite, raw stripe copy,
// manifest rename, per-record tombstoning). Contracts at each crash point:
//   * the pinned snapshot keeps reading its exact acquisition-time rows —
//     kept files are shared between the old and new generations, so the swap
//     must never tear a reader of either;
//   * recovery lands on exactly ONE generation (duplicate-id check), with
//     the sparse file's still-attached deltas intact;
//   * after recovery's garbage collection, no orphan master file survives
//     outside the committed manifest.
TEST(CrashSweepTest, IncrementalCompactGenerationSwapWithPinnedSnapshot) {
  constexpr int64_t kRows = 120;
  const auto dense = [](int64_t id) { return id < 50; };
  const auto sparse = [](int64_t id) { return id >= 60 && id < 66; };

  auto setup = [&](fs::SimFileSystem* fs) -> std::unique_ptr<DualEnv> {
    auto env = std::make_unique<DualEnv>();
    auto metadata = dual::MetadataTable::Open(fs);
    if (!metadata.ok()) return nullptr;
    env->metadata = std::move(metadata.value());
    auto table = dual::DualTable::Open(fs, env->metadata.get(), &env->cluster, "ipin",
                                       TableSchema(), DualIncrementalSweepOptions());
    if (!table.ok()) return nullptr;
    env->table = std::move(table.value());
    if (!env->table->InsertRows(RowsInRange(0, 60)).ok()) return nullptr;
    if (!env->table->InsertRows(RowsInRange(60, kRows)).ok()) return nullptr;
    if (!RunUpdate(env->table.get(), 1, dense).ok()) return nullptr;
    if (!RunUpdate(env->table.get(), 2, sparse).ok()) return nullptr;
    return env;
  };

  State expected = InitialState(kRows);
  ApplyUpdate(&expected, 1, dense);
  ApplyUpdate(&expected, 2, sparse);

  uint64_t total_ops = 0;
  {
    fs::SimFileSystem fs;
    auto env = setup(&fs);
    ASSERT_NE(env, nullptr);
    // The dry run must exercise the partial-fold shape this sweep targets.
    auto plan = env->table->PreviewIncrementalCompaction();
    ASSERT_TRUE(plan.ok());
    ASSERT_EQ(plan->files.size(), 2u);
    ASSERT_EQ(plan->selected_files(), 1u);
    const uint64_t before = fs.MutatingOpCount();
    auto stats = env->table->CompactIncremental();
    ASSERT_TRUE(stats.ok());
    ASSERT_EQ(stats->files_selected, 1u);
    total_ops = fs.MutatingOpCount() - before;
  }
  ASSERT_GT(total_ops, 0u);

  for (const uint64_t k : SelectCrashPoints(total_ops)) {
    SCOPED_TRACE("incremental compact crash at mutating op " + std::to_string(k) + "/" +
                 std::to_string(total_ops));
    fs::SimFileSystem fs;
    auto env = setup(&fs);
    ASSERT_NE(env, nullptr);

    dual::SnapshotPtr snapshot = env->table->AcquireSnapshot();
    State baseline;
    std::string why;
    ASSERT_TRUE(TryReadSnapshotState(env->table.get(), snapshot, &baseline, &why)) << why;
    ASSERT_EQ(baseline, expected);

    FaultPolicy policy;
    policy.mode = FaultMode::kCrash;
    policy.trigger_after_ops = k;
    fs.SetFaultPolicy(policy);
    const Status compact_status = env->table->CompactIncremental().status();

    // Live-process contract: the pinned view is byte-stable through the
    // partial fold, committed or not.
    State pinned;
    ASSERT_TRUE(TryReadSnapshotState(env->table.get(), snapshot, &pinned, &why))
        << why << " (incremental compact: " << compact_status.ToString() << ")";
    EXPECT_EQ(pinned, baseline);

    // Drop the pin and the process with the file system still down, then
    // restart from the surviving bytes.
    snapshot.reset();
    env.reset();
    fs.ClearFaultPolicy();

    auto metadata = dual::MetadataTable::Open(&fs);
    ASSERT_TRUE(metadata.ok());
    fs::ClusterModel cluster;
    auto reopened = dual::DualTable::Open(&fs, metadata->get(), &cluster, "ipin",
                                          TableSchema(), DualIncrementalSweepOptions());
    ASSERT_TRUE(reopened.ok()) << "recovery failed: " << reopened.status().ToString();
    State recovered;
    ASSERT_TRUE(TryReadState(reopened->get(), &recovered, &why))
        << "reopened table unreadable (two live generations?): " << why;
    EXPECT_EQ(recovered, expected) << FormatState(recovered);

    // Orphan check: recovery's GC leaves exactly the committed manifest's
    // files in the warehouse directory — no staged replacement and no
    // doomed old-generation file survives.
    auto names = fs.ListDir("/warehouse/ipin");
    ASSERT_TRUE(names.ok());
    const auto listed = (*reopened)->master()->files();
    for (const std::string& name : *names) {
      if (name.rfind("f_", 0) != 0 || name.find(".orc") == std::string::npos) continue;
      const std::string path = "/warehouse/ipin/" + name;
      bool in_manifest = false;
      for (const auto& f : listed) in_manifest |= (f.path == path);
      EXPECT_TRUE(in_manifest) << "orphan master file survived recovery: " << path;
    }
  }
}

// --- Hive ACID baseline sweep ---------------------------------------------------

struct AcidEnv {
  std::unique_ptr<dual::MetadataTable> metadata;
  std::shared_ptr<baseline::AcidTable> table;
};

std::vector<Statement<AcidEnv>> AcidStatements() {
  auto update = [](int64_t value, std::function<bool(int64_t)> pred) {
    return Statement<AcidEnv>{
        [value, pred](AcidEnv* env) { return RunUpdate(env->table.get(), value, pred); },
        [value, pred](State* state) { ApplyUpdate(state, value, pred); }};
  };
  std::vector<Statement<AcidEnv>> statements;
  statements.push_back(update(1, [](int64_t id) { return id < 20; }));
  statements.push_back(
      {[](AcidEnv* env) { return RunDelete(env->table.get(), [](int64_t id) { return id >= 50; }); },
       [](State* state) { ApplyDelete(state, [](int64_t id) { return id >= 50; }); }});
  statements.push_back({[](AcidEnv* env) { return env->table->MinorCompact(); },
                        [](State*) {}});
  statements.push_back(update(2, [](int64_t id) { return id % 2 == 0; }));
  statements.push_back({[](AcidEnv* env) { return env->table->MajorCompact(); },
                        [](State*) {}});
  return statements;
}

TEST(CrashSweepTest, AcidDeltasAndCompactions) {
  static const std::vector<Statement<AcidEnv>> statements = AcidStatements();
  constexpr int64_t kRows = 60;

  auto setup = [](fs::SimFileSystem* fs) -> std::unique_ptr<AcidEnv> {
    auto env = std::make_unique<AcidEnv>();
    auto metadata = dual::MetadataTable::Open(fs);
    if (!metadata.ok()) return nullptr;
    env->metadata = std::move(metadata.value());
    auto table = baseline::AcidTable::Open(fs, env->metadata.get(), "acid", TableSchema());
    if (!table.ok()) return nullptr;
    env->table = std::move(table.value());
    if (!env->table->InsertRows(InitialRows(kRows)).ok()) return nullptr;
    return env;
  };
  auto statement = [](AcidEnv* env, size_t i) { return statements[i].run(env); };
  // Every ACID statement commits through a single delta-file (or manifest)
  // rename, so the in-flight statement must be all-or-nothing.
  auto verify = MakeTableVerifier<AcidEnv>(
      &statements, kRows, /*statement_atomic=*/true,
      [](fs::SimFileSystem* fs) -> Result<std::shared_ptr<table::StorageTable>> {
        auto metadata = dual::MetadataTable::Open(fs);
        if (!metadata.ok()) return metadata.status();
        auto table = baseline::AcidTable::Open(fs, metadata->get(), "acid", TableSchema());
        if (!table.ok()) return table.status();
        struct Holder {
          std::unique_ptr<dual::MetadataTable> metadata;
          std::shared_ptr<baseline::AcidTable> table;
        };
        auto holder = std::make_shared<Holder>();
        holder->metadata = std::move(metadata.value());
        holder->table = std::move(table.value());
        return std::shared_ptr<table::StorageTable>(holder, holder->table.get());
      });
  RunCrashSweep<AcidEnv>("acid tear=0.5", 0.5, statements.size(), setup, statement, verify);
}

// --- Hive INSERT OVERWRITE sweep ------------------------------------------------

struct HiveEnv {
  std::unique_ptr<dual::MetadataTable> metadata;
  std::shared_ptr<baseline::HiveTable> table;
};

std::vector<Statement<HiveEnv>> HiveStatements() {
  auto update = [](int64_t value, std::function<bool(int64_t)> pred) {
    return Statement<HiveEnv>{
        [value, pred](HiveEnv* env) { return RunUpdate(env->table.get(), value, pred); },
        [value, pred](State* state) { ApplyUpdate(state, value, pred); }};
  };
  std::vector<Statement<HiveEnv>> statements;
  statements.push_back(update(1, [](int64_t id) { return id < 15; }));
  statements.push_back(
      {[](HiveEnv* env) { return RunDelete(env->table.get(), [](int64_t id) { return id >= 30; }); },
       [](State* state) { ApplyDelete(state, [](int64_t id) { return id >= 30; }); }});
  statements.push_back(update(2, [](int64_t) { return true; }));
  return statements;
}

TEST(CrashSweepTest, HiveInsertOverwrite) {
  static const std::vector<Statement<HiveEnv>> statements = HiveStatements();
  constexpr int64_t kRows = 40;

  auto setup = [](fs::SimFileSystem* fs) -> std::unique_ptr<HiveEnv> {
    auto env = std::make_unique<HiveEnv>();
    auto metadata = dual::MetadataTable::Open(fs);
    if (!metadata.ok()) return nullptr;
    env->metadata = std::move(metadata.value());
    auto table = baseline::HiveTable::Open(fs, env->metadata.get(), "hive", TableSchema());
    if (!table.ok()) return nullptr;
    env->table = std::move(table.value());
    if (!env->table->InsertRows(InitialRows(kRows)).ok()) return nullptr;
    return env;
  };
  auto statement = [](HiveEnv* env, size_t i) { return statements[i].run(env); };
  // Every Hive DML is a whole-table rewrite committed by the manifest
  // rename: old generation or new generation, nothing in between.
  auto verify = MakeTableVerifier<HiveEnv>(
      &statements, kRows, /*statement_atomic=*/true,
      [](fs::SimFileSystem* fs) -> Result<std::shared_ptr<table::StorageTable>> {
        auto metadata = dual::MetadataTable::Open(fs);
        if (!metadata.ok()) return metadata.status();
        auto table = baseline::HiveTable::Open(fs, metadata->get(), "hive", TableSchema());
        if (!table.ok()) return table.status();
        struct Holder {
          std::unique_ptr<dual::MetadataTable> metadata;
          std::shared_ptr<baseline::HiveTable> table;
        };
        auto holder = std::make_shared<Holder>();
        holder->metadata = std::move(metadata.value());
        holder->table = std::move(table.value());
        return std::shared_ptr<table::StorageTable>(holder, holder->table.get());
      });
  RunCrashSweep<HiveEnv>("hive tear=0.5", 0.5, statements.size(), setup, statement, verify);
}

// --- Error-injection sweep (no crash) -------------------------------------------

// One injected IO error at each point of the KV workload: the failed
// statement is unacknowledged, the store keeps serving reads and writes, and
// both the live store and a reopened one show each key in a state explained
// by the acknowledged ops (plus, for the single failed op's key, its
// unacknowledged-but-possibly-durable state).
TEST(ErrorSweepTest, KvStoreSurvivesInjectedErrorAtEveryOperation) {
  const std::vector<KvOp> ops = KvWorkload();
  std::vector<std::string> keys;
  for (int i = 0; i < 8; ++i) keys.push_back("k" + std::to_string(i));

  uint64_t total_ops = 0;
  {
    fs::SimFileSystem fs;
    auto store = kv::KvStore::Open(&fs, KvSweepOptions());
    ASSERT_TRUE(store.ok());
    const uint64_t before = fs.MutatingOpCount();
    for (const KvOp& op : ops) ASSERT_TRUE(RunKvOp(store->get(), op).ok());
    total_ops = fs.MutatingOpCount() - before;
  }

  for (const uint64_t k : SelectCrashPoints(total_ops)) {
    SCOPED_TRACE("error at mutating op " + std::to_string(k) + "/" +
                 std::to_string(total_ops));
    fs::SimFileSystem fs;
    auto store = kv::KvStore::Open(&fs, KvSweepOptions());
    ASSERT_TRUE(store.ok());
    FaultPolicy policy;
    policy.mode = FaultMode::kErrorOnce;
    policy.trigger_after_ops = k;
    fs.SetFaultPolicy(policy);

    std::vector<bool> acked(ops.size(), false);
    size_t failures = 0;
    for (size_t i = 0; i < ops.size(); ++i) {
      acked[i] = RunKvOp(store->get(), ops[i]).ok();
      if (!acked[i]) ++failures;
    }
    EXPECT_LE(failures, 1u) << "a single injected error failed multiple statements";

    // Allowed states: acknowledged ops applied in order; the one failed op
    // may or may not have taken effect.
    std::map<std::string, std::string> without_failed;
    std::map<std::string, std::string> with_failed;
    for (size_t i = 0; i < ops.size(); ++i) {
      if (acked[i]) ApplyKvOp(&without_failed, ops[i]);
      ApplyKvOp(&with_failed, ops[i]);
    }
    auto check = [&](kv::KvStore* s, const std::string& when) {
      for (const std::string& key : keys) {
        auto got = s->Get(key, 1);
        ASSERT_TRUE(got.ok()) << when << " " << key << ": " << got.status().ToString();
        auto lookup = [&](const std::map<std::string, std::string>& m) {
          const auto it = m.find(key);
          return it == m.end() ? std::optional<std::string>() : std::optional(it->second);
        };
        EXPECT_TRUE(*got == lookup(without_failed) || *got == lookup(with_failed))
            << when << ": key " << key << " is "
            << (got->has_value() ? "\"" + **got + "\"" : "<absent>");
      }
    };
    check(store->get(), "live");
    // The engine keeps running: a fresh write after the fault must succeed.
    EXPECT_TRUE((*store)->Put("k0", 1, "post-error").ok());
    without_failed["k0"] = "post-error";
    with_failed["k0"] = "post-error";

    fs.ClearFaultPolicy();
    store->reset();  // clean shutdown
    auto reopened = kv::KvStore::Open(&fs, KvSweepOptions());
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    check(reopened->get(), "reopened");
  }
}

// --- Bite test ------------------------------------------------------------------

// Demonstrates that the sweep has teeth: with the master-table manifest
// commit disabled (SetUnsafeGenerationCommitForTests reverts recovery to
// "scan whatever ORC files exist"), a crash between publishing the rewritten
// generation and deleting the old one resurrects both generations, and the
// sweep must observe duplicate rows at some crash point. If this test ever
// fails, the harness has lost its ability to catch the bug class the
// manifest was introduced to fix.
TEST(CrashSweepBiteTest, UnsafeGenerationCommitIsDetected) {
  constexpr int64_t kRows = 40;
  auto setup = [](fs::SimFileSystem* fs)
      -> std::pair<std::unique_ptr<dual::MetadataTable>, std::shared_ptr<baseline::HiveTable>> {
    auto metadata = dual::MetadataTable::Open(fs);
    if (!metadata.ok()) return {};
    auto table = baseline::HiveTable::Open(fs, metadata->get(), "hive", TableSchema());
    if (!table.ok()) return {};
    (*table)->storage()->SetUnsafeGenerationCommitForTests(true);
    if (!(*table)->InsertRows(InitialRows(kRows)).ok()) return {};
    return {std::move(metadata.value()), std::move(table.value())};
  };

  uint64_t total_ops = 0;
  {
    fs::SimFileSystem fs;
    auto [metadata, table] = setup(&fs);
    ASSERT_NE(table, nullptr);
    const uint64_t before = fs.MutatingOpCount();
    ASSERT_TRUE(RunUpdate(table.get(), 1, [](int64_t id) { return id < 15; }).ok());
    total_ops = fs.MutatingOpCount() - before;
  }

  State old_state = InitialState(kRows);
  State new_state = old_state;
  ApplyUpdate(&new_state, 1, [](int64_t id) { return id < 15; });

  size_t violations = 0;
  for (const uint64_t k : SelectCrashPoints(total_ops)) {
    fs::SimFileSystem fs;
    auto [metadata, table] = setup(&fs);
    ASSERT_NE(table, nullptr);
    FaultPolicy policy;
    policy.mode = FaultMode::kCrash;
    policy.trigger_after_ops = k;
    fs.SetFaultPolicy(policy);
    const Status st = RunUpdate(table.get(), 1, [](int64_t id) { return id < 15; });
    table.reset();
    metadata.reset();
    fs.ClearFaultPolicy();

    auto reopened_meta = dual::MetadataTable::Open(&fs);
    ASSERT_TRUE(reopened_meta.ok());
    auto reopened =
        baseline::HiveTable::Open(&fs, reopened_meta->get(), "hive", TableSchema());
    if (!reopened.ok()) {
      ++violations;  // recovery itself failing is a detected violation too
      continue;
    }
    State actual;
    std::string why;
    if (!TryReadState(reopened->get(), &actual, &why)) {
      ++violations;  // duplicate rows from the resurrected generation
      continue;
    }
    const std::optional<State> after =
        st.ok() ? std::nullopt : std::optional<State>(new_state);
    if (!TableStateMatches(actual, st.ok() ? new_state : old_state, after,
                           /*statement_atomic=*/true)) {
      ++violations;
    }
  }
  EXPECT_GT(violations, 0u)
      << "disabling the manifest commit was not detected by the crash sweep";
}

}  // namespace
}  // namespace dtl
