// Durability and recovery across component restarts: every store must come
// back from its persisted state (WAL, SSTables, ORC files, metadata) with
// the logical view intact — including DualTable instances whose attached
// tables hold unflushed EDIT-plan modifications.
#include <gtest/gtest.h>

#include <map>

#include "baseline/acid_table.h"
#include "baseline/hive_table.h"
#include "dualtable/dual_table.h"
#include "fs/filesystem.h"

namespace dtl {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs_ = std::make_unique<fs::SimFileSystem>();
    auto meta = dual::MetadataTable::Open(fs_.get());
    ASSERT_TRUE(meta.ok());
    metadata_ = std::move(*meta);
    cluster_ = std::make_unique<fs::ClusterModel>();
  }

  Schema TestSchema() {
    return Schema({{"id", DataType::kInt64}, {"v", DataType::kInt64}});
  }

  Result<std::shared_ptr<dual::DualTable>> OpenDual(
      dual::DualTableOptions::PlanMode mode) {
    dual::DualTableOptions options;
    options.plan_mode = mode;
    return dual::DualTable::Open(fs_.get(), metadata_.get(), cluster_.get(), "t",
                                 TestSchema(), options);
  }

  std::unique_ptr<fs::SimFileSystem> fs_;
  std::unique_ptr<dual::MetadataTable> metadata_;
  std::unique_ptr<fs::ClusterModel> cluster_;
};

TEST_F(RecoveryTest, DualTableSurvivesReopenWithPendingEdits) {
  // First incarnation: insert + EDIT update + EDIT delete, then drop the
  // object WITHOUT compaction or flush — modifications live in the attached
  // table's WAL/memtable only.
  {
    auto t = OpenDual(dual::DualTableOptions::PlanMode::kForceEdit);
    ASSERT_TRUE(t.ok());
    std::vector<Row> rows;
    for (int i = 0; i < 100; ++i) rows.push_back({Value::Int64(i), Value::Int64(0)});
    ASSERT_TRUE((*t)->InsertRows(rows).ok());

    table::ScanSpec evens;
    evens.predicate_columns = {0};
    evens.predicate = [](const Row& row) { return row[0].AsInt64() % 2 == 0; };
    table::Assignment assign;
    assign.column = 1;
    assign.compute = [](const Row&) { return Value::Int64(7); };
    ASSERT_TRUE((*t)->Update(evens, {assign}).ok());

    table::ScanSpec nineties;
    nineties.predicate_columns = {0};
    nineties.predicate = [](const Row& row) { return row[0].AsInt64() >= 90; };
    ASSERT_TRUE((*t)->Delete(nineties).ok());
  }

  // Second incarnation: the WAL replays; the merged view is identical.
  auto reopened = OpenDual(dual::DualTableOptions::PlanMode::kForceEdit);
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE((*reopened)->attached()->Empty());
  auto rows = table::CollectRows(reopened->get(), table::ScanSpec{});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 90u);
  for (const Row& row : *rows) {
    const int64_t id = row[0].AsInt64();
    EXPECT_LT(id, 90);
    EXPECT_EQ(row[1].AsInt64(), id % 2 == 0 ? 7 : 0);
  }
}

TEST_F(RecoveryTest, DualTableFileIdsStayUniqueAcrossReopen) {
  {
    auto t = OpenDual(dual::DualTableOptions::PlanMode::kCostModel);
    ASSERT_TRUE((*t)->InsertRows({{Value::Int64(1), Value::Int64(1)}}).ok());
  }
  auto reopened = OpenDual(dual::DualTableOptions::PlanMode::kCostModel);
  ASSERT_TRUE((*reopened)->InsertRows({{Value::Int64(2), Value::Int64(2)}}).ok());
  const auto& files = (*reopened)->master()->files();
  ASSERT_EQ(files.size(), 2u);
  // The metadata table persisted the counter: no file-ID collision.
  EXPECT_NE(files[0].file_id, files[1].file_id);
  EXPECT_EQ(*(*reopened)->CountRows(), 2u);
}

TEST_F(RecoveryTest, MetadataHistorySurvivesReopen) {
  ASSERT_TRUE(metadata_->RecordModificationRatio("t", 0.125).ok());
  auto meta2 = dual::MetadataTable::Open(fs_.get());
  ASSERT_TRUE(meta2.ok());
  auto ratio = (*meta2)->HistoricalModificationRatio("t", 0.5);
  ASSERT_TRUE(ratio.ok());
  EXPECT_NEAR(*ratio, 0.125, 1e-9);
}

TEST_F(RecoveryTest, AcidTableRecoversDeltasAndTxnCounter) {
  {
    auto t = baseline::AcidTable::Open(fs_.get(), metadata_.get(), "a", TestSchema());
    ASSERT_TRUE(t.ok());
    std::vector<Row> rows;
    for (int i = 0; i < 50; ++i) rows.push_back({Value::Int64(i), Value::Int64(0)});
    ASSERT_TRUE((*t)->InsertRows(rows).ok());
    table::ScanSpec low;
    low.predicate_columns = {0};
    low.predicate = [](const Row& row) { return row[0].AsInt64() < 10; };
    table::Assignment assign;
    assign.column = 1;
    assign.compute = [](const Row&) { return Value::Int64(5); };
    ASSERT_TRUE((*t)->Update(low, {assign}).ok());
  }
  auto reopened = baseline::AcidTable::Open(fs_.get(), metadata_.get(), "a", TestSchema());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->NumDeltaFiles(), 1u);
  // Further transactions get fresh txn numbers (no delta-file collision).
  table::ScanSpec high;
  high.predicate_columns = {0};
  high.predicate = [](const Row& row) { return row[0].AsInt64() >= 40; };
  ASSERT_TRUE((*reopened)->Delete(high).ok());
  EXPECT_EQ((*reopened)->NumDeltaFiles(), 2u);
  auto count = (*reopened)->CountRows();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 40u);
  auto check = table::CollectRows(reopened->get(), table::ScanSpec{});
  int updated = 0;
  for (const Row& row : *check) {
    if (row[1].AsInt64() == 5) ++updated;
  }
  EXPECT_EQ(updated, 10);
}

TEST_F(RecoveryTest, KvStoreSurvivesManyReopenCycles) {
  kv::KvStoreOptions options;
  options.dir = "/hbase/cycle";
  options.memtable_flush_bytes = 2048;
  std::map<std::string, std::string> model;
  for (int cycle = 0; cycle < 5; ++cycle) {
    auto store = kv::KvStore::Open(fs_.get(), options);
    ASSERT_TRUE(store.ok()) << "cycle " << cycle;
    // Verify everything from previous cycles.
    for (const auto& [key, value] : model) {
      auto got = (*store)->Get(key, 1);
      ASSERT_TRUE(got.ok());
      ASSERT_TRUE(got->has_value()) << key;
      EXPECT_EQ(**got, value);
    }
    // Write this cycle's batch (some keys overwrite earlier cycles).
    for (int i = 0; i < 40; ++i) {
      std::string key = "k" + std::to_string((cycle * 17 + i) % 100);
      std::string value = "c" + std::to_string(cycle) + "_" + std::to_string(i);
      ASSERT_TRUE((*store)->Put(key, 1, value).ok());
      model[key] = value;
    }
    if (cycle % 2 == 0) {
      ASSERT_TRUE((*store)->Flush().ok());
    }
  }
}

TEST_F(RecoveryTest, HiveTableReopensFromOrcFiles) {
  {
    auto t = baseline::HiveTable::Open(fs_.get(), metadata_.get(), "h", TestSchema());
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE((*t)->InsertRows({{Value::Int64(1), Value::Int64(10)}}).ok());
    ASSERT_TRUE((*t)->InsertRows({{Value::Int64(2), Value::Int64(20)}}).ok());
  }
  auto reopened = baseline::HiveTable::Open(fs_.get(), metadata_.get(), "h", TestSchema());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->storage()->files().size(), 2u);
  EXPECT_EQ(*(*reopened)->CountRows(), 2u);
}

}  // namespace
}  // namespace dtl
