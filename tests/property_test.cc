// Property-based suites (parameterized gtest): each instantiation checks an
// invariant across a sweep of configurations against simple reference
// models.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "common/random.h"
#include "dualtable/dual_table.h"
#include "fs/filesystem.h"
#include "kv/store.h"
#include "orc/reader.h"
#include "orc/writer.h"

namespace dtl {
namespace {

// --- Property 1: DualTable under random DML matches an in-memory model ------------

struct DmlSweepParam {
  int rows;
  int operations;
  double update_prob;   // vs delete
  uint64_t stripe_rows;
  uint64_t seed;
};

class DualTableModelTest : public ::testing::TestWithParam<DmlSweepParam> {};

TEST_P(DualTableModelTest, UnionReadMatchesReferenceModel) {
  const DmlSweepParam p = GetParam();
  fs::SimFileSystem fs;
  auto metadata = dual::MetadataTable::Open(&fs);
  ASSERT_TRUE(metadata.ok());
  fs::ClusterModel cluster;

  Schema schema({{"id", DataType::kInt64}, {"bucket", DataType::kInt64},
                 {"v", DataType::kInt64}});
  dual::DualTableOptions options;
  options.writer_options.stripe_rows = p.stripe_rows;
  options.plan_mode = dual::DualTableOptions::PlanMode::kForceEdit;
  auto t = dual::DualTable::Open(&fs, metadata->get(), &cluster, "t", schema, options);
  ASSERT_TRUE(t.ok());

  // Reference model: id -> (bucket, v); absent = deleted.
  std::map<int64_t, std::pair<int64_t, int64_t>> model;
  std::vector<Row> rows;
  for (int i = 0; i < p.rows; ++i) {
    rows.push_back({Value::Int64(i), Value::Int64(i % 16), Value::Int64(i)});
    model[i] = {i % 16, i};
  }
  ASSERT_TRUE((*t)->InsertRows(rows).ok());

  Random rng(p.seed);
  for (int op = 0; op < p.operations; ++op) {
    const int64_t bucket = static_cast<int64_t>(rng.Uniform(16));
    if (rng.Bernoulli(p.update_prob)) {
      const int64_t delta = rng.UniformRange(1, 100);
      table::ScanSpec filter;
      filter.predicate_columns = {1};
      filter.predicate = [bucket](const Row& row) {
        return row[1].AsInt64() == bucket;
      };
      table::Assignment assign;
      assign.column = 2;
      assign.input_columns = {2};
      assign.compute = [delta](const Row& row) {
        return Value::Int64(row[2].AsInt64() + delta);
      };
      ASSERT_TRUE((*t)->Update(filter, {assign}).ok());
      for (auto& [id, rec] : model) {
        if (rec.first == bucket) rec.second += delta;
      }
    } else {
      const int64_t mod = 1 + static_cast<int64_t>(rng.Uniform(50));
      table::ScanSpec filter;
      filter.predicate_columns = {0, 1};
      filter.predicate = [bucket, mod](const Row& row) {
        return row[1].AsInt64() == bucket && row[0].AsInt64() % 53 < mod / 10;
      };
      ASSERT_TRUE((*t)->Delete(filter).ok());
      for (auto it = model.begin(); it != model.end();) {
        if (it->second.first == bucket && it->first % 53 < mod / 10) {
          it = model.erase(it);
        } else {
          ++it;
        }
      }
    }
    // Occasionally compact mid-stream; the view must not change.
    if (op == p.operations / 2) {
      ASSERT_TRUE((*t)->Compact().ok());
    }
  }

  auto scanned = table::CollectRows(t->get(), table::ScanSpec{});
  ASSERT_TRUE(scanned.ok());
  ASSERT_EQ(scanned->size(), model.size());
  for (const Row& row : *scanned) {
    auto it = model.find(row[0].AsInt64());
    ASSERT_NE(it, model.end());
    EXPECT_EQ(row[1].AsInt64(), it->second.first);
    EXPECT_EQ(row[2].AsInt64(), it->second.second);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DmlSweeps, DualTableModelTest,
    ::testing::Values(DmlSweepParam{200, 10, 0.8, 64, 1},
                      DmlSweepParam{500, 20, 0.5, 128, 2},
                      DmlSweepParam{1000, 15, 0.7, 256, 3},
                      DmlSweepParam{300, 30, 0.3, 50, 4},
                      DmlSweepParam{100, 25, 0.9, 16, 5}));

// --- Property 2: KV store matches an ordered-map reference under random ops --------

struct KvSweepParam {
  size_t flush_bytes;
  int l0_trigger;
  int operations;
  uint64_t seed;
};

class KvModelTest : public ::testing::TestWithParam<KvSweepParam> {};

TEST_P(KvModelTest, StoreMatchesReferenceModel) {
  const KvSweepParam p = GetParam();
  fs::SimFileSystem fs;
  kv::KvStoreOptions options;
  options.dir = "/hbase/t";
  options.memtable_flush_bytes = p.flush_bytes;
  options.l0_compaction_trigger = p.l0_trigger;
  auto store = kv::KvStore::Open(&fs, options);
  ASSERT_TRUE(store.ok());

  // Reference: (row, qualifier) -> latest value; absent = deleted/missing.
  std::map<std::pair<std::string, uint32_t>, std::string> model;
  Random rng(p.seed);
  for (int op = 0; op < p.operations; ++op) {
    std::string row = "row" + std::to_string(rng.Uniform(200));
    uint32_t qual = static_cast<uint32_t>(rng.Uniform(4));
    switch (rng.Uniform(10)) {
      case 0: {  // row delete
        ASSERT_TRUE((*store)->DeleteRow(row).ok());
        for (uint32_t q = 0; q < 4; ++q) model.erase({row, q});
        break;
      }
      case 1: {  // column delete
        ASSERT_TRUE((*store)->DeleteColumn(row, qual).ok());
        model.erase({row, qual});
        break;
      }
      default: {  // put
        std::string value = rng.NextString(24);
        ASSERT_TRUE((*store)->Put(row, qual, value).ok());
        model[{row, qual}] = value;
      }
    }
    if (op % 997 == 0) {
      ASSERT_TRUE((*store)->Flush().ok());
    }
  }

  // Point reads match.
  Random probe(p.seed + 1);
  for (int i = 0; i < 200; ++i) {
    std::string row = "row" + std::to_string(probe.Uniform(200));
    uint32_t qual = static_cast<uint32_t>(probe.Uniform(4));
    auto got = (*store)->Get(row, qual);
    ASSERT_TRUE(got.ok());
    auto it = model.find({row, qual});
    if (it == model.end()) {
      EXPECT_FALSE(got->has_value()) << row << "/" << qual;
    } else {
      ASSERT_TRUE(got->has_value()) << row << "/" << qual;
      EXPECT_EQ(**got, it->second);
    }
  }

  // Full scan matches (content and order).
  auto scanner = (*store)->NewRowScanner();
  std::map<std::pair<std::string, uint32_t>, std::string> scanned;
  std::string prev_row;
  while (scanner->Next()) {
    EXPECT_LE(prev_row, scanner->view().row);
    prev_row = scanner->view().row;
    for (const kv::Cell& cell : scanner->view().cells) {
      scanned[{cell.key.row, cell.key.qualifier}] = cell.value.value;
    }
  }
  ASSERT_TRUE(scanner->status().ok());
  EXPECT_EQ(scanned, model);

  // Compaction preserves the model.
  ASSERT_TRUE((*store)->Compact().ok());
  auto scanner2 = (*store)->NewRowScanner();
  std::map<std::pair<std::string, uint32_t>, std::string> after;
  while (scanner2->Next()) {
    for (const kv::Cell& cell : scanner2->view().cells) {
      after[{cell.key.row, cell.key.qualifier}] = cell.value.value;
    }
  }
  EXPECT_EQ(after, model);
}

INSTANTIATE_TEST_SUITE_P(KvSweeps, KvModelTest,
                         ::testing::Values(KvSweepParam{1 << 12, 2, 3000, 11},
                                           KvSweepParam{1 << 14, 4, 5000, 12},
                                           KvSweepParam{1 << 16, 8, 5000, 13},
                                           KvSweepParam{1 << 20, 3, 2000, 14}));

// --- Property 3: ORC round trip across stripe sizes and null densities -------------

struct OrcSweepParam {
  uint64_t stripe_rows;
  double null_prob;
  int rows;
  uint64_t seed;
};

class OrcRoundTripTest : public ::testing::TestWithParam<OrcSweepParam> {};

TEST_P(OrcRoundTripTest, RandomDataSurvivesRoundTrip) {
  const OrcSweepParam p = GetParam();
  fs::SimFileSystem fs;
  Schema schema({{"i", DataType::kInt64},
                 {"d", DataType::kDouble},
                 {"s", DataType::kString},
                 {"b", DataType::kBool}});
  orc::WriterOptions options;
  options.stripe_rows = p.stripe_rows;
  auto writer = orc::OrcWriter::Create(&fs, "/t/f.orc", schema, 1, options);
  ASSERT_TRUE(writer.ok());

  Random rng(p.seed);
  std::vector<Row> expected;
  for (int i = 0; i < p.rows; ++i) {
    Row row;
    auto maybe_null = [&](Value v) {
      return rng.Bernoulli(p.null_prob) ? Value::Null() : v;
    };
    row.push_back(maybe_null(Value::Int64(rng.UniformRange(-1000000, 1000000))));
    row.push_back(maybe_null(Value::Double(rng.NextDouble() * 1e6)));
    row.push_back(maybe_null(Value::String(rng.NextString(rng.Uniform(20)))));
    row.push_back(maybe_null(Value::Bool(rng.Bernoulli(0.5))));
    ASSERT_TRUE((*writer)->Append(row).ok());
    expected.push_back(std::move(row));
  }
  ASSERT_TRUE((*writer)->Close().ok());

  auto reader = orc::OrcReader::Open(&fs, "/t/f.orc");
  ASSERT_TRUE(reader.ok());
  orc::OrcRowIterator it(reader->get(), {});
  size_t n = 0;
  while (it.Next()) {
    ASSERT_LT(n, expected.size());
    const Row& want = expected[n];
    const Row& got = it.row();
    for (size_t c = 0; c < want.size(); ++c) {
      EXPECT_EQ(got[c].is_null(), want[c].is_null()) << "row " << n << " col " << c;
      if (!want[c].is_null()) {
        EXPECT_EQ(got[c].Compare(want[c]), 0);
      }
    }
    ++n;
  }
  ASSERT_TRUE(it.status().ok());
  EXPECT_EQ(n, expected.size());
}

INSTANTIATE_TEST_SUITE_P(OrcSweeps, OrcRoundTripTest,
                         ::testing::Values(OrcSweepParam{1, 0.0, 50, 21},
                                           OrcSweepParam{7, 0.2, 500, 22},
                                           OrcSweepParam{100, 0.5, 1000, 23},
                                           OrcSweepParam{1000, 0.05, 3000, 24},
                                           OrcSweepParam{4096, 1.0, 500, 25}));

// --- Property 4: cost-model decisions are sign-consistent and monotone -------------

struct CostSweepParam {
  double k;
  uint64_t table_bytes;
};

class CostModelSweepTest : public ::testing::TestWithParam<CostSweepParam> {};

TEST_P(CostModelSweepTest, DecisionMatchesSignAndIsMonotone) {
  const CostSweepParam p = GetParam();
  fs::ClusterModel cluster;
  dual::CostModelParams params;
  params.k = p.k;
  dual::CostModel model(&cluster, params);

  bool seen_overwrite = false;
  for (double alpha = 0.01; alpha < 1.0; alpha += 0.01) {
    auto d = model.DecideUpdate(p.table_bytes, alpha);
    // Plan is exactly the sign of Eq. 1.
    EXPECT_EQ(d.plan == table::DmlPlan::kEdit, d.cost_difference_seconds > 0);
    // Once OVERWRITE wins, it keeps winning (costs are linear in alpha).
    if (seen_overwrite) {
      EXPECT_EQ(d.plan, table::DmlPlan::kOverwrite) << "alpha " << alpha;
    }
    seen_overwrite |= d.plan == table::DmlPlan::kOverwrite;
  }
  // The analytic crossover agrees with the scanned decision flip.
  double crossover = model.UpdateCrossoverRatio(p.table_bytes);
  if (crossover < 1.0 && crossover > 0.0) {
    EXPECT_EQ(model.DecideUpdate(p.table_bytes, crossover * 0.9).plan,
              table::DmlPlan::kEdit);
    if (crossover * 1.1 < 1.0) {
      EXPECT_EQ(model.DecideUpdate(p.table_bytes, crossover * 1.1).plan,
                table::DmlPlan::kOverwrite);
    }
  }

  // Higher k favors OVERWRITE (more reads amortize the rewrite).
  dual::CostModelParams params_high = params;
  params_high.k = p.k * 4;
  dual::CostModel model_high(&cluster, params_high);
  EXPECT_LE(model_high.UpdateCrossoverRatio(p.table_bytes),
            model.UpdateCrossoverRatio(p.table_bytes));
}

INSTANTIATE_TEST_SUITE_P(CostSweeps, CostModelSweepTest,
                         ::testing::Values(CostSweepParam{0.5, 1ull << 30},
                                           CostSweepParam{1, 10ull << 30},
                                           CostSweepParam{5, 100ull << 30},
                                           CostSweepParam{30, 100ull << 30},
                                           CostSweepParam{2, 1ull << 20}));

// --- Property 5: KV store recovers the acknowledged prefix after a torn crash ------

struct TornWriteParam {
  int operations;
  double tear_fraction;  // of the in-flight commit's un-synced suffix
  uint64_t seed;
};

class TornWriteRecoveryTest : public ::testing::TestWithParam<TornWriteParam> {};

// A random put/delete workload is crashed at seed-derived random mutating-op
// counts with the tail of the in-flight commit torn. The reopened store must
// equal the reference model of the acknowledged (synced) prefix; the single
// operation in flight at the crash may be present or absent, never mangled.
TEST_P(TornWriteRecoveryTest, ReopenedStoreMatchesModelOfAcknowledgedOps) {
  const TornWriteParam p = GetParam();
  constexpr int kRows = 40;
  constexpr uint32_t kQuals = 3;

  // The deterministic op sequence, generated once and replayed per trial.
  struct Op {
    bool is_delete = false;
    std::string row;
    uint32_t qual = 0;
    std::string value;
  };
  std::vector<Op> ops;
  Random gen(p.seed);
  for (int i = 0; i < p.operations; ++i) {
    Op op;
    op.row = "row" + std::to_string(gen.Uniform(kRows));
    op.qual = static_cast<uint32_t>(gen.Uniform(kQuals));
    op.is_delete = gen.Uniform(8) == 0;
    if (!op.is_delete) op.value = gen.NextString(16);
    ops.push_back(op);
  }
  auto run_op = [](kv::KvStore* store, const Op& op) {
    return op.is_delete ? store->DeleteColumn(op.row, op.qual)
                        : store->Put(op.row, op.qual, op.value);
  };

  kv::KvStoreOptions options;
  options.dir = "/hbase/torn";
  options.wal_sync_interval_bytes = 0;  // an acknowledged op is a synced op
  options.memtable_flush_bytes = 1 << 10;

  // Fault-free run to learn how many mutating FS ops the workload performs.
  uint64_t total_ops = 0;
  {
    fs::SimFileSystem fs;
    auto store = kv::KvStore::Open(&fs, options);
    ASSERT_TRUE(store.ok());
    const uint64_t before = fs.MutatingOpCount();
    for (const Op& op : ops) ASSERT_TRUE(run_op(store->get(), op).ok());
    total_ops = fs.MutatingOpCount() - before;
  }
  ASSERT_GT(total_ops, 0u);

  Random crash_rng(p.seed ^ 0xC4A5C4A5ull);
  for (int trial = 0; trial < 8; ++trial) {
    const uint64_t crash_at = 1 + crash_rng.Uniform(total_ops);
    SCOPED_TRACE("crash at mutating op " + std::to_string(crash_at) + "/" +
                 std::to_string(total_ops));
    fs::SimFileSystem fs;
    auto store = kv::KvStore::Open(&fs, options);
    ASSERT_TRUE(store.ok());
    fs::FaultPolicy policy;
    policy.mode = fs::FaultMode::kCrash;
    policy.trigger_after_ops = crash_at;
    policy.tear_fraction = p.tear_fraction;
    fs.SetFaultPolicy(policy);

    std::map<std::pair<std::string, uint32_t>, std::string> model;
    std::optional<Op> in_flight;
    for (const Op& op : ops) {
      if (!run_op(store->get(), op).ok()) {
        in_flight = op;
        break;
      }
      if (op.is_delete) {
        model.erase({op.row, op.qual});
      } else {
        model[{op.row, op.qual}] = op.value;
      }
    }
    store->reset();  // process death while the fs is down: the writer is lost
    fs.ClearFaultPolicy();

    auto reopened = kv::KvStore::Open(&fs, options);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    for (int r = 0; r < kRows; ++r) {
      for (uint32_t q = 0; q < kQuals; ++q) {
        const std::string row = "row" + std::to_string(r);
        auto got = (*reopened)->Get(row, q);
        ASSERT_TRUE(got.ok()) << row << "/" << q << ": " << got.status().ToString();
        const auto it = model.find({row, q});
        const std::optional<std::string> acked =
            it == model.end() ? std::nullopt : std::optional<std::string>(it->second);
        if (in_flight.has_value() && in_flight->row == row && in_flight->qual == q) {
          // The op in flight at the crash may have reached the WAL before the
          // torn sync; either state is legal, a third state is not.
          const std::optional<std::string> applied =
              in_flight->is_delete ? std::nullopt
                                   : std::optional<std::string>(in_flight->value);
          EXPECT_TRUE(*got == acked || *got == applied)
              << row << "/" << q << " recovered as "
              << (got->has_value() ? "\"" + **got + "\"" : "<absent>");
        } else {
          EXPECT_TRUE(*got == acked)
              << row << "/" << q << " recovered as "
              << (got->has_value() ? "\"" + **got + "\"" : "<absent>") << ", expected "
              << (acked.has_value() ? "\"" + *acked + "\"" : "<absent>");
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TornWrites, TornWriteRecoveryTest,
                         ::testing::Values(TornWriteParam{60, 0.0, 21},
                                           TornWriteParam{60, 0.5, 22},
                                           TornWriteParam{120, 0.5, 23},
                                           TornWriteParam{120, 1.0, 24}));

}  // namespace
}  // namespace dtl
