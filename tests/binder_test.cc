#include <gtest/gtest.h>

#include "sql/binder.h"
#include "sql/parser.h"

namespace dtl::sql {
namespace {

Scope TwoTableScope() {
  Scope scope;
  scope.AddTable("a", Schema({{"x", DataType::kInt64}, {"y", DataType::kString}}));
  scope.AddTable("b", Schema({{"x", DataType::kInt64}, {"z", DataType::kDouble}}));
  return scope;
}

exec::ValueFn Bind(const std::string& text, const Scope& scope) {
  auto expr = ParseExpression(text);
  EXPECT_TRUE(expr.ok()) << expr.status().ToString();
  auto bound = BindScalar(**expr, scope);
  EXPECT_TRUE(bound.ok()) << bound.status().ToString();
  return bound.ok() ? bound->fn : exec::ValueFn();
}

TEST(ScopeTest, QualifiedAndUnqualifiedResolution) {
  Scope scope = TwoTableScope();
  EXPECT_EQ(*scope.Resolve("a", "x"), 0u);
  EXPECT_EQ(*scope.Resolve("b", "x"), 2u);
  EXPECT_EQ(*scope.Resolve("", "y"), 1u);   // unique unqualified
  EXPECT_EQ(*scope.Resolve("", "z"), 3u);
  EXPECT_TRUE(scope.Resolve("", "x").status().IsInvalidArgument());  // ambiguous
  EXPECT_TRUE(scope.Resolve("", "nope").status().IsNotFound());
  EXPECT_TRUE(scope.Resolve("c", "x").status().IsNotFound());
}

TEST(ScopeTest, ResolutionIsCaseInsensitive) {
  Scope scope;
  scope.AddTable("T", Schema({{"Col", DataType::kInt64}}));
  EXPECT_TRUE(scope.Resolve("t", "col").ok());
  EXPECT_TRUE(scope.Resolve("T", "COL").ok());
}

TEST(BindScalarTest, ArithmeticNullPropagation) {
  Scope scope = TwoTableScope();
  auto fn = Bind("a.x + 1", scope);
  Row row{Value::Int64(41), Value::Null(), Value::Null(), Value::Null()};
  EXPECT_EQ(fn(row).AsInt64(), 42);
  Row null_row{Value::Null(), Value::Null(), Value::Null(), Value::Null()};
  EXPECT_TRUE(fn(null_row).is_null());
}

TEST(BindScalarTest, DivisionByZeroIsNull) {
  Scope scope = TwoTableScope();
  auto fn = Bind("a.x / 0", scope);
  Row row{Value::Int64(5), Value::Null(), Value::Null(), Value::Null()};
  EXPECT_TRUE(fn(row).is_null());
}

TEST(BindScalarTest, ThreeValuedAndOr) {
  Scope scope = TwoTableScope();
  Row row{Value::Null(), Value::Null(), Value::Null(), Value::Null()};
  // FALSE AND NULL = FALSE; TRUE OR NULL = TRUE; TRUE AND NULL = NULL.
  EXPECT_FALSE(Bind("1 = 2 and a.x = 1", scope)(row).is_null());
  EXPECT_FALSE(Bind("1 = 2 and a.x = 1", scope)(row).AsBool());
  EXPECT_TRUE(Bind("1 = 1 or a.x = 1", scope)(row).AsBool());
  EXPECT_TRUE(Bind("1 = 1 and a.x = 1", scope)(row).is_null());
}

TEST(BindScalarTest, InListWithNullNeedle) {
  Scope scope = TwoTableScope();
  auto fn = Bind("a.x in (1, 2)", scope);
  Row row{Value::Null(), Value::Null(), Value::Null(), Value::Null()};
  EXPECT_TRUE(fn(row).is_null());
  Row hit{Value::Int64(2), Value::Null(), Value::Null(), Value::Null()};
  EXPECT_TRUE(fn(hit).AsBool());
}

TEST(BindScalarTest, CoalesceAndIf) {
  Scope scope = TwoTableScope();
  Row row{Value::Null(), Value::String("fallback"), Value::Null(), Value::Null()};
  EXPECT_EQ(Bind("coalesce(a.x, 7)", scope)(row).AsInt64(), 7);
  EXPECT_EQ(Bind("if(a.x is null, 'yes', 'no')", scope)(row).AsString(), "yes");
}

TEST(BindScalarTest, ColumnsTracked) {
  Scope scope = TwoTableScope();
  auto expr = ParseExpression("a.x + b.z * 2");
  auto bound = BindScalar(**expr, scope);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound->columns, (std::vector<size_t>{0, 3}));
}

TEST(BindScalarTest, AggregateRejected) {
  Scope scope = TwoTableScope();
  auto expr = ParseExpression("sum(a.x)");
  EXPECT_FALSE(BindScalar(**expr, scope).ok());
}

TEST(AggregateBindTest, CollectDedupsStructurally) {
  auto expr = ParseExpression("sum(x) + sum(x) + count(*)");
  ASSERT_TRUE(expr.ok());
  std::vector<const Expr*> aggs;
  CollectAggregates(**expr, &aggs);
  EXPECT_EQ(aggs.size(), 2u);  // sum(x) deduped
}

TEST(ConjunctTest, SplitFlattensAndTree) {
  auto expr = ParseExpression("a = 1 and (b = 2 and c = 3) and d = 4");
  std::vector<const Expr*> conjuncts;
  SplitConjuncts(**expr, &conjuncts);
  EXPECT_EQ(conjuncts.size(), 4u);
}

TEST(ConjunctTest, OrIsNotSplit) {
  auto expr = ParseExpression("a = 1 or b = 2");
  std::vector<const Expr*> conjuncts;
  SplitConjuncts(**expr, &conjuncts);
  EXPECT_EQ(conjuncts.size(), 1u);
}

TEST(BoundsTest, ExtractionFromComparisons) {
  Scope scope;
  scope.AddTable("t", Schema({{"day", DataType::kInt64}, {"v", DataType::kDouble}}));
  auto expr = ParseExpression("day >= 5 and day < 10 and v = 2.5 and day + 1 = 3");
  std::vector<const Expr*> conjuncts;
  SplitConjuncts(**expr, &conjuncts);
  auto bounds = ExtractBounds(conjuncts, scope);
  ASSERT_EQ(bounds.size(), 3u);  // day>=5, day<10, v=2.5; the arithmetic one skipped
  EXPECT_EQ(bounds[0].column, 0u);
  EXPECT_EQ(bounds[0].lower->AsInt64(), 5);
  EXPECT_FALSE(bounds[0].upper.has_value());
  EXPECT_EQ(bounds[1].upper->AsInt64(), 10);
  EXPECT_EQ(bounds[2].column, 1u);
  EXPECT_EQ(bounds[2].lower->Compare(*bounds[2].upper), 0);  // equality pins both
}

TEST(BoundsTest, FlippedLiteralComparison) {
  Scope scope;
  scope.AddTable("t", Schema({{"day", DataType::kInt64}}));
  auto expr = ParseExpression("5 < day");  // means day > 5
  std::vector<const Expr*> conjuncts;
  SplitConjuncts(**expr, &conjuncts);
  auto bounds = ExtractBounds(conjuncts, scope);
  ASSERT_EQ(bounds.size(), 1u);
  ASSERT_TRUE(bounds[0].lower.has_value());
  EXPECT_EQ(bounds[0].lower->AsInt64(), 5);
}

TEST(PostAggregateTest, GroupKeyAndAggSlots) {
  Scope scope;
  scope.AddTable("t", Schema({{"g", DataType::kInt64}, {"v", DataType::kInt64}}));
  auto group = ParseExpression("g");
  auto agg = ParseExpression("sum(v)");
  auto out = ParseExpression("g + sum(v) * 2");
  std::vector<const Expr*> groups = {group->get()};
  std::vector<const Expr*> aggs = {agg->get()};
  auto fn = BindPostAggregate(**out, groups, aggs, scope);
  ASSERT_TRUE(fn.ok());
  // Post-agg row layout: [g, sum(v)].
  Row row{Value::Int64(10), Value::Int64(5)};
  EXPECT_EQ((*fn)(row).AsInt64(), 20);
}

TEST(PostAggregateTest, StrayColumnRejected) {
  Scope scope;
  scope.AddTable("t", Schema({{"g", DataType::kInt64}, {"v", DataType::kInt64}}));
  auto group = ParseExpression("g");
  auto out = ParseExpression("v");  // not grouped, not aggregated
  std::vector<const Expr*> groups = {group->get()};
  std::vector<const Expr*> aggs;
  EXPECT_FALSE(BindPostAggregate(**out, groups, aggs, scope).ok());
}

}  // namespace
}  // namespace dtl::sql
