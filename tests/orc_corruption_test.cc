// Corruption matrix for the ORC-like file format: flip one byte in each
// structural section (postscript magic/CRC/length, footer body, stripe
// column data, presence bitmap) and assert the reader surfaces
// Status::Corruption — never a crash, never silently wrong rows. Run under
// ASan/UBSan in CI, this doubles as a memory-safety check on the decode
// paths.
#include <gtest/gtest.h>

#include "common/coding.h"
#include "fs/filesystem.h"
#include "orc/reader.h"
#include "orc/writer.h"

namespace dtl {
namespace {

constexpr const char* kPath = "/orc/file.orc";
constexpr int kRows = 250;  // 3 stripes at 100 rows/stripe

class OrcCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(fs_.CreateDir("/orc").ok());
    orc::WriterOptions options;
    options.stripe_rows = 100;
    Schema schema({{"id", DataType::kInt64}, {"name", DataType::kString}});
    auto writer = orc::OrcWriter::Create(&fs_, kPath, schema, 1, options);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < kRows; ++i) {
      Row row;
      row.push_back(Value::Int64(i));
      // Every seventh name is NULL so the presence bitmaps carry real
      // information.
      row.push_back(i % 7 == 0 ? Value::Null() : Value::String("n" + std::to_string(i)));
      ASSERT_TRUE(writer.value()->Append(row).ok());
    }
    ASSERT_TRUE(writer.value()->Close().ok());
    auto size = fs_.FileSize(kPath);
    ASSERT_TRUE(size.ok());
    size_ = *size;
  }

  /// Opens the intact file; used to locate sections before corrupting them.
  orc::FileFooter CleanFooter() {
    auto reader = orc::OrcReader::Open(&fs_, kPath);
    EXPECT_TRUE(reader.ok());
    return reader.value()->footer();
  }

  void Corrupt(uint64_t offset) { ASSERT_TRUE(fs_.CorruptFile(kPath, offset, 0x40).ok()); }

  /// Full read of every row through the row iterator; returns the terminal
  /// status. Must never crash regardless of what was corrupted.
  Status ScanAll() {
    auto reader = orc::OrcReader::Open(&fs_, kPath);
    if (!reader.ok()) return reader.status();
    orc::OrcRowIterator it(reader.value().get(), {});
    uint64_t rows = 0;
    while (it.Next()) ++rows;
    if (!it.status().ok()) return it.status();
    EXPECT_EQ(rows, static_cast<uint64_t>(kRows));
    return Status::OK();
  }

  fs::SimFileSystem fs_;
  uint64_t size_ = 0;
};

TEST_F(OrcCorruptionTest, CleanFileScansFully) { EXPECT_TRUE(ScanAll().ok()); }

TEST_F(OrcCorruptionTest, FlippedMagicIsCorruption) {
  Corrupt(size_ - 1);
  EXPECT_TRUE(ScanAll().IsCorruption());
}

TEST_F(OrcCorruptionTest, FlippedFooterCrcIsCorruption) {
  Corrupt(size_ - 12);  // first postscript byte: the footer CRC
  EXPECT_TRUE(ScanAll().IsCorruption());
}

TEST_F(OrcCorruptionTest, FlippedFooterLengthIsCorruption) {
  Corrupt(size_ - 8);  // footer_len low byte: points the footer read elsewhere
  EXPECT_TRUE(ScanAll().IsCorruption());
}

TEST_F(OrcCorruptionTest, FlippedFooterBodyIsCorruption) {
  // Place the flip in the middle of the encoded footer (stripe directory /
  // statistics region).
  auto reader = orc::OrcReader::Open(&fs_, kPath);
  ASSERT_TRUE(reader.ok());
  std::string tail;
  auto file = fs_.NewRandomAccessFile(kPath);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->ReadAt(size_ - 8, 4, &tail).ok());
  const uint32_t footer_len = DecodeFixed32(tail.data());
  Corrupt(size_ - 12 - footer_len / 2);
  EXPECT_TRUE(ScanAll().IsCorruption());
}

TEST_F(OrcCorruptionTest, FlippedColumnDataIsCorruption) {
  const orc::FileFooter footer = CleanFooter();
  const orc::StripeInfo& stripe = footer.stripes[1];  // a mid-file stripe
  // First byte of column 0's data stream (right after its presence stream).
  Corrupt(stripe.offset + stripe.streams[0].presence_length);
  EXPECT_TRUE(ScanAll().IsCorruption());
}

TEST_F(OrcCorruptionTest, FlippedPresenceBitmapIsCorruption) {
  const orc::FileFooter footer = CleanFooter();
  const orc::StripeInfo& stripe = footer.stripes[2];
  // First byte of column 1's presence stream. An undetected flip here would
  // silently shift values between rows — the stream CRC must catch it.
  Corrupt(stripe.offset + stripe.streams[0].presence_length +
          stripe.streams[0].data_length);
  EXPECT_TRUE(ScanAll().IsCorruption());
}

TEST_F(OrcCorruptionTest, ProjectedScanSkipsCorruptUnprojectedColumn) {
  const orc::FileFooter footer = CleanFooter();
  const orc::StripeInfo& stripe = footer.stripes[0];
  // Corrupt column 1's data; a projection of column 0 alone never reads it,
  // so the scan succeeds — corruption detection is per-stream by design.
  Corrupt(stripe.offset + stripe.streams[0].presence_length +
          stripe.streams[0].data_length + stripe.streams[1].presence_length + 1);
  auto reader = orc::OrcReader::Open(&fs_, kPath);
  ASSERT_TRUE(reader.ok());
  orc::OrcRowIterator only_ids(reader.value().get(), {0});
  uint64_t rows = 0;
  while (only_ids.Next()) ++rows;
  EXPECT_TRUE(only_ids.status().ok()) << only_ids.status().ToString();
  EXPECT_EQ(rows, static_cast<uint64_t>(kRows));
  // The full-width scan does read it and must fail.
  EXPECT_TRUE(ScanAll().IsCorruption());
}

TEST_F(OrcCorruptionTest, EveryPostscriptByteFlipFailsSafely) {
  // Exhaustive over the 12-byte postscript: each single-byte flip must yield
  // a clean error (any code), never a crash or a successful mis-read.
  for (uint64_t off = size_ - 12; off < size_; ++off) {
    fs::SimFileSystem fresh;
    ASSERT_TRUE(fresh.CreateDir("/orc").ok());
    orc::WriterOptions options;
    options.stripe_rows = 100;
    Schema schema({{"id", DataType::kInt64}, {"name", DataType::kString}});
    auto writer = orc::OrcWriter::Create(&fresh, kPath, schema, 1, options);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < kRows; ++i) {
      Row row;
      row.push_back(Value::Int64(i));
      row.push_back(i % 7 == 0 ? Value::Null() : Value::String("n" + std::to_string(i)));
      ASSERT_TRUE(writer.value()->Append(row).ok());
    }
    ASSERT_TRUE(writer.value()->Close().ok());
    ASSERT_TRUE(fresh.CorruptFile(kPath, off, 0x40).ok());
    // Every postscript byte is load-bearing (CRC, footer length, magic):
    // any flip must be rejected at open with a clean error.
    EXPECT_FALSE(orc::OrcReader::Open(&fresh, kPath).ok()) << "offset " << off;
  }
}

}  // namespace
}  // namespace dtl
