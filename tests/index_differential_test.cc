// Lookup-vs-scan differential oracle (DESIGN.md §13): random
// INSERT/UPDATE/DELETE/COMPACT(full|incremental)/snapshot interleavings run
// against a DualTable with secondary indexes on the id and tag columns.
// After every few operations, point and range lookups through the index path
// (SecondaryIndex candidates -> targeted stripe fetch through a deliberately
// tiny shared StripeCache -> delta patch -> probe re-verify) must agree with
// BOTH a full UNION READ scan under the same predicate (set- AND
// order-identical) and a trivially correct std::map reference model.
// Still-pinned snapshots must keep answering lookups with the exact state
// frozen at acquisition.
//
// Reproduction: the seed is printed on entry; re-run a failure with
// DTL_DIFF_SEED=<seed> (and optionally DTL_DIFF_OPS=<n>).
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "dualtable/dual_table.h"
#include "dualtable/record_id.h"
#include "fs/filesystem.h"
#include "orc/stripe_cache.h"

namespace dtl::dual {
namespace {

Schema DiffSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"day", DataType::kDate},
                 {"amount", DataType::kDouble},
                 {"tag", DataType::kString}});
}

Row MakeSeedRow(int64_t id) {
  return Row{Value::Int64(id), Value::Date(id % 36), Value::Double(id * 1.5),
             Value::String("t" + std::to_string(id % 7))};
}

std::string StateToString(const std::map<int64_t, Row>& state) {
  std::ostringstream out;
  for (const auto& [id, row] : state) out << id << "=>" << dtl::RowToString(row) << '\n';
  return out.str();
}

table::ScanSpec IdRange(int64_t lo, int64_t hi) {
  table::ScanSpec spec;
  spec.predicate_columns = {0};
  spec.predicate = [lo, hi](const Row& row) {
    return !row[0].is_null() && row[0].AsInt64() >= lo && row[0].AsInt64() < hi;
  };
  return spec;
}

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  return env != nullptr ? std::strtoull(env, nullptr, 10) : fallback;
}

class IndexDifferentialHarness {
 public:
  IndexDifferentialHarness(uint64_t seed, uint64_t ops)
      : seed_(seed), ops_(ops), rng_(seed) {}

  void Run() {
    fs::SimFileSystem fs;
    auto metadata = MetadataTable::Open(&fs);
    ASSERT_TRUE(metadata.ok());
    fs::ClusterModel cluster;
    ThreadPool pool(4);

    // A deliberately tiny private cache: eviction churns constantly, and a
    // COMPACT mid-run swaps generations under it, so every lookup doubles as
    // a staleness check on the (owner, file, generation, stripe) key.
    orc::StripeCache cache(/*capacity_bytes=*/1 << 15, /*shards=*/2);

    DualTableOptions options;
    options.writer_options.stripe_rows = 16 + rng_() % 48;
    options.scan_batch_rows = 8 + rng_() % 56;
    options.pool = &pool;
    options.indexed_columns = {0, 3};  // id (int64) and tag (string)
    options.stripe_cache = &cache;
    const double overrides[] = {-1.0, 0.0, 0.35};
    options.incremental_density_override = overrides[rng_() % 3];
    auto table = DualTable::Open(&fs, metadata->get(), &cluster, "idx_diff",
                                 DiffSchema(), options);
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    table_ = table->get();
    ASSERT_NE(table_->secondary_index(), nullptr);
    struct PinDropper {
      std::vector<PinnedSnapshot>* pins;
      ~PinDropper() { pins->clear(); }
    } drop_pins{&pinned_};

    while (op_ < ops_) {
      ++op_;
      const uint64_t dice = rng_() % 100;
      if (dice < 25) {
        StepInsert();
      } else if (dice < 50) {
        StepUpdate();
      } else if (dice < 66) {
        StepDelete();
      } else if (dice < 74) {
        SCOPED_TRACE(Where("full compact"));
        ASSERT_TRUE(table_->Compact().ok());
      } else if (dice < 86) {
        SCOPED_TRACE(Where("incremental compact"));
        auto stats = table_->CompactIncremental();
        ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      } else {
        StepSnapshot();
      }
      if (HasFatalFailure()) return;
      VerifyLookups();
      if (HasFatalFailure()) return;
      if (op_ % 5 == 0 || op_ == ops_) {
        VerifyPinnedSnapshots();
        if (HasFatalFailure()) return;
      }
    }
    // The run must have actually exercised the machinery it claims to test.
    const SecondaryIndex::Stats& stats = table_->secondary_index()->stats();
    EXPECT_GT(stats.lookups.load(), 0u);
    EXPECT_GT(stats.entries_added.load(), 0u);
    const orc::StripeCacheStats cs = cache.Stats();
    EXPECT_GT(cs.hits + cs.misses, 0u);
  }

 private:
  static bool HasFatalFailure() { return ::testing::Test::HasFatalFailure(); }

  std::string Where(const std::string& what) const {
    return what + " at op " + std::to_string(op_) + " (seed " +
           std::to_string(seed_) + ")";
  }

  std::pair<int64_t, int64_t> RandomRange(double frac) {
    if (model_.empty()) return {0, 0};
    const int64_t span = std::max<int64_t>(
        1, static_cast<int64_t>(static_cast<double>(next_id_) * frac));
    const int64_t lo = static_cast<int64_t>(rng_() % static_cast<uint64_t>(next_id_));
    return {lo, lo + span};
  }

  void StepInsert() {
    SCOPED_TRACE(Where("insert"));
    const size_t n = 1 + rng_() % 48;
    std::vector<Row> rows;
    rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      Row row = MakeSeedRow(next_id_++);
      model_[row[0].AsInt64()] = row;
      rows.push_back(std::move(row));
    }
    ASSERT_TRUE(table_->InsertRows(rows).ok());
  }

  void StepUpdate() {
    auto [lo, hi] = RandomRange(0.05 + (rng_() % 30) * 0.01);
    SCOPED_TRACE(Where("update [" + std::to_string(lo) + "," + std::to_string(hi) + ")"));
    const double amount_delta = static_cast<double>(rng_() % 1000) * 0.25;
    // Updating `tag` moves rows between index buckets: the old entry must be
    // verified away and the new one must be found.
    const std::string tag = "t" + std::to_string(rng_() % 9);
    std::vector<table::Assignment> assigns(2);
    assigns[0].column = 2;
    assigns[0].input_columns = {2};
    assigns[0].compute = [amount_delta](const Row& row) {
      return Value::Double(row[2].AsDouble() + amount_delta);
    };
    assigns[1].column = 3;
    assigns[1].compute = [tag](const Row&) { return Value::String(tag); };
    std::optional<double> hint;
    if (rng_() % 2 == 0) hint = (rng_() % 100) * 0.01;
    auto result = table_->UpdateWithHint(IdRange(lo, hi), assigns, hint);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    uint64_t touched = 0;
    for (auto it = model_.lower_bound(lo); it != model_.end() && it->first < hi; ++it) {
      it->second[2] = Value::Double(it->second[2].AsDouble() + amount_delta);
      it->second[3] = Value::String(tag);
      ++touched;
    }
    ASSERT_EQ(result->rows_matched, touched);
  }

  void StepDelete() {
    auto [lo, hi] = RandomRange(0.02 + (rng_() % 15) * 0.01);
    SCOPED_TRACE(Where("delete [" + std::to_string(lo) + "," + std::to_string(hi) + ")"));
    std::optional<double> hint;
    if (rng_() % 2 == 0) hint = (rng_() % 100) * 0.01;
    auto result = table_->DeleteWithHint(IdRange(lo, hi), hint);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    uint64_t touched = 0;
    auto it = model_.lower_bound(lo);
    while (it != model_.end() && it->first < hi) {
      it = model_.erase(it);
      ++touched;
    }
    ASSERT_EQ(result->rows_matched, touched);
  }

  void StepSnapshot() {
    if (pinned_.size() < 3 && rng_() % 2 == 0) {
      SCOPED_TRACE(Where("acquire snapshot"));
      pinned_.push_back({table_->AcquireSnapshot(), model_, op_});
    } else if (!pinned_.empty()) {
      SCOPED_TRACE(Where("release snapshot"));
      pinned_.erase(pinned_.begin() + rng_() % pinned_.size());
    }
  }

  // Runs the index path for `probes` on `column` and the full-scan path with
  // an equivalent predicate at the same snapshot; both must agree with each
  // other in content AND order, and with `expected` (model-derived) as a set.
  void CheckLookup(const SnapshotPtr& snap, size_t column,
                   const std::vector<Value>& probes,
                   const std::map<int64_t, Row>& expected) {
    table::ScanSpec spec;  // all columns, no extra predicate
    auto looked = table_->IndexLookupAt(snap, column, probes, spec);
    ASSERT_TRUE(looked.ok()) << looked.status().ToString();

    table::ScanSpec scan_spec;
    scan_spec.predicate_columns = {column};
    scan_spec.predicate = [column, probes](const Row& row) {
      if (row[column].is_null()) return false;
      for (const Value& p : probes) {
        if (row[column].Compare(p) == 0) return true;
      }
      return false;
    };
    auto it = table_->ScanAt(snap, scan_spec);
    ASSERT_TRUE(it.ok());
    std::vector<std::string> scan_order;
    std::map<int64_t, Row> scan_state;
    while ((*it)->Next()) {
      const Row& row = (*it)->row();
      scan_order.push_back(dtl::RowToString(row));
      scan_state[row[0].AsInt64()] = row;
    }
    ASSERT_TRUE((*it)->status().ok()) << (*it)->status().ToString();

    std::vector<std::string> index_order;
    std::map<int64_t, Row> index_state;
    uint64_t prev_rid = 0;
    bool first = true;
    for (const auto& [rid, row] : *looked) {
      if (!first) ASSERT_LT(prev_rid, rid) << "index path emitted out of rid order";
      prev_rid = rid;
      first = false;
      index_order.push_back(dtl::RowToString(row));
      index_state[row[0].AsInt64()] = row;
    }
    ASSERT_EQ(index_order, scan_order)
        << "index path diverged from full scan (column " << column << ")";
    ASSERT_EQ(StateToString(index_state), StateToString(expected))
        << "index path diverged from the model (column " << column << ")";
    (void)scan_state;
  }

  void VerifyLookups() {
    SCOPED_TRACE(Where("verify lookups"));
    SnapshotPtr snap = table_->AcquireSnapshot();
    ASSERT_TRUE(snap->has_index);

    // Point lookups on id: a few existing keys, a missing key, a never-seen
    // key (exercises the empty-candidate path).
    {
      std::vector<Value> probes;
      std::map<int64_t, Row> expected;
      for (int i = 0; i < 4 && next_id_ > 0; ++i) {
        const int64_t id = static_cast<int64_t>(rng_() % static_cast<uint64_t>(next_id_));
        probes.push_back(Value::Int64(id));
        auto it = model_.find(id);
        if (it != model_.end()) expected[id] = it->second;
      }
      probes.push_back(Value::Int64(next_id_ + 1000));
      CheckLookup(snap, 0, probes, expected);
      if (HasFatalFailure()) return;
    }

    // Range lookup on id as a multi-probe IN over a dense window.
    if (next_id_ > 0) {
      const int64_t lo = static_cast<int64_t>(rng_() % static_cast<uint64_t>(next_id_));
      const int64_t hi = lo + 1 + static_cast<int64_t>(rng_() % 24);
      std::vector<Value> probes;
      std::map<int64_t, Row> expected;
      for (int64_t id = lo; id < hi; ++id) probes.push_back(Value::Int64(id));
      for (auto it = model_.lower_bound(lo); it != model_.end() && it->first < hi; ++it) {
        expected[it->first] = it->second;
      }
      CheckLookup(snap, 0, probes, expected);
      if (HasFatalFailure()) return;
    }

    // Point lookup on the string tag column (non-unique: many hits).
    {
      const std::string tag = "t" + std::to_string(rng_() % 9);
      std::map<int64_t, Row> expected;
      for (const auto& [id, row] : model_) {
        if (row[3].AsString() == tag) expected[id] = row;
      }
      CheckLookup(snap, 3, {Value::String(tag)}, expected);
    }
  }

  void VerifyPinnedSnapshots() {
    for (const PinnedSnapshot& pin : pinned_) {
      SCOPED_TRACE(Where("pinned snapshot from op " + std::to_string(pin.acquired_at)));
      if (pin.frozen_model.empty()) continue;
      // Sample a handful of frozen keys: the lookup must replay the frozen
      // row even though the live table has moved on.
      std::vector<Value> probes;
      std::map<int64_t, Row> expected;
      size_t taken = 0;
      for (const auto& [id, row] : pin.frozen_model) {
        if (rng_() % 7 == 0 || taken == 0) {
          probes.push_back(Value::Int64(id));
          expected[id] = row;
          if (++taken == 4) break;
        }
      }
      CheckLookup(pin.snapshot, 0, probes, expected);
      if (HasFatalFailure()) return;
    }
  }

  struct PinnedSnapshot {
    SnapshotPtr snapshot;
    std::map<int64_t, Row> frozen_model;
    uint64_t acquired_at;
  };

  const uint64_t seed_;
  const uint64_t ops_;
  std::mt19937_64 rng_;
  DualTable* table_ = nullptr;
  std::map<int64_t, Row> model_;
  std::vector<PinnedSnapshot> pinned_;
  int64_t next_id_ = 0;
  uint64_t op_ = 0;
};

TEST(IndexDifferentialTest, LookupMatchesScanAndModel) {
  const uint64_t base = EnvOr("DTL_DIFF_SEED", std::random_device{}());
  const uint64_t ops = EnvOr("DTL_DIFF_OPS", 120);
  const uint64_t iterations = std::getenv("DTL_DIFF_SEED") != nullptr ? 1 : 2;
  for (uint64_t i = 0; i < iterations; ++i) {
    const uint64_t seed = base + i;
    std::fprintf(stderr, "index-differential seed %llu (replay: DTL_DIFF_SEED=%llu)\n",
                 static_cast<unsigned long long>(seed),
                 static_cast<unsigned long long>(seed));
    IndexDifferentialHarness harness(seed, ops);
    harness.Run();
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Deterministic companion: one fixed interleaving in every CI run,
// independent of the entropy source.
TEST(IndexDifferentialTest, FixedSeedRegression) {
  IndexDifferentialHarness harness(/*seed=*/0xD17AB1E5, /*ops=*/90);
  harness.Run();
}

}  // namespace
}  // namespace dtl::dual
