#include <gtest/gtest.h>

#include "sql/session.h"
#include "table/csv.h"

namespace dtl::table {
namespace {

TEST(CsvSplitTest, PlainAndQuotedFields) {
  CsvOptions options;
  auto fields = SplitCsvLine("a,b,,\"c,d\",\"he said \"\"hi\"\"\"", options);
  ASSERT_TRUE(fields.ok());
  ASSERT_EQ(fields->size(), 5u);
  EXPECT_EQ((*fields)[0], "a");
  EXPECT_EQ((*fields)[2], "");
  EXPECT_EQ((*fields)[3], "c,d");
  EXPECT_EQ((*fields)[4], "he said \"hi\"");
}

TEST(CsvSplitTest, UnterminatedQuoteRejected) {
  EXPECT_FALSE(SplitCsvLine("a,\"oops", CsvOptions()).ok());
}

TEST(CsvFieldTest, TypedParsingAndErrors) {
  CsvOptions options;
  EXPECT_EQ(ParseCsvField("42", DataType::kInt64, "c", options)->AsInt64(), 42);
  EXPECT_EQ(ParseCsvField("-7", DataType::kDate, "c", options)->AsInt64(), -7);
  EXPECT_DOUBLE_EQ(ParseCsvField("2.5", DataType::kDouble, "c", options)->AsDouble(), 2.5);
  EXPECT_TRUE(ParseCsvField("true", DataType::kBool, "c", options)->AsBool());
  EXPECT_EQ(ParseCsvField("hi", DataType::kString, "c", options)->AsString(), "hi");
  EXPECT_TRUE(ParseCsvField("\\N", DataType::kInt64, "c", options)->is_null());
  EXPECT_FALSE(ParseCsvField("4x", DataType::kInt64, "c", options).ok());
  EXPECT_FALSE(ParseCsvField("maybe", DataType::kBool, "c", options).ok());
}

TEST(CsvFormatTest, RoundTripThroughFormatAndSplit) {
  Row row{Value::Int64(1), Value::String("a,b"), Value::Null(), Value::Double(2.5)};
  CsvOptions options;
  std::string line = FormatCsvRow(row, options);
  auto fields = SplitCsvLine(line, options);
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ((*fields)[0], "1");
  EXPECT_EQ((*fields)[1], "a,b");
  EXPECT_EQ((*fields)[2], "\\N");
}

TEST(CsvFileTest, ReadFromSimulatedFs) {
  fs::SimFileSystem fs;
  auto w = fs.NewWritableFile("/staging/data.csv");
  ASSERT_TRUE((*w)->Append("id,name,score\n1,alice,9.5\n2,bob,\\N\n").ok());
  ASSERT_TRUE((*w)->Close().ok());

  Schema schema({{"id", DataType::kInt64},
                 {"name", DataType::kString},
                 {"score", DataType::kDouble}});
  CsvOptions options;
  options.skip_header = true;
  auto rows = ReadCsvFile(&fs, "/staging/data.csv", schema, options);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][1].AsString(), "alice");
  EXPECT_TRUE((*rows)[1][2].is_null());
}

TEST(CsvFileTest, ArityMismatchReportsLine) {
  fs::SimFileSystem fs;
  auto w = fs.NewWritableFile("/staging/bad.csv");
  ASSERT_TRUE((*w)->Append("1,a\n2\n").ok());
  ASSERT_TRUE((*w)->Close().ok());
  Schema schema({{"id", DataType::kInt64}, {"name", DataType::kString}});
  auto rows = ReadCsvFile(&fs, "/staging/bad.csv", schema);
  ASSERT_FALSE(rows.ok());
  EXPECT_NE(rows.status().message().find("line 2"), std::string::npos);
}

TEST(LoadDataTest, LoadIntoDualTableViaSql) {
  auto session = sql::Session::Create();
  ASSERT_TRUE(session.ok());
  auto w = (*session)->fs()->NewWritableFile("/staging/meters.csv");
  std::string body;
  for (int i = 0; i < 100; ++i) {
    body += std::to_string(i) + "," + std::to_string(i % 36) + "," +
            std::to_string(i * 0.5) + "\n";
  }
  ASSERT_TRUE((*w)->Append(body).ok());
  ASSERT_TRUE((*w)->Close().ok());

  auto create = (*session)->Execute(
      "CREATE TABLE meters (id BIGINT, day DATE, kwh DOUBLE) STORED AS dualtable");
  ASSERT_TRUE(create.ok());
  auto load =
      (*session)->Execute("LOAD DATA INPATH '/staging/meters.csv' INTO TABLE meters");
  ASSERT_TRUE(load.ok()) << load.status().ToString();
  EXPECT_EQ(load->affected_rows, 100u);

  auto count = (*session)->Execute("SELECT COUNT(*) FROM meters");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInt64(), 100);

  // LOAD ... OVERWRITE replaces.
  auto reload = (*session)->Execute(
      "LOAD DATA INPATH '/staging/meters.csv' OVERWRITE INTO TABLE meters");
  ASSERT_TRUE(reload.ok());
  count = (*session)->Execute("SELECT COUNT(*) FROM meters");
  EXPECT_EQ(count->rows[0][0].AsInt64(), 100);
}

TEST(LoadDataTest, MissingFileIsError) {
  auto session = sql::Session::Create();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->Execute("CREATE TABLE t (x BIGINT)").ok());
  auto load = (*session)->Execute("LOAD DATA INPATH '/nope.csv' INTO TABLE t");
  EXPECT_FALSE(load.ok());
}

}  // namespace
}  // namespace dtl::table
