// Query tracing tests: Tracer/Span tree construction, the golden EXPLAIN
// ANALYZE structure (stage names, nesting, row conservation), and two
// concurrent sessions tracing independently (exercised under DTL_TSAN).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metric_names.h"
#include "obs/trace.h"
#include "sql/session.h"

namespace dtl {
namespace {

TEST(TracerTest, SpansBuildNestedTree) {
  obs::Tracer tracer;
  tracer.Begin(obs::names::kSpanQuery);
  ASSERT_TRUE(tracer.active());
  {
    obs::Span select(&tracer, obs::names::kSpanSelect);
    select.AddRows(3);
    { obs::Span bind(&tracer, obs::names::kSpanBind); }
  }
  obs::Trace trace = tracer.End();
  EXPECT_FALSE(tracer.active());
  ASSERT_NE(trace.root, nullptr);
  EXPECT_EQ(trace.root->name, "query");
  ASSERT_EQ(trace.root->children.size(), 1u);
  EXPECT_EQ(trace.root->children[0]->name, "select");
  EXPECT_EQ(trace.root->children[0]->stats.rows, 3u);
  ASSERT_EQ(trace.root->children[0]->children.size(), 1u);
  EXPECT_EQ(trace.root->children[0]->children[0]->name, "bind");
  EXPECT_GE(trace.Find("select")->stats.wall_seconds, 0.0);
}

TEST(TracerTest, InactiveTracerIsFreeOfSideEffects) {
  obs::Tracer tracer;
  EXPECT_FALSE(tracer.active());
  { obs::Span span(&tracer, obs::names::kSpanSelect); }
  EXPECT_EQ(tracer.AddNode(obs::names::kSpanExecute), nullptr);
  obs::Trace trace = tracer.End();
  EXPECT_EQ(trace.root, nullptr);
  { obs::Span span(nullptr, obs::names::kSpanSelect); }  // null tracer: no-op
}

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto session = sql::Session::Create();
    ASSERT_TRUE(session.ok());
    session_ = std::move(*session);
    Run("CREATE TABLE t (id BIGINT, v BIGINT)");
    Run("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30), (4, 40), (5, 50)");
  }

  sql::QueryResult Run(const std::string& sql) {
    auto result = session_->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? *result : sql::QueryResult{};
  }

  static std::vector<std::string> Lines(const sql::QueryResult& result) {
    std::vector<std::string> lines;
    for (const Row& row : result.rows) lines.push_back(row.at(0).AsString());
    return lines;
  }

  static size_t IndentOf(const std::string& line) {
    size_t i = 0;
    while (i < line.size() && line[i] == ' ') ++i;
    return i;
  }

  /// First line starting with `indent` spaces followed by `name`; npos if
  /// absent.
  static size_t FindLine(const std::vector<std::string>& lines, size_t indent,
                         const std::string& name) {
    const std::string prefix = std::string(indent, ' ') + name;
    for (size_t i = 0; i < lines.size(); ++i) {
      if (lines[i].rfind(prefix, 0) == 0) return i;
    }
    return std::string::npos;
  }

  static uint64_t RowsOf(const std::string& line) {
    const size_t at = line.find(" rows=");
    EXPECT_NE(at, std::string::npos) << line;
    return at == std::string::npos ? 0 : std::stoull(line.substr(at + 6));
  }

  std::unique_ptr<sql::Session> session_;
};

TEST_F(ExplainAnalyzeTest, GoldenSelectTraceStructure) {
  auto result = Run("EXPLAIN ANALYZE SELECT id, v FROM t WHERE v >= 20 ORDER BY id");
  ASSERT_EQ(result.column_names, std::vector<std::string>{"analyze"});
  std::vector<std::string> lines = Lines(result);
  ASSERT_FALSE(lines.empty());

  // Golden structure: stage names at their exact nesting depths.
  //   query
  //     parse
  //     select
  //       execute
  //         scan(t) / sort / project
  //       bind
  EXPECT_EQ(FindLine(lines, 0, "query"), 0u);
  EXPECT_NE(FindLine(lines, 2, "parse"), std::string::npos);
  const size_t select_at = FindLine(lines, 2, "select");
  ASSERT_NE(select_at, std::string::npos);
  const size_t execute_at = FindLine(lines, 4, "execute");
  ASSERT_NE(execute_at, std::string::npos);
  EXPECT_GT(execute_at, select_at);
  EXPECT_NE(FindLine(lines, 4, "bind"), std::string::npos);
  const size_t scan_at = FindLine(lines, 6, "scan(t)");
  const size_t sort_at = FindLine(lines, 6, "sort");
  const size_t project_at = FindLine(lines, 6, "project");
  ASSERT_NE(scan_at, std::string::npos);
  ASSERT_NE(sort_at, std::string::npos);
  ASSERT_NE(project_at, std::string::npos);

  // Row conservation: the pushed predicate drops rows inside the scan, so
  // every operator of this plan emits exactly the surviving 4 rows.
  EXPECT_EQ(RowsOf(lines[scan_at]), 4u);
  EXPECT_EQ(RowsOf(lines[sort_at]), 4u);
  EXPECT_EQ(RowsOf(lines[project_at]), 4u);

  // The execute span attributed the scan-meter delta of those rows.
  EXPECT_NE(lines[execute_at].find("scan_rows="), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, VectorizedPathTracesBatchOperators) {
  auto result = Run("EXPLAIN ANALYZE SELECT v FROM t WHERE v > 10 LIMIT 2");
  std::vector<std::string> lines = Lines(result);
  const size_t scan_at = FindLine(lines, 6, "scan(t)");
  const size_t limit_at = FindLine(lines, 6, "limit");
  ASSERT_NE(scan_at, std::string::npos);
  ASSERT_NE(FindLine(lines, 6, "project"), std::string::npos);
  ASSERT_NE(limit_at, std::string::npos);
  EXPECT_EQ(RowsOf(lines[limit_at]), 2u);
  // Batch counts flow through the vectorized decorators.
  const size_t at = lines[scan_at].find(" batches=");
  ASSERT_NE(at, std::string::npos);
  EXPECT_GE(std::stoull(lines[scan_at].substr(at + 9)), 1u);
}

TEST_F(ExplainAnalyzeTest, DmlTraceCarriesPlanAndResult) {
  auto result = Run("EXPLAIN ANALYZE UPDATE t SET v = 0 WHERE id <= 2 WITH RATIO 0.4");
  std::vector<std::string> lines = Lines(result);
  EXPECT_EQ(FindLine(lines, 0, "query"), 0u);
  EXPECT_NE(FindLine(lines, 2, "update"), std::string::npos);
  // The inner statement's outcome is propagated alongside the trace.
  EXPECT_EQ(result.affected_rows, 2u);
  EXPECT_FALSE(result.dml_plan.empty());
  EXPECT_NE(result.message.find("updated 2 rows"), std::string::npos);
  // The statement really executed.
  auto check = Run("SELECT SUM(v) FROM t");
  EXPECT_EQ(check.rows.at(0).at(0).AsInt64(), 120);
}

TEST_F(ExplainAnalyzeTest, PlainExplainStillDoesNotExecute) {
  Run("EXPLAIN UPDATE t SET v = 0 WHERE id <= 2");
  auto check = Run("SELECT SUM(v) FROM t");
  EXPECT_EQ(check.rows.at(0).at(0).AsInt64(), 150);
}

TEST(TraceConcurrencyTest, TwoSessionsTraceIndependently) {
  // Two sessions, each with its own tracer/meter/registry, running traced
  // queries concurrently. Under -DDTL_TSAN=ON this is the data-race gate for
  // the shared pieces (GlobalScanMeter forwarding target, process clocks).
  constexpr int kQueries = 20;
  auto worker = []() {
    auto created = sql::Session::Create();
    ASSERT_TRUE(created.ok());
    auto session = std::move(*created);
    ASSERT_TRUE(session->Execute("CREATE TABLE t (id BIGINT, v BIGINT)").ok());
    ASSERT_TRUE(
        session->Execute("INSERT INTO t VALUES (1, 1), (2, 2), (3, 3)").ok());
    for (int i = 0; i < kQueries; ++i) {
      auto result = session->Execute("EXPLAIN ANALYZE SELECT id FROM t WHERE v >= 2");
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ASSERT_FALSE(result->rows.empty());
      const std::string root = result->rows[0][0].AsString();
      // Each trace is a single well-formed tree rooted at `query`: no spans
      // from the sibling session ever appear in it.
      EXPECT_EQ(root.rfind("query ", 0), 0u) << root;
      int roots = 0;
      for (const Row& row : result->rows) {
        if (row[0].AsString().rfind("query ", 0) == 0) ++roots;
      }
      EXPECT_EQ(roots, 1);
    }
    EXPECT_EQ(session->metrics()
                  ->Snapshot()
                  .counters.at("sql.statements{select}"),
              static_cast<uint64_t>(kQueries));
  };
  std::thread a(worker);
  std::thread b(worker);
  a.join();
  b.join();
}

}  // namespace
}  // namespace dtl
