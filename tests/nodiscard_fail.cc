// NOT built into any target. Compiled by nodiscard_enforcement_test, which
// expects compilation to FAIL: both statements below discard a [[nodiscard]]
// value, and the build treats that as an error (-Werror=unused-result).
#include "common/status.h"

namespace {

dtl::Status MakeStatus() { return dtl::Status::IoError("deliberate"); }
dtl::Result<int> MakeResult() { return dtl::Status::IoError("deliberate"); }

void DiscardBoth() {
  MakeStatus();  // error: ignoring returned dtl::Status
  MakeResult();  // error: ignoring returned dtl::Result<int>
}

}  // namespace
