#include <gtest/gtest.h>

#include "baseline/acid_table.h"
#include "baseline/hbase_table.h"
#include "baseline/hive_table.h"
#include "fs/filesystem.h"

namespace dtl::baseline {
namespace {

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"day", DataType::kDate},
                 {"amount", DataType::kDouble}});
}

Row MakeRow(int64_t i) {
  return Row{Value::Int64(i), Value::Date(i % 10), Value::Double(i * 2.0)};
}

table::ScanSpec DayEquals(int64_t day) {
  table::ScanSpec spec;
  spec.predicate_columns = {1};
  spec.predicate = [day](const Row& row) {
    return !row[1].is_null() && row[1].AsInt64() == day;
  };
  return spec;
}

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs_ = std::make_unique<fs::SimFileSystem>();
    auto meta = dual::MetadataTable::Open(fs_.get());
    ASSERT_TRUE(meta.ok());
    metadata_ = std::move(*meta);
  }

  std::unique_ptr<fs::SimFileSystem> fs_;
  std::unique_ptr<dual::MetadataTable> metadata_;
};

// --- Hive(HDFS) -----------------------------------------------------------------

TEST_F(BaselineTest, HiveInsertScan) {
  auto t = HiveTable::Open(fs_.get(), metadata_.get(), "h", TestSchema());
  ASSERT_TRUE(t.ok());
  std::vector<Row> rows;
  for (int i = 0; i < 500; ++i) rows.push_back(MakeRow(i));
  ASSERT_TRUE((*t)->InsertRows(rows).ok());
  auto count = (*t)->CountRows();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 500u);
}

TEST_F(BaselineTest, HiveUpdateIsFullRewrite) {
  HiveTableOptions options;
  options.writer_options.stripe_rows = 64;
  auto t = HiveTable::Open(fs_.get(), metadata_.get(), "h", TestSchema(), options);
  std::vector<Row> rows;
  for (int i = 0; i < 1000; ++i) rows.push_back(MakeRow(i));
  ASSERT_TRUE((*t)->InsertRows(rows).ok());
  const uint64_t table_bytes = (*t)->storage()->TotalBytes();

  fs_->meter()->Reset();
  table::Assignment assign;
  assign.column = 2;
  assign.compute = [](const Row&) { return Value::Double(-1); };
  auto result = (*t)->Update(DayEquals(3), {assign});  // 10% of rows
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan, table::DmlPlan::kOverwrite);
  EXPECT_EQ(result->rows_matched, 100u);
  // The whole table was rewritten even though 10% changed.
  const auto io = fs_->meter()->Snapshot();
  EXPECT_GT(io.hdfs_bytes_written, table_bytes / 2);

  // Values actually changed.
  auto collected = table::CollectRows(t->get(), DayEquals(3));
  ASSERT_TRUE(collected.ok());
  for (const Row& row : *collected) EXPECT_DOUBLE_EQ(row[2].AsDouble(), -1.0);
}

TEST_F(BaselineTest, HiveDeleteDropsRows) {
  auto t = HiveTable::Open(fs_.get(), metadata_.get(), "h", TestSchema());
  std::vector<Row> rows;
  for (int i = 0; i < 500; ++i) rows.push_back(MakeRow(i));
  ASSERT_TRUE((*t)->InsertRows(rows).ok());
  auto result = (*t)->Delete(DayEquals(0));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows_matched, 50u);
  EXPECT_EQ(*(*t)->CountRows(), 450u);
}

// --- Hive(HBase) -----------------------------------------------------------------

TEST_F(BaselineTest, HBaseInsertScanUpdateDelete) {
  auto t = HBaseTable::Open(fs_.get(), "hb", TestSchema());
  ASSERT_TRUE(t.ok());
  std::vector<Row> rows;
  for (int i = 0; i < 300; ++i) rows.push_back(MakeRow(i));
  ASSERT_TRUE((*t)->InsertRows(rows).ok());
  EXPECT_EQ(*(*t)->CountRows(), 300u);

  table::Assignment assign;
  assign.column = 2;
  assign.compute = [](const Row&) { return Value::Double(7.0); };
  auto updated = (*t)->Update(DayEquals(4), {assign});
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->plan, table::DmlPlan::kInPlace);
  EXPECT_EQ(updated->rows_matched, 30u);
  auto check = table::CollectRows(t->get(), DayEquals(4));
  for (const Row& row : *check) EXPECT_DOUBLE_EQ(row[2].AsDouble(), 7.0);

  auto deleted = (*t)->Delete(DayEquals(4));
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(deleted->rows_matched, 30u);
  EXPECT_EQ(*(*t)->CountRows(), 270u);
}

TEST_F(BaselineTest, HBaseUpdateWritesOnlyChangedCells) {
  auto t = HBaseTable::Open(fs_.get(), "hb", TestSchema());
  std::vector<Row> rows;
  for (int i = 0; i < 1000; ++i) rows.push_back(MakeRow(i));
  ASSERT_TRUE((*t)->InsertRows(rows).ok());
  const uint64_t puts_before = (*t)->store()->stats().puts;

  table::Assignment assign;
  assign.column = 2;
  assign.compute = [](const Row&) { return Value::Double(0); };
  ASSERT_TRUE((*t)->Update(DayEquals(5), {assign}).ok());
  // One put per matched row (100 rows), not per cell of the table.
  EXPECT_EQ((*t)->store()->stats().puts - puts_before, 100u);
}

TEST_F(BaselineTest, HBaseNullsStoredSparsely) {
  auto t = HBaseTable::Open(fs_.get(), "hb", TestSchema());
  ASSERT_TRUE((*t)->InsertRows({{Value::Int64(1), Value::Null(), Value::Null()}}).ok());
  table::ScanSpec all;
  auto rows = table::CollectRows(t->get(), all);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_TRUE((*rows)[0][1].is_null());
  EXPECT_EQ((*rows)[0][0].AsInt64(), 1);
}

// --- Hive ACID -------------------------------------------------------------------

TEST_F(BaselineTest, AcidUpdateCreatesDeltaPerTransaction) {
  auto t = AcidTable::Open(fs_.get(), metadata_.get(), "a", TestSchema());
  ASSERT_TRUE(t.ok());
  std::vector<Row> rows;
  for (int i = 0; i < 400; ++i) rows.push_back(MakeRow(i));
  ASSERT_TRUE((*t)->InsertRows(rows).ok());

  table::Assignment assign;
  assign.column = 2;
  assign.compute = [](const Row&) { return Value::Double(9.0); };
  ASSERT_TRUE((*t)->Update(DayEquals(1), {assign}).ok());
  ASSERT_TRUE((*t)->Update(DayEquals(2), {assign}).ok());
  EXPECT_EQ((*t)->NumDeltaFiles(), 2u);

  // Merge-on-read view is up to date.
  auto check = table::CollectRows(t->get(), DayEquals(1));
  ASSERT_TRUE(check.ok());
  ASSERT_EQ(check->size(), 40u);
  for (const Row& row : *check) EXPECT_DOUBLE_EQ(row[2].AsDouble(), 9.0);
}

TEST_F(BaselineTest, AcidLatestTransactionWins) {
  auto t = AcidTable::Open(fs_.get(), metadata_.get(), "a", TestSchema());
  ASSERT_TRUE((*t)->InsertRows({MakeRow(0)}).ok());
  table::ScanSpec match_all;
  for (double v : {1.0, 2.0, 3.0}) {
    table::Assignment assign;
    assign.column = 2;
    assign.compute = [v](const Row&) { return Value::Double(v); };
    ASSERT_TRUE((*t)->Update(match_all, {assign}).ok());
  }
  table::ScanSpec all;
  auto rows = table::CollectRows(t->get(), all);
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_DOUBLE_EQ((*rows)[0][2].AsDouble(), 3.0);
}

TEST_F(BaselineTest, AcidDeleteAndCompactions) {
  auto t = AcidTable::Open(fs_.get(), metadata_.get(), "a", TestSchema());
  std::vector<Row> rows;
  for (int i = 0; i < 500; ++i) rows.push_back(MakeRow(i));
  ASSERT_TRUE((*t)->InsertRows(rows).ok());

  ASSERT_TRUE((*t)->Delete(DayEquals(0)).ok());
  table::Assignment assign;
  assign.column = 2;
  assign.compute = [](const Row&) { return Value::Double(5.0); };
  ASSERT_TRUE((*t)->Update(DayEquals(1), {assign}).ok());
  EXPECT_EQ((*t)->NumDeltaFiles(), 2u);
  EXPECT_EQ(*(*t)->CountRows(), 450u);

  // Minor compact: one delta file, same view.
  ASSERT_TRUE((*t)->MinorCompact().ok());
  EXPECT_EQ((*t)->NumDeltaFiles(), 1u);
  EXPECT_EQ(*(*t)->CountRows(), 450u);

  // Major compact: no deltas, same view, updates folded into base.
  ASSERT_TRUE((*t)->MajorCompact().ok());
  EXPECT_EQ((*t)->NumDeltaFiles(), 0u);
  EXPECT_EQ(*(*t)->CountRows(), 450u);
  auto check = table::CollectRows(t->get(), DayEquals(1));
  for (const Row& row : *check) EXPECT_DOUBLE_EQ(row[2].AsDouble(), 5.0);
}

TEST_F(BaselineTest, AcidStoresWholeRecordPerUpdatedCell) {
  // Structural contrast with DualTable: ACID deltas hold the full record.
  auto t = AcidTable::Open(fs_.get(), metadata_.get(), "a", TestSchema());
  std::vector<Row> rows;
  for (int i = 0; i < 1000; ++i) rows.push_back(MakeRow(i));
  ASSERT_TRUE((*t)->InsertRows(rows).ok());

  table::Assignment assign;
  assign.column = 2;  // one cell changes
  assign.compute = [](const Row&) { return Value::Double(0); };
  ASSERT_TRUE((*t)->Update(DayEquals(3), {assign}).ok());
  // The delta file holds 100 whole records (id + day + amount + header),
  // clearly more than 100 bare cells would need.
  EXPECT_GT((*t)->DeltaBytes(), 100u * 8u);
}

}  // namespace
}  // namespace dtl::baseline
