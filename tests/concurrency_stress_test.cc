// Deterministic concurrency stress tests for the shared-state hot spots the
// vectorized read path introduced: ThreadPool, the skip-list memtable
// (concurrent readers + single writer), the KV store write/flush path, the
// OrcReader decoded-stripe LRU cache, and the process-global ScanMeter.
//
// These are designed to run under ThreadSanitizer (cmake -DDTL_TSAN=ON) as
// well as the ASan/UBSan job: fixed seeds, bounded iterations, no timing
// assertions, so they pass on a loaded single-core CI runner without flaking.
// TSan interleaves threads aggressively, so even short bounded loops give it
// enough schedules to flag unsynchronized access.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/skiplist.h"
#include "common/thread_pool.h"
#include "fs/filesystem.h"
#include "kv/store.h"
#include "orc/reader.h"
#include "orc/writer.h"
#include "table/scan_stats.h"

namespace dtl {
namespace {

// Scaled down so the whole file stays under a few seconds even under TSan's
// ~5-15x slowdown on a single core.
constexpr int kThreads = 4;
constexpr int kOpsPerThread = 2000;

TEST(ThreadPoolStressTest, ConcurrentSubmittersSeeEveryTask) {
  ThreadPool pool(kThreads);
  std::atomic<uint64_t> sum{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&pool, &sum] {
      std::vector<std::future<void>> futs;
      futs.reserve(kOpsPerThread / 4);
      for (int i = 0; i < kOpsPerThread / 4; ++i) {
        futs.push_back(pool.Submit([&sum, i] {
          sum.fetch_add(static_cast<uint64_t>(i), std::memory_order_relaxed);
        }));
      }
      for (auto& f : futs) f.get();
    });
  }
  for (auto& t : submitters) t.join();
  const uint64_t per_thread = static_cast<uint64_t>(kOpsPerThread / 4) *
                              (kOpsPerThread / 4 - 1) / 2;
  EXPECT_EQ(sum.load(), per_thread * kThreads);
}

TEST(ThreadPoolStressTest, ParallelForCoversEveryIndexFromManyCallers) {
  ThreadPool pool(kThreads);
  constexpr size_t kN = 512;
  std::vector<std::atomic<int>> hits(kN * kThreads);
  std::vector<std::thread> callers;
  callers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    callers.emplace_back([&pool, &hits, t] {
      pool.ParallelFor(kN, [&hits, t](size_t i) {
        hits[t * kN + i].fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  for (auto& t : callers) t.join();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SkipListStressTest, ConcurrentReadersWithSingleWriter) {
  SkipList<int64_t, int64_t> list;
  constexpr int64_t kInserts = 4000;
  std::atomic<bool> done{false};

  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&list, &done, t] {
      Random rng(1000 + t);  // fixed per-thread seed
      uint64_t last_count = 0;
      while (!done.load(std::memory_order_acquire)) {
        // Full iteration: keys must come out strictly ascending, and the
        // count can only grow between passes.
        uint64_t count = 0;
        int64_t prev = -1;
        SkipList<int64_t, int64_t>::Iterator it(&list);
        for (it.SeekToFirst(); it.Valid(); it.Next()) {
          ASSERT_GT(it.key(), prev);
          // Values are published with their nodes: value == key * 2 always.
          ASSERT_EQ(it.value(), it.key() * 2);
          prev = it.key();
          ++count;
        }
        ASSERT_GE(count, last_count);
        last_count = count;
        // Point lookups against keys that may or may not exist yet.
        const int64_t probe = rng.UniformRange(0, kInserts - 1);
        const int64_t* v = list.Find(probe * 2 + 1);
        if (v != nullptr) {
          ASSERT_EQ(*v, (probe * 2 + 1) * 2);
        }
      }
    });
  }

  // Single writer, odd keys in shuffled-ish order (fixed-seed stride walk).
  for (int64_t i = 0; i < kInserts; ++i) {
    const int64_t key = ((i * 2654435761u) % kInserts) * 2 + 1;
    list.Insert(key, key * 2);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  // Stride walk hits duplicates only if kInserts shares factors with the
  // multiplier; verify the final count matches distinct keys inserted.
  SkipList<int64_t, int64_t>::Iterator it(&list);
  uint64_t final_count = 0;
  for (it.SeekToFirst(); it.Valid(); it.Next()) ++final_count;
  EXPECT_EQ(final_count, list.size());
  EXPECT_GT(final_count, 0u);
}

TEST(KvStoreStressTest, ConcurrentWritersThroughFlushAndCompaction) {
  fs::SimFileSystem fs;
  kv::KvStoreOptions options;
  options.dir = "/hbase/stress";
  options.memtable_flush_bytes = 4 * 1024;  // force the flush path repeatedly
  options.l0_compaction_trigger = 3;        // and the compaction path
  auto store = kv::KvStore::Open(&fs, options);
  ASSERT_TRUE(store.ok());

  constexpr int kWriters = 3;
  constexpr int kPutsPerWriter = 400;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&store, &failures, t] {
      for (int i = 0; i < kPutsPerWriter; ++i) {
        const std::string row = "w" + std::to_string(t) + "_r" + std::to_string(i % 50);
        if (!(*store)->Put(row, static_cast<uint32_t>(i % 4), "v" + std::to_string(i)).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Reader thread: point gets plus the lock-free stats/timestamp surfaces.
  std::thread reader([&store, &done] {
    Random rng(7);
    uint64_t last_ts_seen = 0;
    while (!done.load(std::memory_order_acquire)) {
      const uint64_t ts = (*store)->LastTimestamp();
      ASSERT_GE(ts, last_ts_seen);  // write clock is monotonic
      last_ts_seen = ts;
      const std::string row =
          "w" + std::to_string(rng.UniformRange(0, 2)) + "_r" + std::to_string(rng.UniformRange(0, 49));
      auto got = (*store)->Get(row, static_cast<uint32_t>(rng.UniformRange(0, 3)));
      ASSERT_TRUE(got.ok());
      (*store)->ApproximateCellCount();
    }
  });
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ((*store)->stats().puts.load(), static_cast<uint64_t>(kWriters * kPutsPerWriter));
  EXPECT_GT((*store)->stats().flushes.load(), 0u);
  // Every writer's latest value per row survived the flush/compaction churn.
  for (int t = 0; t < kWriters; ++t) {
    for (int r = 0; r < 50; ++r) {
      const std::string row = "w" + std::to_string(t) + "_r" + std::to_string(r);
      auto got = (*store)->Get(row, 0);
      ASSERT_TRUE(got.ok());
    }
  }
}

TEST(OrcStripeCacheStressTest, ConcurrentReadersShareDecodedStripes) {
  fs::SimFileSystem fs;
  ASSERT_TRUE(fs.CreateDir("/warehouse").ok());
  Schema schema({{"id", DataType::kInt64}, {"val", DataType::kDouble}});
  orc::WriterOptions wopts;
  wopts.stripe_rows = 64;  // many small stripes -> cache hits, misses, evictions
  constexpr int64_t kRows = 64 * 40;  // 40 stripes > kMaxCachedStripes
  {
    auto writer = orc::OrcWriter::Create(&fs, "/warehouse/stress.orc", schema, 1, wopts);
    ASSERT_TRUE(writer.ok());
    for (int64_t i = 0; i < kRows; ++i) {
      ASSERT_TRUE((*writer)->Append(Row{Value::Int64(i), Value::Double(i * 0.25)}).ok());
    }
    ASSERT_TRUE((*writer)->Close().ok());
  }
  auto reader = orc::OrcReader::Open(&fs, "/warehouse/stress.orc");
  ASSERT_TRUE(reader.ok());

  std::vector<std::thread> scanners;
  scanners.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    scanners.emplace_back([&reader, t] {
      Random rng(42 + t);
      for (int i = 0; i < 300; ++i) {
        const size_t stripe = static_cast<size_t>(
            rng.UniformRange(0, static_cast<int>((*reader)->num_stripes()) - 1));
        // Alternate projections so distinct cache entries compete for slots.
        std::vector<size_t> projection;
        if (i % 2 == 0) projection = {0};
        auto batch = (*reader)->ReadStripeShared(stripe, projection);
        ASSERT_TRUE(batch.ok());
        ASSERT_EQ((*batch)->num_rows, 64u);
        const int64_t first = (*batch)->columns[0][0].AsInt64();
        ASSERT_EQ(first, static_cast<int64_t>((*batch)->first_row));
      }
    });
  }
  for (auto& t : scanners) t.join();
}

TEST(ScanMeterStressTest, ConcurrentCountersSumExactly) {
  table::ScanMeter meter;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&meter] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        meter.AddBatch(2, 10);
        meter.AddPatchedRows(1);
        if (i % 8 == 0) meter.AddPassthroughBatch();
        meter.Snapshot();  // concurrent snapshots must never tear
      }
    });
  }
  for (auto& t : workers) t.join();
  const table::ScanSnapshot s = meter.Snapshot();
  EXPECT_EQ(s.batches, static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(s.rows, static_cast<uint64_t>(kThreads) * kOpsPerThread * 2);
  EXPECT_EQ(s.bytes, static_cast<uint64_t>(kThreads) * kOpsPerThread * 10);
  EXPECT_EQ(s.patched_rows, static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(s.passthrough_batches, static_cast<uint64_t>(kThreads) * (kOpsPerThread / 8));

  // The documented single-resetter contract: one thread resets while the
  // others are quiescent; counters restart from zero.
  meter.Reset();
  const table::ScanSnapshot z = meter.Snapshot();
  EXPECT_EQ(z.batches, 0u);
  EXPECT_EQ(z.rows, 0u);
}

}  // namespace
}  // namespace dtl
