// Deterministic concurrency stress tests for the shared-state hot spots the
// vectorized read path introduced: ThreadPool, the skip-list memtable
// (concurrent readers + single writer), the KV store write/flush path, the
// OrcReader decoded-stripe LRU cache, and the process-global ScanMeter.
//
// These are designed to run under ThreadSanitizer (cmake -DDTL_TSAN=ON) as
// well as the ASan/UBSan job: fixed seeds, bounded iterations, no timing
// assertions, so they pass on a loaded single-core CI runner without flaking.
// TSan interleaves threads aggressively, so even short bounded loops give it
// enough schedules to flag unsynchronized access.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/background_scheduler.h"
#include "common/random.h"
#include "common/skiplist.h"
#include "common/thread_pool.h"
#include "dualtable/dual_table.h"
#include "exec/parallel_scan.h"
#include "fs/cluster_model.h"
#include "fs/filesystem.h"
#include "kv/store.h"
#include "orc/reader.h"
#include "orc/writer.h"
#include "table/scan_stats.h"

namespace dtl {
namespace {

// Scaled down so the whole file stays under a few seconds even under TSan's
// ~5-15x slowdown on a single core.
constexpr int kThreads = 4;
constexpr int kOpsPerThread = 2000;

TEST(ThreadPoolStressTest, ConcurrentSubmittersSeeEveryTask) {
  ThreadPool pool(kThreads);
  std::atomic<uint64_t> sum{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&pool, &sum] {
      std::vector<std::future<void>> futs;
      futs.reserve(kOpsPerThread / 4);
      for (int i = 0; i < kOpsPerThread / 4; ++i) {
        futs.push_back(pool.Submit([&sum, i] {
          sum.fetch_add(static_cast<uint64_t>(i), std::memory_order_relaxed);
        }));
      }
      for (auto& f : futs) f.get();
    });
  }
  for (auto& t : submitters) t.join();
  const uint64_t per_thread = static_cast<uint64_t>(kOpsPerThread / 4) *
                              (kOpsPerThread / 4 - 1) / 2;
  EXPECT_EQ(sum.load(), per_thread * kThreads);
}

TEST(ThreadPoolStressTest, ParallelForCoversEveryIndexFromManyCallers) {
  ThreadPool pool(kThreads);
  constexpr size_t kN = 512;
  std::vector<std::atomic<int>> hits(kN * kThreads);
  std::vector<std::thread> callers;
  callers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    callers.emplace_back([&pool, &hits, t] {
      pool.ParallelFor(kN, [&hits, t](size_t i) {
        hits[t * kN + i].fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  for (auto& t : callers) t.join();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SkipListStressTest, ConcurrentReadersWithSingleWriter) {
  SkipList<int64_t, int64_t> list;
  constexpr int64_t kInserts = 4000;
  std::atomic<bool> done{false};

  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&list, &done, t] {
      Random rng(1000 + t);  // fixed per-thread seed
      uint64_t last_count = 0;
      while (!done.load(std::memory_order_acquire)) {
        // Full iteration: keys must come out strictly ascending, and the
        // count can only grow between passes.
        uint64_t count = 0;
        int64_t prev = -1;
        SkipList<int64_t, int64_t>::Iterator it(&list);
        for (it.SeekToFirst(); it.Valid(); it.Next()) {
          ASSERT_GT(it.key(), prev);
          // Values are published with their nodes: value == key * 2 always.
          ASSERT_EQ(it.value(), it.key() * 2);
          prev = it.key();
          ++count;
        }
        ASSERT_GE(count, last_count);
        last_count = count;
        // Point lookups against keys that may or may not exist yet.
        const int64_t probe = rng.UniformRange(0, kInserts - 1);
        const int64_t* v = list.Find(probe * 2 + 1);
        if (v != nullptr) {
          ASSERT_EQ(*v, (probe * 2 + 1) * 2);
        }
      }
    });
  }

  // Single writer, odd keys in shuffled-ish order (fixed-seed stride walk).
  for (int64_t i = 0; i < kInserts; ++i) {
    const int64_t key = ((i * 2654435761u) % kInserts) * 2 + 1;
    list.Insert(key, key * 2);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  // Stride walk hits duplicates only if kInserts shares factors with the
  // multiplier; verify the final count matches distinct keys inserted.
  SkipList<int64_t, int64_t>::Iterator it(&list);
  uint64_t final_count = 0;
  for (it.SeekToFirst(); it.Valid(); it.Next()) ++final_count;
  EXPECT_EQ(final_count, list.size());
  EXPECT_GT(final_count, 0u);
}

TEST(KvStoreStressTest, ConcurrentWritersThroughFlushAndCompaction) {
  fs::SimFileSystem fs;
  kv::KvStoreOptions options;
  options.dir = "/hbase/stress";
  options.memtable_flush_bytes = 4 * 1024;  // force the flush path repeatedly
  options.l0_compaction_trigger = 3;        // and the compaction path
  auto store = kv::KvStore::Open(&fs, options);
  ASSERT_TRUE(store.ok());

  constexpr int kWriters = 3;
  constexpr int kPutsPerWriter = 400;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&store, &failures, t] {
      for (int i = 0; i < kPutsPerWriter; ++i) {
        const std::string row = "w" + std::to_string(t) + "_r" + std::to_string(i % 50);
        if (!(*store)->Put(row, static_cast<uint32_t>(i % 4), "v" + std::to_string(i)).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Reader thread: point gets plus the lock-free stats/timestamp surfaces.
  std::thread reader([&store, &done] {
    Random rng(7);
    uint64_t last_ts_seen = 0;
    while (!done.load(std::memory_order_acquire)) {
      const uint64_t ts = (*store)->LastTimestamp();
      ASSERT_GE(ts, last_ts_seen);  // write clock is monotonic
      last_ts_seen = ts;
      const std::string row =
          "w" + std::to_string(rng.UniformRange(0, 2)) + "_r" + std::to_string(rng.UniformRange(0, 49));
      auto got = (*store)->Get(row, static_cast<uint32_t>(rng.UniformRange(0, 3)));
      ASSERT_TRUE(got.ok());
      (*store)->ApproximateCellCount();
    }
  });
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ((*store)->stats().puts.load(), static_cast<uint64_t>(kWriters * kPutsPerWriter));
  EXPECT_GT((*store)->stats().flushes.load(), 0u);
  // Every writer's latest value per row survived the flush/compaction churn.
  for (int t = 0; t < kWriters; ++t) {
    for (int r = 0; r < 50; ++r) {
      const std::string row = "w" + std::to_string(t) + "_r" + std::to_string(r);
      auto got = (*store)->Get(row, 0);
      ASSERT_TRUE(got.ok());
    }
  }
}

TEST(OrcStripeCacheStressTest, ConcurrentReadersShareDecodedStripes) {
  fs::SimFileSystem fs;
  ASSERT_TRUE(fs.CreateDir("/warehouse").ok());
  Schema schema({{"id", DataType::kInt64}, {"val", DataType::kDouble}});
  orc::WriterOptions wopts;
  wopts.stripe_rows = 64;  // many small stripes -> cache hits, misses, evictions
  constexpr int64_t kRows = 64 * 40;  // 40 stripes > kMaxCachedStripes
  {
    auto writer = orc::OrcWriter::Create(&fs, "/warehouse/stress.orc", schema, 1, wopts);
    ASSERT_TRUE(writer.ok());
    for (int64_t i = 0; i < kRows; ++i) {
      ASSERT_TRUE((*writer)->Append(Row{Value::Int64(i), Value::Double(i * 0.25)}).ok());
    }
    ASSERT_TRUE((*writer)->Close().ok());
  }
  auto reader = orc::OrcReader::Open(&fs, "/warehouse/stress.orc");
  ASSERT_TRUE(reader.ok());

  std::vector<std::thread> scanners;
  scanners.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    scanners.emplace_back([&reader, t] {
      Random rng(42 + t);
      for (int i = 0; i < 300; ++i) {
        const size_t stripe = static_cast<size_t>(
            rng.UniformRange(0, static_cast<int>((*reader)->num_stripes()) - 1));
        // Alternate projections so distinct cache entries compete for slots.
        std::vector<size_t> projection;
        if (i % 2 == 0) projection = {0};
        auto batch = (*reader)->ReadStripeShared(stripe, projection);
        ASSERT_TRUE(batch.ok());
        ASSERT_EQ((*batch)->num_rows, 64u);
        const int64_t first = (*batch)->columns[0][0].AsInt64();
        ASSERT_EQ(first, static_cast<int64_t>((*batch)->first_row));
      }
    });
  }
  for (auto& t : scanners) t.join();
}

TEST(ScanMeterStressTest, ConcurrentCountersSumExactly) {
  table::ScanMeter meter;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&meter] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        meter.AddBatch(2, 10);
        meter.AddPatchedRows(1);
        if (i % 8 == 0) meter.AddPassthroughBatch();
        meter.Snapshot();  // concurrent snapshots must never tear
      }
    });
  }
  for (auto& t : workers) t.join();
  const table::ScanSnapshot s = meter.Snapshot();
  EXPECT_EQ(s.batches, static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(s.rows, static_cast<uint64_t>(kThreads) * kOpsPerThread * 2);
  EXPECT_EQ(s.bytes, static_cast<uint64_t>(kThreads) * kOpsPerThread * 10);
  EXPECT_EQ(s.patched_rows, static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(s.passthrough_batches, static_cast<uint64_t>(kThreads) * (kOpsPerThread / 8));

  // The documented single-resetter contract: one thread resets while the
  // others are quiescent; counters restart from zero.
  meter.Reset();
  const table::ScanSnapshot z = meter.Snapshot();
  EXPECT_EQ(z.batches, 0u);
  EXPECT_EQ(z.rows, 0u);
}

// --- morsel-driven parallel scans under concurrent mutation ------------------------

Schema DualStressSchema() {
  return Schema({{"id", DataType::kInt64}, {"amount", DataType::kDouble}});
}

Status StressUpdate(dual::DualTable* table, int64_t modulus, int64_t residue,
                    double bump) {
  table::ScanSpec filter;
  filter.predicate_columns = {0};
  filter.predicate = [modulus, residue](const Row& row) {
    return row[0].AsInt64() % modulus == residue;
  };
  table::Assignment a;
  a.column = 1;
  a.input_columns = {1};
  a.compute = [bump](const Row& row) { return Value::Double(row[1].AsDouble() + bump); };
  return table->Update(filter, {a}).status();
}

// Morsel workers race EDIT statements. Updates never delete, so every scan —
// whatever mix of pre- and post-update stripes its morsels observe — must
// return exactly kRows rows, in record-id order, with sane values.
TEST(ParallelScanStressTest, MorselScansRaceEditStatements) {
  fs::SimFileSystem fs;
  auto metadata = dual::MetadataTable::Open(&fs);
  ASSERT_TRUE(metadata.ok());
  fs::ClusterModel cluster;
  ThreadPool pool(kThreads);

  dual::DualTableOptions options;
  options.plan_mode = dual::DualTableOptions::PlanMode::kForceEdit;
  options.writer_options.stripe_rows = 64;
  options.scan_batch_rows = 48;
  options.pool = &pool;
  auto table = dual::DualTable::Open(&fs, metadata->get(), &cluster, "race",
                                     DualStressSchema(), options);
  ASSERT_TRUE(table.ok());
  constexpr int64_t kRows = 1200;
  for (int64_t chunk = 0; chunk < 2; ++chunk) {
    std::vector<Row> rows;
    for (int64_t i = chunk * 600; i < (chunk + 1) * 600; ++i) {
      rows.push_back(Row{Value::Int64(i), Value::Double(i * 0.5)});
    }
    ASSERT_TRUE((*table)->InsertRows(rows).ok());
  }

  std::atomic<bool> done{false};
  std::thread writer([&table, &done] {
    for (int round = 0; round < 30; ++round) {
      ASSERT_TRUE(StressUpdate(table->get(), 5, round % 5, 0.5).ok());
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> scanners;
  scanners.reserve(2);
  for (int t = 0; t < 2; ++t) {
    scanners.emplace_back([&table, &pool, &done, t] {
      int iter = 0;
      do {
        exec::ParallelScanOptions popts;
        popts.pool = &pool;
        popts.parallelism = 3;
        popts.morsel_stripes = 1 + t;
        if (iter % 3 == 0) {
          exec::ParallelScanner scanner(table->get(), table::ScanSpec{}, popts);
          auto rows = scanner.CollectRows();
          ASSERT_TRUE(rows.ok());
          ASSERT_EQ(rows->size(), static_cast<size_t>(kRows));
          for (size_t i = 0; i < rows->size(); ++i) {
            ASSERT_EQ((*rows)[i][0].AsInt64(), static_cast<int64_t>(i));
            const double amount = (*rows)[i][1].AsDouble();
            ASSERT_GE(amount, static_cast<double>(i) * 0.5);
          }
        } else {
          exec::ParallelScanner scanner(table->get(), table::ScanSpec{}, popts);
          auto count = scanner.Count();
          ASSERT_TRUE(count.ok());
          ASSERT_EQ(*count, static_cast<uint64_t>(kRows));
        }
        ++iter;
      } while (!done.load(std::memory_order_acquire));
    });
  }
  writer.join();
  for (auto& t : scanners) t.join();
}

// Morsel scans race the background compaction scheduler. Every scan holds a
// snapshot that pins the generation its morsels were planned against, so a
// COMPACT that commits mid-scan can never invalidate them: every scan MUST
// succeed and see every row. (Before snapshots, a mid-scan COMPACT could
// fail the scan "cleanly"; that failure mode is extinct by design.)
TEST(ParallelScanStressTest, MorselScansRaceBackgroundCompaction) {
  fs::SimFileSystem fs;
  auto metadata = dual::MetadataTable::Open(&fs);
  ASSERT_TRUE(metadata.ok());
  fs::ClusterModel cluster;
  ThreadPool pool(kThreads);
  auto scheduler = std::make_shared<BackgroundScheduler>(std::chrono::milliseconds(1));

  dual::DualTableOptions options;
  options.plan_mode = dual::DualTableOptions::PlanMode::kForceEdit;
  options.writer_options.stripe_rows = 64;
  options.scan_batch_rows = 48;
  options.pool = &pool;
  options.compact_threshold = 0.01;  // nearly every update round leaves debt
  options.scheduler = scheduler;
  options.background_compaction = true;
  constexpr int64_t kRows = 800;
  {
    auto table = dual::DualTable::Open(&fs, metadata->get(), &cluster, "bgrace",
                                       DualStressSchema(), options);
    ASSERT_TRUE(table.ok());
    for (int64_t chunk = 0; chunk < 2; ++chunk) {
      std::vector<Row> rows;
      for (int64_t i = chunk * 400; i < (chunk + 1) * 400; ++i) {
        rows.push_back(Row{Value::Int64(i), Value::Double(i * 0.5)});
      }
      ASSERT_TRUE((*table)->InsertRows(rows).ok());
    }

    std::atomic<bool> done{false};
    std::thread writer([&table, &done] {
      for (int round = 0; round < 20; ++round) {
        ASSERT_TRUE(StressUpdate(table->get(), 4, round % 4, 0.5).ok());
      }
      done.store(true, std::memory_order_release);
    });

    std::atomic<uint64_t> successes{0};
    std::thread scanner_thread([&table, &pool, &done, &successes] {
      do {
        exec::ParallelScanOptions popts;
        popts.pool = &pool;
        popts.parallelism = 3;
        exec::ParallelScanner scanner(table->get(), table::ScanSpec{}, popts);
        auto count = scanner.Count();
        ASSERT_TRUE(count.ok()) << count.status().ToString();
        ASSERT_EQ(*count, static_cast<uint64_t>(kRows));
        successes.fetch_add(1, std::memory_order_relaxed);
      } while (!done.load(std::memory_order_acquire));
    });
    writer.join();
    scanner_thread.join();
    EXPECT_GT(successes.load(), 0u);

    // Once writes stop, a quiesced scheduler leaves no debt and a stable
    // generation: scans succeed again and the data is intact.
    scheduler->Quiesce();
    EXPECT_FALSE((*table)->NeedsCompaction());
    exec::ParallelScanOptions popts;
    popts.pool = &pool;
    popts.parallelism = 4;
    exec::ParallelScanner scanner(table->get(), table::ScanSpec{}, popts);
    auto count = scanner.Count();
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, static_cast<uint64_t>(kRows));
  }  // table unregisters its poll job here, while the scheduler is live
  scheduler->Shutdown();
}

// Scan-vs-flush lifetime regression: CellScanners opened on the attached
// table must stay valid while concurrent EDITs flush and merge the memtable
// out from under them (the shared_ptr keepalive added with the background
// compactor). Serial UNION READ scans exercise that path directly.
TEST(ParallelScanStressTest, AttachedScansSurviveConcurrentFlushes) {
  fs::SimFileSystem fs;
  auto metadata = dual::MetadataTable::Open(&fs);
  ASSERT_TRUE(metadata.ok());
  fs::ClusterModel cluster;

  dual::DualTableOptions options;
  options.plan_mode = dual::DualTableOptions::PlanMode::kForceEdit;
  options.writer_options.stripe_rows = 64;
  options.attached_options.memtable_flush_bytes = 2 * 1024;  // flush constantly
  options.attached_options.l0_compaction_trigger = 2;
  auto table = dual::DualTable::Open(&fs, metadata->get(), &cluster, "flush",
                                     DualStressSchema(), options);
  ASSERT_TRUE(table.ok());
  constexpr int64_t kRows = 600;
  std::vector<Row> rows;
  for (int64_t i = 0; i < kRows; ++i) {
    rows.push_back(Row{Value::Int64(i), Value::Double(i * 0.5)});
  }
  ASSERT_TRUE((*table)->InsertRows(rows).ok());

  std::atomic<bool> done{false};
  std::thread writer([&table, &done] {
    for (int round = 0; round < 25; ++round) {
      ASSERT_TRUE(StressUpdate(table->get(), 3, round % 3, 0.5).ok());
    }
    done.store(true, std::memory_order_release);
  });
  std::vector<std::thread> scanners;
  scanners.reserve(2);
  for (int t = 0; t < 2; ++t) {
    scanners.emplace_back([&table, &done] {
      do {
        auto it = (*table)->ScanBatches(table::ScanSpec{});
        ASSERT_TRUE(it.ok());
        table::RowBatch batch;
        uint64_t seen = 0;
        while ((*it)->Next(&batch)) seen += batch.size();
        ASSERT_TRUE((*it)->status().ok());
        ASSERT_EQ(seen, static_cast<uint64_t>(kRows));
      } while (!done.load(std::memory_order_acquire));
    });
  }
  writer.join();
  for (auto& t : scanners) t.join();
}

// --- snapshot stability under concurrent mutation ----------------------------------

std::string EncodeRows(const std::vector<Row>& rows) {
  std::string bytes;
  for (const Row& row : rows) {
    for (const Value& v : row) v.EncodeTo(&bytes);
  }
  return bytes;
}

Result<std::vector<Row>> CollectSnapshotRows(dual::DualTable* table,
                                             const dual::SnapshotPtr& snapshot) {
  DTL_ASSIGN_OR_RETURN(auto it, table->ScanAt(snapshot, table::ScanSpec{}));
  std::vector<Row> rows;
  while (it->Next()) rows.push_back(it->row());
  DTL_RETURN_NOT_OK(it->status());
  return rows;
}

// The MVCC stability contract: a snapshot acquired before a storm of EDITs
// and a COMPACT keeps returning the acquisition-time row set, byte for byte,
// on every read path — serial row, serial batch, and morsel-driven parallel
// (which reads the same snapshot via ParallelScanOptions::snapshot) — while
// the table changes underneath it. The COMPACT swaps the master generation
// mid-storm; the snapshot's generation pin is what keeps its files readable.
TEST(SnapshotStabilityStressTest, SnapshotIsByteStableAcrossEditsAndCompact) {
  fs::SimFileSystem fs;
  auto metadata = dual::MetadataTable::Open(&fs);
  ASSERT_TRUE(metadata.ok());
  fs::ClusterModel cluster;
  ThreadPool pool(kThreads);

  dual::DualTableOptions options;
  options.plan_mode = dual::DualTableOptions::PlanMode::kForceEdit;
  options.writer_options.stripe_rows = 64;
  options.scan_batch_rows = 48;
  options.pool = &pool;
  auto table = dual::DualTable::Open(&fs, metadata->get(), &cluster, "mvcc",
                                     DualStressSchema(), options);
  ASSERT_TRUE(table.ok());
  constexpr int64_t kRows = 600;
  {
    std::vector<Row> rows;
    rows.reserve(kRows);
    for (int64_t i = 0; i < kRows; ++i) {
      rows.push_back(Row{Value::Int64(i), Value::Double(i * 0.5)});
    }
    ASSERT_TRUE((*table)->InsertRows(rows).ok());
  }
  // Pre-snapshot EDITs so the pinned attached state is non-empty and the
  // merge path (not just stripe pass-through) is what stays stable.
  ASSERT_TRUE(StressUpdate(table->get(), 7, 0, 0.25).ok());

  const dual::SnapshotPtr snapshot = (*table)->AcquireSnapshot();
  auto baseline = CollectSnapshotRows(table->get(), snapshot);
  ASSERT_TRUE(baseline.ok());
  ASSERT_EQ(baseline->size(), static_cast<size_t>(kRows));
  const std::string baseline_bytes = EncodeRows(*baseline);

  std::atomic<bool> done{false};
  std::thread writer([&table, &done] {
    for (int round = 0; round < 110; ++round) {  // >= 100 EDIT statements
      ASSERT_TRUE(StressUpdate(table->get(), 5, round % 5, 0.5).ok());
      if (round == 55) ASSERT_TRUE((*table)->Compact().ok());
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> scanners;
  scanners.reserve(3);
  // Serial row path.
  scanners.emplace_back([&table, &snapshot, &baseline_bytes, &done] {
    do {
      auto rows = CollectSnapshotRows(table->get(), snapshot);
      ASSERT_TRUE(rows.ok());
      ASSERT_EQ(EncodeRows(*rows), baseline_bytes);
    } while (!done.load(std::memory_order_acquire));
  });
  // Serial batch path.
  scanners.emplace_back([&table, &snapshot, &baseline_bytes, &done] {
    do {
      auto it = (*table)->ScanBatchesAt(snapshot, table::ScanSpec{});
      ASSERT_TRUE(it.ok());
      std::vector<Row> rows;
      table::RowBatch batch;
      while ((*it)->Next(&batch)) {
        for (size_t i = 0; i < batch.size(); ++i) {
          Row row;
          batch.MaterializeRow(i, &row);
          rows.push_back(std::move(row));
        }
      }
      ASSERT_TRUE((*it)->status().ok());
      ASSERT_EQ(EncodeRows(rows), baseline_bytes);
    } while (!done.load(std::memory_order_acquire));
  });
  // Morsel-driven parallel path reading the same snapshot; CollectRows
  // restores record-id order, so equality really is byte-identity with the
  // serial acquisition-time scan.
  scanners.emplace_back([&table, &pool, &snapshot, &baseline_bytes, &done] {
    do {
      exec::ParallelScanOptions popts;
      popts.pool = &pool;
      popts.parallelism = 3;
      popts.snapshot = snapshot;
      exec::ParallelScanner scanner(table->get(), table::ScanSpec{}, popts);
      auto rows = scanner.CollectRows();
      ASSERT_TRUE(rows.ok());
      ASSERT_EQ(EncodeRows(*rows), baseline_bytes);
    } while (!done.load(std::memory_order_acquire));
  });
  writer.join();
  for (auto& t : scanners) t.join();

  // A snapshot acquired after the storm sees every committed EDIT: same row
  // set, values only grew (updates added positive bumps).
  auto latest = CollectSnapshotRows(table->get(), (*table)->AcquireSnapshot());
  ASSERT_TRUE(latest.ok());
  ASSERT_EQ(latest->size(), static_cast<size_t>(kRows));
  for (size_t i = 0; i < latest->size(); ++i) {
    ASSERT_EQ((*latest)[i][0].AsInt64(), (*baseline)[i][0].AsInt64());
    ASSERT_GE((*latest)[i][1].AsDouble(), (*baseline)[i][1].AsDouble());
  }
}

// Register/unregister churn against a fast-polling scheduler: Unregister
// must block out in-flight polls so a job's state can be torn down the
// moment it returns, and Shutdown must serialize with everything.
TEST(BackgroundSchedulerStressTest, RegisterUnregisterChurn) {
  auto scheduler = std::make_shared<BackgroundScheduler>(std::chrono::milliseconds(1));
  std::vector<std::thread> churners;
  churners.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    churners.emplace_back([&scheduler, t] {
      for (int i = 0; i < 40; ++i) {
        // The counter lives on the churner's stack; Unregister's barrier is
        // what makes destroying it immediately afterwards safe. A starved
        // scheduler may legitimately poll a short-lived job zero times, so
        // there is no count assertion here — TSan and the stack lifetime
        // are what this loop tests.
        std::atomic<uint64_t> local_polls{0};
        const uint64_t id = scheduler->Register(
            "churn" + std::to_string(t),
            [&local_polls] { local_polls.fetch_add(1, std::memory_order_relaxed); });
        scheduler->Wake();
        std::this_thread::yield();
        scheduler->Unregister(id);
      }
    });
  }
  for (auto& t : churners) t.join();
  // Deterministic liveness check: a job registered before Quiesce() MUST be
  // polled by the full round Quiesce waits out, however loaded the host is.
  std::atomic<uint64_t> final_polls{0};
  const uint64_t id = scheduler->Register(
      "final", [&final_polls] { final_polls.fetch_add(1, std::memory_order_relaxed); });
  scheduler->Quiesce();
  EXPECT_GT(final_polls.load(std::memory_order_relaxed), 0u);
  scheduler->Unregister(id);
  scheduler->Shutdown();
}

}  // namespace
}  // namespace dtl
