// Deterministic background-maintenance tests: a ManualSchedulerClock makes
// scheduler rounds fire only on demand (Quiesce/Wake), so the assertions
// below never sleep and never race the daemon — each Quiesce() is exactly
// one observable maintenance round.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/background_scheduler.h"
#include "dualtable/dual_table.h"
#include "fs/filesystem.h"

namespace dtl::dual {
namespace {

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64}, {"amount", DataType::kDouble}});
}

std::vector<Row> IdRows(int64_t lo, int64_t hi) {
  std::vector<Row> rows;
  rows.reserve(hi - lo);
  for (int64_t i = lo; i < hi; ++i) {
    rows.push_back(Row{Value::Int64(i), Value::Double(i * 0.5)});
  }
  return rows;
}

table::ScanSpec IdRange(int64_t lo, int64_t hi) {
  table::ScanSpec spec;
  spec.predicate_columns = {0};
  spec.predicate = [lo, hi](const Row& row) {
    return !row[0].is_null() && row[0].AsInt64() >= lo && row[0].AsInt64() < hi;
  };
  return spec;
}

std::shared_ptr<BackgroundScheduler> ManualScheduler() {
  return std::make_shared<BackgroundScheduler>(std::chrono::milliseconds(1),
                                               std::make_unique<ManualSchedulerClock>());
}

TEST(ManualSchedulerClockTest, RoundsFireOnlyOnDemand) {
  auto scheduler = ManualScheduler();
  std::atomic<int> polls{0};
  const uint64_t job = scheduler->Register("count", [&polls] { ++polls; });
  // Register() wakes the daemon for one prompt poll; Quiesce() guarantees a
  // fresh round has completed. Between the two the job ran once or twice.
  scheduler->Quiesce();
  const int after_first = polls.load();
  EXPECT_GE(after_first, 1);
  EXPECT_LE(after_first, 2);
  // With a manual clock there is no timer: absent another Quiesce/Wake the
  // count is frozen, and each further Quiesce adds exactly one round.
  EXPECT_EQ(polls.load(), after_first);
  scheduler->Quiesce();
  EXPECT_EQ(polls.load(), after_first + 1);
  scheduler->Quiesce();
  EXPECT_EQ(polls.load(), after_first + 2);
  scheduler->Unregister(job);
  scheduler->Shutdown();
}

class BackgroundMaintenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs_ = std::make_unique<fs::SimFileSystem>();
    auto meta = MetadataTable::Open(fs_.get());
    ASSERT_TRUE(meta.ok());
    metadata_ = std::move(*meta);
    cluster_ = std::make_unique<fs::ClusterModel>();
    scheduler_ = ManualScheduler();
  }

  void TearDown() override { scheduler_->Shutdown(); }

  Result<std::shared_ptr<DualTable>> OpenTable(DualTableOptions options) {
    options.writer_options.stripe_rows = 32;
    options.plan_mode = DualTableOptions::PlanMode::kForceEdit;
    options.scheduler = scheduler_;
    options.background_compaction = true;
    return DualTable::Open(fs_.get(), metadata_.get(), cluster_.get(), "bg",
                           TestSchema(), options);
  }

  static Status Bump(DualTable* table, int64_t lo, int64_t hi) {
    table::Assignment assign;
    assign.column = 1;
    assign.input_columns = {1};
    assign.compute = [](const Row& row) { return Value::Double(row[1].AsDouble() + 1.0); };
    return table->Update(IdRange(lo, hi), {assign}).status();
  }

  std::unique_ptr<fs::SimFileSystem> fs_;
  std::unique_ptr<MetadataTable> metadata_;
  std::unique_ptr<fs::ClusterModel> cluster_;
  std::shared_ptr<BackgroundScheduler> scheduler_;
};

TEST_F(BackgroundMaintenanceTest, FoldsDenseFileKeepsSparseFile) {
  DualTableOptions options;
  options.incremental_density_override = 0.5;
  // Keep the byte-debt fallback out of the way: this test watches only the
  // density-driven selection.
  options.compact_threshold = 10.0;
  auto table = OpenTable(options);
  ASSERT_TRUE(table.ok());
  // Two master files (one per INSERT): ids [0,200) and [200,400).
  ASSERT_TRUE((*table)->InsertRows(IdRows(0, 200)).ok());
  ASSERT_TRUE((*table)->InsertRows(IdRows(200, 400)).ok());
  ASSERT_TRUE(Bump(table->get(), 0, 180).ok());    // dense: 90% of file 1
  ASSERT_TRUE(Bump(table->get(), 200, 210).ok());  // sparse: 5% of file 2

  auto before = (*table)->PreviewIncrementalCompaction();
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->files.size(), 2u);
  EXPECT_EQ(before->selected_files(), 1u);
  EXPECT_EQ(before->total_delta_rows(), 190u);
  const uint64_t dense_id = before->files[0].file_id;
  const uint64_t sparse_id = before->files[1].file_id;
  ASSERT_TRUE(before->files[0].selected);
  ASSERT_FALSE(before->files[1].selected);

  // One maintenance round folds the dense file and leaves the sparse one —
  // and its attached deltas — untouched.
  scheduler_->Quiesce();
  auto after = (*table)->PreviewIncrementalCompaction();
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->files.size(), 2u);
  EXPECT_EQ(after->total_delta_rows(), 10u);
  EXPECT_EQ(after->selected_files(), 0u);
  for (const FileCompactionPlan& f : after->files) {
    EXPECT_NE(f.file_id, dense_id) << "dense file should have been replaced";
    if (f.file_id == sparse_id) {
      EXPECT_EQ(f.delta_rows, 10u);
    } else {
      EXPECT_EQ(f.delta_rows, 0u);  // the dense file's replacement is clean
    }
  }

  // Below threshold the table idles: further rounds change neither the file
  // set nor the remaining deltas.
  scheduler_->Quiesce();
  scheduler_->Quiesce();
  auto idle = (*table)->PreviewIncrementalCompaction();
  ASSERT_TRUE(idle.ok());
  ASSERT_EQ(idle->files.size(), after->files.size());
  for (size_t i = 0; i < idle->files.size(); ++i) {
    EXPECT_EQ(idle->files[i].file_id, after->files[i].file_id);
    EXPECT_EQ(idle->files[i].delta_rows, after->files[i].delta_rows);
  }

  // The folded update survived the rewrite; the sparse update still reads
  // through UNION READ.
  auto it = (*table)->Scan(table::ScanSpec{});
  ASSERT_TRUE(it.ok());
  uint64_t total = 0, bumped = 0;
  while ((*it)->Next()) {
    const Row& row = (*it)->row();
    ++total;
    if (row[1].AsDouble() == row[0].AsInt64() * 0.5 + 1.0) ++bumped;
  }
  ASSERT_TRUE((*it)->status().ok());
  EXPECT_EQ(total, 400u);
  EXPECT_EQ(bumped, 190u);
}

TEST_F(BackgroundMaintenanceTest, ByteDebtFallbackRunsFullCompact) {
  DualTableOptions options;
  // No file ever reaches the density bar, but the byte debt crosses the
  // (tiny) compact threshold: maintenance falls back to the full rewrite.
  options.incremental_density_override = 0.99;
  options.compact_threshold = 0.0001;
  auto table = OpenTable(options);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->InsertRows(IdRows(0, 200)).ok());
  ASSERT_TRUE((*table)->InsertRows(IdRows(200, 400)).ok());
  ASSERT_TRUE(Bump(table->get(), 0, 20).ok());
  ASSERT_TRUE(Bump(table->get(), 200, 220).ok());
  ASSERT_TRUE((*table)->NeedsCompaction());

  scheduler_->Quiesce();
  EXPECT_FALSE((*table)->NeedsCompaction());
  auto plan = (*table)->PreviewIncrementalCompaction();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->total_delta_rows(), 0u);
  // Full COMPACT coalesces everything into one clean file.
  EXPECT_EQ(plan->files.size(), 1u);

  auto it = (*table)->Scan(table::ScanSpec{});
  ASSERT_TRUE(it.ok());
  uint64_t total = 0, bumped = 0;
  while ((*it)->Next()) {
    const Row& row = (*it)->row();
    ++total;
    if (row[1].AsDouble() == row[0].AsInt64() * 0.5 + 1.0) ++bumped;
  }
  ASSERT_TRUE((*it)->status().ok());
  EXPECT_EQ(total, 400u);
  EXPECT_EQ(bumped, 40u);
}

TEST_F(BackgroundMaintenanceTest, IncrementalFoldConvergesByteDebtToZero) {
  DualTableOptions options;
  options.incremental_density_override = 0.05;
  options.compact_threshold = 0.0001;
  auto table = OpenTable(options);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->InsertRows(IdRows(0, 200)).ok());
  ASSERT_TRUE(Bump(table->get(), 0, 100).ok());
  ASSERT_TRUE((*table)->NeedsCompaction());

  // The fold covers every live delta, so a single round clears the attached
  // store outright — the debt metric must land at zero, not hover on
  // tombstones the fold itself wrote.
  scheduler_->Quiesce();
  EXPECT_FALSE((*table)->NeedsCompaction());
  EXPECT_TRUE((*table)->attached()->Empty());
}

}  // namespace
}  // namespace dtl::dual
