// Tests for the vectorized read path: RowBatch/ColumnVector mechanics,
// the row<->batch adapters, and the batch scan pipeline edge cases (empty
// table, stripe-aligned batch boundaries, projection-only scans, fully
// deleted batches, and batch-vs-row equivalence).
#include <gtest/gtest.h>

#include "dualtable/dual_table.h"
#include "dualtable/record_id.h"
#include "fs/filesystem.h"
#include "table/row_batch.h"
#include "table/scan_stats.h"
#include "table/storage_table.h"

namespace dtl::table {
namespace {

// --- ColumnVector / RowBatch mechanics ---------------------------------------------

TEST(ColumnVectorTest, AbsentReadsAsNull) {
  ColumnVector col;
  EXPECT_TRUE(col.absent());
  EXPECT_TRUE(col.at(0).is_null());
  EXPECT_EQ(col.data(), nullptr);
}

TEST(ColumnVectorTest, ViewIsZeroCopy) {
  std::vector<Value> storage = {Value::Int64(1), Value::Int64(2), Value::Int64(3)};
  ColumnVector col;
  col.SetView(storage.data(), storage.size());
  EXPECT_TRUE(col.is_view());
  EXPECT_EQ(col.data(), storage.data());
  EXPECT_EQ(col.at(1).AsInt64(), 2);
}

TEST(ColumnVectorTest, MakeMutableCopiesViewOnce) {
  std::vector<Value> storage = {Value::Int64(1), Value::Int64(2)};
  ColumnVector col;
  col.SetView(storage.data(), storage.size());
  Value* data = col.MakeMutable(2);
  ASSERT_NE(data, storage.data());  // copy-on-write
  data[0] = Value::Int64(99);
  EXPECT_EQ(col.at(0).AsInt64(), 99);
  EXPECT_EQ(storage[0].AsInt64(), 1);  // original untouched
  EXPECT_EQ(col.MakeMutable(2), data);  // already owned: no second copy
}

TEST(ColumnVectorTest, MakeMutableMaterializesAbsentAsNulls) {
  ColumnVector col;
  Value* data = col.MakeMutable(3);
  EXPECT_TRUE(data[0].is_null());
  data[2] = Value::Int64(7);
  EXPECT_TRUE(col.at(0).is_null());
  EXPECT_EQ(col.at(2).AsInt64(), 7);
}

TEST(RowBatchTest, SelectionCompressesVisibleRows) {
  RowBatch batch;
  batch.Reset(1, 5);
  std::vector<Value> vals;
  for (int i = 0; i < 5; ++i) vals.push_back(Value::Int64(i));
  batch.column(0).SetOwned(std::move(vals));
  EXPECT_EQ(batch.size(), 5u);

  batch.SetSelection({1, 3});
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.ValueAt(0, 0).AsInt64(), 1);
  EXPECT_EQ(batch.ValueAt(0, 1).AsInt64(), 3);

  batch.TruncateSelection(1);
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.ValueAt(0, 0).AsInt64(), 1);
}

TEST(RowBatchTest, TruncateWithoutSelectionCreatesPrefix) {
  RowBatch batch;
  batch.Reset(1, 4);
  batch.TruncateSelection(2);
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.row_index(1), 1u);
}

TEST(RowBatchTest, FilterAllPassCreatesNoSelection) {
  RowBatch batch;
  batch.Reset(1, 4);
  std::vector<Value> vals;
  for (int i = 0; i < 4; ++i) vals.push_back(Value::Int64(i));
  batch.column(0).SetOwned(std::move(vals));
  Row scratch;
  size_t dropped = batch.FilterSelected([](const Row&) { return true; }, &scratch);
  EXPECT_EQ(dropped, 0u);
  EXPECT_FALSE(batch.has_selection());  // pass-through fast path
}

TEST(RowBatchTest, FilterDropsAndCompressesExistingSelection) {
  RowBatch batch;
  batch.Reset(1, 6);
  std::vector<Value> vals;
  for (int i = 0; i < 6; ++i) vals.push_back(Value::Int64(i));
  batch.column(0).SetOwned(std::move(vals));
  Row scratch;
  auto even = [](const Row& row) { return row[0].AsInt64() % 2 == 0; };
  EXPECT_EQ(batch.FilterSelected(even, &scratch), 3u);
  ASSERT_EQ(batch.size(), 3u);
  // Second filter compresses the existing selection in place.
  auto small = [](const Row& row) { return row[0].AsInt64() < 4; };
  EXPECT_EQ(batch.FilterSelected(small, &scratch), 1u);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.ValueAt(0, 0).AsInt64(), 0);
  EXPECT_EQ(batch.ValueAt(0, 1).AsInt64(), 2);
}

TEST(RowBatchTest, ContiguousRecordIdsFollowSelection) {
  RowBatch batch;
  batch.Reset(1, 4);
  batch.SetContiguousRecordIds(100);
  batch.SetSelection({0, 2, 3});
  EXPECT_EQ(batch.record_id(0), 100u);
  EXPECT_EQ(batch.record_id(1), 102u);
  EXPECT_EQ(batch.record_id(2), 103u);
}

TEST(RowBatchTest, MaterializeRowIsFullWidthWithAbsentNull) {
  RowBatch batch;
  batch.Reset(3, 2);
  std::vector<Value> vals = {Value::Int64(5), Value::Int64(6)};
  batch.column(1).SetOwned(std::move(vals));
  Row row;
  batch.MaterializeRow(1, &row);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_TRUE(row[0].is_null());
  EXPECT_EQ(row[1].AsInt64(), 6);
  EXPECT_TRUE(row[2].is_null());
}

// --- batch scan pipeline over a DualTable ------------------------------------------

class BatchScanTest : public ::testing::Test {
 protected:
  void Open(size_t stripe_rows, size_t batch_rows) {
    fs_ = std::make_unique<fs::SimFileSystem>();
    auto meta = dual::MetadataTable::Open(fs_.get());
    ASSERT_TRUE(meta.ok());
    metadata_ = std::move(*meta);
    cluster_ = std::make_unique<fs::ClusterModel>();

    dual::DualTableOptions options;
    options.plan_mode = dual::DualTableOptions::PlanMode::kForceEdit;
    options.writer_options.stripe_rows = stripe_rows;
    options.scan_batch_rows = batch_rows;
    auto t = dual::DualTable::Open(
        fs_.get(), metadata_.get(), cluster_.get(), "b",
        Schema({{"id", DataType::kInt64}, {"v", DataType::kInt64}}), options);
    ASSERT_TRUE(t.ok());
    table_ = *t;
  }

  void InsertSequential(int n) {
    std::vector<Row> rows;
    for (int i = 0; i < n; ++i) rows.push_back({Value::Int64(i), Value::Int64(i * 10)});
    ASSERT_TRUE(table_->InsertRows(rows).ok());
  }

  /// Drains Scan (batch path by default) into (record_id, row) pairs.
  static std::vector<std::pair<uint64_t, Row>> Drain(RowIterator* it) {
    std::vector<std::pair<uint64_t, Row>> out;
    while (it->Next()) out.emplace_back(it->record_id(), it->row());
    EXPECT_TRUE(it->status().ok()) << it->status().ToString();
    return out;
  }

  std::unique_ptr<fs::SimFileSystem> fs_;
  std::unique_ptr<dual::MetadataTable> metadata_;
  std::unique_ptr<fs::ClusterModel> cluster_;
  std::shared_ptr<dual::DualTable> table_;
};

TEST_F(BatchScanTest, EmptyTableYieldsNoBatches) {
  Open(8, 4);
  auto batches = table_->ScanBatches(ScanSpec{});
  ASSERT_TRUE(batches.ok());
  RowBatch batch;
  EXPECT_FALSE((*batches)->Next(&batch));
  EXPECT_TRUE((*batches)->status().ok());

  auto rows = CollectRows(table_.get(), ScanSpec{});
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(BatchScanTest, BatchBoundaryExactlyAtStripeEdge) {
  Open(/*stripe_rows=*/8, /*batch_rows=*/8);
  InsertSequential(24);  // exactly 3 stripes, batch == stripe
  auto batches = table_->ScanBatches(ScanSpec{});
  ASSERT_TRUE(batches.ok());
  RowBatch batch;
  int count = 0;
  uint64_t next_expected_value = 0;
  while ((*batches)->Next(&batch)) {
    EXPECT_EQ(batch.size(), 8u);
    EXPECT_TRUE(batch.contiguous_record_ids());
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch.ValueAt(0, i).AsInt64(),
                static_cast<int64_t>(next_expected_value++));
    }
    ++count;
  }
  EXPECT_TRUE((*batches)->status().ok());
  EXPECT_EQ(count, 3);
  EXPECT_EQ(next_expected_value, 24u);
}

TEST_F(BatchScanTest, BatchSmallerThanStripeCoversAllRows) {
  Open(/*stripe_rows=*/10, /*batch_rows=*/3);  // 10 % 3 != 0: ragged tail per stripe
  InsertSequential(25);
  auto rows = CollectRows(table_.get(), ScanSpec{});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 25u);
  for (int i = 0; i < 25; ++i) EXPECT_EQ((*rows)[i][0].AsInt64(), i);
}

TEST_F(BatchScanTest, ProjectionOnlyScanLeavesOtherColumnsNull) {
  Open(8, 4);
  InsertSequential(10);
  ScanSpec narrow;
  narrow.projection = {1};
  auto rows = CollectRows(table_.get(), narrow);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE((*rows)[i][0].is_null());
    EXPECT_EQ((*rows)[i][1].AsInt64(), i * 10);
  }
}

TEST_F(BatchScanTest, FullyDeletedBatchIsSkippedNotEmitted) {
  Open(/*stripe_rows=*/8, /*batch_rows=*/4);
  InsertSequential(12);
  // Delete physical rows [0, 4): exactly the first batch.
  const uint64_t file_id = table_->master()->files()[0].file_id;
  for (uint64_t r = 0; r < 4; ++r) {
    ASSERT_TRUE(table_->attached()->PutDeleteMarker(dual::MakeRecordId(file_id, r)).ok());
  }
  table_->PublishEditCommit();
  auto batches = table_->ScanBatches(ScanSpec{});
  ASSERT_TRUE(batches.ok());
  RowBatch batch;
  size_t total = 0;
  while ((*batches)->Next(&batch)) {
    EXPECT_GT(batch.size(), 0u);  // contract: no empty batches emitted
    total += batch.size();
  }
  EXPECT_TRUE((*batches)->status().ok());
  EXPECT_EQ(total, 8u);
  EXPECT_EQ(*table_->CountRows(), 8u);
}

TEST_F(BatchScanTest, BatchPathMatchesLegacyRowPath) {
  Open(/*stripe_rows=*/10, /*batch_rows=*/4);  // misaligned on purpose
  InsertSequential(57);
  InsertSequential(13);  // second master file
  // Mixed modifications: updates, deletes, update-after-delete.
  const auto& files = table_->master()->files();
  ASSERT_EQ(files.size(), 2u);
  auto* att = table_->attached();
  ASSERT_TRUE(att->PutUpdate(dual::MakeRecordId(files[0].file_id, 3), 1,
                             Value::Int64(-1)).ok());
  ASSERT_TRUE(att->PutUpdate(dual::MakeRecordId(files[0].file_id, 39), 0,
                             Value::Int64(1000)).ok());
  ASSERT_TRUE(att->PutDeleteMarker(dual::MakeRecordId(files[0].file_id, 40)).ok());
  ASSERT_TRUE(att->PutDeleteMarker(dual::MakeRecordId(files[1].file_id, 0)).ok());
  ASSERT_TRUE(att->PutDeleteMarker(dual::MakeRecordId(files[1].file_id, 5)).ok());
  ASSERT_TRUE(att->PutUpdate(dual::MakeRecordId(files[1].file_id, 5), 1,
                             Value::Int64(7)).ok());  // stays deleted
  table_->PublishEditCommit();

  ScanSpec spec;
  spec.projection = {0, 1};
  spec.predicate_columns = {0};
  spec.predicate = [](const Row& row) { return row[0].AsInt64() % 3 != 0; };

  auto legacy = table_->ScanLegacyRows(spec);
  ASSERT_TRUE(legacy.ok());
  auto batch_scan = table_->Scan(spec);  // batch path + adapter
  ASSERT_TRUE(batch_scan.ok());

  auto legacy_rows = Drain(legacy->get());
  auto batch_rows = Drain(batch_scan->get());
  ASSERT_EQ(legacy_rows.size(), batch_rows.size());
  for (size_t i = 0; i < legacy_rows.size(); ++i) {
    EXPECT_EQ(legacy_rows[i].first, batch_rows[i].first) << "record id at row " << i;
    ASSERT_EQ(legacy_rows[i].second.size(), batch_rows[i].second.size());
    for (size_t c = 0; c < legacy_rows[i].second.size(); ++c) {
      EXPECT_EQ(legacy_rows[i].second[c].Compare(batch_rows[i].second[c]), 0)
          << "row " << i << " col " << c;
    }
  }
}

TEST_F(BatchScanTest, RowBatchAdapterRoundTripPreservesRowsAndIds) {
  Open(10, 4);
  InsertSequential(33);
  ScanSpec spec;
  // Legacy rows -> batches -> rows must equal legacy rows directly.
  auto direct = table_->ScanLegacyRows(spec);
  ASSERT_TRUE(direct.ok());
  auto direct_rows = Drain(direct->get());

  auto inner = table_->ScanLegacyRows(spec);
  ASSERT_TRUE(inner.ok());
  auto round_trip = std::make_unique<BatchToRowAdapter>(
      std::make_unique<RowToBatchAdapter>(std::move(*inner),
                                          table_->schema().num_fields(), 5));
  auto rt_rows = Drain(round_trip.get());
  ASSERT_EQ(direct_rows.size(), rt_rows.size());
  for (size_t i = 0; i < direct_rows.size(); ++i) {
    EXPECT_EQ(direct_rows[i].first, rt_rows[i].first);
    for (size_t c = 0; c < direct_rows[i].second.size(); ++c) {
      EXPECT_EQ(direct_rows[i].second[c].Compare(rt_rows[i].second[c]), 0);
    }
  }
}

TEST_F(BatchScanTest, MasterPredicateEmitsFullPassBatchesAndSkipsAllDropped) {
  Open(/*stripe_rows=*/4, /*batch_rows=*/4);
  InsertSequential(16);
  ScanSpec spec;
  spec.predicate_columns = {0};
  spec.predicate = [](const Row& row) { return row[0].AsInt64() < 8; };
  // apply_predicate=true is the Hive(HDFS) batch-scan configuration: the
  // master iterator filters itself instead of deferring to UNION READ.
  auto it = table_->master()->NewBatchScanIterator(spec, /*apply_predicate=*/true,
                                                   /*batch_rows=*/4);
  ASSERT_TRUE(it.ok());
  RowBatch batch;
  int64_t expected = 0;
  while ((*it)->Next(&batch)) {
    ASSERT_GT(batch.size(), 0u);  // all-dropped batches must be skipped
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch.ValueAt(0, i).AsInt64(), expected++);
    }
  }
  EXPECT_TRUE((*it)->status().ok());
  EXPECT_EQ(expected, 8);  // the two fully-passing batches were emitted intact
}

TEST_F(BatchScanTest, PassthroughBatchesAreMeteredOnUnmodifiedTable) {
  Open(8, 4);
  InsertSequential(16);
  const ScanSnapshot before = GlobalScanMeter().Snapshot();
  auto rows = CollectRows(table_.get(), ScanSpec{});
  ASSERT_TRUE(rows.ok());
  const ScanSnapshot delta = GlobalScanMeter().Snapshot() - before;
  EXPECT_EQ(delta.rows, 16u);
  EXPECT_EQ(delta.batches, 4u);  // 2 stripes x 2 batches each
  EXPECT_EQ(delta.passthrough_batches, 4u);  // empty attached: all pass through
  EXPECT_EQ(delta.masked_rows, 0u);
  EXPECT_EQ(delta.patched_rows, 0u);
}

}  // namespace
}  // namespace dtl::table
