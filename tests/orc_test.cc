#include <gtest/gtest.h>

#include "common/random.h"
#include "fs/filesystem.h"
#include "orc/encoding.h"
#include "orc/reader.h"
#include "orc/writer.h"

namespace dtl::orc {
namespace {

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"price", DataType::kDouble},
                 {"name", DataType::kString},
                 {"flag", DataType::kBool},
                 {"day", DataType::kDate}});
}

Row MakeRow(int64_t i) {
  return Row{Value::Int64(i), Value::Double(i * 0.5),
             Value::String("name" + std::to_string(i % 100)), Value::Bool(i % 2 == 0),
             Value::Date(1000 + i % 36)};
}

TEST(EncodingTest, Int64StreamRunsAndLiterals) {
  std::vector<int64_t> values = {1, 1, 1, 1, 5, 6, 7, -3, -3, -3, -3, -3, 9};
  std::string buf;
  EncodeInt64Stream(values, &buf);
  std::vector<int64_t> decoded;
  ASSERT_TRUE(DecodeInt64Stream(Slice(buf), &decoded).ok());
  EXPECT_EQ(decoded, values);
}

TEST(EncodingTest, Int64StreamEmptyAndSingle) {
  for (const std::vector<int64_t>& values :
       {std::vector<int64_t>{}, std::vector<int64_t>{42}}) {
    std::string buf;
    EncodeInt64Stream(values, &buf);
    std::vector<int64_t> decoded;
    ASSERT_TRUE(DecodeInt64Stream(Slice(buf), &decoded).ok());
    EXPECT_EQ(decoded, values);
  }
}

TEST(EncodingTest, Int64StreamRandomRoundTrip) {
  Random rng(3);
  std::vector<int64_t> values;
  for (int i = 0; i < 10000; ++i) {
    // Mix runs and noise.
    if (rng.Bernoulli(0.3)) {
      int64_t v = rng.UniformRange(-5, 5);
      for (int j = 0; j < 5; ++j) values.push_back(v);
    } else {
      values.push_back(rng.UniformRange(INT32_MIN, INT32_MAX));
    }
  }
  std::string buf;
  EncodeInt64Stream(values, &buf);
  std::vector<int64_t> decoded;
  ASSERT_TRUE(DecodeInt64Stream(Slice(buf), &decoded).ok());
  EXPECT_EQ(decoded, values);
}

TEST(EncodingTest, RunsCompressWell) {
  std::vector<int64_t> values(10000, 7);
  std::string buf;
  EncodeInt64Stream(values, &buf);
  EXPECT_LT(buf.size(), 100u);  // one run group
}

TEST(EncodingTest, DoubleStreamRoundTrip) {
  std::vector<double> values = {0.0, -1.5, 3.14159, 1e300, -1e-300};
  std::string buf;
  EncodeDoubleStream(values, &buf);
  std::vector<double> decoded;
  ASSERT_TRUE(DecodeDoubleStream(Slice(buf), &decoded).ok());
  EXPECT_EQ(decoded, values);
}

TEST(EncodingTest, StringStreamDictionaryMode) {
  std::vector<std::string> values;
  for (int i = 0; i < 1000; ++i) values.push_back("tag" + std::to_string(i % 10));
  std::string buf;
  EncodeStringStream(values, &buf);
  EXPECT_EQ(buf[0], 1);  // dictionary mode chosen
  std::vector<std::string> decoded;
  ASSERT_TRUE(DecodeStringStream(Slice(buf), &decoded).ok());
  EXPECT_EQ(decoded, values);
}

TEST(EncodingTest, StringStreamDirectMode) {
  std::vector<std::string> values;
  for (int i = 0; i < 100; ++i) values.push_back("unique_" + std::to_string(i));
  std::string buf;
  EncodeStringStream(values, &buf);
  EXPECT_EQ(buf[0], 0);  // all-distinct: direct mode
  std::vector<std::string> decoded;
  ASSERT_TRUE(DecodeStringStream(Slice(buf), &decoded).ok());
  EXPECT_EQ(decoded, values);
}

TEST(EncodingTest, BoolStreamRoundTripOddLengths) {
  for (size_t n : {0u, 1u, 7u, 8u, 9u, 1000u}) {
    std::vector<bool> values;
    for (size_t i = 0; i < n; ++i) values.push_back(i % 3 == 0);
    std::string buf;
    EncodeBoolStream(values, &buf);
    std::vector<bool> decoded;
    ASSERT_TRUE(DecodeBoolStream(Slice(buf), &decoded).ok());
    EXPECT_EQ(decoded, values);
  }
}

TEST(OrcFileTest, WriteReadRoundTrip) {
  fs::SimFileSystem fs;
  WriterOptions options;
  options.stripe_rows = 100;
  auto writer = OrcWriter::Create(&fs, "/t/f1.orc", TestSchema(), 7, options);
  ASSERT_TRUE(writer.ok());
  const int kRows = 1000;
  for (int i = 0; i < kRows; ++i) {
    ASSERT_TRUE((*writer)->Append(MakeRow(i)).ok());
  }
  ASSERT_TRUE((*writer)->Close().ok());

  auto reader = OrcReader::Open(&fs, "/t/f1.orc");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->file_id(), 7u);
  EXPECT_EQ((*reader)->num_rows(), static_cast<uint64_t>(kRows));
  EXPECT_EQ((*reader)->num_stripes(), 10u);
  EXPECT_EQ((*reader)->schema(), TestSchema());

  OrcRowIterator it(reader->get(), {});
  int count = 0;
  while (it.Next()) {
    EXPECT_EQ(it.row_number(), static_cast<uint64_t>(count));
    EXPECT_EQ(it.row()[0].AsInt64(), count);
    EXPECT_EQ(it.row()[2].AsString(), "name" + std::to_string(count % 100));
    ++count;
  }
  ASSERT_TRUE(it.status().ok());
  EXPECT_EQ(count, kRows);
}

TEST(OrcFileTest, NullHandling) {
  fs::SimFileSystem fs;
  Schema schema({{"a", DataType::kInt64}, {"b", DataType::kString}});
  auto writer = OrcWriter::Create(&fs, "/t/nulls.orc", schema, 1);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append({Value::Int64(1), Value::Null()}).ok());
  ASSERT_TRUE((*writer)->Append({Value::Null(), Value::String("x")}).ok());
  ASSERT_TRUE((*writer)->Append({Value::Null(), Value::Null()}).ok());
  ASSERT_TRUE((*writer)->Close().ok());

  auto reader = OrcReader::Open(&fs, "/t/nulls.orc");
  ASSERT_TRUE(reader.ok());
  auto batch = (*reader)->ReadStripe(0);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->columns[0][0].AsInt64(), 1);
  EXPECT_TRUE(batch->columns[0][1].is_null());
  EXPECT_TRUE(batch->columns[0][2].is_null());
  EXPECT_TRUE(batch->columns[1][0].is_null());
  EXPECT_EQ(batch->columns[1][1].AsString(), "x");
  // Stats count nulls.
  EXPECT_EQ((*reader)->stripe(0).stats[0].null_count, 2u);
  EXPECT_EQ((*reader)->stripe(0).stats[0].value_count, 3u);
}

TEST(OrcFileTest, ColumnProjectionReadsFewerBytes) {
  fs::SimFileSystem fs;
  WriterOptions options;
  options.stripe_rows = 1000;
  auto writer = OrcWriter::Create(&fs, "/t/proj.orc", TestSchema(), 1, options);
  for (int i = 0; i < 5000; ++i) ASSERT_TRUE((*writer)->Append(MakeRow(i)).ok());
  ASSERT_TRUE((*writer)->Close().ok());

  auto reader = OrcReader::Open(&fs, "/t/proj.orc");
  ASSERT_TRUE(reader.ok());

  fs::IoSnapshot before = fs.meter()->Snapshot();
  for (size_t s = 0; s < (*reader)->num_stripes(); ++s) {
    ASSERT_TRUE((*reader)->ReadStripe(s, {0}).ok());
  }
  uint64_t narrow = (fs.meter()->Snapshot() - before).hdfs_bytes_read;

  before = fs.meter()->Snapshot();
  for (size_t s = 0; s < (*reader)->num_stripes(); ++s) {
    ASSERT_TRUE((*reader)->ReadStripe(s).ok());
  }
  uint64_t full = (fs.meter()->Snapshot() - before).hdfs_bytes_read;
  EXPECT_LT(narrow * 2, full);  // projecting 1 of 5 columns reads far less
}

TEST(OrcFileTest, StripeStatsMinMax) {
  fs::SimFileSystem fs;
  WriterOptions options;
  options.stripe_rows = 100;
  Schema schema({{"v", DataType::kInt64}});
  auto writer = OrcWriter::Create(&fs, "/t/stats.orc", schema, 1, options);
  for (int i = 0; i < 300; ++i) ASSERT_TRUE((*writer)->Append({Value::Int64(i)}).ok());
  ASSERT_TRUE((*writer)->Close().ok());

  auto reader = OrcReader::Open(&fs, "/t/stats.orc");
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ((*reader)->num_stripes(), 3u);
  const ColumnStats& stats = (*reader)->stripe(1).stats[0];
  ASSERT_TRUE(stats.has_min_max);
  EXPECT_EQ(stats.min.AsInt64(), 100);
  EXPECT_EQ(stats.max.AsInt64(), 199);
  EXPECT_EQ((*reader)->stripe(1).first_row, 100u);
}

TEST(OrcFileTest, StripeBloomFilterRoundTrip) {
  fs::SimFileSystem fs;
  WriterOptions options;
  options.stripe_rows = 100;
  Schema schema({{"v", DataType::kInt64}, {"s", DataType::kString}});
  auto writer = OrcWriter::Create(&fs, "/t/bloom.orc", schema, 1, options);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE((*writer)
                    ->Append({Value::Int64(i), Value::String("s" + std::to_string(i))})
                    .ok());
  }
  ASSERT_TRUE((*writer)->Close().ok());

  auto reader = OrcReader::Open(&fs, "/t/bloom.orc");
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ((*reader)->num_stripes(), 2u);
  for (size_t s = 0; s < 2; ++s) {
    const StripeInfo& stripe = (*reader)->stripe(s);
    ASSERT_FALSE(stripe.stats[0].bloom.empty());
    ASSERT_FALSE(stripe.stats[1].bloom.empty());
    // Every written value must pass its own stripe's filter (no false
    // negatives, ever).
    const int64_t base = static_cast<int64_t>(s) * 100;
    for (int64_t v = base; v < base + 100; ++v) {
      EXPECT_TRUE(stripe.stats[0].BloomMayContain(Value::Int64(v)));
      EXPECT_TRUE(
          stripe.stats[1].BloomMayContain(Value::String("s" + std::to_string(v))));
    }
  }
  // Values far outside the data are overwhelmingly refuted (~1% FP rate at
  // 10 bits/key; over 200 distinct probes at least one must be refuted, and
  // in practice nearly all are).
  size_t refuted = 0;
  for (int64_t v = 10000; v < 10200; ++v) {
    if (!(*reader)->stripe(0).stats[0].BloomMayContain(Value::Int64(v))) ++refuted;
  }
  EXPECT_GT(refuted, 150u);
}

TEST(OrcFileTest, BloomFiltersCanBeDisabled) {
  fs::SimFileSystem fs;
  WriterOptions options;
  options.stripe_rows = 50;
  options.bloom_filters = false;
  Schema schema({{"v", DataType::kInt64}});
  auto writer = OrcWriter::Create(&fs, "/t/nobloom.orc", schema, 1, options);
  for (int i = 0; i < 50; ++i) ASSERT_TRUE((*writer)->Append({Value::Int64(i)}).ok());
  ASSERT_TRUE((*writer)->Close().ok());
  auto reader = OrcReader::Open(&fs, "/t/nobloom.orc");
  ASSERT_TRUE(reader.ok());
  const ColumnStats& stats = (*reader)->stripe(0).stats[0];
  EXPECT_TRUE(stats.bloom.empty());
  // Without a filter the probe must answer "may match" for anything.
  EXPECT_TRUE(stats.BloomMayContain(Value::Int64(999)));
}

TEST(OrcFileTest, CorruptFooterDetected) {
  fs::SimFileSystem fs;
  auto writer = OrcWriter::Create(&fs, "/t/bad.orc", TestSchema(), 1);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE((*writer)->Append(MakeRow(i)).ok());
  ASSERT_TRUE((*writer)->Close().ok());

  // Flip a footer byte (12 back from the end is inside the footer bytes).
  auto reader_file = fs.NewSequentialFile("/t/bad.orc");
  std::string contents;
  ASSERT_TRUE((*reader_file)->Read(1 << 20, &contents).ok());
  contents[contents.size() - 20] ^= 0x5A;
  auto w = fs.NewWritableFile("/t/bad.orc");
  ASSERT_TRUE((*w)->Append(contents).ok());
  ASSERT_TRUE((*w)->Close().ok());

  EXPECT_FALSE(OrcReader::Open(&fs, "/t/bad.orc").ok());
}

TEST(OrcFileTest, ArityMismatchRejected) {
  fs::SimFileSystem fs;
  auto writer = OrcWriter::Create(&fs, "/t/x.orc", TestSchema(), 1);
  Row short_row{Value::Int64(1)};
  EXPECT_TRUE((*writer)->Append(short_row).IsInvalidArgument());
}

TEST(OrcFileTest, EmptyFileHasZeroRows) {
  fs::SimFileSystem fs;
  auto writer = OrcWriter::Create(&fs, "/t/empty.orc", TestSchema(), 3);
  ASSERT_TRUE((*writer)->Close().ok());
  auto reader = OrcReader::Open(&fs, "/t/empty.orc");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->num_rows(), 0u);
  OrcRowIterator it(reader->get(), {});
  EXPECT_FALSE(it.Next());
  EXPECT_TRUE(it.status().ok());
}

}  // namespace
}  // namespace dtl::orc
