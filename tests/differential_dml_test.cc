// Randomized differential-DML harness (DESIGN.md §12): random
// INSERT/UPDATE/DELETE/COMPACT(full|incremental)/snapshot interleavings are
// executed against a DualTable and, in lockstep, against a trivially correct
// in-memory reference model. After every operation the table must agree with
// the model byte-for-byte on all three read paths (row iterator, batch
// iterator, parallel scan), and every still-pinned snapshot must keep
// replaying exactly the state it was acquired at.
//
// Reproduction: the seed is printed on entry and embedded in every assertion
// message; re-run a failure with DTL_DIFF_SEED=<seed> (and optionally
// DTL_DIFF_OPS=<n> to lengthen the interleaving).
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "dualtable/dual_table.h"
#include "exec/parallel_scan.h"
#include "fs/filesystem.h"

namespace dtl::dual {
namespace {

Schema DiffSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"day", DataType::kDate},
                 {"amount", DataType::kDouble},
                 {"tag", DataType::kString}});
}

Row MakeSeedRow(int64_t id) {
  return Row{Value::Int64(id), Value::Date(id % 36), Value::Double(id * 1.5),
             Value::String("t" + std::to_string(id % 7))};
}

// Canonical rendering of a table state, keyed by the unique id column. Two
// states render identically iff every row is byte-identical.
std::string StateToString(const std::map<int64_t, Row>& state) {
  std::ostringstream out;
  for (const auto& [id, row] : state) out << id << "=>" << dtl::RowToString(row) << '\n';
  return out.str();
}

// [lo, hi) over the id column — the only predicate shape the harness uses,
// so the model can apply it without an expression evaluator.
table::ScanSpec IdRange(int64_t lo, int64_t hi) {
  table::ScanSpec spec;
  spec.predicate_columns = {0};
  spec.predicate = [lo, hi](const Row& row) {
    return !row[0].is_null() && row[0].AsInt64() >= lo && row[0].AsInt64() < hi;
  };
  return spec;
}

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  return env != nullptr ? std::strtoull(env, nullptr, 10) : fallback;
}

class DifferentialHarness {
 public:
  DifferentialHarness(uint64_t seed, uint64_t ops) : seed_(seed), ops_(ops), rng_(seed) {}

  void Run() {
    fs::SimFileSystem fs;
    auto metadata = MetadataTable::Open(&fs);
    ASSERT_TRUE(metadata.ok());
    fs::ClusterModel cluster;
    ThreadPool pool(4);

    DualTableOptions options;
    // Small stripes/batches put every operation near stripe and batch
    // boundaries, where the folding and raw-copy paths actually branch.
    options.writer_options.stripe_rows = 16 + rng_() % 48;
    options.scan_batch_rows = 8 + rng_() % 56;
    options.pool = &pool;
    // Rotate the selection policy: cost-model-derived threshold, rewrite
    // everything with any delta, and a mid density that leaves files behind.
    const double overrides[] = {-1.0, 0.0, 0.35};
    options.incremental_density_override = overrides[rng_() % 3];
    auto table = DualTable::Open(&fs, metadata->get(), &cluster, "diff",
                                 DiffSchema(), options);
    ASSERT_TRUE(table.ok());
    table_ = table->get();
    pool_ = &pool;
    // Pinned snapshots must not outlive this scope: releasing one runs the
    // generation's deferred file GC against `fs`, a local. Drop them on every
    // exit path (including assertion early-returns) before `fs` dies.
    struct PinDropper {
      std::vector<PinnedSnapshot>* pins;
      ~PinDropper() { pins->clear(); }
    } drop_pins{&pinned_};

    while (op_ < ops_) {
      ++op_;
      const uint64_t dice = rng_() % 100;
      if (dice < 25) {
        StepInsert();
      } else if (dice < 50) {
        StepUpdate();
      } else if (dice < 68) {
        StepDelete();
      } else if (dice < 76) {
        SCOPED_TRACE(Where("full compact"));
        ASSERT_TRUE(table_->Compact().ok());
      } else if (dice < 88) {
        StepIncrementalCompact();
      } else {
        StepSnapshot();
      }
      if (HasFatalFailure()) return;
      // Pinned snapshots are cheap to re-check (one row scan each), so they
      // are verified every step; the three-path sweep runs often enough to
      // pin divergence to a short window of operations.
      VerifySnapshots();
      if (HasFatalFailure()) return;
      if (op_ % 4 == 0 || op_ == ops_) {
        VerifyAllPaths();
        if (HasFatalFailure()) return;
      }
    }
  }

 private:
  static bool HasFatalFailure() { return ::testing::Test::HasFatalFailure(); }

  std::string Where(const std::string& what) const {
    return what + " at op " + std::to_string(op_) + " (seed " +
           std::to_string(seed_) + ")";
  }

  // Random existing-id window covering roughly `frac` of the key space.
  std::pair<int64_t, int64_t> RandomRange(double frac) {
    if (model_.empty()) return {0, 0};
    const int64_t span = std::max<int64_t>(
        1, static_cast<int64_t>(static_cast<double>(next_id_) * frac));
    const int64_t lo = static_cast<int64_t>(rng_() % static_cast<uint64_t>(next_id_));
    return {lo, lo + span};
  }

  void StepInsert() {
    SCOPED_TRACE(Where("insert"));
    const size_t n = 1 + rng_() % 48;
    std::vector<Row> rows;
    rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      Row row = MakeSeedRow(next_id_++);
      model_[row[0].AsInt64()] = row;
      rows.push_back(std::move(row));
    }
    ASSERT_TRUE(table_->InsertRows(rows).ok());
  }

  void StepUpdate() {
    auto [lo, hi] = RandomRange(0.05 + (rng_() % 30) * 0.01);
    SCOPED_TRACE(Where("update [" + std::to_string(lo) + "," + std::to_string(hi) + ")"));
    const double amount_delta = static_cast<double>(rng_() % 1000) * 0.25;
    const std::string tag = "u" + std::to_string(op_);
    std::vector<table::Assignment> assigns(2);
    assigns[0].column = 2;
    assigns[0].input_columns = {2};
    assigns[0].compute = [amount_delta](const Row& row) {
      return Value::Double(row[2].AsDouble() + amount_delta);
    };
    assigns[1].column = 3;
    assigns[1].compute = [tag](const Row&) { return Value::String(tag); };
    // A random ratio hint steers the cost model across both plans; whichever
    // plan runs, the visible result must be identical.
    std::optional<double> hint;
    if (rng_() % 2 == 0) hint = (rng_() % 100) * 0.01;
    auto result = table_->UpdateWithHint(IdRange(lo, hi), assigns, hint);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    uint64_t touched = 0;
    for (auto it = model_.lower_bound(lo); it != model_.end() && it->first < hi; ++it) {
      it->second[2] = Value::Double(it->second[2].AsDouble() + amount_delta);
      it->second[3] = Value::String(tag);
      ++touched;
    }
    ASSERT_EQ(result->rows_matched, touched);
  }

  void StepDelete() {
    auto [lo, hi] = RandomRange(0.02 + (rng_() % 15) * 0.01);
    SCOPED_TRACE(Where("delete [" + std::to_string(lo) + "," + std::to_string(hi) + ")"));
    std::optional<double> hint;
    if (rng_() % 2 == 0) hint = (rng_() % 100) * 0.01;
    auto result = table_->DeleteWithHint(IdRange(lo, hi), hint);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    uint64_t touched = 0;
    auto it = model_.lower_bound(lo);
    while (it != model_.end() && it->first < hi) {
      it = model_.erase(it);
      ++touched;
    }
    ASSERT_EQ(result->rows_matched, touched);
  }

  void StepIncrementalCompact() {
    SCOPED_TRACE(Where("incremental compact"));
    auto plan = table_->PreviewIncrementalCompaction();
    ASSERT_TRUE(plan.ok());
    auto stats = table_->CompactIncremental();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    // The plan made outside the writer lock can lag a concurrent DML in
    // general, but this harness is single-threaded: what the preview selected
    // is exactly what the compact rewrote.
    EXPECT_EQ(stats->files_selected, plan->selected_files());
  }

  void StepSnapshot() {
    if (pinned_.size() < 4 && rng_() % 2 == 0) {
      SCOPED_TRACE(Where("acquire snapshot"));
      pinned_.push_back({table_->AcquireSnapshot(), StateToString(model_), op_});
    } else if (!pinned_.empty()) {
      SCOPED_TRACE(Where("release snapshot"));
      pinned_.erase(pinned_.begin() + rng_() % pinned_.size());
    }
  }

  void CollectRows(table::RowIterator* it, std::map<int64_t, Row>* state,
                   std::vector<std::string>* ordered) {
    while (it->Next()) {
      const Row& row = it->row();
      ASSERT_FALSE(row[0].is_null());
      ASSERT_TRUE(state->emplace(row[0].AsInt64(), row).second)
          << "duplicate id " << row[0].AsInt64();
      if (ordered != nullptr) ordered->push_back(dtl::RowToString(row));
    }
    ASSERT_TRUE(it->status().ok()) << it->status().ToString();
  }

  void VerifySnapshots() {
    for (const PinnedSnapshot& pin : pinned_) {
      SCOPED_TRACE(Where("snapshot acquired at op " + std::to_string(pin.acquired_at)));
      auto it = table_->ScanAt(pin.snapshot, table::ScanSpec{});
      ASSERT_TRUE(it.ok());
      std::map<int64_t, Row> got;
      CollectRows(it->get(), &got, nullptr);
      if (HasFatalFailure()) return;
      ASSERT_EQ(StateToString(got), pin.frozen_state);
    }
  }

  void VerifyAllPaths() {
    const std::string want = StateToString(model_);

    SCOPED_TRACE(Where("verify"));
    std::vector<std::string> row_order;
    {
      auto it = table_->Scan(table::ScanSpec{});
      ASSERT_TRUE(it.ok());
      std::map<int64_t, Row> got;
      CollectRows(it->get(), &got, &row_order);
      if (HasFatalFailure()) return;
      ASSERT_EQ(StateToString(got), want) << "row path diverged from the model";
    }
    {
      auto batches = table_->ScanBatches(table::ScanSpec{});
      ASSERT_TRUE(batches.ok());
      std::map<int64_t, Row> got;
      std::vector<std::string> batch_order;
      table::RowBatch batch;
      Row row;
      while ((*batches)->Next(&batch)) {
        for (size_t i = 0; i < batch.size(); ++i) {
          batch.MaterializeRow(i, &row);
          ASSERT_TRUE(got.emplace(row[0].AsInt64(), row).second);
          batch_order.push_back(dtl::RowToString(row));
        }
      }
      ASSERT_TRUE((*batches)->status().ok()) << (*batches)->status().ToString();
      ASSERT_EQ(StateToString(got), want) << "batch path diverged from the model";
      ASSERT_EQ(batch_order, row_order) << "batch path order diverged from row path";
    }
    {
      exec::ParallelScanOptions popts;
      popts.pool = pool_;
      popts.parallelism = 3;
      exec::ParallelScanner scanner(table_, table::ScanSpec{}, popts);
      auto rows = scanner.CollectRows();
      ASSERT_TRUE(rows.ok()) << rows.status().ToString();
      std::vector<std::string> parallel_order;
      parallel_order.reserve(rows->size());
      for (const Row& row : *rows) parallel_order.push_back(dtl::RowToString(row));
      ASSERT_EQ(parallel_order, row_order) << "parallel path diverged from row path";
    }
  }

  struct PinnedSnapshot {
    SnapshotPtr snapshot;
    std::string frozen_state;
    uint64_t acquired_at;
  };

  const uint64_t seed_;
  const uint64_t ops_;
  std::mt19937_64 rng_;
  DualTable* table_ = nullptr;
  ThreadPool* pool_ = nullptr;
  std::map<int64_t, Row> model_;
  std::vector<PinnedSnapshot> pinned_;
  int64_t next_id_ = 0;
  uint64_t op_ = 0;
};

TEST(DifferentialDmlTest, RandomInterleavingsMatchReferenceModel) {
  // Fresh entropy every run (this is a property test); DTL_DIFF_SEED pins a
  // failing interleaving for replay.
  const uint64_t base = EnvOr("DTL_DIFF_SEED", std::random_device{}());
  const uint64_t ops = EnvOr("DTL_DIFF_OPS", 120);
  const uint64_t iterations = std::getenv("DTL_DIFF_SEED") != nullptr ? 1 : 3;
  for (uint64_t i = 0; i < iterations; ++i) {
    const uint64_t seed = base + i;
    std::fprintf(stderr, "differential-dml seed %llu (replay: DTL_DIFF_SEED=%llu)\n",
                 static_cast<unsigned long long>(seed),
                 static_cast<unsigned long long>(seed));
    DifferentialHarness harness(seed, ops);
    harness.Run();
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// The fixed-seed companion keeps one deterministic interleaving in every CI
// run (the randomized test above rotates coverage across runs).
TEST(DifferentialDmlTest, FixedSeedInterleavingMatchesReferenceModel) {
  if (std::getenv("DTL_DIFF_SEED") != nullptr) GTEST_SKIP();
  DifferentialHarness harness(20260808, 160);
  harness.Run();
}

}  // namespace
}  // namespace dtl::dual
