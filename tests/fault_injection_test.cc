// Unit and regression tests for the SimFileSystem fault-injection layer and
// for the corruption detection it is designed to exercise: WAL record CRCs,
// SSTable block/index/bloom CRCs, and the master-table manifest CRC.
#include <gtest/gtest.h>

#include "dualtable/dual_table.h"
#include "fs/fault_injection.h"
#include "fs/filesystem.h"
#include "kv/sstable.h"
#include "kv/store.h"
#include "kv/wal.h"

namespace dtl {
namespace {

using fs::FaultMode;
using fs::FaultOp;
using fs::FaultPolicy;

kv::Cell MakeCell(const std::string& row, uint32_t qualifier, uint64_t ts,
                  const std::string& value) {
  kv::Cell cell;
  cell.key.row = row;
  cell.key.qualifier = qualifier;
  cell.key.timestamp = ts;
  cell.value.type = kv::CellType::kPut;
  cell.value.value = value;
  return cell;
}

// --- FaultPolicy matching ------------------------------------------------------

TEST(FaultPolicyTest, EmptyPolicyMatchesEveryMutatingOp) {
  FaultPolicy policy;
  EXPECT_TRUE(policy.Matches(FaultOp::kAppend, "/a/b"));
  EXPECT_TRUE(policy.Matches(FaultOp::kSync, "/x"));
  EXPECT_TRUE(policy.Matches(FaultOp::kDelete, ""));
}

TEST(FaultPolicyTest, PathSubstringAndOpListRestrictMatches) {
  FaultPolicy policy;
  policy.path_substring = "wal_";
  policy.ops = {FaultOp::kSync};
  EXPECT_TRUE(policy.Matches(FaultOp::kSync, "/hbase/t/wal_000001.log"));
  EXPECT_FALSE(policy.Matches(FaultOp::kAppend, "/hbase/t/wal_000001.log"));
  EXPECT_FALSE(policy.Matches(FaultOp::kSync, "/hbase/t/sst_000001.sst"));
}

// --- Error-once and crash modes ------------------------------------------------

TEST(FaultInjectionTest, ErrorOnceFailsExactlyOneOperation) {
  fs::SimFileSystem fs;
  auto file = fs.NewWritableFile("/f");
  ASSERT_TRUE(file.ok());
  FaultPolicy policy;
  policy.mode = FaultMode::kErrorOnce;
  policy.ops = {FaultOp::kAppend};
  policy.trigger_after_ops = 2;
  fs.SetFaultPolicy(policy);
  EXPECT_TRUE((*file)->Append("a").ok());
  EXPECT_TRUE((*file)->Append("b").IsIoError());  // second matching op fires
  EXPECT_TRUE((*file)->Append("c").ok());         // error-once: recovered
  EXPECT_FALSE(fs.HasCrashed());
  EXPECT_TRUE((*file)->Close().ok());
}

TEST(FaultInjectionTest, CrashFailsAllMutatingOpsUntilCleared) {
  fs::SimFileSystem fs;
  auto file = fs.NewWritableFile("/dir/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("hello").ok());
  ASSERT_TRUE((*file)->Sync().ok());

  FaultPolicy policy;
  policy.mode = FaultMode::kCrash;
  policy.ops = {FaultOp::kCreate};
  fs.SetFaultPolicy(policy);
  EXPECT_TRUE(fs.NewWritableFile("/dir/g").status().IsIoError());
  EXPECT_TRUE(fs.HasCrashed());
  // Every mutating op now fails, whatever its path or kind.
  EXPECT_TRUE((*file)->Append("x").IsIoError());
  EXPECT_TRUE(fs.Rename("/dir/f", "/dir/h").IsIoError());
  EXPECT_TRUE(fs.Delete("/dir/f").IsIoError());
  // Reads of previously synced data still work (the "disk" survived).
  auto contents = fs.NewRandomAccessFile("/dir/f");
  ASSERT_TRUE(contents.ok());
  std::string out;
  ASSERT_TRUE((*contents)->ReadAt(0, 5, &out).ok());
  EXPECT_EQ(out, "hello");

  fs.ClearFaultPolicy();  // "restart"
  EXPECT_FALSE(fs.HasCrashed());
  EXPECT_TRUE(fs.Delete("/dir/f").ok());
}

TEST(FaultInjectionTest, CrashOnSyncLosesUnsyncedTail) {
  fs::SimFileSystem fs;
  auto file = fs.NewWritableFile("/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("durable").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Append("-lost").ok());

  FaultPolicy policy;
  policy.mode = FaultMode::kCrash;
  policy.ops = {FaultOp::kSync};
  policy.tear_fraction = 0.0;
  fs.SetFaultPolicy(policy);
  EXPECT_TRUE((*file)->Sync().IsIoError());
  file->reset();  // the crashed process drops its writer (lease abort)
  fs.ClearFaultPolicy();

  auto size = fs.FileSize("/f");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 7u);  // only "durable" made it
}

TEST(FaultInjectionTest, TornSyncPublishesPrefixOfNewBytes) {
  fs::SimFileSystem fs;
  auto file = fs.NewWritableFile("/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("0123").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Append("abcdefgh").ok());

  FaultPolicy policy;
  policy.mode = FaultMode::kCrash;
  policy.ops = {FaultOp::kSync};
  policy.tear_fraction = 0.5;
  fs.SetFaultPolicy(policy);
  EXPECT_TRUE((*file)->Sync().IsIoError());
  file->reset();
  fs.ClearFaultPolicy();

  auto reader = fs.NewRandomAccessFile("/f");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->size(), 8u);  // 4 synced + floor(8 * 0.5) torn-in
  std::string out;
  ASSERT_TRUE((*reader)->ReadAt(0, 8, &out).ok());
  EXPECT_EQ(out, "0123abcd");
}

TEST(FaultInjectionTest, MutatingOpCountTracksOperations) {
  fs::SimFileSystem fs;
  const uint64_t before = fs.MutatingOpCount();
  auto file = fs.NewWritableFile("/f");  // create
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("x").ok());  // append
  ASSERT_TRUE((*file)->Close().ok());     // sync (publication)
  ASSERT_TRUE(fs.Delete("/f").ok());      // delete
  EXPECT_EQ(fs.MutatingOpCount() - before, 4u);
}

TEST(FaultInjectionTest, CorruptFileFlipsExactlyOneByte) {
  fs::SimFileSystem fs;
  auto file = fs.NewWritableFile("/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("abcdef").ok());
  ASSERT_TRUE((*file)->Close().ok());
  ASSERT_TRUE(fs.CorruptFile("/f", 2, 0xFF).ok());
  auto reader = fs.NewRandomAccessFile("/f");
  std::string out;
  ASSERT_TRUE((*reader)->ReadAt(0, 6, &out).ok());
  EXPECT_EQ(out[0], 'a');
  EXPECT_EQ(out[1], 'b');
  EXPECT_EQ(out[2], static_cast<char>('c' ^ 0xFF));
  EXPECT_EQ(out[3], 'd');
  EXPECT_TRUE(fs.CorruptFile("/f", 100, 0xFF).IsOutOfRange());
  EXPECT_TRUE(fs.CorruptFile("/missing", 0, 0xFF).IsNotFound());
}

// --- WAL corruption regression -------------------------------------------------

TEST(WalCorruptionTest, BitFlippedMidLogRecordIsCorruption) {
  fs::SimFileSystem fs;
  auto writer = kv::WalWriter::Create(&fs, "/wal", /*sync_interval_bytes=*/1);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*writer)->Append(MakeCell("row" + std::to_string(i), 1, i + 1, "v")).ok());
  }
  ASSERT_TRUE((*writer)->Close().ok());

  // Sanity: clean replay returns all three records.
  std::vector<kv::Cell> cells;
  ASSERT_TRUE(kv::ReplayWal(&fs, "/wal", &cells).ok());
  ASSERT_EQ(cells.size(), 3u);

  // Flip a payload byte of the FIRST record (offset 8 = just past crc+len).
  // Replay must stop with Corruption, not skip it: acknowledged records
  // follow it, and silently resuming past damage would drop them.
  ASSERT_TRUE(fs.CorruptFile("/wal", 8, 0x01).ok());
  cells.clear();
  EXPECT_TRUE(kv::ReplayWal(&fs, "/wal", &cells).IsCorruption());
}

TEST(WalCorruptionTest, BitFlippedLengthWordIsCorruption) {
  fs::SimFileSystem fs;
  auto writer = kv::WalWriter::Create(&fs, "/wal", 1);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(MakeCell("r", 1, 1, "value")).ok());
  ASSERT_TRUE((*writer)->Append(MakeCell("s", 1, 2, "value")).ok());
  ASSERT_TRUE((*writer)->Close().ok());
  // The length word lives at bytes [4,8) of the frame; the CRC covers it, so
  // a flipped low length byte fails the checksum instead of desyncing the
  // record stream.
  ASSERT_TRUE(fs.CorruptFile("/wal", 4, 0x04).ok());
  std::vector<kv::Cell> cells;
  EXPECT_TRUE(kv::ReplayWal(&fs, "/wal", &cells).IsCorruption());
}

TEST(WalCorruptionTest, ImplausiblyLargeLengthIsCorruptionNotTail) {
  fs::SimFileSystem fs;
  // Hand-build a frame claiming a multi-GB record. Even with a matching CRC
  // this must be rejected by the length cap, not treated as a truncated tail.
  std::string body;
  PutFixed32(&body, kv::kMaxWalRecordBytes + 1);
  body += "tiny";
  std::string frame;
  PutFixed32(&frame, Crc32(body.data(), body.size()));
  frame += body;
  auto file = fs.NewWritableFile("/wal");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(frame).ok());
  ASSERT_TRUE((*file)->Close().ok());
  std::vector<kv::Cell> cells;
  EXPECT_TRUE(kv::ReplayWal(&fs, "/wal", &cells).IsCorruption());
}

TEST(WalCorruptionTest, TruncatedTailIsToleratedCleanly) {
  fs::SimFileSystem fs;
  // Large sync interval so records become durable only at explicit Sync().
  auto writer = kv::WalWriter::Create(&fs, "/wal", 1 << 20);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*writer)->Append(MakeCell("row" + std::to_string(i), 1, i + 1, "v")).ok());
  }
  ASSERT_TRUE((*writer)->Sync().ok());
  // Tear the log mid-record via a crash on the next sync: the file keeps the
  // three synced records plus a prefix of the fourth.
  ASSERT_TRUE((*writer)->Append(MakeCell("torn", 1, 4, "vvvvvvvv")).ok());
  FaultPolicy policy;
  policy.mode = FaultMode::kCrash;
  policy.ops = {FaultOp::kSync};
  policy.tear_fraction = 0.5;
  fs.SetFaultPolicy(policy);
  EXPECT_FALSE((*writer)->Sync().ok());
  writer->reset();
  fs.ClearFaultPolicy();

  std::vector<kv::Cell> cells;
  ASSERT_TRUE(kv::ReplayWal(&fs, "/wal", &cells).ok());
  ASSERT_EQ(cells.size(), 3u);  // torn record was never acknowledged
  EXPECT_EQ(cells[2].key.row, "row2");
}

// --- SSTable corruption regression ---------------------------------------------

class SstCorruptionTest : public ::testing::Test {
 protected:
  void WriteTable() {
    auto writer = kv::SstWriter::Create(&fs_, kPath, 100);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 100; ++i) {
      char row[16];
      std::snprintf(row, sizeof(row), "row%03d", i);
      ASSERT_TRUE((*writer)->Add(MakeCell(row, 1, 1, "value" + std::to_string(i))).ok());
    }
    ASSERT_TRUE((*writer)->Finish().ok());
  }

  static constexpr const char* kPath = "/sst";
  fs::SimFileSystem fs_;
};

TEST_F(SstCorruptionTest, FlippedBlockByteSurfacesAsCorruptionOnRead) {
  WriteTable();
  // Offset 10 is inside the first data block (cell payload region).
  ASSERT_TRUE(fs_.CorruptFile(kPath, 10, 0x20).ok());
  auto reader = kv::SstReader::Open(&fs_, kPath);
  ASSERT_TRUE(reader.ok());  // footer/index/bloom are intact
  std::vector<kv::Cell> out;
  Status st = (*reader)->GetVersions("row000", 1, 1, &out);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

TEST_F(SstCorruptionTest, FlippedFooterRegionFailsOpen) {
  WriteTable();
  auto size = fs_.FileSize(kPath);
  ASSERT_TRUE(size.ok());
  // Flip one byte in the index/bloom region just ahead of the footer; Open
  // verifies both CRCs and must refuse the table.
  ASSERT_TRUE(fs_.CorruptFile(kPath, *size - 53, 0x80).ok());
  EXPECT_TRUE(kv::SstReader::Open(&fs_, kPath).status().IsCorruption());
}

TEST_F(SstCorruptionTest, FlippedMagicFailsOpen) {
  WriteTable();
  auto size = fs_.FileSize(kPath);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(fs_.CorruptFile(kPath, *size - 1, 0x01).ok());
  EXPECT_TRUE(kv::SstReader::Open(&fs_, kPath).status().IsCorruption());
}

// --- Master manifest corruption -------------------------------------------------

TEST(ManifestCorruptionTest, CorruptManifestFailsReopen) {
  auto fs = std::make_unique<fs::SimFileSystem>();
  auto metadata = dual::MetadataTable::Open(fs.get());
  ASSERT_TRUE(metadata.ok());
  fs::ClusterModel cluster;
  Schema schema({{"id", DataType::kInt64}});
  {
    auto t = dual::DualTable::Open(fs.get(), metadata->get(), &cluster, "t", schema);
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE((*t)->InsertRows({{Value::Int64(1)}}).ok());
  }
  ASSERT_TRUE(fs->CorruptFile("/warehouse/t/manifest", 1, 0x10).ok());
  auto reopened = dual::DualTable::Open(fs.get(), metadata->get(), &cluster, "t", schema);
  EXPECT_TRUE(reopened.status().IsCorruption());
}

// --- KvStore end-to-end under injected faults -----------------------------------

TEST(KvStoreFaultTest, FailedFlushLeavesStoreWritableAndDurable) {
  fs::SimFileSystem fs;
  kv::KvStoreOptions options;
  options.dir = "/hbase/t";
  options.wal_sync_interval_bytes = 0;  // sync every record
  auto store = kv::KvStore::Open(&fs, options);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*store)->Put("k" + std::to_string(i), 1, "v").ok());
  }
  // Fail the SSTable publication rename once; the flush must fail without
  // wedging the store or losing the memtable.
  FaultPolicy policy;
  policy.mode = FaultMode::kErrorOnce;
  policy.ops = {FaultOp::kRename};
  policy.path_substring = ".sst";
  fs.SetFaultPolicy(policy);
  EXPECT_FALSE((*store)->Flush().ok());
  fs.ClearFaultPolicy();

  // Store still serves reads and writes, and a later flush succeeds.
  auto got = (*store)->Get("k3", 1);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->has_value());
  ASSERT_TRUE((*store)->Put("k20", 1, "v").ok());
  EXPECT_TRUE((*store)->Flush().ok());

  // And the data survives a reopen.
  store->reset();
  auto reopened = kv::KvStore::Open(&fs, options);
  ASSERT_TRUE(reopened.ok());
  for (int i = 0; i < 21; ++i) {
    auto val = (*reopened)->Get("k" + std::to_string(i), 1);
    ASSERT_TRUE(val.ok());
    EXPECT_TRUE(val->has_value()) << "k" << i;
  }
}

}  // namespace
}  // namespace dtl
