// Telemetry-pipeline tests (DESIGN.md §14): deterministic histogram window
// rotation under a ManualTelemetryClock, recorder ring wraparound, the
// Prometheus exposition golden format, the structured query log + SHOW STATS
// SQL surface, and the obs-driven adaptive-maintenance trigger. A TSan stress
// case exercises Observe racing MaybeRotate.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dualtable/dual_table.h"
#include "fs/filesystem.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/recorder.h"
#include "obs/telemetry_clock.h"
#include "sql/session.h"

namespace dtl {
namespace {

constexpr uint64_t kSlotUs = obs::Histogram::kDefaultSlotWidthMicros;

TEST(WindowedHistogramTest, RotationIsDeterministicUnderManualTime) {
  obs::Histogram h;
  // First tick anchors the ring instead of rotating pre-clock data away.
  EXPECT_FALSE(h.MaybeRotate(5 * kSlotUs));
  for (int i = 0; i < 10; ++i) h.Observe(100);
  obs::HistogramSnapshot w = h.WindowSnapshot(8 * kSlotUs, 5 * kSlotUs);
  EXPECT_EQ(w.count, 10u);
  EXPECT_EQ(w.sum, 1000u);

  // A full slot width later the ring advances; the retired slot still counts
  // while it overlaps the window.
  EXPECT_TRUE(h.MaybeRotate(6 * kSlotUs));
  EXPECT_FALSE(h.MaybeRotate(6 * kSlotUs));  // same instant: nothing to do
  for (int i = 0; i < 5; ++i) h.Observe(200);
  w = h.WindowSnapshot(8 * kSlotUs, 6 * kSlotUs);
  EXPECT_EQ(w.count, 15u);
  EXPECT_EQ(w.sum, 2000u);

  // Rotate the ring all the way around: the anchor slot is reused (cleared)
  // and only the slots still inside the window survive.
  for (uint64_t t = 7; t <= 13; ++t) EXPECT_TRUE(h.MaybeRotate(t * kSlotUs));
  w = h.WindowSnapshot(8 * kSlotUs, 13 * kSlotUs);
  EXPECT_EQ(w.count, 5u);
  EXPECT_EQ(w.sum, 1000u);

  // The lifetime aggregate never rotates.
  obs::HistogramSnapshot life = h.Snapshot();
  EXPECT_EQ(life.count, 15u);
  EXPECT_EQ(life.sum, 2000u);
}

TEST(WindowedHistogramTest, WindowSnapshotAlwaysIncludesActiveSlot) {
  obs::Histogram h;
  EXPECT_FALSE(h.MaybeRotate(kSlotUs));
  h.Observe(7);
  // "now" far past the slot's span with a tiny window: the active slot is
  // current by definition, so the observation still reports.
  obs::HistogramSnapshot w = h.WindowSnapshot(1, 100 * kSlotUs);
  EXPECT_EQ(w.count, 1u);
}

TEST(WindowedHistogramTest, ValueAtQuantileReturnsBucketUpperBound) {
  obs::Histogram h;
  for (int i = 0; i < 100; ++i) h.Observe(7);  // bucket [4, 8)
  obs::HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.ValueAtQuantile(0.50), 7u);
  EXPECT_EQ(snap.ValueAtQuantile(0.99), 7u);
  h.Observe(1000);  // bucket [512, 1024), upper bound clamps to the max
  snap = h.Snapshot();
  EXPECT_EQ(snap.ValueAtQuantile(1.0), 1000u);
  EXPECT_EQ(obs::HistogramSnapshot{}.ValueAtQuantile(0.5), 0u);
}

TEST(WindowedHistogramTest, ObserveRacingRotationIsClean) {
  obs::Histogram h;
  obs::ManualTelemetryClock clock(1);
  EXPECT_FALSE(h.MaybeRotate(clock.NowMicros()));  // anchor
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> observers;
  observers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    observers.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Observe(i & 1023);
    });
  }
  std::thread rotator([&h, &clock] {
    for (int i = 0; i < 1000; ++i) {
      clock.Advance(obs::Histogram::kDefaultSlotWidthMicros);
      h.MaybeRotate(clock.NowMicros());
    }
  });
  for (std::thread& t : observers) t.join();
  rotator.join();
  EXPECT_EQ(h.Snapshot().count, static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRecorderTest, RingWrapsAndDeltasAreExact) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.counter(obs::names::kSqlStatements);
  obs::ManualTelemetryClock clock(1'000);
  obs::RecorderOptions options;
  options.capacity = 4;
  options.clock = &clock;
  obs::MetricsRecorder recorder(&registry, options);

  for (uint64_t i = 1; i <= 10; ++i) {
    c->Inc(i);
    clock.Advance(1'000);
    recorder.Tick();
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.total_samples(), 10u);

  const std::vector<obs::RecorderSample> samples = recorder.Samples();
  ASSERT_EQ(samples.size(), 4u);
  for (size_t i = 0; i < samples.size(); ++i) {
    // Samples 7..10 survive; each delta is exactly what moved between ticks.
    const uint64_t tick = 7 + i;
    EXPECT_EQ(samples[i].t_us, 1'000 + tick * 1'000);
    EXPECT_EQ(samples[i].delta.counters.at("sql.statements"), tick);
    EXPECT_EQ(samples[i].delta.counters.at("recorder.samples"), 1u);
    if (i > 0) {
      EXPECT_GT(samples[i].t_us, samples[i - 1].t_us);
    }
  }

  // JSON-lines: one parseable-looking object per surviving sample.
  const std::string lines = recorder.RenderJsonLines();
  size_t count = 0;
  for (size_t pos = 0; (pos = lines.find("{\"t_us\":", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 4u);
  EXPECT_NE(lines.find("\"metrics\":"), std::string::npos);
}

TEST(MetricsRecorderTest, FirstTickCapturesAbsoluteStateThenDeltas) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.counter(obs::names::kScanRows);
  c->Inc(100);
  obs::ManualTelemetryClock clock(1);
  obs::RecorderOptions options;
  options.clock = &clock;
  obs::MetricsRecorder recorder(&registry, options);
  recorder.Tick();
  c->Inc(5);
  clock.Advance(1);
  recorder.Tick();
  const std::vector<obs::RecorderSample> samples = recorder.Samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].delta.counters.at("scan.rows"), 100u);
  EXPECT_EQ(samples[1].delta.counters.at("scan.rows"), 5u);
}

TEST(PrometheusRenderTest, GoldenFormat) {
  obs::MetricsSnapshot snap;
  snap.counters["maintenance.rounds{t}"] = 3;
  snap.counters["sql.statements"] = 7;
  snap.gauges["maintenance.delta_density_ppm{t}"] = 1500;
  snap.views["scan.rows"] = 42.5;
  obs::Histogram h;
  h.Observe(0);
  h.Observe(3);
  snap.histograms["dualtable.union_read.seconds{t}"] = h.Snapshot();

  const std::string expected =
      "# TYPE dtl_maintenance_rounds counter\n"
      "dtl_maintenance_rounds{label=\"t\"} 3\n"
      "# TYPE dtl_sql_statements counter\n"
      "dtl_sql_statements 7\n"
      "# TYPE dtl_maintenance_delta_density_ppm gauge\n"
      "dtl_maintenance_delta_density_ppm{label=\"t\"} 1500\n"
      "# TYPE dtl_scan_rows gauge\n"
      "dtl_scan_rows 42.5\n"
      "# TYPE dtl_dualtable_union_read_seconds histogram\n"
      "dtl_dualtable_union_read_seconds_bucket{label=\"t\",le=\"0\"} 1\n"
      "dtl_dualtable_union_read_seconds_bucket{label=\"t\",le=\"1\"} 1\n"
      "dtl_dualtable_union_read_seconds_bucket{label=\"t\",le=\"3\"} 2\n"
      "dtl_dualtable_union_read_seconds_bucket{label=\"t\",le=\"+Inf\"} 2\n"
      "dtl_dualtable_union_read_seconds_sum{label=\"t\"} 3\n"
      "dtl_dualtable_union_read_seconds_count{label=\"t\"} 2\n";
  EXPECT_EQ(obs::RenderPrometheusText(snap), expected);
}

TEST(QueryLogTest, SlowFlagAndRingBound) {
  obs::MetricsRegistry registry;
  obs::QueryLogOptions options;
  options.capacity = 2;
  options.slow_threshold_seconds = 0.05;
  obs::QueryLog log(options, &registry);
  for (int i = 0; i < 3; ++i) {
    obs::QueryLogRecord r;
    r.kind = "select";
    r.wall_seconds = i == 2 ? 0.2 : 0.001;
    log.Append(std::move(r));
  }
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.total(), 3u);
  EXPECT_EQ(log.slow_total(), 1u);
  const std::vector<obs::QueryLogRecord> tail = log.Tail(10);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_FALSE(tail[0].slow);
  EXPECT_TRUE(tail[1].slow);
  obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("query_log.records"), 3u);
  EXPECT_EQ(snap.counters.at("query_log.slow"), 1u);
}

// --- SQL surface: the query log + SHOW STATS end to end ----------------------

TEST(TelemetrySqlTest, QueryLogCapturesStatements) {
  sql::SessionOptions options;
  options.slow_query_seconds = 1e-9;  // everything is slow
  auto created = sql::Session::Create(std::move(options));
  ASSERT_TRUE(created.ok());
  auto session = std::move(*created);
  ASSERT_TRUE(session->Execute("CREATE TABLE t (id BIGINT, v BIGINT)").ok());
  ASSERT_TRUE(session->Execute("INSERT INTO t VALUES (1, 10), (2, 20)").ok());
  auto rows = session->Execute("SELECT id FROM t");
  ASSERT_TRUE(rows.ok());
  EXPECT_FALSE(session->Execute("SELECT id FROM missing").ok());

  obs::QueryLog* log = session->query_log();
  ASSERT_NE(log, nullptr);
  EXPECT_EQ(log->total(), 4u);
  EXPECT_EQ(log->slow_total(), 4u);
  const std::vector<obs::QueryLogRecord> tail = log->Tail(10);
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail[0].kind, "create");
  EXPECT_EQ(tail[1].kind, "insert");
  EXPECT_EQ(tail[1].rows, 2u);
  EXPECT_EQ(tail[2].kind, "select");
  EXPECT_EQ(tail[2].rows, 2u);
  EXPECT_EQ(tail[2].sql, "SELECT id FROM t");
  EXPECT_GT(tail[2].wall_seconds, 0.0);
  EXPECT_GT(tail[2].bytes_decoded, 0u);
  EXPECT_FALSE(tail[3].ok);
  EXPECT_FALSE(tail[3].error.empty());
}

TEST(TelemetrySqlTest, ShowStatsSurfaces) {
  auto created = sql::Session::Create();
  ASSERT_TRUE(created.ok());
  auto session = std::move(*created);
  ASSERT_TRUE(session->Execute("CREATE TABLE t (id BIGINT)").ok());
  ASSERT_TRUE(session->Execute("INSERT INTO t VALUES (1), (2), (3)").ok());
  ASSERT_TRUE(session->Execute("SELECT * FROM t").ok());

  auto summary = session->Execute("SHOW STATS");
  ASSERT_TRUE(summary.ok());
  ASSERT_EQ(summary->column_names.size(), 3u);
  EXPECT_EQ(summary->column_names[0], "metric");
  bool saw_statements = false;
  for (const Row& row : summary->rows) {
    if (row[0].AsString() == "sql.statements") {
      saw_statements = true;
      EXPECT_EQ(row[1].AsString(), "counter");
      EXPECT_GE(row[2].AsDouble(), 3.0);
    }
  }
  EXPECT_TRUE(saw_statements);

  auto hist = session->Execute("SHOW STATS HISTOGRAMS");
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(hist->column_names.front(), "histogram");
  bool saw_union_read = false;
  for (const Row& row : hist->rows) {
    if (row[0].AsString() == "dualtable.union_read.seconds{t}") saw_union_read = true;
  }
  EXPECT_TRUE(saw_union_read);

  auto queries = session->Execute("SHOW STATS QUERIES");
  ASSERT_TRUE(queries.ok());
  // The SHOW forms themselves are not logged: the three DDL/DML/select
  // statements are the whole log.
  ASSERT_EQ(queries->rows.size(), 3u);
  EXPECT_EQ(queries->rows[2][0].AsString(), "select");
  EXPECT_EQ(session->query_log()->total(), 3u);
}

TEST(TelemetrySqlTest, ShowStatsRequiresObservability) {
  sql::SessionOptions options;
  options.observability = false;
  auto created = sql::Session::Create(std::move(options));
  ASSERT_TRUE(created.ok());
  auto session = std::move(*created);
  EXPECT_EQ(session->query_log(), nullptr);
  EXPECT_EQ(session->recorder(), nullptr);
  EXPECT_FALSE(session->Execute("SHOW STATS").ok());
  EXPECT_FALSE(session->Execute("SHOW STATS QUERIES").ok());
}

TEST(TelemetrySqlTest, WriteStatsFilesProducesBothFormats) {
  auto created = sql::Session::Create();
  ASSERT_TRUE(created.ok());
  auto session = std::move(*created);
  ASSERT_TRUE(session->Execute("CREATE TABLE t (id BIGINT)").ok());
  ASSERT_TRUE(session->Execute("INSERT INTO t VALUES (1)").ok());
  ASSERT_NE(session->recorder(), nullptr);
  session->recorder()->Tick();

  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(session->WriteStatsFiles(dir).ok());
  for (const char* name : {"dtl-stats.jsonl", "dtl-stats.prom"}) {
    const std::string path = dir + "/" + name;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr) << path;
    char buf[16] = {};
    EXPECT_GT(std::fread(buf, 1, sizeof(buf), f), 0u) << path << " is empty";
    std::fclose(f);
    std::remove(path.c_str());
  }
  EXPECT_NE(session->StatsDumpPrometheus().find("# TYPE"), std::string::npos);
  EXPECT_NE(session->StatsDumpJsonLines().find("{\"t_us\":"), std::string::npos);
}

// --- obs-driven adaptive maintenance -----------------------------------------

class AdaptiveMaintenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs_ = std::make_unique<fs::SimFileSystem>();
    auto meta = dual::MetadataTable::Open(fs_.get());
    ASSERT_TRUE(meta.ok());
    metadata_ = std::move(*meta);
    cluster_ = std::make_unique<fs::ClusterModel>();
  }

  Result<std::shared_ptr<dual::DualTable>> OpenTable(dual::DualTableOptions options) {
    options.writer_options.stripe_rows = 32;
    options.plan_mode = dual::DualTableOptions::PlanMode::kForceEdit;
    options.metrics = &registry_;
    options.adaptive_maintenance = true;
    options.telemetry_clock = &clock_;
    return dual::DualTable::Open(fs_.get(), metadata_.get(), cluster_.get(), "adp",
                                 Schema({{"id", DataType::kInt64},
                                         {"amount", DataType::kDouble}}),
                                 options);
  }

  static std::vector<Row> IdRows(int64_t lo, int64_t hi) {
    std::vector<Row> rows;
    for (int64_t i = lo; i < hi; ++i) {
      rows.push_back(Row{Value::Int64(i), Value::Double(i * 0.5)});
    }
    return rows;
  }

  static Status Bump(dual::DualTable* table, int64_t lo, int64_t hi) {
    table::ScanSpec spec;
    spec.predicate_columns = {0};
    spec.predicate = [lo, hi](const Row& row) {
      return !row[0].is_null() && row[0].AsInt64() >= lo && row[0].AsInt64() < hi;
    };
    table::Assignment assign;
    assign.column = 1;
    assign.input_columns = {1};
    assign.compute = [](const Row& row) {
      return Value::Double(row[1].AsDouble() + 1.0);
    };
    return table->Update(spec, {assign}).status();
  }

  uint64_t Count(const char* key) {
    obs::MetricsSnapshot snap = registry_.Snapshot();
    auto it = snap.counters.find(key);
    return it == snap.counters.end() ? 0 : it->second;
  }

  std::unique_ptr<fs::SimFileSystem> fs_;
  std::unique_ptr<dual::MetadataTable> metadata_;
  std::unique_ptr<fs::ClusterModel> cluster_;
  obs::MetricsRegistry registry_;
  obs::ManualTelemetryClock clock_{1};
};

TEST_F(AdaptiveMaintenanceTest, SkipsRoundsWithoutAnyPreviewScan) {
  dual::DualTableOptions options;
  options.incremental_density_override = 0.10;
  options.compact_threshold = 10.0;
  auto table = OpenTable(options);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->InsertRows(IdRows(0, 200)).ok());

  // Clean table: every round is a telemetry-only skip.
  for (int i = 0; i < 3; ++i) (*table)->BackgroundMaintenance();
  EXPECT_EQ(Count("maintenance.rounds{adp}"), 3u);
  EXPECT_EQ(Count("maintenance.skips{adp}"), 3u);
  EXPECT_EQ(Count("maintenance.preview_scans{adp}"), 0u);

  // Density crosses the bar (100 attached cells / 200 master rows = 0.5):
  // one round triggers, previews once, and folds incrementally.
  ASSERT_TRUE(Bump(table->get(), 0, 100).ok());
  (*table)->BackgroundMaintenance();
  EXPECT_EQ(Count("maintenance.triggers{density}"), 1u);
  EXPECT_EQ(Count("maintenance.preview_scans{adp}"), 1u);
  EXPECT_EQ(Count("maintenance.incremental_compacts{adp}"), 1u);

  // The fold drained the deltas: the next round skips again, and the
  // decision gauge reflects the drained density.
  (*table)->BackgroundMaintenance();
  EXPECT_EQ(Count("maintenance.skips{adp}"), 4u);
  EXPECT_EQ(Count("maintenance.preview_scans{adp}"), 1u);
  EXPECT_EQ(registry_.Snapshot().gauges.at("maintenance.delta_density_ppm{adp}"), 0);
}

TEST_F(AdaptiveMaintenanceTest, LatencyWindowBreachTriggersMaintenance) {
  dual::DualTableOptions options;
  options.incremental_density_override = 0.90;  // density trigger out of the way
  options.compact_threshold = 10.0;             // byte trigger out of the way
  options.adaptive_latency_slo_seconds = 0.050;
  options.adaptive_min_window_count = 16;
  auto table = OpenTable(options);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->InsertRows(IdRows(0, 64)).ok());

  // Anchor the latency window, then record 20 union reads at 200ms — p95
  // lands 4x over the 50ms SLO.
  (*table)->BackgroundMaintenance();
  EXPECT_EQ(Count("maintenance.skips{adp}"), 1u);
  obs::Histogram* union_read =
      registry_.histogram(obs::names::kDualUnionReadSeconds, "adp");
  for (int i = 0; i < 20; ++i) union_read->ObserveSeconds(0.200);
  clock_.Advance(1'000'000);

  (*table)->BackgroundMaintenance();
  EXPECT_EQ(Count("maintenance.triggers{latency}"), 1u);
  EXPECT_EQ(Count("maintenance.preview_scans{adp}"), 1u);
  EXPECT_GT(registry_.Snapshot().gauges.at("maintenance.union_read_p95_us{adp}"),
            50'000);

  // Below the minimum window count the trigger stays silent: rotate the 20
  // observations out of the 8-second window and verify the round skips.
  clock_.Advance(60'000'000);
  (*table)->BackgroundMaintenance();
  EXPECT_EQ(Count("maintenance.triggers{latency}"), 1u);
  EXPECT_EQ(Count("maintenance.skips{adp}"), 2u);
}

}  // namespace
}  // namespace dtl
