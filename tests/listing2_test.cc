// Executable reproduction of the paper's Section II-B example: the SQL
// UPDATE of Listing 1 (set tj_tqxsqk_r.qryhs from an aggregate over
// tj_tqxs_r) and its tortured HiveQL translation of Listing 2 (INSERT
// OVERWRITE with a LEFT OUTER JOIN against a grouped subquery and an IF to
// keep unrelated rows intact) must produce identical tables — and the
// DualTable EDIT path must do it while writing only the modified cells,
// whereas the Listing-2 path rewrites every record and every column.
#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "sql/session.h"

namespace dtl {
namespace {

constexpr int64_t kVDate = 736010;

class Listing2Test : public ::testing::Test {
 protected:
  void SetUp() override {
    auto session = sql::Session::Create();
    ASSERT_TRUE(session.ok());
    session_ = std::move(*session);
  }

  sql::QueryResult Run(const std::string& sqltext) {
    auto result = session_->Execute(sqltext);
    EXPECT_TRUE(result.ok()) << sqltext << " -> " << result.status().ToString();
    return result.ok() ? *result : sql::QueryResult{};
  }

  /// Creates and fills one pair of the example's tables under a prefix.
  void MakeTables(const std::string& prefix, const std::string& kind) {
    Run("CREATE TABLE " + prefix +
        "_tqxsqk (dwdm STRING, rq BIGINT, glfs BIGINT, cjfs BIGINT, qryhs BIGINT, "
        "extra DOUBLE) STORED AS " + kind);
    Run("CREATE TABLE " + prefix +
        "_tqxs (tjrq BIGINT, glfs BIGINT, zjfs BIGINT, dwdm STRING, sfqr BIGINT, "
        "tqyhs BIGINT) STORED AS " + kind);

    // Target table: 3 orgs x 2 glfs x 2 cjfs x 3 dates; only rq = kVDate rows
    // should be touched.
    std::string target = "INSERT INTO " + prefix + "_tqxsqk VALUES ";
    bool first = true;
    for (int org = 0; org < 3; ++org) {
      for (int glfs = 1; glfs <= 2; ++glfs) {
        for (int cjfs = 1; cjfs <= 2; ++cjfs) {
          for (int64_t rq : {kVDate - 1, kVDate, kVDate + 1}) {
            if (!first) target += ", ";
            first = false;
            target += "('org" + std::to_string(org) + "', " + std::to_string(rq) + ", " +
                      std::to_string(glfs) + ", " + std::to_string(cjfs) +
                      ", -1, 0.5)";
          }
        }
      }
    }
    Run(target);

    // Source table: several confirmed (sfqr=1) and unconfirmed measurements
    // per group; some target groups have no source rows at all.
    std::string source = "INSERT INTO " + prefix + "_tqxs VALUES ";
    first = true;
    int value = 1;
    for (int org = 0; org < 2; ++org) {  // org2 has NO source rows
      for (int glfs = 1; glfs <= 2; ++glfs) {
        for (int zjfs = 1; zjfs <= 2; ++zjfs) {
          for (int copy = 0; copy < 3; ++copy) {
            if (!first) source += ", ";
            first = false;
            const int sfqr = copy == 2 ? 0 : 1;  // one unconfirmed row per group
            source += "(" + std::to_string(kVDate) + ", " + std::to_string(glfs) +
                      ", " + std::to_string(zjfs) + ", 'org" + std::to_string(org) +
                      "', " + std::to_string(sfqr) + ", " + std::to_string(value++) +
                      ")";
          }
        }
      }
    }
    Run(source);
  }

  std::multiset<std::string> Fingerprint(const std::string& name) {
    auto rows = Run("SELECT * FROM " + name);
    std::multiset<std::string> out;
    for (const Row& row : rows.rows) out.insert(RowToString(row));
    return out;
  }

  std::unique_ptr<sql::Session> session_;
};

TEST_F(Listing2Test, Listing1OnDualTableEqualsListing2OnHive) {
  MakeTables("dual", "dualtable");
  MakeTables("hive", "hive");

  // ---- Listing 2 on Hive: the paper's literal HiveQL translation ----
  Run(std::string("INSERT OVERWRITE TABLE hive_tqxsqk ") +
      "SELECT t.dwdm, t.rq, t.glfs, t.cjfs, "
      "IF(t.rq = " + std::to_string(kVDate) + ", g.qryhs, t.qryhs) qryhs, t.extra "
      "FROM hive_tqxsqk t LEFT OUTER JOIN ("
      "  SELECT SUM(k.tqyhs) qryhs, k.tjrq tjrq, k.glfs glfs, k.zjfs zjfs, k.dwdm dwdm"
      "  FROM hive_tqxs k WHERE k.sfqr = 1"
      "  GROUP BY k.tjrq, k.glfs, k.zjfs, k.dwdm) g "
      "ON t.rq = g.tjrq AND g.glfs = t.glfs AND g.zjfs = t.cjfs AND g.dwdm = t.dwdm");

  // ---- Listing 1 on DualTable: aggregate once, then a native UPDATE that
  // writes only the modified qryhs cells into the attached table ----
  auto groups = Run(
      "SELECT tjrq, glfs, zjfs, dwdm, SUM(tqyhs) s FROM dual_tqxs "
      "WHERE sfqr = 1 GROUP BY tjrq, glfs, zjfs, dwdm");
  auto sums = std::make_shared<std::unordered_map<std::string, int64_t>>();
  for (const Row& row : groups.rows) {
    std::string key = row[0].ToString() + "|" + row[1].ToString() + "|" +
                      row[2].ToString() + "|" + row[3].ToString();
    (*sums)[key] = row[4].AsInt64();
  }

  auto entry = session_->catalog()->Lookup("dual_tqxsqk");
  ASSERT_TRUE(entry.ok());
  auto* dual = dynamic_cast<dual::DualTable*>(entry->table.get());
  ASSERT_NE(dual, nullptr);

  table::ScanSpec filter;
  filter.predicate_columns = {1};  // rq
  filter.predicate = [](const Row& row) {
    return !row[1].is_null() && row[1].AsInt64() == kVDate;
  };
  table::Assignment assign;
  assign.column = 4;  // qryhs
  assign.input_columns = {0, 1, 2, 3};
  assign.compute = [sums](const Row& row) {
    std::string key = row[1].ToString() + "|" + row[2].ToString() + "|" +
                      row[3].ToString() + "|" + row[0].ToString();
    auto it = sums->find(key);
    // Scalar subquery with no rows yields NULL, like Listing 2's unmatched
    // LEFT OUTER JOIN.
    return it == sums->end() ? Value::Null() : Value::Int64(it->second);
  };
  auto updated = dual->UpdateWithHint(filter, {assign}, 1.0 / 3.0);
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->plan, table::DmlPlan::kEdit);
  EXPECT_EQ(updated->rows_matched, 12u);  // one date of three

  // ---- the two paths converge to the identical logical table ----
  EXPECT_EQ(Fingerprint("dual_tqxsqk"), Fingerprint("hive_tqxsqk"));

  // And the paper's I/O asymmetry holds: DualTable wrote only the changed
  // cells; Listing 2 rewrote all 36 rows x 6 columns.
  auto check = Run("SELECT COUNT(*) FROM dual_tqxsqk WHERE qryhs IS NULL");
  // org2 rows at kVDate (4 of them) had no source group -> NULL.
  EXPECT_EQ(check.rows[0][0].AsInt64(), 4);
}

TEST_F(Listing2Test, InsertOverwriteSelfReferenceWorks) {
  Run("CREATE TABLE t (id BIGINT, v BIGINT)");
  Run("INSERT INTO t VALUES (1, 10), (2, 20)");
  // Self-referencing overwrite (Listing 2 reads the table it overwrites).
  Run("INSERT OVERWRITE TABLE t SELECT id, v * 2 FROM t");
  auto check = Run("SELECT SUM(v) FROM t");
  EXPECT_EQ(check.rows[0][0].AsInt64(), 60);
}

TEST_F(Listing2Test, InsertOverwriteReplacesAcrossAllKinds) {
  for (const char* kind : {"dualtable", "hive", "hbase", "acid"}) {
    std::string name = std::string("o_") + kind;
    Run("CREATE TABLE " + name + " (id BIGINT, v BIGINT) STORED AS " + kind);
    Run("INSERT INTO " + name + " VALUES (1, 1), (2, 2), (3, 3)");
    Run("UPDATE " + name + " SET v = 99 WHERE id = 1 WITH RATIO 0.3");
    Run("INSERT OVERWRITE TABLE " + name + " SELECT id, v FROM " + name +
        " WHERE id <= 2");
    auto check = Run("SELECT COUNT(*), SUM(v) FROM " + name);
    EXPECT_EQ(check.rows[0][0].AsInt64(), 2) << kind;
    EXPECT_EQ(check.rows[0][1].AsInt64(), 101) << kind;  // 99 + 2
  }
}

TEST_F(Listing2Test, DerivedTableInFromAndJoin) {
  Run("CREATE TABLE sales (region STRING, amount BIGINT)");
  Run("INSERT INTO sales VALUES ('e', 10), ('e', 20), ('w', 5)");
  auto direct = Run(
      "SELECT s.region, s.total FROM "
      "(SELECT region region, SUM(amount) total FROM sales GROUP BY region) s "
      "WHERE s.total > 6 ORDER BY s.region");
  ASSERT_EQ(direct.rows.size(), 1u);
  EXPECT_EQ(direct.rows[0][0].AsString(), "e");
  EXPECT_EQ(direct.rows[0][1].AsInt64(), 30);
}

}  // namespace
}  // namespace dtl
