#include <gtest/gtest.h>

#include "common/bloom.h"
#include "common/coding.h"
#include "common/random.h"
#include "common/schema.h"
#include "common/skiplist.h"
#include "common/status.h"
#include "common/value.h"

namespace dtl {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.ToString(), "not found: missing thing");
}

TEST(StatusTest, ResultHoldsValueOrStatus) {
  Result<int> ok_result(42);
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(*ok_result, 42);
  Result<int> err_result(Status::IoError("disk gone"));
  ASSERT_FALSE(err_result.ok());
  EXPECT_TRUE(err_result.status().IsIoError());
  EXPECT_EQ(err_result.ValueOr(-1), -1);
}

TEST(CodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xDEADBEEF);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(DecodeFixed32(buf.data()), 0xDEADBEEFu);
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  EXPECT_EQ(DecodeFixed64(buf.data()), 0x0123456789ABCDEFull);
}

TEST(CodingTest, VarintRoundTripBoundaries) {
  const uint64_t cases[] = {0,     1,     127,        128,
                            16383, 16384, 0xFFFFFFFF, UINT64_MAX};
  for (uint64_t v : cases) {
    std::string buf;
    PutVarint64(&buf, v);
    Slice in(buf);
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(&in, &decoded).ok());
    EXPECT_EQ(decoded, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(CodingTest, VarintTruncatedIsCorruption) {
  std::string buf;
  PutVarint64(&buf, 300);  // two bytes
  Slice in(buf.data(), 1);
  uint64_t v = 0;
  EXPECT_TRUE(GetVarint64(&in, &v).IsCorruption());
}

TEST(CodingTest, ZigZagRoundTrip) {
  const int64_t cases[] = {0, 1, -1, 1234567, -1234567, INT64_MAX, INT64_MIN};
  for (int64_t v : cases) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
}

TEST(CodingTest, ZigZagSmallMagnitudesAreSmall) {
  EXPECT_LT(ZigZagEncode(-3), 10u);  // small negatives encode compactly
}

TEST(CodingTest, BigEndianPreservesOrder) {
  std::string a, b;
  PutBigEndian64(&a, 100);
  PutBigEndian64(&b, 200);
  EXPECT_LT(a, b);
  EXPECT_EQ(DecodeBigEndian64(a.data()), 100u);
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice("hello"));
  PutLengthPrefixed(&buf, Slice(""));
  Slice in(buf);
  Slice a, b;
  ASSERT_TRUE(GetLengthPrefixed(&in, &a).ok());
  ASSERT_TRUE(GetLengthPrefixed(&in, &b).ok());
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_TRUE(b.empty());
}

TEST(CodingTest, Crc32KnownProperties) {
  EXPECT_EQ(Crc32("", 0), Crc32("", 0));
  EXPECT_NE(Crc32("abc", 3), Crc32("abd", 3));
}

TEST(BloomTest, NoFalseNegatives) {
  BloomFilter bloom(1000);
  for (int i = 0; i < 1000; ++i) {
    bloom.Add(Slice("key" + std::to_string(i)));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(bloom.MayContain(Slice("key" + std::to_string(i))));
  }
}

TEST(BloomTest, LowFalsePositiveRate) {
  BloomFilter bloom(1000, 10);
  for (int i = 0; i < 1000; ++i) bloom.Add(Slice("key" + std::to_string(i)));
  int false_positives = 0;
  for (int i = 0; i < 10000; ++i) {
    if (bloom.MayContain(Slice("other" + std::to_string(i)))) ++false_positives;
  }
  EXPECT_LT(false_positives, 500);  // ~1% expected, 5% generous bound
}

TEST(BloomTest, SerializeRoundTrip) {
  BloomFilter bloom(100);
  bloom.Add(Slice("alpha"));
  bloom.Add(Slice("beta"));
  std::string bytes = bloom.Serialize();
  BloomFilter restored = BloomFilter::Deserialize(Slice(bytes));
  EXPECT_TRUE(restored.MayContain(Slice("alpha")));
  EXPECT_TRUE(restored.MayContain(Slice("beta")));
}

TEST(SkipListTest, InsertFindOrder) {
  SkipList<std::string, int> list;
  EXPECT_TRUE(list.Insert("b", 2));
  EXPECT_TRUE(list.Insert("a", 1));
  EXPECT_TRUE(list.Insert("c", 3));
  EXPECT_FALSE(list.Insert("b", 20));  // overwrite
  ASSERT_NE(list.Find("b"), nullptr);
  EXPECT_EQ(*list.Find("b"), 20);
  EXPECT_EQ(list.Find("zz"), nullptr);
  EXPECT_EQ(list.size(), 3u);

  SkipList<std::string, int>::Iterator it(&list);
  it.SeekToFirst();
  std::string prev;
  int count = 0;
  for (; it.Valid(); it.Next()) {
    EXPECT_LT(prev, it.key());
    prev = it.key();
    ++count;
  }
  EXPECT_EQ(count, 3);
}

TEST(SkipListTest, SeekPositionsAtLowerBound) {
  SkipList<std::string, int> list;
  for (int i = 0; i < 100; i += 2) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "%03d", i);
    list.Insert(buf, i);
  }
  SkipList<std::string, int>::Iterator it(&list);
  it.Seek("051");  // absent; next is 052
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), "052");
}

TEST(SkipListTest, LargeInsertKeepsOrder) {
  SkipList<int64_t, int64_t> list;
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    int64_t k = static_cast<int64_t>(rng.Uniform(1000000));
    list.Insert(k, k * 2);
  }
  SkipList<int64_t, int64_t>::Iterator it(&list);
  it.SeekToFirst();
  int64_t prev = -1;
  while (it.Valid()) {
    EXPECT_GT(it.key(), prev);
    EXPECT_EQ(it.value(), it.key() * 2);
    prev = it.key();
    it.Next();
  }
}

TEST(ValueTest, NullOrderingAndEquality) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_LT(Value::Null().Compare(Value::Int64(0)), 0);  // nulls sort first
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, CrossNumericComparison) {
  EXPECT_EQ(Value::Int64(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Int64(3).Compare(Value::Double(3.5)), 0);
  EXPECT_GT(Value::Double(4.0).Compare(Value::Int64(3)), 0);
}

TEST(ValueTest, EncodeDecodeAllKinds) {
  for (const Value& v :
       {Value::Null(), Value::Int64(-42), Value::Double(3.25),
        Value::String("hello world"), Value::Bool(true), Value::Int64(INT64_MIN)}) {
    std::string buf;
    v.EncodeTo(&buf);
    Slice in(buf);
    Value decoded;
    ASSERT_TRUE(Value::DecodeFrom(&in, &decoded).ok());
    EXPECT_EQ(decoded.Compare(v), 0);
    EXPECT_EQ(decoded.is_null(), v.is_null());
    EXPECT_TRUE(in.empty());
  }
}

TEST(ValueTest, DecodeTruncatedFails) {
  std::string buf;
  Value::String("long string").EncodeTo(&buf);
  Slice in(buf.data(), buf.size() - 3);
  Value v;
  EXPECT_FALSE(Value::DecodeFrom(&in, &v).ok());
}

TEST(ValueTest, HashCodeConsistentForEqualNumerics) {
  EXPECT_EQ(Value::Int64(7).HashCode(), Value::Double(7.0).HashCode());
}

TEST(SchemaTest, IndexOfIsCaseInsensitive) {
  Schema schema({{"Alpha", DataType::kInt64}, {"beta", DataType::kString}});
  EXPECT_EQ(schema.IndexOf("alpha"), 0u);
  EXPECT_EQ(schema.IndexOf("BETA"), 1u);
  EXPECT_FALSE(schema.IndexOf("gamma").has_value());
}

TEST(SchemaTest, EncodeDecodeRoundTrip) {
  Schema schema({{"a", DataType::kInt64},
                 {"b", DataType::kDouble},
                 {"c", DataType::kString},
                 {"d", DataType::kBool},
                 {"e", DataType::kDate}});
  std::string buf;
  schema.EncodeTo(&buf);
  Slice in(buf);
  Schema decoded;
  ASSERT_TRUE(Schema::DecodeFrom(&in, &decoded).ok());
  EXPECT_EQ(decoded, schema);
}

TEST(SchemaTest, RowEncodeDecodeRoundTrip) {
  Row row{Value::Int64(1), Value::Null(), Value::String("x")};
  std::string buf;
  EncodeRow(row, &buf);
  Slice in(buf);
  Row decoded;
  ASSERT_TRUE(DecodeRow(&in, &decoded).ok());
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[0].AsInt64(), 1);
  EXPECT_TRUE(decoded[1].is_null());
  EXPECT_EQ(decoded[2].AsString(), "x");
}

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, BernoulliRoughlyCalibrated) {
  Random rng(5);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.02);
}

TEST(ParseDataTypeTest, AcceptsHiveAliases) {
  EXPECT_TRUE(ParseDataType("BIGINT").ok());
  EXPECT_TRUE(ParseDataType("int").ok());
  EXPECT_TRUE(ParseDataType("varchar").ok());
  EXPECT_FALSE(ParseDataType("blob").ok());
}

}  // namespace
}  // namespace dtl
