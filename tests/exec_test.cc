#include <gtest/gtest.h>

#include "exec/mapreduce.h"
#include "exec/operators.h"

namespace dtl::exec {
namespace {

std::unique_ptr<Operator> MakeRows(std::vector<Row> rows) {
  return std::make_unique<RowsOperator>(std::move(rows));
}

Row R(std::initializer_list<int64_t> values) {
  Row row;
  for (int64_t v : values) row.push_back(Value::Int64(v));
  return row;
}

ValueFn Col(size_t i) {
  return [i](const Row& row) { return row[i]; };
}

TEST(OperatorTest, FilterKeepsMatches) {
  auto plan = std::make_unique<FilterOperator>(
      MakeRows({R({1}), R({2}), R({3}), R({4})}),
      [](const Row& row) { return row[0].AsInt64() % 2 == 0; });
  auto rows = Collect(plan.get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][0].AsInt64(), 2);
}

TEST(OperatorTest, ProjectComputes) {
  auto plan = std::make_unique<ProjectOperator>(
      MakeRows({R({3, 4})}),
      std::vector<ValueFn>{[](const Row& row) {
        return Value::Int64(row[0].AsInt64() + row[1].AsInt64());
      }});
  auto rows = Collect(plan.get());
  ASSERT_EQ((*rows)[0][0].AsInt64(), 7);
}

TEST(OperatorTest, InnerHashJoinMatchesKeys) {
  auto probe = MakeRows({R({1, 10}), R({2, 20}), R({3, 30})});
  auto build = MakeRows({R({2, 200}), R({3, 300}), R({3, 301}), R({9, 900})});
  auto plan = std::make_unique<HashJoinOperator>(
      std::move(probe), std::move(build), std::vector<ValueFn>{Col(0)},
      std::vector<ValueFn>{Col(0)}, 2, HashJoinOperator::Kind::kInner);
  auto rows = Collect(plan.get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);  // key2 ×1, key3 ×2
  for (const Row& row : *rows) {
    EXPECT_EQ(row.size(), 4u);
    EXPECT_EQ(row[0].AsInt64(), row[2].AsInt64());
  }
}

TEST(OperatorTest, LeftOuterJoinPreservesProbeRows) {
  auto probe = MakeRows({R({1}), R({2})});
  auto build = MakeRows({R({2, 200})});
  auto plan = std::make_unique<HashJoinOperator>(
      std::move(probe), std::move(build), std::vector<ValueFn>{Col(0)},
      std::vector<ValueFn>{Col(0)}, 2, HashJoinOperator::Kind::kLeftOuter);
  auto rows = Collect(plan.get());
  ASSERT_EQ(rows->size(), 2u);
  // Unmatched probe row gets NULL build columns.
  EXPECT_TRUE((*rows)[0][1].is_null());
  EXPECT_EQ((*rows)[1][2].AsInt64(), 200);
}

TEST(OperatorTest, JoinNullKeysNeverMatch) {
  std::vector<Row> probe_rows = {{Value::Null(), Value::Int64(1)}};
  std::vector<Row> build_rows = {{Value::Null(), Value::Int64(2)}};
  auto plan = std::make_unique<HashJoinOperator>(
      MakeRows(probe_rows), MakeRows(build_rows), std::vector<ValueFn>{Col(0)},
      std::vector<ValueFn>{Col(0)}, 2, HashJoinOperator::Kind::kInner);
  auto rows = Collect(plan.get());
  EXPECT_TRUE(rows->empty());
}

TEST(OperatorTest, AggregateGroupsAndComputes) {
  auto input = MakeRows({R({1, 10}), R({1, 20}), R({2, 5})});
  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggKind::kSum, Col(1)});
  aggs.push_back(AggSpec{AggKind::kCountStar, nullptr});
  aggs.push_back(AggSpec{AggKind::kMax, Col(1)});
  auto plan = std::make_unique<HashAggregateOperator>(
      std::move(input), std::vector<ValueFn>{Col(0)}, std::move(aggs));
  auto rows = Collect(plan.get());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][0].AsInt64(), 1);
  EXPECT_EQ((*rows)[0][1].AsInt64(), 30);
  EXPECT_EQ((*rows)[0][2].AsInt64(), 2);
  EXPECT_EQ((*rows)[0][3].AsInt64(), 20);
}

TEST(OperatorTest, GlobalAggregateOnEmptyInputYieldsOneRow) {
  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggKind::kCountStar, nullptr});
  aggs.push_back(AggSpec{AggKind::kSum, Col(0)});
  auto plan = std::make_unique<HashAggregateOperator>(MakeRows({}), std::vector<ValueFn>{},
                                                      std::move(aggs));
  auto rows = Collect(plan.get());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].AsInt64(), 0);
  EXPECT_TRUE((*rows)[0][1].is_null());  // SUM of nothing is NULL
}

TEST(OperatorTest, AggregatesSkipNulls) {
  std::vector<Row> input = {{Value::Int64(5)}, {Value::Null()}, {Value::Int64(15)}};
  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggKind::kAvg, Col(0)});
  aggs.push_back(AggSpec{AggKind::kCount, Col(0)});
  auto plan = std::make_unique<HashAggregateOperator>(
      MakeRows(input), std::vector<ValueFn>{}, std::move(aggs));
  auto rows = Collect(plan.get());
  EXPECT_DOUBLE_EQ((*rows)[0][0].AsDouble(), 10.0);
  EXPECT_EQ((*rows)[0][1].AsInt64(), 2);
}

TEST(OperatorTest, SortAscendingDescending) {
  auto plan = std::make_unique<SortOperator>(
      MakeRows({R({3, 1}), R({1, 2}), R({2, 3})}), std::vector<ValueFn>{Col(0)},
      std::vector<bool>{false});
  auto rows = Collect(plan.get());
  EXPECT_EQ((*rows)[0][0].AsInt64(), 3);
  EXPECT_EQ((*rows)[2][0].AsInt64(), 1);
}

TEST(OperatorTest, LimitStopsEarly) {
  auto plan = std::make_unique<LimitOperator>(
      MakeRows({R({1}), R({2}), R({3})}), 2);
  auto rows = Collect(plan.get());
  EXPECT_EQ(rows->size(), 2u);
}

// --- MapReduce --------------------------------------------------------------------

std::vector<table::ScanSplit> MakeSplits(std::vector<std::vector<Row>> split_rows) {
  std::vector<table::ScanSplit> splits;
  for (auto& rows : split_rows) {
    auto shared = std::make_shared<std::vector<Row>>(std::move(rows));
    splits.push_back(table::ScanSplit{
        "mem", [shared]() -> Result<std::unique_ptr<table::RowIterator>> {
          class It : public table::RowIterator {
           public:
            explicit It(std::shared_ptr<std::vector<Row>> rows) : rows_(std::move(rows)) {}
            bool Next() override { return ++index_ <= rows_->size(); }
            const Row& row() const override { return (*rows_)[index_ - 1]; }
            const Status& status() const override { return status_; }

           private:
            std::shared_ptr<std::vector<Row>> rows_;
            size_t index_ = 0;
            Status status_;
          };
          return std::unique_ptr<table::RowIterator>(new It(shared));
        }});
  }
  return splits;
}

TEST(MapReduceTest, WordCountStyleAggregation) {
  ThreadPool pool(4);
  auto splits = MakeSplits({{R({1, 10}), R({2, 20})}, {R({1, 30})}, {R({2, 5}), R({1, 1})}});
  MapReduceConfig config;
  config.pool = &pool;
  config.num_reducers = 3;
  MapReduceStats stats;
  auto result = RunMapReduce(
      splits,
      [](const Row& row, uint64_t, std::vector<std::pair<Value, Row>>* out) {
        out->emplace_back(row[0], Row{row[1]});
      },
      [](const Value& key, const std::vector<Row>& values, std::vector<Row>* out) {
        int64_t sum = 0;
        for (const Row& v : values) sum += v[0].AsInt64();
        out->push_back(Row{key, Value::Int64(sum)});
      },
      config, &stats);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  int64_t total = 0;
  for (const Row& row : *result) {
    if (row[0].AsInt64() == 1) EXPECT_EQ(row[1].AsInt64(), 41);
    if (row[0].AsInt64() == 2) EXPECT_EQ(row[1].AsInt64(), 25);
    total += row[1].AsInt64();
  }
  EXPECT_EQ(total, 66);
  EXPECT_EQ(stats.map_tasks, 3u);
  EXPECT_EQ(stats.input_records, 5u);
}

TEST(MapReduceTest, MapOnlyJobConcatenatesInSplitOrder) {
  ThreadPool pool(4);
  auto splits = MakeSplits({{R({1})}, {R({2})}, {R({3})}});
  MapReduceConfig config;
  config.pool = &pool;
  auto result = RunMapReduce(
      splits,
      [](const Row& row, uint64_t, std::vector<std::pair<Value, Row>>* out) {
        out->emplace_back(Value::Null(), row);
      },
      nullptr, config);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 3u);
  EXPECT_EQ((*result)[0][0].AsInt64(), 1);
  EXPECT_EQ((*result)[2][0].AsInt64(), 3);
}

TEST(MapReduceTest, ParallelCountSumsSplits) {
  ThreadPool pool(4);
  auto splits = MakeSplits({{R({1}), R({2})}, {}, {R({3})}});
  auto count = ParallelCount(splits, &pool);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 3u);
}

/// In-memory RowIterator source for feeding the batch adapters.
class VectorRowIterator : public table::RowIterator {
 public:
  explicit VectorRowIterator(std::vector<Row> rows) : rows_(std::move(rows)) {}
  bool Next() override {
    if (index_ >= rows_.size()) return false;
    row_ = rows_[index_++];
    return true;
  }
  const Row& row() const override { return row_; }
  const Status& status() const override { return status_; }

 private:
  std::vector<Row> rows_;
  size_t index_ = 0;
  Row row_;
  Status status_;
};

/// Child operator that fails immediately with an error status.
class FailingOperator : public Operator {
 public:
  bool Next() override {
    status_ = Status::Internal("child exploded");
    return false;
  }
  const Row& row() const override { return EmptyRow(); }
  const Status& status() const override { return status_; }

 private:
  Status status_;
};

TEST(OperatorSafetyTest, RowBeforeNextIsSafe) {
  // row() on a never-advanced materializing operator must not index
  // rows_[-1]; it returns the shared empty row.
  RowsOperator rows({R({1}), R({2})});
  EXPECT_TRUE(rows.row().empty());

  SortOperator sort(MakeRows({R({2}), R({1})}), {Col(0)}, {true});
  EXPECT_TRUE(sort.row().empty());
}

TEST(OperatorSafetyTest, CollectOnEmptyOperatorsIsSafe) {
  RowsOperator empty_rows({});
  EXPECT_TRUE(empty_rows.row().empty());
  auto rows = Collect(&empty_rows);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());

  SortOperator empty_sort(MakeRows({}), {Col(0)}, {true});
  auto sorted = Collect(&empty_sort);
  ASSERT_TRUE(sorted.ok());
  EXPECT_TRUE(sorted->empty());
}

TEST(OperatorSafetyTest, CollectSurfacesChildStatus) {
  SortOperator sort(std::make_unique<FailingOperator>(), {Col(0)}, {true});
  auto rows = Collect(&sort);
  EXPECT_FALSE(rows.ok());
  EXPECT_TRUE(sort.row().empty());  // still safe to touch after the error
}

TEST(BatchOperatorTest, FilterProjectLimitPipeline) {
  // Row source -> batches -> vectorized filter/project/limit -> rows.
  std::vector<Row> input;
  for (int i = 0; i < 20; ++i) input.push_back(R({i, i * 2}));
  auto rows_op = std::make_unique<table::RowToBatchAdapter>(
      std::make_unique<VectorRowIterator>(std::move(input)), 2, 6);
  std::unique_ptr<BatchOperator> plan =
      std::make_unique<BatchScanOperator>(std::move(rows_op));
  plan = std::make_unique<BatchFilterOperator>(
      std::move(plan), [](const Row& row) { return row[0].AsInt64() % 2 == 0; });
  plan = std::make_unique<BatchProjectOperator>(
      std::move(plan),
      std::vector<ValueFn>{Col(1), [](const Row& row) {
                             return Value::Int64(row[0].AsInt64() + 100);
                           }},
      std::vector<int>{1, -1});
  plan = std::make_unique<BatchLimitOperator>(std::move(plan), 4);
  auto out = CollectBatches(plan.get());
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ((*out)[i][0].AsInt64(), static_cast<int64_t>(i * 4));    // col 1 of even rows
    EXPECT_EQ((*out)[i][1].AsInt64(), static_cast<int64_t>(i * 2 + 100));
  }
}

TEST(BatchOperatorTest, ZeroCopyProjectionForwardsSelection) {
  std::vector<Row> input;
  for (int i = 0; i < 8; ++i) input.push_back(R({i, i * 3}));
  std::unique_ptr<BatchOperator> plan = std::make_unique<BatchScanOperator>(
      std::make_unique<table::RowToBatchAdapter>(
          std::make_unique<VectorRowIterator>(std::move(input)), 2, 8));
  plan = std::make_unique<BatchFilterOperator>(
      std::move(plan), [](const Row& row) { return row[0].AsInt64() >= 4; });
  // Pure column refs: projection must not copy cells.
  plan = std::make_unique<BatchProjectOperator>(std::move(plan),
                                                std::vector<ValueFn>{Col(1), Col(0)},
                                                std::vector<int>{1, 0});
  auto out = CollectBatches(plan.get());
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 4u);
  EXPECT_EQ((*out)[0][0].AsInt64(), 12);
  EXPECT_EQ((*out)[0][1].AsInt64(), 4);
  EXPECT_EQ((*out)[3][0].AsInt64(), 21);
  EXPECT_EQ((*out)[3][1].AsInt64(), 7);
}

}  // namespace
}  // namespace dtl::exec
