// Focused unit tests of the UNION READ merge machinery (paper §III-C and
// §V-B): master/attached stream alignment, per-file splits, projection
// overlay, and the record-ID invariants that make the merge a linear pass.
#include <gtest/gtest.h>

#include "dualtable/dual_table.h"
#include "dualtable/record_id.h"
#include "fs/filesystem.h"

namespace dtl::dual {
namespace {

class UnionReadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs_ = std::make_unique<fs::SimFileSystem>();
    auto meta = MetadataTable::Open(fs_.get());
    ASSERT_TRUE(meta.ok());
    metadata_ = std::move(*meta);
    cluster_ = std::make_unique<fs::ClusterModel>();

    DualTableOptions options;
    options.plan_mode = DualTableOptions::PlanMode::kForceEdit;
    options.writer_options.stripe_rows = 10;  // many stripes
    auto t = DualTable::Open(fs_.get(), metadata_.get(), cluster_.get(), "u",
                             Schema({{"id", DataType::kInt64}, {"v", DataType::kInt64}}),
                             options);
    ASSERT_TRUE(t.ok());
    table_ = *t;
  }

  std::unique_ptr<fs::SimFileSystem> fs_;
  std::unique_ptr<MetadataTable> metadata_;
  std::unique_ptr<fs::ClusterModel> cluster_;
  std::shared_ptr<DualTable> table_;
};

TEST_F(UnionReadTest, RecordIdsAreStrictlyIncreasingWithinScan) {
  for (int file = 0; file < 3; ++file) {
    std::vector<Row> rows;
    for (int i = 0; i < 25; ++i) {
      rows.push_back({Value::Int64(file * 100 + i), Value::Int64(0)});
    }
    ASSERT_TRUE(table_->InsertRows(rows).ok());
  }
  auto it = table_->Scan(table::ScanSpec{});
  ASSERT_TRUE(it.ok());
  uint64_t prev = 0;
  while ((*it)->Next()) {
    EXPECT_GT((*it)->record_id(), prev);
    prev = (*it)->record_id();
  }
}

TEST_F(UnionReadTest, OverlayAppliesOnlyToMatchingRecord) {
  std::vector<Row> rows;
  for (int i = 0; i < 30; ++i) rows.push_back({Value::Int64(i), Value::Int64(0)});
  ASSERT_TRUE(table_->InsertRows(rows).ok());

  // Update exactly record id of row 17 through the attached table directly.
  auto it = table_->Scan(table::ScanSpec{});
  uint64_t target = 0;
  int n = 0;
  while ((*it)->Next()) {
    if (n++ == 17) target = (*it)->record_id();
  }
  ASSERT_TRUE(table_->attached()->PutUpdate(target, 1, Value::Int64(999)).ok());
  table_->PublishEditCommit();

  auto it2 = table_->Scan(table::ScanSpec{});
  int count = 0;
  while ((*it2)->Next()) {
    if ((*it2)->record_id() == target) {
      EXPECT_EQ((*it2)->row()[1].AsInt64(), 999);
    } else {
      EXPECT_EQ((*it2)->row()[1].AsInt64(), 0);
    }
    ++count;
  }
  EXPECT_EQ(count, 30);
}

TEST_F(UnionReadTest, DeleteMarkerHidesExactlyOneRecord) {
  std::vector<Row> rows;
  for (int i = 0; i < 20; ++i) rows.push_back({Value::Int64(i), Value::Int64(0)});
  ASSERT_TRUE(table_->InsertRows(rows).ok());
  auto it = table_->Scan(table::ScanSpec{});
  ASSERT_TRUE((*it)->Next());
  uint64_t first = (*it)->record_id();
  ASSERT_TRUE(table_->attached()->PutDeleteMarker(first).ok());
  table_->PublishEditCommit();

  auto count = table_->CountRows();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 19u);
}

TEST_F(UnionReadTest, UpdateAfterDeleteMarkerStaysHidden) {
  ASSERT_TRUE(table_->InsertRows({{Value::Int64(1), Value::Int64(0)}}).ok());
  auto it = table_->Scan(table::ScanSpec{});
  ASSERT_TRUE((*it)->Next());
  uint64_t rid = (*it)->record_id();
  ASSERT_TRUE(table_->attached()->PutDeleteMarker(rid).ok());
  ASSERT_TRUE(table_->attached()->PutUpdate(rid, 1, Value::Int64(5)).ok());
  table_->PublishEditCommit();
  // The paper's semantics: the delete marker wins; updates to deleted
  // records do not resurrect them.
  EXPECT_EQ(*table_->CountRows(), 0u);
}

TEST_F(UnionReadTest, PerFileSplitsSeeOnlyTheirModifications) {
  // Two master files; modify one record in each.
  for (int file = 0; file < 2; ++file) {
    std::vector<Row> rows;
    for (int i = 0; i < 10; ++i) {
      rows.push_back({Value::Int64(file * 10 + i), Value::Int64(0)});
    }
    ASSERT_TRUE(table_->InsertRows(rows).ok());
  }
  const auto& files = table_->master()->files();
  ASSERT_EQ(files.size(), 2u);
  ASSERT_TRUE(table_->attached()
                  ->PutUpdate(MakeRecordId(files[0].file_id, 3), 1, Value::Int64(111))
                  .ok());
  ASSERT_TRUE(table_->attached()
                  ->PutUpdate(MakeRecordId(files[1].file_id, 7), 1, Value::Int64(222))
                  .ok());
  table_->PublishEditCommit();

  auto splits = table_->CreateSplits(table::ScanSpec{});
  ASSERT_TRUE(splits.ok());
  ASSERT_EQ(splits->size(), 2u);
  for (size_t s = 0; s < 2; ++s) {
    auto it = (*splits)[s].open();
    ASSERT_TRUE(it.ok());
    int modified = 0;
    int rows = 0;
    while ((*it)->Next()) {
      ++rows;
      int64_t v = (*it)->row()[1].AsInt64();
      if (v != 0) {
        ++modified;
        EXPECT_EQ(v, s == 0 ? 111 : 222);
      }
    }
    EXPECT_EQ(rows, 10);
    EXPECT_EQ(modified, 1);
  }
}

TEST_F(UnionReadTest, ProjectionStillAppliesOverlays) {
  ASSERT_TRUE(table_->InsertRows({{Value::Int64(1), Value::Int64(10)}}).ok());
  auto it = table_->Scan(table::ScanSpec{});
  ASSERT_TRUE((*it)->Next());
  ASSERT_TRUE(table_->attached()->PutUpdate((*it)->record_id(), 1, Value::Int64(77)).ok());
  table_->PublishEditCommit();

  table::ScanSpec narrow;
  narrow.projection = {1};
  auto rows = table::CollectRows(table_.get(), narrow);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][1].AsInt64(), 77);
  EXPECT_TRUE((*rows)[0][0].is_null());  // not projected
}

TEST_F(UnionReadTest, PredicateEvaluatedAfterMerge) {
  // A predicate on the updated value must see the NEW value.
  ASSERT_TRUE(table_->InsertRows({{Value::Int64(1), Value::Int64(10)},
                                  {Value::Int64(2), Value::Int64(20)}}).ok());
  table::Assignment assign;
  assign.column = 1;
  assign.compute = [](const Row&) { return Value::Int64(500); };
  table::ScanSpec id1;
  id1.predicate_columns = {0};
  id1.predicate = [](const Row& row) { return row[0].AsInt64() == 1; };
  ASSERT_TRUE(table_->Update(id1, {assign}).ok());

  table::ScanSpec big;
  big.predicate_columns = {1};
  big.predicate = [](const Row& row) { return row[1].AsInt64() > 100; };
  auto rows = table::CollectRows(table_.get(), big);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].AsInt64(), 1);
}

TEST_F(UnionReadTest, EmptyAttachedScanEqualsPlainMasterScan) {
  std::vector<Row> rows;
  for (int i = 0; i < 50; ++i) rows.push_back({Value::Int64(i), Value::Int64(i)});
  ASSERT_TRUE(table_->InsertRows(rows).ok());
  auto collected = table::CollectRows(table_.get(), table::ScanSpec{});
  ASSERT_TRUE(collected.ok());
  ASSERT_EQ(collected->size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ((*collected)[i][0].AsInt64(), i);
}

TEST_F(UnionReadTest, GetModificationRandomAccess) {
  // The random-read path the paper credits for UNION READ efficiency.
  ASSERT_TRUE(table_->InsertRows({{Value::Int64(1), Value::Int64(0)}}).ok());
  auto it = table_->Scan(table::ScanSpec{});
  ASSERT_TRUE((*it)->Next());
  uint64_t rid = (*it)->record_id();

  auto none = table_->attached()->GetModification(rid);
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->has_value());

  ASSERT_TRUE(table_->attached()->PutUpdate(rid, 1, Value::Int64(3)).ok());
  auto some = table_->attached()->GetModification(rid);
  ASSERT_TRUE(some.ok());
  ASSERT_TRUE(some->has_value());
  EXPECT_FALSE((*some)->deleted);
  EXPECT_EQ((*some)->updates.at(1).AsInt64(), 3);
}

}  // namespace
}  // namespace dtl::dual
