#include <gtest/gtest.h>

#include "common/random.h"
#include "fs/filesystem.h"
#include "kv/store.h"

namespace dtl::kv {
namespace {

KvStoreOptions SmallOptions(const std::string& dir) {
  KvStoreOptions options;
  options.dir = dir;
  options.memtable_flush_bytes = 16 * 1024;  // force frequent flushes
  options.l0_compaction_trigger = 4;
  return options;
}

class KvStoreTest : public ::testing::Test {
 protected:
  fs::SimFileSystem fs_;
};

TEST_F(KvStoreTest, PutGetRoundTrip) {
  auto store = KvStore::Open(&fs_, SmallOptions("/hbase/t"));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("row1", 3, "value3").ok());
  ASSERT_TRUE((*store)->Put("row1", 5, "value5").ok());
  auto got = (*store)->Get("row1", 3);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ(**got, "value3");
  auto missing = (*store)->Get("row2", 3);
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing->has_value());
}

TEST_F(KvStoreTest, LatestVersionWins) {
  auto store = KvStore::Open(&fs_, SmallOptions("/hbase/t"));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*store)->Put("r", 1, "v" + std::to_string(i)).ok());
  }
  auto got = (*store)->Get("r", 1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(**got, "v4");
}

TEST_F(KvStoreTest, MultiVersionHistory) {
  auto store = KvStore::Open(&fs_, SmallOptions("/hbase/t"));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*store)->Put("r", 1, "v" + std::to_string(i)).ok());
  }
  std::vector<std::pair<uint64_t, std::string>> versions;
  ASSERT_TRUE((*store)->GetVersions("r", 1, 10, &versions).ok());
  ASSERT_EQ(versions.size(), 3u);
  EXPECT_EQ(versions[0].second, "v2");  // newest first
  EXPECT_EQ(versions[2].second, "v0");
  EXPECT_GT(versions[0].first, versions[1].first);
}

TEST_F(KvStoreTest, DeleteRowMasksOlderPuts) {
  auto store = KvStore::Open(&fs_, SmallOptions("/hbase/t"));
  ASSERT_TRUE((*store)->Put("r", 1, "a").ok());
  ASSERT_TRUE((*store)->Put("r", 2, "b").ok());
  ASSERT_TRUE((*store)->DeleteRow("r").ok());
  auto got = (*store)->Get("r", 1);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->has_value());
  // A later put resurrects the row.
  ASSERT_TRUE((*store)->Put("r", 1, "after").ok());
  got = (*store)->Get("r", 1);
  EXPECT_TRUE(got->has_value());
  EXPECT_EQ(**got, "after");
  // Column 2 stays masked.
  auto col2 = (*store)->Get("r", 2);
  EXPECT_FALSE(col2->has_value());
}

TEST_F(KvStoreTest, DeleteColumnMasksOnlyThatColumn) {
  auto store = KvStore::Open(&fs_, SmallOptions("/hbase/t"));
  ASSERT_TRUE((*store)->Put("r", 1, "a").ok());
  ASSERT_TRUE((*store)->Put("r", 2, "b").ok());
  ASSERT_TRUE((*store)->DeleteColumn("r", 1).ok());
  EXPECT_FALSE((*store)->Get("r", 1)->has_value());
  EXPECT_TRUE((*store)->Get("r", 2)->has_value());
}

TEST_F(KvStoreTest, FlushPersistsToSstable) {
  auto store = KvStore::Open(&fs_, SmallOptions("/hbase/t"));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*store)->Put("row" + std::to_string(i), 1, "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  EXPECT_GE((*store)->NumSstables(), 1u);
  auto got = (*store)->Get("row42", 1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(**got, "v42");
}

TEST_F(KvStoreTest, WalRecoveryAfterReopen) {
  {
    auto store = KvStore::Open(&fs_, SmallOptions("/hbase/t"));
    ASSERT_TRUE((*store)->Put("persist", 1, "survives").ok());
    // No flush: the data lives only in WAL + memtable. Destroy the store.
  }
  auto reopened = KvStore::Open(&fs_, SmallOptions("/hbase/t"));
  ASSERT_TRUE(reopened.ok());
  auto got = (*reopened)->Get("persist", 1);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ(**got, "survives");
}

TEST_F(KvStoreTest, ReopenAfterFlushSeesSstables) {
  {
    auto store = KvStore::Open(&fs_, SmallOptions("/hbase/t"));
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE((*store)->Put("k" + std::to_string(i), 1, "v").ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());
    ASSERT_TRUE((*store)->Put("post_flush", 1, "wal_only").ok());
  }
  auto reopened = KvStore::Open(&fs_, SmallOptions("/hbase/t"));
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->Get("k7", 1)->has_value());
  EXPECT_TRUE((*reopened)->Get("post_flush", 1)->has_value());
}

TEST_F(KvStoreTest, ScanSeesMergedSortedCells) {
  auto store = KvStore::Open(&fs_, SmallOptions("/hbase/t"));
  // Interleave across flush boundaries.
  for (int i = 0; i < 200; i += 2) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "row%04d", i);
    ASSERT_TRUE((*store)->Put(buf, 1, "even").ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  for (int i = 1; i < 200; i += 2) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "row%04d", i);
    ASSERT_TRUE((*store)->Put(buf, 1, "odd").ok());
  }
  auto scanner = (*store)->NewRowScanner();
  int count = 0;
  std::string prev;
  while (scanner->Next()) {
    EXPECT_LT(prev, scanner->view().row);
    prev = scanner->view().row;
    ++count;
  }
  ASSERT_TRUE(scanner->status().ok());
  EXPECT_EQ(count, 200);
}

TEST_F(KvStoreTest, CompactionDropsShadowedVersionsAndTombstones) {
  auto options = SmallOptions("/hbase/t");
  options.max_versions = 1;
  auto store = KvStore::Open(&fs_, options);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(
          (*store)->Put("k" + std::to_string(i), 1, "r" + std::to_string(round)).ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());
  }
  ASSERT_TRUE((*store)->DeleteRow("k0").ok());
  ASSERT_TRUE((*store)->Compact().ok());
  EXPECT_EQ((*store)->NumSstables(), 1u);
  // k0 deleted; all other keys at latest version; history gone.
  EXPECT_FALSE((*store)->Get("k0", 1)->has_value());
  EXPECT_EQ(*(*store)->Get("k1", 1).value(), "r2");
  std::vector<std::pair<uint64_t, std::string>> versions;
  ASSERT_TRUE((*store)->GetVersions("k1", 1, 10, &versions).ok());
  EXPECT_EQ(versions.size(), 1u);
  EXPECT_EQ((*store)->ApproximateCellCount(), 49u);
}

TEST_F(KvStoreTest, CompactionRespectsMaxVersions) {
  auto options = SmallOptions("/hbase/t");
  options.max_versions = 2;
  auto store = KvStore::Open(&fs_, options);
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE((*store)->Put("k", 1, "r" + std::to_string(round)).ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  ASSERT_TRUE((*store)->Compact().ok());
  std::vector<std::pair<uint64_t, std::string>> versions;
  ASSERT_TRUE((*store)->GetVersions("k", 1, 10, &versions).ok());
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_EQ(versions[0].second, "r3");
  EXPECT_EQ(versions[1].second, "r2");
}

TEST_F(KvStoreTest, AutoFlushAndCompactUnderLoad) {
  auto store = KvStore::Open(&fs_, SmallOptions("/hbase/t"));
  Random rng(11);
  for (int i = 0; i < 5000; ++i) {
    std::string key = "key" + std::to_string(rng.Uniform(500));
    ASSERT_TRUE((*store)->Put(key, static_cast<uint32_t>(rng.Uniform(4)),
                              rng.NextString(32))
                    .ok());
  }
  // Compaction trigger kept the SSTable count bounded.
  EXPECT_LE((*store)->NumSstables(),
            static_cast<size_t>(SmallOptions("").l0_compaction_trigger) + 1);
  EXPECT_GT((*store)->stats().flushes, 0u);
  EXPECT_GT((*store)->stats().compactions, 0u);
}

TEST_F(KvStoreTest, ClearEmptiesStore) {
  auto store = KvStore::Open(&fs_, SmallOptions("/hbase/t"));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*store)->Put("k" + std::to_string(i), 1, "v").ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  ASSERT_TRUE((*store)->Clear().ok());
  EXPECT_EQ((*store)->ApproximateCellCount(), 0u);
  auto scanner = (*store)->NewRowScanner();
  EXPECT_FALSE(scanner->Next());
  // Store remains usable.
  ASSERT_TRUE((*store)->Put("fresh", 1, "new").ok());
  EXPECT_TRUE((*store)->Get("fresh", 1)->has_value());
}

TEST_F(KvStoreTest, ReservedQualifierRejected) {
  auto store = KvStore::Open(&fs_, SmallOptions("/hbase/t"));
  EXPECT_TRUE((*store)->Put("r", kRowTombstoneQualifier, "x").IsInvalidArgument());
  EXPECT_TRUE((*store)->DeleteColumn("r", kRowTombstoneQualifier).IsInvalidArgument());
}

TEST_F(KvStoreTest, ScannerFromStartRow) {
  auto store = KvStore::Open(&fs_, SmallOptions("/hbase/t"));
  for (int i = 0; i < 100; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "row%03d", i);
    ASSERT_TRUE((*store)->Put(buf, 1, "v").ok());
  }
  std::string start = "row050";
  auto scanner = (*store)->NewRowScanner(&start);
  int count = 0;
  while (scanner->Next()) ++count;
  EXPECT_EQ(count, 50);
}

TEST(CellKeyTest, OrderingRowQualTsDesc) {
  CellKey a{"r1", 1, 10};
  CellKey b{"r1", 1, 20};
  CellKey c{"r1", 2, 5};
  CellKey d{"r2", 0, 1};
  EXPECT_GT(a.Compare(b), 0);  // newer timestamp sorts FIRST
  EXPECT_LT(a.Compare(c), 0);
  EXPECT_LT(c.Compare(d), 0);
  EXPECT_EQ(a.Compare(a), 0);
}

TEST(ResolveRowCellsTest, ColumnTombstoneThenNewerPut) {
  // put(ts=1), delete-col(ts=2), put(ts=3): only ts=3 visible.
  std::vector<Cell> raw = {
      {{"r", 1, 3}, {CellType::kPut, "new"}},
      {{"r", 1, 2}, {CellType::kDeleteColumn, ""}},
      {{"r", 1, 1}, {CellType::kPut, "old"}},
  };
  std::vector<Cell> visible;
  ResolveRowCells(raw, 5, &visible);
  ASSERT_EQ(visible.size(), 1u);
  EXPECT_EQ(visible[0].value.value, "new");
}

TEST(SstableTest, GetVersionsUsesBloomAndIndex) {
  fs::SimFileSystem fs;
  auto writer = SstWriter::Create(&fs, "/hbase/t/sst_000001_5.sst", 1000);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 1000; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key%04d", i);
    Cell cell{{buf, 1, 5}, {CellType::kPut, "value" + std::to_string(i)}};
    ASSERT_TRUE((*writer)->Add(cell).ok());
  }
  ASSERT_TRUE((*writer)->Finish().ok());

  auto reader = SstReader::Open(&fs, "/hbase/t/sst_000001_5.sst");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->cell_count(), 1000u);
  std::vector<Cell> out;
  ASSERT_TRUE((*reader)->GetVersions("key0500", 1, 10, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value.value, "value500");
  out.clear();
  ASSERT_TRUE((*reader)->GetVersions("nokey", 1, 10, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(SstableTest, OutOfOrderAddRejected) {
  fs::SimFileSystem fs;
  auto writer = SstWriter::Create(&fs, "/hbase/t/bad.sst", 10);
  Cell b{{"b", 1, 1}, {CellType::kPut, "x"}};
  Cell a{{"a", 1, 1}, {CellType::kPut, "x"}};
  ASSERT_TRUE((*writer)->Add(b).ok());
  EXPECT_TRUE((*writer)->Add(a).IsInvalidArgument());
}

}  // namespace
}  // namespace dtl::kv
