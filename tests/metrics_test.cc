// MetricsRegistry unit tests plus the session-scoped metering satellite:
// ScanMeter forwarding semantics and the Session::StatsDump surface.
#include <gtest/gtest.h>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "sql/session.h"
#include "table/scan_stats.h"

namespace dtl {
namespace {

TEST(MetricsTest, CounterAndGaugeBasics) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.counter(obs::names::kSqlStatements);
  c->Inc();
  c->Inc(4);
  EXPECT_EQ(c->value(), 5u);
  // Re-registration returns the same instrument.
  EXPECT_EQ(registry.counter(obs::names::kSqlStatements), c);

  obs::Gauge* g = registry.gauge(obs::names::kSchedulerJobs);
  g->Set(7);
  g->Add(-2);
  EXPECT_EQ(g->value(), 5);
}

TEST(MetricsTest, LabeledFamiliesAreDistinct) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.counter(obs::names::kKvPuts, "orders");
  obs::Counter* b = registry.counter(obs::names::kKvPuts, "customers");
  EXPECT_NE(a, b);
  a->Inc(3);
  b->Inc(1);
  obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("kv.puts{orders}"), 3u);
  EXPECT_EQ(snap.counters.at("kv.puts{customers}"), 1u);
}

TEST(MetricsTest, HistogramBucketsAndSnapshotDelta) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.histogram(obs::names::kDualUnionReadRows);
  h->Observe(0);
  h->Observe(1);
  h->Observe(5);
  h->Observe(1000);
  obs::HistogramSnapshot before = h->Snapshot();
  EXPECT_EQ(before.count, 4u);
  EXPECT_EQ(before.sum, 1006u);
  EXPECT_EQ(before.max, 1000u);
  EXPECT_DOUBLE_EQ(before.Mean(), 1006.0 / 4);
  // Bucket 0 holds {0}; bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(before.buckets[0], 1u);  // 0
  EXPECT_EQ(before.buckets[1], 1u);  // 1
  EXPECT_EQ(before.buckets[3], 1u);  // 5 in [4, 8)
  EXPECT_EQ(before.buckets[10], 1u);  // 1000 in [512, 1024)

  h->Observe(5);
  obs::HistogramSnapshot delta = h->Snapshot() - before;
  EXPECT_EQ(delta.count, 1u);
  EXPECT_EQ(delta.sum, 5u);
  EXPECT_EQ(delta.buckets[3], 1u);
}

TEST(MetricsTest, ObserveSecondsUsesMicros) {
  obs::Histogram h;
  h.ObserveSeconds(0.002);  // 2000 us
  obs::HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 2000u);
}

TEST(MetricsTest, ViewsEvaluateAtSnapshotAndRebind) {
  obs::MetricsRegistry registry;
  int value = 41;
  registry.RegisterView(obs::names::kSchedulerRounds,
                        [&value]() -> double { return value; });
  value = 42;
  EXPECT_DOUBLE_EQ(registry.Snapshot().views.at("scheduler.rounds"), 42.0);
  // Re-registration rebinds the callback.
  registry.RegisterView(obs::names::kSchedulerRounds, []() -> double { return 7; });
  EXPECT_DOUBLE_EQ(registry.Snapshot().views.at("scheduler.rounds"), 7.0);
  registry.UnregisterView(obs::names::kSchedulerRounds);
  EXPECT_EQ(registry.Snapshot().views.count("scheduler.rounds"), 0u);
}

TEST(MetricsTest, RenderTextAndJsonContainInstruments) {
  obs::MetricsRegistry registry;
  registry.counter(obs::names::kSqlStatements)->Inc(3);
  registry.histogram(obs::names::kDualEditSeconds, "t")->ObserveSeconds(0.5);
  std::string text = registry.RenderText();
  EXPECT_NE(text.find("sql.statements 3"), std::string::npos);
  EXPECT_NE(text.find("dualtable.edit.seconds{t}"), std::string::npos);
  std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"sql.statements\":3"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// --- session-scoped metering -------------------------------------------------

TEST(ScanMeterForwardingTest, AddsForwardButResetDoesNot) {
  table::ScanMeter root;
  table::ScanMeter session(&root);
  session.AddBatch(10, 100);
  session.AddPatchedRows(2);
  EXPECT_EQ(session.Snapshot().rows, 10u);
  EXPECT_EQ(root.Snapshot().rows, 10u);
  EXPECT_EQ(root.Snapshot().patched_rows, 2u);

  table::ScanSnapshot merged;
  merged.rows = 5;
  merged.batches = 1;
  session.Add(merged);
  EXPECT_EQ(session.Snapshot().rows, 15u);
  EXPECT_EQ(root.Snapshot().rows, 15u);

  // Reset clears only the forwarding meter, never the forward target.
  session.Reset();
  EXPECT_EQ(session.Snapshot().rows, 0u);
  EXPECT_EQ(root.Snapshot().rows, 15u);
}

TEST(SessionObservabilityTest, SessionMeterFeedsGlobalAndStatsDump) {
  auto created = sql::Session::Create();
  ASSERT_TRUE(created.ok());
  auto session = std::move(*created);

  const table::ScanSnapshot global_before = table::GlobalScanMeter().Snapshot();
  ASSERT_TRUE(session->Execute("CREATE TABLE t (id BIGINT, v BIGINT)").ok());
  ASSERT_TRUE(session->Execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)").ok());
  auto rows = session->Execute("SELECT id FROM t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 3u);

  // The session meter counted the scan, and forwarded into the global meter
  // so process-wide totals (used by the benches) still move.
  const uint64_t session_rows = session->scan_meter()->Snapshot().rows;
  EXPECT_GE(session_rows, 3u);
  EXPECT_GE(table::GlobalScanMeter().Snapshot().rows - global_before.rows,
            session_rows);

  // sql.statements counted every statement, with a labeled select counter.
  obs::MetricsSnapshot snap = session->metrics()->Snapshot();
  EXPECT_EQ(snap.counters.at("sql.statements"), 3u);
  EXPECT_EQ(snap.counters.at("sql.statements{select}"), 1u);

  // StatsDump shows the fs channels, scan counters, per-table kv views, and
  // the audit count in one report.
  std::string dump = session->StatsDump();
  EXPECT_NE(dump.find("fs.hdfs.bytes_read"), std::string::npos);
  EXPECT_NE(dump.find("scan.rows"), std::string::npos);
  EXPECT_NE(dump.find("kv.puts{t}"), std::string::npos);
  EXPECT_NE(dump.find("cost_audit.records"), std::string::npos);
  // Per-table MVCC snapshot views (DESIGN.md §11): the SELECT above took a
  // statement snapshot, and nothing holds one now.
  const obs::MetricsSnapshot snap2 = session->metrics()->Snapshot();
  EXPECT_NE(dump.find("snapshot.acquired{t}"), std::string::npos);
  EXPECT_NE(dump.find("snapshot.pinned_generations{t}"), std::string::npos);
  EXPECT_GE(snap2.views.at("snapshot.acquired{t}"), 1.0);
  EXPECT_EQ(snap2.views.at("snapshot.active{t}"), 0.0);
  std::string json = session->StatsDumpJson();
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"cost_audit\""), std::string::npos);
}

TEST(SessionObservabilityTest, ObservabilityOffWiresNothing) {
  sql::SessionOptions options;
  options.observability = false;
  auto created = sql::Session::Create(std::move(options));
  ASSERT_TRUE(created.ok());
  auto session = std::move(*created);
  ASSERT_TRUE(session->Execute("CREATE TABLE t (id BIGINT)").ok());
  ASSERT_TRUE(session->Execute("INSERT INTO t VALUES (1)").ok());
  ASSERT_TRUE(session->Execute("SELECT * FROM t").ok());
  EXPECT_EQ(session->metrics()->Snapshot().counters.size(), 0u);
  EXPECT_EQ(session->scan_meter()->Snapshot().rows, 0u);
  auto analyze = session->Execute("EXPLAIN ANALYZE SELECT * FROM t");
  EXPECT_FALSE(analyze.ok());
  EXPECT_TRUE(analyze.status().IsNotSupported());
}

TEST(SessionObservabilityTest, DroppedTableKvViewReadsZero) {
  sql::SessionOptions options;
  // Forced EDIT guarantees the UPDATE writes the attached KV store, so the
  // kv.puts view has something to read before the drop.
  options.dual_defaults.plan_mode = dual::DualTableOptions::PlanMode::kForceEdit;
  auto created = sql::Session::Create(std::move(options));
  ASSERT_TRUE(created.ok());
  auto session = std::move(*created);
  ASSERT_TRUE(session->Execute("CREATE TABLE t (id BIGINT)").ok());
  ASSERT_TRUE(session->Execute("INSERT INTO t VALUES (1), (2)").ok());
  ASSERT_TRUE(session->Execute("UPDATE t SET id = 9 WHERE id = 1").ok());
  EXPECT_GT(session->metrics()->Snapshot().views.at("kv.puts{t}"), 0.0);
  ASSERT_TRUE(session->Execute("DROP TABLE t").ok());
  EXPECT_DOUBLE_EQ(session->metrics()->Snapshot().views.at("kv.puts{t}"), 0.0);
}

}  // namespace
}  // namespace dtl
