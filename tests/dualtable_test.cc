#include <gtest/gtest.h>

#include "dualtable/dual_table.h"
#include "dualtable/record_id.h"
#include "fs/filesystem.h"

namespace dtl::dual {
namespace {

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"day", DataType::kDate},
                 {"amount", DataType::kDouble},
                 {"tag", DataType::kString}});
}

Row MakeRow(int64_t i) {
  return Row{Value::Int64(i), Value::Date(i % 36), Value::Double(i * 1.5),
             Value::String("tag" + std::to_string(i % 7))};
}

class DualTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs_ = std::make_unique<fs::SimFileSystem>();
    auto meta = MetadataTable::Open(fs_.get());
    ASSERT_TRUE(meta.ok());
    metadata_ = std::move(*meta);
    cluster_ = std::make_unique<fs::ClusterModel>();
  }

  Result<std::shared_ptr<DualTable>> OpenTable(const std::string& name,
                                               DualTableOptions options = {}) {
    options.writer_options.stripe_rows = 256;  // many stripes at test scale
    return DualTable::Open(fs_.get(), metadata_.get(), cluster_.get(), name,
                           TestSchema(), options);
  }

  static table::ScanSpec DayBelow(int64_t cutoff) {
    table::ScanSpec spec;
    spec.predicate_columns = {1};
    spec.predicate = [cutoff](const Row& row) {
      return !row[1].is_null() && row[1].AsInt64() < cutoff;
    };
    return spec;
  }

  std::unique_ptr<fs::SimFileSystem> fs_;
  std::unique_ptr<MetadataTable> metadata_;
  std::unique_ptr<fs::ClusterModel> cluster_;
};

TEST(RecordIdTest, PackUnpackRoundTrip) {
  uint64_t id = MakeRecordId(5, 123456789);
  EXPECT_EQ(RecordFileId(id), 5u);
  EXPECT_EQ(RecordRowNumber(id), 123456789u);
}

TEST(RecordIdTest, KeyOrderMatchesNumericOrder) {
  std::string a = RecordIdKey(MakeRecordId(1, 999));
  std::string b = RecordIdKey(MakeRecordId(2, 0));
  EXPECT_LT(a, b);
  EXPECT_EQ(RecordIdFromKey(a), MakeRecordId(1, 999));
}

TEST_F(DualTableTest, MetadataAssignsIncrementalFileIds) {
  auto a = metadata_->NextFileId("t1");
  auto b = metadata_->NextFileId("t1");
  auto c = metadata_->NextFileId("t2");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(*a, 1u);
  EXPECT_EQ(*b, 2u);
  EXPECT_EQ(*c, 1u);  // per-table counters
}

TEST_F(DualTableTest, InsertAndScanRoundTrip) {
  auto t = OpenTable("t");
  ASSERT_TRUE(t.ok());
  std::vector<Row> rows;
  for (int i = 0; i < 1000; ++i) rows.push_back(MakeRow(i));
  ASSERT_TRUE((*t)->InsertRows(rows).ok());

  table::ScanSpec all;
  auto it = (*t)->Scan(all);
  ASSERT_TRUE(it.ok());
  int count = 0;
  while ((*it)->Next()) {
    EXPECT_EQ((*it)->row()[0].AsInt64(), count);
    EXPECT_NE((*it)->record_id(), 0u);
    ++count;
  }
  ASSERT_TRUE((*it)->status().ok());
  EXPECT_EQ(count, 1000);
}

TEST_F(DualTableTest, EditUpdateVisibleThroughUnionRead) {
  DualTableOptions options;
  options.plan_mode = DualTableOptions::PlanMode::kForceEdit;
  auto t = OpenTable("t", options);
  std::vector<Row> rows;
  for (int i = 0; i < 500; ++i) rows.push_back(MakeRow(i));
  ASSERT_TRUE((*t)->InsertRows(rows).ok());

  table::Assignment assign;
  assign.column = 3;
  assign.compute = [](const Row&) { return Value::String("updated"); };
  auto result = (*t)->Update(DayBelow(5), {assign});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan, table::DmlPlan::kEdit);
  EXPECT_GT(result->rows_matched, 0u);
  EXPECT_FALSE((*t)->attached()->Empty());

  table::ScanSpec all;
  auto it = (*t)->Scan(all);
  uint64_t updated = 0, total = 0;
  while ((*it)->Next()) {
    ++total;
    const Row& row = (*it)->row();
    if (row[3].AsString() == "updated") {
      ++updated;
      EXPECT_LT(row[1].AsInt64(), 5);
    } else {
      EXPECT_GE(row[1].AsInt64(), 5);
    }
  }
  EXPECT_EQ(total, 500u);
  EXPECT_EQ(updated, result->rows_matched);
  // Master files untouched by the EDIT plan.
  EXPECT_EQ((*t)->master()->files().size(), 1u);
}

TEST_F(DualTableTest, EditDeleteHidesRows) {
  DualTableOptions options;
  options.plan_mode = DualTableOptions::PlanMode::kForceEdit;
  auto t = OpenTable("t", options);
  std::vector<Row> rows;
  for (int i = 0; i < 360; ++i) rows.push_back(MakeRow(i));
  ASSERT_TRUE((*t)->InsertRows(rows).ok());

  auto result = (*t)->Delete(DayBelow(6));  // 6/36 of the days
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan, table::DmlPlan::kEdit);
  EXPECT_EQ(result->rows_matched, 60u);

  auto count = (*t)->CountRows();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 300u);
}

TEST_F(DualTableTest, OverwriteUpdateRewritesMasterAndClearsAttached) {
  DualTableOptions options;
  options.plan_mode = DualTableOptions::PlanMode::kForceEdit;
  auto t = OpenTable("t", options);
  std::vector<Row> rows;
  for (int i = 0; i < 300; ++i) rows.push_back(MakeRow(i));
  ASSERT_TRUE((*t)->InsertRows(rows).ok());

  // Seed the attached table with an EDIT first.
  table::Assignment assign;
  assign.column = 3;
  assign.compute = [](const Row&) { return Value::String("edit1"); };
  ASSERT_TRUE((*t)->Update(DayBelow(2), {assign}).ok());
  ASSERT_FALSE((*t)->attached()->Empty());
  const uint64_t old_file_id = (*t)->master()->files()[0].file_id;

  // Now force an OVERWRITE update.
  (*t)->master();
  DualTableOptions overwrite_options;
  overwrite_options.plan_mode = DualTableOptions::PlanMode::kForceOverwrite;
  // Re-open the same table with overwrite mode (state persists in fs).
  auto t2 = OpenTable("t", overwrite_options);
  ASSERT_TRUE(t2.ok());
  table::Assignment assign2;
  assign2.column = 3;
  assign2.compute = [](const Row&) { return Value::String("edit2"); };
  auto result = (*t2)->Update(DayBelow(4), {assign2});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan, table::DmlPlan::kOverwrite);

  // Attached cleared, master regenerated with fresh file IDs.
  EXPECT_TRUE((*t2)->attached()->Empty());
  ASSERT_FALSE((*t2)->master()->files().empty());
  EXPECT_GT((*t2)->master()->files()[0].file_id, old_file_id);

  // Both generations of edits survive: edit1 rows (day<2) were folded in by
  // the rewrite, then re-updated to edit2 (day<4 covers them).
  table::ScanSpec all;
  auto it = (*t2)->Scan(all);
  uint64_t edit2 = 0, total = 0;
  while ((*it)->Next()) {
    ++total;
    if ((*it)->row()[3].AsString() == "edit2") ++edit2;
  }
  EXPECT_EQ(total, 300u);
  // Days 0-3 of 36: 4/36 ≈ 33-34 rows at 300 rows.
  EXPECT_EQ(edit2, result->rows_matched);
}

TEST_F(DualTableTest, UpdateOfUpdatedRowSeesLatestValue) {
  DualTableOptions options;
  options.plan_mode = DualTableOptions::PlanMode::kForceEdit;
  auto t = OpenTable("t", options);
  ASSERT_TRUE((*t)->InsertRows({MakeRow(0)}).ok());

  // First update sets amount = 100.
  table::Assignment set100;
  set100.column = 2;
  set100.compute = [](const Row&) { return Value::Double(100); };
  table::ScanSpec match_all;
  ASSERT_TRUE((*t)->Update(match_all, {set100}).ok());

  // Second update doubles the CURRENT amount (must read 100, not the base).
  table::Assignment doubler;
  doubler.column = 2;
  doubler.input_columns = {2};
  doubler.compute = [](const Row& row) { return Value::Double(row[2].AsDouble() * 2); };
  ASSERT_TRUE((*t)->Update(match_all, {doubler}).ok());

  table::ScanSpec all;
  auto rows = table::CollectRows((*t).get(), all);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_DOUBLE_EQ((*rows)[0][2].AsDouble(), 200.0);
}

TEST_F(DualTableTest, DeletedRowsNotUpdatable) {
  DualTableOptions options;
  options.plan_mode = DualTableOptions::PlanMode::kForceEdit;
  auto t = OpenTable("t", options);
  std::vector<Row> rows;
  for (int i = 0; i < 100; ++i) rows.push_back(MakeRow(i));
  ASSERT_TRUE((*t)->InsertRows(rows).ok());

  ASSERT_TRUE((*t)->Delete(DayBelow(36)).ok());  // delete everything
  table::Assignment assign;
  assign.column = 3;
  assign.compute = [](const Row&) { return Value::String("zombie"); };
  auto result = (*t)->Update(DayBelow(36), {assign});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows_matched, 0u);
}

TEST_F(DualTableTest, CompactFoldsAttachedIntoMaster) {
  DualTableOptions options;
  options.plan_mode = DualTableOptions::PlanMode::kForceEdit;
  auto t = OpenTable("t", options);
  std::vector<Row> rows;
  for (int i = 0; i < 360; ++i) rows.push_back(MakeRow(i));
  ASSERT_TRUE((*t)->InsertRows(rows).ok());

  table::Assignment assign;
  assign.column = 3;
  assign.compute = [](const Row&) { return Value::String("compacted?"); };
  ASSERT_TRUE((*t)->Update(DayBelow(3), {assign}).ok());
  ASSERT_TRUE((*t)->Delete(DayBelow(1)).ok());

  auto before = table::CollectRows((*t).get(), table::ScanSpec{});
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE((*t)->Compact().ok());
  EXPECT_TRUE((*t)->attached()->Empty());
  auto after = table::CollectRows((*t).get(), table::ScanSpec{});
  ASSERT_TRUE(after.ok());
  // COMPACT preserves the logical view exactly.
  ASSERT_EQ(before->size(), after->size());
  for (size_t i = 0; i < before->size(); ++i) {
    for (size_t c = 0; c < (*before)[i].size(); ++c) {
      EXPECT_EQ((*before)[i][c].Compare((*after)[i][c]), 0);
    }
  }
}

TEST_F(DualTableTest, CostModelSwitchesPlanWithRatio) {
  auto t = OpenTable("t");  // default cost-model mode
  std::vector<Row> rows;
  for (int i = 0; i < 2000; ++i) rows.push_back(MakeRow(i));
  ASSERT_TRUE((*t)->InsertRows(rows).ok());

  // Tiny ratio: EDIT must win. Huge ratio: OVERWRITE must win.
  PlanDecision small = (*t)->PreviewUpdateDecision(0.001);
  PlanDecision big = (*t)->PreviewUpdateDecision(0.99);
  EXPECT_EQ(small.plan, table::DmlPlan::kEdit);
  EXPECT_EQ(big.plan, table::DmlPlan::kOverwrite);

  // The crossover is monotone: decisions flip exactly once.
  double crossover = (*t)->cost_model().UpdateCrossoverRatio((*t)->master()->TotalBytes());
  EXPECT_GT(crossover, 0.0);
  EXPECT_LT(crossover, 1.0);
  EXPECT_EQ((*t)->PreviewUpdateDecision(crossover * 0.5).plan, table::DmlPlan::kEdit);
  EXPECT_EQ((*t)->PreviewUpdateDecision(std::min(0.999, crossover * 1.5)).plan,
            table::DmlPlan::kOverwrite);
}

TEST_F(DualTableTest, DeleteCrossoverLowerThanUpdateCrossover) {
  // Paper Fig. 13/14: deletes cross over earlier because OVERWRITE writes
  // less data as beta grows.
  auto t = OpenTable("t");
  std::vector<Row> rows;
  for (int i = 0; i < 2000; ++i) rows.push_back(MakeRow(i));
  ASSERT_TRUE((*t)->InsertRows(rows).ok());
  const uint64_t bytes = (*t)->master()->TotalBytes();
  const double avg_row =
      static_cast<double>(bytes) / static_cast<double>((*t)->master()->TotalRows());
  double update_cross = (*t)->cost_model().UpdateCrossoverRatio(bytes);
  double delete_cross = (*t)->cost_model().DeleteCrossoverRatio(bytes, avg_row);
  EXPECT_LT(delete_cross, update_cross);
}

TEST_F(DualTableTest, HintDrivesPlanSelection) {
  auto t = OpenTable("t");
  std::vector<Row> rows;
  for (int i = 0; i < 1000; ++i) rows.push_back(MakeRow(i));
  ASSERT_TRUE((*t)->InsertRows(rows).ok());

  table::Assignment assign;
  assign.column = 2;
  assign.compute = [](const Row&) { return Value::Double(0); };
  auto result = (*t)->UpdateWithHint(DayBelow(1), {assign}, 0.001);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan, table::DmlPlan::kEdit);

  auto result2 = (*t)->UpdateWithHint(DayBelow(36), {assign}, 0.999);
  ASSERT_TRUE(result2.ok());
  EXPECT_EQ(result2->plan, table::DmlPlan::kOverwrite);
}

TEST_F(DualTableTest, AttachedHistoryTracksChanges) {
  DualTableOptions options;
  options.plan_mode = DualTableOptions::PlanMode::kForceEdit;
  options.attached_options.max_versions = 5;
  auto t = OpenTable("t", options);
  ASSERT_TRUE((*t)->InsertRows({MakeRow(0)}).ok());

  table::ScanSpec match_all;
  for (int round = 0; round < 3; ++round) {
    table::Assignment assign;
    assign.column = 2;
    const double v = round * 10.0;
    assign.compute = [v](const Row&) { return Value::Double(v); };
    ASSERT_TRUE((*t)->Update(match_all, {assign}).ok());
  }
  // HBase multi-versioning exposes the change history (paper §V-C).
  table::ScanSpec all;
  auto it = (*t)->Scan(all);
  ASSERT_TRUE(it.ok());
  ASSERT_TRUE((*it)->Next());
  const uint64_t rid = (*it)->record_id();
  std::vector<std::pair<uint64_t, Value>> history;
  ASSERT_TRUE((*t)->attached()->GetUpdateHistory(rid, 2, 10, &history).ok());
  ASSERT_EQ(history.size(), 3u);
  EXPECT_DOUBLE_EQ(history[0].second.AsDouble(), 20.0);  // newest first
  EXPECT_DOUBLE_EQ(history[2].second.AsDouble(), 0.0);
}

TEST_F(DualTableTest, TimeTravelScanReconstructsHistory) {
  DualTableOptions options;
  options.plan_mode = DualTableOptions::PlanMode::kForceEdit;
  options.attached_options.max_versions = 10;
  auto t = OpenTable("t", options);
  ASSERT_TRUE((*t)->InsertRows({MakeRow(0), MakeRow(1)}).ok());
  const uint64_t ts0 = (*t)->attached()->LastTimestamp();

  table::ScanSpec match_all;
  std::vector<uint64_t> checkpoints;
  for (int round = 0; round < 3; ++round) {
    table::Assignment assign;
    assign.column = 2;
    const double v = (round + 1) * 100.0;
    assign.compute = [v](const Row&) { return Value::Double(v); };
    ASSERT_TRUE((*t)->Update(match_all, {assign}).ok());
    checkpoints.push_back((*t)->attached()->LastTimestamp());
  }
  // A delete after the last checkpoint.
  ASSERT_TRUE((*t)->Delete(match_all).ok());

  // As of ts0: the original values, both rows alive.
  {
    auto it = (*t)->ScanAsOf(table::ScanSpec{}, ts0);
    ASSERT_TRUE(it.ok());
    int n = 0;
    while ((*it)->Next()) {
      EXPECT_DOUBLE_EQ((*it)->row()[2].AsDouble(), n * 1.5);
      ++n;
    }
    EXPECT_EQ(n, 2);
  }
  // As of each update checkpoint: the value of that round.
  for (int round = 0; round < 3; ++round) {
    auto it = (*t)->ScanAsOf(table::ScanSpec{}, checkpoints[round]);
    ASSERT_TRUE(it.ok());
    int n = 0;
    while ((*it)->Next()) {
      EXPECT_DOUBLE_EQ((*it)->row()[2].AsDouble(), (round + 1) * 100.0) << round;
      ++n;
    }
    EXPECT_EQ(n, 2);
  }
  // Latest view: everything deleted.
  EXPECT_EQ(*(*t)->CountRows(), 0u);
  // As of "now": same as the live view.
  auto now = (*t)->ScanAsOf(table::ScanSpec{}, UINT64_MAX);
  ASSERT_TRUE(now.ok());
  EXPECT_FALSE((*now)->Next());
}

TEST_F(DualTableTest, ScanWithPredicateAndProjection) {
  auto t = OpenTable("t");
  std::vector<Row> rows;
  for (int i = 0; i < 720; ++i) rows.push_back(MakeRow(i));
  ASSERT_TRUE((*t)->InsertRows(rows).ok());

  table::ScanSpec spec = DayBelow(3);
  spec.projection = {0, 1};
  auto collected = table::CollectRows((*t).get(), spec);
  ASSERT_TRUE(collected.ok());
  EXPECT_EQ(collected->size(), 60u);  // 3/36 of 720
  for (const Row& row : *collected) {
    EXPECT_LT(row[1].AsInt64(), 3);
    EXPECT_TRUE(row[2].is_null());  // not projected
  }
}

TEST_F(DualTableTest, StatsPruningSkipsStripesWhenAttachedEmpty) {
  DualTableOptions options;
  options.writer_options.stripe_rows = 100;
  auto t = DualTable::Open(fs_.get(), metadata_.get(), cluster_.get(), "t",
                           Schema({{"v", DataType::kInt64}}), options);
  ASSERT_TRUE(t.ok());
  std::vector<Row> rows;
  for (int i = 0; i < 10000; ++i) rows.push_back({Value::Int64(i)});
  ASSERT_TRUE((*t)->InsertRows(rows).ok());

  table::ScanSpec spec;
  spec.predicate_columns = {0};
  spec.predicate = [](const Row& row) { return row[0].AsInt64() < 50; };
  table::ColumnBound bound;
  bound.column = 0;
  bound.upper = Value::Int64(50);
  spec.bounds.push_back(bound);

  // Warm the file reader first with a scan whose bounds prune every stripe:
  // it decodes the footer (which carries per-column stream CRCs) but reads
  // no stripe, so both measurements below count stripe reads only.
  table::ScanSpec warm = spec;
  warm.bounds[0].upper = Value::Int64(-1);
  ASSERT_TRUE(table::CollectRows((*t).get(), warm).ok());

  fs_->meter()->Reset();
  auto collected = table::CollectRows((*t).get(), spec);
  ASSERT_TRUE(collected.ok());
  EXPECT_EQ(collected->size(), 50u);
  uint64_t pruned_bytes = fs_->meter()->Snapshot().hdfs_bytes_read;

  spec.bounds.clear();
  fs_->meter()->Reset();
  ASSERT_TRUE(table::CollectRows((*t).get(), spec).ok());
  uint64_t full_bytes = fs_->meter()->Snapshot().hdfs_bytes_read;
  EXPECT_LT(pruned_bytes * 10, full_bytes);  // 1 of 100 stripes read
}

TEST_F(DualTableTest, SplitsCoverWholeTable) {
  auto t = OpenTable("t");
  for (int batch = 0; batch < 3; ++batch) {
    std::vector<Row> rows;
    for (int i = 0; i < 100; ++i) rows.push_back(MakeRow(batch * 100 + i));
    ASSERT_TRUE((*t)->InsertRows(rows).ok());  // 3 master files
  }
  table::ScanSpec all;
  auto splits = (*t)->CreateSplits(all);
  ASSERT_TRUE(splits.ok());
  EXPECT_EQ(splits->size(), 3u);
  uint64_t total = 0;
  for (const auto& split : *splits) {
    auto it = split.open();
    ASSERT_TRUE(it.ok());
    while ((*it)->Next()) ++total;
    ASSERT_TRUE((*it)->status().ok());
  }
  EXPECT_EQ(total, 300u);
}

TEST_F(DualTableTest, NeedsCompactionSignal) {
  DualTableOptions options;
  options.plan_mode = DualTableOptions::PlanMode::kForceEdit;
  options.compact_threshold = 0.05;
  auto t = OpenTable("t", options);
  std::vector<Row> rows;
  for (int i = 0; i < 200; ++i) rows.push_back(MakeRow(i));
  ASSERT_TRUE((*t)->InsertRows(rows).ok());
  EXPECT_FALSE((*t)->NeedsCompaction());

  table::Assignment assign;
  assign.column = 3;
  assign.compute = [](const Row&) { return Value::String(std::string(64, 'x')); };
  ASSERT_TRUE((*t)->Update(DayBelow(36), {assign}).ok());
  EXPECT_TRUE((*t)->NeedsCompaction());
  ASSERT_TRUE((*t)->Compact().ok());
  EXPECT_FALSE((*t)->NeedsCompaction());
}

TEST_F(DualTableTest, AutoCompactTriggersAfterThreshold) {
  DualTableOptions options;
  options.plan_mode = DualTableOptions::PlanMode::kForceEdit;
  options.auto_compact = true;
  options.compact_threshold = 0.02;  // tiny threshold: first big edit trips it
  auto t = OpenTable("t", options);
  std::vector<Row> rows;
  for (int i = 0; i < 300; ++i) rows.push_back(MakeRow(i));
  ASSERT_TRUE((*t)->InsertRows(rows).ok());

  table::Assignment assign;
  assign.column = 3;
  assign.compute = [](const Row&) { return Value::String(std::string(64, 'z')); };
  ASSERT_TRUE((*t)->Update(DayBelow(36), {assign}).ok());
  // The update ended with an automatic COMPACT: attached empty, view intact.
  EXPECT_TRUE((*t)->attached()->Empty());
  auto check = table::CollectRows((*t).get(), table::ScanSpec{});
  ASSERT_TRUE(check.ok());
  ASSERT_EQ(check->size(), 300u);
  for (const Row& row : *check) EXPECT_EQ(row[3].AsString(), std::string(64, 'z'));
}

TEST_F(DualTableTest, DropRemovesEverything) {
  auto t = OpenTable("t");
  std::vector<Row> rows;
  for (int i = 0; i < 100; ++i) rows.push_back(MakeRow(i));
  ASSERT_TRUE((*t)->InsertRows(rows).ok());
  ASSERT_TRUE((*t)->Drop().ok());
  EXPECT_FALSE(fs_->Exists("/warehouse/t"));
}

TEST_F(DualTableTest, ReopenSeesPersistedData) {
  {
    auto t = OpenTable("t");
    std::vector<Row> rows;
    for (int i = 0; i < 150; ++i) rows.push_back(MakeRow(i));
    ASSERT_TRUE((*t)->InsertRows(rows).ok());
    DualTableOptions edit;
    edit.plan_mode = DualTableOptions::PlanMode::kForceEdit;
  }
  auto reopened = OpenTable("t");
  ASSERT_TRUE(reopened.ok());
  auto count = (*reopened)->CountRows();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 150u);
}

}  // namespace
}  // namespace dtl::dual
