// Cross-system integration tests: the four storage systems must stay
// logically equivalent under identical DML streams, and the DualTable-
// specific machinery (UNION READ, cost model, COMPACT) must preserve that
// equivalence at every point.
#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "exec/mapreduce.h"
#include "sql/session.h"

namespace dtl {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto session = sql::Session::Create();
    ASSERT_TRUE(session.ok());
    session_ = std::move(*session);
  }

  sql::QueryResult Run(const std::string& sqltext) {
    auto result = session_->Execute(sqltext);
    EXPECT_TRUE(result.ok()) << sqltext << " -> " << result.status().ToString();
    return result.ok() ? *result : sql::QueryResult{};
  }

  std::unique_ptr<sql::Session> session_;
};

/// Canonical fingerprint of a table's logical content (order-independent).
std::multiset<std::string> Fingerprint(sql::Session* session, const std::string& name) {
  auto result = session->Execute("SELECT * FROM " + name);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  std::multiset<std::string> out;
  if (result.ok()) {
    for (const Row& row : result->rows) out.insert(RowToString(row));
  }
  return out;
}

TEST_F(IntegrationTest, RandomDmlStreamKeepsAllSystemsEquivalent) {
  const std::vector<std::string> kinds = {"dualtable", "hive", "hbase", "acid"};
  for (const auto& kind : kinds) {
    Run("CREATE TABLE s_" + kind + " (id BIGINT, grp BIGINT, v BIGINT) STORED AS " + kind);
    std::string insert = "INSERT INTO s_" + kind + " VALUES (0, 0, 0)";
    for (int i = 1; i < 300; ++i) {
      insert += ", (" + std::to_string(i) + ", " + std::to_string(i % 10) + ", " +
                std::to_string(i * 3) + ")";
    }
    Run(insert);
  }

  Random rng(42);
  for (int step = 0; step < 12; ++step) {
    const int64_t grp = static_cast<int64_t>(rng.Uniform(10));
    std::string op;
    switch (rng.Uniform(3)) {
      case 0:
        op = "UPDATE %T SET v = v + " + std::to_string(rng.Uniform(100)) +
             " WHERE grp = " + std::to_string(grp) + " WITH RATIO 0.1";
        break;
      case 1:
        op = "DELETE FROM %T WHERE id % 37 = " + std::to_string(rng.Uniform(37)) +
             " WITH RATIO 0.03";
        break;
      case 2:
        op = "UPDATE %T SET v = v * 2 WHERE v < " + std::to_string(rng.Uniform(500)) +
             " WITH RATIO 0.4";
        break;
    }
    for (const auto& kind : kinds) {
      std::string sqltext = op;
      sqltext.replace(sqltext.find("%T"), 2, "s_" + kind);
      Run(sqltext);
    }
    // All four systems agree after every step.
    auto reference = Fingerprint(session_.get(), "s_" + kinds[0]);
    for (size_t k = 1; k < kinds.size(); ++k) {
      EXPECT_EQ(Fingerprint(session_.get(), "s_" + kinds[k]), reference)
          << "system " << kinds[k] << " diverged at step " << step;
    }
  }
}

TEST_F(IntegrationTest, CompactPreservesViewAcrossStorageGenerations) {
  Run("CREATE TABLE t (id BIGINT, v BIGINT) STORED AS dualtable");
  std::string insert = "INSERT INTO t VALUES (0, 0)";
  for (int i = 1; i < 200; ++i) {
    insert += ", (" + std::to_string(i) + ", " + std::to_string(i) + ")";
  }
  Run(insert);
  Run("UPDATE t SET v = v + 1000 WHERE id < 50 WITH RATIO 0.25");
  Run("DELETE FROM t WHERE id >= 180 WITH RATIO 0.1");
  auto before = Fingerprint(session_.get(), "t");
  Run("COMPACT TABLE t");
  EXPECT_EQ(Fingerprint(session_.get(), "t"), before);
  // And DML continues to work on the new generation.
  Run("UPDATE t SET v = 1 WHERE id = 0 WITH RATIO 0.01");
  auto check = Run("SELECT v FROM t WHERE id = 0");
  EXPECT_EQ(check.rows[0][0].AsInt64(), 1);
}

TEST_F(IntegrationTest, QueriesSeeEditsWithoutCompaction) {
  Run("CREATE TABLE t (id BIGINT, grp BIGINT, v BIGINT) STORED AS dualtable");
  std::string insert = "INSERT INTO t VALUES (0, 0, 1)";
  for (int i = 1; i < 100; ++i) {
    insert += ", (" + std::to_string(i) + ", " + std::to_string(i % 4) + ", 1)";
  }
  Run(insert);
  Run("UPDATE t SET v = 100 WHERE grp = 2 WITH RATIO 0.25");
  // Aggregation over the merged view.
  auto result = Run("SELECT grp, SUM(v) FROM t GROUP BY grp ORDER BY grp");
  ASSERT_EQ(result.rows.size(), 4u);
  EXPECT_EQ(result.rows[2][1].AsInt64(), 2500);  // 25 rows × 100
  EXPECT_EQ(result.rows[1][1].AsInt64(), 25);
}

TEST_F(IntegrationTest, JoinBetweenDualAndHiveTables) {
  Run("CREATE TABLE facts (k BIGINT, v BIGINT) STORED AS dualtable");
  Run("CREATE TABLE dims (k BIGINT, label STRING) STORED AS hive");
  Run("INSERT INTO facts VALUES (1, 10), (2, 20), (3, 30)");
  Run("INSERT INTO dims VALUES (1, 'one'), (2, 'two')");
  Run("UPDATE facts SET v = 99 WHERE k = 2 WITH RATIO 0.3");
  auto result = Run(
      "SELECT f.k, f.v, d.label FROM facts f JOIN dims d ON f.k = d.k ORDER BY f.k");
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[1][1].AsInt64(), 99);  // join sees the union-read view
  EXPECT_EQ(result.rows[1][2].AsString(), "two");
}

TEST_F(IntegrationTest, ManySmallDmlStatementsThenCompact) {
  Run("CREATE TABLE t (id BIGINT, v BIGINT) STORED AS dualtable");
  std::string insert = "INSERT INTO t VALUES (0, 0)";
  for (int i = 1; i < 500; ++i) insert += ", (" + std::to_string(i) + ", 0)";
  Run(insert);

  // A long stream of tiny EDIT updates accumulates in the attached table.
  for (int i = 0; i < 40; ++i) {
    Run("UPDATE t SET v = " + std::to_string(i) + " WHERE id = " + std::to_string(i * 7) +
        " WITH RATIO 0.002");
  }
  auto entry = session_->catalog()->Lookup("t");
  ASSERT_TRUE(entry.ok());
  auto* dual = dynamic_cast<dual::DualTable*>(entry->table.get());
  ASSERT_NE(dual, nullptr);
  EXPECT_GE(dual->attached()->ApproximateCellCount(), 40u);

  auto before = Fingerprint(session_.get(), "t");
  Run("COMPACT TABLE t");
  EXPECT_TRUE(dual->attached()->Empty());
  EXPECT_EQ(Fingerprint(session_.get(), "t"), before);
}

TEST_F(IntegrationTest, InsertAfterDmlLandsInNewMasterFile) {
  Run("CREATE TABLE t (id BIGINT, v BIGINT) STORED AS dualtable");
  Run("INSERT INTO t VALUES (1, 1), (2, 2)");
  Run("UPDATE t SET v = 5 WHERE id = 1 WITH RATIO 0.01");
  Run("INSERT INTO t VALUES (3, 3)");  // INSERT goes to the master (paper §III-C)
  auto result = Run("SELECT COUNT(*), SUM(v) FROM t");
  EXPECT_EQ(result.rows[0][0].AsInt64(), 3);
  EXPECT_EQ(result.rows[0][1].AsInt64(), 10);  // 5 + 2 + 3

  auto entry = session_->catalog()->Lookup("t");
  auto* dual = dynamic_cast<dual::DualTable*>(entry->table.get());
  EXPECT_EQ(dual->master()->files().size(), 2u);
}

TEST_F(IntegrationTest, MapReduceOverDualTableSplits) {
  // The paper's execution model: one map task per master file, with UNION
  // READ running inside the task. The MR aggregate must match the SQL
  // aggregate over the merged view.
  Run("CREATE TABLE t (grp BIGINT, v BIGINT) STORED AS dualtable");
  for (int file = 0; file < 4; ++file) {
    std::string insert = "INSERT INTO t VALUES (0, 1)";
    for (int i = 1; i < 50; ++i) {
      insert += ", (" + std::to_string(i % 5) + ", 1)";
    }
    Run(insert);  // 4 master files => 4 splits
  }
  // Tiny ratio hints keep both statements on the EDIT plan so the master
  // file layout (and hence the split count) is preserved.
  auto updated = Run("UPDATE t SET v = 10 WHERE grp = 2 WITH RATIO 0.01");
  ASSERT_EQ(updated.dml_plan, "EDIT");
  auto deleted = Run("DELETE FROM t WHERE grp = 4 WITH RATIO 0.01");
  ASSERT_EQ(deleted.dml_plan, "EDIT");

  auto entry = session_->catalog()->Lookup("t");
  ASSERT_TRUE(entry.ok());
  auto splits = entry->table->CreateSplits(table::ScanSpec{});
  ASSERT_TRUE(splits.ok());
  EXPECT_EQ(splits->size(), 4u);

  exec::MapReduceConfig config;
  config.pool = session_->pool();
  config.num_reducers = 3;
  exec::MapReduceStats stats;
  auto mr = exec::RunMapReduce(
      *splits,
      [](const Row& row, uint64_t record_id, std::vector<std::pair<Value, Row>>* out) {
        EXPECT_NE(record_id, 0u);  // union read exposes record IDs to mappers
        out->emplace_back(row[0], Row{row[1]});
      },
      [](const Value& key, const std::vector<Row>& values, std::vector<Row>* out) {
        int64_t sum = 0;
        for (const Row& v : values) sum += v[0].AsInt64();
        out->push_back(Row{key, Value::Int64(sum)});
      },
      config, &stats);
  ASSERT_TRUE(mr.ok()) << mr.status().ToString();
  EXPECT_EQ(stats.map_tasks, 4u);

  auto sql_result = Run("SELECT grp, SUM(v) FROM t GROUP BY grp ORDER BY grp");
  ASSERT_EQ(mr->size(), sql_result.rows.size());
  std::map<int64_t, int64_t> mr_sums;
  for (const Row& row : *mr) mr_sums[row[0].AsInt64()] = row[1].AsInt64();
  for (const Row& row : sql_result.rows) {
    EXPECT_EQ(mr_sums[row[0].AsInt64()], row[1].AsInt64());
  }
}

TEST_F(IntegrationTest, ParallelCountMatchesSequential) {
  Run("CREATE TABLE t (v BIGINT) STORED AS dualtable");
  for (int file = 0; file < 3; ++file) {
    std::string insert = "INSERT INTO t VALUES (0)";
    for (int i = 1; i < 40; ++i) insert += ", (" + std::to_string(i) + ")";
    Run(insert);
  }
  Run("DELETE FROM t WHERE v < 10 WITH RATIO 0.25");
  auto entry = session_->catalog()->Lookup("t");
  auto splits = entry->table->CreateSplits(table::ScanSpec{});
  ASSERT_TRUE(splits.ok());
  auto parallel = exec::ParallelCount(*splits, session_->pool());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(*parallel, 90u);  // 120 - 30 deleted
  EXPECT_EQ(Run("SELECT COUNT(*) FROM t").rows[0][0].AsInt64(), 90);
}

TEST_F(IntegrationTest, UpdateAfterInsertAppliesAcrossFiles) {
  Run("CREATE TABLE t (id BIGINT, v BIGINT) STORED AS dualtable");
  Run("INSERT INTO t VALUES (1, 0), (2, 0)");
  Run("INSERT INTO t VALUES (3, 0), (4, 0)");
  Run("UPDATE t SET v = 7 WHERE id % 2 = 0 WITH RATIO 0.5");
  auto result = Run("SELECT SUM(v) FROM t");
  EXPECT_EQ(result.rows[0][0].AsInt64(), 14);  // rows 2 and 4, across two files
}

}  // namespace
}  // namespace dtl
