// Cost-model decision audit tests: a Table-1-style DML-ratio sweep over a
// DualTable, asserting that every kCostModel UPDATE/DELETE leaves an audit
// record whose predicted winner matches the executed path and whose
// prediction error against the modelled actuals is well-formed.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "dualtable/dual_table.h"
#include "obs/cost_audit.h"
#include "sql/session.h"

namespace dtl {
namespace {

class CostAuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto session = sql::Session::Create();
    ASSERT_TRUE(session.ok());
    session_ = std::move(*session);
    Run("CREATE TABLE grid (id BIGINT, region STRING, load DOUBLE)");
    std::string insert = "INSERT INTO grid VALUES ";
    for (int i = 0; i < 400; ++i) {
      if (i > 0) insert += ", ";
      insert += "(" + std::to_string(i) + ", 'r" + std::to_string(i % 4) + "', " +
                std::to_string(i * 1.5) + ")";
    }
    Run(insert);
  }

  sql::QueryResult Run(const std::string& sql) {
    auto result = session_->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? *result : sql::QueryResult{};
  }

  dual::DualTable* Table() {
    auto entry = session_->catalog()->Lookup("grid");
    EXPECT_TRUE(entry.ok());
    return dynamic_cast<dual::DualTable*>(entry->table.get());
  }

  std::unique_ptr<sql::Session> session_;
};

TEST_F(CostAuditTest, RatioSweepPredictedWinnerMatchesExecutedPath) {
  // Table-1-style sweep: the grid workload's DML mix spans tiny point
  // updates to large overwrites. Each hinted ratio must (a) leave exactly
  // one audit record, (b) execute the path the model predicted, and (c)
  // agree with PreviewUpdateDecision for the same ratio.
  const std::vector<double> ratios = {0.001, 0.01, 0.05, 0.2, 0.5, 0.9};
  dual::DualTable* table = Table();
  ASSERT_NE(table, nullptr);

  std::vector<std::string> expected_plans;
  for (double ratio : ratios) {
    expected_plans.push_back(
        table::DmlPlanName(table->PreviewUpdateDecision(ratio).plan));
    auto result = Run("UPDATE grid SET load = load + 1 WHERE id < 40 WITH RATIO " +
                      std::to_string(ratio));
    EXPECT_EQ(result.affected_rows, 40u);
  }

  std::vector<obs::CostAuditRecord> records = session_->cost_audit()->Records();
  ASSERT_EQ(records.size(), ratios.size());
  for (size_t i = 0; i < records.size(); ++i) {
    const obs::CostAuditRecord& r = records[i];
    EXPECT_EQ(r.table, "grid");
    EXPECT_EQ(r.statement, "UPDATE");
    EXPECT_TRUE(r.ratio_from_hint);
    EXPECT_DOUBLE_EQ(r.ratio, ratios[i]);
    EXPECT_EQ(r.rows_matched, 40u);
    // The audit's predicted winner is the path that actually executed, and
    // it matches an independent preview of the same decision.
    EXPECT_EQ(r.predicted_plan, r.executed_plan) << "ratio " << ratios[i];
    EXPECT_EQ(r.predicted_plan, expected_plans[i]) << "ratio " << ratios[i];
    EXPECT_GT(r.predicted_edit_seconds, 0.0);
    EXPECT_GT(r.predicted_overwrite_seconds, 0.0);
    // Per-statement prediction error against the modelled actuals.
    EXPECT_GE(r.measured_wall_seconds, 0.0);
    EXPECT_GE(r.measured_modeled_seconds, 0.0);
    EXPECT_TRUE(std::isfinite(r.PredictionErrorFraction()));
    EXPECT_GE(r.PredictionErrorFraction(), 0.0);
  }

  // The sweep crosses the model's EDIT/OVERWRITE frontier when the crossover
  // ratio lies inside the sweep range; verify agreement with the analytic
  // crossover rather than hard-coding where it falls.
  const double crossover =
      table->cost_model().UpdateCrossoverRatio(table->master()->TotalBytes());
  for (size_t i = 0; i < records.size(); ++i) {
    if (ratios[i] < crossover) {
      EXPECT_EQ(records[i].executed_plan, "EDIT") << "ratio " << ratios[i];
    } else if (ratios[i] > crossover) {
      EXPECT_EQ(records[i].executed_plan, "OVERWRITE") << "ratio " << ratios[i];
    }
  }
}

TEST_F(CostAuditTest, DeleteDecisionsAreAuditedToo) {
  auto result = Run("DELETE FROM grid WHERE id >= 390 WITH RATIO 0.025");
  EXPECT_EQ(result.affected_rows, 10u);
  std::vector<obs::CostAuditRecord> records = session_->cost_audit()->Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].statement, "DELETE");
  EXPECT_EQ(records[0].rows_matched, 10u);
  EXPECT_EQ(records[0].predicted_plan, records[0].executed_plan);
  EXPECT_TRUE(records[0].ratio_from_hint);
}

TEST_F(CostAuditTest, UnhintedDmlIsAuditedWithResolvedRatio) {
  auto result = Run("UPDATE grid SET load = 0 WHERE id = 7");
  EXPECT_EQ(result.affected_rows, 1u);
  std::vector<obs::CostAuditRecord> records = session_->cost_audit()->Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records[0].ratio_from_hint);
  EXPECT_GT(records[0].ratio, 0.0);
}

TEST_F(CostAuditTest, ForcedPlansAreNotAudited) {
  // Only kCostModel decisions are audited: forcing a plan bypasses the model,
  // so there is nothing to check the prediction against.
  sql::SessionOptions options;
  options.dual_defaults.plan_mode = dual::DualTableOptions::PlanMode::kForceEdit;
  auto created = sql::Session::Create(std::move(options));
  ASSERT_TRUE(created.ok());
  auto forced = std::move(*created);
  ASSERT_TRUE(forced->Execute("CREATE TABLE t (id BIGINT)").ok());
  ASSERT_TRUE(forced->Execute("INSERT INTO t VALUES (1), (2), (3)").ok());
  ASSERT_TRUE(forced->Execute("UPDATE t SET id = 9 WHERE id = 1").ok());
  EXPECT_EQ(forced->cost_audit()->size(), 0u);
}

TEST_F(CostAuditTest, RenderAndClear) {
  Run("UPDATE grid SET load = 0 WHERE id < 4 WITH RATIO 0.01");
  ASSERT_EQ(session_->cost_audit()->size(), 1u);
  const obs::CostAuditRecord record = session_->cost_audit()->Records()[0];
  EXPECT_NE(record.ToString().find("grid"), std::string::npos);
  EXPECT_NE(record.ToJson().find("\"predicted_plan\""), std::string::npos);
  std::string json = session_->cost_audit()->RenderJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"statement\":\"UPDATE\""), std::string::npos);
  session_->cost_audit()->Clear();
  EXPECT_EQ(session_->cost_audit()->size(), 0u);
}

}  // namespace
}  // namespace dtl
