#include <gtest/gtest.h>

#include "dualtable/dual_table.h"
#include "sql/session.h"

namespace dtl::sql {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto session = Session::Create();
    ASSERT_TRUE(session.ok());
    session_ = std::move(*session);
  }

  QueryResult Run(const std::string& sql) {
    auto result = session_->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? *result : QueryResult{};
  }

  std::unique_ptr<Session> session_;
};

TEST_F(EngineTest, CreateInsertSelect) {
  Run("CREATE TABLE t (id BIGINT, name STRING, price DOUBLE)");
  Run("INSERT INTO t VALUES (1, 'one', 1.5), (2, 'two', 2.5), (3, 'three', 3.5)");
  auto result = Run("SELECT id, name FROM t WHERE price > 2.0 ORDER BY id");
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0][0].AsInt64(), 2);
  EXPECT_EQ(result.rows[1][1].AsString(), "three");
  EXPECT_EQ(result.column_names[1], "name");
}

TEST_F(EngineTest, SelectStarAndLimit) {
  Run("CREATE TABLE t (a BIGINT, b BIGINT)");
  Run("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)");
  auto result = Run("SELECT * FROM t LIMIT 2");
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0].size(), 2u);
}

TEST_F(EngineTest, AggregationWithGroupByHaving) {
  Run("CREATE TABLE sales (region STRING, amount BIGINT)");
  Run("INSERT INTO sales VALUES ('east', 10), ('east', 20), ('west', 5), ('west', 2), "
      "('north', 100)");
  auto result = Run(
      "SELECT region, SUM(amount) total, COUNT(*) cnt FROM sales "
      "GROUP BY region HAVING SUM(amount) > 10 ORDER BY total DESC");
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0][0].AsString(), "north");
  EXPECT_EQ(result.rows[0][1].AsInt64(), 100);
  EXPECT_EQ(result.rows[1][0].AsString(), "east");
  EXPECT_EQ(result.rows[1][2].AsInt64(), 2);
}

TEST_F(EngineTest, GlobalAggregates) {
  Run("CREATE TABLE t (v BIGINT)");
  Run("INSERT INTO t VALUES (1), (2), (3), (4)");
  auto result = Run("SELECT COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v) FROM t");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].AsInt64(), 4);
  EXPECT_EQ(result.rows[0][1].AsInt64(), 10);
  EXPECT_DOUBLE_EQ(result.rows[0][2].AsDouble(), 2.5);
  EXPECT_EQ(result.rows[0][3].AsInt64(), 1);
  EXPECT_EQ(result.rows[0][4].AsInt64(), 4);
}

TEST_F(EngineTest, JoinTwoTables) {
  Run("CREATE TABLE orders (oid BIGINT, cid BIGINT)");
  Run("CREATE TABLE customers (cid BIGINT, cname STRING)");
  Run("INSERT INTO orders VALUES (1, 10), (2, 20), (3, 10), (4, 99)");
  Run("INSERT INTO customers VALUES (10, 'alice'), (20, 'bob')");
  auto result = Run(
      "SELECT o.oid, c.cname FROM orders o JOIN customers c ON o.cid = c.cid "
      "ORDER BY o.oid");
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_EQ(result.rows[0][1].AsString(), "alice");
  EXPECT_EQ(result.rows[1][1].AsString(), "bob");
}

TEST_F(EngineTest, LeftOuterJoinKeepsUnmatched) {
  Run("CREATE TABLE l (k BIGINT)");
  Run("CREATE TABLE r (k BIGINT, v STRING)");
  Run("INSERT INTO l VALUES (1), (2)");
  Run("INSERT INTO r VALUES (2, 'found')");
  auto result = Run("SELECT l.k, r.v FROM l LEFT OUTER JOIN r ON l.k = r.k ORDER BY l.k");
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_TRUE(result.rows[0][1].is_null());
  EXPECT_EQ(result.rows[1][1].AsString(), "found");
}

TEST_F(EngineTest, ThreeWayJoin) {
  Run("CREATE TABLE a (x BIGINT)");
  Run("CREATE TABLE b (x BIGINT, y BIGINT)");
  Run("CREATE TABLE c (y BIGINT, z STRING)");
  Run("INSERT INTO a VALUES (1), (2)");
  Run("INSERT INTO b VALUES (1, 100), (2, 200)");
  Run("INSERT INTO c VALUES (100, 'hundred'), (200, 'two hundred')");
  auto result = Run(
      "SELECT a.x, c.z FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y ORDER BY a.x");
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[1][1].AsString(), "two hundred");
}

TEST_F(EngineTest, UpdateOnDualTableUsesEditPlanForSmallRatio) {
  Run("CREATE TABLE t (id BIGINT, v BIGINT) STORED AS dualtable");
  std::string insert = "INSERT INTO t VALUES (0, 0)";
  for (int i = 1; i < 200; ++i) {
    insert += ", (" + std::to_string(i) + ", 0)";
  }
  Run(insert);
  auto result = Run("UPDATE t SET v = 1 WHERE id < 4 WITH RATIO 0.02");
  EXPECT_EQ(result.affected_rows, 4u);
  EXPECT_EQ(result.dml_plan, "EDIT");
  auto check = Run("SELECT SUM(v) FROM t");
  EXPECT_EQ(check.rows[0][0].AsInt64(), 4);
}

TEST_F(EngineTest, UpdateLargeRatioUsesOverwrite) {
  Run("CREATE TABLE t (id BIGINT, v BIGINT) STORED AS dualtable");
  std::string insert = "INSERT INTO t VALUES (0, 0)";
  for (int i = 1; i < 100; ++i) insert += ", (" + std::to_string(i) + ", 0)";
  Run(insert);
  auto result = Run("UPDATE t SET v = 1 WHERE id >= 0 WITH RATIO 0.99");
  EXPECT_EQ(result.dml_plan, "OVERWRITE");
  auto check = Run("SELECT SUM(v) FROM t");
  EXPECT_EQ(check.rows[0][0].AsInt64(), 100);
}

TEST_F(EngineTest, DeleteFromAllStorageKinds) {
  for (const char* kind : {"dualtable", "hive", "hbase", "acid"}) {
    std::string name = std::string("t_") + kind;
    Run("CREATE TABLE " + name + " (id BIGINT, v BIGINT) STORED AS " + kind);
    Run("INSERT INTO " + name + " VALUES (1, 1), (2, 2), (3, 3), (4, 4)");
    auto result = Run("DELETE FROM " + name + " WHERE id <= 2 WITH RATIO 0.5");
    EXPECT_EQ(result.affected_rows, 2u) << kind;
    auto check = Run("SELECT COUNT(*) FROM " + name);
    EXPECT_EQ(check.rows[0][0].AsInt64(), 2) << kind;
  }
}

TEST_F(EngineTest, UpdateSeesOwnPriorUpdates) {
  Run("CREATE TABLE t (id BIGINT, v BIGINT) STORED AS dualtable");
  Run("INSERT INTO t VALUES (1, 10)");
  Run("UPDATE t SET v = v + 5 WITH RATIO 0.001");
  Run("UPDATE t SET v = v * 2 WITH RATIO 0.001");
  auto check = Run("SELECT v FROM t");
  EXPECT_EQ(check.rows[0][0].AsInt64(), 30);
}

TEST_F(EngineTest, CompactTableStatement) {
  Run("CREATE TABLE t (id BIGINT, v BIGINT) STORED AS dualtable");
  Run("INSERT INTO t VALUES (1, 1), (2, 2)");
  Run("UPDATE t SET v = 9 WHERE id = 1 WITH RATIO 0.001");
  Run("COMPACT TABLE t");
  auto check = Run("SELECT v FROM t ORDER BY id");
  EXPECT_EQ(check.rows[0][0].AsInt64(), 9);
  EXPECT_EQ(check.rows[1][0].AsInt64(), 2);
}

TEST_F(EngineTest, CompactIncrementalStatement) {
  Run("CREATE TABLE t (id BIGINT, v BIGINT) STORED AS dualtable");
  std::string insert = "INSERT INTO t VALUES (0, 0)";
  for (int i = 1; i < 100; ++i) insert += ", (" + std::to_string(i) + ", 0)";
  Run(insert);
  // A small ratio hint keeps the EDIT plan even though 90% of rows change,
  // so the incremental plan sees a genuinely dense file.
  Run("UPDATE t SET v = 7 WHERE id < 90 WITH RATIO 0.01");

  // EXPLAIN renders the plan without executing: per-file density vs
  // threshold plus the stray count.
  auto plan = Run("EXPLAIN COMPACT TABLE t INCREMENTAL");
  ASSERT_FALSE(plan.rows.empty());
  std::string rendered;
  for (const auto& row : plan.rows) rendered += row[0].AsString() + "\n";
  EXPECT_NE(rendered.find("COMPACT INCREMENTAL t"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("threshold"), std::string::npos) << rendered;

  auto result = Run("COMPACT TABLE t INCREMENTAL");
  EXPECT_NE(result.message.find("incremental compact of t"), std::string::npos)
      << result.message;
  auto check = Run("SELECT SUM(v), COUNT(*) FROM t");
  EXPECT_EQ(check.rows[0][0].AsInt64(), 90 * 7);
  EXPECT_EQ(check.rows[0][1].AsInt64(), 100);
}

TEST_F(EngineTest, CompactIncrementalRejectsNonDualTables) {
  Run("CREATE TABLE h (id BIGINT) STORED AS hive");
  auto result = session_->Execute("COMPACT TABLE h INCREMENTAL");
  EXPECT_FALSE(result.ok());
}

TEST_F(EngineTest, ShowTablesListsKinds) {
  Run("CREATE TABLE d (x BIGINT) STORED AS dualtable");
  Run("CREATE TABLE h (x BIGINT) STORED AS hive");
  auto result = Run("SHOW TABLES");
  ASSERT_EQ(result.rows.size(), 2u);
}

TEST_F(EngineTest, DropTable) {
  Run("CREATE TABLE t (x BIGINT)");
  Run("DROP TABLE t");
  EXPECT_FALSE(session_->Execute("SELECT * FROM t").ok());
  Run("DROP TABLE IF EXISTS t");  // no error
}

TEST_F(EngineTest, IfFunctionAndCaseInsensitivity) {
  Run("CREATE TABLE T (V BIGINT)");
  Run("INSERT INTO t VALUES (5), (15)");
  auto result = Run("SELECT SUM(IF(v > 10, 1, 0)) FROM T");
  EXPECT_EQ(result.rows[0][0].AsInt64(), 1);
}

TEST_F(EngineTest, InListPredicate) {
  Run("CREATE TABLE t (tag STRING)");
  Run("INSERT INTO t VALUES ('a'), ('b'), ('c'), ('d')");
  auto result = Run("SELECT COUNT(*) FROM t WHERE tag IN ('a', 'c')");
  EXPECT_EQ(result.rows[0][0].AsInt64(), 2);
}

TEST_F(EngineTest, NullSemantics) {
  Run("CREATE TABLE t (v BIGINT)");
  Run("INSERT INTO t VALUES (1), (NULL), (3)");
  // NULL comparisons exclude rows.
  EXPECT_EQ(Run("SELECT COUNT(*) FROM t WHERE v > 0").rows[0][0].AsInt64(), 2);
  EXPECT_EQ(Run("SELECT COUNT(*) FROM t WHERE v IS NULL").rows[0][0].AsInt64(), 1);
  EXPECT_EQ(Run("SELECT COUNT(v) FROM t").rows[0][0].AsInt64(), 2);
  EXPECT_EQ(Run("SELECT COUNT(*) FROM t").rows[0][0].AsInt64(), 3);
  EXPECT_EQ(Run("SELECT SUM(v) FROM t").rows[0][0].AsInt64(), 4);
}

TEST_F(EngineTest, ArithmeticAndDivision) {
  Run("CREATE TABLE t (a BIGINT, b BIGINT)");
  Run("INSERT INTO t VALUES (7, 2)");
  auto result = Run("SELECT a + b, a - b, a * b, a / b, a % b FROM t");
  EXPECT_EQ(result.rows[0][0].AsInt64(), 9);
  EXPECT_EQ(result.rows[0][1].AsInt64(), 5);
  EXPECT_EQ(result.rows[0][2].AsInt64(), 14);
  EXPECT_DOUBLE_EQ(result.rows[0][3].AsDouble(), 3.5);  // Hive-style: / is double
  EXPECT_EQ(result.rows[0][4].AsInt64(), 1);
}

TEST_F(EngineTest, ErrorMessagesForBadQueries) {
  Run("CREATE TABLE t (v BIGINT)");
  EXPECT_FALSE(session_->Execute("SELECT nope FROM t").ok());
  EXPECT_FALSE(session_->Execute("SELECT v FROM missing_table").ok());
  EXPECT_FALSE(session_->Execute("SELECT v, SUM(v) FROM t").ok());  // v not grouped
  EXPECT_FALSE(session_->Execute("INSERT INTO t VALUES (1, 2)").ok());  // arity
  EXPECT_FALSE(session_->Execute("CREATE TABLE t (v BIGINT)").ok());  // duplicate
}

TEST_F(EngineTest, OrderByAliasAndGroupByAlias) {
  Run("CREATE TABLE t (k BIGINT, v BIGINT)");
  Run("INSERT INTO t VALUES (1, 10), (1, 20), (2, 100)");
  auto result = Run("SELECT k grp, SUM(v) s FROM t GROUP BY grp ORDER BY s DESC");
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0][1].AsInt64(), 100);
}

TEST_F(EngineTest, ExplainSurfacesCostModel) {
  Run("CREATE TABLE t (id BIGINT, v BIGINT) STORED AS dualtable");
  Run("INSERT INTO t VALUES (1, 1), (2, 2)");
  auto low = Run("EXPLAIN UPDATE t SET v = 0 WHERE id = 1 WITH RATIO 0.01");
  std::string text;
  for (const Row& row : low.rows) text += row[0].AsString() + "\n";
  EXPECT_NE(text.find("EDIT"), std::string::npos);
  EXPECT_NE(text.find("crossover"), std::string::npos);
  // EXPLAIN does not execute: values unchanged.
  EXPECT_EQ(Run("SELECT SUM(v) FROM t").rows[0][0].AsInt64(), 3);

  auto high = Run("EXPLAIN UPDATE t SET v = 0 WITH RATIO 0.99");
  text.clear();
  for (const Row& row : high.rows) text += row[0].AsString() + "\n";
  EXPECT_NE(text.find("OVERWRITE"), std::string::npos);

  auto select = Run("EXPLAIN SELECT id, SUM(v) FROM t GROUP BY id");
  text.clear();
  for (const Row& row : select.rows) text += row[0].AsString() + "\n";
  EXPECT_NE(text.find("UNION READ"), std::string::npos);
  EXPECT_NE(text.find("aggregate"), std::string::npos);
}

TEST_F(EngineTest, ExplainHiveShowsRewritePlan) {
  Run("CREATE TABLE h (id BIGINT) STORED AS hive");
  auto result = Run("EXPLAIN DELETE FROM h WHERE id = 1");
  std::string text;
  for (const Row& row : result.rows) text += row[0].AsString() + "\n";
  EXPECT_NE(text.find("INSERT OVERWRITE rewrite"), std::string::npos);
}

TEST_F(EngineTest, MergeUpdatesMatchesAndInsertsRest) {
  Run("CREATE TABLE t (id BIGINT, v BIGINT) STORED AS dualtable");
  Run("INSERT INTO t VALUES (1, 10), (2, 20)");
  auto result =
      Run("MERGE INTO t ON (id) VALUES (2, 200), (3, 300) WITH RATIO 0.01");
  EXPECT_EQ(result.affected_rows, 2u);  // one update + one insert
  auto check = Run("SELECT id, v FROM t ORDER BY id");
  ASSERT_EQ(check.rows.size(), 3u);
  EXPECT_EQ(check.rows[0][1].AsInt64(), 10);
  EXPECT_EQ(check.rows[1][1].AsInt64(), 200);
  EXPECT_EQ(check.rows[2][1].AsInt64(), 300);
}

TEST_F(EngineTest, MergeWithCompositeKey) {
  Run("CREATE TABLE t (day BIGINT, meter BIGINT, kwh DOUBLE)");
  Run("INSERT INTO t VALUES (1, 7, 1.0), (1, 8, 2.0), (2, 7, 3.0)");
  Run("MERGE INTO t ON (day, meter) VALUES (1, 7, 9.5), (2, 8, 4.0)");
  auto check = Run("SELECT kwh FROM t ORDER BY day, meter");
  ASSERT_EQ(check.rows.size(), 4u);
  EXPECT_DOUBLE_EQ(check.rows[0][0].AsDouble(), 9.5);  // (1,7) updated
  EXPECT_DOUBLE_EQ(check.rows[1][0].AsDouble(), 2.0);  // (1,8) untouched
  EXPECT_DOUBLE_EQ(check.rows[3][0].AsDouble(), 4.0);  // (2,8) inserted
}

TEST_F(EngineTest, MergeAllInsertsWhenNoMatch) {
  Run("CREATE TABLE t (id BIGINT, v BIGINT)");
  auto result = Run("MERGE INTO t ON (id) VALUES (1, 1), (2, 2)");
  EXPECT_EQ(result.affected_rows, 2u);
  EXPECT_EQ(Run("SELECT COUNT(*) FROM t").rows[0][0].AsInt64(), 2);
}

TEST_F(EngineTest, MergeIdenticalAcrossStorageKinds) {
  for (const char* kind : {"dualtable", "hive", "hbase", "acid"}) {
    std::string name = std::string("m_") + kind;
    Run("CREATE TABLE " + name + " (id BIGINT, v BIGINT) STORED AS " + kind);
    Run("INSERT INTO " + name + " VALUES (1, 1), (2, 2), (3, 3)");
    Run("MERGE INTO " + name + " ON (id) VALUES (2, 22), (4, 44) WITH RATIO 0.25");
    auto check = Run("SELECT SUM(v), COUNT(*) FROM " + name);
    EXPECT_EQ(check.rows[0][0].AsInt64(), 1 + 22 + 3 + 44) << kind;
    EXPECT_EQ(check.rows[0][1].AsInt64(), 4) << kind;
  }
}

TEST_F(EngineTest, MergeArityAndKeyErrors) {
  Run("CREATE TABLE t (id BIGINT, v BIGINT)");
  EXPECT_FALSE(session_->Execute("MERGE INTO t ON (nope) VALUES (1, 2)").ok());
  EXPECT_FALSE(session_->Execute("MERGE INTO t ON (id) VALUES (1)").ok());
  EXPECT_FALSE(session_->Execute("MERGE INTO missing ON (id) VALUES (1, 2)").ok());
}

TEST_F(EngineTest, SameResultsAcrossAllStorageKinds) {
  // The same SQL must produce identical answers regardless of storage.
  std::vector<int64_t> counts;
  std::vector<int64_t> sums;
  for (const char* kind : {"dualtable", "hive", "hbase", "acid"}) {
    std::string name = std::string("x_") + kind;
    Run("CREATE TABLE " + name + " (id BIGINT, v BIGINT) STORED AS " + kind);
    std::string insert = "INSERT INTO " + name + " VALUES (0, 0)";
    for (int i = 1; i < 50; ++i) {
      insert += ", (" + std::to_string(i) + ", " + std::to_string(i * i) + ")";
    }
    Run(insert);
    Run("UPDATE " + name + " SET v = 0 WHERE id % 2 = 1 WITH RATIO 0.5");
    Run("DELETE FROM " + name + " WHERE id >= 40 WITH RATIO 0.2");
    auto result = Run("SELECT COUNT(*), SUM(v) FROM " + name);
    counts.push_back(result.rows[0][0].AsInt64());
    sums.push_back(result.rows[0][1].AsInt64());
  }
  for (size_t i = 1; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i], counts[0]);
    EXPECT_EQ(sums[i], sums[0]);
  }
}

// --- secondary-index point-lookup fast path ---

TEST_F(EngineTest, IndexedPointLookupMatchesScanPath) {
  // Two identical tables, one indexed: every query must answer identically
  // whether it resolves through the index or the full scan.
  Run("CREATE TABLE ti (id BIGINT, tag STRING, v BIGINT) INDEX (id, tag)");
  Run("CREATE TABLE ts (id BIGINT, tag STRING, v BIGINT)");
  for (const char* name : {"ti", "ts"}) {
    std::string insert = std::string("INSERT INTO ") + name + " VALUES (0, 't0', 0)";
    for (int i = 1; i < 120; ++i) {
      insert += ", (" + std::to_string(i) + ", 't" + std::to_string(i % 5) + "', " +
                std::to_string(i * 3) + ")";
    }
    Run(insert);
    Run(std::string("UPDATE ") + name + " SET v = 999 WHERE id = 7 WITH RATIO 0.01");
    Run(std::string("DELETE FROM ") + name + " WHERE id = 11 WITH RATIO 0.01");
  }
  for (const std::string& where :
       {std::string("id = 7"), std::string("id = 11"), std::string("id = 5000"),
        std::string("id IN (3, 7, 11, 90)"), std::string("tag = 't2'"),
        std::string("tag = 't2' AND v > 100"), std::string("17 = id")}) {
    auto indexed = Run("SELECT id, tag, v FROM ti WHERE " + where);
    auto scanned = Run("SELECT id, tag, v FROM ts WHERE " + where);
    ASSERT_EQ(indexed.rows.size(), scanned.rows.size()) << where;
    for (size_t i = 0; i < indexed.rows.size(); ++i) {
      EXPECT_EQ(RowToString(indexed.rows[i]), RowToString(scanned.rows[i])) << where;
    }
  }
  // The indexed table must actually have taken the index route.
  auto* dual = dynamic_cast<dual::DualTable*>(session_->catalog()->Lookup("ti")->table.get());
  ASSERT_NE(dual, nullptr);
  ASSERT_NE(dual->secondary_index(), nullptr);
  EXPECT_GT(dual->secondary_index()->stats().lookups.load(), 0u);
}

TEST_F(EngineTest, IndexedLookupSurvivesCompactAndLimit) {
  Run("CREATE TABLE tc (id BIGINT, v BIGINT) INDEX (id)");
  std::string insert = "INSERT INTO tc VALUES (0, 0)";
  for (int i = 1; i < 60; ++i) {
    insert += ", (" + std::to_string(i) + ", " + std::to_string(i) + ")";
  }
  Run(insert);
  Run("UPDATE tc SET v = 1000 WHERE id < 10 WITH RATIO 0.2");
  Run("COMPACT TABLE tc");
  auto result = Run("SELECT v FROM tc WHERE id = 4");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].AsInt64(), 1000);
  auto limited = Run("SELECT id FROM tc WHERE id IN (20, 21, 22) LIMIT 2");
  EXPECT_EQ(limited.rows.size(), 2u);
}

TEST_F(EngineTest, ExplainSurfacesIndexLookup) {
  Run("CREATE TABLE te (id BIGINT, v BIGINT) INDEX (id)");
  Run("INSERT INTO te VALUES (1, 10), (2, 20)");
  auto plan = Run("EXPLAIN SELECT v FROM te WHERE id = 2");
  bool saw_lookup = false;
  for (const Row& row : plan.rows) {
    if (row[0].AsString().find("index lookup") != std::string::npos) saw_lookup = true;
  }
  EXPECT_TRUE(saw_lookup) << "EXPLAIN did not surface the index route";
  // A predicate on the unindexed column must NOT claim the index route.
  auto scan_plan = Run("EXPLAIN SELECT id FROM te WHERE v = 20");
  for (const Row& row : scan_plan.rows) {
    EXPECT_EQ(row[0].AsString().find("index lookup"), std::string::npos);
  }
  // EXPLAIN ANALYZE actually executes and shows the index-lookup operator.
  auto analyze = Run("EXPLAIN ANALYZE SELECT v FROM te WHERE id = 2");
  bool saw_node = false;
  for (const Row& row : analyze.rows) {
    if (row[0].AsString().find("index-lookup") != std::string::npos) saw_node = true;
  }
  EXPECT_TRUE(saw_node) << "EXPLAIN ANALYZE trace is missing the index-lookup node";
}

TEST_F(EngineTest, IndexClauseValidation) {
  EXPECT_FALSE(session_->Execute("CREATE TABLE bad1 (id BIGINT) INDEX (nope)").ok());
  EXPECT_FALSE(
      session_->Execute("CREATE TABLE bad2 (id BIGINT) STORED AS hive INDEX (id)").ok());
  // DOUBLE has no order-preserving index encoding.
  EXPECT_FALSE(session_->Execute("CREATE TABLE bad3 (x DOUBLE) INDEX (x)").ok());
  // STRING and DATE are fine.
  Run("CREATE TABLE ok1 (d DATE, s STRING) INDEX (d, s)");
}

}  // namespace
}  // namespace dtl::sql
