#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"

namespace dtl::sql {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("SELECT a_1, 42, 3.5, 'it''s' FROM t WHERE x <= 5");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "select");  // lowercased keyword/identifier
  EXPECT_EQ((*tokens)[1].text, "a_1");
  EXPECT_EQ((*tokens)[3].int_value, 42);
  EXPECT_DOUBLE_EQ((*tokens)[5].double_value, 3.5);
  EXPECT_EQ((*tokens)[7].text, "it's");  // escaped quote
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("SELECT 1 -- trailing comment\n, 2");
  ASSERT_TRUE(tokens.ok());
  // select, 1, ',', 2, end
  EXPECT_EQ(tokens->size(), 5u);
}

TEST(LexerTest, OperatorNormalization) {
  auto tokens = Tokenize("a != b == c");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].text, "<>");
  EXPECT_EQ((*tokens)[3].text, "=");
}

TEST(LexerTest, UnterminatedStringIsError) {
  EXPECT_FALSE(Tokenize("SELECT 'oops").ok());
}

TEST(ParserTest, SelectWithEverything) {
  auto stmt = ParseStatement(
      "SELECT t.a, SUM(b) total FROM tbl t LEFT OUTER JOIN other o ON t.k = o.k "
      "WHERE t.a > 5 AND o.x IN (1, 2, 3) GROUP BY t.a HAVING SUM(b) > 10 "
      "ORDER BY total DESC LIMIT 7;");
  ASSERT_TRUE(stmt.ok());
  const auto& select = std::get<SelectStmt>(*stmt);
  EXPECT_EQ(select.items.size(), 2u);
  EXPECT_EQ(select.items[1].alias, "total");
  EXPECT_EQ(select.from.table, "tbl");
  EXPECT_EQ(select.from.alias, "t");
  ASSERT_EQ(select.joins.size(), 1u);
  EXPECT_TRUE(select.joins[0].left_outer);
  ASSERT_TRUE(select.where != nullptr);
  EXPECT_EQ(select.group_by.size(), 1u);
  ASSERT_TRUE(select.having != nullptr);
  ASSERT_EQ(select.order_by.size(), 1u);
  EXPECT_FALSE(select.order_by[0].ascending);
  EXPECT_EQ(select.limit, 7u);
}

TEST(ParserTest, SelectStar) {
  auto stmt = ParseStatement("SELECT * FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(std::get<SelectStmt>(*stmt).items[0].star);
}

TEST(ParserTest, CreateTableWithStorage) {
  auto stmt = ParseStatement(
      "CREATE TABLE IF NOT EXISTS m (id BIGINT, price DOUBLE, tag STRING) "
      "STORED AS dualtable");
  ASSERT_TRUE(stmt.ok());
  const auto& create = std::get<CreateTableStmt>(*stmt);
  EXPECT_TRUE(create.if_not_exists);
  EXPECT_EQ(create.columns.size(), 3u);
  EXPECT_EQ(create.stored_as, "dualtable");
}

TEST(ParserTest, InsertMultipleRows) {
  auto stmt = ParseStatement("INSERT INTO t VALUES (1, 'a'), (2, 'b')");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(std::get<InsertStmt>(*stmt).rows.size(), 2u);
}

TEST(ParserTest, UpdateWithRatioHint) {
  auto stmt =
      ParseStatement("UPDATE t SET a = a + 1, b = 'x' WHERE day < 5 WITH RATIO 0.05");
  ASSERT_TRUE(stmt.ok());
  const auto& update = std::get<UpdateStmt>(*stmt);
  EXPECT_EQ(update.assignments.size(), 2u);
  ASSERT_TRUE(update.ratio_hint.has_value());
  EXPECT_DOUBLE_EQ(*update.ratio_hint, 0.05);
}

TEST(ParserTest, DeleteWithWhere) {
  auto stmt = ParseStatement("DELETE FROM t WHERE id = 3");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(std::get<DeleteStmt>(*stmt).where != nullptr);
}

TEST(ParserTest, CompactAndShow) {
  EXPECT_TRUE(std::holds_alternative<CompactStmt>(*ParseStatement("COMPACT TABLE t")));
  EXPECT_TRUE(std::holds_alternative<ShowTablesStmt>(*ParseStatement("SHOW TABLES")));
}

TEST(ParserTest, ShowStatsForms) {
  auto summary = ParseStatement("SHOW STATS");
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(std::get<ShowStatsStmt>(*summary).what, ShowStatsStmt::What::kSummary);
  auto hist = ParseStatement("SHOW STATS HISTOGRAMS");
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(std::get<ShowStatsStmt>(*hist).what, ShowStatsStmt::What::kHistograms);
  auto queries = ParseStatement("show stats queries");
  ASSERT_TRUE(queries.ok());
  EXPECT_EQ(std::get<ShowStatsStmt>(*queries).what, ShowStatsStmt::What::kQueries);
  // STATS stays contextual: it is still a legal identifier.
  EXPECT_TRUE(ParseStatement("SELECT stats FROM t").ok());
}

TEST(ParserTest, CompactIncrementalBothForms) {
  auto plain = ParseStatement("COMPACT TABLE t");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(std::get<CompactStmt>(*plain).incremental);
  for (const char* sql :
       {"COMPACT INCREMENTAL TABLE t", "COMPACT TABLE t INCREMENTAL"}) {
    auto stmt = ParseStatement(sql);
    ASSERT_TRUE(stmt.ok()) << sql;
    const auto& compact = std::get<CompactStmt>(*stmt);
    EXPECT_TRUE(compact.incremental) << sql;
    EXPECT_EQ(compact.table, "t") << sql;
  }
}

TEST(ParserTest, PrecedenceAndOverOr) {
  auto expr = ParseExpression("a or b and c");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->op, "or");
  EXPECT_EQ((*expr)->args[1]->op, "and");
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto expr = ParseExpression("1 + 2 * 3");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->op, "+");
  EXPECT_EQ((*expr)->args[1]->op, "*");
}

TEST(ParserTest, BetweenDesugarsToRange) {
  auto expr = ParseExpression("x BETWEEN 1 AND 5");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->op, "and");
  EXPECT_EQ((*expr)->args[0]->op, ">=");
  EXPECT_EQ((*expr)->args[1]->op, "<=");
}

TEST(ParserTest, IsNullAndNotIn) {
  auto e1 = ParseExpression("x IS NOT NULL");
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ((*e1)->kind, Expr::Kind::kIsNull);
  EXPECT_TRUE((*e1)->negated);
  auto e2 = ParseExpression("x NOT IN (1, 2)");
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ((*e2)->kind, Expr::Kind::kInList);
  EXPECT_TRUE((*e2)->negated);
}

TEST(ParserTest, CountStar) {
  auto expr = ParseExpression("COUNT(*)");
  ASSERT_TRUE(expr.ok());
  EXPECT_TRUE((*expr)->star_arg);
}

TEST(ParserTest, ErrorsHaveContext) {
  auto stmt = ParseStatement("SELECT FROM t");
  ASSERT_FALSE(stmt.ok());
  auto stmt2 = ParseStatement("UPDATE t WHERE x = 1");
  ASSERT_FALSE(stmt2.ok());
  EXPECT_NE(stmt2.status().message().find("set"), std::string::npos);
}

TEST(ParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(ParseStatement("SELECT 1 FROM t extra garbage here").ok());
}

TEST(ParserTest, MergeStatement) {
  auto stmt = ParseStatement(
      "MERGE INTO t ON (a, b) VALUES (1, 2, 'x'), (3, 4, 'y') WITH RATIO 0.1");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& merge = std::get<MergeStmt>(*stmt);
  EXPECT_EQ(merge.key_columns, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(merge.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(*merge.ratio_hint, 0.1);
}

TEST(ParserTest, InsertOverwriteSelect) {
  auto stmt = ParseStatement("INSERT OVERWRITE TABLE t SELECT a, b FROM s WHERE a > 1");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& insert = std::get<InsertStmt>(*stmt);
  EXPECT_TRUE(insert.overwrite);
  ASSERT_NE(insert.select, nullptr);
  EXPECT_EQ(insert.select->items.size(), 2u);
}

TEST(ParserTest, InsertIntoSelect) {
  auto stmt = ParseStatement("INSERT INTO t SELECT * FROM s");
  ASSERT_TRUE(stmt.ok());
  const auto& insert = std::get<InsertStmt>(*stmt);
  EXPECT_FALSE(insert.overwrite);
  ASSERT_NE(insert.select, nullptr);
}

TEST(ParserTest, DerivedTableInFrom) {
  auto stmt = ParseStatement(
      "SELECT g.total FROM (SELECT SUM(v) total FROM t GROUP BY k) g WHERE g.total > 1");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& select = std::get<SelectStmt>(*stmt);
  ASSERT_NE(select.from.subquery, nullptr);
  EXPECT_EQ(select.from.alias, "g");
}

TEST(ParserTest, DerivedTableRequiresAlias) {
  EXPECT_FALSE(ParseStatement("SELECT * FROM (SELECT 1 FROM t)").ok());
}

TEST(ParserTest, DerivedTableInJoin) {
  auto stmt = ParseStatement(
      "SELECT * FROM a LEFT OUTER JOIN (SELECT k k, SUM(v) s FROM b GROUP BY k) g "
      "ON a.k = g.k");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& select = std::get<SelectStmt>(*stmt);
  ASSERT_EQ(select.joins.size(), 1u);
  EXPECT_NE(select.joins[0].table.subquery, nullptr);
}

TEST(ParserTest, LoadDataStatement) {
  auto stmt = ParseStatement("LOAD DATA INPATH '/staging/x.csv' INTO TABLE t");
  ASSERT_TRUE(stmt.ok());
  const auto& load = std::get<LoadStmt>(*stmt);
  EXPECT_EQ(load.path, "/staging/x.csv");
  EXPECT_FALSE(load.overwrite);
  auto stmt2 =
      ParseStatement("LOAD DATA INPATH '/x.csv' OVERWRITE INTO TABLE t");
  ASSERT_TRUE(stmt2.ok());
  EXPECT_TRUE(std::get<LoadStmt>(*stmt2).overwrite);
}

TEST(ExprTest, StructuralEquality) {
  auto a = ParseExpression("sum(x + 1)");
  auto b = ParseExpression("SUM(x + 1)");
  auto c = ParseExpression("sum(x + 2)");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_TRUE((*a)->Equals(**b));
  EXPECT_FALSE((*a)->Equals(**c));
}

TEST(ExprTest, CloneIsDeep) {
  auto a = ParseExpression("f(x, y + 1)");
  ASSERT_TRUE(a.ok());
  auto clone = (*a)->Clone();
  EXPECT_TRUE(clone->Equals(**a));
  EXPECT_NE(clone.get(), a->get());
}

}  // namespace
}  // namespace dtl::sql
