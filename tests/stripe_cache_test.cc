// StripeCache unit + stress coverage: LRU capacity/eviction invariants, the
// (owner, file, generation, stripe, projection) key discipline that keeps a
// post-COMPACT reader from ever being served a pre-swap stripe, and a
// TSan-friendly multi-session stress where concurrent lookups and scans run
// against EDIT/COMPACT generation swaps — every read through the cache must
// be byte-identical to the uncached path at the same snapshot.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "dualtable/dual_table.h"
#include "fs/filesystem.h"
#include "orc/reader.h"
#include "orc/stripe_cache.h"
#include "orc/writer.h"

namespace dtl::orc {
namespace {

std::shared_ptr<const StripeBatch> MakeBatch(uint64_t first_row, size_t rows,
                                             const std::string& payload) {
  auto batch = std::make_shared<StripeBatch>();
  batch->first_row = first_row;
  batch->num_rows = rows;
  batch->projection = {0};
  batch->columns.resize(1);
  for (size_t i = 0; i < rows; ++i) {
    batch->columns[0].push_back(Value::String(payload + std::to_string(i)));
  }
  return batch;
}

TEST(StripeCacheTest, LookupReturnsInsertedBatchAndCountsHits) {
  StripeCache cache(1 << 20, /*shards=*/2);
  auto batch = MakeBatch(0, 4, "p");
  EXPECT_EQ(cache.Lookup(1, 10, 1, 0, {0}), nullptr);
  cache.Insert(1, 10, 1, 0, {0}, batch);
  EXPECT_EQ(cache.Lookup(1, 10, 1, 0, {0}).get(), batch.get());
  const StripeCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(StripeCacheTest, GenerationIsPartOfTheKey) {
  // The stale-read regression: a file decoded under generation G must never
  // satisfy a lookup for the same (owner, file, stripe) at generation G+1 —
  // that is what makes a COMPACT-recycled slot safe.
  StripeCache cache(1 << 20, /*shards=*/2);
  cache.Insert(1, 10, /*generation=*/1, 0, {0}, MakeBatch(0, 4, "old"));
  EXPECT_EQ(cache.Lookup(1, 10, /*generation=*/2, 0, {0}), nullptr);
  // Same for a different projection and a different owner.
  EXPECT_EQ(cache.Lookup(1, 10, 1, 0, {0, 1}), nullptr);
  EXPECT_EQ(cache.Lookup(2, 10, 1, 0, {0}), nullptr);
  auto hit = cache.Lookup(1, 10, 1, 0, {0});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->columns[0][0].AsString(), "old0");
}

TEST(StripeCacheTest, CapacityBoundsResidentBytesAndEvictsLru) {
  // Each batch carries ~room for only a few entries; inserting many must
  // evict the least-recently-used while never exceeding capacity.
  StripeCache cache(/*capacity_bytes=*/4096, /*shards=*/1);
  for (uint64_t i = 0; i < 64; ++i) {
    cache.Insert(1, i, 1, 0, {0}, MakeBatch(0, 16, "payload-payload-"));
    EXPECT_LE(cache.Stats().bytes, 4096u) << "resident bytes exceeded capacity";
  }
  const StripeCacheStats stats = cache.Stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.entries, 0u);
  EXPECT_LT(stats.entries, 64u);
  // The most recent insert survives; the very first was evicted long ago.
  EXPECT_NE(cache.Lookup(1, 63, 1, 0, {0}), nullptr);
  EXPECT_EQ(cache.Lookup(1, 0, 1, 0, {0}), nullptr);
}

TEST(StripeCacheTest, EraseOwnerDropsOnlyThatOwner) {
  StripeCache cache(1 << 20, 2);
  cache.Insert(1, 10, 1, 0, {0}, MakeBatch(0, 4, "a"));
  cache.Insert(2, 10, 1, 0, {0}, MakeBatch(0, 4, "b"));
  cache.EraseOwner(1);
  EXPECT_EQ(cache.Lookup(1, 10, 1, 0, {0}), nullptr);
  EXPECT_NE(cache.Lookup(2, 10, 1, 0, {0}), nullptr);
}

TEST(StripeCacheTest, ReaderRoutesSharedReadsThroughCache) {
  fs::SimFileSystem fs;
  WriterOptions options;
  options.stripe_rows = 8;
  Schema schema({{"v", DataType::kInt64}});
  auto writer = OrcWriter::Create(&fs, "/t/c.orc", schema, 7, options);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 32; ++i) ASSERT_TRUE((*writer)->Append({Value::Int64(i)}).ok());
  ASSERT_TRUE((*writer)->Close().ok());

  StripeCache cache(1 << 20, 2);
  auto reader = OrcReader::Open(&fs, "/t/c.orc");
  ASSERT_TRUE(reader.ok());
  (*reader)->SetSharedCache(&cache, /*owner=*/StripeCache::NewOwnerToken(),
                            /*generation=*/1);
  auto first = (*reader)->ReadStripeShared(1, {0});
  ASSERT_TRUE(first.ok());
  auto second = (*reader)->ReadStripeShared(1, {0});
  ASSERT_TRUE(second.ok());
  // Same decoded stripe object: the second read was served from the cache.
  EXPECT_EQ(first->get(), second->get());
  EXPECT_GE(cache.Stats().hits, 1u);
  EXPECT_EQ((*first)->columns[0][0].AsInt64(), 8);
}

Schema StressSchema() {
  return Schema({{"id", DataType::kInt64}, {"payload", DataType::kString}});
}

// Concurrent point lookups + double scans against EDIT/COMPACT generation
// swaps, all sharing one tiny cache. Designed for TSan: fixed iteration
// counts, no timing assertions. Each reader compares two scans of the SAME
// pinned snapshot (first populates the cache, second hits it) — any stale or
// torn cached stripe shows up as a diff; the index path must agree too.
TEST(StripeCacheStressTest, CachedReadsMatchUncachedUnderConcurrentDmlAndCompact) {
  fs::SimFileSystem fs;
  auto metadata = dual::MetadataTable::Open(&fs);
  ASSERT_TRUE(metadata.ok());
  fs::ClusterModel cluster;
  ThreadPool pool(4);
  StripeCache cache(/*capacity_bytes=*/1 << 14, /*shards=*/2);

  dual::DualTableOptions options;
  options.writer_options.stripe_rows = 16;
  options.pool = &pool;
  options.indexed_columns = {0};
  options.stripe_cache = &cache;
  auto table = dual::DualTable::Open(&fs, metadata->get(), &cluster, "cache_stress",
                                     StressSchema(), options);
  ASSERT_TRUE(table.ok());
  dual::DualTable* t = table->get();

  constexpr int64_t kRows = 400;
  std::vector<Row> rows;
  for (int64_t i = 0; i < kRows; ++i) {
    rows.push_back({Value::Int64(i), Value::String("v0_" + std::to_string(i))});
  }
  ASSERT_TRUE(t->InsertRows(rows).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::thread writer_thread([&] {
    for (int round = 0; round < 12 && failures.load() == 0; ++round) {
      table::ScanSpec spec;
      spec.predicate_columns = {0};
      const int64_t lo = (round * 37) % kRows;
      const int64_t hi = lo + 50;
      spec.predicate = [lo, hi](const Row& row) {
        return row[0].AsInt64() >= lo && row[0].AsInt64() < hi;
      };
      std::vector<table::Assignment> assigns(1);
      assigns[0].column = 1;
      const std::string tag = "v" + std::to_string(round + 1) + "_";
      assigns[0].input_columns = {0};
      assigns[0].compute = [tag](const Row& row) {
        return Value::String(tag + std::to_string(row[0].AsInt64()));
      };
      if (!t->UpdateWithHint(spec, assigns, 0.01).ok()) failures.fetch_add(1);
      if (round % 4 == 3) {
        // Swap the whole generation under the readers.
        if (!t->Compact().ok()) failures.fetch_add(1);
      }
    }
    stop.store(true);
  });

  auto scan_all = [&](const dual::SnapshotPtr& snap, std::vector<std::string>* out) {
    auto it = t->ScanAt(snap, table::ScanSpec{});
    if (!it.ok()) return false;
    while ((*it)->Next()) out->push_back(dtl::RowToString((*it)->row()));
    return (*it)->status().ok();
  };

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      uint64_t iter = 0;
      while (!stop.load() && failures.load() == 0) {
        ++iter;
        dual::SnapshotPtr snap = t->AcquireSnapshot();
        std::vector<std::string> cold, warm;
        if (!scan_all(snap, &cold) || !scan_all(snap, &warm) || cold != warm) {
          failures.fetch_add(1);
          break;
        }
        // Index path at the same snapshot must see the same row bytes.
        const int64_t probe = static_cast<int64_t>((iter * 31 + r * 131)) % kRows;
        table::ScanSpec spec;
        auto looked = t->IndexLookupAt(snap, 0, {Value::Int64(probe)}, spec);
        if (!looked.ok() || looked->size() != 1 ||
            dtl::RowToString(looked->front().second) !=
                cold[static_cast<size_t>(probe)]) {
          failures.fetch_add(1);
          break;
        }
      }
    });
  }
  writer_thread.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(failures.load(), 0);
  const StripeCacheStats stats = cache.Stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_LE(stats.bytes, cache.capacity_bytes());
}

}  // namespace
}  // namespace dtl::orc
