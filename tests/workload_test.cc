#include <gtest/gtest.h>

#include "sql/session.h"
#include "workload/grid_gen.h"
#include "workload/tpch_gen.h"

namespace dtl::workload {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto session = sql::Session::Create();
    ASSERT_TRUE(session.ok());
    session_ = std::move(*session);
  }

  std::unique_ptr<sql::Session> session_;
};

TEST_F(WorkloadTest, LineitemGenerationDeterministic) {
  TpchConfig config;
  config.scale_factor = 0.001;  // 6000 rows
  auto t1 = session_->CreateHiveTable("li1", LineitemSchema());
  auto t2 = session_->CreateHiveTable("li2", LineitemSchema());
  ASSERT_TRUE(t1.ok() && t2.ok());
  ASSERT_TRUE(GenerateLineitem(t1->get(), config).ok());
  ASSERT_TRUE(GenerateLineitem(t2->get(), config).ok());

  auto rows1 = table::CollectRows(t1->get(), table::ScanSpec{});
  auto rows2 = table::CollectRows(t2->get(), table::ScanSpec{});
  ASSERT_TRUE(rows1.ok() && rows2.ok());
  ASSERT_EQ(rows1->size(), config.lineitem_rows());
  ASSERT_EQ(rows1->size(), rows2->size());
  for (size_t i = 0; i < rows1->size(); i += 97) {
    for (size_t c = 0; c < (*rows1)[i].size(); ++c) {
      EXPECT_EQ((*rows1)[i][c].Compare((*rows2)[i][c]), 0);
    }
  }
}

TEST_F(WorkloadTest, RatioPredicateSelectivityAccurate) {
  TpchConfig config;
  config.scale_factor = 0.002;
  auto t = session_->CreateHiveTable("lineitem", LineitemSchema());
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(GenerateLineitem(t->get(), config).ok());
  for (double ratio : {0.05, 0.2, 0.5}) {
    auto result = session_->Execute("SELECT COUNT(*) FROM lineitem WHERE " +
                                    LineitemRatioPredicate(ratio));
    ASSERT_TRUE(result.ok());
    double actual = static_cast<double>(result->rows[0][0].AsInt64()) /
                    static_cast<double>(config.lineitem_rows());
    EXPECT_NEAR(actual, ratio, 0.02) << "ratio " << ratio;
  }
}

TEST_F(WorkloadTest, TpchQueriesRun) {
  TpchConfig config;
  config.scale_factor = 0.001;
  auto li = session_->CreateHiveTable("lineitem", LineitemSchema());
  auto ord = session_->CreateHiveTable("orders", OrdersSchema());
  ASSERT_TRUE(li.ok() && ord.ok());
  ASSERT_TRUE(GenerateLineitem(li->get(), config).ok());
  ASSERT_TRUE(GenerateOrders(ord->get(), config).ok());

  auto qa = session_->Execute(QueryA("lineitem"));
  ASSERT_TRUE(qa.ok()) << qa.status().ToString();
  EXPECT_GE(qa->rows.size(), 3u);  // returnflag x linestatus groups
  EXPECT_EQ(qa->rows[0].size(), 10u);

  auto qb = session_->Execute(QueryB("lineitem", "orders"));
  ASSERT_TRUE(qb.ok()) << qb.status().ToString();
  EXPECT_LE(qb->rows.size(), 2u);  // MAIL, SHIP

  auto qc = session_->Execute(QueryC("lineitem"));
  ASSERT_TRUE(qc.ok());
  EXPECT_EQ(qc->rows[0][0].AsInt64(),
            static_cast<int64_t>(config.lineitem_rows()));
}

TEST_F(WorkloadTest, TpchDmlStatementsMatchTargetRatios) {
  TpchConfig config;
  config.scale_factor = 0.002;
  auto li = session_->CreateDualTable("lineitem", LineitemSchema());
  ASSERT_TRUE(li.ok());
  ASSERT_TRUE(GenerateLineitem(li->get(), config).ok());

  auto a = session_->Execute(DmlA("lineitem"));
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  double ratio_a = static_cast<double>(a->affected_rows) /
                   static_cast<double>(config.lineitem_rows());
  EXPECT_NEAR(ratio_a, 0.05, 0.02);
  EXPECT_EQ(a->dml_plan, "EDIT");  // 5% is far below the crossover

  auto b = session_->Execute(DmlB("lineitem"));
  ASSERT_TRUE(b.ok());
  double ratio_b = static_cast<double>(b->affected_rows) /
                   static_cast<double>(config.lineitem_rows());
  EXPECT_NEAR(ratio_b, 0.02, 0.015);
}

TEST_F(WorkloadTest, TpchDmlCJoinUpdate) {
  TpchConfig config;
  config.scale_factor = 0.002;
  auto li = session_->CreateDualTable("lineitem", LineitemSchema());
  auto ord = session_->CreateDualTable("orders", OrdersSchema());
  ASSERT_TRUE(li.ok() && ord.ok());
  ASSERT_TRUE(GenerateLineitem(li->get(), config).ok());
  ASSERT_TRUE(GenerateOrders(ord->get(), config).ok());

  auto result = RunDmlC(ord->get(), li->get());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  double ratio = static_cast<double>(result->rows_matched) /
                 static_cast<double>(config.orders_rows());
  // DML-c targets ~16% of orders.
  EXPECT_NEAR(ratio, 0.16, 0.1);
  EXPECT_GT(result->rows_matched, 0u);
}

TEST_F(WorkloadTest, GridTableSpecsCoverPaperTables) {
  GridConfig config;
  auto specs2 = TableIISpecs(config);
  auto specs3 = TableIIISpecs(config);
  EXPECT_EQ(specs2.size(), 6u);
  EXPECT_EQ(specs3.size(), 6u);
  // Paper row counts preserved.
  EXPECT_EQ(specs2[4].name, "tj_gbsjwzl_mx");
  EXPECT_EQ(specs2[4].paper_rows, 239032928u);
  // Wide rows: experiment columns + fillers.
  EXPECT_GE(specs2[0].schema.num_fields(), 5u + config.filler_columns);
}

TEST_F(WorkloadTest, GridSweepPredicateSelectsExpectedDays) {
  GridConfig config;
  config.fraction = 1.0 / 40000.0;  // ~6000 rows in tj_gbsjwzl_mx
  auto specs = TableIISpecs(config);
  const auto& mx = specs[4];
  auto t = session_->CreateDualTable(mx.name, mx.schema);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(GenerateGridTable(mx, config, t->get()).ok());
  const auto total = ScaledRows(mx, config);

  auto result = session_->Execute(GridUpdateDays(6));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  double ratio =
      static_cast<double>(result->affected_rows) / static_cast<double>(total);
  EXPECT_NEAR(ratio, 6.0 / 36.0, 0.03);
}

TEST_F(WorkloadTest, TableIVStatementsHitPaperRatios) {
  GridConfig config;
  config.fraction = 1.0 / 8000.0;
  config.min_rows = 4000;
  for (const auto& spec : TableIIISpecs(config)) {
    auto t = session_->CreateDualTable(spec.name, spec.schema);
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(GenerateGridTable(spec, config, t->get()).ok());
  }
  for (const GridStatement& stmt : TableIVStatements()) {
    auto result = session_->Execute(stmt.sql);
    ASSERT_TRUE(result.ok()) << stmt.id << ": " << result.status().ToString();
    auto count = session_->Execute("SELECT COUNT(*) FROM " + stmt.table);
    ASSERT_TRUE(count.ok());
    // Reconstruct pre-statement row count for deletes.
    double total = static_cast<double>(count->rows[0][0].AsInt64());
    if (stmt.id[0] == 'D') total += static_cast<double>(result->affected_rows);
    double actual = total == 0 ? 0 : static_cast<double>(result->affected_rows) / total;
    // Within 3x of the paper ratio (distributions are coarse at test scale);
    // ultra-selective statements (D#4 at 0.01%) may match no rows at all here.
    if (total * stmt.ratio >= 5.0) {
      EXPECT_GT(result->affected_rows, 0u) << stmt.id;
    }
    EXPECT_LT(actual, stmt.ratio * 3 + 0.02) << stmt.id;
  }
}

TEST_F(WorkloadTest, GridSelect1JoinRuns) {
  GridConfig config;
  config.fraction = 1.0 / 40000.0;
  config.min_rows = 200;
  for (const auto& spec : TableIISpecs(config)) {
    auto t = session_->CreateHiveTable(spec.name, spec.schema);
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(GenerateGridTable(spec, config, t->get()).ok());
  }
  auto r1 = session_->Execute(GridSelect1());
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_GT(r1->rows.size(), 0u);
  auto r2 = session_->Execute(GridSelect2());
  ASSERT_TRUE(r2.ok());
  EXPECT_GT(r2->rows[0][0].AsInt64(), 0);
}

TEST(ScenarioMixTest, TableIPercentagesMatchPaper) {
  // Paper Table I: %DML per scenario = 62, 72, 79, 50, 63.
  auto mixes = ScenarioMixes();
  ASSERT_EQ(mixes.size(), 5u);
  const int expected[] = {62, 72, 79, 50, 63};
  for (size_t i = 0; i < mixes.size(); ++i) {
    EXPECT_EQ(static_cast<int>(mixes[i].dml_percent() + 0.5), expected[i])
        << "scenario " << i + 1;
    EXPECT_GE(mixes[i].dml_percent(), 50.0);  // the paper's headline: ≥50% DML
  }
}

}  // namespace
}  // namespace dtl::workload
