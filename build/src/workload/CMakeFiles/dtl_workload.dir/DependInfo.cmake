
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/grid_gen.cc" "src/workload/CMakeFiles/dtl_workload.dir/grid_gen.cc.o" "gcc" "src/workload/CMakeFiles/dtl_workload.dir/grid_gen.cc.o.d"
  "/root/repo/src/workload/tpch_gen.cc" "src/workload/CMakeFiles/dtl_workload.dir/tpch_gen.cc.o" "gcc" "src/workload/CMakeFiles/dtl_workload.dir/tpch_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dtl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/dtl_table.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/dtl_fs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
