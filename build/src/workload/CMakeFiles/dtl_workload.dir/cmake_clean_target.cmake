file(REMOVE_RECURSE
  "libdtl_workload.a"
)
