# Empty dependencies file for dtl_workload.
# This may be replaced when dependencies are built.
