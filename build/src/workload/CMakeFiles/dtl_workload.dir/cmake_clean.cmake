file(REMOVE_RECURSE
  "CMakeFiles/dtl_workload.dir/grid_gen.cc.o"
  "CMakeFiles/dtl_workload.dir/grid_gen.cc.o.d"
  "CMakeFiles/dtl_workload.dir/tpch_gen.cc.o"
  "CMakeFiles/dtl_workload.dir/tpch_gen.cc.o.d"
  "libdtl_workload.a"
  "libdtl_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtl_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
