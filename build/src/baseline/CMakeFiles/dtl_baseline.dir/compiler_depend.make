# Empty compiler generated dependencies file for dtl_baseline.
# This may be replaced when dependencies are built.
