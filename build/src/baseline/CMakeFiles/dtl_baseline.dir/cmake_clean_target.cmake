file(REMOVE_RECURSE
  "libdtl_baseline.a"
)
