
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/acid_table.cc" "src/baseline/CMakeFiles/dtl_baseline.dir/acid_table.cc.o" "gcc" "src/baseline/CMakeFiles/dtl_baseline.dir/acid_table.cc.o.d"
  "/root/repo/src/baseline/hbase_table.cc" "src/baseline/CMakeFiles/dtl_baseline.dir/hbase_table.cc.o" "gcc" "src/baseline/CMakeFiles/dtl_baseline.dir/hbase_table.cc.o.d"
  "/root/repo/src/baseline/hive_table.cc" "src/baseline/CMakeFiles/dtl_baseline.dir/hive_table.cc.o" "gcc" "src/baseline/CMakeFiles/dtl_baseline.dir/hive_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dtl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/dtl_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/orc/CMakeFiles/dtl_orc.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/dtl_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/dtl_table.dir/DependInfo.cmake"
  "/root/repo/build/src/dualtable/CMakeFiles/dtl_dualtable.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
