file(REMOVE_RECURSE
  "CMakeFiles/dtl_baseline.dir/acid_table.cc.o"
  "CMakeFiles/dtl_baseline.dir/acid_table.cc.o.d"
  "CMakeFiles/dtl_baseline.dir/hbase_table.cc.o"
  "CMakeFiles/dtl_baseline.dir/hbase_table.cc.o.d"
  "CMakeFiles/dtl_baseline.dir/hive_table.cc.o"
  "CMakeFiles/dtl_baseline.dir/hive_table.cc.o.d"
  "libdtl_baseline.a"
  "libdtl_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtl_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
