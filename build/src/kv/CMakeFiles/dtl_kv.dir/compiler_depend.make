# Empty compiler generated dependencies file for dtl_kv.
# This may be replaced when dependencies are built.
