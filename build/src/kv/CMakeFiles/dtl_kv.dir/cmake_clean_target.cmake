file(REMOVE_RECURSE
  "libdtl_kv.a"
)
