
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kv/sstable.cc" "src/kv/CMakeFiles/dtl_kv.dir/sstable.cc.o" "gcc" "src/kv/CMakeFiles/dtl_kv.dir/sstable.cc.o.d"
  "/root/repo/src/kv/store.cc" "src/kv/CMakeFiles/dtl_kv.dir/store.cc.o" "gcc" "src/kv/CMakeFiles/dtl_kv.dir/store.cc.o.d"
  "/root/repo/src/kv/wal.cc" "src/kv/CMakeFiles/dtl_kv.dir/wal.cc.o" "gcc" "src/kv/CMakeFiles/dtl_kv.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dtl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/dtl_fs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
