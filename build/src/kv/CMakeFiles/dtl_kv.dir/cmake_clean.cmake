file(REMOVE_RECURSE
  "CMakeFiles/dtl_kv.dir/sstable.cc.o"
  "CMakeFiles/dtl_kv.dir/sstable.cc.o.d"
  "CMakeFiles/dtl_kv.dir/store.cc.o"
  "CMakeFiles/dtl_kv.dir/store.cc.o.d"
  "CMakeFiles/dtl_kv.dir/wal.cc.o"
  "CMakeFiles/dtl_kv.dir/wal.cc.o.d"
  "libdtl_kv.a"
  "libdtl_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtl_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
