file(REMOVE_RECURSE
  "libdtl_orc.a"
)
