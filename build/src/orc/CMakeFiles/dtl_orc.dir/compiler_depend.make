# Empty compiler generated dependencies file for dtl_orc.
# This may be replaced when dependencies are built.
