file(REMOVE_RECURSE
  "CMakeFiles/dtl_orc.dir/encoding.cc.o"
  "CMakeFiles/dtl_orc.dir/encoding.cc.o.d"
  "CMakeFiles/dtl_orc.dir/orc_types.cc.o"
  "CMakeFiles/dtl_orc.dir/orc_types.cc.o.d"
  "CMakeFiles/dtl_orc.dir/reader.cc.o"
  "CMakeFiles/dtl_orc.dir/reader.cc.o.d"
  "CMakeFiles/dtl_orc.dir/writer.cc.o"
  "CMakeFiles/dtl_orc.dir/writer.cc.o.d"
  "libdtl_orc.a"
  "libdtl_orc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtl_orc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
