
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/orc/encoding.cc" "src/orc/CMakeFiles/dtl_orc.dir/encoding.cc.o" "gcc" "src/orc/CMakeFiles/dtl_orc.dir/encoding.cc.o.d"
  "/root/repo/src/orc/orc_types.cc" "src/orc/CMakeFiles/dtl_orc.dir/orc_types.cc.o" "gcc" "src/orc/CMakeFiles/dtl_orc.dir/orc_types.cc.o.d"
  "/root/repo/src/orc/reader.cc" "src/orc/CMakeFiles/dtl_orc.dir/reader.cc.o" "gcc" "src/orc/CMakeFiles/dtl_orc.dir/reader.cc.o.d"
  "/root/repo/src/orc/writer.cc" "src/orc/CMakeFiles/dtl_orc.dir/writer.cc.o" "gcc" "src/orc/CMakeFiles/dtl_orc.dir/writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dtl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/dtl_fs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
