# Empty dependencies file for dtl_sql.
# This may be replaced when dependencies are built.
