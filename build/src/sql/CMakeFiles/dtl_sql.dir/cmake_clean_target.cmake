file(REMOVE_RECURSE
  "libdtl_sql.a"
)
