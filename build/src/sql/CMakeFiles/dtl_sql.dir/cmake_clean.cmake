file(REMOVE_RECURSE
  "CMakeFiles/dtl_sql.dir/ast.cc.o"
  "CMakeFiles/dtl_sql.dir/ast.cc.o.d"
  "CMakeFiles/dtl_sql.dir/binder.cc.o"
  "CMakeFiles/dtl_sql.dir/binder.cc.o.d"
  "CMakeFiles/dtl_sql.dir/engine.cc.o"
  "CMakeFiles/dtl_sql.dir/engine.cc.o.d"
  "CMakeFiles/dtl_sql.dir/lexer.cc.o"
  "CMakeFiles/dtl_sql.dir/lexer.cc.o.d"
  "CMakeFiles/dtl_sql.dir/parser.cc.o"
  "CMakeFiles/dtl_sql.dir/parser.cc.o.d"
  "CMakeFiles/dtl_sql.dir/session.cc.o"
  "CMakeFiles/dtl_sql.dir/session.cc.o.d"
  "libdtl_sql.a"
  "libdtl_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtl_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
