file(REMOVE_RECURSE
  "CMakeFiles/dtl_table.dir/catalog.cc.o"
  "CMakeFiles/dtl_table.dir/catalog.cc.o.d"
  "CMakeFiles/dtl_table.dir/csv.cc.o"
  "CMakeFiles/dtl_table.dir/csv.cc.o.d"
  "CMakeFiles/dtl_table.dir/storage_table.cc.o"
  "CMakeFiles/dtl_table.dir/storage_table.cc.o.d"
  "libdtl_table.a"
  "libdtl_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtl_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
