file(REMOVE_RECURSE
  "libdtl_table.a"
)
