# Empty dependencies file for dtl_table.
# This may be replaced when dependencies are built.
