# Empty compiler generated dependencies file for dtl_dualtable.
# This may be replaced when dependencies are built.
