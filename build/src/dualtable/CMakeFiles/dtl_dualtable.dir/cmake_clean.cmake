file(REMOVE_RECURSE
  "CMakeFiles/dtl_dualtable.dir/attached_table.cc.o"
  "CMakeFiles/dtl_dualtable.dir/attached_table.cc.o.d"
  "CMakeFiles/dtl_dualtable.dir/cost_model.cc.o"
  "CMakeFiles/dtl_dualtable.dir/cost_model.cc.o.d"
  "CMakeFiles/dtl_dualtable.dir/dual_table.cc.o"
  "CMakeFiles/dtl_dualtable.dir/dual_table.cc.o.d"
  "CMakeFiles/dtl_dualtable.dir/master_table.cc.o"
  "CMakeFiles/dtl_dualtable.dir/master_table.cc.o.d"
  "CMakeFiles/dtl_dualtable.dir/metadata.cc.o"
  "CMakeFiles/dtl_dualtable.dir/metadata.cc.o.d"
  "CMakeFiles/dtl_dualtable.dir/union_read.cc.o"
  "CMakeFiles/dtl_dualtable.dir/union_read.cc.o.d"
  "libdtl_dualtable.a"
  "libdtl_dualtable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtl_dualtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
