file(REMOVE_RECURSE
  "libdtl_dualtable.a"
)
