
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dualtable/attached_table.cc" "src/dualtable/CMakeFiles/dtl_dualtable.dir/attached_table.cc.o" "gcc" "src/dualtable/CMakeFiles/dtl_dualtable.dir/attached_table.cc.o.d"
  "/root/repo/src/dualtable/cost_model.cc" "src/dualtable/CMakeFiles/dtl_dualtable.dir/cost_model.cc.o" "gcc" "src/dualtable/CMakeFiles/dtl_dualtable.dir/cost_model.cc.o.d"
  "/root/repo/src/dualtable/dual_table.cc" "src/dualtable/CMakeFiles/dtl_dualtable.dir/dual_table.cc.o" "gcc" "src/dualtable/CMakeFiles/dtl_dualtable.dir/dual_table.cc.o.d"
  "/root/repo/src/dualtable/master_table.cc" "src/dualtable/CMakeFiles/dtl_dualtable.dir/master_table.cc.o" "gcc" "src/dualtable/CMakeFiles/dtl_dualtable.dir/master_table.cc.o.d"
  "/root/repo/src/dualtable/metadata.cc" "src/dualtable/CMakeFiles/dtl_dualtable.dir/metadata.cc.o" "gcc" "src/dualtable/CMakeFiles/dtl_dualtable.dir/metadata.cc.o.d"
  "/root/repo/src/dualtable/union_read.cc" "src/dualtable/CMakeFiles/dtl_dualtable.dir/union_read.cc.o" "gcc" "src/dualtable/CMakeFiles/dtl_dualtable.dir/union_read.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dtl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/dtl_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/orc/CMakeFiles/dtl_orc.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/dtl_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/dtl_table.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
