file(REMOVE_RECURSE
  "libdtl_common.a"
)
