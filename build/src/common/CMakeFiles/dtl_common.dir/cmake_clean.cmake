file(REMOVE_RECURSE
  "CMakeFiles/dtl_common.dir/bloom.cc.o"
  "CMakeFiles/dtl_common.dir/bloom.cc.o.d"
  "CMakeFiles/dtl_common.dir/coding.cc.o"
  "CMakeFiles/dtl_common.dir/coding.cc.o.d"
  "CMakeFiles/dtl_common.dir/schema.cc.o"
  "CMakeFiles/dtl_common.dir/schema.cc.o.d"
  "CMakeFiles/dtl_common.dir/status.cc.o"
  "CMakeFiles/dtl_common.dir/status.cc.o.d"
  "CMakeFiles/dtl_common.dir/thread_pool.cc.o"
  "CMakeFiles/dtl_common.dir/thread_pool.cc.o.d"
  "CMakeFiles/dtl_common.dir/value.cc.o"
  "CMakeFiles/dtl_common.dir/value.cc.o.d"
  "libdtl_common.a"
  "libdtl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
