# Empty dependencies file for dtl_common.
# This may be replaced when dependencies are built.
