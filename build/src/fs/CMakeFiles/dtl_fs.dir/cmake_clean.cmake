file(REMOVE_RECURSE
  "CMakeFiles/dtl_fs.dir/cluster_model.cc.o"
  "CMakeFiles/dtl_fs.dir/cluster_model.cc.o.d"
  "CMakeFiles/dtl_fs.dir/filesystem.cc.o"
  "CMakeFiles/dtl_fs.dir/filesystem.cc.o.d"
  "libdtl_fs.a"
  "libdtl_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtl_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
