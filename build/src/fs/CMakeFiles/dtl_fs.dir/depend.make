# Empty dependencies file for dtl_fs.
# This may be replaced when dependencies are built.
