file(REMOVE_RECURSE
  "libdtl_fs.a"
)
