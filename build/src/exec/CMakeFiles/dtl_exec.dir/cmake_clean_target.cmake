file(REMOVE_RECURSE
  "libdtl_exec.a"
)
