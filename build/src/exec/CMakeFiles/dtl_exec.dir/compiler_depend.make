# Empty compiler generated dependencies file for dtl_exec.
# This may be replaced when dependencies are built.
