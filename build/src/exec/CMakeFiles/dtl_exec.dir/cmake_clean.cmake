file(REMOVE_RECURSE
  "CMakeFiles/dtl_exec.dir/mapreduce.cc.o"
  "CMakeFiles/dtl_exec.dir/mapreduce.cc.o.d"
  "CMakeFiles/dtl_exec.dir/operators.cc.o"
  "CMakeFiles/dtl_exec.dir/operators.cc.o.d"
  "libdtl_exec.a"
  "libdtl_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtl_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
