file(REMOVE_RECURSE
  "CMakeFiles/costmodel_explorer.dir/costmodel_explorer.cpp.o"
  "CMakeFiles/costmodel_explorer.dir/costmodel_explorer.cpp.o.d"
  "costmodel_explorer"
  "costmodel_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costmodel_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
