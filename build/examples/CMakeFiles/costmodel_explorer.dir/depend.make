# Empty dependencies file for costmodel_explorer.
# This may be replaced when dependencies are built.
