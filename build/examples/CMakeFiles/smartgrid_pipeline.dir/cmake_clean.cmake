file(REMOVE_RECURSE
  "CMakeFiles/smartgrid_pipeline.dir/smartgrid_pipeline.cpp.o"
  "CMakeFiles/smartgrid_pipeline.dir/smartgrid_pipeline.cpp.o.d"
  "smartgrid_pipeline"
  "smartgrid_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartgrid_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
