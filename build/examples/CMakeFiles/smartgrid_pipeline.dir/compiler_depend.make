# Empty compiler generated dependencies file for smartgrid_pipeline.
# This may be replaced when dependencies are built.
