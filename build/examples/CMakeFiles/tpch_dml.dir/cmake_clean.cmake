file(REMOVE_RECURSE
  "CMakeFiles/tpch_dml.dir/tpch_dml.cpp.o"
  "CMakeFiles/tpch_dml.dir/tpch_dml.cpp.o.d"
  "tpch_dml"
  "tpch_dml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_dml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
