# Empty dependencies file for tpch_dml.
# This may be replaced when dependencies are built.
