# Empty dependencies file for dtlsh.
# This may be replaced when dependencies are built.
