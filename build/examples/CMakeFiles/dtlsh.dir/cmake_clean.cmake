file(REMOVE_RECURSE
  "CMakeFiles/dtlsh.dir/dtlsh.cpp.o"
  "CMakeFiles/dtlsh.dir/dtlsh.cpp.o.d"
  "dtlsh"
  "dtlsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtlsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
