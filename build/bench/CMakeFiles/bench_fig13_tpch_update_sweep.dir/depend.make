# Empty dependencies file for bench_fig13_tpch_update_sweep.
# This may be replaced when dependencies are built.
