file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_tpch_update_sweep.dir/bench_fig13_tpch_update_sweep.cc.o"
  "CMakeFiles/bench_fig13_tpch_update_sweep.dir/bench_fig13_tpch_update_sweep.cc.o.d"
  "bench_fig13_tpch_update_sweep"
  "bench_fig13_tpch_update_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_tpch_update_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
