# Empty compiler generated dependencies file for bench_fig14_tpch_delete_sweep.
# This may be replaced when dependencies are built.
