file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_tpch_delete_sweep.dir/bench_fig14_tpch_delete_sweep.cc.o"
  "CMakeFiles/bench_fig14_tpch_delete_sweep.dir/bench_fig14_tpch_delete_sweep.cc.o.d"
  "bench_fig14_tpch_delete_sweep"
  "bench_fig14_tpch_delete_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_tpch_delete_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
