file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_grid_statements.dir/bench_table4_grid_statements.cc.o"
  "CMakeFiles/bench_table4_grid_statements.dir/bench_table4_grid_statements.cc.o.d"
  "bench_table4_grid_statements"
  "bench_table4_grid_statements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_grid_statements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
