# Empty dependencies file for bench_table4_grid_statements.
# This may be replaced when dependencies are built.
