# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_fig09_grid_read_after_delete.
