file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_grid_read_after_delete.dir/bench_fig09_grid_read_after_delete.cc.o"
  "CMakeFiles/bench_fig09_grid_read_after_delete.dir/bench_fig09_grid_read_after_delete.cc.o.d"
  "bench_fig09_grid_read_after_delete"
  "bench_fig09_grid_read_after_delete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_grid_read_after_delete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
