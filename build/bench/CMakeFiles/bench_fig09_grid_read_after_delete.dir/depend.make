# Empty dependencies file for bench_fig09_grid_read_after_delete.
# This may be replaced when dependencies are built.
