# Empty compiler generated dependencies file for bench_table1_dml_ratio.
# This may be replaced when dependencies are built.
