file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_dml_ratio.dir/bench_table1_dml_ratio.cc.o"
  "CMakeFiles/bench_table1_dml_ratio.dir/bench_table1_dml_ratio.cc.o.d"
  "bench_table1_dml_ratio"
  "bench_table1_dml_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_dml_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
