# Empty compiler generated dependencies file for bench_fig08_grid_update_plus_read.
# This may be replaced when dependencies are built.
