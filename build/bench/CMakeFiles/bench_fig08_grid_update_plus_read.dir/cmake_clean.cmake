file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_grid_update_plus_read.dir/bench_fig08_grid_update_plus_read.cc.o"
  "CMakeFiles/bench_fig08_grid_update_plus_read.dir/bench_fig08_grid_update_plus_read.cc.o.d"
  "bench_fig08_grid_update_plus_read"
  "bench_fig08_grid_update_plus_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_grid_update_plus_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
