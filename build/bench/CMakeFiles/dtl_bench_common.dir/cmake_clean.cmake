file(REMOVE_RECURSE
  "CMakeFiles/dtl_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/dtl_bench_common.dir/bench_common.cc.o.d"
  "libdtl_bench_common.a"
  "libdtl_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtl_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
