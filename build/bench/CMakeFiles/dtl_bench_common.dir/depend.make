# Empty dependencies file for dtl_bench_common.
# This may be replaced when dependencies are built.
