file(REMOVE_RECURSE
  "libdtl_bench_common.a"
)
