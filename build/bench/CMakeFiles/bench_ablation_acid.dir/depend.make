# Empty dependencies file for bench_ablation_acid.
# This may be replaced when dependencies are built.
