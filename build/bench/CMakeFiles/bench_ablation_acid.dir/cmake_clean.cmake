file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_acid.dir/bench_ablation_acid.cc.o"
  "CMakeFiles/bench_ablation_acid.dir/bench_ablation_acid.cc.o.d"
  "bench_ablation_acid"
  "bench_ablation_acid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_acid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
