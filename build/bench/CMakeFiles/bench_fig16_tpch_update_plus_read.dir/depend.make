# Empty dependencies file for bench_fig16_tpch_update_plus_read.
# This may be replaced when dependencies are built.
