# Empty compiler generated dependencies file for bench_fig18_tpch_delete_plus_read.
# This may be replaced when dependencies are built.
