# Empty dependencies file for bench_fig11_tpch_read.
# This may be replaced when dependencies are built.
