file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_tpch_read.dir/bench_fig11_tpch_read.cc.o"
  "CMakeFiles/bench_fig11_tpch_read.dir/bench_fig11_tpch_read.cc.o.d"
  "bench_fig11_tpch_read"
  "bench_fig11_tpch_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_tpch_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
