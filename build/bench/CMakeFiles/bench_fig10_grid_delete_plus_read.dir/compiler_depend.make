# Empty compiler generated dependencies file for bench_fig10_grid_delete_plus_read.
# This may be replaced when dependencies are built.
