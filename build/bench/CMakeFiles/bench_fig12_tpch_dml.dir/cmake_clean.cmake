file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_tpch_dml.dir/bench_fig12_tpch_dml.cc.o"
  "CMakeFiles/bench_fig12_tpch_dml.dir/bench_fig12_tpch_dml.cc.o.d"
  "bench_fig12_tpch_dml"
  "bench_fig12_tpch_dml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_tpch_dml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
