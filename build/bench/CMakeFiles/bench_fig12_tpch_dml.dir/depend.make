# Empty dependencies file for bench_fig12_tpch_dml.
# This may be replaced when dependencies are built.
