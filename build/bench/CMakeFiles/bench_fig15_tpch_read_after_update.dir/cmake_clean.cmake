file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_tpch_read_after_update.dir/bench_fig15_tpch_read_after_update.cc.o"
  "CMakeFiles/bench_fig15_tpch_read_after_update.dir/bench_fig15_tpch_read_after_update.cc.o.d"
  "bench_fig15_tpch_read_after_update"
  "bench_fig15_tpch_read_after_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_tpch_read_after_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
