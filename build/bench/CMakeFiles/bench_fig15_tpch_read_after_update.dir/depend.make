# Empty dependencies file for bench_fig15_tpch_read_after_update.
# This may be replaced when dependencies are built.
