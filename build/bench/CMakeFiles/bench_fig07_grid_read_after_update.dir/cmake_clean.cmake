file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_grid_read_after_update.dir/bench_fig07_grid_read_after_update.cc.o"
  "CMakeFiles/bench_fig07_grid_read_after_update.dir/bench_fig07_grid_read_after_update.cc.o.d"
  "bench_fig07_grid_read_after_update"
  "bench_fig07_grid_read_after_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_grid_read_after_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
