# Empty compiler generated dependencies file for bench_fig07_grid_read_after_update.
# This may be replaced when dependencies are built.
