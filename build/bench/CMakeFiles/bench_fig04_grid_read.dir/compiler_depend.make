# Empty compiler generated dependencies file for bench_fig04_grid_read.
# This may be replaced when dependencies are built.
