file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_grid_read.dir/bench_fig04_grid_read.cc.o"
  "CMakeFiles/bench_fig04_grid_read.dir/bench_fig04_grid_read.cc.o.d"
  "bench_fig04_grid_read"
  "bench_fig04_grid_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_grid_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
