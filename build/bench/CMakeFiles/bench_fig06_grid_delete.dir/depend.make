# Empty dependencies file for bench_fig06_grid_delete.
# This may be replaced when dependencies are built.
