file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_grid_delete.dir/bench_fig06_grid_delete.cc.o"
  "CMakeFiles/bench_fig06_grid_delete.dir/bench_fig06_grid_delete.cc.o.d"
  "bench_fig06_grid_delete"
  "bench_fig06_grid_delete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_grid_delete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
