# Empty dependencies file for bench_fig05_grid_update.
# This may be replaced when dependencies are built.
