# Empty compiler generated dependencies file for bench_fig17_tpch_read_after_delete.
# This may be replaced when dependencies are built.
