# Empty dependencies file for orc_test.
# This may be replaced when dependencies are built.
