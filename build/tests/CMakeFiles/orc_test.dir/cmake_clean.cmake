file(REMOVE_RECURSE
  "CMakeFiles/orc_test.dir/orc_test.cc.o"
  "CMakeFiles/orc_test.dir/orc_test.cc.o.d"
  "orc_test"
  "orc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
