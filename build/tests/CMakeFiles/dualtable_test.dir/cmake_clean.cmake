file(REMOVE_RECURSE
  "CMakeFiles/dualtable_test.dir/dualtable_test.cc.o"
  "CMakeFiles/dualtable_test.dir/dualtable_test.cc.o.d"
  "dualtable_test"
  "dualtable_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dualtable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
