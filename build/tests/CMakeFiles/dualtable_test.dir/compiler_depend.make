# Empty compiler generated dependencies file for dualtable_test.
# This may be replaced when dependencies are built.
