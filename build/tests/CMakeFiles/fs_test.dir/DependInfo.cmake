
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fs_test.cc" "tests/CMakeFiles/fs_test.dir/fs_test.cc.o" "gcc" "tests/CMakeFiles/fs_test.dir/fs_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dtl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/dtl_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/orc/CMakeFiles/dtl_orc.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/dtl_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/dtl_table.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/dtl_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/dtl_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/dualtable/CMakeFiles/dtl_dualtable.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/dtl_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dtl_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
