file(REMOVE_RECURSE
  "CMakeFiles/union_read_test.dir/union_read_test.cc.o"
  "CMakeFiles/union_read_test.dir/union_read_test.cc.o.d"
  "union_read_test"
  "union_read_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/union_read_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
