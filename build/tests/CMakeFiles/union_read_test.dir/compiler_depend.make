# Empty compiler generated dependencies file for union_read_test.
# This may be replaced when dependencies are built.
