file(REMOVE_RECURSE
  "CMakeFiles/listing2_test.dir/listing2_test.cc.o"
  "CMakeFiles/listing2_test.dir/listing2_test.cc.o.d"
  "listing2_test"
  "listing2_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/listing2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
