# Empty compiler generated dependencies file for listing2_test.
# This may be replaced when dependencies are built.
