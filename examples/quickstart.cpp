// Quickstart: create a DualTable, load data, update a tiny fraction through
// the EDIT plan, read the merged view, and compact — the full lifecycle of
// the paper's hybrid storage model, driven through the SQL interface.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <cstdlib>

#include "sql/session.h"

namespace {

dtl::sql::QueryResult MustRun(dtl::sql::Session* session, const std::string& sql) {
  auto result = session->Execute(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "FAILED: %s\n  %s\n", sql.c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return *result;
}

}  // namespace

int main() {
  auto session_result = dtl::sql::Session::Create();
  if (!session_result.ok()) {
    std::fprintf(stderr, "session: %s\n", session_result.status().ToString().c_str());
    return 1;
  }
  auto& session = *session_result;

  std::printf("== DualTable quickstart ==\n");
  std::printf("simulated cluster: %s\n\n", session->cluster()->Describe().c_str());

  // 1. CREATE makes both the ORC master table and the HBase attached table.
  MustRun(session.get(),
          "CREATE TABLE meters (meter_id BIGINT, day DATE, reading DOUBLE, "
          "status STRING) STORED AS dualtable");
  std::printf("created DualTable 'meters'\n");

  // 2. Batch insert (goes straight to the master table).
  std::string insert = "INSERT INTO meters VALUES (0, 0, 0.0, 'ok')";
  for (int i = 1; i < 5000; ++i) {
    insert += ", (" + std::to_string(i) + ", " + std::to_string(i % 36) + ", " +
              std::to_string(i * 0.25) + ", 'ok')";
  }
  MustRun(session.get(), insert);
  std::printf("inserted 5000 meter readings into the master table\n");

  // 3. A 1%-ish UPDATE: the cost model picks the EDIT plan, so only the
  //    delta goes to the attached table — no rewrite of the ORC files.
  auto update = MustRun(session.get(),
                        "UPDATE meters SET status = 'recollected' "
                        "WHERE day = 7 WITH RATIO 0.03");
  std::printf("updated %llu rows via the %s plan\n",
              static_cast<unsigned long long>(update.affected_rows),
              update.dml_plan.c_str());

  // 4. Reads go through UNION READ: master rows merged with attached deltas.
  auto query = MustRun(session.get(),
                       "SELECT status, COUNT(*) cnt FROM meters "
                       "GROUP BY status ORDER BY cnt DESC");
  std::printf("\nstatus breakdown after update (UNION READ view):\n%s\n",
              query.ToString().c_str());

  // 5. A huge UPDATE: the cost model switches to the OVERWRITE plan.
  auto big = MustRun(session.get(),
                     "UPDATE meters SET reading = reading * 1.1 "
                     "WHERE meter_id >= 0 WITH RATIO 0.99");
  std::printf("bulk update of %llu rows chose the %s plan\n",
              static_cast<unsigned long long>(big.affected_rows), big.dml_plan.c_str());

  // 6. DELETE via delete markers, then COMPACT to fold the attached table
  //    back into a fresh master generation.
  auto del = MustRun(session.get(),
                     "DELETE FROM meters WHERE day < 2 WITH RATIO 0.06");
  std::printf("deleted %llu rows via the %s plan\n",
              static_cast<unsigned long long>(del.affected_rows), del.dml_plan.c_str());
  MustRun(session.get(), "COMPACT TABLE meters");
  std::printf("compacted: attached table folded into a new master generation\n");

  auto final_count = MustRun(session.get(), "SELECT COUNT(*) FROM meters");
  std::printf("final row count: %s\n", final_count.rows[0][0].ToString().c_str());

  // 7. I/O accounting: what the session moved through each substrate.
  auto io = session->IoDelta();
  std::printf("\nsubstrate I/O for this session: %s\n", io.ToString().c_str());
  std::printf("modelled time on the paper's 10-node cluster: %.2f s\n",
              session->ModeledSeconds(io));
  return 0;
}
