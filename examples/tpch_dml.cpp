// TPC-H DML walkthrough: loads lineitem/orders, runs the paper's Query-a/b/c
// (TPC-H Q1, Q12, COUNT) and DML-a/b/c on all three systems the paper
// evaluates — Hive(HDFS), Hive(HBase), DualTable — and prints a comparison.
//
// Build & run:  ./build/examples/tpch_dml [scale_factor]
#include <cstdio>
#include <cstdlib>

#include "common/stopwatch.h"
#include "sql/session.h"
#include "workload/tpch_gen.h"

namespace {

using dtl::sql::QueryResult;
using dtl::sql::Session;

double TimedRun(Session* session, const std::string& sql, QueryResult* out = nullptr) {
  dtl::Stopwatch watch;
  auto result = session->Execute(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "FAILED: %s\n  %s\n", sql.c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
  double ms = watch.ElapsedMillis();
  if (out != nullptr) *out = std::move(*result);
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  double sf = argc > 1 ? std::atof(argv[1]) : 0.005;
  auto session_result = Session::Create();
  if (!session_result.ok()) return 1;
  auto& session = *session_result;

  dtl::workload::TpchConfig config;
  config.scale_factor = sf;
  std::printf("== TPC-H DML on Hive(HDFS) / Hive(HBase) / DualTable ==\n");
  std::printf("scale factor %.4f: %llu lineitem rows, %llu orders rows\n\n", sf,
              static_cast<unsigned long long>(config.lineitem_rows()),
              static_cast<unsigned long long>(config.orders_rows()));

  struct System {
    const char* label;
    const char* kind;
    std::string lineitem;
    std::string orders;
  };
  std::vector<System> systems = {
      {"Hive(HDFS)", "hive", "li_hive", "ord_hive"},
      {"Hive(HBase)", "hbase", "li_hbase", "ord_hbase"},
      {"DualTable", "dualtable", "li_dual", "ord_dual"},
  };

  auto ddl = [&](const std::string& name, const dtl::Schema& schema, const char* kind) {
    std::string sql = "CREATE TABLE " + name + " (";
    for (size_t i = 0; i < schema.num_fields(); ++i) {
      if (i > 0) sql += ", ";
      sql += schema.field(i).name;
      sql += " ";
      sql += dtl::DataTypeName(schema.field(i).type);
    }
    sql += ") STORED AS " + std::string(kind);
    TimedRun(session.get(), sql);
  };

  for (const System& sys : systems) {
    ddl(sys.lineitem, dtl::workload::LineitemSchema(), sys.kind);
    ddl(sys.orders, dtl::workload::OrdersSchema(), sys.kind);
    auto li = session->catalog()->Lookup(sys.lineitem);
    auto ord = session->catalog()->Lookup(sys.orders);
    dtl::Stopwatch watch;
    if (!dtl::workload::GenerateLineitem(li->table.get(), config).ok() ||
        !dtl::workload::GenerateOrders(ord->table.get(), config).ok()) {
      std::fprintf(stderr, "generation failed for %s\n", sys.label);
      return 1;
    }
    std::printf("loaded %-12s in %6.0f ms\n", sys.label, watch.ElapsedMillis());
  }

  std::printf("\n-- read performance (paper Fig. 11) --\n");
  std::printf("%-12s %12s %12s %12s\n", "system", "Query-a(Q1)", "Query-b(Q12)",
              "Query-c(cnt)");
  for (const System& sys : systems) {
    double a = TimedRun(session.get(), dtl::workload::QueryA(sys.lineitem));
    double b = TimedRun(session.get(), dtl::workload::QueryB(sys.lineitem, sys.orders));
    double c = TimedRun(session.get(), dtl::workload::QueryC(sys.lineitem));
    std::printf("%-12s %10.1fms %10.1fms %10.1fms\n", sys.label, a, b, c);
  }

  std::printf("\n-- DML performance (paper Fig. 12) --\n");
  std::printf("%-12s %12s %12s %12s\n", "system", "DML-a(U5%)", "DML-b(D2%)",
              "DML-c(join)");
  for (const System& sys : systems) {
    QueryResult ra;
    double a = TimedRun(session.get(), dtl::workload::DmlA(sys.lineitem), &ra);
    double b = TimedRun(session.get(), dtl::workload::DmlB(sys.lineitem));
    auto li = session->catalog()->Lookup(sys.lineitem);
    auto ord = session->catalog()->Lookup(sys.orders);
    dtl::Stopwatch watch;
    auto c_result = dtl::workload::RunDmlC(ord->table.get(), li->table.get());
    if (!c_result.ok()) {
      std::fprintf(stderr, "DML-c failed: %s\n", c_result.status().ToString().c_str());
      return 1;
    }
    double c = watch.ElapsedMillis();
    std::printf("%-12s %10.1fms %10.1fms %10.1fms   (DML-a plan: %s)\n", sys.label, a, b,
                c, ra.dml_plan.empty() ? "n/a" : ra.dml_plan.c_str());
  }

  std::printf("\n-- verification: all systems agree after identical DML --\n");
  int64_t reference = -1;
  for (const System& sys : systems) {
    QueryResult count;
    TimedRun(session.get(), "SELECT COUNT(*) FROM " + sys.lineitem, &count);
    int64_t n = count.rows[0][0].AsInt64();
    std::printf("%-12s lineitem rows after DML: %lld\n", sys.label,
                static_cast<long long>(n));
    if (reference < 0) reference = n;
    if (n != reference) {
      std::fprintf(stderr, "MISMATCH between systems!\n");
      return 1;
    }
  }
  std::printf("\nall three systems converged to the same logical table. done.\n");
  return 0;
}
