// Smart-grid pipeline: recreates the data flow of the paper's Figure 1 —
// the smart electricity consumption information collection system — on top
// of DualTable, and contrasts every update path with plain Hive:
//   (1) data recollection updates a tiny slice of the consumption table,
//   (2) archive synchronization updates a handful of device records,
//   (3) analytic procedures update/delete small fractions during processing.
//
// Build & run:  ./build/examples/smartgrid_pipeline
#include <cstdio>
#include <cstdlib>

#include "common/stopwatch.h"
#include "sql/session.h"
#include "workload/grid_gen.h"

namespace {

using dtl::sql::QueryResult;
using dtl::sql::Session;

QueryResult MustRun(Session* session, const std::string& sql) {
  auto result = session->Execute(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "FAILED: %s\n  %s\n", sql.c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return *result;
}

double TimedRun(Session* session, const std::string& sql, QueryResult* out = nullptr) {
  dtl::Stopwatch watch;
  QueryResult result = MustRun(session, sql);
  double ms = watch.ElapsedMillis();
  if (out != nullptr) *out = std::move(result);
  return ms;
}

}  // namespace

int main() {
  auto session_result = Session::Create();
  if (!session_result.ok()) return 1;
  auto& session = *session_result;

  std::printf("== Smart-grid collection system on DualTable (paper Fig. 1) ==\n\n");

  // The consumption detail table, in both storage systems for comparison.
  dtl::workload::GridConfig config;
  config.fraction = 1.0 / 8000.0;  // ~30k rows in tj_gbsjwzl_mx at example scale
  auto specs = dtl::workload::TableIISpecs(config);
  const auto& mx_spec = specs[4];  // tj_gbsjwzl_mx

  for (const char* kind : {"dualtable", "hive"}) {
    std::string name = std::string("consumption_") + kind;
    std::string ddl = "CREATE TABLE " + name + " (";
    for (size_t i = 0; i < mx_spec.schema.num_fields(); ++i) {
      if (i > 0) ddl += ", ";
      ddl += mx_spec.schema.field(i).name;
      ddl += " ";
      ddl += dtl::DataTypeName(mx_spec.schema.field(i).type);
    }
    ddl += ") STORED AS " + std::string(kind);
    MustRun(session.get(), ddl);
  }

  // --- FEP cluster appends collected meter data (the fast append path) ---
  auto catalog_dual = session->catalog()->Lookup("consumption_dualtable");
  auto catalog_hive = session->catalog()->Lookup("consumption_hive");
  if (!catalog_dual.ok() || !catalog_hive.ok()) return 1;
  dtl::Stopwatch load_watch;
  if (!dtl::workload::GenerateGridTable(mx_spec, config, catalog_dual->table.get()).ok() ||
      !dtl::workload::GenerateGridTable(mx_spec, config, catalog_hive->table.get()).ok()) {
    std::fprintf(stderr, "data generation failed\n");
    return 1;
  }
  const uint64_t rows = dtl::workload::ScaledRows(mx_spec, config);
  std::printf("[FEP] appended %llu readings to the cloud store in %.0f ms\n\n",
              static_cast<unsigned long long>(rows), load_watch.ElapsedMillis());

  // --- (1) Recollection: a missing-data re-read updates <1%% of one day ---
  std::printf("-- flow (1): recollection update (tiny slice of one day) --\n");
  const std::string recollect_where = "WHERE rq = 736003 AND yhlx = 5 WITH RATIO 0.002";
  QueryResult dual_result;
  double dual_ms = TimedRun(session.get(),
                            "UPDATE consumption_dualtable SET cjbm = 'recollected' " +
                                recollect_where,
                            &dual_result);
  double hive_ms = TimedRun(session.get(),
                            "UPDATE consumption_hive SET cjbm = 'recollected' " +
                                recollect_where);
  std::printf("  DualTable: %6.1f ms (%s plan, %llu rows)\n", dual_ms,
              dual_result.dml_plan.c_str(),
              static_cast<unsigned long long>(dual_result.affected_rows));
  std::printf("  Hive:      %6.1f ms (full INSERT OVERWRITE rewrite)\n", hive_ms);
  std::printf("  speedup:   %.1fx\n\n", hive_ms / std::max(0.1, dual_ms));

  // --- (2) Archive sync: a few hundred device records change per day ---
  std::printf("-- flow (2): archive synchronization (device info changes) --\n");
  const auto& zdzc_spec = specs[2];  // zc_zdzc, the device asset table
  for (const char* kind : {"dualtable", "hive"}) {
    std::string name = std::string("devices_") + kind;
    auto t = std::string(kind) == "dualtable"
                 ? session
                       ->CreateDualTable(name, zdzc_spec.schema)
                       .ok()
                 : session->CreateHiveTable(name, zdzc_spec.schema).ok();
    if (!t) return 1;
    auto entry = session->catalog()->Lookup(name);
    if (!dtl::workload::GenerateGridTable(zdzc_spec, config, entry->table.get()).ok()) {
      return 1;
    }
  }
  dual_ms = TimedRun(session.get(),
                     "UPDATE devices_dualtable SET zzcjbm = 'manu_99' "
                     "WHERE zdjh % 97 = 0 WITH RATIO 0.01",
                     &dual_result);
  hive_ms = TimedRun(session.get(),
                     "UPDATE devices_hive SET zzcjbm = 'manu_99' "
                     "WHERE zdjh % 97 = 0 WITH RATIO 0.01");
  std::printf("  DualTable: %6.1f ms (%s plan)   Hive: %6.1f ms   speedup %.1fx\n\n",
              dual_ms, dual_result.dml_plan.c_str(), hive_ms,
              hive_ms / std::max(0.1, dual_ms));

  // --- (3) Analytic procedures: statistics + small update + delete ---
  std::printf("-- flow (3): daily analytic procedure --\n");
  QueryResult stats;
  double stat_ms = TimedRun(session.get(),
                            "SELECT yhlx, COUNT(*) cnt FROM consumption_dualtable "
                            "GROUP BY yhlx ORDER BY cnt DESC LIMIT 5",
                            &stats);
  std::printf("  statistics over the UNION READ view (%.1f ms):\n%s\n", stat_ms,
              stats.ToString(5).c_str());
  dual_ms = TimedRun(session.get(),
                     "DELETE FROM consumption_dualtable WHERE rq = 736000 "
                     "AND dwdm = 'org_03' WITH RATIO 0.001",
                     &dual_result);
  std::printf("  exception-handling delete: %.1f ms (%s plan, %llu rows)\n", dual_ms,
              dual_result.dml_plan.c_str(),
              static_cast<unsigned long long>(dual_result.affected_rows));

  // Nightly COMPACT folds accumulated deltas back into the master.
  double compact_ms = TimedRun(session.get(), "COMPACT TABLE consumption_dualtable");
  std::printf("  off-hours COMPACT: %.1f ms\n\n", compact_ms);

  auto io = session->IoDelta();
  std::printf("session substrate I/O: %s\n", io.ToString().c_str());
  std::printf("modelled cluster time: %.2f s\n", session->ModeledSeconds(io));
  return 0;
}
