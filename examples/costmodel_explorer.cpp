// Cost-model explorer: evaluates the paper's Section IV equations over a
// grid of table sizes, modification ratios, and follow-up read counts (k),
// printing the chosen plan and the crossover ratios. Reproduces the worked
// example of Section IV and lets you explore how deployment parameters move
// the EDIT/OVERWRITE boundary.
//
// Build & run:  ./build/examples/costmodel_explorer [table_gb] [k]
#include <cstdio>
#include <cstdlib>

#include "dualtable/cost_model.h"
#include "fs/cluster_model.h"

int main(int argc, char** argv) {
  const double table_gb = argc > 1 ? std::atof(argv[1]) : 100.0;
  const double k = argc > 2 ? std::atof(argv[2]) : 30.0;

  // The paper's Section IV example rates.
  dtl::fs::ClusterConfig config;
  config.hdfs_write_bps = 1e9;
  config.hdfs_replication = 1;  // the example folds replication into the rate
  config.hbase_write_bps = 0.8e9;
  config.hbase_read_bps = 0.5e9;
  dtl::fs::ClusterModel cluster(config);

  dtl::dual::CostModelParams params;
  params.k = k;
  dtl::dual::CostModel model(&cluster, params);

  const auto bytes = static_cast<uint64_t>(table_gb * (1ull << 30));
  std::printf("== DualTable cost model explorer (paper Section IV) ==\n");
  std::printf("table size %.1f GB, k = %.0f follow-up reads\n", table_gb, k);
  std::printf("rates: HDFS write %.1f GB/s, HBase write %.1f GB/s, read %.1f GB/s\n\n",
              config.hdfs_write_bps / 1e9, config.hbase_write_bps / 1e9,
              config.hbase_read_bps / 1e9);

  // The worked example: D=100GB, alpha=0.01, k=30 => CostU = 38.75s (EDIT).
  {
    dtl::dual::CostModelParams example_params;
    example_params.k = 30;
    dtl::dual::CostModel example(&cluster, example_params);
    auto decision = example.DecideUpdate(100ull << 30, 0.01);
    std::printf("paper worked example (D=100GB, alpha=0.01, k=30):\n  %s\n\n",
                decision.ToString().c_str());
  }

  std::printf("-- UPDATE plan choice vs ratio (Eq. 1) --\n");
  std::printf("%8s %14s %14s %12s\n", "alpha", "overwrite(s)", "edit(s)", "plan");
  const double ratios[] = {0.001, 0.005, 0.01, 0.05, 0.1, 0.2, 0.35, 0.5, 0.8};
  for (double alpha : ratios) {
    auto d = model.DecideUpdate(bytes, alpha);
    std::printf("%8.3f %14.2f %14.2f %12s\n", alpha, d.cost_overwrite_seconds,
                d.cost_edit_seconds, dtl::table::DmlPlanName(d.plan));
  }
  std::printf("update crossover ratio: %.4f\n\n", model.UpdateCrossoverRatio(bytes));

  std::printf("-- DELETE plan choice vs ratio (Eq. 2, 200-byte rows) --\n");
  std::printf("%8s %14s %14s %12s\n", "beta", "overwrite(s)", "edit(s)", "plan");
  for (double beta : ratios) {
    auto d = model.DecideDelete(bytes, beta, 200.0);
    std::printf("%8.3f %14.2f %14.2f %12s\n", beta, d.cost_overwrite_seconds,
                d.cost_edit_seconds, dtl::table::DmlPlanName(d.plan));
  }
  std::printf("delete crossover ratio: %.4f\n\n",
              model.DeleteCrossoverRatio(bytes, 200.0));

  std::printf("-- crossover sensitivity to k (more reads favor OVERWRITE) --\n");
  std::printf("%8s %18s %18s\n", "k", "update crossover", "delete crossover");
  for (double kk : {0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 100.0}) {
    dtl::dual::CostModelParams pk;
    pk.k = kk;
    dtl::dual::CostModel mk(&cluster, pk);
    std::printf("%8.1f %18.4f %18.4f\n", kk, mk.UpdateCrossoverRatio(bytes),
                mk.DeleteCrossoverRatio(bytes, 200.0));
  }
  return 0;
}
