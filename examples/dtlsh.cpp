// dtlsh: an interactive SQL shell over the DualTable engine — the quickest
// way to poke at the system by hand. Reads one statement per line (';'
// optional), prints results, DML plans, and per-statement substrate I/O.
//
//   $ ./build/examples/dtlsh
//   dtl> CREATE TABLE t (id BIGINT, v DOUBLE) STORED AS dualtable
//   dtl> INSERT INTO t VALUES (1, 2.5), (2, 3.5)
//   dtl> UPDATE t SET v = 0 WHERE id = 1 WITH RATIO 0.01
//   dtl> SELECT * FROM t
//   dtl> \io        -- session I/O counters
//   dtl> \quit
//
// Also usable non-interactively:  echo "SHOW TABLES" | ./build/examples/dtlsh
#include <cstdio>
#include <iostream>
#include <string>

#include "common/stopwatch.h"
#include "sql/session.h"

namespace {

void PrintHelp() {
  std::printf(
      "statements: CREATE TABLE .. [STORED AS dualtable|hive|hbase|acid],\n"
      "  INSERT INTO .. VALUES .., SELECT .., UPDATE .. [WITH RATIO r],\n"
      "  DELETE FROM .. [WITH RATIO r], MERGE INTO t ON (keys) VALUES ..,\n"
      "  COMPACT TABLE t, DROP TABLE t, SHOW TABLES,\n"
      "  EXPLAIN [ANALYZE] <statement>\n"
      "shell commands: \\io (I/O counters), \\stats (session metrics),\n"
      "  \\audit (cost-model decisions), \\cluster, \\help, \\quit\n");
}

}  // namespace

int main() {
  auto session_result = dtl::sql::Session::Create();
  if (!session_result.ok()) {
    std::fprintf(stderr, "session: %s\n", session_result.status().ToString().c_str());
    return 1;
  }
  auto& session = *session_result;
  const bool tty = isatty(fileno(stdin));
  if (tty) {
    std::printf("DualTable shell — \\help for help, \\quit to exit\n");
  }

  std::string line;
  while (true) {
    if (tty) std::printf("dtl> ");
    if (!std::getline(std::cin, line)) break;
    // Trim.
    while (!line.empty() && (line.back() == ' ' || line.back() == ';')) line.pop_back();
    size_t start = line.find_first_not_of(' ');
    if (start == std::string::npos) continue;
    line = line.substr(start);

    if (line[0] == '\\') {
      if (line == "\\quit" || line == "\\q") break;
      if (line == "\\help") {
        PrintHelp();
      } else if (line == "\\io") {
        std::printf("%s\n", session->fs()->meter()->Snapshot().ToString().c_str());
      } else if (line == "\\stats") {
        std::printf("%s", session->StatsDump().c_str());
      } else if (line == "\\audit") {
        std::printf("%s", session->cost_audit()->RenderText().c_str());
      } else if (line == "\\cluster") {
        std::printf("%s\n", session->cluster()->Describe().c_str());
      } else {
        std::printf("unknown command %s (try \\help)\n", line.c_str());
      }
      continue;
    }

    session->MarkIo();
    dtl::Stopwatch watch;
    auto result = session->Execute(line);
    double ms = watch.ElapsedMillis();
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    std::printf("%s", result->ToString(40).c_str());
    if (!result->rows.empty() || result->affected_rows > 0) {
      std::printf("(%llu rows%s%s, %.1f ms)\n",
                  static_cast<unsigned long long>(
                      result->rows.empty() ? result->affected_rows : result->rows.size()),
                  result->dml_plan.empty() ? "" : ", plan ",
                  result->dml_plan.c_str(), ms);
    } else {
      std::printf("(%.1f ms)\n", ms);
    }
  }
  return 0;
}
