#include "baseline/hive_table.h"

namespace dtl::baseline {

namespace {

/// Adapts MasterScanIterator to the storage RowIterator interface.
class MasterRowIterator : public table::RowIterator {
 public:
  explicit MasterRowIterator(std::unique_ptr<dual::MasterScanIterator> it)
      : it_(std::move(it)) {}
  bool Next() override { return it_->Next(); }
  const Row& row() const override { return it_->row(); }
  uint64_t record_id() const override { return it_->record_id(); }
  const Status& status() const override { return it_->status(); }

 private:
  std::unique_ptr<dual::MasterScanIterator> it_;
};

}  // namespace

Result<std::shared_ptr<HiveTable>> HiveTable::Open(fs::SimFileSystem* fs,
                                                   dual::MetadataTable* metadata,
                                                   const std::string& name, Schema schema,
                                                   HiveTableOptions options) {
  auto hive = std::shared_ptr<HiveTable>(new HiveTable(name, schema, std::move(options)));
  DTL_ASSIGN_OR_RETURN(
      hive->storage_, dual::MasterTable::Open(fs, metadata, name, std::move(schema),
                                              hive->options_.warehouse_dir,
                                              hive->options_.writer_options));
  return hive;
}

Result<std::unique_ptr<table::RowIterator>> HiveTable::Scan(const table::ScanSpec& spec) {
  // Row consumers ride the batch pipeline too (same as DualTable::Scan), so
  // the Hive baseline shares the decoded-stripe cache and the hive-vs-dual
  // read comparison stays apples to apples.
  DTL_ASSIGN_OR_RETURN(auto it, ScanBatches(spec));
  return std::unique_ptr<table::RowIterator>(
      new table::BatchToRowAdapter(std::move(it), spec.meter));
}

Result<std::unique_ptr<table::BatchIterator>> HiveTable::ScanBatches(
    const table::ScanSpec& spec) {
  DTL_ASSIGN_OR_RETURN(auto it,
                       storage_->NewBatchScanIterator(spec, /*apply_predicate=*/true));
  return std::unique_ptr<table::BatchIterator>(std::move(it));
}

Result<std::vector<table::ScanSplit>> HiveTable::CreateSplits(const table::ScanSpec& spec) {
  std::vector<table::ScanSplit> splits;
  for (const dual::MasterFileInfo& info : storage_->files()) {
    const uint64_t file_id = info.file_id;
    HiveTable* self = this;
    table::ScanSpec copy = spec;
    splits.push_back(table::ScanSplit{
        name_ + "/f_" + std::to_string(file_id),
        [self, file_id, copy]() -> Result<std::unique_ptr<table::RowIterator>> {
          DTL_ASSIGN_OR_RETURN(auto it, self->storage_->NewFileBatchScanIterator(
                                            file_id, copy, /*apply_predicate=*/true));
          return std::unique_ptr<table::RowIterator>(
              new table::BatchToRowAdapter(std::move(it), copy.meter));
        }});
  }
  return splits;
}

Status HiveTable::InsertRows(const std::vector<Row>& rows) {
  if (rows.empty()) return Status::OK();
  DTL_ASSIGN_OR_RETURN(auto writer, storage_->NewFileWriter());
  for (const Row& row : rows) DTL_RETURN_NOT_OK(writer->Append(row));
  DTL_ASSIGN_OR_RETURN(auto info, writer->Close());
  return storage_->RegisterFile(std::move(info));
}

Status HiveTable::OverwriteRows(const std::vector<Row>& rows) {
  std::vector<dual::MasterFileInfo> new_files;
  if (!rows.empty()) {
    std::unique_ptr<dual::MasterFileWriter> writer;
    for (const Row& row : rows) {
      if (writer == nullptr) {
        DTL_ASSIGN_OR_RETURN(writer, storage_->NewFileWriter());
      }
      DTL_RETURN_NOT_OK(writer->Append(row));
      if (writer->rows_written() >= options_.rewrite_file_rows) {
        DTL_ASSIGN_OR_RETURN(auto info, writer->Close());
        new_files.push_back(std::move(info));
        writer.reset();
      }
    }
    if (writer != nullptr) {
      DTL_ASSIGN_OR_RETURN(auto info, writer->Close());
      new_files.push_back(std::move(info));
    }
  }
  return storage_->ReplaceAllFiles(std::move(new_files));
}

Result<uint64_t> HiveTable::Rewrite(const std::function<bool(Row*)>& transform) {
  // INSERT OVERWRITE: read every record and every column, write everything
  // back — cost proportional to total data, not modified data.
  table::ScanSpec all;
  DTL_ASSIGN_OR_RETURN(auto it, storage_->NewScanIterator(all, /*apply_predicate=*/false));

  std::vector<dual::MasterFileInfo> new_files;
  std::unique_ptr<dual::MasterFileWriter> writer;
  uint64_t rows_out = 0;
  Row row;
  while (it->Next()) {
    row = it->row();
    if (!transform(&row)) continue;
    if (writer == nullptr) {
      DTL_ASSIGN_OR_RETURN(writer, storage_->NewFileWriter());
    }
    DTL_RETURN_NOT_OK(writer->Append(row));
    ++rows_out;
    if (writer->rows_written() >= options_.rewrite_file_rows) {
      DTL_ASSIGN_OR_RETURN(auto info, writer->Close());
      new_files.push_back(std::move(info));
      writer.reset();
    }
  }
  DTL_RETURN_NOT_OK(it->status());
  if (writer != nullptr) {
    DTL_ASSIGN_OR_RETURN(auto info, writer->Close());
    new_files.push_back(std::move(info));
  }
  DTL_RETURN_NOT_OK(storage_->ReplaceAllFiles(std::move(new_files)));
  return rows_out;
}

Result<table::DmlResult> HiveTable::Update(
    const table::ScanSpec& filter, const std::vector<table::Assignment>& assignments) {
  table::DmlResult result;
  result.plan = table::DmlPlan::kOverwrite;
  result.rows_scanned = storage_->TotalRows();
  auto transform = [&](Row* row) {
    if (!filter.predicate || filter.predicate(*row)) {
      ++result.rows_matched;
      for (const table::Assignment& a : assignments) (*row)[a.column] = a.compute(*row);
    }
    return true;
  };
  DTL_ASSIGN_OR_RETURN(uint64_t rows, Rewrite(transform));
  (void)rows;
  return result;
}

Result<table::DmlResult> HiveTable::Delete(const table::ScanSpec& filter) {
  table::DmlResult result;
  result.plan = table::DmlPlan::kOverwrite;
  result.rows_scanned = storage_->TotalRows();
  auto transform = [&](Row* row) {
    if (!filter.predicate || filter.predicate(*row)) {
      ++result.rows_matched;
      return false;
    }
    return true;
  };
  DTL_ASSIGN_OR_RETURN(uint64_t rows, Rewrite(transform));
  (void)rows;
  return result;
}

Status HiveTable::Drop() { return storage_->Drop(); }

}  // namespace dtl::baseline
