#include "baseline/acid_table.h"

#include <algorithm>
#include <charconv>
#include <cstdio>

#include "orc/reader.h"

namespace dtl::baseline {

namespace {
constexpr int64_t kOpUpdate = 0;
constexpr int64_t kOpDelete = 1;
}  // namespace

/// Merge-on-read iterator: base scan + preloaded delta map overlay.
class AcidRowIterator : public table::RowIterator {
 public:
  AcidRowIterator(std::unique_ptr<dual::MasterScanIterator> base,
                  AcidTable::DeltaMap deltas, table::ScanSpec spec)
      : base_(std::move(base)), deltas_(std::move(deltas)), spec_(std::move(spec)) {}

  bool Next() override {
    while (base_->Next()) {
      const uint64_t id = base_->record_id();
      auto it = deltas_.find(id);
      if (it == deltas_.end()) {
        row_ = base_->row();
      } else if (it->second.deleted) {
        continue;
      } else {
        row_ = it->second.row;  // whole updated record replaces the base row
      }
      if (spec_.predicate && !spec_.predicate(row_)) continue;
      record_id_ = id;
      return true;
    }
    status_ = base_->status();
    return false;
  }

  const Row& row() const override { return row_; }
  uint64_t record_id() const override { return record_id_; }
  const Status& status() const override { return status_; }

 private:
  std::unique_ptr<dual::MasterScanIterator> base_;
  AcidTable::DeltaMap deltas_;
  table::ScanSpec spec_;
  Row row_;
  uint64_t record_id_ = 0;
  Status status_;
};

Result<std::shared_ptr<AcidTable>> AcidTable::Open(fs::SimFileSystem* fs,
                                                   dual::MetadataTable* metadata,
                                                   const std::string& name, Schema schema,
                                                   AcidTableOptions options) {
  auto acid =
      std::shared_ptr<AcidTable>(new AcidTable(fs, name, schema, std::move(options)));
  DTL_ASSIGN_OR_RETURN(
      acid->base_, dual::MasterTable::Open(fs, metadata, name, std::move(schema),
                                           acid->options_.warehouse_dir,
                                           acid->options_.writer_options));
  DTL_RETURN_NOT_OK(fs->CreateDir(acid->DeltaDir()));
  DTL_ASSIGN_OR_RETURN(auto names, fs->ListDir(acid->DeltaDir()));
  std::vector<std::pair<uint64_t, std::string>> found;
  for (const std::string& n : names) {
    // A crash can leave a staged-but-uncommitted delta_*.orc.tmp; that
    // statement was never acknowledged, so discard it.
    if (n.size() >= 4 && n.compare(n.size() - 4, 4, ".tmp") == 0) {
      DTL_RETURN_NOT_OK(fs->Delete(fs::JoinPath(acid->DeltaDir(), n)));
      continue;
    }
    if (n.rfind("delta_", 0) != 0) continue;
    uint64_t txn = 0;
    auto r = std::from_chars(n.data() + 6, n.data() + n.size(), txn);
    if (r.ec != std::errc()) continue;
    if (std::string(r.ptr, n.data() + n.size() - r.ptr) != ".orc") continue;
    found.emplace_back(txn, fs::JoinPath(acid->DeltaDir(), n));
    acid->next_txn_ = std::max(acid->next_txn_, txn + 1);
  }
  std::sort(found.begin(), found.end());
  for (auto& [txn, path] : found) acid->delta_files_.push_back(path);
  return acid;
}

Schema AcidTable::DeltaSchema() const {
  std::vector<Field> fields;
  fields.push_back(Field{"__op", DataType::kInt64});
  fields.push_back(Field{"__record_id", DataType::kInt64});
  for (const Field& f : schema_.fields()) fields.push_back(f);
  return Schema(std::move(fields));
}

std::string AcidTable::DeltaDir() const {
  return fs::JoinPath(options_.warehouse_dir, name_ + "_delta");
}

std::string AcidTable::DeltaPath(uint64_t txn) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "delta_%08llu.orc", static_cast<unsigned long long>(txn));
  return fs::JoinPath(DeltaDir(), buf);
}

Result<AcidTable::DeltaMap> AcidTable::LoadDeltas() const {
  DeltaMap map;
  uint64_t txn_index = 0;
  for (const std::string& path : delta_files_) {
    ++txn_index;
    DTL_ASSIGN_OR_RETURN(auto reader, orc::OrcReader::Open(fs_, path));
    // Full sequential read of the delta file — the cost Hive ACID pays that
    // DualTable's random-access attached table avoids.
    orc::OrcRowIterator it(reader.get(), {});
    while (it.Next()) {
      const Row& raw = it.row();
      if (raw.size() < 2 || raw[0].is_null() || raw[1].is_null()) {
        return Status::Corruption("malformed delta row in " + path);
      }
      DeltaEntry entry;
      entry.txn = txn_index;
      entry.deleted = raw[0].AsInt64() == kOpDelete;
      const uint64_t record_id = static_cast<uint64_t>(raw[1].AsInt64());
      if (!entry.deleted) entry.row.assign(raw.begin() + 2, raw.end());
      auto existing = map.find(record_id);
      if (existing == map.end() || existing->second.txn <= entry.txn) {
        map[record_id] = std::move(entry);  // latest transaction wins
      }
    }
    DTL_RETURN_NOT_OK(it.status());
  }
  return map;
}

Result<std::unique_ptr<table::RowIterator>> AcidTable::Scan(const table::ScanSpec& spec) {
  DTL_ASSIGN_OR_RETURN(DeltaMap deltas, LoadDeltas());
  table::ScanSpec base_spec = spec;
  if (!deltas.empty()) {
    // Updated records replace whole rows, so projection pruning must keep
    // every column that could come from a delta; read full rows.
    base_spec.projection.clear();
    base_spec.bounds.clear();
  }
  DTL_ASSIGN_OR_RETURN(auto base_it,
                       base_->NewScanIterator(base_spec, /*apply_predicate=*/false));
  return std::unique_ptr<table::RowIterator>(
      new AcidRowIterator(std::move(base_it), std::move(deltas), spec));
}

Status AcidTable::InsertRows(const std::vector<Row>& rows) {
  if (rows.empty()) return Status::OK();
  DTL_ASSIGN_OR_RETURN(auto writer, base_->NewFileWriter());
  for (const Row& row : rows) DTL_RETURN_NOT_OK(writer->Append(row));
  DTL_ASSIGN_OR_RETURN(auto info, writer->Close());
  return base_->RegisterFile(std::move(info));
}

Status AcidTable::OverwriteRows(const std::vector<Row>& rows) {
  std::vector<dual::MasterFileInfo> new_files;
  if (!rows.empty()) {
    DTL_ASSIGN_OR_RETURN(auto writer, base_->NewFileWriter());
    for (const Row& row : rows) DTL_RETURN_NOT_OK(writer->Append(row));
    DTL_ASSIGN_OR_RETURN(auto info, writer->Close());
    new_files.push_back(std::move(info));
  }
  DTL_RETURN_NOT_OK(base_->ReplaceAllFiles(std::move(new_files)));
  std::vector<std::string> old = std::move(delta_files_);
  delta_files_.clear();
  for (const std::string& path : old) DTL_RETURN_NOT_OK(fs_->Delete(path));
  return Status::OK();
}

Status AcidTable::WriteDeltaFile(uint64_t txn, const std::vector<Row>& delta_rows) {
  // Stage + rename: the rename is the statement's commit point, so a crash
  // mid-write leaves no torn delta and the statement simply never happened.
  const std::string path = DeltaPath(txn);
  DTL_ASSIGN_OR_RETURN(auto writer,
                       orc::OrcWriter::Create(fs_, path + ".tmp", DeltaSchema(), txn,
                                              options_.writer_options));
  for (const Row& row : delta_rows) DTL_RETURN_NOT_OK(writer->Append(row));
  DTL_RETURN_NOT_OK(writer->Close());
  DTL_RETURN_NOT_OK(fs_->Rename(path + ".tmp", path));
  delta_files_.push_back(path);
  return Status::OK();
}

Result<table::DmlResult> AcidTable::Update(
    const table::ScanSpec& filter, const std::vector<table::Assignment>& assignments) {
  table::DmlResult result;
  result.plan = table::DmlPlan::kDelta;
  result.rows_scanned = base_->TotalRows();

  std::vector<Row> delta_rows;
  {
    table::ScanSpec scan = filter;  // full rows: deltas store whole records
    scan.projection.clear();
    DTL_ASSIGN_OR_RETURN(auto it, Scan(scan));
    while (it->Next()) {
      ++result.rows_matched;
      Row updated = it->row();
      for (const table::Assignment& a : assignments) updated[a.column] = a.compute(it->row());
      Row delta;
      delta.reserve(updated.size() + 2);
      delta.push_back(Value::Int64(kOpUpdate));
      delta.push_back(Value::Int64(static_cast<int64_t>(it->record_id())));
      delta.insert(delta.end(), updated.begin(), updated.end());
      delta_rows.push_back(std::move(delta));
    }
    DTL_RETURN_NOT_OK(it->status());
  }
  DTL_RETURN_NOT_OK(WriteDeltaFile(next_txn_++, delta_rows));
  return result;
}

Result<table::DmlResult> AcidTable::Delete(const table::ScanSpec& filter) {
  table::DmlResult result;
  result.plan = table::DmlPlan::kDelta;
  result.rows_scanned = base_->TotalRows();

  std::vector<Row> delta_rows;
  {
    table::ScanSpec scan = filter;
    scan.projection = filter.predicate_columns.empty() ? std::vector<size_t>{0}
                                                       : filter.predicate_columns;
    DTL_ASSIGN_OR_RETURN(auto it, Scan(scan));
    const size_t width = schema_.num_fields();
    while (it->Next()) {
      ++result.rows_matched;
      Row delta;
      delta.reserve(width + 2);
      delta.push_back(Value::Int64(kOpDelete));
      delta.push_back(Value::Int64(static_cast<int64_t>(it->record_id())));
      delta.insert(delta.end(), width, Value::Null());
      delta_rows.push_back(std::move(delta));
    }
    DTL_RETURN_NOT_OK(it->status());
  }
  DTL_RETURN_NOT_OK(WriteDeltaFile(next_txn_++, delta_rows));
  return result;
}

Status AcidTable::MinorCompact() {
  if (delta_files_.size() <= 1) return Status::OK();
  DTL_ASSIGN_OR_RETURN(DeltaMap deltas, LoadDeltas());
  std::vector<Row> merged;
  merged.reserve(deltas.size());
  const size_t width = schema_.num_fields();
  for (auto& [record_id, entry] : deltas) {
    Row delta;
    delta.push_back(Value::Int64(entry.deleted ? kOpDelete : kOpUpdate));
    delta.push_back(Value::Int64(static_cast<int64_t>(record_id)));
    if (entry.deleted) {
      delta.insert(delta.end(), width, Value::Null());
    } else {
      delta.insert(delta.end(), entry.row.begin(), entry.row.end());
    }
    merged.push_back(std::move(delta));
  }
  std::vector<std::string> old = std::move(delta_files_);
  delta_files_.clear();
  DTL_RETURN_NOT_OK(WriteDeltaFile(next_txn_++, merged));
  for (const std::string& path : old) DTL_RETURN_NOT_OK(fs_->Delete(path));
  return Status::OK();
}

Status AcidTable::MajorCompact() {
  if (delta_files_.empty()) return Status::OK();
  table::ScanSpec all;
  DTL_ASSIGN_OR_RETURN(auto it, Scan(all));

  std::vector<dual::MasterFileInfo> new_files;
  std::unique_ptr<dual::MasterFileWriter> writer;
  while (it->Next()) {
    if (writer == nullptr) {
      DTL_ASSIGN_OR_RETURN(writer, base_->NewFileWriter());
    }
    DTL_RETURN_NOT_OK(writer->Append(it->row()));
    if (writer->rows_written() >= options_.rewrite_file_rows) {
      DTL_ASSIGN_OR_RETURN(auto info, writer->Close());
      new_files.push_back(std::move(info));
      writer.reset();
    }
  }
  DTL_RETURN_NOT_OK(it->status());
  if (writer != nullptr) {
    DTL_ASSIGN_OR_RETURN(auto info, writer->Close());
    new_files.push_back(std::move(info));
  }
  DTL_RETURN_NOT_OK(base_->ReplaceAllFiles(std::move(new_files)));
  std::vector<std::string> old = std::move(delta_files_);
  delta_files_.clear();
  for (const std::string& path : old) DTL_RETURN_NOT_OK(fs_->Delete(path));
  return Status::OK();
}

uint64_t AcidTable::DeltaBytes() const {
  uint64_t total = 0;
  for (const std::string& path : delta_files_) {
    auto size = fs_->FileSize(path);
    if (size.ok()) total += *size;
  }
  return total;
}

Status AcidTable::Drop() {
  DTL_RETURN_NOT_OK(base_->Drop());
  return fs_->DeleteRecursively(DeltaDir());
}

}  // namespace dtl::baseline
