// Hive(HDFS) baseline: the paper's primary comparison target. Data lives in
// ORC files on the (simulated) HDFS; UPDATE and DELETE can only be realized
// as INSERT OVERWRITE — a full rewrite of the table regardless of how little
// data changes, which is exactly the cost the paper attacks.
#pragma once

#include <memory>
#include <string>

#include "dualtable/master_table.h"
#include "dualtable/metadata.h"
#include "fs/filesystem.h"
#include "table/storage_table.h"

namespace dtl::baseline {

struct HiveTableOptions {
  orc::WriterOptions writer_options;
  std::string warehouse_dir = "/warehouse";
  uint64_t rewrite_file_rows = 1ull << 20;
};

/// Plain Hive-on-HDFS table (ORC storage, overwrite-only updates).
class HiveTable : public table::StorageTable {
 public:
  static Result<std::shared_ptr<HiveTable>> Open(fs::SimFileSystem* fs,
                                                 dual::MetadataTable* metadata,
                                                 const std::string& name, Schema schema,
                                                 HiveTableOptions options = {});

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }
  Result<std::unique_ptr<table::RowIterator>> Scan(const table::ScanSpec& spec) override;
  Result<std::unique_ptr<table::BatchIterator>> ScanBatches(
      const table::ScanSpec& spec) override;
  Result<std::vector<table::ScanSplit>> CreateSplits(const table::ScanSpec& spec) override;
  Status InsertRows(const std::vector<Row>& rows) override;
  Status OverwriteRows(const std::vector<Row>& rows) override;

  /// INSERT OVERWRITE translation of UPDATE: reads every row and every
  /// column, rewrites the whole table (paper Listing 2).
  Result<table::DmlResult> Update(const table::ScanSpec& filter,
                                  const std::vector<table::Assignment>& assignments) override;

  /// INSERT OVERWRITE translation of DELETE: rewrites the surviving rows.
  Result<table::DmlResult> Delete(const table::ScanSpec& filter) override;

  Status Drop() override;

  dual::MasterTable* storage() { return storage_.get(); }

 private:
  HiveTable(std::string name, Schema schema, HiveTableOptions options)
      : name_(std::move(name)), schema_(std::move(schema)), options_(std::move(options)) {}

  Result<uint64_t> Rewrite(const std::function<bool(Row*)>& transform);

  std::string name_;
  Schema schema_;
  HiveTableOptions options_;
  std::unique_ptr<dual::MasterTable> storage_;
};

}  // namespace dtl::baseline
