#include "baseline/hbase_table.h"

#include "common/coding.h"

namespace dtl::baseline {

namespace {

std::string RowKey(uint64_t id) {
  std::string key;
  PutBigEndian64(&key, id);
  return key;
}

/// Materializes KV rows into relational rows, applying spec columns and
/// predicate. Pays a per-cell decode on every scanned row — the structural
/// reason Hive(HBase) loses batch-read benchmarks.
class HBaseRowIterator : public table::RowIterator {
 public:
  HBaseRowIterator(std::unique_ptr<kv::RowScanner> rows, table::ScanSpec spec,
                   size_t num_fields)
      : rows_(std::move(rows)), spec_(std::move(spec)), num_fields_(num_fields) {
    required_ = spec_.RequiredColumns(num_fields_);
    needed_.assign(num_fields_, false);
    for (size_t c : required_) needed_[c] = true;
  }

  bool Next() override {
    while (rows_->Next()) {
      const kv::RowView& view = rows_->view();
      if (view.row.size() != 8) continue;  // non-data row
      row_.assign(num_fields_, Value::Null());
      bool bad = false;
      for (const kv::Cell& cell : view.cells) {
        if (cell.key.qualifier >= num_fields_) continue;
        if (!needed_[cell.key.qualifier]) continue;
        Slice in(cell.value.value);
        Value v;
        Status st = Value::DecodeFrom(&in, &v);
        if (!st.ok()) {
          status_ = st;
          bad = true;
          break;
        }
        row_[cell.key.qualifier] = std::move(v);
      }
      if (bad) return false;
      if (spec_.predicate && !spec_.predicate(row_)) continue;
      record_id_ = DecodeBigEndian64(view.row.data());
      return true;
    }
    status_ = rows_->status();
    return false;
  }

  const Row& row() const override { return row_; }
  uint64_t record_id() const override { return record_id_; }
  const Status& status() const override { return status_; }

 private:
  std::unique_ptr<kv::RowScanner> rows_;
  table::ScanSpec spec_;
  size_t num_fields_;
  std::vector<size_t> required_;
  std::vector<bool> needed_;
  Row row_;
  uint64_t record_id_ = 0;
  Status status_;
};

}  // namespace

Result<std::shared_ptr<HBaseTable>> HBaseTable::Open(fs::SimFileSystem* fs,
                                                     const std::string& name,
                                                     Schema schema,
                                                     HBaseTableOptions options) {
  options.store_options.dir = "/hbase/" + name;
  std::string dir = options.store_options.dir;
  auto hbase = std::shared_ptr<HBaseTable>(
      new HBaseTable(fs, name, std::move(schema), std::move(dir)));
  DTL_ASSIGN_OR_RETURN(hbase->store_,
                       kv::KvStore::Open(fs, std::move(options.store_options)));
  return hbase;
}

Result<uint64_t> HBaseTable::NextRowId() {
  if (!row_id_loaded_) {
    // Recover the high-water mark with one full key scan (open-time cost).
    auto scanner = store_->NewCellScanner();
    uint64_t max_id = 0;
    while (scanner->Valid()) {
      const kv::Cell& cell = scanner->cell();
      if (cell.key.row.size() == 8) {
        max_id = std::max(max_id, DecodeBigEndian64(cell.key.row.data()));
      }
      scanner->Next();
    }
    DTL_RETURN_NOT_OK(scanner->status());
    next_row_id_ = max_id + 1;
    row_id_loaded_ = true;
  }
  return next_row_id_++;
}

Result<std::unique_ptr<table::RowIterator>> HBaseTable::Scan(const table::ScanSpec& spec) {
  return std::unique_ptr<table::RowIterator>(
      new HBaseRowIterator(store_->NewRowScanner(), spec, schema_.num_fields()));
}

Status HBaseTable::InsertRows(const std::vector<Row>& rows) {
  for (const Row& row : rows) {
    if (row.size() != schema_.num_fields()) {
      return Status::InvalidArgument("row arity does not match schema");
    }
    DTL_ASSIGN_OR_RETURN(uint64_t id, NextRowId());
    const std::string key = RowKey(id);
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].is_null()) continue;  // sparse storage: NULLs are absent cells
      std::string encoded;
      row[c].EncodeTo(&encoded);
      DTL_RETURN_NOT_OK(store_->Put(key, static_cast<uint32_t>(c), encoded));
    }
  }
  return Status::OK();
}

Status HBaseTable::OverwriteRows(const std::vector<Row>& rows) {
  DTL_RETURN_NOT_OK(store_->Clear());
  next_row_id_ = 1;
  row_id_loaded_ = true;
  return InsertRows(rows);
}

Result<table::DmlResult> HBaseTable::Update(
    const table::ScanSpec& filter, const std::vector<table::Assignment>& assignments) {
  table::DmlResult result;
  result.plan = table::DmlPlan::kInPlace;
  // Phase 1: collect matches (cannot write into a live scan).
  std::vector<std::pair<uint64_t, Row>> matches;
  {
    table::ScanSpec scan = filter;
    std::vector<size_t> needed = filter.predicate_columns;
    for (const auto& a : assignments) {
      needed.insert(needed.end(), a.input_columns.begin(), a.input_columns.end());
    }
    if (needed.empty()) needed.push_back(0);
    scan.projection = needed;
    DTL_ASSIGN_OR_RETURN(auto it, Scan(scan));
    while (it->Next()) {
      ++result.rows_matched;
      matches.emplace_back(it->record_id(), it->row());
    }
    DTL_RETURN_NOT_OK(it->status());
    result.rows_scanned = result.rows_matched;
  }
  // Phase 2: put only the changed cells.
  for (const auto& [id, row] : matches) {
    const std::string key = RowKey(id);
    for (const table::Assignment& a : assignments) {
      std::string encoded;
      a.compute(row).EncodeTo(&encoded);
      DTL_RETURN_NOT_OK(store_->Put(key, static_cast<uint32_t>(a.column), encoded));
    }
  }
  return result;
}

Result<table::DmlResult> HBaseTable::Delete(const table::ScanSpec& filter) {
  table::DmlResult result;
  result.plan = table::DmlPlan::kInPlace;
  std::vector<uint64_t> matches;
  {
    table::ScanSpec scan = filter;
    scan.projection =
        filter.predicate_columns.empty() ? std::vector<size_t>{0} : filter.predicate_columns;
    DTL_ASSIGN_OR_RETURN(auto it, Scan(scan));
    while (it->Next()) {
      ++result.rows_matched;
      matches.push_back(it->record_id());
    }
    DTL_RETURN_NOT_OK(it->status());
  }
  for (uint64_t id : matches) {
    DTL_RETURN_NOT_OK(store_->DeleteRow(RowKey(id)));
  }
  return result;
}

Status HBaseTable::Drop() {
  DTL_RETURN_NOT_OK(store_->Clear());
  return fs_->DeleteRecursively(dir_);
}

}  // namespace dtl::baseline
