// Hive ACID baseline (HIVE-5317, compared conceptually in paper §V-C):
// unmodified data in a base table, each transaction appending a delta file
// IN THE SAME HDFS STORAGE FORMAT. The reader merge-sorts the base with
// every delta to build the up-to-date view; because deltas are plain files,
// they must be scanned sequentially in full — the structural difference from
// DualTable's randomly accessible HBase attached table.
//
// Delta row layout: [op BIGINT (0=update,1=delete)][record_id BIGINT][.. full
// base-schema record ..] — Hive ACID "puts the whole updated record into
// delta tables, even if only one cell is changed".
#pragma once

#include <map>
#include <memory>
#include <string>

#include "dualtable/master_table.h"
#include "dualtable/metadata.h"
#include "fs/filesystem.h"
#include "table/storage_table.h"

namespace dtl::baseline {

struct AcidTableOptions {
  orc::WriterOptions writer_options;
  std::string warehouse_dir = "/warehouse";
  uint64_t rewrite_file_rows = 1ull << 20;
};

class AcidTable : public table::StorageTable {
 public:
  static Result<std::shared_ptr<AcidTable>> Open(fs::SimFileSystem* fs,
                                                 dual::MetadataTable* metadata,
                                                 const std::string& name, Schema schema,
                                                 AcidTableOptions options = {});

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }
  Result<std::unique_ptr<table::RowIterator>> Scan(const table::ScanSpec& spec) override;
  Status InsertRows(const std::vector<Row>& rows) override;
  Status OverwriteRows(const std::vector<Row>& rows) override;

  /// Writes one new delta file holding the full updated records.
  Result<table::DmlResult> Update(const table::ScanSpec& filter,
                                  const std::vector<table::Assignment>& assignments) override;

  /// Writes one new delta file holding delete records.
  Result<table::DmlResult> Delete(const table::ScanSpec& filter) override;

  Status Drop() override;

  /// Minor compaction: merges every delta file into a single delta file.
  Status MinorCompact();

  /// Major compaction: folds all deltas into a new base generation.
  Status MajorCompact();

  size_t NumDeltaFiles() const { return delta_files_.size(); }
  uint64_t DeltaBytes() const;

 private:
  struct DeltaEntry {
    uint64_t txn = 0;
    bool deleted = false;
    Row row;
  };
  using DeltaMap = std::map<uint64_t, DeltaEntry>;  // record_id -> latest entry

  AcidTable(fs::SimFileSystem* fs, std::string name, Schema schema,
            AcidTableOptions options)
      : fs_(fs), name_(std::move(name)), schema_(std::move(schema)),
        options_(std::move(options)) {}

  Schema DeltaSchema() const;
  std::string DeltaDir() const;
  std::string DeltaPath(uint64_t txn) const;

  /// Sequentially scans every delta file and resolves latest-txn-wins.
  Result<DeltaMap> LoadDeltas() const;

  /// Appends delta rows as transaction `txn`.
  Status WriteDeltaFile(uint64_t txn, const std::vector<Row>& delta_rows);

  fs::SimFileSystem* fs_;
  std::string name_;
  Schema schema_;
  AcidTableOptions options_;
  std::unique_ptr<dual::MasterTable> base_;
  std::vector<std::string> delta_files_;  // ascending txn order
  uint64_t next_txn_ = 1;

  friend class AcidRowIterator;
};

}  // namespace dtl::baseline
