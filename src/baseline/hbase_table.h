// Hive(HBase) baseline: the whole table lives in the KV store — every row is
// an HBase row, every column a qualifier. Record-level updates and deletes
// are cheap and in place, but batch reads pay the LSM merge/decode cost per
// cell, which is why the paper finds this system "much slower" for analytic
// scans (Fig. 11).
#pragma once

#include <memory>
#include <string>

#include "fs/filesystem.h"
#include "kv/store.h"
#include "table/storage_table.h"

namespace dtl::baseline {

struct HBaseTableOptions {
  kv::KvStoreOptions store_options;  // dir derived from table name
};

class HBaseTable : public table::StorageTable {
 public:
  static Result<std::shared_ptr<HBaseTable>> Open(fs::SimFileSystem* fs,
                                                  const std::string& name, Schema schema,
                                                  HBaseTableOptions options = {});

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }
  Result<std::unique_ptr<table::RowIterator>> Scan(const table::ScanSpec& spec) override;
  Status InsertRows(const std::vector<Row>& rows) override;
  Status OverwriteRows(const std::vector<Row>& rows) override;

  /// In-place update: scan, then Put only the changed cells (the EDIT-like
  /// plan the paper implements for HBase-backed Hive with UDFs).
  Result<table::DmlResult> Update(const table::ScanSpec& filter,
                                  const std::vector<table::Assignment>& assignments) override;

  /// In-place delete via row tombstones.
  Result<table::DmlResult> Delete(const table::ScanSpec& filter) override;

  Status Drop() override;

  kv::KvStore* store() { return store_.get(); }

 private:
  HBaseTable(fs::SimFileSystem* fs, std::string name, Schema schema, std::string dir)
      : fs_(fs), name_(std::move(name)), schema_(std::move(schema)), dir_(std::move(dir)) {}

  Result<uint64_t> NextRowId();

  fs::SimFileSystem* fs_;
  std::string name_;
  Schema schema_;
  std::string dir_;
  std::unique_ptr<kv::KvStore> store_;
  uint64_t next_row_id_ = 0;  // recovered on open from the max existing key
  bool row_id_loaded_ = false;
};

}  // namespace dtl::baseline
