// A miniature MapReduce framework mirroring how Hive executes queries:
// one map task per input split (≈ HDFS chunk / master file), a hash
// shuffle, and parallel reduce tasks. The UNION READ merge runs inside the
// map task exactly as the paper's custom InputFormat does.
#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "table/storage_table.h"

namespace dtl::exec {

struct MapReduceConfig {
  /// Worker pool (stands in for the cluster's task slots). Required.
  ThreadPool* pool = nullptr;
  size_t num_reducers = 4;
};

struct MapReduceStats {
  uint64_t map_tasks = 0;
  uint64_t input_records = 0;
  uint64_t shuffled_records = 0;
  uint64_t reduce_tasks = 0;
  uint64_t output_records = 0;
};

/// Emits (key, value-row) pairs from one input row. `record_id` is the
/// DualTable record ID when the split provides one, else 0.
using MapFn =
    std::function<void(const Row& row, uint64_t record_id,
                       std::vector<std::pair<Value, Row>>* out)>;

/// Folds all rows of one key into output rows.
using ReduceFn = std::function<void(const Value& key, const std::vector<Row>& values,
                                    std::vector<Row>* out)>;

/// Runs a MapReduce job over the given splits. A null `reduce` makes the job
/// map-only (emitted value-rows are returned directly, keys ignored).
Result<std::vector<Row>> RunMapReduce(const std::vector<table::ScanSplit>& splits,
                                      const MapFn& map, const ReduceFn& reduce,
                                      const MapReduceConfig& config,
                                      MapReduceStats* stats = nullptr);

/// Convenience: parallel COUNT(*) with an optional extra predicate.
Result<uint64_t> ParallelCount(const std::vector<table::ScanSplit>& splits,
                               ThreadPool* pool);

}  // namespace dtl::exec
