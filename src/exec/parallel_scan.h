// Morsel-driven parallel scan executor (the engine-side analog of Hive
// fanning a scan out across map tasks). A DualTable scan is split into
// stripe-aligned morsels; N workers on the shared ThreadPool pull morsels
// from a queue, each running its own MasterScanBatchIterator → UNION READ
// over the morsel's record-ID window with a worker-local ScanMeter. Order-
// insensitive consumers (counts, aggregates, unordered row collection) fold
// per-worker partial states together at a single barrier, after which the
// worker meters merge into the scan's target meter — so the merged counts
// equal a serial scan's exactly.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "dualtable/dual_table.h"
#include "exec/operators.h"
#include "obs/metrics.h"
#include "table/scan_stats.h"
#include "table/spec.h"

namespace dtl::exec {

struct ParallelScanOptions {
  /// Pool the workers run on; nullptr forces the serial fallback.
  ThreadPool* pool = nullptr;
  /// Worker count. <=1 runs every morsel on the calling thread (bitwise the
  /// same work, same meter totals — the differential baseline).
  size_t parallelism = 1;
  /// Surviving stripes per morsel. 1 maximizes scheduling freedom; larger
  /// values amortize per-morsel setup (attached-scanner seek) on big tables.
  size_t morsel_stripes = 1;

  /// Optional registry for the scan/morsel counters and the per-worker rows
  /// histogram (how evenly morsels spread across workers). Not owned.
  obs::MetricsRegistry* metrics = nullptr;

  /// Snapshot every morsel reads from. When null, Run() acquires one itself
  /// at planning time. Either way ONE snapshot spans morsel planning and all
  /// per-morsel UNION READs, so concurrent EDIT/COMPACT commits can never
  /// tear the scan: the result is byte-identical to a serial scan of the
  /// snapshot. The SQL layer passes its statement snapshot here.
  dual::SnapshotPtr snapshot;
};

/// One-shot parallel scan over a DualTable. The scan is order-insensitive
/// ACROSS morsels (workers claim them dynamically); within a morsel, batches
/// arrive in record-ID order. Order-sensitive plans must stay on the serial
/// iterator — the SQL layer enforces that gate.
class ParallelScanner {
 public:
  ParallelScanner(dual::DualTable* table, table::ScanSpec spec,
                  ParallelScanOptions options)
      : table_(table), spec_(std::move(spec)), options_(options) {}

  /// Worker `w` (0-based, stable per pool task) receives every UNION READ
  /// batch of the morsels it claimed. `consume` must be safe to run
  /// concurrently for DIFFERENT worker indices; per index it is sequential.
  /// The first error cancels remaining morsels. Worker-local meters merge
  /// into spec.meter (or the global meter) before Run returns.
  Status Run(const std::function<Status(size_t worker, const table::RowBatch& batch)>&
                 consume);

  /// Materializes every visible row, returned in record-ID order (exactly a
  /// serial scan's output order).
  Result<std::vector<Row>> CollectRows();

  /// COUNT(*) of the visible rows.
  Result<uint64_t> Count();

  /// Global (ungrouped) aggregates: per-worker AggStates merged at the
  /// barrier. Always yields exactly one row (SQL empty-input semantics).
  Result<Row> Aggregate(const std::vector<AggSpec>& aggs);

  /// Workers Run() will actually use (after clamping to morsel count).
  size_t planned_parallelism() const {
    return options_.pool == nullptr ? 1 : std::max<size_t>(1, options_.parallelism);
  }

 private:
  dual::DualTable* table_;
  table::ScanSpec spec_;
  ParallelScanOptions options_;
};

}  // namespace dtl::exec
