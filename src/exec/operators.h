// Volcano-style relational operators used by the SQL executor. Operators
// are storage-agnostic: value extraction is injected as std::functions so
// this layer does not depend on the SQL expression representation.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "table/storage_table.h"

namespace dtl::exec {

/// Pull operator. Schema-free: rows are positional; the planner tracks
/// column meaning.
class Operator {
 public:
  virtual ~Operator() = default;
  virtual bool Next() = 0;
  virtual const Row& row() const = 0;
  virtual const Status& status() const = 0;
};

/// Extracts a value from a row (compiled expression).
using ValueFn = std::function<Value(const Row&)>;
/// Row predicate.
using PredFn = std::function<bool(const Row&)>;

/// Shared empty row, returned by materializing operators whose row() is
/// called before the first successful Next().
inline const Row& EmptyRow() {
  static const Row kEmpty;
  return kEmpty;
}

/// Adapts a storage RowIterator.
class ScanOperator : public Operator {
 public:
  explicit ScanOperator(std::unique_ptr<table::RowIterator> it) : it_(std::move(it)) {}
  bool Next() override { return it_->Next(); }
  const Row& row() const override { return it_->row(); }
  const Status& status() const override { return it_->status(); }

 private:
  std::unique_ptr<table::RowIterator> it_;
};

/// Emits rows from memory (VALUES lists, subplan results).
class RowsOperator : public Operator {
 public:
  explicit RowsOperator(std::vector<Row> rows) : rows_(std::move(rows)) {}
  bool Next() override {
    if (index_ >= rows_.size()) return false;
    ++index_;
    return true;
  }
  const Row& row() const override {
    return index_ == 0 ? EmptyRow() : rows_[index_ - 1];
  }
  const Status& status() const override { return status_; }

 private:
  std::vector<Row> rows_;
  size_t index_ = 0;
  Status status_;
};

class FilterOperator : public Operator {
 public:
  FilterOperator(std::unique_ptr<Operator> child, PredFn pred)
      : child_(std::move(child)), pred_(std::move(pred)) {}
  bool Next() override {
    while (child_->Next()) {
      if (pred_(child_->row())) return true;
    }
    return false;
  }
  const Row& row() const override { return child_->row(); }
  const Status& status() const override { return child_->status(); }

 private:
  std::unique_ptr<Operator> child_;
  PredFn pred_;
};

/// Computes an output row from each input row.
class ProjectOperator : public Operator {
 public:
  ProjectOperator(std::unique_ptr<Operator> child, std::vector<ValueFn> exprs)
      : child_(std::move(child)), exprs_(std::move(exprs)) {}
  bool Next() override {
    if (!child_->Next()) return false;
    out_.clear();
    out_.reserve(exprs_.size());
    for (const auto& e : exprs_) out_.push_back(e(child_->row()));
    return true;
  }
  const Row& row() const override { return out_; }
  const Status& status() const override { return child_->status(); }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<ValueFn> exprs_;
  Row out_;
};

/// Hash equi-join; output row = probe row ++ build row. Build side is fully
/// materialized (Hive's map join). Supports INNER and LEFT OUTER (probe
/// side preserved, build columns NULL).
class HashJoinOperator : public Operator {
 public:
  enum class Kind { kInner, kLeftOuter };

  HashJoinOperator(std::unique_ptr<Operator> probe, std::unique_ptr<Operator> build,
                   std::vector<ValueFn> probe_keys, std::vector<ValueFn> build_keys,
                   size_t build_width, Kind kind);

  bool Next() override;
  const Row& row() const override { return out_; }
  const Status& status() const override { return status_; }

 private:
  struct KeyHash {
    size_t operator()(const Row& key) const;
  };
  struct KeyEq {
    bool operator()(const Row& a, const Row& b) const;
  };

  Status BuildTable();
  Row MakeKey(const Row& row, const std::vector<ValueFn>& fns) const;

  std::unique_ptr<Operator> probe_;
  std::unique_ptr<Operator> build_;
  std::vector<ValueFn> probe_keys_;
  std::vector<ValueFn> build_keys_;
  size_t build_width_;
  Kind kind_;

  bool built_ = false;
  std::unordered_map<Row, std::vector<Row>, KeyHash, KeyEq> hash_;
  const std::vector<Row>* matches_ = nullptr;
  size_t match_index_ = 0;
  Row out_;
  Status status_;
};

/// Aggregate function kinds supported by HashAggregateOperator.
enum class AggKind { kCount, kCountStar, kSum, kMin, kMax, kAvg };

struct AggSpec {
  AggKind kind = AggKind::kCountStar;
  ValueFn input;  // unused for kCountStar
};

/// Mergeable accumulator for one aggregate call. HashAggregateOperator keeps
/// one per (group, agg); a parallel scan keeps one per (worker, agg) and
/// folds the partials together with Merge at the barrier — Update + Merge +
/// Finalize reproduce serial SQL semantics exactly (NULL inputs skipped,
/// SUM's int64 arithmetic unless a double ever appears, SUM/AVG of zero
/// inputs = NULL, COUNT(*) counts rows).
struct AggState {
  int64_t count = 0;
  double sum = 0;
  bool sum_is_double = false;
  int64_t isum = 0;
  Value min;
  Value max;
  bool seen = false;

  /// Folds one input row in. InvalidArgument on SUM/AVG over non-numerics.
  [[nodiscard]] Status Update(const AggSpec& spec, const Row& in);

  /// Folds another partial state for the same aggregate kind in. Merge order
  /// does not affect any Finalize result.
  void Merge(AggKind kind, const AggState& other);

  /// The aggregate's SQL result value.
  Value Finalize(AggKind kind) const;
};

/// Hash GROUP BY; output row = group keys ++ aggregate results. With no
/// group keys produces exactly one global-aggregate row (even on empty
/// input, matching SQL semantics).
class HashAggregateOperator : public Operator {
 public:
  HashAggregateOperator(std::unique_ptr<Operator> child, std::vector<ValueFn> group_keys,
                        std::vector<AggSpec> aggs);

  bool Next() override;
  const Row& row() const override { return out_; }
  const Status& status() const override { return status_; }

 private:
  Status Materialize();

  std::unique_ptr<Operator> child_;
  std::vector<ValueFn> group_keys_;
  std::vector<AggSpec> aggs_;
  bool materialized_ = false;
  std::vector<Row> results_;
  size_t index_ = 0;
  Row out_;
  Status status_;
};

/// Full sort (ORDER BY). Comparators applied in order; `ascending[i]` pairs
/// with `keys[i]`.
class SortOperator : public Operator {
 public:
  SortOperator(std::unique_ptr<Operator> child, std::vector<ValueFn> keys,
               std::vector<bool> ascending);
  bool Next() override;
  const Row& row() const override {
    return index_ == 0 ? EmptyRow() : rows_[index_ - 1];
  }
  const Status& status() const override { return status_; }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<ValueFn> keys_;
  std::vector<bool> ascending_;
  bool materialized_ = false;
  std::vector<Row> rows_;
  size_t index_ = 0;
  Status status_;
};

class LimitOperator : public Operator {
 public:
  LimitOperator(std::unique_ptr<Operator> child, uint64_t limit)
      : child_(std::move(child)), limit_(limit) {}
  bool Next() override {
    if (emitted_ >= limit_) return false;
    if (!child_->Next()) return false;
    ++emitted_;
    return true;
  }
  const Row& row() const override { return child_->row(); }
  const Status& status() const override { return child_->status(); }

 private:
  std::unique_ptr<Operator> child_;
  uint64_t limit_;
  uint64_t emitted_ = 0;
};

/// Drains an operator tree.
Result<std::vector<Row>> Collect(Operator* op);

// --- Vectorized (batch-at-a-time) operators ----------------------------------------
//
// Same pull contract as table::BatchIterator: producers fill the caller's
// RowBatch, never emit an empty batch, and the contents stay valid until the
// next call. The executor uses this family for the SELECT fast path (scan ->
// filter -> project -> limit) and bridges to the row operators above with
// table::BatchToRowAdapter where batches end (joins, aggregates, sorts).

/// Batch pull operator.
using BatchOperator = table::BatchIterator;

/// Adapts a storage BatchIterator (the leaf of a batch pipeline).
class BatchScanOperator : public BatchOperator {
 public:
  explicit BatchScanOperator(std::unique_ptr<table::BatchIterator> it)
      : it_(std::move(it)) {}
  bool Next(table::RowBatch* batch) override { return it_->Next(batch); }
  const Status& status() const override { return it_->status(); }

 private:
  std::unique_ptr<table::BatchIterator> it_;
};

/// Vectorized filter: compresses each batch's selection vector through the
/// predicate instead of copying surviving rows. All-dropped batches are
/// consumed internally.
class BatchFilterOperator : public BatchOperator {
 public:
  BatchFilterOperator(std::unique_ptr<BatchOperator> child, PredFn pred)
      : child_(std::move(child)), pred_(std::move(pred)) {}
  bool Next(table::RowBatch* batch) override {
    while (child_->Next(batch)) {
      batch->FilterSelected(pred_, &scratch_);
      if (!batch->empty()) return true;
    }
    return false;
  }
  const Status& status() const override { return child_->status(); }

 private:
  std::unique_ptr<BatchOperator> child_;
  PredFn pred_;
  Row scratch_;
};

/// Vectorized projection. When every output is a plain column reference
/// (`column_refs[i] >= 0` for all i) the output batch is zero-copy views of
/// the input columns with the selection forwarded; otherwise each visible
/// row is materialized once into a scratch row and the expressions evaluated
/// per row. Output batches carry no record IDs (projection derives new rows).
class BatchProjectOperator : public BatchOperator {
 public:
  /// `column_refs[i]` is the input ordinal when `exprs[i]` is a bare column
  /// reference, -1 otherwise. Must be the same length as `exprs`.
  BatchProjectOperator(std::unique_ptr<BatchOperator> child, std::vector<ValueFn> exprs,
                       std::vector<int> column_refs);
  bool Next(table::RowBatch* batch) override;
  const Status& status() const override { return child_->status(); }

 private:
  std::unique_ptr<BatchOperator> child_;
  std::vector<ValueFn> exprs_;
  std::vector<int> column_refs_;
  bool all_refs_;
  table::RowBatch in_;
  Row scratch_;
  std::vector<std::vector<Value>> cols_;
};

/// Vectorized LIMIT: truncates the selection of the batch that crosses the
/// limit instead of counting rows one at a time.
class BatchLimitOperator : public BatchOperator {
 public:
  BatchLimitOperator(std::unique_ptr<BatchOperator> child, uint64_t limit)
      : child_(std::move(child)), remaining_(limit) {}
  bool Next(table::RowBatch* batch) override {
    if (remaining_ == 0) return false;
    if (!child_->Next(batch)) return false;
    if (batch->size() > remaining_) batch->TruncateSelection(static_cast<size_t>(remaining_));
    remaining_ -= batch->size();
    return true;
  }
  const Status& status() const override { return child_->status(); }

 private:
  std::unique_ptr<BatchOperator> child_;
  uint64_t remaining_;
};

/// Drains a batch operator tree into rows.
Result<std::vector<Row>> CollectBatches(BatchOperator* op);

}  // namespace dtl::exec
