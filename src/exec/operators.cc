#include "exec/operators.h"

#include <algorithm>

namespace dtl::exec {

// --- HashJoinOperator ------------------------------------------------------------

size_t HashJoinOperator::KeyHash::operator()(const Row& key) const {
  size_t h = 0;
  for (const Value& v : key) h = h * 1315423911u + v.HashCode();
  return h;
}

bool HashJoinOperator::KeyEq::operator()(const Row& a, const Row& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].Compare(b[i]) != 0) return false;
  }
  return true;
}

HashJoinOperator::HashJoinOperator(std::unique_ptr<Operator> probe,
                                   std::unique_ptr<Operator> build,
                                   std::vector<ValueFn> probe_keys,
                                   std::vector<ValueFn> build_keys, size_t build_width,
                                   Kind kind)
    : probe_(std::move(probe)),
      build_(std::move(build)),
      probe_keys_(std::move(probe_keys)),
      build_keys_(std::move(build_keys)),
      build_width_(build_width),
      kind_(kind) {}

Row HashJoinOperator::MakeKey(const Row& row, const std::vector<ValueFn>& fns) const {
  Row key;
  key.reserve(fns.size());
  for (const auto& fn : fns) key.push_back(fn(row));
  return key;
}

Status HashJoinOperator::BuildTable() {
  while (build_->Next()) {
    Row key = MakeKey(build_->row(), build_keys_);
    // SQL join semantics: NULL keys never match.
    bool has_null = std::any_of(key.begin(), key.end(),
                                [](const Value& v) { return v.is_null(); });
    if (has_null) continue;
    hash_[std::move(key)].push_back(build_->row());
  }
  DTL_RETURN_NOT_OK(build_->status());
  built_ = true;
  return Status::OK();
}

bool HashJoinOperator::Next() {
  if (!built_) {
    status_ = BuildTable();
    if (!status_.ok()) return false;
  }
  while (true) {
    if (matches_ != nullptr && match_index_ < matches_->size()) {
      const Row& probe_row = probe_->row();
      const Row& build_row = (*matches_)[match_index_++];
      out_ = probe_row;
      out_.insert(out_.end(), build_row.begin(), build_row.end());
      return true;
    }
    matches_ = nullptr;
    if (!probe_->Next()) {
      status_ = probe_->status();
      return false;
    }
    Row key = MakeKey(probe_->row(), probe_keys_);
    bool has_null = std::any_of(key.begin(), key.end(),
                                [](const Value& v) { return v.is_null(); });
    auto it = has_null ? hash_.end() : hash_.find(key);
    if (it != hash_.end()) {
      matches_ = &it->second;
      match_index_ = 0;
      continue;
    }
    if (kind_ == Kind::kLeftOuter) {
      out_ = probe_->row();
      out_.insert(out_.end(), build_width_, Value::Null());
      return true;
    }
  }
}

// --- AggState ----------------------------------------------------------------------

Status AggState::Update(const AggSpec& spec, const Row& in) {
  if (spec.kind == AggKind::kCountStar) {
    ++count;
    return Status::OK();
  }
  Value v = spec.input(in);
  if (v.is_null()) return Status::OK();  // SQL: aggregates skip NULLs
  switch (spec.kind) {
    case AggKind::kCount:
      ++count;
      break;
    case AggKind::kSum:
    case AggKind::kAvg: {
      ++count;
      if (v.is_double()) {
        sum_is_double = true;
        sum += v.AsDouble();
      } else if (v.is_int64()) {
        isum += v.AsInt64();
        sum += static_cast<double>(v.AsInt64());
      } else {
        return Status::InvalidArgument("SUM/AVG over non-numeric value");
      }
      break;
    }
    case AggKind::kMin:
      if (!seen || v.Compare(min) < 0) min = v;
      seen = true;
      break;
    case AggKind::kMax:
      if (!seen || v.Compare(max) > 0) max = v;
      seen = true;
      break;
    case AggKind::kCountStar:
      break;
  }
  return Status::OK();
}

void AggState::Merge(AggKind kind, const AggState& other) {
  count += other.count;
  // SUM/AVG partials: the double lane accumulates everything, the int lane
  // only ints; promotion sticks if ANY worker saw a double — identical to
  // the order the serial loop would have seen.
  sum += other.sum;
  isum += other.isum;
  sum_is_double |= other.sum_is_double;
  if (kind == AggKind::kMin && other.seen) {
    if (!seen || other.min.Compare(min) < 0) min = other.min;
    seen = true;
  }
  if (kind == AggKind::kMax && other.seen) {
    if (!seen || other.max.Compare(max) > 0) max = other.max;
    seen = true;
  }
}

Value AggState::Finalize(AggKind kind) const {
  switch (kind) {
    case AggKind::kCount:
    case AggKind::kCountStar:
      return Value::Int64(count);
    case AggKind::kSum:
      if (count == 0) return Value::Null();
      return sum_is_double ? Value::Double(sum) : Value::Int64(isum);
    case AggKind::kAvg:
      return count == 0 ? Value::Null()
                        : Value::Double(sum / static_cast<double>(count));
    case AggKind::kMin:
      return seen ? min : Value::Null();
    case AggKind::kMax:
      return seen ? max : Value::Null();
  }
  return Value::Null();
}

// --- HashAggregateOperator ---------------------------------------------------------

HashAggregateOperator::HashAggregateOperator(std::unique_ptr<Operator> child,
                                             std::vector<ValueFn> group_keys,
                                             std::vector<AggSpec> aggs)
    : child_(std::move(child)),
      group_keys_(std::move(group_keys)),
      aggs_(std::move(aggs)) {}

namespace {

struct RowHash {
  size_t operator()(const Row& key) const {
    size_t h = 0;
    for (const Value& v : key) h = h * 1315423911u + v.HashCode();
    return h;
  }
};
struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};

}  // namespace

Status HashAggregateOperator::Materialize() {
  std::unordered_map<Row, std::vector<AggState>, RowHash, RowEq> groups;
  if (group_keys_.empty()) {
    groups.emplace(Row{}, std::vector<AggState>(aggs_.size()));  // global aggregate
  }
  while (child_->Next()) {
    const Row& in = child_->row();
    Row key;
    key.reserve(group_keys_.size());
    for (const auto& fn : group_keys_) key.push_back(fn(in));
    auto [it, inserted] = groups.try_emplace(std::move(key));
    if (inserted) it->second.resize(aggs_.size());
    for (size_t a = 0; a < aggs_.size(); ++a) {
      DTL_RETURN_NOT_OK(it->second[a].Update(aggs_[a], in));
    }
  }
  DTL_RETURN_NOT_OK(child_->status());

  results_.reserve(groups.size());
  for (auto& [key, states] : groups) {
    Row out = key;
    for (size_t a = 0; a < aggs_.size(); ++a) {
      out.push_back(states[a].Finalize(aggs_[a].kind));
    }
    results_.push_back(std::move(out));
  }
  // Deterministic output order for tests.
  std::sort(results_.begin(), results_.end(), [&](const Row& a, const Row& b) {
    for (size_t i = 0; i < group_keys_.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  });
  materialized_ = true;
  return Status::OK();
}

bool HashAggregateOperator::Next() {
  if (!materialized_) {
    status_ = Materialize();
    if (!status_.ok()) return false;
  }
  if (index_ >= results_.size()) return false;
  out_ = results_[index_++];
  return true;
}

// --- SortOperator ------------------------------------------------------------------

SortOperator::SortOperator(std::unique_ptr<Operator> child, std::vector<ValueFn> keys,
                           std::vector<bool> ascending)
    : child_(std::move(child)), keys_(std::move(keys)), ascending_(std::move(ascending)) {}

bool SortOperator::Next() {
  if (!materialized_) {
    while (child_->Next()) rows_.push_back(child_->row());
    status_ = child_->status();
    if (!status_.ok()) return false;
    std::stable_sort(rows_.begin(), rows_.end(), [this](const Row& a, const Row& b) {
      for (size_t i = 0; i < keys_.size(); ++i) {
        int c = keys_[i](a).Compare(keys_[i](b));
        if (c != 0) return ascending_[i] ? c < 0 : c > 0;
      }
      return false;
    });
    materialized_ = true;
  }
  if (index_ >= rows_.size()) return false;
  ++index_;
  return true;
}

Result<std::vector<Row>> Collect(Operator* op) {
  std::vector<Row> rows;
  while (op->Next()) rows.push_back(op->row());
  DTL_RETURN_NOT_OK(op->status());
  return rows;
}

// --- BatchProjectOperator ----------------------------------------------------------

BatchProjectOperator::BatchProjectOperator(std::unique_ptr<BatchOperator> child,
                                           std::vector<ValueFn> exprs,
                                           std::vector<int> column_refs)
    : child_(std::move(child)),
      exprs_(std::move(exprs)),
      column_refs_(std::move(column_refs)) {
  all_refs_ = !column_refs_.empty() &&
              std::all_of(column_refs_.begin(), column_refs_.end(),
                          [](int r) { return r >= 0; });
}

bool BatchProjectOperator::Next(table::RowBatch* batch) {
  if (!child_->Next(&in_)) return false;
  if (all_refs_) {
    // Zero-copy: point each output column at the referenced input column and
    // forward the selection. `in_` is a member, so the views stay valid until
    // the next call, and the anchor keeps any stripe storage alive.
    batch->Reset(exprs_.size(), in_.num_rows());
    for (size_t i = 0; i < column_refs_.size(); ++i) {
      const table::ColumnVector& src = in_.column(static_cast<size_t>(column_refs_[i]));
      if (src.data() != nullptr) batch->column(i).SetView(src.data(), in_.num_rows());
    }
    if (in_.has_selection()) {
      std::vector<uint32_t> selection;
      selection.reserve(in_.size());
      for (size_t i = 0; i < in_.size(); ++i) {
        selection.push_back(static_cast<uint32_t>(in_.row_index(i)));
      }
      batch->SetSelection(std::move(selection));
    }
    batch->SetAnchor(in_.anchor());
    return true;
  }
  // General expressions: one scratch-row materialization per visible row.
  const size_t n = in_.size();
  cols_.resize(exprs_.size());
  for (auto& col : cols_) {
    col.clear();
    col.reserve(n);
  }
  for (size_t i = 0; i < n; ++i) {
    in_.MaterializeRow(i, &scratch_);
    for (size_t e = 0; e < exprs_.size(); ++e) cols_[e].push_back(exprs_[e](scratch_));
  }
  batch->Reset(exprs_.size(), n);
  for (size_t e = 0; e < exprs_.size(); ++e) batch->column(e).SetOwned(std::move(cols_[e]));
  return true;
}

Result<std::vector<Row>> CollectBatches(BatchOperator* op) {
  std::vector<Row> rows;
  table::RowBatch batch;
  Row row;
  while (op->Next(&batch)) {
    for (size_t i = 0; i < batch.size(); ++i) {
      batch.MaterializeRow(i, &row);
      rows.push_back(row);
    }
  }
  DTL_RETURN_NOT_OK(op->status());
  return rows;
}

}  // namespace dtl::exec
