#include "exec/mapreduce.h"

#include <atomic>
#include <map>
#include <mutex>

namespace dtl::exec {

Result<std::vector<Row>> RunMapReduce(const std::vector<table::ScanSplit>& splits,
                                      const MapFn& map, const ReduceFn& reduce,
                                      const MapReduceConfig& config,
                                      MapReduceStats* stats) {
  if (config.pool == nullptr) return Status::InvalidArgument("MapReduce needs a pool");
  const size_t num_reducers = reduce ? std::max<size_t>(1, config.num_reducers) : 1;

  // Per-mapper, per-reducer emission buffers (no cross-task locking on the
  // hot path, like real map output spills).
  std::vector<std::vector<std::vector<std::pair<Value, Row>>>> spills(
      splits.size(), std::vector<std::vector<std::pair<Value, Row>>>(num_reducers));
  std::vector<Status> map_status(splits.size());
  std::atomic<uint64_t> input_records{0};

  config.pool->ParallelFor(splits.size(), [&](size_t i) {
    auto it_result = splits[i].open();
    if (!it_result.ok()) {
      map_status[i] = it_result.status();
      return;
    }
    auto& it = *it_result;
    std::vector<std::pair<Value, Row>> emitted;
    uint64_t records = 0;
    while (it->Next()) {
      ++records;
      emitted.clear();
      map(it->row(), it->record_id(), &emitted);
      for (auto& [key, value] : emitted) {
        size_t part = reduce ? key.HashCode() % num_reducers : 0;
        spills[i][part].emplace_back(std::move(key), std::move(value));
      }
    }
    map_status[i] = it->status();
    input_records.fetch_add(records, std::memory_order_relaxed);
  });
  for (const Status& st : map_status) DTL_RETURN_NOT_OK(st);

  uint64_t shuffled = 0;
  for (const auto& spill : spills) {
    for (const auto& part : spill) shuffled += part.size();
  }
  if (stats != nullptr) {
    stats->map_tasks = splits.size();
    stats->input_records = input_records.load();
    stats->shuffled_records = shuffled;
  }

  if (!reduce) {
    // Map-only job: concatenate emissions in split order (deterministic).
    std::vector<Row> out;
    out.reserve(shuffled);
    for (auto& spill : spills) {
      for (auto& [key, value] : spill[0]) out.push_back(std::move(value));
    }
    if (stats != nullptr) stats->output_records = out.size();
    return out;
  }

  // Shuffle: group by key within each reducer partition. Ordered map keeps
  // reducer output deterministic.
  std::vector<std::vector<Row>> reducer_out(num_reducers);
  std::vector<Status> reduce_status(num_reducers);
  config.pool->ParallelFor(num_reducers, [&](size_t r) {
    std::map<Value, std::vector<Row>, std::function<bool(const Value&, const Value&)>>
        groups([](const Value& a, const Value& b) { return a.Compare(b) < 0; });
    for (auto& spill : spills) {
      for (auto& [key, value] : spill[r]) {
        groups[key].push_back(std::move(value));
      }
    }
    for (auto& [key, values] : groups) {
      reduce(key, values, &reducer_out[r]);
    }
  });
  for (const Status& st : reduce_status) DTL_RETURN_NOT_OK(st);

  std::vector<Row> out;
  for (auto& part : reducer_out) {
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  if (stats != nullptr) {
    stats->reduce_tasks = num_reducers;
    stats->output_records = out.size();
  }
  return out;
}

Result<uint64_t> ParallelCount(const std::vector<table::ScanSplit>& splits,
                               ThreadPool* pool) {
  if (pool == nullptr) return Status::InvalidArgument("ParallelCount needs a pool");
  std::vector<uint64_t> counts(splits.size(), 0);
  std::vector<Status> statuses(splits.size());
  pool->ParallelFor(splits.size(), [&](size_t i) {
    auto it_result = splits[i].open();
    if (!it_result.ok()) {
      statuses[i] = it_result.status();
      return;
    }
    auto& it = *it_result;
    uint64_t n = 0;
    while (it->Next()) ++n;
    statuses[i] = it->status();
    counts[i] = n;
  });
  uint64_t total = 0;
  for (size_t i = 0; i < splits.size(); ++i) {
    DTL_RETURN_NOT_OK(statuses[i]);
    total += counts[i];
  }
  return total;
}

}  // namespace dtl::exec
