#include "exec/parallel_scan.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "obs/metric_names.h"

namespace dtl::exec {

Status ParallelScanner::Run(
    const std::function<Status(size_t worker, const table::RowBatch& batch)>& consume) {
  // One snapshot pins the whole scan: planning and every morsel read the
  // same (generation, attached state) pair regardless of concurrent writers.
  const dual::SnapshotPtr snapshot =
      options_.snapshot != nullptr ? options_.snapshot : table_->AcquireSnapshot();
  DTL_ASSIGN_OR_RETURN(
      auto morsels, table_->PlanScanMorselsAt(snapshot, spec_, options_.morsel_stripes));
  size_t workers = planned_parallelism();
  workers = std::min(workers, morsels.size());

  // Worker-local meters: counting is contention-free during the scan and the
  // totals fold into the target at the barrier below.
  std::vector<table::ScanMeter> meters(std::max<size_t>(workers, 1));
  std::atomic<size_t> next_morsel{0};

  auto worker_loop = [&](size_t w, const std::function<bool()>& cancelled) -> Status {
    table::RowBatch batch;
    while (!cancelled()) {
      const size_t m = next_morsel.fetch_add(1, std::memory_order_relaxed);
      if (m >= morsels.size()) break;
      DTL_ASSIGN_OR_RETURN(auto it, table_->NewUnionReadBatchForMorselAt(
                                        snapshot, morsels[m], spec_, &meters[w]));
      while (it->Next(&batch)) {
        DTL_RETURN_NOT_OK(consume(w, batch));
      }
      DTL_RETURN_NOT_OK(it->status());
    }
    return Status::OK();
  };

  Status st;
  if (workers <= 1 || options_.pool == nullptr) {
    // Serial fallback: same morsels, same merge, one thread.
    if (!morsels.empty()) {
      st = worker_loop(0, [] { return false; });
    }
  } else {
    TaskGroup group(options_.pool);
    for (size_t w = 0; w < workers; ++w) {
      group.Spawn([&worker_loop, &group, w] {
        return worker_loop(w, [&group] { return group.cancelled(); });
      });
    }
    st = group.Wait();
  }

  table::ScanMeter& target =
      spec_.meter != nullptr ? *spec_.meter : table::GlobalScanMeter();
  for (const table::ScanMeter& m : meters) target.Add(m.Snapshot());
  if (options_.metrics != nullptr) {
    options_.metrics->counter(obs::names::kParallelScans)->Inc();
    options_.metrics->counter(obs::names::kParallelMorsels)->Inc(morsels.size());
    obs::Histogram* worker_rows =
        options_.metrics->histogram(obs::names::kParallelWorkerRows);
    for (const table::ScanMeter& m : meters) worker_rows->Observe(m.Snapshot().rows);
  }
  return st;
}

Result<std::vector<Row>> ParallelScanner::CollectRows() {
  const size_t slots = std::max<size_t>(planned_parallelism(), 1);
  std::vector<std::vector<std::pair<uint64_t, Row>>> partials(slots);
  std::vector<Row> scratch(slots);
  DTL_RETURN_NOT_OK(Run([&](size_t w, const table::RowBatch& batch) -> Status {
    for (size_t i = 0; i < batch.size(); ++i) {
      batch.MaterializeRow(i, &scratch[w]);
      partials[w].emplace_back(batch.record_id(i), scratch[w]);
    }
    return Status::OK();
  }));
  std::vector<std::pair<uint64_t, Row>> all;
  for (auto& p : partials) {
    all.insert(all.end(), std::make_move_iterator(p.begin()),
               std::make_move_iterator(p.end()));
  }
  // Record IDs are unique, so sorting restores the serial scan order no
  // matter how morsels interleaved across workers.
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Row> rows;
  rows.reserve(all.size());
  for (auto& [id, row] : all) rows.push_back(std::move(row));
  return rows;
}

Result<uint64_t> ParallelScanner::Count() {
  const size_t slots = std::max<size_t>(planned_parallelism(), 1);
  std::vector<uint64_t> counts(slots, 0);
  DTL_RETURN_NOT_OK(Run([&counts](size_t w, const table::RowBatch& batch) -> Status {
    counts[w] += batch.size();
    return Status::OK();
  }));
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  return total;
}

Result<Row> ParallelScanner::Aggregate(const std::vector<AggSpec>& aggs) {
  const size_t slots = std::max<size_t>(planned_parallelism(), 1);
  std::vector<std::vector<AggState>> partials(slots, std::vector<AggState>(aggs.size()));
  std::vector<Row> scratch(slots);
  DTL_RETURN_NOT_OK(Run([&](size_t w, const table::RowBatch& batch) -> Status {
    for (size_t i = 0; i < batch.size(); ++i) {
      batch.MaterializeRow(i, &scratch[w]);
      for (size_t a = 0; a < aggs.size(); ++a) {
        DTL_RETURN_NOT_OK(partials[w][a].Update(aggs[a], scratch[w]));
      }
    }
    return Status::OK();
  }));
  // The barrier: fold worker partials, then finalize. An empty table (zero
  // morsels) falls through with default states — COUNT 0, SUM/AVG/MIN/MAX
  // NULL, exactly SQL's empty-input row.
  Row out;
  out.reserve(aggs.size());
  for (size_t a = 0; a < aggs.size(); ++a) {
    AggState merged;
    for (const auto& worker_states : partials) {
      merged.Merge(aggs[a].kind, worker_states[a]);
    }
    out.push_back(merged.Finalize(aggs[a].kind));
  }
  return out;
}

}  // namespace dtl::exec
