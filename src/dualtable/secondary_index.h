// KV-hosted secondary index (ROADMAP: point-lookup serving tier). Maps an
// indexed column's value to the record IDs that carry it, stored in a
// dedicated KvStore so lookups inherit the LSM's memtable/SSTable machinery,
// WAL durability, and — crucially — its snapshot pinning: a lookup executed
// against a pinned KvSnapshot sees exactly the entries visible at that
// snapshot's timestamp, which DualTable clamps to the same commit timestamp
// as the attached store.
//
// Consistency model (stale-tolerant): index entries are written and synced
// BEFORE the table mutation they describe becomes visible, so the index may
// briefly contain entries for values no snapshot can observe yet, but never
// lacks an entry a snapshot needs. Readers re-verify every candidate row
// against the pinned table state (generation membership, delete markers,
// current column value), so extra entries cost one probe each and wrong
// results are impossible. Dead entries are folded out after COMPACT.
//
// Entry key layout (memcmp-ordered, prefix-free):
//   [column ordinal : 4B BE] [kind tag : 1B] [payload] [record id : 8B BE]
//   int64/date payload: 8B BE of (uint64)v XOR sign bit  → numeric order
//   string payload:     bytes with 0x00 escaped as 0x00 0xFF, terminated
//                       by 0x00 0x00 → lexicographic order, prefix-free
// The qualifier is always 0 and the value empty: the key IS the entry.
// A single meta row keyed 0xFFFFFFFF "meta" (sorting after every entry —
// column ordinals are bounded by the attached table's reserved qualifiers)
// records the (master generation, attached timestamp, column set) the index
// was last known consistent with; Open-time recovery rebuilds on mismatch.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"
#include "fs/filesystem.h"
#include "kv/store.h"

namespace dtl::obs {
class Counter;
class MetricsRegistry;
}  // namespace dtl::obs

namespace dtl::dual {

class SecondaryIndex {
 public:
  /// Relaxed atomics; concurrent lookups and maintenance bump them lock-free.
  struct Stats {
    std::atomic<uint64_t> lookups{0};
    std::atomic<uint64_t> entries_added{0};
    std::atomic<uint64_t> entries_folded{0};
    std::atomic<uint64_t> candidate_rows{0};
    std::atomic<uint64_t> stale_dropped{0};
    std::atomic<uint64_t> rebuilds{0};
  };

  /// What the meta row records: the table state the entry set is known to
  /// cover. A mismatch at Open (crash between a table commit and the meta
  /// write, or a DDL change to the column set) triggers a rebuild.
  struct Meta {
    uint64_t master_generation = 0;
    uint64_t attached_ts = 0;
    std::vector<size_t> columns;
  };

  /// Opens (creating if absent) the index store at /hbase/<name>_index.
  /// `columns` must be valid ordinals of indexable type in `schema`.
  static Result<std::unique_ptr<SecondaryIndex>> Open(
      fs::SimFileSystem* fs, const std::string& table_name,
      std::vector<size_t> columns, const Schema& schema,
      kv::KvStoreOptions base_options = {});

  /// Only types with a total memcmp-preserving encoding are indexable.
  static bool IndexableType(DataType type) {
    return type == DataType::kInt64 || type == DataType::kDate ||
           type == DataType::kString;
  }

  const std::vector<size_t>& columns() const { return columns_; }
  bool IndexesColumn(size_t column) const {
    for (size_t c : columns_) {
      if (c == column) return true;
    }
    return false;
  }

  /// Adds one entry. Nulls are not indexed (a lookup probe is never null);
  /// silently ignored so callers can stream rows without branching.
  Status Add(size_t column, const Value& value, uint64_t record_id);

  /// Adds entries for every indexed column of a full-width row.
  Status AddRow(const Row& row, uint64_t record_id);

  /// Record IDs whose entry for `column` equals `value` in the pinned
  /// snapshot, ascending. Candidates only — the caller must re-verify
  /// against the pinned table state.
  Result<std::vector<uint64_t>> LookupAt(const kv::KvSnapshot& snapshot,
                                         size_t column, const Value& value) const;

  /// Pins the entry set (pair with the table's commit-timestamp clamp).
  kv::KvSnapshot GetSnapshot() const { return store_->GetSnapshot(); }
  uint64_t LastTimestamp() const { return store_->LastTimestamp(); }

  /// WAL-syncs pending entries. Called before the mutation they describe
  /// becomes visible, keeping the no-missing-entries invariant across
  /// crashes.
  Status Sync() { return store_->SyncWal(); }

  /// Drops every entry whose record ID lives in a dead master file
  /// (post-COMPACT fold), then compacts the store so the tombstones and the
  /// masked entries physically disappear.
  Status FoldDeadFiles(const std::unordered_set<uint64_t>& dead_file_ids);

  /// Meta-row round trip. Returns nullopt when the row is absent (fresh
  /// store, or crash before the first meta write).
  Result<std::optional<Meta>> ReadMeta();
  Status WriteMeta(uint64_t master_generation, uint64_t attached_ts);

  /// Drops all entries AND the meta row (rebuild prologue). Never call on a
  /// table serving snapshots: a reader pinned mid-rebuild would see missing
  /// entries, the one hazard the design excludes. Open-time recovery only.
  Status ClearAll() { return store_->Clear(); }

  /// Removes backing storage entirely.
  Status Drop();

  Stats& stats() const { return stats_; }
  kv::KvStore* store() { return store_.get(); }

  /// Wires the `index.*` registry counters (lookups / stale_entries_skipped /
  /// rebuilds), labeled by table name. The `dualtable.index.*` views read the
  /// Stats atomics through the owning session; these counters live in the
  /// registry itself, so they survive the table object and show up in every
  /// dump path. Optional; unbound indexes count only into Stats.
  void BindMetrics(obs::MetricsRegistry* metrics, const std::string& label);

  /// Stat bumps that also feed the bound registry counters. Callers must use
  /// these (not the raw Stats atomics) for the three bound events.
  void CountLookup() const;
  void CountStaleSkipped() const;
  void CountRebuild() const;

 private:
  SecondaryIndex(fs::SimFileSystem* fs, std::string dir,
                 std::unique_ptr<kv::KvStore> store, std::vector<size_t> columns)
      : fs_(fs),
        dir_(std::move(dir)),
        store_(std::move(store)),
        columns_(std::move(columns)) {}

  /// Encodes [column][tag][payload] — the lookup prefix. Returns false for
  /// nulls and non-indexable kinds.
  static bool EncodePrefix(size_t column, const Value& value, std::string* dst);

  fs::SimFileSystem* fs_;
  std::string dir_;
  std::unique_ptr<kv::KvStore> store_;
  std::vector<size_t> columns_;
  mutable Stats stats_;
  obs::Counter* lookups_ctr_ = nullptr;
  obs::Counter* stale_skipped_ctr_ = nullptr;
  obs::Counter* rebuilds_ctr_ = nullptr;
};

}  // namespace dtl::dual
