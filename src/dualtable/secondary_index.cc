#include "dualtable/secondary_index.h"

#include <algorithm>
#include <cstring>

#include "common/coding.h"
#include "dualtable/record_id.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace dtl::dual {

namespace {

constexpr char kTagInt64 = 0x01;
constexpr char kTagString = 0x02;

// Sorts after every entry key: real column ordinals are bounded well below
// 0xFFFFFFFF by the attached table's reserved qualifiers.
const char kMetaPrefix[4] = {'\xFF', '\xFF', '\xFF', '\xFF'};

std::string MetaKey() { return std::string(kMetaPrefix, 4) + "meta"; }

void PutBigEndian32(std::string* dst, uint32_t v) {
  dst->push_back(static_cast<char>(v >> 24));
  dst->push_back(static_cast<char>(v >> 16));
  dst->push_back(static_cast<char>(v >> 8));
  dst->push_back(static_cast<char>(v));
}

// XOR-ing the sign bit maps int64 numeric order onto unsigned big-endian
// memcmp order (negatives sort below positives).
void PutOrderedInt64(std::string* dst, int64_t v) {
  PutBigEndian64(dst, static_cast<uint64_t>(v) ^ (1ull << 63));
}

// 0x00 bytes escape to 0x00 0xFF; the 0x00 0x00 terminator then sorts below
// every continuation, so no encoded string is a prefix of another and
// lexicographic order is preserved.
void PutOrderedString(std::string* dst, const std::string& s) {
  for (char c : s) {
    dst->push_back(c);
    if (c == '\x00') dst->push_back('\xFF');
  }
  dst->push_back('\x00');
  dst->push_back('\x00');
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         memcmp(s.data(), prefix.data(), prefix.size()) == 0;
}

}  // namespace

bool SecondaryIndex::EncodePrefix(size_t column, const Value& value,
                                  std::string* dst) {
  dst->clear();
  PutBigEndian32(dst, static_cast<uint32_t>(column));
  if (value.is_int64()) {
    dst->push_back(kTagInt64);
    PutOrderedInt64(dst, value.AsInt64());
    return true;
  }
  if (value.is_string()) {
    dst->push_back(kTagString);
    PutOrderedString(dst, value.AsString());
    return true;
  }
  return false;
}

Result<std::unique_ptr<SecondaryIndex>> SecondaryIndex::Open(
    fs::SimFileSystem* fs, const std::string& table_name,
    std::vector<size_t> columns, const Schema& schema,
    kv::KvStoreOptions base_options) {
  for (size_t c : columns) {
    if (c >= schema.num_fields()) {
      return Status::InvalidArgument("indexed column ordinal out of range");
    }
    if (!IndexableType(schema.field(c).type)) {
      return Status::InvalidArgument("column '" + schema.field(c).name +
                                     "' has no order-preserving index encoding");
    }
  }
  std::sort(columns.begin(), columns.end());
  columns.erase(std::unique(columns.begin(), columns.end()), columns.end());
  base_options.dir = "/hbase/" + table_name + "_index";
  std::string dir = base_options.dir;
  DTL_ASSIGN_OR_RETURN(auto store, kv::KvStore::Open(fs, std::move(base_options)));
  return std::unique_ptr<SecondaryIndex>(
      new SecondaryIndex(fs, std::move(dir), std::move(store), std::move(columns)));
}

Status SecondaryIndex::Add(size_t column, const Value& value, uint64_t record_id) {
  std::string key;
  if (!EncodePrefix(column, value, &key)) return Status::OK();
  PutBigEndian64(&key, record_id);
  DTL_RETURN_NOT_OK(store_->Put(key, 0, ""));
  stats_.entries_added.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status SecondaryIndex::AddRow(const Row& row, uint64_t record_id) {
  for (size_t c : columns_) {
    if (c >= row.size()) continue;
    DTL_RETURN_NOT_OK(Add(c, row[c], record_id));
  }
  return Status::OK();
}

void SecondaryIndex::BindMetrics(obs::MetricsRegistry* metrics,
                                 const std::string& label) {
  if (metrics == nullptr) return;
  lookups_ctr_ = metrics->counter(obs::names::kIndexCounterLookups, label);
  stale_skipped_ctr_ = metrics->counter(obs::names::kIndexCounterStaleSkipped, label);
  rebuilds_ctr_ = metrics->counter(obs::names::kIndexCounterRebuilds, label);
}

void SecondaryIndex::CountLookup() const {
  stats_.lookups.fetch_add(1, std::memory_order_relaxed);
  if (lookups_ctr_ != nullptr) lookups_ctr_->Inc();
}

void SecondaryIndex::CountStaleSkipped() const {
  stats_.stale_dropped.fetch_add(1, std::memory_order_relaxed);
  if (stale_skipped_ctr_ != nullptr) stale_skipped_ctr_->Inc();
}

void SecondaryIndex::CountRebuild() const {
  stats_.rebuilds.fetch_add(1, std::memory_order_relaxed);
  if (rebuilds_ctr_ != nullptr) rebuilds_ctr_->Inc();
}

Result<std::vector<uint64_t>> SecondaryIndex::LookupAt(
    const kv::KvSnapshot& snapshot, size_t column, const Value& value) const {
  CountLookup();
  std::vector<uint64_t> out;
  std::string prefix;
  if (!EncodePrefix(column, value, &prefix)) return out;
  auto rows = store_->NewRowScannerAt(snapshot, &prefix);
  while (rows->Next()) {
    const std::string& key = rows->view().row;
    if (!StartsWith(key, prefix)) break;
    if (key.size() != prefix.size() + 8) continue;
    out.push_back(DecodeBigEndian64(key.data() + prefix.size()));
  }
  DTL_RETURN_NOT_OK(rows->status());
  stats_.candidate_rows.fetch_add(out.size(), std::memory_order_relaxed);
  return out;
}

Status SecondaryIndex::FoldDeadFiles(
    const std::unordered_set<uint64_t>& dead_file_ids) {
  if (dead_file_ids.empty()) return Status::OK();
  std::vector<std::string> dead_keys;
  const std::string meta_key = MetaKey();
  auto rows = store_->NewRowScannerAt(store_->GetSnapshot(), nullptr);
  while (rows->Next()) {
    const std::string& key = rows->view().row;
    if (key == meta_key || key.size() < 4 + 1 + 8) continue;
    const uint64_t rid = DecodeBigEndian64(key.data() + key.size() - 8);
    if (dead_file_ids.count(RecordFileId(rid)) > 0) dead_keys.push_back(key);
  }
  DTL_RETURN_NOT_OK(rows->status());
  for (const std::string& key : dead_keys) {
    DTL_RETURN_NOT_OK(store_->DeleteRow(key));
  }
  stats_.entries_folded.fetch_add(dead_keys.size(), std::memory_order_relaxed);
  // Physically reclaim the tombstoned entries; pinned snapshots stay valid
  // because they hold the pre-compaction SSTables alive.
  return store_->Compact();
}

Result<std::optional<SecondaryIndex::Meta>> SecondaryIndex::ReadMeta() {
  DTL_ASSIGN_OR_RETURN(auto raw, store_->Get(MetaKey(), 0));
  if (!raw.has_value()) return std::optional<Meta>();
  Slice in(*raw);
  Meta meta;
  DTL_RETURN_NOT_OK(GetVarint64(&in, &meta.master_generation));
  DTL_RETURN_NOT_OK(GetVarint64(&in, &meta.attached_ts));
  uint64_t count = 0;
  DTL_RETURN_NOT_OK(GetVarint64(&in, &count));
  meta.columns.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t ordinal = 0;
    DTL_RETURN_NOT_OK(GetVarint64(&in, &ordinal));
    meta.columns.push_back(static_cast<size_t>(ordinal));
  }
  return std::optional<Meta>(std::move(meta));
}

Status SecondaryIndex::WriteMeta(uint64_t master_generation, uint64_t attached_ts) {
  std::string encoded;
  PutVarint64(&encoded, master_generation);
  PutVarint64(&encoded, attached_ts);
  PutVarint64(&encoded, columns_.size());
  for (size_t c : columns_) PutVarint64(&encoded, c);
  DTL_RETURN_NOT_OK(store_->Put(MetaKey(), 0, encoded));
  return store_->SyncWal();
}

Status SecondaryIndex::Drop() {
  DTL_RETURN_NOT_OK(store_->Clear());
  return fs_->DeleteRecursively(dir_);
}

}  // namespace dtl::dual
