#include "dualtable/cost_model.h"

#include <algorithm>
#include <cstdio>

namespace dtl::dual {

std::string PlanDecision::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s (overwrite=%.3fs edit=%.3fs diff=%.3fs)",
                table::DmlPlanName(plan), cost_overwrite_seconds, cost_edit_seconds,
                cost_difference_seconds);
  return buf;
}

PlanDecision CostModel::DecideUpdate(uint64_t table_bytes, double alpha) const {
  const double d = static_cast<double>(table_bytes);
  const double k = params_.k;
  PlanDecision out;
  out.cost_overwrite_seconds = MasterWrite(d) + k * MasterRead(d);
  out.cost_edit_seconds =
      AttachedWrite(alpha * d) + k * (AttachedRead(alpha * d) + MasterRead(d));
  out.cost_difference_seconds = out.cost_overwrite_seconds - out.cost_edit_seconds;
  out.plan = out.cost_difference_seconds > 0 ? table::DmlPlan::kEdit
                                             : table::DmlPlan::kOverwrite;
  return out;
}

PlanDecision CostModel::DecideDelete(uint64_t table_bytes, double beta,
                                     double avg_row_bytes) const {
  const double d_total = static_cast<double>(table_bytes);
  const double k = params_.k;
  const double marker_ratio =
      avg_row_bytes > 0 ? params_.delete_marker_bytes / avg_row_bytes : 1.0;
  PlanDecision out;
  // OVERWRITE keeps (1-β) of the data; its following reads also shrink.
  out.cost_overwrite_seconds =
      MasterWrite((1.0 - beta) * d_total) + k * MasterRead((1.0 - beta) * d_total);
  const double marker_bytes = beta * d_total * marker_ratio;
  out.cost_edit_seconds =
      AttachedWrite(marker_bytes) + k * (AttachedRead(marker_bytes) + MasterRead(d_total));
  out.cost_difference_seconds = out.cost_overwrite_seconds - out.cost_edit_seconds;
  out.plan = out.cost_difference_seconds > 0 ? table::DmlPlan::kEdit
                                             : table::DmlPlan::kOverwrite;
  return out;
}

double CostModel::UpdateCrossoverRatio(uint64_t table_bytes) const {
  // Eq. 1 is linear in alpha; solve CostU(alpha) = 0.
  const double d = static_cast<double>(table_bytes);
  const double denom = AttachedWrite(d) + params_.k * AttachedRead(d);
  if (denom <= 0) return 1.0;
  return std::clamp(MasterWrite(d) / denom, 0.0, 1.0);
}

double CostModel::DeleteCrossoverRatio(uint64_t table_bytes,
                                       double avg_row_bytes) const {
  // Eq. 2 is linear in beta as well; CostD = MW(D) - beta * (MW(D) + k MR(D)
  // + (m/d) AW(D) + k (m/d) AR(D)).
  const double d_total = static_cast<double>(table_bytes);
  const double marker_ratio =
      avg_row_bytes > 0 ? params_.delete_marker_bytes / avg_row_bytes : 1.0;
  const double denom = MasterWrite(d_total) + params_.k * MasterRead(d_total) +
                       marker_ratio * AttachedWrite(d_total) +
                       params_.k * marker_ratio * AttachedRead(d_total);
  if (denom <= 0) return 1.0;
  return std::clamp(MasterWrite(d_total) / denom, 0.0, 1.0);
}

}  // namespace dtl::dual
