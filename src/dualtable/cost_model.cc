#include "dualtable/cost_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dtl::dual {

std::string PlanDecision::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s (overwrite=%.3fs edit=%.3fs diff=%.3fs)",
                table::DmlPlanName(plan), cost_overwrite_seconds, cost_edit_seconds,
                cost_difference_seconds);
  return buf;
}

PlanDecision CostModel::DecideUpdate(uint64_t table_bytes, double alpha) const {
  const double d = static_cast<double>(table_bytes);
  const double k = params_.k;
  PlanDecision out;
  out.cost_overwrite_seconds =
      params_.overwrite_cost_scale * (MasterWrite(d) + k * MasterRead(d));
  out.cost_edit_seconds =
      params_.edit_cost_scale *
      (AttachedWrite(alpha * d) + k * (AttachedRead(alpha * d) + MasterRead(d)));
  out.cost_difference_seconds = out.cost_overwrite_seconds - out.cost_edit_seconds;
  out.plan = out.cost_difference_seconds > 0 ? table::DmlPlan::kEdit
                                             : table::DmlPlan::kOverwrite;
  return out;
}

PlanDecision CostModel::DecideDelete(uint64_t table_bytes, double beta,
                                     double avg_row_bytes) const {
  const double d_total = static_cast<double>(table_bytes);
  const double k = params_.k;
  const double marker_ratio =
      avg_row_bytes > 0 ? params_.delete_marker_bytes / avg_row_bytes : 1.0;
  PlanDecision out;
  // OVERWRITE keeps (1-β) of the data; its following reads also shrink.
  out.cost_overwrite_seconds =
      params_.overwrite_cost_scale *
      (MasterWrite((1.0 - beta) * d_total) + k * MasterRead((1.0 - beta) * d_total));
  const double marker_bytes = beta * d_total * marker_ratio;
  out.cost_edit_seconds =
      params_.edit_cost_scale * (AttachedWrite(marker_bytes) +
                                 k * (AttachedRead(marker_bytes) + MasterRead(d_total)));
  out.cost_difference_seconds = out.cost_overwrite_seconds - out.cost_edit_seconds;
  out.plan = out.cost_difference_seconds > 0 ? table::DmlPlan::kEdit
                                             : table::DmlPlan::kOverwrite;
  return out;
}

double CostModel::UpdateCrossoverRatio(uint64_t table_bytes) const {
  // Eq. 1 is linear in alpha; solve scaled CostU(alpha) = 0:
  //   os·(MW + k·MR) = es·(α·AW + k·α·AR + k·MR)
  // With os == es the k·MR terms cancel and this reduces to the paper's
  // MW / (AW + k·AR).
  const double d = static_cast<double>(table_bytes);
  const double os = params_.overwrite_cost_scale;
  const double es = params_.edit_cost_scale;
  const double denom = es * (AttachedWrite(d) + params_.k * AttachedRead(d));
  if (denom <= 0) return 1.0;
  const double numer =
      os * MasterWrite(d) + (os - es) * params_.k * MasterRead(d);
  return std::clamp(numer / denom, 0.0, 1.0);
}

double CostModel::DeleteCrossoverRatio(uint64_t table_bytes,
                                       double avg_row_bytes) const {
  // Eq. 2 is linear in beta as well: solve
  //   os·(1-β)·(MW + k·MR) = es·(β·(m/d)·(AW + k·AR) + k·MR).
  const double d_total = static_cast<double>(table_bytes);
  const double os = params_.overwrite_cost_scale;
  const double es = params_.edit_cost_scale;
  const double marker_ratio =
      avg_row_bytes > 0 ? params_.delete_marker_bytes / avg_row_bytes : 1.0;
  const double master_cost =
      MasterWrite(d_total) + params_.k * MasterRead(d_total);
  const double denom =
      os * master_cost +
      es * marker_ratio * (AttachedWrite(d_total) + params_.k * AttachedRead(d_total));
  if (denom <= 0) return 1.0;
  const double numer = os * master_cost - es * params_.k * MasterRead(d_total);
  return std::clamp(numer / denom, 0.0, 1.0);
}

void CostModel::Calibrate(bool edit_plan, double predicted, double measured,
                          double gain) {
  if (gain <= 0 || predicted <= 0 || measured <= 0) return;
  // Multiplicative EWMA in log space: the fixed point is scale where the
  // scaled prediction equals the modelled actuals. Clamped so one wild
  // measurement (e.g. a cache-empty first statement) cannot blow the scale
  // out of a recoverable range.
  double* scale = edit_plan ? &params_.edit_cost_scale : &params_.overwrite_cost_scale;
  const double step = std::pow(measured / predicted, std::clamp(gain, 0.0, 1.0));
  *scale = std::clamp(*scale * step, 1e-3, 1e3);
}

}  // namespace dtl::dual
