#include "dualtable/master_table.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <set>

#include "common/coding.h"
#include "dualtable/record_id.h"
#include "orc/stripe_cache.h"
#include "table/scan_stats.h"

namespace dtl::dual {

namespace {

std::string MasterFilePath(const std::string& dir, uint64_t file_id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "f_%08llu.orc", static_cast<unsigned long long>(file_id));
  return fs::JoinPath(dir, buf);
}

std::string ManifestPath(const std::string& dir) { return fs::JoinPath(dir, "manifest"); }

bool HasSuffix(const std::string& name, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return name.size() >= n && name.compare(name.size() - n, n, suffix) == 0;
}

/// Bloom keys are Value::EncodeTo bytes, so a probe is only meaningful when
/// the literal's kind matches the column's stored kind; cross-kind numeric
/// equality (int64 column vs double literal) must fall back to min/max.
bool SameValueKind(const Value& a, const Value& b) {
  return (a.is_int64() && b.is_int64()) || (a.is_double() && b.is_double()) ||
         (a.is_string() && b.is_string()) || (a.is_bool() && b.is_bool());
}

}  // namespace

// --- MasterGeneration -----------------------------------------------------------

MasterGeneration::~MasterGeneration() {
  // Deferred orphan GC: these files were replaced while this generation was
  // still pinned by a snapshot; the last pin dropping is the earliest moment
  // they can go. The manifest no longer lists them, so a failed delete here
  // (or a crash before this runs) is re-collected by the next Open().
  for (const std::string& path : doomed_paths_) {
    DTL_IGNORE_STATUS(fs_->Delete(path),
                      "deferred generation GC: next Open() re-collects unlisted files");
  }
  if (live_counter_ != nullptr) {
    live_counter_->fetch_sub(1, std::memory_order_relaxed);
  }
}

uint64_t MasterGeneration::TotalRows() const {
  uint64_t total = 0;
  for (const auto& f : files_) total += f.num_rows;
  return total;
}

uint64_t MasterGeneration::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& f : files_) total += f.bytes;
  return total;
}

Result<std::shared_ptr<orc::OrcReader>> MasterGeneration::OpenReader(
    const MasterFileInfo& info) const {
  std::lock_guard<std::mutex> lock(reader_cache_mu_);
  auto it = reader_cache_.find(info.file_id);
  if (it != reader_cache_.end()) return it->second;
  DTL_ASSIGN_OR_RETURN(auto reader, orc::OrcReader::Open(fs_, info.path));
  std::shared_ptr<orc::OrcReader> shared = std::move(reader);
  if (stripe_cache_ != nullptr) {
    // Keyed by the file's birth generation, not this generation: a file kept
    // across COMPACT swaps stays warm, while a replacement file (new id, new
    // birth) can never be served the replaced file's stripes.
    shared->SetSharedCache(stripe_cache_, cache_owner_, info.born_generation);
  }
  reader_cache_[info.file_id] = shared;
  return shared;
}

bool StripeMayMatch(const orc::StripeInfo& stripe,
                    const std::vector<table::ColumnBound>& bounds,
                    bool* bloom_pruned) {
  if (bloom_pruned != nullptr) *bloom_pruned = false;
  for (const table::ColumnBound& bound : bounds) {
    if (bound.column >= stripe.stats.size()) continue;
    const orc::ColumnStats& stats = stripe.stats[bound.column];
    if (!stats.has_min_max) continue;  // all-null stripe: cannot prune safely
    if (bound.lower.has_value() && stats.max.Compare(*bound.lower) < 0) return false;
    if (bound.upper.has_value() && stats.min.Compare(*bound.upper) > 0) return false;
    // Equality bounds get a second chance to prune: min/max admit any value
    // inside the range, the bloom filter rules out values never written.
    if (bound.lower.has_value() && bound.upper.has_value() &&
        bound.lower->Compare(*bound.upper) == 0 && !stats.bloom.empty() &&
        SameValueKind(*bound.lower, stats.min) && !stats.BloomMayContain(*bound.lower)) {
      if (bloom_pruned != nullptr) *bloom_pruned = true;
      return false;
    }
  }
  return true;
}

// --- MasterFileWriter -----------------------------------------------------------

Status MasterFileWriter::Append(const Row& row) { return writer_->Append(row); }

Status MasterFileWriter::AppendRawStripe(const orc::StripeInfo& info,
                                         const std::string& stripe_bytes) {
  return writer_->AppendRawStripe(info, stripe_bytes);
}

Result<MasterFileInfo> MasterFileWriter::Close() {
  DTL_RETURN_NOT_OK(writer_->Close());
  // The writer staged the file at <path>.tmp; publish it with an atomic
  // rename so a crash mid-write leaves only a .tmp orphan that the next
  // Open() garbage-collects, never a torn .orc file.
  DTL_RETURN_NOT_OK(fs_->Rename(info_.path + ".tmp", info_.path));
  info_.num_rows = writer_->rows_written();
  DTL_ASSIGN_OR_RETURN(info_.bytes, fs_->FileSize(info_.path));
  return info_;
}

// --- MasterScanIterator -----------------------------------------------------------

MasterScanIterator::MasterScanIterator(std::vector<std::shared_ptr<orc::OrcReader>> readers,
                                       std::vector<uint64_t> file_ids,
                                       table::ScanSpec spec, size_t num_fields,
                                       bool apply_predicate)
    : readers_(std::move(readers)),
      file_ids_(std::move(file_ids)),
      spec_(std::move(spec)),
      num_fields_(num_fields),
      apply_predicate_(apply_predicate) {
  required_ = spec_.RequiredColumns(num_fields_);
}

bool MasterScanIterator::LoadNextBatch() {
  while (file_index_ < readers_.size()) {
    const orc::OrcReader* reader = readers_[file_index_].get();
    if (stripe_index_ >= reader->num_stripes()) {
      if (reader->num_stripes() > 0 && survivors_in_file_ == 0) {
        (spec_.meter != nullptr ? *spec_.meter : table::GlobalScanMeter()).AddSkippedFile();
      }
      ++file_index_;
      stripe_index_ = 0;
      survivors_in_file_ = 0;
      continue;
    }
    const orc::StripeInfo& info = reader->stripe(stripe_index_);
    bool bloom_pruned = false;
    if (!StripeMayMatch(info, spec_.bounds, &bloom_pruned)) {
      (spec_.meter != nullptr ? *spec_.meter : table::GlobalScanMeter())
          .AddSkippedStripe(bloom_pruned);
      ++stripe_index_;
      continue;
    }
    ++survivors_in_file_;
    auto batch = reader->ReadStripe(stripe_index_, required_);
    if (!batch.ok()) {
      status_ = batch.status();
      return false;
    }
    batch_ = std::move(batch).value();
    batch_loaded_ = true;
    index_in_batch_ = 0;
    ++stripe_index_;
    return true;
  }
  return false;
}

bool MasterScanIterator::Next() {
  if (!status_.ok()) return false;
  while (true) {
    if (!batch_loaded_ || index_in_batch_ >= batch_.num_rows) {
      batch_loaded_ = false;
      if (!LoadNextBatch()) return false;
    }
    const size_t i = index_in_batch_++;
    row_.assign(num_fields_, Value::Null());
    for (size_t p = 0; p < batch_.projection.size(); ++p) {
      row_[batch_.projection[p]] = batch_.columns[p][i];
    }
    if (apply_predicate_ && spec_.predicate && !spec_.predicate(row_)) continue;
    record_id_ = MakeRecordId(file_ids_[file_index_], batch_.first_row + i);
    return true;
  }
}

// --- MasterScanBatchIterator -------------------------------------------------------

MasterScanBatchIterator::MasterScanBatchIterator(
    std::vector<std::shared_ptr<orc::OrcReader>> readers, std::vector<uint64_t> file_ids,
    table::ScanSpec spec, size_t num_fields, bool apply_predicate, size_t batch_rows,
    size_t stripe_begin, size_t stripe_end, bool count_skips)
    : readers_(std::move(readers)),
      file_ids_(std::move(file_ids)),
      spec_(std::move(spec)),
      num_fields_(num_fields),
      apply_predicate_(apply_predicate),
      batch_rows_(std::max<size_t>(1, batch_rows)),
      stripe_end_limit_(stripe_end),
      count_skips_(count_skips) {
  required_ = spec_.RequiredColumns(num_fields_);
  stripe_index_ = stripe_begin;
  DTL_DCHECK(stripe_begin == 0 || readers_.size() <= 1);
}

bool MasterScanBatchIterator::LoadNextStripe() {
  while (file_index_ < readers_.size()) {
    const orc::OrcReader* reader = readers_[file_index_].get();
    if (stripe_index_ >= std::min(stripe_end_limit_, reader->num_stripes())) {
      if (count_skips_ && reader->num_stripes() > 0 && survivors_in_file_ == 0) {
        (spec_.meter != nullptr ? *spec_.meter : table::GlobalScanMeter()).AddSkippedFile();
      }
      ++file_index_;
      stripe_index_ = 0;
      survivors_in_file_ = 0;
      continue;
    }
    const orc::StripeInfo& info = reader->stripe(stripe_index_);
    bool bloom_pruned = false;
    if (!StripeMayMatch(info, spec_.bounds, &bloom_pruned)) {
      if (count_skips_) {
        (spec_.meter != nullptr ? *spec_.meter : table::GlobalScanMeter())
            .AddSkippedStripe(bloom_pruned);
      }
      ++stripe_index_;
      continue;
    }
    ++survivors_in_file_;
    auto read = reader->ReadStripeShared(stripe_index_, required_);
    if (!read.ok()) {
      status_ = read.status();
      return false;
    }
    ++stripe_index_;
    if ((*read)->num_rows == 0) continue;
    stripe_ = std::move(read).value();
    offset_in_stripe_ = 0;
    return true;
  }
  return false;
}

bool MasterScanBatchIterator::Next(table::RowBatch* batch) {
  if (!status_.ok()) return false;
  while (true) {
    if (stripe_ == nullptr || offset_in_stripe_ >= stripe_->num_rows) {
      if (!LoadNextStripe()) return false;
    }
    const size_t count =
        std::min(batch_rows_, static_cast<size_t>(stripe_->num_rows) - offset_in_stripe_);
    stripe_->SliceInto(offset_in_stripe_, count, num_fields_, batch);
    batch->SetContiguousRecordIds(
        MakeRecordId(file_ids_[file_index_], stripe_->first_row + offset_in_stripe_));
    batch->SetAnchor(stripe_);
    (spec_.meter != nullptr ? *spec_.meter : table::GlobalScanMeter())
        .AddBatch(count, offset_in_stripe_ == 0 ? stripe_->encoded_bytes : 0);
    offset_in_stripe_ += count;
    if (apply_predicate_ && spec_.predicate) {
      batch->FilterSelected(spec_.predicate, &scratch_, spec_.meter);
      if (batch->empty()) continue;  // never emit an all-filtered batch
    }
    return true;
  }
}

// --- MasterTable -------------------------------------------------------------------

Result<std::unique_ptr<MasterTable>> MasterTable::Open(fs::SimFileSystem* fs,
                                                       MetadataTable* metadata,
                                                       const std::string& table_name,
                                                       Schema schema,
                                                       const std::string& warehouse_dir,
                                                       orc::WriterOptions writer_options,
                                                       orc::StripeCache* stripe_cache) {
  std::string dir = fs::JoinPath(warehouse_dir, table_name);
  DTL_RETURN_NOT_OK(fs->CreateDir(dir));
  auto master = std::unique_ptr<MasterTable>(new MasterTable(
      fs, metadata, table_name, std::move(schema), dir, writer_options));
  master->stripe_cache_ =
      stripe_cache != nullptr ? stripe_cache : orc::StripeCache::Default();
  master->cache_owner_ = orc::StripeCache::NewOwnerToken();

  // Staged-but-uncommitted leftovers (torn file writes, half-written
  // manifest updates) are garbage from a crash; discard them first.
  DTL_ASSIGN_OR_RETURN(auto names, fs->ListDir(dir));
  for (const std::string& name : names) {
    if (HasSuffix(name, ".tmp")) DTL_RETURN_NOT_OK(fs->Delete(fs::JoinPath(dir, name)));
  }

  const std::string manifest_path = ManifestPath(dir);
  std::vector<MasterFileInfo> files;
  uint64_t gen_number = 1;
  if (fs->Exists(manifest_path)) {
    // The manifest is the committed file set: open exactly what it lists and
    // garbage-collect any f_ file that was written but never committed
    // (e.g. a crash between staging an OVERWRITE generation and the
    // manifest rename, or a doomed file whose deferred GC never ran).
    DTL_ASSIGN_OR_RETURN(auto file, fs->NewRandomAccessFile(manifest_path));
    const uint64_t size = file->size();
    if (size < 4) return Status::Corruption("master manifest too small: " + manifest_path);
    std::string raw;
    DTL_RETURN_NOT_OK(file->ReadAt(0, size, &raw));
    const uint32_t crc = DecodeFixed32(raw.data() + raw.size() - 4);
    Slice payload(raw.data(), raw.size() - 4);
    if (Crc32(payload) != crc) {
      return Status::Corruption("master manifest checksum mismatch: " + manifest_path);
    }
    DTL_RETURN_NOT_OK(GetVarint64(&payload, &gen_number));
    uint64_t count = 0;
    DTL_RETURN_NOT_OK(GetVarint64(&payload, &count));
    std::set<uint64_t> listed;
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t file_id = 0;
      DTL_RETURN_NOT_OK(GetVarint64(&payload, &file_id));
      listed.insert(file_id);
    }
    for (uint64_t file_id : listed) {
      std::string path = MasterFilePath(dir, file_id);
      auto reader = orc::OrcReader::Open(fs, path);
      if (!reader.ok()) {
        if (reader.status().IsNotFound()) {
          return Status::Corruption("manifest lists missing master file: " + path);
        }
        return reader.status();
      }
      MasterFileInfo info;
      info.file_id = (*reader)->file_id();
      info.path = path;
      info.num_rows = (*reader)->num_rows();
      DTL_ASSIGN_OR_RETURN(info.bytes, fs->FileSize(path));
      files.push_back(std::move(info));
    }
    for (const std::string& name : names) {
      if (name.rfind("f_", 0) != 0 || !HasSuffix(name, ".orc")) continue;
      std::string path = fs::JoinPath(dir, name);
      bool is_listed = false;
      for (const auto& f : files) is_listed |= (f.path == path);
      if (!is_listed) DTL_RETURN_NOT_OK(fs->Delete(path));
    }
  } else {
    // Legacy directory (pre-manifest): index every ORC file present, then
    // commit that set so subsequent opens take the manifest path.
    for (const std::string& name : names) {
      if (name.rfind("f_", 0) != 0 || !HasSuffix(name, ".orc")) continue;
      std::string path = fs::JoinPath(dir, name);
      DTL_ASSIGN_OR_RETURN(auto reader, orc::OrcReader::Open(fs, path));
      MasterFileInfo info;
      info.file_id = reader->file_id();
      info.path = path;
      info.num_rows = reader->num_rows();
      DTL_ASSIGN_OR_RETURN(info.bytes, fs->FileSize(path));
      files.push_back(std::move(info));
    }
  }
  std::sort(files.begin(), files.end(),
            [](const MasterFileInfo& a, const MasterFileInfo& b) {
              return a.file_id < b.file_id;
            });
  // Recovery stamps every file with the recovered generation number; cache
  // keys stay sound because this MasterTable holds a fresh owner token.
  for (MasterFileInfo& f : files) f.born_generation = gen_number;
  auto gen = std::shared_ptr<MasterGeneration>(new MasterGeneration());
  gen->fs_ = fs;
  gen->number_ = gen_number;
  gen->stripe_cache_ = master->stripe_cache_;
  gen->cache_owner_ = master->cache_owner_;
  gen->files_ = std::move(files);
  gen->live_counter_ = master->live_generations_;
  gen->live_counter_->fetch_add(1, std::memory_order_relaxed);
  master->current_ = std::move(gen);
  if (!fs->Exists(manifest_path)) {
    DTL_RETURN_NOT_OK(master->WriteManifest(*master->current_));
  }
  return master;
}

Status MasterTable::WriteManifest(const MasterGeneration& gen) {
  const std::string manifest_path = ManifestPath(dir_);
  if (unsafe_commit_for_tests_) {
    Status st = fs_->Delete(manifest_path);
    if (!st.ok() && !st.IsNotFound()) return st;
    return Status::OK();
  }
  std::string payload;
  PutVarint64(&payload, gen.number_);
  PutVarint64(&payload, gen.files_.size());
  for (const auto& f : gen.files_) PutVarint64(&payload, f.file_id);
  std::string bytes = payload;
  PutFixed32(&bytes, Crc32(payload.data(), payload.size()));
  // tmp + rename: the manifest swap is atomic, so a reader never sees a
  // half-written file set.
  const std::string tmp = manifest_path + ".tmp";
  DTL_ASSIGN_OR_RETURN(auto file, fs_->NewWritableFile(tmp));
  DTL_RETURN_NOT_OK(file->Append(bytes));
  DTL_RETURN_NOT_OK(file->Close());
  return fs_->Rename(tmp, manifest_path);
}

MasterGenerationPtr MasterTable::CurrentGeneration() const {
  std::lock_guard<std::mutex> lock(gen_mu_);
  return current_;
}

std::shared_ptr<MasterGeneration> MasterTable::NewGenerationLocked() const {
  auto next = std::shared_ptr<MasterGeneration>(new MasterGeneration());
  next->fs_ = fs_;
  next->number_ = current_->number_ + 1;
  next->stripe_cache_ = stripe_cache_;
  next->cache_owner_ = cache_owner_;
  next->live_counter_ = live_generations_;
  next->live_counter_->fetch_add(1, std::memory_order_relaxed);
  return next;
}

Result<std::unique_ptr<MasterFileWriter>> MasterTable::NewFileWriter() {
  DTL_ASSIGN_OR_RETURN(uint64_t file_id, metadata_->NextFileId(table_name_));
  if (file_id > kMaxFileId) return Status::OutOfRange("master file ID space exhausted");
  MasterFileInfo info;
  info.file_id = file_id;
  info.path = MasterFilePath(dir_, file_id);
  // Stage at <path>.tmp; MasterFileWriter::Close renames into place.
  DTL_ASSIGN_OR_RETURN(auto writer, orc::OrcWriter::Create(fs_, info.path + ".tmp",
                                                           schema_, file_id,
                                                           writer_options_));
  return std::unique_ptr<MasterFileWriter>(
      new MasterFileWriter(std::move(writer), std::move(info), fs_));
}

Status MasterTable::RegisterFile(MasterFileInfo info) {
  std::lock_guard<std::mutex> lock(gen_mu_);
  auto next = NewGenerationLocked();
  info.born_generation = next->number_;
  next->files_ = current_->files_;
  next->files_.push_back(std::move(info));
  std::sort(next->files_.begin(), next->files_.end(),
            [](const MasterFileInfo& a, const MasterFileInfo& b) {
              return a.file_id < b.file_id;
            });
  {
    // Every old file survives into the new generation; carry its warmed
    // readers forward so appends don't cold-start the stripe caches.
    std::lock_guard<std::mutex> cache_lock(current_->reader_cache_mu_);
    next->reader_cache_ = current_->reader_cache_;
  }
  // Manifest rename is the commit point: a failure here leaves the old
  // generation current and the new file an orphan for the next Open().
  DTL_RETURN_NOT_OK(WriteManifest(*next));
  current_ = std::move(next);
  return Status::OK();
}

Status MasterTable::ReplaceAllFiles(std::vector<MasterFileInfo> new_files) {
  std::lock_guard<std::mutex> lock(gen_mu_);
  auto next = NewGenerationLocked();
  next->files_ = std::move(new_files);
  // Newly written files (born_generation still the 0 sentinel — real
  // generation numbers start at 1) are born here; files carried over from
  // the pinned generation keep their birth so their cached stripes stay
  // valid across the swap.
  for (MasterFileInfo& f : next->files_) {
    if (f.born_generation == 0) f.born_generation = next->number_;
  }
  std::sort(next->files_.begin(), next->files_.end(),
            [](const MasterFileInfo& a, const MasterFileInfo& b) {
              return a.file_id < b.file_id;
            });
  {
    // Files surviving into the new generation (incremental COMPACT keeps the
    // ones it did not rewrite) carry their warmed readers forward so the swap
    // does not cold-start their stripe caches.
    std::lock_guard<std::mutex> cache_lock(current_->reader_cache_mu_);
    for (const auto& f : next->files_) {
      auto it = current_->reader_cache_.find(f.file_id);
      if (it != current_->reader_cache_.end()) next->reader_cache_[f.file_id] = it->second;
    }
  }
  // Commit the new generation before dooming the old one: after a crash,
  // Open() serves whichever generation the manifest names and
  // garbage-collects the other.
  DTL_RETURN_NOT_OK(WriteManifest(*next));
  // Replaced files stay on disk until the outgoing generation's last
  // snapshot pin drops (its destructor deletes them). Scans pinned to it
  // keep reading byte-identical data; nothing tears. Files carried into the
  // new generation untouched (incremental COMPACT) must NOT be doomed: the
  // new generation still reads them.
  std::vector<std::string> doomed;
  doomed.reserve(current_->files_.size());
  for (const auto& f : current_->files_) {
    bool kept = false;
    for (const auto& nf : next->files_) kept |= (nf.path == f.path);
    if (!kept) doomed.push_back(f.path);
  }
  current_->doomed_paths_ = std::move(doomed);
  current_ = std::move(next);
  return Status::OK();
}

Result<std::shared_ptr<orc::OrcReader>> MasterTable::OpenReader(
    const MasterGenerationPtr& gen, uint64_t file_id) const {
  for (const MasterFileInfo& info : gen->files()) {
    if (info.file_id == file_id) return gen->OpenReader(info);
  }
  return Status::NotFound("no master file with ID " + std::to_string(file_id));
}

Result<std::unique_ptr<MasterScanIterator>> MasterTable::NewScanIterator(
    const MasterGenerationPtr& gen, const table::ScanSpec& spec,
    bool apply_predicate) const {
  std::vector<std::shared_ptr<orc::OrcReader>> readers;
  std::vector<uint64_t> file_ids;
  readers.reserve(gen->files().size());
  for (const MasterFileInfo& info : gen->files()) {
    DTL_ASSIGN_OR_RETURN(auto reader, gen->OpenReader(info));
    readers.push_back(std::move(reader));
    file_ids.push_back(info.file_id);
  }
  return std::unique_ptr<MasterScanIterator>(
      new MasterScanIterator(std::move(readers), std::move(file_ids), spec,
                             schema_.num_fields(), apply_predicate));
}

Result<std::unique_ptr<MasterScanIterator>> MasterTable::NewFileScanIterator(
    const MasterGenerationPtr& gen, uint64_t file_id, const table::ScanSpec& spec,
    bool apply_predicate) const {
  for (const MasterFileInfo& info : gen->files()) {
    if (info.file_id != file_id) continue;
    DTL_ASSIGN_OR_RETURN(auto reader, gen->OpenReader(info));
    return std::unique_ptr<MasterScanIterator>(new MasterScanIterator(
        {std::move(reader)}, {file_id}, spec, schema_.num_fields(), apply_predicate));
  }
  return Status::NotFound("no master file with ID " + std::to_string(file_id));
}

Result<std::unique_ptr<MasterScanBatchIterator>> MasterTable::NewBatchScanIterator(
    const MasterGenerationPtr& gen, const table::ScanSpec& spec, bool apply_predicate,
    size_t batch_rows) const {
  std::vector<std::shared_ptr<orc::OrcReader>> readers;
  std::vector<uint64_t> file_ids;
  readers.reserve(gen->files().size());
  for (const MasterFileInfo& info : gen->files()) {
    DTL_ASSIGN_OR_RETURN(auto reader, gen->OpenReader(info));
    readers.push_back(std::move(reader));
    file_ids.push_back(info.file_id);
  }
  return std::unique_ptr<MasterScanBatchIterator>(
      new MasterScanBatchIterator(std::move(readers), std::move(file_ids), spec,
                                  schema_.num_fields(), apply_predicate, batch_rows));
}

Result<std::unique_ptr<MasterScanBatchIterator>> MasterTable::NewFileBatchScanIterator(
    const MasterGenerationPtr& gen, uint64_t file_id, const table::ScanSpec& spec,
    bool apply_predicate, size_t batch_rows) const {
  for (const MasterFileInfo& info : gen->files()) {
    if (info.file_id != file_id) continue;
    DTL_ASSIGN_OR_RETURN(auto reader, gen->OpenReader(info));
    return std::unique_ptr<MasterScanBatchIterator>(new MasterScanBatchIterator(
        {std::move(reader)}, {file_id}, spec, schema_.num_fields(), apply_predicate,
        batch_rows));
  }
  return Status::NotFound("no master file with ID " + std::to_string(file_id));
}

Result<std::unique_ptr<MasterScanIterator>> MasterTable::NewScanIterator(
    const table::ScanSpec& spec, bool apply_predicate) const {
  return NewScanIterator(CurrentGeneration(), spec, apply_predicate);
}

Result<std::unique_ptr<MasterScanIterator>> MasterTable::NewFileScanIterator(
    uint64_t file_id, const table::ScanSpec& spec, bool apply_predicate) const {
  return NewFileScanIterator(CurrentGeneration(), file_id, spec, apply_predicate);
}

Result<std::unique_ptr<MasterScanBatchIterator>> MasterTable::NewBatchScanIterator(
    const table::ScanSpec& spec, bool apply_predicate, size_t batch_rows) const {
  return NewBatchScanIterator(CurrentGeneration(), spec, apply_predicate, batch_rows);
}

Result<std::unique_ptr<MasterScanBatchIterator>> MasterTable::NewFileBatchScanIterator(
    uint64_t file_id, const table::ScanSpec& spec, bool apply_predicate,
    size_t batch_rows) const {
  return NewFileBatchScanIterator(CurrentGeneration(), file_id, spec, apply_predicate,
                                  batch_rows);
}

Result<std::vector<ScanMorsel>> MasterTable::PlanMorsels(
    const MasterGenerationPtr& gen, const table::ScanSpec& spec,
    size_t stripes_per_morsel) const {
  stripes_per_morsel = std::max<size_t>(1, stripes_per_morsel);
  std::vector<ScanMorsel> morsels;
  // Pruning is metered HERE, once per plan, and the morsel iterators are
  // built with count_skips=false: the merged worker meters must equal a
  // serial scan's no matter how stripes land in morsel windows.
  table::ScanMeter& meter = spec.meter != nullptr ? *spec.meter : table::GlobalScanMeter();
  for (const MasterFileInfo& info : gen->files()) {
    DTL_ASSIGN_OR_RETURN(auto reader, gen->OpenReader(info));
    ScanMorsel cur;
    size_t surviving = 0;
    size_t bounds_survivors = 0;
    for (size_t s = 0; s < reader->num_stripes(); ++s) {
      const orc::StripeInfo& stripe = reader->stripe(s);
      bool bloom_pruned = false;
      if (!StripeMayMatch(stripe, spec.bounds, &bloom_pruned)) {
        meter.AddSkippedStripe(bloom_pruned);
        continue;
      }
      ++bounds_survivors;
      if (stripe.num_rows == 0) continue;
      if (surviving == 0) {
        cur = ScanMorsel();
        cur.file_id = info.file_id;
        cur.stripe_begin = s;
        cur.first_record_id = MakeRecordId(info.file_id, stripe.first_row);
      }
      cur.stripe_end = s + 1;
      cur.end_record_id = MakeRecordId(info.file_id, stripe.first_row + stripe.num_rows);
      cur.num_rows += stripe.num_rows;
      if (++surviving == stripes_per_morsel) {
        morsels.push_back(cur);
        surviving = 0;
      }
    }
    if (surviving > 0) morsels.push_back(cur);
    if (reader->num_stripes() > 0 && bounds_survivors == 0) meter.AddSkippedFile();
  }
  return morsels;
}

Result<std::unique_ptr<MasterScanBatchIterator>> MasterTable::NewMorselBatchScanIterator(
    const MasterGenerationPtr& gen, const ScanMorsel& morsel, const table::ScanSpec& spec,
    bool apply_predicate, size_t batch_rows) const {
  for (const MasterFileInfo& info : gen->files()) {
    if (info.file_id != morsel.file_id) continue;
    DTL_ASSIGN_OR_RETURN(auto reader, gen->OpenReader(info));
    return std::unique_ptr<MasterScanBatchIterator>(new MasterScanBatchIterator(
        {std::move(reader)}, {morsel.file_id}, spec, schema_.num_fields(),
        apply_predicate, batch_rows, morsel.stripe_begin, morsel.stripe_end,
        /*count_skips=*/false));
  }
  return Status::NotFound("no master file with ID " + std::to_string(morsel.file_id));
}

MasterTable::~MasterTable() {
  if (stripe_cache_ != nullptr) stripe_cache_->EraseOwner(cache_owner_);
}

Status MasterTable::Drop() {
  {
    // Publish an empty generation; the directory (old files included) goes
    // away wholesale below, so the outgoing generation dooms nothing.
    std::lock_guard<std::mutex> lock(gen_mu_);
    current_ = NewGenerationLocked();
  }
  if (stripe_cache_ != nullptr) stripe_cache_->EraseOwner(cache_owner_);
  return fs_->DeleteRecursively(dir_);
}

}  // namespace dtl::dual
