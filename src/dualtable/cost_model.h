// The DualTable cost model (paper §IV). For an UPDATE with ratio α over a
// table of D bytes followed by k full reads:
//
//   Cost_OVERWRITE = C^M_Write(D) + k·C^M_Read(D)
//   Cost_EDIT      = C^A_Write(αD) + k·(C^A_Read(αD) + C^M_Read(D))
//   CostU = Cost_OVERWRITE − Cost_EDIT
//         = C^M_Write(D) − α·(C^A_Write(D) + k·C^A_Read(D))          (Eq. 1)
//
// For a DELETE with ratio β, average row size d, and marker size m:
//
//   CostD = C^M_Write(D) − β·(C^M_Write(D) + k·C^M_Read(D)
//           + (m/d)·C^A_Write(D) + k·(m/d)·C^A_Read(D))              (Eq. 2)
//
// Positive cost difference ⇒ the EDIT plan is cheaper.
#pragma once

#include <cstdint>
#include <string>

#include "fs/cluster_model.h"
#include "table/spec.h"

namespace dtl::dual {

struct CostModelParams {
  /// Number of full-table reads expected after the modification ("set by the
  /// designer, or inferred from the HiveQL code").
  double k = 1.0;
  /// Size m of one delete marker in the attached table, bytes. Determined
  /// "via data sampling": 8-byte record-ID key + qualifier + framing.
  double delete_marker_bytes = 20.0;
  /// Closed-loop calibration coefficients (DESIGN.md §12): each plan's
  /// predicted seconds are multiplied by its scale before the EDIT-vs-
  /// OVERWRITE comparison. 1.0 = the open-loop paper model; CostAudit
  /// feedback (DualTable cost_calibration_gain) nudges the executed plan's
  /// scale toward measured/predicted so the planner converges on observed
  /// hardware.
  double edit_cost_scale = 1.0;
  double overwrite_cost_scale = 1.0;
};

/// Outcome of a plan decision, with both plan costs for logging/ablation.
struct PlanDecision {
  table::DmlPlan plan = table::DmlPlan::kEdit;
  double cost_overwrite_seconds = 0.0;
  double cost_edit_seconds = 0.0;
  /// Cost_OVERWRITE − Cost_EDIT (Eq. 1 / Eq. 2); positive ⇒ EDIT chosen.
  double cost_difference_seconds = 0.0;

  std::string ToString() const;
};

class CostModel {
 public:
  CostModel(const fs::ClusterModel* cluster, CostModelParams params)
      : cluster_(cluster), params_(params) {}

  const CostModelParams& params() const { return params_; }
  CostModelParams* mutable_params() { return &params_; }

  /// Eq. 1. `alpha` is the update ratio in (0, 1).
  PlanDecision DecideUpdate(uint64_t table_bytes, double alpha) const;

  /// Eq. 2. `beta` is the delete ratio; `avg_row_bytes` is d.
  PlanDecision DecideDelete(uint64_t table_bytes, double beta,
                            double avg_row_bytes) const;

  /// Update ratio at which Eq. 1 changes sign (analytic crossover), used by
  /// the cost-model ablation bench.
  double UpdateCrossoverRatio(uint64_t table_bytes) const;

  /// Delete ratio at which Eq. 2 changes sign.
  double DeleteCrossoverRatio(uint64_t table_bytes, double avg_row_bytes) const;

  /// One calibration step: multiplies the executed plan's scale by
  /// (measured/predicted)^gain (a multiplicative EWMA in log space).
  /// `predicted`/`measured` are the already-scaled prediction and the
  /// modelled actuals of the SAME statement; `edit_plan` names which scale to
  /// nudge. No-op when gain <= 0 or either input is non-positive.
  void Calibrate(bool edit_plan, double predicted, double measured, double gain);

 private:
  double MasterRead(double bytes) const {
    return cluster_->ReadSeconds(fs::Channel::kHdfs, static_cast<uint64_t>(bytes));
  }
  double MasterWrite(double bytes) const {
    return cluster_->WriteSeconds(fs::Channel::kHdfs, static_cast<uint64_t>(bytes));
  }
  double AttachedRead(double bytes) const {
    return cluster_->ReadSeconds(fs::Channel::kHBase, static_cast<uint64_t>(bytes));
  }
  double AttachedWrite(double bytes) const {
    return cluster_->WriteSeconds(fs::Channel::kHBase, static_cast<uint64_t>(bytes));
  }

  const fs::ClusterModel* cluster_;
  CostModelParams params_;
};

}  // namespace dtl::dual
