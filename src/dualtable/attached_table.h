// The Attached Table (paper §III-B, §V-B): an HBase-backed store of record
// modifications, keyed by record ID. UPDATE information is stored as
// (record-ID row, updated column's ordinal as qualifier, encoded new value);
// DELETE information is a special marker cell in the deleted record's row.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "fs/filesystem.h"
#include "kv/store.h"

namespace dtl::dual {

/// Qualifier of the paper's "special HBase cell" delete marker; sorts after
/// every real column ordinal but before the KV-level row tombstone.
inline constexpr uint32_t kDeleteMarkerQualifier = 0xFFFFFFFEu;

/// Visible modification state of one record.
struct RecordModification {
  uint64_t record_id = 0;
  bool deleted = false;
  /// Latest new value per updated column ordinal.
  std::map<uint32_t, Value> updates;
};

/// Sorted stream of record modifications (ascending record ID), optionally
/// bounded to [start_id, end_id).
class ModificationScanner {
 public:
  bool Next();
  const RecordModification& modification() const { return mod_; }
  const Status& status() const { return status_; }

 private:
  friend class AttachedTable;
  ModificationScanner(std::unique_ptr<kv::RowScanner> rows, uint64_t end_id)
      : rows_(std::move(rows)), end_id_(end_id) {}

  std::unique_ptr<kv::RowScanner> rows_;
  uint64_t end_id_;
  RecordModification mod_;
  Status status_;
};

/// One DualTable's attached store.
class AttachedTable {
 public:
  static Result<std::unique_ptr<AttachedTable>> Open(fs::SimFileSystem* fs,
                                                     const std::string& table_name,
                                                     kv::KvStoreOptions base_options = {});

  /// EDIT-plan UPDATE: stores the new value of `column` for the record.
  Status PutUpdate(uint64_t record_id, uint32_t column, const Value& value);

  /// EDIT-plan DELETE: stores the delete marker for the record.
  Status PutDeleteMarker(uint64_t record_id);

  /// Random read of one record's visible modification state; nullopt when
  /// the record has no attached data. This is the random-read capability the
  /// paper credits for making UNION READ efficient.
  Result<std::optional<RecordModification>> GetModification(uint64_t record_id);

  /// Snapshot-pinned random read: like GetModification but sees exactly the
  /// pinned KV state. Index point lookups patch candidate rows through this,
  /// so the patched values match what a UNION READ scan under the same
  /// snapshot would produce.
  Result<std::optional<RecordModification>> GetModificationAt(
      const kv::KvSnapshot& snapshot, uint64_t record_id) const;

  /// Sorted scan over [start_id, end_id). Defaults cover everything.
  /// `as_of` limits visibility to modifications written at or before that
  /// store timestamp (time travel over the HBase versions; history written
  /// before the last Clear()/Compact() is not reconstructible).
  std::unique_ptr<ModificationScanner> NewScanner(uint64_t start_id = 0,
                                                  uint64_t end_id = UINT64_MAX,
                                                  uint64_t as_of = UINT64_MAX);

  /// Snapshot-pinned scan over [start_id, end_id): reads exactly the pinned
  /// KV state, with visibility clamped to min(as_of, snapshot.read_ts).
  /// Concurrent EDITs, flushes, compactions, and Clear()s are invisible.
  std::unique_ptr<ModificationScanner> NewScannerAt(const kv::KvSnapshot& snapshot,
                                                    uint64_t start_id = 0,
                                                    uint64_t end_id = UINT64_MAX,
                                                    uint64_t as_of = UINT64_MAX) const;

  /// Store timestamp of the most recent modification; pass to ScanAsOf for a
  /// snapshot "now".
  uint64_t LastTimestamp() const { return store_->LastTimestamp(); }

  /// Change history of one cell via HBase multi-versioning (paper §V-C):
  /// (timestamp, value) pairs, newest first.
  Status GetUpdateHistory(uint64_t record_id, uint32_t column, int max_versions,
                          std::vector<std::pair<uint64_t, Value>>* out);

  /// Number of modification cells currently stored.
  uint64_t ApproximateCellCount() const { return store_->ApproximateCellCount(); }
  uint64_t ApproximateBytes() const { return store_->ApproximateBytes(); }
  bool Empty() const { return store_->ApproximateCellCount() == 0; }

  /// Forces the backing WAL to durable storage. DualTable calls this before
  /// acknowledging an EDIT-plan statement so acknowledged modifications
  /// survive a crash.
  Status Sync() { return store_->SyncWal(); }

  /// Drops all modifications (after COMPACT or an OVERWRITE plan).
  Status Clear() { return store_->Clear(); }

  /// Removes backing storage entirely.
  Status Drop();

  kv::KvStore* store() { return store_.get(); }

 private:
  AttachedTable(fs::SimFileSystem* fs, std::string dir,
                std::unique_ptr<kv::KvStore> store)
      : fs_(fs), dir_(std::move(dir)), store_(std::move(store)) {}

  fs::SimFileSystem* fs_;
  std::string dir_;
  std::unique_ptr<kv::KvStore> store_;
};

}  // namespace dtl::dual
