#include "dualtable/dual_table.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "dualtable/record_id.h"
#include "obs/cost_audit.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace dtl::dual {

Result<std::shared_ptr<DualTable>> DualTable::Open(fs::SimFileSystem* fs,
                                                   MetadataTable* metadata,
                                                   const fs::ClusterModel* cluster,
                                                   const std::string& name, Schema schema,
                                                   DualTableOptions options) {
  auto dual = std::shared_ptr<DualTable>(
      new DualTable(fs, metadata, name, schema, std::move(options), cluster));
  DTL_ASSIGN_OR_RETURN(dual->master_,
                       MasterTable::Open(fs, metadata, name, std::move(schema),
                                         dual->options_.warehouse_dir,
                                         dual->options_.writer_options));
  DTL_ASSIGN_OR_RETURN(dual->attached_,
                       AttachedTable::Open(fs, name, dual->options_.attached_options));
  if (dual->options_.metrics != nullptr) {
    obs::MetricsRegistry* metrics = dual->options_.metrics;
    dual->edit_hist_ = metrics->histogram(obs::names::kDualEditSeconds, name);
    dual->overwrite_hist_ = metrics->histogram(obs::names::kDualOverwriteSeconds, name);
    dual->compact_hist_ = metrics->histogram(obs::names::kDualCompactSeconds, name);
    dual->union_read_rows_hist_ =
        metrics->histogram(obs::names::kDualUnionReadRows, name);
  }
  if (dual->options_.scheduler != nullptr && dual->options_.background_compaction) {
    // NeedsCompaction() used to surface only through scans, so compaction
    // debt accumulated unobserved on write-only workloads; the scheduler
    // polls it instead. The raw pointer is safe: ~DualTable unregisters
    // (blocking out an in-flight poll) before members die.
    DualTable* raw = dual.get();
    dual->scheduler_job_ = dual->options_.scheduler->Register(
        "compact:" + name, [raw] {
          if (!raw->NeedsCompaction()) return;
          DTL_IGNORE_STATUS(raw->Compact(),
                            "background compaction failure is retried next round");
        });
  }
  return dual;
}

DualTable::~DualTable() {
  if (scheduler_job_ != 0) options_.scheduler->Unregister(scheduler_job_);
}

table::ScanSpec DualTable::MasterSpecFor(const table::ScanSpec& spec) const {
  table::ScanSpec master_spec = spec;
  // Attached updates can move cell values across stripe-stat boundaries, so
  // stats pruning is only sound against an empty attached table.
  if (!attached_->Empty()) master_spec.bounds.clear();
  return master_spec;
}

Result<std::unique_ptr<UnionReadIterator>> DualTable::NewUnionRead(
    const table::ScanSpec& spec) {
  DTL_ASSIGN_OR_RETURN(auto master_it, master_->NewScanIterator(MasterSpecFor(spec),
                                                                /*apply_predicate=*/false));
  auto attached_it = attached_->NewScanner();
  return std::make_unique<UnionReadIterator>(std::move(master_it), std::move(attached_it),
                                             spec.predicate, schema_.num_fields());
}

Result<std::unique_ptr<UnionReadIterator>> DualTable::NewUnionReadForFile(
    uint64_t file_id, const table::ScanSpec& spec) {
  DTL_ASSIGN_OR_RETURN(auto master_it,
                       master_->NewFileScanIterator(file_id, MasterSpecFor(spec),
                                                    /*apply_predicate=*/false));
  auto attached_it =
      attached_->NewScanner(MakeRecordId(file_id, 0), MakeRecordId(file_id + 1, 0));
  return std::make_unique<UnionReadIterator>(std::move(master_it), std::move(attached_it),
                                             spec.predicate, schema_.num_fields());
}

Result<std::unique_ptr<UnionReadBatchIterator>> DualTable::NewUnionReadBatch(
    const table::ScanSpec& spec, uint64_t as_of) {
  DTL_ASSIGN_OR_RETURN(auto master_it,
                       master_->NewBatchScanIterator(MasterSpecFor(spec),
                                                     /*apply_predicate=*/false,
                                                     options_.scan_batch_rows));
  auto attached_it = attached_->NewScanner(0, UINT64_MAX, as_of);
  return std::make_unique<UnionReadBatchIterator>(std::move(master_it),
                                                  std::move(attached_it), spec.predicate,
                                                  schema_.num_fields(), spec.meter);
}

Result<std::unique_ptr<UnionReadBatchIterator>> DualTable::NewUnionReadBatchForFile(
    uint64_t file_id, const table::ScanSpec& spec) {
  DTL_ASSIGN_OR_RETURN(auto master_it,
                       master_->NewFileBatchScanIterator(file_id, MasterSpecFor(spec),
                                                         /*apply_predicate=*/false,
                                                         options_.scan_batch_rows));
  auto attached_it =
      attached_->NewScanner(MakeRecordId(file_id, 0), MakeRecordId(file_id + 1, 0));
  return std::make_unique<UnionReadBatchIterator>(std::move(master_it),
                                                  std::move(attached_it), spec.predicate,
                                                  schema_.num_fields(), spec.meter);
}

Result<std::vector<ScanMorsel>> DualTable::PlanScanMorsels(const table::ScanSpec& spec,
                                                           size_t stripes_per_morsel) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return master_->PlanMorsels(MasterSpecFor(spec), stripes_per_morsel);
}

Result<std::unique_ptr<UnionReadBatchIterator>> DualTable::NewUnionReadBatchForMorsel(
    const ScanMorsel& morsel, const table::ScanSpec& spec, table::ScanMeter* meter) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  table::ScanSpec master_spec = MasterSpecFor(spec);
  master_spec.meter = meter;
  DTL_ASSIGN_OR_RETURN(auto master_it,
                       master_->NewMorselBatchScanIterator(morsel, master_spec,
                                                           /*apply_predicate=*/false,
                                                           options_.scan_batch_rows));
  auto attached_it = attached_->NewScanner(morsel.first_record_id, morsel.end_record_id);
  return std::make_unique<UnionReadBatchIterator>(std::move(master_it),
                                                  std::move(attached_it), spec.predicate,
                                                  schema_.num_fields(), meter);
}

namespace {

// Counts the rows a UNION READ scan emits and reports the total into the
// per-table histogram when the scan ends (destruction = end of scan, whether
// drained or abandoned).
class RowsObservingBatchIterator : public table::BatchIterator {
 public:
  RowsObservingBatchIterator(std::unique_ptr<table::BatchIterator> inner,
                             obs::Histogram* hist)
      : inner_(std::move(inner)), hist_(hist) {}
  ~RowsObservingBatchIterator() override { hist_->Observe(rows_); }

  bool Next(table::RowBatch* batch) override {
    if (!inner_->Next(batch)) return false;
    rows_ += batch->size();
    return true;
  }
  const Status& status() const override { return inner_->status(); }

 private:
  std::unique_ptr<table::BatchIterator> inner_;
  obs::Histogram* hist_;
  uint64_t rows_ = 0;
};

}  // namespace

std::unique_ptr<table::BatchIterator> DualTable::ObserveUnionReadRows(
    std::unique_ptr<table::BatchIterator> it) {
  if (union_read_rows_hist_ == nullptr) return it;
  return std::make_unique<RowsObservingBatchIterator>(std::move(it),
                                                      union_read_rows_hist_);
}

Result<std::unique_ptr<table::RowIterator>> DualTable::Scan(const table::ScanSpec& spec) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (options_.enable_batch_scan) {
    DTL_ASSIGN_OR_RETURN(auto it, NewUnionReadBatch(spec));
    return std::unique_ptr<table::RowIterator>(std::make_unique<table::BatchToRowAdapter>(
        ObserveUnionReadRows(std::move(it)), spec.meter));
  }
  DTL_ASSIGN_OR_RETURN(auto it, NewUnionRead(spec));
  return std::unique_ptr<table::RowIterator>(std::move(it));
}

Result<std::unique_ptr<table::BatchIterator>> DualTable::ScanBatches(
    const table::ScanSpec& spec) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!options_.enable_batch_scan) return StorageTable::ScanBatches(spec);
  DTL_ASSIGN_OR_RETURN(auto it, NewUnionReadBatch(spec));
  return ObserveUnionReadRows(std::move(it));
}

Result<std::unique_ptr<table::RowIterator>> DualTable::ScanLegacyRows(
    const table::ScanSpec& spec) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  DTL_ASSIGN_OR_RETURN(auto it, NewUnionRead(spec));
  return std::unique_ptr<table::RowIterator>(std::move(it));
}

Result<std::unique_ptr<table::RowIterator>> DualTable::ScanAsOf(
    const table::ScanSpec& spec, uint64_t as_of) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (options_.enable_batch_scan) {
    DTL_ASSIGN_OR_RETURN(auto it, NewUnionReadBatch(spec, as_of));
    return std::unique_ptr<table::RowIterator>(
        std::make_unique<table::BatchToRowAdapter>(std::move(it), spec.meter));
  }
  DTL_ASSIGN_OR_RETURN(auto master_it,
                       master_->NewScanIterator(MasterSpecFor(spec),
                                                /*apply_predicate=*/false));
  auto attached_it = attached_->NewScanner(0, UINT64_MAX, as_of);
  return std::unique_ptr<table::RowIterator>(
      std::make_unique<UnionReadIterator>(std::move(master_it), std::move(attached_it),
                                          spec.predicate, schema_.num_fields()));
}

Result<std::vector<table::ScanSplit>> DualTable::CreateSplits(const table::ScanSpec& spec) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::vector<table::ScanSplit> splits;
  for (const MasterFileInfo& info : master_->files()) {
    const uint64_t file_id = info.file_id;
    DualTable* self = this;
    table::ScanSpec copy = spec;
    splits.push_back(table::ScanSplit{
        name_ + "/f_" + std::to_string(file_id),
        [self, file_id, copy]() -> Result<std::unique_ptr<table::RowIterator>> {
          if (self->options_.enable_batch_scan) {
            DTL_ASSIGN_OR_RETURN(auto it, self->NewUnionReadBatchForFile(file_id, copy));
            return std::unique_ptr<table::RowIterator>(
                std::make_unique<table::BatchToRowAdapter>(std::move(it), copy.meter));
          }
          DTL_ASSIGN_OR_RETURN(auto it, self->NewUnionReadForFile(file_id, copy));
          return std::unique_ptr<table::RowIterator>(std::move(it));
        }});
  }
  return splits;
}

Status DualTable::InsertRows(const std::vector<Row>& rows) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (rows.empty()) return Status::OK();
  DTL_ASSIGN_OR_RETURN(auto writer, master_->NewFileWriter());
  for (const Row& row : rows) DTL_RETURN_NOT_OK(writer->Append(row));
  DTL_ASSIGN_OR_RETURN(auto info, writer->Close());
  return master_->RegisterFile(std::move(info));
}

Status DualTable::OverwriteRows(const std::vector<Row>& rows) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::vector<MasterFileInfo> new_files;
  if (!rows.empty()) {
    std::unique_ptr<MasterFileWriter> writer;
    for (const Row& row : rows) {
      if (writer == nullptr) {
        DTL_ASSIGN_OR_RETURN(writer, master_->NewFileWriter());
      }
      DTL_RETURN_NOT_OK(writer->Append(row));
      if (writer->rows_written() >= options_.rewrite_file_rows) {
        DTL_ASSIGN_OR_RETURN(auto info, writer->Close());
        new_files.push_back(std::move(info));
        writer.reset();
      }
    }
    if (writer != nullptr) {
      DTL_ASSIGN_OR_RETURN(auto info, writer->Close());
      new_files.push_back(std::move(info));
    }
  }
  DTL_RETURN_NOT_OK(master_->ReplaceAllFiles(std::move(new_files)));
  return attached_->Clear();
}

table::ScanSpec DualTable::DmlScanSpec(
    const table::ScanSpec& filter, const std::vector<table::Assignment>& assignments) const {
  table::ScanSpec spec = filter;
  // The DML scan must materialize the predicate columns plus everything the
  // SET expressions read. Fold those into the projection.
  std::vector<size_t> needed = filter.predicate_columns;
  for (const auto& a : assignments) {
    needed.insert(needed.end(), a.input_columns.begin(), a.input_columns.end());
  }
  if (needed.empty()) needed.push_back(0);
  std::sort(needed.begin(), needed.end());
  needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
  spec.projection = needed;
  return spec;
}

double DualTable::ResolveRatio(std::optional<double> hint) const {
  if (hint.has_value()) return std::clamp(*hint, 0.0, 1.0);
  auto hist = metadata_->HistoricalModificationRatio(name_,
                                                     options_.default_modification_ratio);
  return hist.ok() ? std::clamp(*hist, 0.0, 1.0) : options_.default_modification_ratio;
}

double DualTable::AvgRowBytes() const {
  const uint64_t rows = master_->TotalRows();
  if (rows == 0) return 1.0;
  return static_cast<double>(master_->TotalBytes()) / static_cast<double>(rows);
}

PlanDecision DualTable::PreviewUpdateDecision(double alpha) const {
  return cost_model_.DecideUpdate(master_->TotalBytes(), alpha);
}

PlanDecision DualTable::PreviewDeleteDecision(double beta) const {
  return cost_model_.DecideDelete(master_->TotalBytes(), beta, AvgRowBytes());
}

Result<table::DmlResult> DualTable::Update(
    const table::ScanSpec& filter, const std::vector<table::Assignment>& assignments) {
  return UpdateWithHint(filter, assignments, std::nullopt);
}

Result<table::DmlResult> DualTable::UpdateWithHint(
    const table::ScanSpec& filter, const std::vector<table::Assignment>& assignments,
    std::optional<double> ratio_hint) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (assignments.empty()) return Status::InvalidArgument("UPDATE with no assignments");

  table::DmlPlan plan = table::DmlPlan::kEdit;
  PlanDecision decision;
  double ratio = 0;
  bool audited = false;
  switch (options_.plan_mode) {
    case DualTableOptions::PlanMode::kForceEdit:
      plan = table::DmlPlan::kEdit;
      break;
    case DualTableOptions::PlanMode::kForceOverwrite:
      plan = table::DmlPlan::kOverwrite;
      break;
    case DualTableOptions::PlanMode::kCostModel:
      ratio = ResolveRatio(ratio_hint);
      decision = cost_model_.DecideUpdate(master_->TotalBytes(), ratio);
      plan = decision.plan;
      audited = options_.cost_audit != nullptr;
      break;
  }
  last_plan_ = plan;

  const fs::IoSnapshot io_before = fs_->meter()->Snapshot();
  Stopwatch watch;
  Result<table::DmlResult> result = plan == table::DmlPlan::kEdit
                                        ? ExecuteEditUpdate(filter, assignments)
                                        : ExecuteOverwriteUpdate(filter, assignments);
  if (result.ok()) {
    RecordDmlObservation("UPDATE", plan, decision, ratio, ratio_hint.has_value(),
                         audited, *result, watch.ElapsedSeconds(), io_before);
  }
  if (result.ok() && result->rows_scanned > 0) {
    // Propagate metadata failures: a silently stale modification ratio would
    // skew every later cost-model plan choice (found by the nodiscard sweep).
    DTL_RETURN_NOT_OK(metadata_->RecordModificationRatio(
        name_, static_cast<double>(result->rows_matched) /
                   static_cast<double>(result->rows_scanned)));
  }
  if (result.ok() && options_.auto_compact && NeedsCompaction()) {
    DTL_RETURN_NOT_OK(Compact());
  }
  return result;
}

Result<table::DmlResult> DualTable::ExecuteEditUpdate(
    const table::ScanSpec& filter, const std::vector<table::Assignment>& assignments) {
  // The paper's UPDATE UDTF: scan the up-to-date view, and for every
  // matching record put the new field values into the attached table.
  table::ScanSpec spec = DmlScanSpec(filter, assignments);
  DTL_ASSIGN_OR_RETURN(auto it, NewUnionRead(spec));
  table::DmlResult result;
  result.plan = table::DmlPlan::kEdit;
  while (it->Next()) {
    ++result.rows_matched;  // predicate applied inside the union read
    for (const table::Assignment& a : assignments) {
      DTL_RETURN_NOT_OK(attached_->PutUpdate(it->record_id(),
                                             static_cast<uint32_t>(a.column),
                                             a.compute(it->row())));
    }
  }
  DTL_RETURN_NOT_OK(it->status());
  // The statement is acknowledged on return, so its attached-table cells
  // must be WAL-durable first: a crash after the ack must replay them.
  DTL_RETURN_NOT_OK(attached_->Sync());
  result.rows_scanned = master_->TotalRows();
  return result;
}

Result<uint64_t> DualTable::RewriteMaster(
    const std::function<bool(uint64_t record_id, Row* row)>& transform) {
  // Stream the merged view into a staged new master generation.
  table::ScanSpec all;  // every column, no predicate
  DTL_ASSIGN_OR_RETURN(auto it, NewUnionRead(all));

  std::vector<MasterFileInfo> new_files;
  std::unique_ptr<MasterFileWriter> writer;
  uint64_t rows_out = 0;
  Row row;
  while (it->Next()) {
    row = it->row();
    if (!transform(it->record_id(), &row)) continue;
    if (writer == nullptr) {
      DTL_ASSIGN_OR_RETURN(writer, master_->NewFileWriter());
    }
    DTL_RETURN_NOT_OK(writer->Append(row));
    ++rows_out;
    if (writer->rows_written() >= options_.rewrite_file_rows) {
      DTL_ASSIGN_OR_RETURN(auto info, writer->Close());
      new_files.push_back(std::move(info));
      writer.reset();
    }
  }
  DTL_RETURN_NOT_OK(it->status());
  if (writer != nullptr) {
    DTL_ASSIGN_OR_RETURN(auto info, writer->Close());
    new_files.push_back(std::move(info));
  }
  DTL_RETURN_NOT_OK(master_->ReplaceAllFiles(std::move(new_files)));
  DTL_RETURN_NOT_OK(attached_->Clear());
  return rows_out;
}

Result<table::DmlResult> DualTable::ExecuteOverwriteUpdate(
    const table::ScanSpec& filter, const std::vector<table::Assignment>& assignments) {
  // Hive's INSERT OVERWRITE path: rewrite every row, with matching rows
  // getting their SET columns replaced; ends with a fresh empty attached
  // table (paper §III-C).
  table::DmlResult result;
  result.plan = table::DmlPlan::kOverwrite;
  result.rows_scanned = master_->TotalRows();
  auto transform = [&](uint64_t, Row* row) {
    if (!filter.predicate || filter.predicate(*row)) {
      ++result.rows_matched;
      for (const table::Assignment& a : assignments) (*row)[a.column] = a.compute(*row);
    }
    return true;
  };
  DTL_ASSIGN_OR_RETURN(uint64_t rows, RewriteMaster(transform));
  (void)rows;
  return result;
}

Result<table::DmlResult> DualTable::Delete(const table::ScanSpec& filter) {
  return DeleteWithHint(filter, std::nullopt);
}

Result<table::DmlResult> DualTable::DeleteWithHint(const table::ScanSpec& filter,
                                                   std::optional<double> ratio_hint) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  table::DmlPlan plan = table::DmlPlan::kEdit;
  PlanDecision decision;
  double ratio = 0;
  bool audited = false;
  switch (options_.plan_mode) {
    case DualTableOptions::PlanMode::kForceEdit:
      plan = table::DmlPlan::kEdit;
      break;
    case DualTableOptions::PlanMode::kForceOverwrite:
      plan = table::DmlPlan::kOverwrite;
      break;
    case DualTableOptions::PlanMode::kCostModel:
      ratio = ResolveRatio(ratio_hint);
      decision = cost_model_.DecideDelete(master_->TotalBytes(), ratio, AvgRowBytes());
      plan = decision.plan;
      audited = options_.cost_audit != nullptr;
      break;
  }
  last_plan_ = plan;

  const fs::IoSnapshot io_before = fs_->meter()->Snapshot();
  Stopwatch watch;
  Result<table::DmlResult> result = plan == table::DmlPlan::kEdit
                                        ? ExecuteEditDelete(filter)
                                        : ExecuteOverwriteDelete(filter);
  if (result.ok()) {
    RecordDmlObservation("DELETE", plan, decision, ratio, ratio_hint.has_value(),
                         audited, *result, watch.ElapsedSeconds(), io_before);
  }
  if (result.ok() && result->rows_scanned > 0) {
    // Propagate metadata failures (see UpdateWithHint).
    DTL_RETURN_NOT_OK(metadata_->RecordModificationRatio(
        name_, static_cast<double>(result->rows_matched) /
                   static_cast<double>(result->rows_scanned)));
  }
  if (result.ok() && options_.auto_compact && NeedsCompaction()) {
    DTL_RETURN_NOT_OK(Compact());
  }
  return result;
}

Result<table::DmlResult> DualTable::ExecuteEditDelete(const table::ScanSpec& filter) {
  // The paper's DELETE UDTF: put a DELETE marker for each matching record.
  table::ScanSpec spec = DmlScanSpec(filter, {});
  DTL_ASSIGN_OR_RETURN(auto it, NewUnionRead(spec));
  table::DmlResult result;
  result.plan = table::DmlPlan::kEdit;
  while (it->Next()) {
    ++result.rows_matched;
    DTL_RETURN_NOT_OK(attached_->PutDeleteMarker(it->record_id()));
  }
  DTL_RETURN_NOT_OK(it->status());
  // Same durability contract as ExecuteEditUpdate: sync before the ack.
  DTL_RETURN_NOT_OK(attached_->Sync());
  result.rows_scanned = master_->TotalRows();
  return result;
}

Result<table::DmlResult> DualTable::ExecuteOverwriteDelete(const table::ScanSpec& filter) {
  table::DmlResult result;
  result.plan = table::DmlPlan::kOverwrite;
  result.rows_scanned = master_->TotalRows();
  auto transform = [&](uint64_t, Row* row) {
    if (!filter.predicate || filter.predicate(*row)) {
      ++result.rows_matched;
      return false;  // drop the row
    }
    return true;
  };
  DTL_ASSIGN_OR_RETURN(uint64_t rows, RewriteMaster(transform));
  (void)rows;
  return result;
}

Result<uint64_t> DualTable::RewriteMasterParallel() {
  // One rewrite job per master file: file f's union-read view (attached scan
  // bounded to f's record-ID range) streams into fresh files. Jobs only
  // STAGE data — registration happens after the barrier, in one
  // ReplaceAllFiles call, so the manifest rename remains the single commit
  // point and a crash anywhere before it keeps the old generation intact.
  struct FileJob {
    uint64_t file_id = 0;
    std::vector<MasterFileInfo> new_files;
    uint64_t rows_out = 0;
  };
  std::vector<FileJob> jobs(master_->files().size());
  for (size_t i = 0; i < jobs.size(); ++i) jobs[i].file_id = master_->files()[i].file_id;

  TaskGroup group(options_.pool);
  for (FileJob& job : jobs) {
    group.Spawn([this, &job]() -> Status {
      table::ScanSpec all;  // every column, no predicate
      DTL_ASSIGN_OR_RETURN(auto it, NewUnionReadForFile(job.file_id, all));
      std::unique_ptr<MasterFileWriter> writer;
      while (it->Next()) {
        if (writer == nullptr) {
          DTL_ASSIGN_OR_RETURN(writer, master_->NewFileWriter());
        }
        DTL_RETURN_NOT_OK(writer->Append(it->row()));
        ++job.rows_out;
        if (writer->rows_written() >= options_.rewrite_file_rows) {
          DTL_ASSIGN_OR_RETURN(auto info, writer->Close());
          job.new_files.push_back(std::move(info));
          writer.reset();
        }
      }
      DTL_RETURN_NOT_OK(it->status());
      if (writer != nullptr) {
        DTL_ASSIGN_OR_RETURN(auto info, writer->Close());
        job.new_files.push_back(std::move(info));
      }
      return Status::OK();
    });
  }
  Status st = group.Wait();
  if (!st.ok()) {
    // Staged files from jobs that finished are orphans (never committed to
    // the manifest); delete them now rather than waiting for the next
    // Open()'s garbage collection.
    for (const FileJob& job : jobs) {
      for (const MasterFileInfo& info : job.new_files) {
        DTL_IGNORE_STATUS(fs_->Delete(info.path),
                          "failed COMPACT cleanup; next Open() garbage-collects");
      }
    }
    return st;
  }

  std::vector<MasterFileInfo> new_files;
  uint64_t rows_out = 0;
  for (FileJob& job : jobs) {
    rows_out += job.rows_out;
    for (MasterFileInfo& info : job.new_files) new_files.push_back(std::move(info));
  }
  DTL_RETURN_NOT_OK(master_->ReplaceAllFiles(std::move(new_files)));
  DTL_RETURN_NOT_OK(attached_->Clear());
  return rows_out;
}

Status DualTable::Compact() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (attached_->Empty()) return Status::OK();
  Stopwatch watch;
  if (options_.pool != nullptr && master_->files().size() >= 2) {
    DTL_ASSIGN_OR_RETURN(uint64_t rows, RewriteMasterParallel());
    (void)rows;
  } else {
    auto keep_all = [](uint64_t, Row*) { return true; };
    DTL_ASSIGN_OR_RETURN(uint64_t rows, RewriteMaster(keep_all));
    (void)rows;
  }
  if (compact_hist_ != nullptr) compact_hist_->ObserveSeconds(watch.ElapsedSeconds());
  return Status::OK();
}

void DualTable::RecordDmlObservation(const char* statement, table::DmlPlan plan,
                                     const PlanDecision& decision, double ratio,
                                     bool ratio_from_hint, bool audited,
                                     const table::DmlResult& result,
                                     double wall_seconds,
                                     const fs::IoSnapshot& io_before) {
  obs::Histogram* hist =
      plan == table::DmlPlan::kEdit ? edit_hist_ : overwrite_hist_;
  if (hist != nullptr) hist->ObserveSeconds(wall_seconds);
  if (!audited) return;
  obs::CostAuditRecord record;
  record.table = name_;
  record.statement = statement;
  record.ratio = ratio;
  record.ratio_from_hint = ratio_from_hint;
  record.predicted_edit_seconds = decision.cost_edit_seconds;
  record.predicted_overwrite_seconds = decision.cost_overwrite_seconds;
  record.predicted_plan = table::DmlPlanName(decision.plan);
  record.executed_plan = table::DmlPlanName(plan);
  record.rows_matched = result.rows_matched;
  record.measured_wall_seconds = wall_seconds;
  if (cluster_ != nullptr) {
    record.measured_modeled_seconds =
        cluster_->JobSeconds(fs_->meter()->Snapshot() - io_before);
  }
  options_.cost_audit->Record(std::move(record));
}

bool DualTable::NeedsCompaction() const {
  // Also called from the scheduler thread, which may race DML on the user
  // thread; TotalBytes walks the files_ vector that ReplaceAllFiles swaps.
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const uint64_t master_bytes = master_->TotalBytes();
  if (master_bytes == 0) return attached_->ApproximateCellCount() > 0;
  return static_cast<double>(attached_->ApproximateBytes()) >=
         options_.compact_threshold * static_cast<double>(master_bytes);
}

Status DualTable::Drop() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  DTL_RETURN_NOT_OK(master_->Drop());
  return attached_->Drop();
}

}  // namespace dtl::dual
