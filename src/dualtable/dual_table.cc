#include "dualtable/dual_table.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/stopwatch.h"
#include "dualtable/record_id.h"
#include "obs/cost_audit.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/telemetry_clock.h"
#include "obs/trace.h"

namespace dtl::dual {

size_t IncrementalCompactionPlan::selected_files() const {
  size_t n = 0;
  for (const FileCompactionPlan& f : files) n += f.selected ? 1 : 0;
  return n;
}

uint64_t IncrementalCompactionPlan::total_delta_rows() const {
  uint64_t n = 0;
  for (const FileCompactionPlan& f : files) n += f.delta_rows;
  return n;
}

std::string IncrementalCompactionPlan::ToString() const {
  std::ostringstream out;
  out << "incremental compact plan: threshold=" << threshold << " files="
      << files.size() << " selected=" << selected_files() << " strays="
      << stray_record_ids.size();
  for (const FileCompactionPlan& f : files) {
    out << "\n  f_" << f.file_id << ": rows=" << f.rows << " deltas="
        << f.delta_rows << " density=" << f.density()
        << (f.selected ? " REWRITE" : " keep") << " stripes[";
    for (size_t s = 0; s < f.stripes.size(); ++s) {
      if (s > 0) out << " ";
      out << s << ":" << f.stripes[s].density();
    }
    out << "]";
  }
  return out.str();
}

std::string IncrementalCompactStats::ToString() const {
  std::ostringstream out;
  out << "rewrote " << files_selected << "/" << files_total << " files ("
      << stripes_rewritten << " stripes re-encoded, " << stripes_copied
      << " copied, " << rows_rewritten << " rows, " << mods_folded
      << " mods folded)";
  return out.str();
}

Result<std::shared_ptr<DualTable>> DualTable::Open(fs::SimFileSystem* fs,
                                                   MetadataTable* metadata,
                                                   const fs::ClusterModel* cluster,
                                                   const std::string& name, Schema schema,
                                                   DualTableOptions options) {
  auto dual = std::shared_ptr<DualTable>(
      new DualTable(fs, metadata, name, schema, std::move(options), cluster));
  DTL_ASSIGN_OR_RETURN(dual->master_,
                       MasterTable::Open(fs, metadata, name, std::move(schema),
                                         dual->options_.warehouse_dir,
                                         dual->options_.writer_options,
                                         dual->options_.stripe_cache));
  DTL_ASSIGN_OR_RETURN(dual->attached_,
                       AttachedTable::Open(fs, name, dual->options_.attached_options));
  // Everything recovered from the WAL was acknowledged before the crash, so
  // the initial commit timestamp is the recovered clock.
  dual->commit_ts_ = dual->attached_->LastTimestamp();
  if (!dual->options_.indexed_columns.empty()) {
    DTL_ASSIGN_OR_RETURN(
        dual->index_,
        SecondaryIndex::Open(fs, name, dual->options_.indexed_columns, dual->schema_,
                             dual->options_.attached_options));
    // Bind before the recovery check so an Open-time rebuild is counted.
    dual->index_->BindMetrics(dual->options_.metrics, name);
    // Recovery: a crash between a table commit and its index meta write
    // leaves a detectably stale index; rebuild it before serving lookups.
    DTL_RETURN_NOT_OK(dual->EnsureIndexFresh());
    dual->index_commit_ts_ = dual->index_->LastTimestamp();
  }
  if (dual->options_.metrics != nullptr) {
    obs::MetricsRegistry* metrics = dual->options_.metrics;
    dual->edit_hist_ = metrics->histogram(obs::names::kDualEditSeconds, name);
    dual->overwrite_hist_ = metrics->histogram(obs::names::kDualOverwriteSeconds, name);
    dual->compact_hist_ = metrics->histogram(obs::names::kDualCompactSeconds, name);
    dual->union_read_rows_hist_ =
        metrics->histogram(obs::names::kDualUnionReadRows, name);
    dual->union_read_seconds_hist_ =
        metrics->histogram(obs::names::kDualUnionReadSeconds, name);
    dual->incremental_compact_hist_ =
        metrics->histogram(obs::names::kDualIncrementalCompactSeconds, name);
    dual->stripe_density_hist_ =
        metrics->histogram(obs::names::kDualStripeDensityPpm, name);
    dual->stripes_rewritten_ctr_ =
        metrics->counter(obs::names::kDualStripesRewritten, name);
    dual->stripes_copied_ctr_ = metrics->counter(obs::names::kDualStripesCopied, name);
    dual->mods_folded_ctr_ = metrics->counter(obs::names::kDualModsFolded, name);
    dual->edit_scale_gauge_ = metrics->gauge(obs::names::kDualEditCostScalePpm, name);
    dual->overwrite_scale_gauge_ =
        metrics->gauge(obs::names::kDualOverwriteCostScalePpm, name);
    dual->edit_scale_gauge_->Set(
        static_cast<int64_t>(dual->options_.cost_params.edit_cost_scale * 1e6));
    dual->overwrite_scale_gauge_->Set(
        static_cast<int64_t>(dual->options_.cost_params.overwrite_cost_scale * 1e6));
    dual->maint_rounds_ctr_ = metrics->counter(obs::names::kMaintenanceRounds, name);
    dual->maint_skips_ctr_ = metrics->counter(obs::names::kMaintenanceSkips, name);
    dual->maint_preview_scans_ctr_ =
        metrics->counter(obs::names::kMaintenancePreviewScans, name);
    dual->maint_incremental_ctr_ =
        metrics->counter(obs::names::kMaintenanceIncrementalCompacts, name);
    dual->maint_full_ctr_ = metrics->counter(obs::names::kMaintenanceFullCompacts, name);
    dual->maint_reclaims_ctr_ = metrics->counter(obs::names::kMaintenanceReclaims, name);
    dual->maint_trigger_density_ctr_ =
        metrics->counter(obs::names::kMaintenanceTriggers, "density");
    dual->maint_trigger_latency_ctr_ =
        metrics->counter(obs::names::kMaintenanceTriggers, "latency");
    dual->maint_trigger_bytes_ctr_ =
        metrics->counter(obs::names::kMaintenanceTriggers, "bytes");
    dual->maint_p95_gauge_ = metrics->gauge(obs::names::kMaintenanceUnionReadP95Us, name);
    dual->maint_density_gauge_ =
        metrics->gauge(obs::names::kMaintenanceDeltaDensityPpm, name);
  }
  if (dual->options_.scheduler != nullptr && dual->options_.background_compaction) {
    // Maintenance used to surface only through scans, so compaction debt
    // accumulated unobserved on write-only workloads; the scheduler polls it
    // instead. The raw pointer is safe: ~DualTable unregisters (blocking out
    // an in-flight poll) before members die.
    DualTable* raw = dual.get();
    dual->scheduler_job_ = dual->options_.scheduler->Register(
        "compact:" + name, [raw] { raw->BackgroundMaintenance(); });
  }
  return dual;
}

DualTable::~DualTable() {
  if (scheduler_job_ != 0) options_.scheduler->Unregister(scheduler_job_);
}

SnapshotPtr DualTable::AcquireSnapshot() const {
  auto snap = std::make_shared<Snapshot>();
  {
    // The generation and the KV state must be captured as one unit: pairing
    // them non-atomically around a PublishRewrite could combine the OLD
    // generation with the CLEARED attached store and silently drop every
    // delta the rewrite folded in.
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snap->generation = master_->CurrentGeneration();
    snap->attached = attached_->store()->GetSnapshot();
    // Clamp visibility to the last acknowledged EDIT: cells an in-flight
    // statement already wrote (timestamps past commit_ts_) stay invisible
    // until its WAL sync publishes them.
    snap->attached.read_ts = std::min(snap->attached.read_ts, commit_ts_);
    if (index_ != nullptr) {
      // Same clamp for the index store: entries an in-flight statement wrote
      // ahead of its commit stay invisible, so the index view and the table
      // view agree under every snapshot.
      snap->index = index_->GetSnapshot();
      snap->index.read_ts = std::min(snap->index.read_ts, index_commit_ts_);
      snap->has_index = true;
    }
  }
  // Exact emptiness of the PINNED state — AttachedTable::Empty() reads the
  // live store, which a concurrent EDIT mutates. The pinned SST set is
  // immutable; the pinned memtable only grows, which can only flip the
  // answer to "not empty" — the conservative direction (disables stripe-stat
  // pruning that an empty attached table would have allowed).
  uint64_t cells =
      snap->attached.mem != nullptr ? snap->attached.mem->cell_count() : 0;
  for (const auto& sst : snap->attached.tables) cells += sst->cell_count();
  snap->attached_empty = cells == 0;
  snap->tracker = snapshot_tracker_;
  snap->tracker_token = snapshot_tracker_->OnAcquire();
  return snap;
}

void DualTable::PublishEditCommit() {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  commit_ts_ = attached_->LastTimestamp();
  // The statement's index entries were written (and synced) before its
  // attached cells, so publishing both clocks together can only expose
  // entries whose table state is already visible.
  if (index_ != nullptr) index_commit_ts_ = index_->LastTimestamp();
}

Status DualTable::PublishRewrite(std::vector<MasterFileInfo> new_files) {
  // Caller holds mu_ (writers are serialized).
  std::unordered_set<uint64_t> dead_files;
  if (index_ != nullptr) {
    // Index the staged files BEFORE the swap: once the new generation is
    // visible, a snapshot may need their entries, and the stale-tolerant
    // protocol only permits extra entries, never missing ones. A crash after
    // this stage leaves entries for orphan files — harmless, verified away.
    DTL_RETURN_NOT_OK(IndexStagedFiles(new_files));
    DTL_RETURN_NOT_OK(index_->Sync());
    for (const MasterFileInfo& f : master_->files()) dead_files.insert(f.file_id);
  }
  {
    // snapshot_mu_ nests inside mu_.
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    DTL_RETURN_NOT_OK(master_->ReplaceAllFiles(std::move(new_files)));
    // If Clear() fails after the generation swap the table is still correct:
    // the new generation's files carry fresh file IDs, so leftover attached
    // record IDs can never match a new-generation row.
    DTL_RETURN_NOT_OK(attached_->Clear());
    if (index_ != nullptr) index_commit_ts_ = index_->LastTimestamp();
  }
  if (index_ != nullptr) {
    // Post-commit cleanup: entries of the replaced files are unreachable
    // (their file IDs left the generation), fold them out and record the
    // committed state. A crash here only costs an Open-time rebuild.
    DTL_RETURN_NOT_OK(index_->FoldDeadFiles(dead_files));
    DTL_RETURN_NOT_OK(CommitIndexMeta());
  }
  return Status::OK();
}

table::ScanSpec DualTable::MasterSpecFor(const table::ScanSpec& spec,
                                         const SnapshotPtr& snapshot) const {
  table::ScanSpec master_spec = spec;
  // Attached updates can move cell values across stripe-stat boundaries, so
  // stats pruning is only sound when the snapshot's attached state is empty.
  if (!snapshot->attached_empty) master_spec.bounds.clear();
  return master_spec;
}

Result<std::unique_ptr<UnionReadIterator>> DualTable::NewUnionRead(
    const SnapshotPtr& snapshot, const table::ScanSpec& spec) {
  DTL_ASSIGN_OR_RETURN(auto master_it,
                       master_->NewScanIterator(snapshot->generation,
                                                MasterSpecFor(spec, snapshot),
                                                /*apply_predicate=*/false));
  auto attached_it = attached_->NewScannerAt(snapshot->attached);
  auto it = std::make_unique<UnionReadIterator>(std::move(master_it),
                                                std::move(attached_it), spec.predicate,
                                                schema_.num_fields());
  it->AnchorSnapshot(snapshot);
  return it;
}

Result<std::unique_ptr<UnionReadIterator>> DualTable::NewUnionReadForFile(
    const SnapshotPtr& snapshot, uint64_t file_id, const table::ScanSpec& spec) {
  DTL_ASSIGN_OR_RETURN(
      auto master_it,
      master_->NewFileScanIterator(snapshot->generation, file_id,
                                   MasterSpecFor(spec, snapshot),
                                   /*apply_predicate=*/false));
  auto attached_it = attached_->NewScannerAt(
      snapshot->attached, MakeRecordId(file_id, 0), MakeRecordId(file_id + 1, 0));
  auto it = std::make_unique<UnionReadIterator>(std::move(master_it),
                                                std::move(attached_it), spec.predicate,
                                                schema_.num_fields());
  it->AnchorSnapshot(snapshot);
  return it;
}

Result<std::unique_ptr<UnionReadBatchIterator>> DualTable::NewUnionReadBatch(
    const SnapshotPtr& snapshot, const table::ScanSpec& spec, uint64_t as_of) {
  DTL_ASSIGN_OR_RETURN(auto master_it,
                       master_->NewBatchScanIterator(snapshot->generation,
                                                     MasterSpecFor(spec, snapshot),
                                                     /*apply_predicate=*/false,
                                                     options_.scan_batch_rows));
  auto attached_it =
      attached_->NewScannerAt(snapshot->attached, 0, UINT64_MAX, as_of);
  auto it = std::make_unique<UnionReadBatchIterator>(std::move(master_it),
                                                     std::move(attached_it),
                                                     spec.predicate,
                                                     schema_.num_fields(), spec.meter);
  it->AnchorSnapshot(snapshot);
  return it;
}

Result<std::unique_ptr<UnionReadBatchIterator>> DualTable::NewUnionReadBatchForFile(
    const SnapshotPtr& snapshot, uint64_t file_id, const table::ScanSpec& spec) {
  DTL_ASSIGN_OR_RETURN(
      auto master_it,
      master_->NewFileBatchScanIterator(snapshot->generation, file_id,
                                        MasterSpecFor(spec, snapshot),
                                        /*apply_predicate=*/false,
                                        options_.scan_batch_rows));
  auto attached_it = attached_->NewScannerAt(
      snapshot->attached, MakeRecordId(file_id, 0), MakeRecordId(file_id + 1, 0));
  auto it = std::make_unique<UnionReadBatchIterator>(std::move(master_it),
                                                     std::move(attached_it),
                                                     spec.predicate,
                                                     schema_.num_fields(), spec.meter);
  it->AnchorSnapshot(snapshot);
  return it;
}

Result<std::vector<ScanMorsel>> DualTable::PlanScanMorsels(const table::ScanSpec& spec,
                                                           size_t stripes_per_morsel) {
  return PlanScanMorselsAt(AcquireSnapshot(), spec, stripes_per_morsel);
}

Result<std::vector<ScanMorsel>> DualTable::PlanScanMorselsAt(
    const SnapshotPtr& snapshot, const table::ScanSpec& spec,
    size_t stripes_per_morsel) {
  return master_->PlanMorsels(snapshot->generation, MasterSpecFor(spec, snapshot),
                              stripes_per_morsel);
}

Result<std::unique_ptr<UnionReadBatchIterator>> DualTable::NewUnionReadBatchForMorsel(
    const ScanMorsel& morsel, const table::ScanSpec& spec, table::ScanMeter* meter) {
  return NewUnionReadBatchForMorselAt(AcquireSnapshot(), morsel, spec, meter);
}

Result<std::unique_ptr<UnionReadBatchIterator>> DualTable::NewUnionReadBatchForMorselAt(
    const SnapshotPtr& snapshot, const ScanMorsel& morsel, const table::ScanSpec& spec,
    table::ScanMeter* meter) {
  table::ScanSpec master_spec = MasterSpecFor(spec, snapshot);
  master_spec.meter = meter;
  DTL_ASSIGN_OR_RETURN(
      auto master_it,
      master_->NewMorselBatchScanIterator(snapshot->generation, morsel, master_spec,
                                          /*apply_predicate=*/false,
                                          options_.scan_batch_rows));
  auto attached_it = attached_->NewScannerAt(snapshot->attached,
                                             morsel.first_record_id,
                                             morsel.end_record_id);
  auto it = std::make_unique<UnionReadBatchIterator>(std::move(master_it),
                                                     std::move(attached_it),
                                                     spec.predicate,
                                                     schema_.num_fields(), meter);
  it->AnchorSnapshot(snapshot);
  return it;
}

namespace {

// Counts the rows a UNION READ scan emits and reports the total — plus the
// scan's wall seconds, construction to destruction — into the per-table
// histograms when the scan ends (destruction = end of scan, whether drained
// or abandoned). The seconds histogram's window ring is what the adaptive
// maintenance latency trigger reads.
class RowsObservingBatchIterator : public table::BatchIterator {
 public:
  RowsObservingBatchIterator(std::unique_ptr<table::BatchIterator> inner,
                             obs::Histogram* rows_hist, obs::Histogram* seconds_hist)
      : inner_(std::move(inner)), rows_hist_(rows_hist), seconds_hist_(seconds_hist) {}
  ~RowsObservingBatchIterator() override {
    rows_hist_->Observe(rows_);
    if (seconds_hist_ != nullptr) seconds_hist_->ObserveSeconds(watch_.ElapsedSeconds());
  }

  bool Next(table::RowBatch* batch) override {
    if (!inner_->Next(batch)) return false;
    rows_ += batch->size();
    return true;
  }
  const Status& status() const override { return inner_->status(); }

 private:
  std::unique_ptr<table::BatchIterator> inner_;
  obs::Histogram* rows_hist_;
  obs::Histogram* seconds_hist_;
  uint64_t rows_ = 0;
  Stopwatch watch_;
};

}  // namespace

std::unique_ptr<table::BatchIterator> DualTable::ObserveUnionReadRows(
    std::unique_ptr<table::BatchIterator> it) {
  if (union_read_rows_hist_ == nullptr) return it;
  return std::make_unique<RowsObservingBatchIterator>(
      std::move(it), union_read_rows_hist_, union_read_seconds_hist_);
}

Result<std::unique_ptr<table::RowIterator>> DualTable::Scan(const table::ScanSpec& spec) {
  return ScanAt(AcquireSnapshot(), spec);
}

Result<std::unique_ptr<table::RowIterator>> DualTable::ScanAt(
    const SnapshotPtr& snapshot, const table::ScanSpec& spec) {
  if (options_.enable_batch_scan) {
    DTL_ASSIGN_OR_RETURN(auto it, NewUnionReadBatch(snapshot, spec));
    return std::unique_ptr<table::RowIterator>(std::make_unique<table::BatchToRowAdapter>(
        ObserveUnionReadRows(std::move(it)), spec.meter));
  }
  DTL_ASSIGN_OR_RETURN(auto it, NewUnionRead(snapshot, spec));
  return std::unique_ptr<table::RowIterator>(std::move(it));
}

Result<std::unique_ptr<table::BatchIterator>> DualTable::ScanBatches(
    const table::ScanSpec& spec) {
  return ScanBatchesAt(AcquireSnapshot(), spec);
}

Result<std::unique_ptr<table::BatchIterator>> DualTable::ScanBatchesAt(
    const SnapshotPtr& snapshot, const table::ScanSpec& spec) {
  if (!options_.enable_batch_scan) {
    // Row-at-a-time fallback, built directly from the snapshot so the
    // batch/row configuration switch never changes visibility semantics.
    DTL_ASSIGN_OR_RETURN(auto rows, NewUnionRead(snapshot, spec));
    return std::unique_ptr<table::BatchIterator>(std::make_unique<table::RowToBatchAdapter>(
        std::move(rows), schema_.num_fields(), options_.scan_batch_rows, spec.meter));
  }
  DTL_ASSIGN_OR_RETURN(auto it, NewUnionReadBatch(snapshot, spec));
  return ObserveUnionReadRows(std::move(it));
}

Result<std::unique_ptr<table::RowIterator>> DualTable::ScanLegacyRows(
    const table::ScanSpec& spec) {
  DTL_ASSIGN_OR_RETURN(auto it, NewUnionRead(AcquireSnapshot(), spec));
  return std::unique_ptr<table::RowIterator>(std::move(it));
}

Result<std::unique_ptr<table::RowIterator>> DualTable::ScanAsOf(
    const table::ScanSpec& spec, uint64_t as_of) {
  SnapshotPtr snapshot = AcquireSnapshot();
  if (options_.enable_batch_scan) {
    DTL_ASSIGN_OR_RETURN(auto it, NewUnionReadBatch(snapshot, spec, as_of));
    return std::unique_ptr<table::RowIterator>(
        std::make_unique<table::BatchToRowAdapter>(std::move(it), spec.meter));
  }
  DTL_ASSIGN_OR_RETURN(auto master_it,
                       master_->NewScanIterator(snapshot->generation,
                                                MasterSpecFor(spec, snapshot),
                                                /*apply_predicate=*/false));
  auto attached_it =
      attached_->NewScannerAt(snapshot->attached, 0, UINT64_MAX, as_of);
  auto it = std::make_unique<UnionReadIterator>(std::move(master_it),
                                                std::move(attached_it), spec.predicate,
                                                schema_.num_fields());
  it->AnchorSnapshot(snapshot);
  return std::unique_ptr<table::RowIterator>(std::move(it));
}

Result<std::vector<table::ScanSplit>> DualTable::CreateSplits(const table::ScanSpec& spec) {
  // One snapshot shared by every split: the split set and each split's scan
  // agree on the file set, and a COMPACT between CreateSplits and the last
  // split's execution cannot tear the view.
  SnapshotPtr snapshot = AcquireSnapshot();
  std::vector<table::ScanSplit> splits;
  for (const MasterFileInfo& info : snapshot->generation->files()) {
    const uint64_t file_id = info.file_id;
    DualTable* self = this;
    table::ScanSpec copy = spec;
    splits.push_back(table::ScanSplit{
        name_ + "/f_" + std::to_string(file_id),
        [self, snapshot, file_id, copy]() -> Result<std::unique_ptr<table::RowIterator>> {
          if (self->options_.enable_batch_scan) {
            DTL_ASSIGN_OR_RETURN(auto it,
                                 self->NewUnionReadBatchForFile(snapshot, file_id, copy));
            return std::unique_ptr<table::RowIterator>(
                std::make_unique<table::BatchToRowAdapter>(std::move(it), copy.meter));
          }
          DTL_ASSIGN_OR_RETURN(auto it, self->NewUnionReadForFile(snapshot, file_id, copy));
          return std::unique_ptr<table::RowIterator>(std::move(it));
        }});
  }
  return splits;
}

Status DualTable::InsertRows(const std::vector<Row>& rows) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (rows.empty()) return Status::OK();
  DTL_ASSIGN_OR_RETURN(auto writer, master_->NewFileWriter());
  for (const Row& row : rows) DTL_RETURN_NOT_OK(writer->Append(row));
  DTL_ASSIGN_OR_RETURN(auto info, writer->Close());
  if (index_ != nullptr) {
    // Entries first, visibility second: the new file's entries must be
    // durable and published before RegisterFile makes its rows reachable.
    // Until RegisterFile lands, the entries point at a file outside every
    // generation and lookups drop them as stale.
    const uint64_t file_id = info.file_id;
    for (size_t i = 0; i < rows.size(); ++i) {
      DTL_RETURN_NOT_OK(index_->AddRow(rows[i], MakeRecordId(file_id, i)));
    }
    DTL_RETURN_NOT_OK(index_->Sync());
    std::lock_guard<std::mutex> snap_lock(snapshot_mu_);
    index_commit_ts_ = index_->LastTimestamp();
  }
  // RegisterFile publishes the successor generation on its own: an INSERT
  // never touches the attached store, so there is no torn pairing for a
  // concurrent AcquireSnapshot to observe.
  DTL_RETURN_NOT_OK(master_->RegisterFile(std::move(info)));
  return CommitIndexMeta();
}

Status DualTable::OverwriteRows(const std::vector<Row>& rows) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::vector<MasterFileInfo> new_files;
  if (!rows.empty()) {
    std::unique_ptr<MasterFileWriter> writer;
    for (const Row& row : rows) {
      if (writer == nullptr) {
        DTL_ASSIGN_OR_RETURN(writer, master_->NewFileWriter());
      }
      DTL_RETURN_NOT_OK(writer->Append(row));
      if (writer->rows_written() >= options_.rewrite_file_rows) {
        DTL_ASSIGN_OR_RETURN(auto info, writer->Close());
        new_files.push_back(std::move(info));
        writer.reset();
      }
    }
    if (writer != nullptr) {
      DTL_ASSIGN_OR_RETURN(auto info, writer->Close());
      new_files.push_back(std::move(info));
    }
  }
  return PublishRewrite(std::move(new_files));
}

table::ScanSpec DualTable::DmlScanSpec(
    const table::ScanSpec& filter, const std::vector<table::Assignment>& assignments) const {
  table::ScanSpec spec = filter;
  // The DML scan must materialize the predicate columns plus everything the
  // SET expressions read. Fold those into the projection.
  std::vector<size_t> needed = filter.predicate_columns;
  for (const auto& a : assignments) {
    needed.insert(needed.end(), a.input_columns.begin(), a.input_columns.end());
  }
  if (needed.empty()) needed.push_back(0);
  std::sort(needed.begin(), needed.end());
  needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
  spec.projection = needed;
  return spec;
}

double DualTable::ResolveRatio(std::optional<double> hint) const {
  if (hint.has_value()) return std::clamp(*hint, 0.0, 1.0);
  auto hist = metadata_->HistoricalModificationRatio(name_,
                                                     options_.default_modification_ratio);
  return hist.ok() ? std::clamp(*hist, 0.0, 1.0) : options_.default_modification_ratio;
}

double DualTable::AvgRowBytes() const {
  const uint64_t rows = master_->TotalRows();
  if (rows == 0) return 1.0;
  return static_cast<double>(master_->TotalBytes()) / static_cast<double>(rows);
}

PlanDecision DualTable::PreviewUpdateDecision(double alpha) const {
  std::lock_guard<std::mutex> lock(cost_model_mu_);
  return cost_model_.DecideUpdate(master_->TotalBytes(), alpha);
}

PlanDecision DualTable::PreviewDeleteDecision(double beta) const {
  std::lock_guard<std::mutex> lock(cost_model_mu_);
  return cost_model_.DecideDelete(master_->TotalBytes(), beta, AvgRowBytes());
}

CostModelParams DualTable::cost_model_params() const {
  std::lock_guard<std::mutex> lock(cost_model_mu_);
  return cost_model_.params();
}

Result<table::DmlResult> DualTable::Update(
    const table::ScanSpec& filter, const std::vector<table::Assignment>& assignments) {
  return UpdateWithHint(filter, assignments, std::nullopt);
}

Result<table::DmlResult> DualTable::UpdateWithHint(
    const table::ScanSpec& filter, const std::vector<table::Assignment>& assignments,
    std::optional<double> ratio_hint) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (assignments.empty()) return Status::InvalidArgument("UPDATE with no assignments");

  table::DmlPlan plan = table::DmlPlan::kEdit;
  PlanDecision decision;
  double ratio = 0;
  bool audited = false;
  switch (options_.plan_mode) {
    case DualTableOptions::PlanMode::kForceEdit:
      plan = table::DmlPlan::kEdit;
      break;
    case DualTableOptions::PlanMode::kForceOverwrite:
      plan = table::DmlPlan::kOverwrite;
      break;
    case DualTableOptions::PlanMode::kCostModel:
      ratio = ResolveRatio(ratio_hint);
      decision = PreviewUpdateDecision(ratio);
      plan = decision.plan;
      audited = options_.cost_audit != nullptr;
      break;
  }
  last_plan_ = plan;

  const fs::IoSnapshot io_before = fs_->meter()->Snapshot();
  Stopwatch watch;
  Result<table::DmlResult> result = plan == table::DmlPlan::kEdit
                                        ? ExecuteEditUpdate(filter, assignments)
                                        : ExecuteOverwriteUpdate(filter, assignments);
  if (result.ok()) {
    RecordDmlObservation("UPDATE", plan, decision, ratio, ratio_hint.has_value(),
                         audited, *result, watch.ElapsedSeconds(), io_before);
  }
  if (result.ok() && result->rows_scanned > 0) {
    // Propagate metadata failures: a silently stale modification ratio would
    // skew every later cost-model plan choice (found by the nodiscard sweep).
    DTL_RETURN_NOT_OK(metadata_->RecordModificationRatio(
        name_, static_cast<double>(result->rows_matched) /
                   static_cast<double>(result->rows_scanned)));
  }
  if (result.ok() && options_.auto_compact && NeedsCompaction()) {
    DTL_RETURN_NOT_OK(Compact());
  }
  return result;
}

Result<table::DmlResult> DualTable::ExecuteEditUpdate(
    const table::ScanSpec& filter, const std::vector<table::Assignment>& assignments) {
  // The paper's UPDATE UDTF: scan the up-to-date view, and for every
  // matching record put the new field values into the attached table. The
  // scan reads from a snapshot acquired at statement start, so the
  // statement's own puts can never feed back into its scan.
  table::ScanSpec spec = DmlScanSpec(filter, assignments);
  SnapshotPtr snapshot = AcquireSnapshot();
  DTL_ASSIGN_OR_RETURN(auto it, NewUnionRead(snapshot, spec));
  table::DmlResult result;
  result.plan = table::DmlPlan::kEdit;
  struct PendingUpdate {
    uint64_t record_id;
    uint32_t column;
    Value value;
  };
  std::vector<PendingUpdate> pending;
  while (it->Next()) {
    ++result.rows_matched;  // predicate applied inside the union read
    for (const table::Assignment& a : assignments) {
      pending.push_back(PendingUpdate{it->record_id(), static_cast<uint32_t>(a.column),
                                      a.compute(it->row())});
    }
  }
  DTL_RETURN_NOT_OK(it->status());
  if (index_ != nullptr) {
    // Index entries for the new values go in (and sync) before the attached
    // cells: a crash in between leaves extra entries that lookups verify
    // away, whereas the reverse order could leave a visible update with no
    // entry — the one hazard the stale-tolerant protocol excludes.
    for (const PendingUpdate& p : pending) {
      if (index_->IndexesColumn(p.column)) {
        DTL_RETURN_NOT_OK(index_->Add(p.column, p.value, p.record_id));
      }
    }
    DTL_RETURN_NOT_OK(index_->Sync());
  }
  for (const PendingUpdate& p : pending) {
    DTL_RETURN_NOT_OK(attached_->PutUpdate(p.record_id, p.column, p.value));
  }
  // The statement is acknowledged on return, so its attached-table cells
  // must be WAL-durable first: a crash after the ack must replay them.
  DTL_RETURN_NOT_OK(attached_->Sync());
  // Only now do the cells become visible — a snapshot acquired during the
  // statement reads the pre-statement commit timestamp.
  PublishEditCommit();
  DTL_RETURN_NOT_OK(CommitIndexMeta());
  result.rows_scanned = snapshot->generation->TotalRows();
  return result;
}

Result<uint64_t> DualTable::RewriteMaster(
    const std::function<bool(uint64_t record_id, Row* row)>& transform) {
  // Stream the merged view into a staged new master generation. The rewrite
  // folds deltas up to its snapshot's commit timestamp; writers are
  // serialized under mu_, so nothing can commit past it before the publish.
  SnapshotPtr snapshot = AcquireSnapshot();
  table::ScanSpec all;  // every column, no predicate
  DTL_ASSIGN_OR_RETURN(auto it, NewUnionRead(snapshot, all));

  std::vector<MasterFileInfo> new_files;
  std::unique_ptr<MasterFileWriter> writer;
  uint64_t rows_out = 0;
  Row row;
  while (it->Next()) {
    row = it->row();
    if (!transform(it->record_id(), &row)) continue;
    if (writer == nullptr) {
      DTL_ASSIGN_OR_RETURN(writer, master_->NewFileWriter());
    }
    DTL_RETURN_NOT_OK(writer->Append(row));
    ++rows_out;
    if (writer->rows_written() >= options_.rewrite_file_rows) {
      DTL_ASSIGN_OR_RETURN(auto info, writer->Close());
      new_files.push_back(std::move(info));
      writer.reset();
    }
  }
  DTL_RETURN_NOT_OK(it->status());
  if (writer != nullptr) {
    DTL_ASSIGN_OR_RETURN(auto info, writer->Close());
    new_files.push_back(std::move(info));
  }
  DTL_RETURN_NOT_OK(PublishRewrite(std::move(new_files)));
  return rows_out;
}

Result<table::DmlResult> DualTable::ExecuteOverwriteUpdate(
    const table::ScanSpec& filter, const std::vector<table::Assignment>& assignments) {
  // Hive's INSERT OVERWRITE path: rewrite every row, with matching rows
  // getting their SET columns replaced; ends with a fresh empty attached
  // table (paper §III-C).
  table::DmlResult result;
  result.plan = table::DmlPlan::kOverwrite;
  result.rows_scanned = master_->TotalRows();
  auto transform = [&](uint64_t, Row* row) {
    if (!filter.predicate || filter.predicate(*row)) {
      ++result.rows_matched;
      for (const table::Assignment& a : assignments) (*row)[a.column] = a.compute(*row);
    }
    return true;
  };
  DTL_ASSIGN_OR_RETURN(uint64_t rows, RewriteMaster(transform));
  (void)rows;
  return result;
}

Result<table::DmlResult> DualTable::Delete(const table::ScanSpec& filter) {
  return DeleteWithHint(filter, std::nullopt);
}

Result<table::DmlResult> DualTable::DeleteWithHint(const table::ScanSpec& filter,
                                                   std::optional<double> ratio_hint) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  table::DmlPlan plan = table::DmlPlan::kEdit;
  PlanDecision decision;
  double ratio = 0;
  bool audited = false;
  switch (options_.plan_mode) {
    case DualTableOptions::PlanMode::kForceEdit:
      plan = table::DmlPlan::kEdit;
      break;
    case DualTableOptions::PlanMode::kForceOverwrite:
      plan = table::DmlPlan::kOverwrite;
      break;
    case DualTableOptions::PlanMode::kCostModel:
      ratio = ResolveRatio(ratio_hint);
      decision = PreviewDeleteDecision(ratio);
      plan = decision.plan;
      audited = options_.cost_audit != nullptr;
      break;
  }
  last_plan_ = plan;

  const fs::IoSnapshot io_before = fs_->meter()->Snapshot();
  Stopwatch watch;
  Result<table::DmlResult> result = plan == table::DmlPlan::kEdit
                                        ? ExecuteEditDelete(filter)
                                        : ExecuteOverwriteDelete(filter);
  if (result.ok()) {
    RecordDmlObservation("DELETE", plan, decision, ratio, ratio_hint.has_value(),
                         audited, *result, watch.ElapsedSeconds(), io_before);
  }
  if (result.ok() && result->rows_scanned > 0) {
    // Propagate metadata failures (see UpdateWithHint).
    DTL_RETURN_NOT_OK(metadata_->RecordModificationRatio(
        name_, static_cast<double>(result->rows_matched) /
                   static_cast<double>(result->rows_scanned)));
  }
  if (result.ok() && options_.auto_compact && NeedsCompaction()) {
    DTL_RETURN_NOT_OK(Compact());
  }
  return result;
}

Result<table::DmlResult> DualTable::ExecuteEditDelete(const table::ScanSpec& filter) {
  // The paper's DELETE UDTF: put a DELETE marker for each matching record.
  // Snapshot semantics match ExecuteEditUpdate.
  table::ScanSpec spec = DmlScanSpec(filter, {});
  SnapshotPtr snapshot = AcquireSnapshot();
  DTL_ASSIGN_OR_RETURN(auto it, NewUnionRead(snapshot, spec));
  table::DmlResult result;
  result.plan = table::DmlPlan::kEdit;
  while (it->Next()) {
    ++result.rows_matched;
    DTL_RETURN_NOT_OK(attached_->PutDeleteMarker(it->record_id()));
  }
  DTL_RETURN_NOT_OK(it->status());
  // Same durability contract as ExecuteEditUpdate: sync before the ack.
  DTL_RETURN_NOT_OK(attached_->Sync());
  PublishEditCommit();
  // Deletes add no index entries (the deleted rows' entries become stale and
  // are dropped at verify time), but the meta row must track the commit or
  // the next Open would rebuild for nothing.
  DTL_RETURN_NOT_OK(CommitIndexMeta());
  result.rows_scanned = snapshot->generation->TotalRows();
  return result;
}

Result<table::DmlResult> DualTable::ExecuteOverwriteDelete(const table::ScanSpec& filter) {
  table::DmlResult result;
  result.plan = table::DmlPlan::kOverwrite;
  result.rows_scanned = master_->TotalRows();
  auto transform = [&](uint64_t, Row* row) {
    if (!filter.predicate || filter.predicate(*row)) {
      ++result.rows_matched;
      return false;  // drop the row
    }
    return true;
  };
  DTL_ASSIGN_OR_RETURN(uint64_t rows, RewriteMaster(transform));
  (void)rows;
  return result;
}

Result<uint64_t> DualTable::RewriteMasterParallel() {
  // One rewrite job per master file: file f's union-read view (attached scan
  // bounded to f's record-ID range) streams into fresh files. Every job
  // reads from ONE shared snapshot, and jobs only STAGE data — registration
  // happens after the barrier, in one PublishRewrite call, so the manifest
  // rename remains the single commit point and a crash anywhere before it
  // keeps the old generation intact.
  SnapshotPtr snapshot = AcquireSnapshot();
  struct FileJob {
    uint64_t file_id = 0;
    std::vector<MasterFileInfo> new_files;
    uint64_t rows_out = 0;
  };
  const std::vector<MasterFileInfo>& master_files = snapshot->generation->files();
  std::vector<FileJob> jobs(master_files.size());
  for (size_t i = 0; i < jobs.size(); ++i) jobs[i].file_id = master_files[i].file_id;

  TaskGroup group(options_.pool);
  for (FileJob& job : jobs) {
    group.Spawn([this, &job, &snapshot]() -> Status {
      table::ScanSpec all;  // every column, no predicate
      DTL_ASSIGN_OR_RETURN(auto it, NewUnionReadForFile(snapshot, job.file_id, all));
      std::unique_ptr<MasterFileWriter> writer;
      while (it->Next()) {
        if (writer == nullptr) {
          DTL_ASSIGN_OR_RETURN(writer, master_->NewFileWriter());
        }
        DTL_RETURN_NOT_OK(writer->Append(it->row()));
        ++job.rows_out;
        if (writer->rows_written() >= options_.rewrite_file_rows) {
          DTL_ASSIGN_OR_RETURN(auto info, writer->Close());
          job.new_files.push_back(std::move(info));
          writer.reset();
        }
      }
      DTL_RETURN_NOT_OK(it->status());
      if (writer != nullptr) {
        DTL_ASSIGN_OR_RETURN(auto info, writer->Close());
        job.new_files.push_back(std::move(info));
      }
      return Status::OK();
    });
  }
  Status st = group.Wait();
  if (!st.ok()) {
    // Staged files from jobs that finished are orphans (never committed to
    // the manifest); delete them now rather than waiting for the next
    // Open()'s garbage collection.
    for (const FileJob& job : jobs) {
      for (const MasterFileInfo& info : job.new_files) {
        DTL_IGNORE_STATUS(fs_->Delete(info.path),
                          "failed COMPACT cleanup; next Open() garbage-collects");
      }
    }
    return st;
  }

  std::vector<MasterFileInfo> new_files;
  uint64_t rows_out = 0;
  for (FileJob& job : jobs) {
    rows_out += job.rows_out;
    for (MasterFileInfo& info : job.new_files) new_files.push_back(std::move(info));
  }
  DTL_RETURN_NOT_OK(PublishRewrite(std::move(new_files)));
  return rows_out;
}

Status DualTable::Compact() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (attached_->Empty()) return Status::OK();
  Stopwatch watch;
  if (options_.pool != nullptr && master_->files().size() >= 2) {
    DTL_ASSIGN_OR_RETURN(uint64_t rows, RewriteMasterParallel());
    (void)rows;
  } else {
    auto keep_all = [](uint64_t, Row*) { return true; };
    DTL_ASSIGN_OR_RETURN(uint64_t rows, RewriteMaster(keep_all));
    (void)rows;
  }
  if (compact_hist_ != nullptr) compact_hist_->ObserveSeconds(watch.ElapsedSeconds());
  return Status::OK();
}

double DualTable::IncrementalDensityThreshold() const {
  if (options_.incremental_density_override >= 0) {
    return std::min(options_.incremental_density_override, 1.0);
  }
  // The update crossover ratio is the modification fraction where folding
  // into the master (OVERWRITE economics) beats keeping deltas attached;
  // files whose accumulated density reaches it are worth rewriting. The
  // floor keeps a tiny master from making every stripe "dense".
  std::lock_guard<std::mutex> lock(cost_model_mu_);
  return std::clamp(cost_model_.UpdateCrossoverRatio(master_->TotalBytes()), 0.01, 1.0);
}

Result<IncrementalCompactionPlan> DualTable::PreviewIncrementalCompaction() {
  return PreviewIncrementalCompactionAt(AcquireSnapshot());
}

Result<IncrementalCompactionPlan> DualTable::PreviewIncrementalCompactionAt(
    const SnapshotPtr& snapshot) const {
  IncrementalCompactionPlan plan;
  plan.threshold = IncrementalDensityThreshold();
  const std::vector<MasterFileInfo>& gen_files = snapshot->generation->files();
  plan.files.reserve(gen_files.size());
  for (const MasterFileInfo& info : gen_files) {
    DTL_ASSIGN_OR_RETURN(auto reader,
                         master_->OpenReader(snapshot->generation, info.file_id));
    FileCompactionPlan f;
    f.file_id = info.file_id;
    f.rows = info.num_rows;
    f.bytes = info.bytes;
    f.stripes.reserve(reader->num_stripes());
    for (size_t s = 0; s < reader->num_stripes(); ++s) {
      const orc::StripeInfo& st = reader->stripe(s);
      f.stripes.push_back(StripeDensity{info.file_id, s, st.first_row, st.num_rows, 0});
    }
    plan.files.push_back(std::move(f));
  }
  // One ascending pass over every pinned attached modification, binned
  // two-pointer style: files ascend by ID and stripes tile each file's row
  // space, so both cursors only ever move forward.
  auto mods = attached_->NewScannerAt(snapshot->attached);
  size_t fi = 0;
  size_t si = 0;
  while (mods->Next()) {
    const uint64_t rid = mods->modification().record_id;
    const uint64_t fid = RecordFileId(rid);
    const uint64_t row = RecordRowNumber(rid);
    while (fi < plan.files.size() && plan.files[fi].file_id < fid) {
      ++fi;
      si = 0;
    }
    if (fi >= plan.files.size() || plan.files[fi].file_id != fid) {
      // No such master file (leftovers of an earlier rewrite): invisible to
      // UNION READ; the next publish tombstones them.
      plan.stray_record_ids.push_back(rid);
      continue;
    }
    FileCompactionPlan& f = plan.files[fi];
    while (si < f.stripes.size() && f.stripes[si].first_row + f.stripes[si].rows <= row) {
      ++si;
    }
    if (si < f.stripes.size() && row >= f.stripes[si].first_row) {
      ++f.stripes[si].delta_rows;
      ++f.delta_rows;
    } else {
      // Row number beyond the file's stripes: also unreachable garbage.
      plan.stray_record_ids.push_back(rid);
    }
  }
  DTL_RETURN_NOT_OK(mods->status());
  for (FileCompactionPlan& f : plan.files) {
    f.selected = f.rows > 0 && f.delta_rows > 0 && f.density() >= plan.threshold;
  }
  return plan;
}

Status DualTable::RewriteFileIncremental(const SnapshotPtr& snapshot,
                                         const FileCompactionPlan& file,
                                         std::vector<MasterFileInfo>* new_files,
                                         std::vector<uint64_t>* folded,
                                         IncrementalCompactStats* stats) {
  DTL_ASSIGN_OR_RETURN(auto reader,
                       master_->OpenReader(snapshot->generation, file.file_id));
  auto mods = attached_->NewScannerAt(snapshot->attached, MakeRecordId(file.file_id, 0),
                                      MakeRecordId(file.file_id + 1, 0));
  bool mod_valid = mods->Next();
  // Lazy writer: a file whose every surviving row is deleted produces no
  // replacement file at all.
  std::unique_ptr<MasterFileWriter> writer;
  for (size_t s = 0; s < reader->num_stripes(); ++s) {
    const orc::StripeInfo& info = reader->stripe(s);
    const bool dirty = s < file.stripes.size() && file.stripes[s].delta_rows > 0;
    if (!dirty) {
      // Clean stripe: carry the encoded bytes (and their CRCs/stats) across
      // verbatim — no decode, no re-encode.
      DTL_ASSIGN_OR_RETURN(std::string raw, reader->ReadRawStripe(s));
      if (writer == nullptr) {
        DTL_ASSIGN_OR_RETURN(writer, master_->NewFileWriter());
      }
      DTL_RETURN_NOT_OK(writer->AppendRawStripe(info, raw));
      ++stats->stripes_copied;
      continue;
    }
    // Dirty stripe: decode, patch updates, mask deletes, re-encode.
    DTL_ASSIGN_OR_RETURN(orc::StripeBatch batch, reader->ReadStripe(s));
    ++stats->stripes_rewritten;
    stats->rows_rewritten += batch.num_rows;
    for (size_t i = 0; i < batch.num_rows; ++i) {
      const uint64_t rid = MakeRecordId(file.file_id, batch.first_row + i);
      while (mod_valid && mods->modification().record_id < rid) {
        // Mod for a row this walk already passed (cannot normally happen);
        // its cells die with the file either way.
        folded->push_back(mods->modification().record_id);
        ++stats->mods_folded;
        mod_valid = mods->Next();
      }
      bool deleted = false;
      Row row;
      if (mod_valid && mods->modification().record_id == rid) {
        const RecordModification& mod = mods->modification();
        folded->push_back(rid);
        ++stats->mods_folded;
        if (mod.deleted) {
          deleted = true;
        } else {
          row = batch.GetRow(i);
          for (const auto& [col, value] : mod.updates) row[col] = value;
        }
        mod_valid = mods->Next();
      } else {
        row = batch.GetRow(i);
      }
      if (deleted) continue;
      if (writer == nullptr) {
        DTL_ASSIGN_OR_RETURN(writer, master_->NewFileWriter());
      }
      DTL_RETURN_NOT_OK(writer->Append(row));
    }
  }
  // Mods past the last stripe are unreachable garbage; fold them too.
  while (mod_valid) {
    folded->push_back(mods->modification().record_id);
    ++stats->mods_folded;
    mod_valid = mods->Next();
  }
  DTL_RETURN_NOT_OK(mods->status());
  if (writer != nullptr) {
    DTL_ASSIGN_OR_RETURN(auto info, writer->Close());
    new_files->push_back(std::move(info));
  }
  return Status::OK();
}

Result<IncrementalCompactStats> DualTable::CompactIncremental(obs::Tracer* tracer) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  Stopwatch watch;
  SnapshotPtr snapshot = AcquireSnapshot();
  IncrementalCompactionPlan plan;
  {
    obs::Span span(tracer, obs::names::kSpanCompactPlan);
    DTL_ASSIGN_OR_RETURN(plan, PreviewIncrementalCompactionAt(snapshot));
    span.AddRows(plan.total_delta_rows());
    span.SetDetail(std::to_string(plan.selected_files()) + "/" +
                   std::to_string(plan.files.size()) + " files >= " +
                   std::to_string(plan.threshold));
  }
  IncrementalCompactStats stats;
  stats.files_total = plan.files.size();
  stats.files_selected = plan.selected_files();
  if (stats.files_selected == 0) {
    if (!plan.stray_record_ids.empty()) {
      // Nothing to rewrite, but reclaimable garbage exists: drop it without
      // touching the master generation.
      std::lock_guard<std::mutex> snap_lock(snapshot_mu_);
      if (plan.total_delta_rows() == 0) {
        // No live deltas anywhere, so the store holds nothing a reader can
        // see besides the strays; dropping it wholesale is exact.
        DTL_RETURN_NOT_OK(attached_->Clear());
      } else {
        for (uint64_t rid : plan.stray_record_ids) {
          DTL_RETURN_NOT_OK(attached_->store()->DeleteRow(RecordIdKey(rid)));
        }
        // Tombstones alone would grow the byte debt they exist to reclaim;
        // the KV merge drops them together with the cells they mask.
        DTL_RETURN_NOT_OK(attached_->store()->Compact());
      }
      commit_ts_ = attached_->LastTimestamp();
      stats.mods_folded += plan.stray_record_ids.size();
      // Record the new attached clock so the next Open's freshness check
      // doesn't mistake this reclamation for a lost commit.
      DTL_RETURN_NOT_OK(CommitIndexMeta());
    }
    return stats;
  }

  std::vector<MasterFileInfo> new_files;
  std::vector<uint64_t> folded = plan.stray_record_ids;
  stats.mods_folded += plan.stray_record_ids.size();
  {
    obs::Span span(tracer, obs::names::kSpanCompactRewrite);
    Status st = Status::OK();
    for (const FileCompactionPlan& f : plan.files) {
      if (!f.selected) continue;
      st = RewriteFileIncremental(snapshot, f, &new_files, &folded, &stats);
      if (!st.ok()) break;
    }
    if (!st.ok()) {
      // Staged replacements never reached the manifest; delete them now
      // rather than waiting for the next Open()'s garbage collection.
      for (const MasterFileInfo& info : new_files) {
        DTL_IGNORE_STATUS(fs_->Delete(info.path),
                          "failed incremental COMPACT cleanup; next Open() collects");
      }
      return st;
    }
    span.AddRows(stats.rows_rewritten);
  }
  // Kept files carry over verbatim: same path, same file ID, so their record
  // IDs — and their still-attached deltas — stay valid across the swap.
  const std::vector<MasterFileInfo>& gen_files = snapshot->generation->files();
  bool fold_complete = true;
  for (size_t i = 0; i < gen_files.size(); ++i) {
    if (plan.files[i].selected) continue;
    new_files.push_back(gen_files[i]);
    if (plan.files[i].delta_rows > 0) fold_complete = false;
  }
  DTL_RETURN_NOT_OK(
      PublishIncrementalRewrite(std::move(new_files), folded, fold_complete));
  if (incremental_compact_hist_ != nullptr) {
    incremental_compact_hist_->ObserveSeconds(watch.ElapsedSeconds());
  }
  if (stripes_rewritten_ctr_ != nullptr) {
    stripes_rewritten_ctr_->Inc(stats.stripes_rewritten);
    stripes_copied_ctr_->Inc(stats.stripes_copied);
    mods_folded_ctr_->Inc(stats.mods_folded);
  }
  return stats;
}

Status DualTable::PublishIncrementalRewrite(std::vector<MasterFileInfo> full_set,
                                            const std::vector<uint64_t>& folded_record_ids,
                                            bool fold_complete) {
  // Caller holds mu_ (writers are serialized).
  std::unordered_set<uint64_t> dead_files;
  if (index_ != nullptr) {
    // Replacement files are the ones not yet stamped with a birth
    // generation; kept files carry their original stamp and their entries
    // are already in the index. Same entries-before-visibility ordering as
    // PublishRewrite.
    std::vector<MasterFileInfo> fresh;
    std::unordered_set<uint64_t> surviving;
    for (const MasterFileInfo& f : full_set) {
      if (f.born_generation == 0) fresh.push_back(f);
      surviving.insert(f.file_id);
    }
    DTL_RETURN_NOT_OK(IndexStagedFiles(fresh));
    DTL_RETURN_NOT_OK(index_->Sync());
    for (const MasterFileInfo& f : master_->files()) {
      if (surviving.count(f.file_id) == 0) dead_files.insert(f.file_id);
    }
  }
  // snapshot_mu_ nests inside mu_.
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  DTL_RETURN_NOT_OK(master_->ReplaceAllFiles(std::move(full_set)));
  // The manifest rename above is the commit point. Everything below only
  // reclaims attached cells whose file IDs just died; a crash that loses the
  // reclamation is harmless (UNION READ is master-driven, so cells with no
  // master row never surface) and the next incremental COMPACT re-collects
  // them as strays.
  if (fold_complete) {
    // The fold covered every live modification: the kept files had no deltas
    // and the rewritten files' deltas are now baked into the master. Drop the
    // store wholesale, exactly as a full COMPACT would.
    DTL_RETURN_NOT_OK(attached_->Clear());
  } else {
    for (uint64_t rid : folded_record_ids) {
      DTL_RETURN_NOT_OK(attached_->store()->DeleteRow(RecordIdKey(rid)));
    }
    // Physically reclaim the folded cells: tombstones alone would grow the
    // byte debt NeedsCompaction() watches; the KV merge drops them together
    // with the cells they mask, leaving only the kept files' live deltas.
    DTL_RETURN_NOT_OK(attached_->store()->Compact());
  }
  // Publish the reclamation to future snapshots. No in-flight EDIT can be
  // straddling this (mu_ serializes writers), so the store clock is quiescent.
  commit_ts_ = attached_->LastTimestamp();
  if (index_ != nullptr) {
    index_commit_ts_ = index_->LastTimestamp();
    // Post-commit fold + meta, as in PublishRewrite. snapshot_mu_ is still
    // held, which is fine: the fold touches only the index store.
    DTL_RETURN_NOT_OK(index_->FoldDeadFiles(dead_files));
    DTL_RETURN_NOT_OK(CommitIndexMeta());
  }
  return Status::OK();
}

const char* DualTable::AdaptiveTriggerReason() {
  // Delta-density proxy without a preview scan: attached cells over master
  // rows. Overcounts rows carrying several modified columns, so it fires
  // earlier than the exact per-file density — a conservative trigger; the
  // preview that follows still ranks files by the exact densities.
  const uint64_t master_rows = master_->TotalRows();
  const uint64_t cells = attached_->ApproximateCellCount();
  double density = master_rows == 0
                       ? (cells > 0 ? 1.0 : 0.0)
                       : static_cast<double>(cells) / static_cast<double>(master_rows);
  if (density > 1.0) density = 1.0;
  if (maint_density_gauge_ != nullptr) {
    maint_density_gauge_->Set(static_cast<int64_t>(density * 1e6));
  }

  uint64_t window_count = 0;
  uint64_t p95_us = 0;
  if (union_read_seconds_hist_ != nullptr) {
    obs::TelemetryClock* clock = options_.telemetry_clock != nullptr
                                     ? options_.telemetry_clock
                                     : obs::DefaultTelemetryClock();
    const uint64_t now_us = clock->NowMicros();
    union_read_seconds_hist_->MaybeRotate(now_us);
    const obs::HistogramSnapshot window = union_read_seconds_hist_->WindowSnapshot(
        static_cast<uint64_t>(options_.adaptive_window_seconds * 1e6), now_us);
    window_count = window.count;
    p95_us = window.ValueAtQuantile(0.95);
    if (maint_p95_gauge_ != nullptr) {
      maint_p95_gauge_->Set(static_cast<int64_t>(p95_us));
    }
  }

  if (density >= IncrementalDensityThreshold()) return "density";
  if (window_count >= options_.adaptive_min_window_count &&
      static_cast<double>(p95_us) > options_.adaptive_latency_slo_seconds * 1e6) {
    return "latency";
  }
  if (NeedsCompaction()) return "bytes";
  return nullptr;
}

void DualTable::BackgroundMaintenance() {
  if (maint_rounds_ctr_ != nullptr) maint_rounds_ctr_->Inc();
  if (options_.adaptive_maintenance) {
    const char* reason = AdaptiveTriggerReason();
    if (reason == nullptr) {
      // Nothing in the telemetry says work is needed: skip without scanning
      // the attached store at all (the preview scan below is the per-round
      // cost this mode exists to eliminate).
      if (maint_skips_ctr_ != nullptr) maint_skips_ctr_->Inc();
      return;
    }
    if (maint_trigger_density_ctr_ != nullptr) {
      if (reason[0] == 'd') maint_trigger_density_ctr_->Inc();
      if (reason[0] == 'l') maint_trigger_latency_ctr_->Inc();
      if (reason[0] == 'b') maint_trigger_bytes_ctr_->Inc();
    }
  }
  if (maint_preview_scans_ctr_ != nullptr) maint_preview_scans_ctr_->Inc();
  Result<IncrementalCompactionPlan> plan = PreviewIncrementalCompaction();
  if (!plan.ok()) return;  // transient failure; retried next round
  if (stripe_density_hist_ != nullptr) {
    for (const FileCompactionPlan& f : plan->files) {
      for (const StripeDensity& s : f.stripes) {
        stripe_density_hist_->Observe(static_cast<uint64_t>(s.density() * 1e6));
      }
    }
  }
  if (plan->selected_files() > 0 || !plan->stray_record_ids.empty()) {
    // CompactIncremental re-plans under mu_, so a DML statement landing
    // between this preview and the lock is still folded correctly.
    if (maint_incremental_ctr_ != nullptr) maint_incremental_ctr_->Inc();
    Result<IncrementalCompactStats> done = CompactIncremental();
    DTL_IGNORE_STATUS(done.status(),
                      "background incremental compaction is retried next round");
    return;
  }
  if (!NeedsCompaction()) return;
  if (plan->total_delta_rows() > 0) {
    // Attached bytes piled up without any single file crossing the density
    // threshold (deltas spread thin): fall back to the full rewrite. The
    // delta-rows guard keeps KV tombstone bloat alone from triggering a
    // pointless full rewrite.
    if (maint_full_ctr_ != nullptr) maint_full_ctr_->Inc();
    DTL_IGNORE_STATUS(Compact(), "background compaction failure is retried next round");
    return;
  }
  // Bytes above the threshold but zero live modifications: pure tombstone
  // bloat left behind by earlier partial folds. Reclaim it without touching
  // the master generation.
  if (maint_reclaims_ctr_ != nullptr) maint_reclaims_ctr_->Inc();
  ReclaimAttachedGarbage();
}

void DualTable::ReclaimAttachedGarbage() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  // Re-plan under the writer lock: a DML statement may have landed between
  // the caller's lock-free preview and here.
  SnapshotPtr snapshot = AcquireSnapshot();
  Result<IncrementalCompactionPlan> plan = PreviewIncrementalCompactionAt(snapshot);
  if (!plan.ok()) return;
  if (plan->total_delta_rows() > 0 || !plan->stray_record_ids.empty()) return;
  // The scanner surfaced nothing, so every cell in the store is a tombstone
  // or masked by one; dropping the store wholesale is invisible to readers.
  {
    std::lock_guard<std::mutex> snap_lock(snapshot_mu_);
    DTL_IGNORE_STATUS(attached_->Clear(),
                      "attached garbage reclamation is retried next round");
  }
  DTL_IGNORE_STATUS(CommitIndexMeta(),
                    "stale index meta only costs an Open-time rebuild");
}

void DualTable::RecordDmlObservation(const char* statement, table::DmlPlan plan,
                                     const PlanDecision& decision, double ratio,
                                     bool ratio_from_hint, bool audited,
                                     const table::DmlResult& result,
                                     double wall_seconds,
                                     const fs::IoSnapshot& io_before) {
  obs::Histogram* hist =
      plan == table::DmlPlan::kEdit ? edit_hist_ : overwrite_hist_;
  if (hist != nullptr) hist->ObserveSeconds(wall_seconds);
  if (!audited) return;
  obs::CostAuditRecord record;
  record.table = name_;
  record.statement = statement;
  record.ratio = ratio;
  record.ratio_from_hint = ratio_from_hint;
  record.predicted_edit_seconds = decision.cost_edit_seconds;
  record.predicted_overwrite_seconds = decision.cost_overwrite_seconds;
  record.predicted_plan = table::DmlPlanName(decision.plan);
  record.executed_plan = table::DmlPlanName(plan);
  record.rows_matched = result.rows_matched;
  record.measured_wall_seconds = wall_seconds;
  if (cluster_ != nullptr) {
    record.measured_modeled_seconds =
        cluster_->JobSeconds(fs_->meter()->Snapshot() - io_before);
  }
  if (options_.cost_calibration_gain > 0 && record.measured_modeled_seconds > 0) {
    // Closed loop (DESIGN.md §12): nudge the executed plan's cost scale
    // toward measured/predicted so the next decision — and the incremental-
    // compaction density threshold derived from the crossover — track
    // observed behavior instead of the open-loop paper coefficients.
    std::lock_guard<std::mutex> lock(cost_model_mu_);
    cost_model_.Calibrate(plan == table::DmlPlan::kEdit,
                          record.PredictedExecutedSeconds(),
                          record.measured_modeled_seconds,
                          options_.cost_calibration_gain);
    if (edit_scale_gauge_ != nullptr) {
      edit_scale_gauge_->Set(
          static_cast<int64_t>(cost_model_.params().edit_cost_scale * 1e6));
      overwrite_scale_gauge_->Set(
          static_cast<int64_t>(cost_model_.params().overwrite_cost_scale * 1e6));
    }
  }
  options_.cost_audit->Record(std::move(record));
}

bool DualTable::NeedsCompaction() const {
  // Called from the scheduler thread, which may race DML on the user thread.
  // Every input is individually thread-safe (the generation totals read a
  // pinned file list; the attached counts are approximate by contract), and
  // a racy decision is benign: Compact() re-checks under mu_ and a skipped
  // round is retried at the next poll.
  const uint64_t master_bytes = master_->TotalBytes();
  if (master_bytes == 0) return attached_->ApproximateCellCount() > 0;
  return static_cast<double>(attached_->ApproximateBytes()) >=
         options_.compact_threshold * static_cast<double>(master_bytes);
}

Status DualTable::CommitIndexMeta() {
  if (index_ == nullptr) return Status::OK();
  return index_->WriteMeta(master_->CurrentGeneration()->number(),
                           attached_->LastTimestamp());
}

Status DualTable::EnsureIndexFresh() {
  DTL_ASSIGN_OR_RETURN(auto meta, index_->ReadMeta());
  if (meta.has_value() &&
      meta->master_generation == master_->CurrentGeneration()->number() &&
      meta->attached_ts == attached_->LastTimestamp() &&
      meta->columns == index_->columns()) {
    return Status::OK();
  }
  return RebuildIndex();
}

Status DualTable::RebuildIndex() {
  // Only sound at Open time, before snapshots exist: ClearAll() exposes
  // missing entries to any snapshot pinned mid-rebuild. Rebuilding from the
  // UNION READ view (updated values, deleted rows absent) is exact for every
  // snapshot that can still be acquired — pre-crash history is gone.
  index_->CountRebuild();
  DTL_RETURN_NOT_OK(index_->ClearAll());
  SnapshotPtr snapshot = AcquireSnapshot();
  table::ScanSpec all;  // every column, no predicate
  DTL_ASSIGN_OR_RETURN(auto it, NewUnionRead(snapshot, all));
  while (it->Next()) {
    DTL_RETURN_NOT_OK(index_->AddRow(it->row(), it->record_id()));
  }
  DTL_RETURN_NOT_OK(it->status());
  DTL_RETURN_NOT_OK(index_->Sync());
  return CommitIndexMeta();
}

Status DualTable::IndexStagedFiles(const std::vector<MasterFileInfo>& files) {
  for (const MasterFileInfo& info : files) {
    // Staged files are not part of any generation yet; open them directly.
    DTL_ASSIGN_OR_RETURN(auto reader, orc::OrcReader::Open(fs_, info.path));
    for (size_t s = 0; s < reader->num_stripes(); ++s) {
      DTL_ASSIGN_OR_RETURN(orc::StripeBatch batch,
                           reader->ReadStripe(s, index_->columns()));
      for (size_t i = 0; i < batch.num_rows; ++i) {
        const uint64_t rid = MakeRecordId(info.file_id, batch.first_row + i);
        for (size_t c = 0; c < batch.projection.size(); ++c) {
          DTL_RETURN_NOT_OK(
              index_->Add(batch.projection[c], batch.columns[c][i], rid));
        }
      }
    }
  }
  return Status::OK();
}

Result<std::vector<std::pair<uint64_t, Row>>> DualTable::IndexLookupAt(
    const SnapshotPtr& snapshot, size_t column, const std::vector<Value>& probes,
    const table::ScanSpec& spec) {
  if (index_ == nullptr || !index_->IndexesColumn(column)) {
    return Status::InvalidArgument("no secondary index on the probed column");
  }
  if (snapshot == nullptr || !snapshot->has_index) {
    return Status::InvalidArgument("snapshot does not pin the secondary index");
  }
  // Candidate record IDs across all probes, deduplicated and ascending —
  // record-ID order is scan order, so the verified output matches what a
  // full UNION READ with the same predicate would emit.
  std::vector<uint64_t> rids;
  for (const Value& probe : probes) {
    DTL_ASSIGN_OR_RETURN(std::vector<uint64_t> part,
                         index_->LookupAt(snapshot->index, column, probe));
    rids.insert(rids.end(), part.begin(), part.end());
  }
  std::sort(rids.begin(), rids.end());
  rids.erase(std::unique(rids.begin(), rids.end()), rids.end());

  const size_t num_fields = schema_.num_fields();
  std::vector<size_t> required = spec.RequiredColumns(num_fields);
  if (!required.empty() &&
      std::find(required.begin(), required.end(), column) == required.end()) {
    // The verify step must read the indexed column even when the consumer
    // doesn't project it.
    required.push_back(column);
    std::sort(required.begin(), required.end());
  }

  std::vector<std::pair<uint64_t, Row>> out;
  const std::vector<MasterFileInfo>& files = snapshot->generation->files();
  size_t file_pos = 0;  // ascending rids -> the file cursor only moves forward
  std::shared_ptr<orc::OrcReader> reader;
  std::shared_ptr<const orc::StripeBatch> stripe;
  for (uint64_t rid : rids) {
    const uint64_t file_id = RecordFileId(rid);
    const uint64_t row_no = RecordRowNumber(rid);
    while (file_pos < files.size() && files[file_pos].file_id < file_id) ++file_pos;
    if (file_pos >= files.size() || files[file_pos].file_id != file_id) {
      // Entry for a file outside the pinned generation (replaced by a
      // COMPACT, or staged by an uncommitted INSERT): stale, drop.
      index_->CountStaleSkipped();
      continue;
    }
    if (reader == nullptr || reader->file_id() != file_id) {
      DTL_ASSIGN_OR_RETURN(reader, master_->OpenReader(snapshot->generation, file_id));
      stripe.reset();
    }
    if (row_no >= reader->num_rows()) {
      index_->CountStaleSkipped();
      continue;
    }
    DTL_ASSIGN_OR_RETURN(auto mod, attached_->GetModificationAt(snapshot->attached, rid));
    if (mod.has_value() && mod->deleted) {
      index_->CountStaleSkipped();
      continue;
    }
    if (stripe == nullptr || row_no < stripe->first_row ||
        row_no >= stripe->first_row + stripe->num_rows) {
      // Binary-search the stripe that holds the row, then fetch it through
      // the shared cache: hot stripes decode once per generation process-wide.
      size_t lo = 0;
      size_t hi = reader->num_stripes();
      while (lo + 1 < hi) {
        const size_t mid = (lo + hi) / 2;
        if (reader->stripe(mid).first_row <= row_no) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      DTL_ASSIGN_OR_RETURN(stripe, reader->ReadStripeShared(lo, required));
    }
    const size_t local = static_cast<size_t>(row_no - stripe->first_row);
    Row row(num_fields, Value::Null());
    for (size_t c = 0; c < stripe->projection.size(); ++c) {
      row[stripe->projection[c]] = stripe->columns[c][local];
    }
    if (mod.has_value()) {
      // Patch every updated column, matching UNION READ exactly (it patches
      // beyond the required set too).
      for (const auto& [col, value] : mod->updates) {
        if (col < num_fields) row[col] = value;
      }
    }
    // Re-verify the indexed column against the probes: stale entries (the
    // value moved off the probe since the entry was written) are dropped
    // here, never served. This is what makes extra entries harmless.
    bool matches = false;
    if (!row[column].is_null()) {
      for (const Value& probe : probes) {
        if (row[column].Compare(probe) == 0) {
          matches = true;
          break;
        }
      }
    }
    if (!matches) {
      index_->CountStaleSkipped();
      continue;
    }
    if (spec.predicate && !spec.predicate(row)) continue;
    out.emplace_back(rid, std::move(row));
  }
  return out;
}

Status DualTable::Drop() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  DTL_RETURN_NOT_OK(master_->Drop());
  if (index_ != nullptr) DTL_RETURN_NOT_OK(index_->Drop());
  return attached_->Drop();
}

}  // namespace dtl::dual
