#include "dualtable/union_read.h"

#include "common/check.h"
#include "table/scan_stats.h"

namespace dtl::dual {

UnionReadIterator::UnionReadIterator(std::unique_ptr<MasterScanIterator> master,
                                     std::unique_ptr<ModificationScanner> attached,
                                     table::RowPredicateFn predicate, size_t num_fields)
    : master_(std::move(master)),
      attached_(std::move(attached)),
      predicate_(std::move(predicate)),
      num_fields_(num_fields) {}

const RecordModification* UnionReadIterator::AttachedAt(uint64_t id) {
  if (!attached_primed_) {
    attached_valid_ = attached_->Next();
    attached_primed_ = true;
  }
  while (attached_valid_ && attached_->modification().record_id < id) {
    attached_valid_ = attached_->Next();
  }
  if (!attached_->status().ok()) {
    status_ = attached_->status();
    return nullptr;
  }
  if (attached_valid_ && attached_->modification().record_id == id) {
    return &attached_->modification();
  }
  return nullptr;
}

bool UnionReadIterator::Next() {
  if (!status_.ok()) return false;
  while (master_->Next()) {
    const uint64_t id = master_->record_id();
    const RecordModification* mod = AttachedAt(id);
    if (!status_.ok()) return false;
    current_modified_ = mod != nullptr;
    if (mod != nullptr && mod->deleted) continue;
    row_ = master_->row();
    if (mod != nullptr) {
      for (const auto& [column, value] : mod->updates) {
        if (column < num_fields_) row_[column] = value;
      }
    }
    if (predicate_ && !predicate_(row_)) continue;
    record_id_ = id;
    return true;
  }
  status_ = master_->status();
  return false;
}

// --- UnionReadBatchIterator --------------------------------------------------------

UnionReadBatchIterator::UnionReadBatchIterator(
    std::unique_ptr<MasterScanBatchIterator> master,
    std::unique_ptr<ModificationScanner> attached, table::RowPredicateFn predicate,
    size_t num_fields, table::ScanMeter* meter)
    : master_(std::move(master)),
      attached_(std::move(attached)),
      predicate_(std::move(predicate)),
      num_fields_(num_fields),
      meter_(meter) {}

table::ScanMeter& UnionReadBatchIterator::meter() {
  return meter_ != nullptr ? *meter_ : table::GlobalScanMeter();
}

bool UnionReadBatchIterator::ApplyModifications(table::RowBatch* batch) {
  if (!attached_primed_) {
    attached_valid_ = attached_->Next();
    attached_primed_ = true;
    if (!attached_->status().ok()) {
      status_ = attached_->status();
      return false;
    }
  }
  const size_t n = batch->num_rows();
  // The whole merge rests on two orderings: master batches carry contiguous
  // record IDs (each batch is a slice of one stripe) and arrive in
  // nondecreasing ID order, so the attached stream can be consumed in one
  // forward pass.
  DTL_CHECK(batch->contiguous_record_ids());
  const uint64_t first_id = batch->record_id(0);
  const uint64_t last_id = first_id + (n - 1);
  DTL_DCHECK_GE(first_id, next_expected_id_);
  next_expected_id_ = last_id + 1;
  while (attached_valid_ && attached_->modification().record_id < first_id) {
    attached_valid_ = attached_->Next();
  }
  if (!attached_->status().ok()) {
    status_ = attached_->status();
    return false;
  }
  if (!attached_valid_ || attached_->modification().record_id > last_id) {
    // No modification touches this batch: the stripe views flow through
    // untouched. This is the whole point of the batch merge.
    meter().AddPassthroughBatch();
    return true;
  }

  std::vector<bool> deleted;
  size_t num_deleted = 0;
  size_t num_patched = 0;
  while (attached_valid_ && attached_->modification().record_id <= last_id) {
    const RecordModification& mod = attached_->modification();
    const size_t idx = static_cast<size_t>(mod.record_id - first_id);
    if (mod.deleted) {
      if (deleted.empty()) deleted.assign(n, false);
      if (!deleted[idx]) {
        deleted[idx] = true;
        ++num_deleted;
      }
    } else {
      bool touched = false;
      for (const auto& [column, value] : mod.updates) {
        if (column >= num_fields_) continue;
        batch->column(column).MakeMutable(n)[idx] = value;
        touched = true;
      }
      if (touched) ++num_patched;
    }
    attached_valid_ = attached_->Next();
  }
  if (!attached_->status().ok()) {
    status_ = attached_->status();
    return false;
  }

  if (num_deleted > 0) {
    std::vector<uint32_t> selection;
    selection.reserve(n - num_deleted);
    for (size_t i = 0; i < n; ++i) {
      if (!deleted[i]) selection.push_back(static_cast<uint32_t>(i));
    }
    batch->SetSelection(std::move(selection));
    meter().AddMaskedRows(num_deleted);
  }
  if (num_patched > 0) meter().AddPatchedRows(num_patched);
  return true;
}

bool UnionReadBatchIterator::Next(table::RowBatch* batch) {
  if (!status_.ok()) return false;
  while (master_->Next(batch)) {
    if (batch->num_rows() == 0) continue;
    if (!ApplyModifications(batch)) return false;
    if (predicate_) batch->FilterSelected(predicate_, &scratch_, meter_);
    if (batch->size() == 0) continue;  // every row deleted or filtered out
    return true;
  }
  if (!master_->status().ok()) status_ = master_->status();
  return false;
}

}  // namespace dtl::dual
