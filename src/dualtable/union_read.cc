#include "dualtable/union_read.h"

namespace dtl::dual {

UnionReadIterator::UnionReadIterator(std::unique_ptr<MasterScanIterator> master,
                                     std::unique_ptr<ModificationScanner> attached,
                                     table::RowPredicateFn predicate, size_t num_fields)
    : master_(std::move(master)),
      attached_(std::move(attached)),
      predicate_(std::move(predicate)),
      num_fields_(num_fields) {}

const RecordModification* UnionReadIterator::AttachedAt(uint64_t id) {
  if (!attached_primed_) {
    attached_valid_ = attached_->Next();
    attached_primed_ = true;
  }
  while (attached_valid_ && attached_->modification().record_id < id) {
    attached_valid_ = attached_->Next();
  }
  if (!attached_->status().ok()) {
    status_ = attached_->status();
    return nullptr;
  }
  if (attached_valid_ && attached_->modification().record_id == id) {
    return &attached_->modification();
  }
  return nullptr;
}

bool UnionReadIterator::Next() {
  if (!status_.ok()) return false;
  while (master_->Next()) {
    const uint64_t id = master_->record_id();
    const RecordModification* mod = AttachedAt(id);
    if (!status_.ok()) return false;
    current_modified_ = mod != nullptr;
    if (mod != nullptr && mod->deleted) continue;
    row_ = master_->row();
    if (mod != nullptr) {
      for (const auto& [column, value] : mod->updates) {
        if (column < num_fields_) row_[column] = value;
      }
    }
    if (predicate_ && !predicate_(row_)) continue;
    record_id_ = id;
    return true;
  }
  status_ = master_->status();
  return false;
}

}  // namespace dtl::dual
