// DualTable record IDs (paper §V-B): the unique ID of a row is the
// concatenation of its master file's ID (assigned from the system-wide
// metadata table when a writer creates the file) and its row number within
// that file (recovered for free while reading ORC).
//
// Packed as (file_id << 40) | row_number and rendered big-endian as the
// attached table's HBase row key, so lexicographic key order equals
// (file, row) order — the property that makes UNION READ a linear merge of
// two sorted streams.
#pragma once

#include <cstdint>
#include <string>

#include "common/coding.h"

namespace dtl::dual {

inline constexpr int kRowNumberBits = 40;
inline constexpr uint64_t kRowNumberMask = (1ull << kRowNumberBits) - 1;
inline constexpr uint64_t kMaxFileId = (1ull << (64 - kRowNumberBits)) - 1;

/// Packs a (file, row) pair; file_id must fit 24 bits, row_number 40 bits.
inline uint64_t MakeRecordId(uint64_t file_id, uint64_t row_number) {
  return (file_id << kRowNumberBits) | (row_number & kRowNumberMask);
}

inline uint64_t RecordFileId(uint64_t record_id) { return record_id >> kRowNumberBits; }
inline uint64_t RecordRowNumber(uint64_t record_id) { return record_id & kRowNumberMask; }

/// Big-endian 8-byte row key; memcmp order == numeric order.
inline std::string RecordIdKey(uint64_t record_id) {
  std::string key;
  PutBigEndian64(&key, record_id);
  return key;
}

inline uint64_t RecordIdFromKey(const std::string& key) {
  return DecodeBigEndian64(key.data());
}

}  // namespace dtl::dual
