// The system-wide metadata table (paper §V-B): an HBase-backed counter map
// that hands out incremental file IDs per DualTable, plus bookkeeping used
// by the cost evaluator (update-ratio history).
#pragma once

#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "fs/filesystem.h"
#include "kv/store.h"

namespace dtl::dual {

/// Cluster-wide metadata service. One instance per simulated deployment.
class MetadataTable {
 public:
  static Result<std::unique_ptr<MetadataTable>> Open(fs::SimFileSystem* fs,
                                                     const std::string& dir = "/hbase/_meta");

  /// Returns the next unique master-file ID for `table_name` (1-based) and
  /// persists the increment.
  Result<uint64_t> NextFileId(const std::string& table_name);

  /// Records the observed modification ratio of a DML statement so later
  /// statements can be costed from history (paper: "estimated using
  /// historical analysis of the execution log").
  Status RecordModificationRatio(const std::string& table_name, double ratio);

  /// Exponentially-weighted historical modification ratio, or `fallback`
  /// when no history exists.
  Result<double> HistoricalModificationRatio(const std::string& table_name,
                                             double fallback);

 private:
  explicit MetadataTable(std::unique_ptr<kv::KvStore> store) : store_(std::move(store)) {}

  std::mutex mu_;
  std::unique_ptr<kv::KvStore> store_;
};

}  // namespace dtl::dual
