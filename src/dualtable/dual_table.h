// DualTable (paper §III): the hybrid-storage table. Batch data lives in the
// ORC-on-HDFS Master Table; record modifications live in the HBase-backed
// Attached Table; reads go through UNION READ; UPDATE/DELETE choose between
// the OVERWRITE plan and the EDIT plan with the §IV cost model; COMPACT
// folds the attached table back into a new master generation.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/background_scheduler.h"
#include "common/thread_pool.h"
#include "dualtable/attached_table.h"
#include "dualtable/cost_model.h"
#include "dualtable/master_table.h"
#include "dualtable/metadata.h"
#include "dualtable/secondary_index.h"
#include "dualtable/snapshot.h"
#include "dualtable/union_read.h"
#include "fs/cluster_model.h"
#include "table/storage_table.h"

namespace dtl::obs {
class CostAudit;
class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
class TelemetryClock;
class Tracer;
}  // namespace dtl::obs

namespace dtl::dual {

/// Delta density of one master stripe: the fraction of its rows with at
/// least one attached modification. The incremental-COMPACT planner bins
/// attached record IDs into stripe row windows to compute these.
struct StripeDensity {
  uint64_t file_id = 0;
  size_t stripe_index = 0;
  uint64_t first_row = 0;
  uint64_t rows = 0;
  uint64_t delta_rows = 0;  // modified records in [first_row, first_row+rows)

  double density() const {
    return rows == 0 ? 0.0 : static_cast<double>(delta_rows) / static_cast<double>(rows);
  }
};

/// One master file's rollup in an incremental-COMPACT plan. The swap unit is
/// the file (record IDs are immutable, so a stripe cannot move between files
/// without invalidating its rows' attached keys); stripe densities decide
/// which stripes inside a selected file are re-encoded vs raw-copied.
struct FileCompactionPlan {
  uint64_t file_id = 0;
  uint64_t rows = 0;
  uint64_t bytes = 0;
  uint64_t delta_rows = 0;
  bool selected = false;  // density() >= the plan threshold
  std::vector<StripeDensity> stripes;

  double density() const {
    return rows == 0 ? 0.0 : static_cast<double>(delta_rows) / static_cast<double>(rows);
  }
};

/// Read-only incremental-COMPACT plan: what CompactIncremental WOULD rewrite.
/// EXPLAIN COMPACT INCREMENTAL renders it; the background maintenance job
/// uses it to pick work; CompactIncremental executes it.
struct IncrementalCompactionPlan {
  double threshold = 0.0;  // density at/above which a file is rewritten
  std::vector<FileCompactionPlan> files;  // ascending file_id
  /// Attached record IDs whose file is not in the generation (leftovers from
  /// earlier rewrites); invisible to UNION READ, tombstoned at publish.
  std::vector<uint64_t> stray_record_ids;

  size_t selected_files() const;
  uint64_t total_delta_rows() const;
  std::string ToString() const;  // EXPLAIN rendering, one line per file
};

/// What one CompactIncremental call actually did.
struct IncrementalCompactStats {
  size_t files_total = 0;
  size_t files_selected = 0;
  size_t stripes_rewritten = 0;  // decoded, patched, re-encoded
  size_t stripes_copied = 0;     // clean: raw byte copy, no decode
  uint64_t rows_rewritten = 0;   // rows in re-encoded stripes (pre-delete)
  uint64_t mods_folded = 0;      // attached records folded into the master

  std::string ToString() const;
};

struct DualTableOptions {
  orc::WriterOptions writer_options;
  kv::KvStoreOptions attached_options;  // dir is derived from the table name
  std::string warehouse_dir = "/warehouse";
  CostModelParams cost_params;

  /// Plan selection: the cost model (paper default), or forced plans for the
  /// "DualTable EDIT" series and ablations in the evaluation.
  enum class PlanMode { kCostModel, kForceEdit, kForceOverwrite };
  PlanMode plan_mode = PlanMode::kCostModel;

  /// Rows per master file written by OVERWRITE/COMPACT (keeps per-file
  /// parallelism comparable to the pre-rewrite layout).
  uint64_t rewrite_file_rows = 1ull << 20;

  /// Fallback modification ratio when a statement carries no hint and the
  /// metadata table has no history yet.
  double default_modification_ratio = 0.01;

  /// When the attached table holds at least this fraction of master bytes,
  /// Scan suggests compaction (surfaced via NeedsCompaction()).
  double compact_threshold = 0.25;

  /// Compact automatically after a DML statement pushes the attached table
  /// past the threshold (the paper schedules COMPACT to off-line hours; this
  /// is the inline alternative).
  bool auto_compact = false;

  /// Stripe delta density at/above which incremental COMPACT rewrites a
  /// file. Negative (the default) derives the threshold from the cost
  /// model's calibrated update crossover ratio — the density where folding
  /// deltas into the master becomes cheaper than keeping them attached.
  double incremental_density_override = -1.0;

  /// Closed-loop cost-model calibration gain (DESIGN.md §12). After every
  /// audited kCostModel statement, the executed plan's cost scale moves by
  /// (measured/predicted)^gain. 0 (the default) keeps the open-loop paper
  /// model. Requires `cost_audit` to be wired (the audit record carries the
  /// modelled actuals the loop feeds on).
  double cost_calibration_gain = 0.0;

  /// Route Scan/ScanBatches/CreateSplits/ScanAsOf through the vectorized
  /// UNION READ (RowBatch pipeline). Off = the original row-at-a-time merge,
  /// kept as the comparison baseline (see ScanLegacyRows).
  bool enable_batch_scan = true;

  /// Rows per RowBatch emitted by the vectorized scan. Small values exercise
  /// batch/stripe boundary handling in tests.
  size_t scan_batch_rows = table::kDefaultBatchRows;

  /// Worker pool for parallel COMPACT (one rewrite job per master file, one
  /// manifest commit at the end). nullptr or <2 master files = serial
  /// rewrite. Not owned; must outlive the table.
  ThreadPool* pool = nullptr;

  /// Background maintenance scheduler. When set together with
  /// `background_compaction`, the table registers a poll job that runs
  /// BackgroundMaintenance() every round: incremental COMPACT of the densest
  /// files when any cross the threshold, full COMPACT as the fallback when
  /// attached bytes pile up below it — so compaction debt is paid even on
  /// write-only workloads that never scan.
  std::shared_ptr<BackgroundScheduler> scheduler;
  bool background_compaction = false;

  /// Obs-driven adaptive maintenance (DESIGN.md §14). When on, a maintenance
  /// round first consults live telemetry — the attached-delta density gauge,
  /// the windowed union-read latency p95 vs the SLO below, and the byte
  /// debt — and SKIPS the round without any preview scan unless a trigger
  /// fires; once triggered, the preview still ranks stripes exactly as
  /// before. Off (the default) keeps the preview-every-round behavior.
  /// Requires `metrics` (the triggers read registry histograms).
  bool adaptive_maintenance = false;
  /// Latency trigger: fires when the union-read wall-seconds p95 over the
  /// window exceeds this.
  double adaptive_latency_slo_seconds = 0.050;
  /// How far back the latency window looks.
  double adaptive_window_seconds = 8.0;
  /// Minimum observations inside the window before the latency trigger may
  /// fire (a p95 of three reads is noise).
  uint64_t adaptive_min_window_count = 16;
  /// Clock driving window rotation in maintenance rounds. nullptr = the
  /// process steady clock; tests inject a ManualTelemetryClock.
  obs::TelemetryClock* telemetry_clock = nullptr;

  /// Column ordinals to maintain a KV-hosted secondary index over (point
  /// lookup serving tier). Only int64/date/string columns are indexable;
  /// Open rejects anything else. Empty = no index.
  std::vector<size_t> indexed_columns;

  /// Shared decoded-stripe cache for this table's master readers. nullptr =
  /// the process-wide StripeCache::Default(). Not owned; must outlive the
  /// table.
  orc::StripeCache* stripe_cache = nullptr;

  /// Observability hooks (both optional, not owned; must outlive the table).
  /// `metrics` receives the EDIT/OVERWRITE/COMPACT duration histograms and
  /// the UNION READ rows histogram, labeled by table name. `cost_audit`
  /// receives one record per PlanMode::kCostModel UPDATE/DELETE decision,
  /// pairing the predicted EDIT-vs-OVERWRITE costs with measured actuals.
  obs::MetricsRegistry* metrics = nullptr;
  obs::CostAudit* cost_audit = nullptr;
};

class DualTable : public table::StorageTable {
 public:
  /// Opens or creates the DualTable `name` (CREATE in paper §III-C makes
  /// both the master and the attached table).
  static Result<std::shared_ptr<DualTable>> Open(fs::SimFileSystem* fs,
                                                 MetadataTable* metadata,
                                                 const fs::ClusterModel* cluster,
                                                 const std::string& name, Schema schema,
                                                 DualTableOptions options = {});

  /// Unregisters from the background scheduler (blocking out an in-flight
  /// poll) before members are destroyed.
  ~DualTable() override;

  // --- StorageTable interface ---
  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }
  Result<std::unique_ptr<table::RowIterator>> Scan(const table::ScanSpec& spec) override;
  Result<std::unique_ptr<table::BatchIterator>> ScanBatches(
      const table::ScanSpec& spec) override;
  Result<std::vector<table::ScanSplit>> CreateSplits(const table::ScanSpec& spec) override;
  Status InsertRows(const std::vector<Row>& rows) override;
  /// INSERT OVERWRITE TABLE: a fresh master generation + empty attached.
  Status OverwriteRows(const std::vector<Row>& rows) override;
  Result<table::DmlResult> Update(const table::ScanSpec& filter,
                                  const std::vector<table::Assignment>& assignments) override;
  Result<table::DmlResult> Delete(const table::ScanSpec& filter) override;
  Status Drop() override;

  // --- MVCC snapshots ---

  /// Pins the table's current committed state: the master generation plus
  /// the attached store at the last published commit timestamp, captured
  /// atomically. Scans built from the snapshot return byte-identical results
  /// to a scan executed at acquisition time, no matter how many EDITs,
  /// COMPACTs, or OVERWRITEs commit meanwhile. Unsynced (unacknowledged)
  /// EDIT cells are invisible. Releasing the last SnapshotPtr unpins the
  /// generation and lets deferred file GC run.
  SnapshotPtr AcquireSnapshot() const;

  /// Snapshot-pinned scans: the explicit-snapshot forms of Scan/ScanBatches.
  /// The snapshot-less overloads above acquire one per call, so every read
  /// through this table is snapshot-isolated; use these to hold one view
  /// across several scans (a SQL statement, a parallel scan's morsels).
  Result<std::unique_ptr<table::RowIterator>> ScanAt(const SnapshotPtr& snapshot,
                                                     const table::ScanSpec& spec);
  Result<std::unique_ptr<table::BatchIterator>> ScanBatchesAt(const SnapshotPtr& snapshot,
                                                              const table::ScanSpec& spec);

  /// Morsel planning against a pinned snapshot; pair with
  /// NewUnionReadBatchForMorselAt on the SAME snapshot so planned morsels
  /// and per-morsel scans agree on the file set.
  Result<std::vector<ScanMorsel>> PlanScanMorselsAt(const SnapshotPtr& snapshot,
                                                    const table::ScanSpec& spec,
                                                    size_t stripes_per_morsel);
  Result<std::unique_ptr<UnionReadBatchIterator>> NewUnionReadBatchForMorselAt(
      const SnapshotPtr& snapshot, const ScanMorsel& morsel, const table::ScanSpec& spec,
      table::ScanMeter* meter);

  /// Tracker behind the snapshot.* metric views.
  const SnapshotTracker* snapshot_tracker() const { return snapshot_tracker_.get(); }

  /// EDIT commit: publishes the attached store's clock as the new commit
  /// timestamp, making everything written so far visible to snapshots
  /// acquired afterwards. The DML paths call this after their WAL sync;
  /// code writing through attached() directly (UDTF-style extensions,
  /// white-box tests) must call it itself or its cells stay invisible.
  void PublishEditCommit();

  // --- DualTable-specific operations ---

  /// UPDATE with an explicit modification-ratio hint for the cost model
  /// ("directly be given by the designer").
  Result<table::DmlResult> UpdateWithHint(const table::ScanSpec& filter,
                                          const std::vector<table::Assignment>& assignments,
                                          std::optional<double> ratio_hint);

  Result<table::DmlResult> DeleteWithHint(const table::ScanSpec& filter,
                                          std::optional<double> ratio_hint);

  /// COMPACT (paper §III-C): UNION READ into a new master generation, then
  /// clear the attached table. Blocks every other writer on this table.
  Status Compact();

  /// Incremental COMPACT: rewrites only the master files whose attached
  /// delta density crosses the cost-model threshold (clean stripes inside a
  /// rewritten file are raw-copied without decoding), publishes the swapped
  /// file set through the same manifest commit as full COMPACT, then
  /// tombstones exactly the folded records' attached cells. Kept files and
  /// their attached deltas are untouched, so read-after-update latency stays
  /// flat instead of saw-toothing on full rewrites. `tracer` (optional)
  /// receives compact-plan / compact-rewrite spans for EXPLAIN ANALYZE.
  Result<IncrementalCompactStats> CompactIncremental(obs::Tracer* tracer = nullptr);

  /// Plan-only view of what CompactIncremental would do right now: per-file
  /// and per-stripe delta densities plus the selection threshold. Makes no
  /// writes; safe from any thread.
  Result<IncrementalCompactionPlan> PreviewIncrementalCompaction();

  /// The density at/above which a file is rewritten: the explicit override
  /// when set, else the calibrated cost model's update crossover ratio for
  /// the current master size.
  double IncrementalDensityThreshold() const;

  /// One background-scheduler round of maintenance: observes stripe
  /// densities into the metrics histogram, runs incremental COMPACT when the
  /// plan selects files, and falls back to full COMPACT when attached bytes
  /// exceed the threshold without any single file being dense enough. With
  /// options_.adaptive_maintenance the round starts with a telemetry check
  /// (AdaptiveTriggerReason) and skips all of the above — preview scan
  /// included — until a trigger fires.
  void BackgroundMaintenance();

  /// True when the attached table exceeds the compaction threshold.
  bool NeedsCompaction() const;

  /// Splits the up-to-date view into stripe-aligned morsels for a parallel
  /// scan (see MasterTable::PlanMorsels). Uses the same bounds treatment as
  /// a serial scan, so morsels cover exactly the stripes a serial scan would
  /// decode.
  Result<std::vector<ScanMorsel>> PlanScanMorsels(const table::ScanSpec& spec,
                                                  size_t stripes_per_morsel);

  /// UNION READ over one morsel: the master stripe range merged with the
  /// attached modifications in the morsel's record-ID window. `meter`
  /// (worker-local; may be null for the global meter) receives the morsel's
  /// scan counts. Order-insensitive consumers may run many of these
  /// concurrently; within a morsel, batches arrive in record-ID order.
  Result<std::unique_ptr<UnionReadBatchIterator>> NewUnionReadBatchForMorsel(
      const ScanMorsel& morsel, const table::ScanSpec& spec, table::ScanMeter* meter);

  /// The original row-at-a-time UNION READ, regardless of enable_batch_scan.
  /// Kept for the batch-vs-row equivalence tests and the scan benchmarks.
  Result<std::unique_ptr<table::RowIterator>> ScanLegacyRows(const table::ScanSpec& spec);

  /// Snapshot read: the table as it looked when the attached table's clock
  /// was at `as_of` (see AttachedTable::LastTimestamp). Built on the HBase
  /// multi-version feature the paper highlights in §V-C; only history since
  /// the last COMPACT/OVERWRITE is reconstructible (both reset the clock).
  Result<std::unique_ptr<table::RowIterator>> ScanAsOf(const table::ScanSpec& spec,
                                                       uint64_t as_of);

  /// Cost-model decision that WOULD be taken for the given parameters
  /// (exposed for the cost-model ablation bench).
  PlanDecision PreviewUpdateDecision(double alpha) const;
  PlanDecision PreviewDeleteDecision(double beta) const;

  // --- Secondary index (point-lookup serving tier) ---

  /// Index-driven point lookup: resolves candidate record IDs for the probe
  /// values through the pinned index snapshot, fetches exactly the stripes
  /// holding them (through the shared stripe cache), patches attached
  /// modifications, and re-verifies the indexed column against the probes —
  /// so stale index entries are dropped, never served. Results are
  /// (record_id, row) pairs in ascending record-ID order, i.e. exactly the
  /// order and content a full UNION READ scan with `WHERE col IN (probes)`
  /// under the same snapshot would produce. Rows are projected per
  /// spec.projection (full width when empty) and filtered by spec.predicate.
  /// Fails when `column` is not indexed.
  Result<std::vector<std::pair<uint64_t, Row>>> IndexLookupAt(
      const SnapshotPtr& snapshot, size_t column, const std::vector<Value>& probes,
      const table::ScanSpec& spec);

  /// nullptr when options.indexed_columns is empty.
  SecondaryIndex* secondary_index() { return index_.get(); }

  MasterTable* master() { return master_.get(); }
  AttachedTable* attached() { return attached_.get(); }
  const CostModel& cost_model() const { return cost_model_; }
  /// Point-in-time copy of the cost-model coefficients (the calibration loop
  /// mutates them; a copy keeps cross-thread readers race-free).
  CostModelParams cost_model_params() const;
  /// Plan used by the most recent UPDATE/DELETE.
  table::DmlPlan last_plan() const { return last_plan_; }

 private:
  DualTable(fs::SimFileSystem* fs, MetadataTable* metadata, std::string name,
            Schema schema, DualTableOptions options, const fs::ClusterModel* cluster)
      : fs_(fs),
        metadata_(metadata),
        name_(std::move(name)),
        schema_(std::move(schema)),
        options_(std::move(options)),
        cluster_(cluster),
        cost_model_(cluster, options_.cost_params) {}

  // All internal UNION READ constructors read from an explicit snapshot;
  // there is no latest-visible read path left (lint rule 8).
  Result<std::unique_ptr<UnionReadIterator>> NewUnionRead(const SnapshotPtr& snapshot,
                                                          const table::ScanSpec& spec);
  Result<std::unique_ptr<UnionReadIterator>> NewUnionReadForFile(
      const SnapshotPtr& snapshot, uint64_t file_id, const table::ScanSpec& spec);
  Result<std::unique_ptr<UnionReadBatchIterator>> NewUnionReadBatch(
      const SnapshotPtr& snapshot, const table::ScanSpec& spec,
      uint64_t as_of = UINT64_MAX);
  Result<std::unique_ptr<UnionReadBatchIterator>> NewUnionReadBatchForFile(
      const SnapshotPtr& snapshot, uint64_t file_id, const table::ScanSpec& spec);
  /// Clears stripe-stat bounds when the snapshot's attached state could
  /// invalidate them.
  table::ScanSpec MasterSpecFor(const table::ScanSpec& spec,
                                const SnapshotPtr& snapshot) const;

  /// COMPACT/OVERWRITE commit: swaps in the new master file set and clears
  /// the attached store as one atomic visibility event — a concurrent
  /// AcquireSnapshot sees either the old (generation, deltas) pair or the
  /// new (generation, empty) pair, never a torn mix.
  Status PublishRewrite(std::vector<MasterFileInfo> new_files);

  /// Incremental-COMPACT commit: swaps in `full_set` (kept files + rewritten
  /// replacements), then reclaims the folded attached cells — deltas of kept
  /// files survive. With `fold_complete` (no kept file held deltas) the store
  /// is cleared wholesale like a full COMPACT; otherwise `folded_record_ids`
  /// are tombstoned and the KV store merged to physically drop them. The
  /// manifest rename inside ReplaceAllFiles is the commit point; the
  /// reclamation is post-commit cleanup of cells whose file IDs just died
  /// (invisible to UNION READ either way).
  Status PublishIncrementalRewrite(std::vector<MasterFileInfo> full_set,
                                   const std::vector<uint64_t>& folded_record_ids,
                                   bool fold_complete);

  /// Drops the attached store when it holds only dead weight (tombstones and
  /// the cells they mask): re-plans under mu_ and clears the store iff the
  /// scan surfaces zero modifications. Called by BackgroundMaintenance when
  /// the byte debt crosses the compact threshold with no live deltas behind
  /// it.
  void ReclaimAttachedGarbage();

  /// Adaptive-maintenance decision (DESIGN.md §14): rotates the union-read
  /// latency window to "now", updates the decision gauges, and returns the
  /// trigger reason — "density" / "latency" / "bytes" — or nullptr when the
  /// round should be skipped. Reads only O(1) gauges and the histogram ring;
  /// never scans the attached store.
  const char* AdaptiveTriggerReason();

  /// Plan computation against a pinned snapshot (one attached scan, binned
  /// into stripe row windows two-pointer style).
  Result<IncrementalCompactionPlan> PreviewIncrementalCompactionAt(
      const SnapshotPtr& snapshot) const;

  /// Rewrites one selected file into (at most) one replacement: dirty
  /// stripes are decoded/patched/masked, clean stripes raw-copied. Appends
  /// the replacement's info to `new_files` (nothing when every row was
  /// deleted) and the folded record IDs to `folded`.
  Status RewriteFileIncremental(const SnapshotPtr& snapshot, const FileCompactionPlan& file,
                                std::vector<MasterFileInfo>* new_files,
                                std::vector<uint64_t>* folded,
                                IncrementalCompactStats* stats);

  /// Open-time index recovery: compares the index meta row against the
  /// table's (master generation, attached clock, column set) and rebuilds
  /// from a full UNION READ scan on any mismatch — the crash-consistency
  /// backstop for the stale-tolerant maintenance protocol.
  Status EnsureIndexFresh();
  Status RebuildIndex();

  /// Indexes freshly written (not yet visible) master files by streaming
  /// their indexed-column projection straight from ORC. Called BEFORE the
  /// generation swap so no snapshot can need entries that are not yet
  /// synced.
  Status IndexStagedFiles(const std::vector<MasterFileInfo>& files);

  /// Records the just-committed table state in the index meta row. Called
  /// after every visibility event; a crash beforehand only costs an
  /// Open-time rebuild.
  Status CommitIndexMeta();

  /// Builds the scan spec a DML statement needs (filter + assignment inputs).
  table::ScanSpec DmlScanSpec(const table::ScanSpec& filter,
                              const std::vector<table::Assignment>& assignments) const;

  Result<table::DmlResult> ExecuteEditUpdate(const table::ScanSpec& filter,
                                             const std::vector<table::Assignment>& assignments);
  Result<table::DmlResult> ExecuteOverwriteUpdate(
      const table::ScanSpec& filter, const std::vector<table::Assignment>& assignments);
  Result<table::DmlResult> ExecuteEditDelete(const table::ScanSpec& filter);
  Result<table::DmlResult> ExecuteOverwriteDelete(const table::ScanSpec& filter);

  /// Streams the union-read view through `transform` into a fresh master
  /// generation; used by OVERWRITE plans and COMPACT. `transform` returns
  /// false to drop the row and may mutate it in place.
  Result<uint64_t> RewriteMaster(
      const std::function<bool(uint64_t record_id, Row* row)>& transform);

  /// COMPACT's parallel rewrite: one job per master file on options_.pool,
  /// each streaming its file's union-read view into fresh files; all new
  /// files land in ONE ReplaceAllFiles call, so the manifest rename stays
  /// the single commit point.
  Result<uint64_t> RewriteMasterParallel();

  double ResolveRatio(std::optional<double> hint) const;
  double AvgRowBytes() const;

  /// Feeds the duration histograms and (under kCostModel, when a cost_audit
  /// is wired) appends the predicted-vs-measured audit record for one DML
  /// statement. `decision` is meaningful only when `audited` is true.
  void RecordDmlObservation(const char* statement, table::DmlPlan plan,
                            const PlanDecision& decision, double ratio,
                            bool ratio_from_hint, bool audited,
                            const table::DmlResult& result, double wall_seconds,
                            const fs::IoSnapshot& io_before);
  /// Wraps a batch iterator so the UNION READ rows histogram observes the
  /// total rows it emitted; pass-through when no metrics are wired.
  std::unique_ptr<table::BatchIterator> ObserveUnionReadRows(
      std::unique_ptr<table::BatchIterator> it);

  fs::SimFileSystem* fs_;
  MetadataTable* metadata_;
  std::string name_;
  Schema schema_;
  DualTableOptions options_;
  const fs::ClusterModel* cluster_;
  CostModel cost_model_;
  /// Guards cost_model_: the calibration loop mutates its params on the DML
  /// thread while the scheduler thread reads crossover ratios for the
  /// incremental threshold. Leaf lock — never held while taking mu_ or
  /// snapshot_mu_.
  mutable std::mutex cost_model_mu_;
  obs::Histogram* edit_hist_ = nullptr;       // EDIT-plan DML wall seconds
  obs::Histogram* overwrite_hist_ = nullptr;  // OVERWRITE-plan DML wall seconds
  obs::Histogram* compact_hist_ = nullptr;    // COMPACT wall seconds
  obs::Histogram* union_read_rows_hist_ = nullptr;  // rows per UNION READ scan
  obs::Histogram* union_read_seconds_hist_ = nullptr;  // wall seconds per UNION READ
  obs::Histogram* incremental_compact_hist_ = nullptr;  // incremental COMPACT wall s
  obs::Histogram* stripe_density_hist_ = nullptr;       // density ppm per stripe
  obs::Counter* stripes_rewritten_ctr_ = nullptr;
  obs::Counter* stripes_copied_ctr_ = nullptr;
  obs::Counter* mods_folded_ctr_ = nullptr;
  obs::Gauge* edit_scale_gauge_ = nullptr;       // edit_cost_scale × 1e6
  obs::Gauge* overwrite_scale_gauge_ = nullptr;  // overwrite_cost_scale × 1e6
  // Adaptive-maintenance decision instruments (maintenance.*, DESIGN.md §14).
  // Counters/gauges are labeled by table; the trigger counters by reason.
  obs::Counter* maint_rounds_ctr_ = nullptr;
  obs::Counter* maint_skips_ctr_ = nullptr;
  obs::Counter* maint_preview_scans_ctr_ = nullptr;
  obs::Counter* maint_incremental_ctr_ = nullptr;
  obs::Counter* maint_full_ctr_ = nullptr;
  obs::Counter* maint_reclaims_ctr_ = nullptr;
  obs::Counter* maint_trigger_density_ctr_ = nullptr;
  obs::Counter* maint_trigger_latency_ctr_ = nullptr;
  obs::Counter* maint_trigger_bytes_ctr_ = nullptr;
  obs::Gauge* maint_p95_gauge_ = nullptr;      // windowed union-read p95, µs
  obs::Gauge* maint_density_gauge_ = nullptr;  // attached-delta density, ppm
  std::unique_ptr<MasterTable> master_;
  std::unique_ptr<AttachedTable> attached_;
  /// KV-hosted secondary index; nullptr when no columns are indexed.
  std::unique_ptr<SecondaryIndex> index_;
  /// Serializes writers (DML, COMPACT). Reads no longer take it: they pin a
  /// snapshot and scan immutable state, so scans and COMPACT coexist.
  mutable std::recursive_mutex mu_;
  /// Guards the snapshot view (commit_ts_ + the generation/attached pair as
  /// one visibility unit). Ordering: mu_ before snapshot_mu_; never inverted.
  mutable std::mutex snapshot_mu_;
  /// Commit timestamp of the last acknowledged (WAL-synced) EDIT; snapshots
  /// read the attached store as of this clock value.
  uint64_t commit_ts_ = 0;
  /// Commit timestamp for the index store, advanced under snapshot_mu_ in
  /// the same critical section as the event whose entries it covers, so a
  /// snapshot's index view and table view always agree.
  uint64_t index_commit_ts_ = 0;
  std::shared_ptr<SnapshotTracker> snapshot_tracker_ =
      std::make_shared<SnapshotTracker>();
  table::DmlPlan last_plan_ = table::DmlPlan::kEdit;
  uint64_t scheduler_job_ = 0;  // background-compaction handle; 0 = none
};

}  // namespace dtl::dual
