// UNION READ (paper §III-C): merges the Master Table's sorted record-ID
// stream with the Attached Table's sorted modification stream. Because both
// streams are ordered by record ID, the merge is a single linear pass —
// "it only needs to read through and merge two sorted ID lists" (§V-B).
#pragma once

#include <memory>

#include "dualtable/attached_table.h"
#include "dualtable/master_table.h"
#include "table/storage_table.h"

namespace dtl::dual {

/// Row iterator producing the up-to-date view: master rows with attached
/// updates overlaid and deleted records skipped. The residual predicate is
/// evaluated AFTER the merge so it sees current values.
class UnionReadIterator : public table::RowIterator {
 public:
  UnionReadIterator(std::unique_ptr<MasterScanIterator> master,
                    std::unique_ptr<ModificationScanner> attached,
                    table::RowPredicateFn predicate, size_t num_fields);

  bool Next() override;
  const Row& row() const override { return row_; }
  uint64_t record_id() const override { return record_id_; }
  const Status& status() const override { return status_; }

  /// True when the current row had attached modifications applied.
  bool current_row_modified() const { return current_modified_; }

  /// Pins an owner (the Snapshot this iterator reads from) for the iterator's
  /// lifetime so generation GC and KV keepalives outlive the scan.
  void AnchorSnapshot(std::shared_ptr<const void> anchor) {
    anchor_ = std::move(anchor);
  }

 private:
  std::shared_ptr<const void> anchor_;
  /// Advances the attached stream until its head is >= id; returns the head
  /// when it equals id.
  const RecordModification* AttachedAt(uint64_t id);

  std::unique_ptr<MasterScanIterator> master_;
  std::unique_ptr<ModificationScanner> attached_;
  table::RowPredicateFn predicate_;
  size_t num_fields_;

  bool attached_valid_ = false;
  bool attached_primed_ = false;
  Row row_;
  uint64_t record_id_ = 0;
  bool current_modified_ = false;
  Status status_;
};

/// Vectorized UNION READ: consumes contiguous-record-ID batches from the
/// master scan and merges the sorted modification stream into them in place.
/// A batch with no modifications in its ID range passes through untouched —
/// zero-copy stripe views, no per-row work — which is the common case the
/// paper's §V-B "cheap merge" argument rests on. Deleted records are masked
/// via the selection vector; updated cells are patched copy-on-write. The
/// residual predicate runs AFTER the merge so it sees current values.
class UnionReadBatchIterator : public table::BatchIterator {
 public:
  /// `master` must emit contiguous-record-ID batches (MasterScanBatchIterator
  /// does: each batch is a slice of one stripe of one file) and must NOT have
  /// applied the predicate already. `meter` receives the merge's pass-through
  /// / patch / mask counts; nullptr means the process-global meter (parallel
  /// scans pass a worker-local one).
  UnionReadBatchIterator(std::unique_ptr<MasterScanBatchIterator> master,
                         std::unique_ptr<ModificationScanner> attached,
                         table::RowPredicateFn predicate, size_t num_fields,
                         table::ScanMeter* meter = nullptr);

  bool Next(table::RowBatch* batch) override;
  const Status& status() const override { return status_; }

  /// Pins an owner (the Snapshot this iterator reads from) for the iterator's
  /// lifetime so generation GC and KV keepalives outlive the scan.
  void AnchorSnapshot(std::shared_ptr<const void> anchor) {
    anchor_ = std::move(anchor);
  }

 private:
  std::shared_ptr<const void> anchor_;
  /// Patches/masks the batch with attached modifications; false on error.
  bool ApplyModifications(table::RowBatch* batch);

  /// The meter this iterator reports to (worker-local or global).
  table::ScanMeter& meter();

  std::unique_ptr<MasterScanBatchIterator> master_;
  std::unique_ptr<ModificationScanner> attached_;
  table::RowPredicateFn predicate_;
  size_t num_fields_;
  table::ScanMeter* meter_;

  bool attached_valid_ = false;
  bool attached_primed_ = false;
  /// Record-ID monotonicity watermark: master batches must arrive in
  /// nondecreasing ID order (checked with DTL_DCHECK in ApplyModifications).
  uint64_t next_expected_id_ = 0;
  Row scratch_;
  Status status_;
};

}  // namespace dtl::dual
