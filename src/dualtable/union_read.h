// UNION READ (paper §III-C): merges the Master Table's sorted record-ID
// stream with the Attached Table's sorted modification stream. Because both
// streams are ordered by record ID, the merge is a single linear pass —
// "it only needs to read through and merge two sorted ID lists" (§V-B).
#pragma once

#include <memory>

#include "dualtable/attached_table.h"
#include "dualtable/master_table.h"
#include "table/storage_table.h"

namespace dtl::dual {

/// Row iterator producing the up-to-date view: master rows with attached
/// updates overlaid and deleted records skipped. The residual predicate is
/// evaluated AFTER the merge so it sees current values.
class UnionReadIterator : public table::RowIterator {
 public:
  UnionReadIterator(std::unique_ptr<MasterScanIterator> master,
                    std::unique_ptr<ModificationScanner> attached,
                    table::RowPredicateFn predicate, size_t num_fields);

  bool Next() override;
  const Row& row() const override { return row_; }
  uint64_t record_id() const override { return record_id_; }
  const Status& status() const override { return status_; }

  /// True when the current row had attached modifications applied.
  bool current_row_modified() const { return current_modified_; }

 private:
  /// Advances the attached stream until its head is >= id; returns the head
  /// when it equals id.
  const RecordModification* AttachedAt(uint64_t id);

  std::unique_ptr<MasterScanIterator> master_;
  std::unique_ptr<ModificationScanner> attached_;
  table::RowPredicateFn predicate_;
  size_t num_fields_;

  bool attached_valid_ = false;
  bool attached_primed_ = false;
  Row row_;
  uint64_t record_id_ = 0;
  bool current_modified_ = false;
  Status status_;
};

}  // namespace dtl::dual
