// MVCC snapshots (ROADMAP: snapshot-isolated UNION READ). A Snapshot pins
// one consistent view of a DualTable: the master manifest generation and the
// attached KV store's state at a single commit timestamp. Every read path —
// row and batch UNION READ, morsel scans, SQL statements — takes a Snapshot
// explicitly and observes exactly the acquisition-time state, no matter how
// many EDITs, COMPACTs, or OVERWRITEs commit while the scan runs.
//
// Visibility rules:
//   * EDIT publishes a commit timestamp only after its WAL sync; snapshots
//     acquired earlier never see a half-applied statement.
//   * COMPACT/OVERWRITE publish (new generation + cleared attached state)
//     atomically; a snapshot sees either the old pair or the new pair.
//   * Generations are refcounted; replaced master files are deleted only
//     when the last pinning snapshot dies (deferred orphan GC).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "common/stopwatch.h"
#include "dualtable/master_table.h"
#include "kv/store.h"

namespace dtl::dual {

/// Bookkeeping behind the snapshot.* metric views: how many snapshots are
/// live, how many were ever acquired, and how old the oldest one is (a
/// long-lived snapshot is what delays generation GC). Thread-safe; shared by
/// a DualTable and every Snapshot it hands out.
class SnapshotTracker {
 public:
  uint64_t acquired() const { return acquired_.load(std::memory_order_relaxed); }
  uint64_t active() const {
    std::lock_guard<std::mutex> lock(mu_);
    return active_.size();
  }
  /// Age in seconds of the oldest live snapshot; 0 when none are live.
  double OldestSeconds() const {
    std::lock_guard<std::mutex> lock(mu_);
    double oldest = 0.0;
    for (const auto& [token, watch] : active_) {
      oldest = std::max(oldest, watch.ElapsedSeconds());
    }
    return oldest;
  }

  uint64_t OnAcquire() {
    acquired_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t token = next_token_++;
    active_.emplace(token, Stopwatch());
    return token;
  }
  void OnRelease(uint64_t token) {
    std::lock_guard<std::mutex> lock(mu_);
    active_.erase(token);
  }

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, Stopwatch> active_;
  uint64_t next_token_ = 1;
  std::atomic<uint64_t> acquired_{0};
};

/// One pinned, immutable view of a DualTable. Cheap to copy by SnapshotPtr;
/// the pins release (and deferred GC may run) when the last holder drops it.
struct Snapshot {
  /// Pinned master file set. Holding this keeps the generation's files on
  /// disk even after a COMPACT/OVERWRITE replaces them.
  MasterGenerationPtr generation;
  /// Pinned attached-store state; `attached.read_ts` is clamped to the
  /// table's commit timestamp, so unsynced EDIT cells are invisible.
  kv::KvSnapshot attached;
  /// True when the pinned attached state holds no cells at all — the only
  /// case where master stripe-stat pruning is sound (attached updates can
  /// move values across stripe-stat boundaries).
  bool attached_empty = false;
  /// Pinned secondary-index store state, clamped to the index commit
  /// timestamp (set only for tables with indexed columns). Index lookups
  /// read exactly this state, so a lookup and a UNION READ scan under the
  /// same Snapshot can never disagree.
  kv::KvSnapshot index;
  bool has_index = false;

  Snapshot() = default;
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;
  ~Snapshot() {
    if (tracker != nullptr) tracker->OnRelease(tracker_token);
  }

  /// The commit timestamp this snapshot reads at (ISSUE naming:
  /// kv_read_timestamp). Writes stamped later are invisible.
  uint64_t kv_read_timestamp() const { return attached.read_ts; }
  /// The pinned manifest generation number.
  uint64_t manifest_generation() const {
    return generation == nullptr ? 0 : generation->number();
  }

  std::shared_ptr<SnapshotTracker> tracker;
  uint64_t tracker_token = 0;
};

using SnapshotPtr = std::shared_ptr<const Snapshot>;

}  // namespace dtl::dual
