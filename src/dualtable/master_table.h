// The Master Table (paper §III-A): the main, batch-read-optimized data
// store — a set of ORC files in an HDFS directory. Every file carries a
// unique incremental file ID from the metadata table; record IDs are
// (file ID, row number) pairs.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "dualtable/metadata.h"
#include "fs/filesystem.h"
#include "orc/reader.h"
#include "orc/writer.h"
#include "table/spec.h"

namespace dtl::dual {

/// Directory entry for one master ORC file.
struct MasterFileInfo {
  uint64_t file_id = 0;
  std::string path;
  uint64_t num_rows = 0;
  uint64_t bytes = 0;
  /// Master generation number that first registered this file; part of the
  /// shared StripeCache key so a file produced by a later COMPACT can never
  /// be served another file's cached stripes. Not persisted: recovery stamps
  /// every file with the recovered generation, which is safe because a fresh
  /// MasterTable also gets a fresh cache owner token.
  uint64_t born_generation = 0;
};

class MasterTable;

/// One committed, immutable master file set — the unit MVCC snapshots pin.
/// Every manifest commit (RegisterFile, ReplaceAllFiles, Drop) publishes a
/// new generation; readers that captured the old one keep scanning it
/// untouched. A generation owns its ORC reader cache (so scans against a
/// retired generation never mix stripes across file sets) and, when it was
/// replaced wholesale (COMPACT / OVERWRITE), the list of files it doomed:
/// those are deleted by the destructor, i.e. only after the last snapshot
/// pin drops. A crash before that point leaves orphans the next Open()
/// garbage-collects, so deferral never loses the GC.
class MasterGeneration {
 public:
  ~MasterGeneration();

  /// Monotonic generation number; persisted in the manifest.
  uint64_t number() const { return number_; }
  const std::vector<MasterFileInfo>& files() const { return files_; }
  uint64_t TotalRows() const;
  uint64_t TotalBytes() const;

 private:
  friend class MasterTable;
  MasterGeneration() = default;

  /// Opens (and caches) the ORC reader for one of this generation's files.
  Result<std::shared_ptr<orc::OrcReader>> OpenReader(const MasterFileInfo& info) const;

  fs::SimFileSystem* fs_ = nullptr;
  uint64_t number_ = 0;
  /// Shared decoded-stripe cache (null = per-reader LRU) and the owning
  /// table's process-unique cache token; stamped onto every reader opened.
  orc::StripeCache* stripe_cache_ = nullptr;
  uint64_t cache_owner_ = 0;
  std::vector<MasterFileInfo> files_;  // ascending file_id
  /// Files this generation replaced; deleted when the generation dies.
  std::vector<std::string> doomed_paths_;
  /// Shared live-generation counter (snapshot.pinned_generations view);
  /// decremented by the destructor.
  std::shared_ptr<std::atomic<int64_t>> live_counter_;
  mutable std::mutex reader_cache_mu_;
  mutable std::map<uint64_t, std::shared_ptr<orc::OrcReader>> reader_cache_;
};

/// Snapshots hold generations const: a pinned file set never mutates.
using MasterGenerationPtr = std::shared_ptr<const MasterGeneration>;

/// One stripe-aligned unit of parallel scan work: a contiguous stripe range
/// of one master file. Morsel boundaries never split a stripe, so every
/// batch a morsel emits keeps the contiguous-record-ID invariant UNION READ
/// relies on, and each surviving stripe is decoded by exactly one worker
/// (merged ScanMeter byte counts match a serial scan).
struct ScanMorsel {
  uint64_t file_id = 0;
  size_t stripe_begin = 0;
  size_t stripe_end = 0;  // exclusive
  /// Record-ID window [first_record_id, end_record_id) covered by the
  /// morsel's stripes; bounds the attached-table scan per worker.
  uint64_t first_record_id = 0;
  uint64_t end_record_id = 0;
  uint64_t num_rows = 0;  // physical rows in surviving stripes
};

/// Writer for one new master file. The file is NOT registered with the
/// table until Close() returns its info to the caller, which lets OVERWRITE
/// plans stage a whole new generation before swapping it in.
class MasterFileWriter {
 public:
  Status Append(const Row& row);
  /// Byte-copies one already-encoded stripe (CRC-verified by the reader that
  /// produced it) into this file; incremental COMPACT uses it to carry clean
  /// stripes across a rewrite without decoding them.
  Status AppendRawStripe(const orc::StripeInfo& info, const std::string& stripe_bytes);
  /// Seals the ORC file and returns its directory entry.
  Result<MasterFileInfo> Close();

  uint64_t file_id() const { return info_.file_id; }
  uint64_t rows_written() const { return writer_->rows_written(); }

 private:
  friend class MasterTable;
  MasterFileWriter(std::unique_ptr<orc::OrcWriter> writer, MasterFileInfo info,
                   fs::SimFileSystem* fs)
      : writer_(std::move(writer)), info_(std::move(info)), fs_(fs) {}

  std::unique_ptr<orc::OrcWriter> writer_;
  MasterFileInfo info_;
  fs::SimFileSystem* fs_;
};

/// Streams (record_id, row) pairs from the master files in record-ID order,
/// honoring projection, stripe pruning, and (optionally deferred) predicate
/// evaluation. Rows are full schema width with non-required columns NULL.
class MasterScanIterator {
 public:
  /// Advances to the next surviving row; false at end or error.
  bool Next();
  uint64_t record_id() const { return record_id_; }
  const Row& row() const { return row_; }
  const Status& status() const { return status_; }

 private:
  friend class MasterTable;
  MasterScanIterator(std::vector<std::shared_ptr<orc::OrcReader>> readers,
                     std::vector<uint64_t> file_ids, table::ScanSpec spec,
                     size_t num_fields, bool apply_predicate);

  bool LoadNextBatch();

  std::vector<std::shared_ptr<orc::OrcReader>> readers_;
  std::vector<uint64_t> file_ids_;
  table::ScanSpec spec_;
  std::vector<size_t> required_;
  size_t num_fields_;
  bool apply_predicate_;

  size_t file_index_ = 0;
  size_t stripe_index_ = 0;
  /// Stripes of the current file that passed StripeMayMatch; a file that
  /// ends with zero survivors is charged to the meter as a skipped file.
  size_t survivors_in_file_ = 0;
  orc::StripeBatch batch_;
  bool batch_loaded_ = false;
  size_t index_in_batch_ = 0;
  uint64_t record_id_ = 0;
  Row row_;
  Status status_;
};

/// Vectorized master scan: streams RowBatches sliced zero-copy out of
/// decoded stripes, in record-ID order, honoring projection and stripe
/// pruning. Each batch is a contiguous slice of one stripe of one file, so
/// its record IDs ascend contiguously — the invariant UNION READ's batch
/// merge exploits. With `apply_predicate`, the residual filter runs here as
/// a selection-vector filter; otherwise it is deferred to the caller.
class MasterScanBatchIterator : public table::BatchIterator {
 public:
  bool Next(table::RowBatch* batch) override;
  const Status& status() const override { return status_; }

 private:
  friend class MasterTable;
  MasterScanBatchIterator(std::vector<std::shared_ptr<orc::OrcReader>> readers,
                          std::vector<uint64_t> file_ids, table::ScanSpec spec,
                          size_t num_fields, bool apply_predicate, size_t batch_rows,
                          size_t stripe_begin = 0, size_t stripe_end = SIZE_MAX,
                          bool count_skips = true);

  /// Decodes the next surviving stripe; false at end or error.
  bool LoadNextStripe();

  std::vector<std::shared_ptr<orc::OrcReader>> readers_;
  std::vector<uint64_t> file_ids_;
  table::ScanSpec spec_;
  std::vector<size_t> required_;
  size_t num_fields_;
  bool apply_predicate_;
  size_t batch_rows_;

  /// Stripe window for morsel scans; only meaningful for single-file
  /// iterators (multi-file scans always cover every stripe).
  size_t stripe_end_limit_;
  /// False for morsel-window iterators: PlanMorsels already charged every
  /// pruned stripe/file to the meter, so recounting here would make the
  /// merged parallel meters disagree with a serial scan.
  bool count_skips_;

  size_t file_index_ = 0;
  size_t stripe_index_ = 0;
  /// See MasterScanIterator::survivors_in_file_.
  size_t survivors_in_file_ = 0;
  std::shared_ptr<const orc::StripeBatch> stripe_;
  size_t offset_in_stripe_ = 0;
  Row scratch_;
  Status status_;
};

/// One DualTable's master store.
class MasterTable {
 public:
  /// Opens (or creates) the master directory. The committed file set lives
  /// in a CRC'd `manifest` (swapped atomically via tmp + rename); staged
  /// files and generations that never reached their manifest commit are
  /// garbage-collected here. Directories that predate the manifest are
  /// indexed by scanning and committed on the spot.
  /// `stripe_cache` null routes decoded stripes through the process-wide
  /// StripeCache::Default(); pass a dedicated cache to isolate (tests).
  static Result<std::unique_ptr<MasterTable>> Open(
      fs::SimFileSystem* fs, MetadataTable* metadata, const std::string& table_name,
      Schema schema, const std::string& warehouse_dir = "/warehouse",
      orc::WriterOptions writer_options = orc::WriterOptions(),
      orc::StripeCache* stripe_cache = nullptr);

  ~MasterTable();

  /// Process-unique cache-owner token (stable for this MasterTable's life).
  uint64_t cache_owner() const { return cache_owner_; }
  /// The shared stripe cache this table's readers publish into.
  orc::StripeCache* stripe_cache() const { return stripe_cache_; }

  const Schema& schema() const { return schema_; }
  /// Latest-visible file set (a copy of the current generation's list).
  std::vector<MasterFileInfo> files() const { return CurrentGeneration()->files(); }
  uint64_t TotalRows() const { return CurrentGeneration()->TotalRows(); }
  uint64_t TotalBytes() const { return CurrentGeneration()->TotalBytes(); }

  /// Pins the current committed generation. The returned pointer stays valid
  /// (and its files stay on disk) for as long as the caller holds it, no
  /// matter how many COMPACT/OVERWRITE commits land afterwards.
  MasterGenerationPtr CurrentGeneration() const;

  /// Number of generation objects currently alive: the current one plus
  /// every retired one still pinned by a snapshot.
  int64_t LiveGenerations() const {
    return live_generations_->load(std::memory_order_relaxed);
  }

  /// Starts a new master file with a fresh metadata-assigned file ID.
  Result<std::unique_ptr<MasterFileWriter>> NewFileWriter();

  /// Registers a closed file produced by NewFileWriter and commits the new
  /// file set to the manifest. The file only becomes part of the table once
  /// the manifest rename lands; a crash before that leaves an orphan that
  /// the next Open() garbage-collects.
  Status RegisterFile(MasterFileInfo info);

  /// Swaps the live file set: registers `new_files`, commits the manifest,
  /// then deletes current ones. The manifest rename is the commit point — a
  /// crash before it keeps the old generation, after it the new one.
  Status ReplaceAllFiles(std::vector<MasterFileInfo> new_files);

  /// Opens (via the generation's cache) the ORC reader for one pinned file.
  /// Incremental COMPACT uses it to walk stripe row windows and raw-copy
  /// clean stripes without decoding them.
  Result<std::shared_ptr<orc::OrcReader>> OpenReader(const MasterGenerationPtr& gen,
                                                     uint64_t file_id) const;

  /// Test hook: when set, RegisterFile/ReplaceAllFiles delete the manifest
  /// instead of writing it, reverting Open() to the unsafe scan-everything
  /// recovery. Exists so the crash sweep can demonstrate that the manifest
  /// commit is load-bearing.
  void SetUnsafeGenerationCommitForTests(bool unsafe) { unsafe_commit_for_tests_ = unsafe; }

  // --- generation-pinned read paths (the MVCC snapshot API) ---
  // Every iterator reads exactly the pinned generation's file set; commits
  // racing past it are invisible. The generation-less overloads below pin
  // CurrentGeneration() per call and exist for the non-MVCC baselines.

  /// Sequential scan in record-ID order. `apply_predicate` false defers the
  /// residual filter to the caller (UNION READ filters after merging).
  Result<std::unique_ptr<MasterScanIterator>> NewScanIterator(
      const MasterGenerationPtr& gen, const table::ScanSpec& spec,
      bool apply_predicate) const;

  /// Scan over a single master file (the per-file MapReduce split).
  Result<std::unique_ptr<MasterScanIterator>> NewFileScanIterator(
      const MasterGenerationPtr& gen, uint64_t file_id, const table::ScanSpec& spec,
      bool apply_predicate) const;

  /// Vectorized sequential scan in record-ID order (see
  /// MasterScanBatchIterator for predicate/pruning semantics).
  Result<std::unique_ptr<MasterScanBatchIterator>> NewBatchScanIterator(
      const MasterGenerationPtr& gen, const table::ScanSpec& spec, bool apply_predicate,
      size_t batch_rows = table::kDefaultBatchRows) const;

  /// Vectorized scan over a single master file.
  Result<std::unique_ptr<MasterScanBatchIterator>> NewFileBatchScanIterator(
      const MasterGenerationPtr& gen, uint64_t file_id, const table::ScanSpec& spec,
      bool apply_predicate, size_t batch_rows = table::kDefaultBatchRows) const;

  /// Splits the scan into stripe-aligned morsels of at most
  /// `stripes_per_morsel` surviving stripes each, in record-ID order.
  /// Pruning uses the same StripeMayMatch test the scan iterators apply, so
  /// a morsel never covers work a serial scan would skip (and vice versa).
  Result<std::vector<ScanMorsel>> PlanMorsels(const MasterGenerationPtr& gen,
                                              const table::ScanSpec& spec,
                                              size_t stripes_per_morsel) const;

  /// Vectorized scan over one morsel (stripe range of one file).
  Result<std::unique_ptr<MasterScanBatchIterator>> NewMorselBatchScanIterator(
      const MasterGenerationPtr& gen, const ScanMorsel& morsel,
      const table::ScanSpec& spec, bool apply_predicate,
      size_t batch_rows = table::kDefaultBatchRows) const;

  // --- latest-visible conveniences (baselines and tests; see lint rule 8) ---

  Result<std::unique_ptr<MasterScanIterator>> NewScanIterator(const table::ScanSpec& spec,
                                                              bool apply_predicate) const;
  Result<std::unique_ptr<MasterScanIterator>> NewFileScanIterator(
      uint64_t file_id, const table::ScanSpec& spec, bool apply_predicate) const;
  Result<std::unique_ptr<MasterScanBatchIterator>> NewBatchScanIterator(
      const table::ScanSpec& spec, bool apply_predicate,
      size_t batch_rows = table::kDefaultBatchRows) const;
  Result<std::unique_ptr<MasterScanBatchIterator>> NewFileBatchScanIterator(
      uint64_t file_id, const table::ScanSpec& spec, bool apply_predicate,
      size_t batch_rows = table::kDefaultBatchRows) const;

  /// Removes every master file and the directory.
  Status Drop();

 private:
  MasterTable(fs::SimFileSystem* fs, MetadataTable* metadata, std::string table_name,
              Schema schema, std::string dir, orc::WriterOptions writer_options)
      : fs_(fs),
        metadata_(metadata),
        table_name_(std::move(table_name)),
        schema_(std::move(schema)),
        dir_(std::move(dir)),
        writer_options_(writer_options) {}

  /// Writes `gen`'s file-ID set (and generation number) to `dir/manifest`
  /// via tmp + rename — the atomic commit point of every generation swap.
  Status WriteManifest(const MasterGeneration& gen);
  /// Allocates the current generation's successor (number + 1, empty file
  /// set). Caller must hold gen_mu_.
  std::shared_ptr<MasterGeneration> NewGenerationLocked() const;

  fs::SimFileSystem* fs_;
  MetadataTable* metadata_;
  std::string table_name_;
  Schema schema_;
  std::string dir_;
  orc::WriterOptions writer_options_;
  /// Shared decoded-stripe cache + this table's owner token (see
  /// MasterFileInfo::born_generation for the full cache-key story).
  orc::StripeCache* stripe_cache_ = nullptr;
  uint64_t cache_owner_ = 0;
  bool unsafe_commit_for_tests_ = false;
  /// Guards generation publication. Held only for pointer swaps and manifest
  /// writes, never across scans.
  mutable std::mutex gen_mu_;
  /// Non-const internally: the publisher stamps doomed_paths_ on the
  /// outgoing generation at replace time; readers only ever see it const.
  std::shared_ptr<MasterGeneration> current_;
  /// shared with generations so their destructors can decrement it even if
  /// they outlive the table.
  std::shared_ptr<std::atomic<int64_t>> live_generations_ =
      std::make_shared<std::atomic<int64_t>>(0);
};

/// True when the stripe's statistics cannot rule out rows satisfying every
/// bound. Equality bounds additionally probe the stripe's bloom filter;
/// `bloom_pruned` (optional) is set when min/max alone would have admitted
/// the stripe but the bloom refuted it. Exposed for tests.
bool StripeMayMatch(const orc::StripeInfo& stripe,
                    const std::vector<table::ColumnBound>& bounds,
                    bool* bloom_pruned = nullptr);

}  // namespace dtl::dual
