#include "dualtable/metadata.h"

#include <cstdio>
#include <cstdlib>

namespace dtl::dual {

namespace {
constexpr uint32_t kFileIdQualifier = 1;
constexpr uint32_t kRatioQualifier = 2;
constexpr double kHistoryDecay = 0.5;  // weight of the newest observation
}  // namespace

Result<std::unique_ptr<MetadataTable>> MetadataTable::Open(fs::SimFileSystem* fs,
                                                           const std::string& dir) {
  kv::KvStoreOptions options;
  options.dir = dir;
  // Metadata (file-ID counters) must never be lost: sync the WAL per write.
  options.wal_sync_interval_bytes = 1;
  DTL_ASSIGN_OR_RETURN(auto store, kv::KvStore::Open(fs, std::move(options)));
  return std::unique_ptr<MetadataTable>(new MetadataTable(std::move(store)));
}

Result<uint64_t> MetadataTable::NextFileId(const std::string& table_name) {
  std::lock_guard<std::mutex> lock(mu_);
  DTL_ASSIGN_OR_RETURN(auto current, store_->Get(table_name, kFileIdQualifier));
  uint64_t next = 1;
  if (current.has_value()) next = std::strtoull(current->c_str(), nullptr, 10) + 1;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(next));
  DTL_RETURN_NOT_OK(store_->Put(table_name, kFileIdQualifier, buf));
  return next;
}

Status MetadataTable::RecordModificationRatio(const std::string& table_name,
                                              double ratio) {
  std::lock_guard<std::mutex> lock(mu_);
  DTL_ASSIGN_OR_RETURN(auto current, store_->Get(table_name, kRatioQualifier));
  double blended = ratio;
  if (current.has_value()) {
    double prev = std::strtod(current->c_str(), nullptr);
    blended = kHistoryDecay * ratio + (1.0 - kHistoryDecay) * prev;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9f", blended);
  return store_->Put(table_name, kRatioQualifier, buf);
}

Result<double> MetadataTable::HistoricalModificationRatio(const std::string& table_name,
                                                          double fallback) {
  std::lock_guard<std::mutex> lock(mu_);
  DTL_ASSIGN_OR_RETURN(auto current, store_->Get(table_name, kRatioQualifier));
  if (!current.has_value()) return fallback;
  return std::strtod(current->c_str(), nullptr);
}

}  // namespace dtl::dual
