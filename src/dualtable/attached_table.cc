#include "dualtable/attached_table.h"

#include "dualtable/record_id.h"

namespace dtl::dual {

Result<std::unique_ptr<AttachedTable>> AttachedTable::Open(
    fs::SimFileSystem* fs, const std::string& table_name, kv::KvStoreOptions options) {
  options.dir = "/hbase/" + table_name + "_attached";
  std::string dir = options.dir;
  DTL_ASSIGN_OR_RETURN(auto store, kv::KvStore::Open(fs, std::move(options)));
  return std::unique_ptr<AttachedTable>(
      new AttachedTable(fs, std::move(dir), std::move(store)));
}

Status AttachedTable::PutUpdate(uint64_t record_id, uint32_t column, const Value& value) {
  if (column >= kDeleteMarkerQualifier) {
    return Status::InvalidArgument("column ordinal collides with reserved qualifiers");
  }
  std::string encoded;
  value.EncodeTo(&encoded);
  return store_->Put(RecordIdKey(record_id), column, encoded);
}

Status AttachedTable::PutDeleteMarker(uint64_t record_id) {
  return store_->Put(RecordIdKey(record_id), kDeleteMarkerQualifier, "");
}

namespace {

Status CellsToModification(uint64_t record_id, const std::vector<kv::Cell>& cells,
                           RecordModification* out) {
  out->record_id = record_id;
  out->deleted = false;
  out->updates.clear();
  for (const kv::Cell& cell : cells) {
    if (cell.key.qualifier == kDeleteMarkerQualifier) {
      out->deleted = true;
      continue;
    }
    Slice in(cell.value.value);
    Value v;
    DTL_RETURN_NOT_OK(Value::DecodeFrom(&in, &v));
    out->updates.emplace(cell.key.qualifier, std::move(v));
  }
  return Status::OK();
}

}  // namespace

Result<std::optional<RecordModification>> AttachedTable::GetModification(
    uint64_t record_id) {
  // One bounded scan positioned at the record's key retrieves the whole row.
  auto scanner = NewScanner(record_id, record_id + 1);
  if (scanner->Next()) {
    return std::optional<RecordModification>(scanner->modification());
  }
  DTL_RETURN_NOT_OK(scanner->status());
  return std::optional<RecordModification>();
}

Result<std::optional<RecordModification>> AttachedTable::GetModificationAt(
    const kv::KvSnapshot& snapshot, uint64_t record_id) const {
  auto scanner = NewScannerAt(snapshot, record_id, record_id + 1);
  if (scanner->Next()) {
    return std::optional<RecordModification>(scanner->modification());
  }
  DTL_RETURN_NOT_OK(scanner->status());
  return std::optional<RecordModification>();
}

std::unique_ptr<ModificationScanner> AttachedTable::NewScanner(uint64_t start_id,
                                                               uint64_t end_id,
                                                               uint64_t as_of) {
  std::string start_key = RecordIdKey(start_id);
  auto rows = store_->NewRowScanner(start_id == 0 ? nullptr : &start_key, as_of);
  return std::unique_ptr<ModificationScanner>(
      new ModificationScanner(std::move(rows), end_id));
}

std::unique_ptr<ModificationScanner> AttachedTable::NewScannerAt(
    const kv::KvSnapshot& snapshot, uint64_t start_id, uint64_t end_id,
    uint64_t as_of) const {
  std::string start_key = RecordIdKey(start_id);
  auto rows =
      store_->NewRowScannerAt(snapshot, start_id == 0 ? nullptr : &start_key, as_of);
  return std::unique_ptr<ModificationScanner>(
      new ModificationScanner(std::move(rows), end_id));
}

Status AttachedTable::GetUpdateHistory(uint64_t record_id, uint32_t column,
                                       int max_versions,
                                       std::vector<std::pair<uint64_t, Value>>* out) {
  out->clear();
  std::vector<std::pair<uint64_t, std::string>> raw;
  DTL_RETURN_NOT_OK(store_->GetVersions(RecordIdKey(record_id), column, max_versions, &raw));
  for (auto& [ts, encoded] : raw) {
    Slice in(encoded);
    Value v;
    DTL_RETURN_NOT_OK(Value::DecodeFrom(&in, &v));
    out->emplace_back(ts, std::move(v));
  }
  return Status::OK();
}

Status AttachedTable::Drop() {
  DTL_RETURN_NOT_OK(store_->Clear());
  return fs_->DeleteRecursively(dir_);
}

bool ModificationScanner::Next() {
  if (!status_.ok()) return false;
  if (!rows_->Next()) {
    status_ = rows_->status();
    return false;
  }
  const kv::RowView& view = rows_->view();
  if (view.row.size() != 8) {
    status_ = Status::Corruption("attached table row key is not a record ID");
    return false;
  }
  const uint64_t id = RecordIdFromKey(view.row);
  if (id >= end_id_) return false;
  status_ = CellsToModification(id, view.cells, &mod_);
  return status_.ok();
}

}  // namespace dtl::dual
