// Per-query tracing: RAII spans form a tree of TraceNodes that attribute
// wall time, modelled cluster seconds, IoSnapshot and ScanSnapshot deltas,
// and operator row/batch/byte counts to each query stage. EXPLAIN ANALYZE
// renders the finished tree.
//
// Lifecycle (DESIGN.md §10): a Tracer belongs to one sql::Session and is
// inactive between queries. EXPLAIN ANALYZE calls Begin() (creates the root
// node and activates the tracer), the engine opens named Spans as it walks
// the statement (each pushes a child of the current node), operator
// decorators attach flat child nodes under the execute node, and End()
// detaches the finished Trace. While inactive every Span is a no-op, so the
// instrumented engine costs one null check per stage on untraced queries.
// A Tracer is single-query, single-thread: concurrent sessions each own one,
// which is what keeps their spans from ever mixing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "fs/cluster_model.h"
#include "fs/io_stats.h"
#include "table/scan_stats.h"

namespace dtl::obs {

/// Everything a span attributes to its stage.
struct SpanStats {
  double wall_seconds = 0;
  double modeled_seconds = 0;     // ClusterModel::JobSeconds over the io delta
  fs::IoSnapshot io;              // substrate I/O charged during the span
  table::ScanSnapshot scan;       // scan-meter delta during the span
  uint64_t rows = 0;              // rows emitted by this stage/operator
  uint64_t batches = 0;           // batches emitted (vectorized stages)
  uint64_t bytes = 0;             // encoded bytes attributed to this stage
};

/// One node of the trace tree.
struct TraceNode {
  std::string name;    // from obs::names (enforced by the metric-hygiene lint)
  std::string detail;  // free-form qualifier, e.g. the table being scanned
  SpanStats stats;
  std::vector<std::unique_ptr<TraceNode>> children;

  TraceNode* AddChild(const char* name_in, std::string detail_in = {});
  /// Depth-first search for the first node with the given name.
  const TraceNode* Find(std::string_view name_in) const;
};

/// A finished query trace, detached from the tracer by Tracer::End.
struct Trace {
  std::unique_ptr<TraceNode> root;

  /// Indented tree, one line per node:
  ///   `name(detail) wall=… model=… rows=… batches=… bytes=…`
  std::vector<std::string> RenderTextLines() const;
  std::string RenderText() const;
  std::string RenderJson() const;
  const TraceNode* Find(std::string_view name) const {
    return root == nullptr ? nullptr : root->Find(name);
  }
};

class Span;

/// Session-scoped trace builder. Not thread-safe: one query at a time.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Binds the meters whose deltas spans attribute, and the cluster model
  /// that converts io deltas to modelled seconds. Any pointer may be null.
  void Configure(const fs::IoMeter* io, const table::ScanMeter* scan,
                 const fs::ClusterModel* cluster) {
    io_ = io;
    scan_ = scan;
    cluster_ = cluster;
  }

  /// True between Begin and End — i.e. a query is being traced.
  bool active() const { return root_ != nullptr; }

  /// Starts a trace rooted at `name`. No-op (keeps the old trace) if active.
  void Begin(const char* name);
  /// Finishes the trace and returns it; the tracer goes inactive.
  Trace End();

  /// The innermost open span's node (the root right after Begin); null when
  /// inactive.
  TraceNode* current() { return stack_.empty() ? nullptr : stack_.back(); }

  /// Adds a child under `parent` (default: the current node) without opening
  /// a span. Returns null when inactive — callers must handle it.
  TraceNode* AddNode(const char* name, std::string detail = {},
                     TraceNode* parent = nullptr);
  /// Adds a retrospective leaf that only carries wall time (e.g. the parse
  /// stage, measured before the trace began).
  void AddLeaf(const char* name, double wall_seconds);

  const fs::IoMeter* io() const { return io_; }
  const table::ScanMeter* scan() const { return scan_; }
  const fs::ClusterModel* cluster() const { return cluster_; }

 private:
  friend class Span;

  const fs::IoMeter* io_ = nullptr;
  const table::ScanMeter* scan_ = nullptr;
  const fs::ClusterModel* cluster_ = nullptr;
  std::unique_ptr<TraceNode> root_;
  std::vector<TraceNode*> stack_;
};

/// RAII stage span. The named constructor creates a child of the current
/// node and makes it current; the node constructor adopts an existing node
/// (e.g. the execute node that operator decorators hang off) without
/// touching the stack. Destruction attributes wall time and the io/scan
/// deltas observed since construction. All methods are no-ops when the
/// tracer is null or inactive.
class Span {
 public:
  Span(Tracer* tracer, const char* name, std::string detail = {});
  Span(Tracer* tracer, TraceNode* node);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  void AddRows(uint64_t n) {
    if (node_ != nullptr) node_->stats.rows += n;
  }
  void AddBatches(uint64_t n) {
    if (node_ != nullptr) node_->stats.batches += n;
  }
  void AddBytes(uint64_t n) {
    if (node_ != nullptr) node_->stats.bytes += n;
  }
  void SetDetail(std::string detail) {
    if (node_ != nullptr) node_->detail = std::move(detail);
  }
  TraceNode* node() { return node_; }

 private:
  Tracer* tracer_ = nullptr;
  TraceNode* node_ = nullptr;
  bool pushed_ = false;
  Stopwatch watch_;
  fs::IoSnapshot io_before_;
  table::ScanSnapshot scan_before_;
};

}  // namespace dtl::obs
