// Registered metric and span identifiers. The metric-hygiene lint
// (scripts/lint.py rule 6) rejects string literals at metric/span call sites
// outside src/obs — every name used by instrumentation code must be one of
// these constexpr identifiers so the full metric surface is enumerable here.
//
// Naming scheme (DESIGN.md §10): `<subsystem>.<object>.<unit-ish noun>`,
// lowercase, dot-separated. Labeled families append `{label}` at registration
// time (e.g. `kv.puts{orders}`); the bare name is the family.
#pragma once

namespace dtl::obs::names {

// --- fs::IoMeter channel views ------------------------------------------------
inline constexpr const char* kFsHdfsBytesRead = "fs.hdfs.bytes_read";
inline constexpr const char* kFsHdfsBytesWritten = "fs.hdfs.bytes_written";
inline constexpr const char* kFsHdfsFilesCreated = "fs.hdfs.files_created";
inline constexpr const char* kFsHdfsSeeks = "fs.hdfs.seeks";
inline constexpr const char* kFsHbaseBytesRead = "fs.hbase.bytes_read";
inline constexpr const char* kFsHbaseBytesWritten = "fs.hbase.bytes_written";
inline constexpr const char* kFsHbaseReadOps = "fs.hbase.read_ops";
inline constexpr const char* kFsHbaseWriteOps = "fs.hbase.write_ops";

// --- table::ScanMeter views ---------------------------------------------------
inline constexpr const char* kScanBatches = "scan.batches";
inline constexpr const char* kScanRows = "scan.rows";
inline constexpr const char* kScanBytes = "scan.bytes";
inline constexpr const char* kScanPassthroughBatches = "scan.passthrough_batches";
inline constexpr const char* kScanPatchedRows = "scan.patched_rows";
inline constexpr const char* kScanMaskedRows = "scan.masked_rows";
inline constexpr const char* kScanPredicateDrops = "scan.predicate_drops";
inline constexpr const char* kScanMaterializedRows = "scan.materialized_rows";
inline constexpr const char* kScanStripesSkipped = "scan.stripes_skipped";
inline constexpr const char* kScanStripesSkippedBloom = "scan.stripes_skipped_bloom";
inline constexpr const char* kScanFilesSkipped = "scan.files_skipped";

// --- orc::StripeCache (process-wide decoded-stripe cache) ---------------------
inline constexpr const char* kStripeCacheHits = "stripe_cache.hits";
inline constexpr const char* kStripeCacheMisses = "stripe_cache.misses";
inline constexpr const char* kStripeCacheBytes = "stripe_cache.bytes";
inline constexpr const char* kStripeCacheEntries = "stripe_cache.entries";
inline constexpr const char* kStripeCacheEvictions = "stripe_cache.evictions";

// --- kv::KvStore views (labeled by table name) --------------------------------
inline constexpr const char* kKvPuts = "kv.puts";
inline constexpr const char* kKvDeletes = "kv.deletes";
inline constexpr const char* kKvGets = "kv.gets";
inline constexpr const char* kKvFlushes = "kv.flushes";
inline constexpr const char* kKvCompactions = "kv.compactions";
inline constexpr const char* kKvWalSyncs = "kv.wal_syncs";
inline constexpr const char* kKvApproxBytes = "kv.approx_bytes";
inline constexpr const char* kKvApproxCells = "kv.approx_cells";
inline constexpr const char* kKvSstables = "kv.sstables";

// --- BackgroundScheduler views ------------------------------------------------
inline constexpr const char* kSchedulerJobs = "scheduler.jobs";
inline constexpr const char* kSchedulerRounds = "scheduler.rounds";
inline constexpr const char* kSchedulerLastRoundSeconds = "scheduler.last_round_seconds";

// --- SQL engine counters (labeled by statement kind) --------------------------
inline constexpr const char* kSqlStatements = "sql.statements";

// --- DualTable histograms (labeled by table name) -----------------------------
inline constexpr const char* kDualEditSeconds = "dualtable.edit.seconds";
inline constexpr const char* kDualOverwriteSeconds = "dualtable.overwrite.seconds";
inline constexpr const char* kDualCompactSeconds = "dualtable.compact.seconds";
inline constexpr const char* kDualUnionReadRows = "dualtable.union_read.rows";
inline constexpr const char* kDualUnionReadSeconds = "dualtable.union_read.seconds";

// --- Incremental compaction (labeled by table name) ---------------------------
// Stripe delta density is observed in parts-per-million (density × 1e6) so the
// integer-tick histogram keeps resolution below 1%.
inline constexpr const char* kDualIncrementalCompactSeconds =
    "dualtable.incremental_compact.seconds";
inline constexpr const char* kDualStripeDensityPpm =
    "dualtable.incremental_compact.stripe_density_ppm";
inline constexpr const char* kDualStripesRewritten =
    "dualtable.incremental_compact.stripes_rewritten";
inline constexpr const char* kDualStripesCopied =
    "dualtable.incremental_compact.stripes_copied";
inline constexpr const char* kDualModsFolded =
    "dualtable.incremental_compact.mods_folded";
// Calibrated cost-model coefficients exported as gauges (scale × 1e6).
inline constexpr const char* kDualEditCostScalePpm =
    "dualtable.cost_model.edit_scale_ppm";
inline constexpr const char* kDualOverwriteCostScalePpm =
    "dualtable.cost_model.overwrite_scale_ppm";

// --- Secondary index (labeled by table name) ----------------------------------
inline constexpr const char* kIndexLookups = "dualtable.index.lookups";
inline constexpr const char* kIndexEntriesAdded = "dualtable.index.entries_added";
inline constexpr const char* kIndexEntriesFolded = "dualtable.index.entries_folded";
inline constexpr const char* kIndexCandidateRows = "dualtable.index.candidate_rows";
inline constexpr const char* kIndexStaleDropped = "dualtable.index.stale_dropped";
inline constexpr const char* kIndexRebuilds = "dualtable.index.rebuilds";
// Registry counters bumped inline by SecondaryIndex (the `dualtable.index.*`
// names above are views over its Stats atomics; these count even when the
// owning table object has been dropped and the views unregistered).
inline constexpr const char* kIndexCounterLookups = "index.lookups";
inline constexpr const char* kIndexCounterStaleSkipped = "index.stale_entries_skipped";
inline constexpr const char* kIndexCounterRebuilds = "index.rebuilds";

// --- MVCC snapshot views (labeled by table name) ------------------------------
inline constexpr const char* kSnapshotAcquired = "snapshot.acquired";
inline constexpr const char* kSnapshotActive = "snapshot.active";
inline constexpr const char* kSnapshotPinnedGenerations = "snapshot.pinned_generations";
inline constexpr const char* kSnapshotOldestSeconds = "snapshot.oldest_seconds";

// --- Obs-driven adaptive maintenance (labeled by table name; DESIGN.md §14) ---
// `maintenance.triggers` is additionally labeled by reason:
// `maintenance.triggers{density}` / `{latency}` / `{bytes}` count what fired.
inline constexpr const char* kMaintenanceRounds = "maintenance.rounds";
inline constexpr const char* kMaintenanceTriggers = "maintenance.triggers";
inline constexpr const char* kMaintenanceSkips = "maintenance.skips";
inline constexpr const char* kMaintenancePreviewScans = "maintenance.preview_scans";
inline constexpr const char* kMaintenanceIncrementalCompacts =
    "maintenance.incremental_compacts";
inline constexpr const char* kMaintenanceFullCompacts = "maintenance.full_compacts";
inline constexpr const char* kMaintenanceReclaims = "maintenance.reclaims";
// Decision inputs exported as gauges at each round.
inline constexpr const char* kMaintenanceUnionReadP95Us =
    "maintenance.union_read_p95_us";
inline constexpr const char* kMaintenanceDeltaDensityPpm =
    "maintenance.delta_density_ppm";

// --- Telemetry pipeline (recorder + structured query log) ---------------------
inline constexpr const char* kRecorderSamples = "recorder.samples";
inline constexpr const char* kQueryLogRecords = "query_log.records";
inline constexpr const char* kQueryLogSlow = "query_log.slow";

// --- Parallel scan ------------------------------------------------------------
inline constexpr const char* kParallelScans = "parallel_scan.scans";
inline constexpr const char* kParallelMorsels = "parallel_scan.morsels";
inline constexpr const char* kParallelWorkerRows = "parallel_scan.worker_rows";

// --- Span / trace-node names --------------------------------------------------
inline constexpr const char* kSpanQuery = "query";
inline constexpr const char* kSpanParse = "parse";
inline constexpr const char* kSpanBind = "bind";
inline constexpr const char* kSpanSelect = "select";
inline constexpr const char* kSpanExecute = "execute";
inline constexpr const char* kSpanInsert = "insert";
inline constexpr const char* kSpanUpdate = "update";
inline constexpr const char* kSpanDelete = "delete";
inline constexpr const char* kSpanCompact = "compact";
inline constexpr const char* kSpanCompactPlan = "compact-plan";
inline constexpr const char* kSpanCompactRewrite = "compact-rewrite";
inline constexpr const char* kSpanMerge = "merge";

// --- Operator trace-node names ------------------------------------------------
inline constexpr const char* kOpScan = "scan";
inline constexpr const char* kOpParallelScan = "parallel-scan";
inline constexpr const char* kOpProject = "project";
inline constexpr const char* kOpFilter = "filter";
inline constexpr const char* kOpJoin = "hash-join";
inline constexpr const char* kOpAggregate = "hash-aggregate";
inline constexpr const char* kOpSort = "sort";
inline constexpr const char* kOpLimit = "limit";
inline constexpr const char* kOpIndexLookup = "index-lookup";

}  // namespace dtl::obs::names
