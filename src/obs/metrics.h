// Process-agnostic metrics registry: named counters, gauges, and
// exponential-bucket histograms with a lock-free relaxed-atomic hot path.
//
// Registration (counter()/gauge()/histogram()/RegisterView) takes a mutex and
// returns a pointer that stays valid for the registry's lifetime; the hot
// path — Inc/Set/Observe on the returned object — is a handful of relaxed
// atomic ops and never locks. Snapshot/delta semantics mirror
// table::ScanSnapshot: Snapshot() captures every instrument, and
// `after - before` yields the delta for a measured region.
//
// Names must come from src/obs/metric_names.h (enforced by the metric-hygiene
// lint); an optional label selects one member of a family, rendered as
// `name{label}`.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dtl::obs {

/// Monotonic counter. Inc is a single relaxed fetch_add.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins signed gauge.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time copy of one histogram (see Histogram).
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;  // sum of observed values (ticks)
  uint64_t max = 0;
  std::vector<uint64_t> buckets;  // buckets[i] counts values in [2^(i-1), 2^i)

  double Mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / count; }
  HistogramSnapshot operator-(const HistogramSnapshot& base) const;
};

/// Exponential (power-of-two) bucket histogram over non-negative integer
/// "ticks". Observe is three relaxed atomics plus a CAS loop only when a new
/// maximum is seen. Seconds are recorded as integer microseconds via
/// ObserveSeconds so the bucket math stays integral.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 64;

  void Observe(uint64_t value);
  void ObserveSeconds(double seconds) {
    if (seconds < 0) seconds = 0;
    Observe(static_cast<uint64_t>(seconds * 1e6));  // microseconds
  }

  HistogramSnapshot Snapshot() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
};

/// Callback view: a value computed at render/snapshot time from external
/// state (e.g. an IoMeter channel or a KvStore stat). Views make existing
/// ad-hoc meters visible in one report without double-counting writes.
using ViewFn = std::function<double()>;

/// Full registry capture; supports `after - before` deltas. Views are
/// evaluated at capture time.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, double> views;

  MetricsSnapshot operator-(const MetricsSnapshot& base) const;
};

/// Named-instrument registry. Thread-safe; instrument pointers are stable for
/// the registry's lifetime. Re-registering the same name{label} returns the
/// existing instrument (views overwrite — re-registration rebinds the
/// callback, which lets a session re-point a view at a recreated object).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(const char* name, std::string_view label = {});
  Gauge* gauge(const char* name, std::string_view label = {});
  Histogram* histogram(const char* name, std::string_view label = {});
  void RegisterView(const char* name, ViewFn fn, std::string_view label = {});
  void UnregisterView(const char* name, std::string_view label = {});

  MetricsSnapshot Snapshot() const;

  /// `name value` lines sorted by name; histograms render count/mean/max.
  std::string RenderText() const;
  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...},
  /// "views":{...}}.
  std::string RenderJson() const;

 private:
  static std::string Key(const char* name, std::string_view label);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, ViewFn> views_;
};

}  // namespace dtl::obs
