// Process-agnostic metrics registry: named counters, gauges, and
// exponential-bucket histograms with a lock-free relaxed-atomic hot path.
//
// Registration (counter()/gauge()/histogram()/RegisterView) takes a mutex and
// returns a pointer that stays valid for the registry's lifetime; the hot
// path — Inc/Set/Observe on the returned object — is a handful of relaxed
// atomic ops and never locks. Snapshot/delta semantics mirror
// table::ScanSnapshot: Snapshot() captures every instrument, and
// `after - before` yields the delta for a measured region.
//
// Names must come from src/obs/metric_names.h (enforced by the metric-hygiene
// lint); an optional label selects one member of a family, rendered as
// `name{label}`.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dtl::obs {

/// Monotonic counter. Inc is a single relaxed fetch_add.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins signed gauge.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time copy of one histogram (see Histogram).
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;  // sum of observed values (ticks)
  uint64_t max = 0;
  std::vector<uint64_t> buckets;  // buckets[i] counts values in [2^(i-1), 2^i)

  double Mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / count; }
  /// Approximate value at quantile q in [0,1]: the upper bound of the bucket
  /// holding the q-th observation, clamped to the observed max. Power-of-two
  /// buckets bound the relative error by 2x, which is enough for p50/p95/p99
  /// trigger decisions.
  uint64_t ValueAtQuantile(double q) const;
  HistogramSnapshot operator-(const HistogramSnapshot& base) const;
};

/// Exponential (power-of-two) bucket histogram over non-negative integer
/// "ticks". Observe is a handful of relaxed atomics plus a CAS loop only when
/// a new maximum is seen. Seconds are recorded as integer microseconds via
/// ObserveSeconds so the bucket math stays integral.
///
/// Besides the lifetime aggregate, every histogram keeps a rotating ring of
/// kWindowSlots timed sub-histograms so `p95 over the last N seconds` is
/// queryable without sampling the hot path. Observe writes into the active
/// slot with the same relaxed atomics; rotation (MaybeRotate) is driven
/// externally — by MetricsRecorder ticks or an explicit RotateWindows — and
/// takes a small mutex only when a slot actually expires. An observation
/// racing a rotation may land in the just-retired slot; that is benign (the
/// slot is still inside the window) and every access is atomic, so the race
/// is TSan-clean by construction.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 64;
  static constexpr size_t kWindowSlots = 8;
  static constexpr uint64_t kDefaultSlotWidthMicros = 1'000'000;

  void Observe(uint64_t value);
  void ObserveSeconds(double seconds) {
    if (seconds < 0) seconds = 0;
    Observe(static_cast<uint64_t>(seconds * 1e6));  // microseconds
  }

  HistogramSnapshot Snapshot() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Advance the slot ring if the active slot is older than the slot width at
  /// `now_us`. Returns true when a rotation happened. Safe to call from any
  /// thread; concurrent callers serialize on a rotation-only mutex that the
  /// Observe hot path never touches.
  bool MaybeRotate(uint64_t now_us);

  /// Merge every slot that overlaps [now_us - window_us, now_us] into one
  /// snapshot (max is the lifetime max — slots do not track their own).
  HistogramSnapshot WindowSnapshot(uint64_t window_us, uint64_t now_us) const;

  /// Slot width used by MaybeRotate; settable before traffic for tests.
  void set_slot_width_micros(uint64_t w) {
    slot_width_us_.store(w == 0 ? 1 : w, std::memory_order_relaxed);
  }
  uint64_t slot_width_micros() const {
    return slot_width_us_.load(std::memory_order_relaxed);
  }

 private:
  struct WindowSlot {
    std::atomic<uint64_t> start_us{0};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> buckets[kNumBuckets] = {};
  };

  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};

  std::atomic<uint32_t> active_slot_{0};
  std::atomic<uint64_t> slot_width_us_{kDefaultSlotWidthMicros};
  WindowSlot slots_[kWindowSlots];
  std::mutex rotate_mu_;       // rotation only; never taken by Observe
  bool window_started_ = false;  // guarded by rotate_mu_; first tick anchors
};

/// Callback view: a value computed at render/snapshot time from external
/// state (e.g. an IoMeter channel or a KvStore stat). Views make existing
/// ad-hoc meters visible in one report without double-counting writes.
using ViewFn = std::function<double()>;

/// Full registry capture; supports `after - before` deltas. Views are
/// evaluated at capture time.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, double> views;

  MetricsSnapshot operator-(const MetricsSnapshot& base) const;
};

/// Render a captured snapshot as sorted `name value` lines / one JSON object.
/// Free functions so the recorder can render stored deltas without holding a
/// registry pointer.
std::string RenderMetricsText(const MetricsSnapshot& snap);
std::string RenderMetricsJson(const MetricsSnapshot& snap);

/// Named-instrument registry. Thread-safe; instrument pointers are stable for
/// the registry's lifetime. Re-registering the same name{label} returns the
/// existing instrument (views overwrite — re-registration rebinds the
/// callback, which lets a session re-point a view at a recreated object).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(const char* name, std::string_view label = {});
  Gauge* gauge(const char* name, std::string_view label = {});
  Histogram* histogram(const char* name, std::string_view label = {});
  void RegisterView(const char* name, ViewFn fn, std::string_view label = {});
  void UnregisterView(const char* name, std::string_view label = {});

  MetricsSnapshot Snapshot() const;

  /// Advance every histogram's window ring to `now_us` (see
  /// Histogram::MaybeRotate). Called from MetricsRecorder ticks and the
  /// adaptive-maintenance trigger. Returns the number of histograms rotated.
  size_t RotateWindows(uint64_t now_us) const;

  /// Windowed snapshot of every histogram: merged slots covering the last
  /// `window_us` microseconds ending at `now_us`.
  std::map<std::string, HistogramSnapshot> WindowSnapshots(uint64_t window_us,
                                                           uint64_t now_us) const;

  /// The registered histogram for name{label}, or nullptr. Unlike
  /// histogram(), never creates — usable from decision paths that must not
  /// mutate the registry.
  Histogram* FindHistogram(const char* name, std::string_view label = {}) const;

  /// Sum over the counters keyed `name` or `name{...}` — the cheap
  /// per-statement read the query log uses: O(#counters) string checks and
  /// relaxed loads, no view evaluation, no histogram copying.
  uint64_t SumCounterFamily(const char* name) const;

  /// Max over the views keyed `name` or `name{...}`, evaluating only that
  /// family's callbacks (outside the registry lock, like Snapshot()).
  double MaxViewFamily(const char* name) const;

  /// `name value` lines sorted by name; histograms render count/mean/max.
  std::string RenderText() const;
  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...},
  /// "views":{...}}.
  std::string RenderJson() const;

 private:
  static std::string Key(const char* name, std::string_view label);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, ViewFn> views_;
};

}  // namespace dtl::obs
