// MetricsRecorder: a background sampler over a MetricsRegistry. Each Tick()
// rotates every histogram's window ring and captures the registry delta since
// the previous tick into a bounded in-memory ring of timed samples, which
// stream out as JSON-lines (one object per sample) or feed the windowed
// SHOW STATS surface. Ticks are driven by the BackgroundScheduler in a live
// session, or manually (with a ManualTelemetryClock) in tests.
//
// RenderPrometheusText is the exposition-format renderer for the *current*
// registry state — counters/gauges/views as `dtl_<name>{label="x"} value`
// lines, histograms as cumulative `_bucket{le=...}` series.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/telemetry_clock.h"

namespace dtl::obs {

struct RecorderOptions {
  size_t capacity = 240;            // samples kept; oldest dropped on overflow
  uint64_t window_us = 10'000'000;  // default window for WindowSnapshots()
  TelemetryClock* clock = nullptr;  // nullptr -> DefaultTelemetryClock()
};

/// One captured sample: the registry movement since the previous tick.
struct RecorderSample {
  uint64_t t_us = 0;
  MetricsSnapshot delta;
};

class MetricsRecorder {
 public:
  MetricsRecorder(MetricsRegistry* registry, RecorderOptions options = {});

  /// Rotate histogram windows, capture the delta since the last tick, and
  /// push it into the ring (dropping the oldest sample when full).
  void Tick();

  std::vector<RecorderSample> Samples() const;
  size_t size() const;
  uint64_t total_samples() const;

  /// Windowed histogram snapshots at the recorder's clock "now", using the
  /// configured default window.
  std::map<std::string, HistogramSnapshot> WindowSnapshots() const;

  uint64_t NowMicros() const { return clock_->NowMicros(); }
  uint64_t window_micros() const { return options_.window_us; }

  /// One JSON object per line: {"t_us":...,"metrics":{...delta...}}.
  std::string RenderJsonLines() const;

 private:
  MetricsRegistry* registry_;
  RecorderOptions options_;
  TelemetryClock* clock_;
  Counter* samples_counter_;

  mutable std::mutex mu_;
  MetricsSnapshot last_;
  bool has_last_ = false;
  std::deque<RecorderSample> ring_;
  uint64_t total_ = 0;
};

/// Prometheus-style text exposition of a captured snapshot. Names are
/// prefixed `dtl_` with dots mapped to underscores; a `name{label}` registry
/// key renders as `dtl_name{label="label"}`. Histograms emit cumulative
/// `_bucket{le="2^i-1"}` series up to the highest occupied bucket, then
/// `+Inf`, `_sum`, and `_count`.
std::string RenderPrometheusText(const MetricsSnapshot& snap);

}  // namespace dtl::obs
