#include "obs/trace.h"

#include <sstream>

namespace dtl::obs {

namespace {

void Accumulate(fs::IoSnapshot* into, const fs::IoSnapshot& d) {
  into->hdfs_bytes_read += d.hdfs_bytes_read;
  into->hdfs_bytes_written += d.hdfs_bytes_written;
  into->hdfs_files_created += d.hdfs_files_created;
  into->hdfs_seeks += d.hdfs_seeks;
  into->hbase_bytes_read += d.hbase_bytes_read;
  into->hbase_bytes_written += d.hbase_bytes_written;
  into->hbase_read_ops += d.hbase_read_ops;
  into->hbase_write_ops += d.hbase_write_ops;
}

void Accumulate(table::ScanSnapshot* into, const table::ScanSnapshot& d) {
  into->batches += d.batches;
  into->rows += d.rows;
  into->bytes += d.bytes;
  into->passthrough_batches += d.passthrough_batches;
  into->patched_rows += d.patched_rows;
  into->masked_rows += d.masked_rows;
  into->predicate_drops += d.predicate_drops;
  into->materialized_rows += d.materialized_rows;
}

uint64_t IoBytes(const fs::IoSnapshot& io) {
  return io.hdfs_bytes_read + io.hdfs_bytes_written + io.hbase_bytes_read +
         io.hbase_bytes_written;
}

void RenderNodeText(const TraceNode& node, size_t depth,
                    std::vector<std::string>* lines) {
  std::ostringstream line;
  for (size_t i = 0; i < depth; ++i) line << "  ";
  line << node.name;
  if (!node.detail.empty()) line << "(" << node.detail << ")";
  line << " wall=" << node.stats.wall_seconds * 1e3 << "ms";
  line << " model=" << node.stats.modeled_seconds << "s";
  line << " rows=" << node.stats.rows;
  line << " batches=" << node.stats.batches;
  line << " bytes=" << node.stats.bytes;
  const uint64_t io_bytes = IoBytes(node.stats.io);
  if (io_bytes > 0) line << " io_bytes=" << io_bytes;
  if (node.stats.scan.rows > 0) line << " scan_rows=" << node.stats.scan.rows;
  lines->push_back(line.str());
  for (const auto& child : node.children) {
    RenderNodeText(*child, depth + 1, lines);
  }
}

void RenderNodeJson(const TraceNode& node, std::ostringstream* out) {
  *out << "{\"name\":\"" << node.name << "\"";
  if (!node.detail.empty()) *out << ",\"detail\":\"" << node.detail << "\"";
  *out << ",\"wall_seconds\":" << node.stats.wall_seconds
       << ",\"modeled_seconds\":" << node.stats.modeled_seconds
       << ",\"rows\":" << node.stats.rows << ",\"batches\":" << node.stats.batches
       << ",\"bytes\":" << node.stats.bytes
       << ",\"io\":{\"hdfs_read\":" << node.stats.io.hdfs_bytes_read
       << ",\"hdfs_written\":" << node.stats.io.hdfs_bytes_written
       << ",\"hbase_read\":" << node.stats.io.hbase_bytes_read
       << ",\"hbase_written\":" << node.stats.io.hbase_bytes_written << "}"
       << ",\"scan\":{\"rows\":" << node.stats.scan.rows
       << ",\"bytes\":" << node.stats.scan.bytes
       << ",\"patched\":" << node.stats.scan.patched_rows
       << ",\"masked\":" << node.stats.scan.masked_rows << "}";
  *out << ",\"children\":[";
  bool first = true;
  for (const auto& child : node.children) {
    if (!first) *out << ",";
    first = false;
    RenderNodeJson(*child, out);
  }
  *out << "]}";
}

}  // namespace

TraceNode* TraceNode::AddChild(const char* name_in, std::string detail_in) {
  auto child = std::make_unique<TraceNode>();
  child->name = name_in;
  child->detail = std::move(detail_in);
  TraceNode* raw = child.get();
  children.push_back(std::move(child));
  return raw;
}

const TraceNode* TraceNode::Find(std::string_view name_in) const {
  if (name == name_in) return this;
  for (const auto& child : children) {
    if (const TraceNode* found = child->Find(name_in)) return found;
  }
  return nullptr;
}

std::vector<std::string> Trace::RenderTextLines() const {
  std::vector<std::string> lines;
  if (root != nullptr) RenderNodeText(*root, 0, &lines);
  return lines;
}

std::string Trace::RenderText() const {
  std::ostringstream out;
  for (const auto& line : RenderTextLines()) out << line << "\n";
  return out.str();
}

std::string Trace::RenderJson() const {
  if (root == nullptr) return "null";
  std::ostringstream out;
  RenderNodeJson(*root, &out);
  return out.str();
}

void Tracer::Begin(const char* name) {
  if (active()) return;
  root_ = std::make_unique<TraceNode>();
  root_->name = name;
  stack_.clear();
  stack_.push_back(root_.get());
}

Trace Tracer::End() {
  Trace trace;
  trace.root = std::move(root_);
  stack_.clear();
  return trace;
}

TraceNode* Tracer::AddNode(const char* name, std::string detail,
                           TraceNode* parent) {
  if (!active()) return nullptr;
  if (parent == nullptr) parent = current();
  return parent->AddChild(name, std::move(detail));
}

void Tracer::AddLeaf(const char* name, double wall_seconds) {
  TraceNode* node = AddNode(name);
  if (node != nullptr) node->stats.wall_seconds = wall_seconds;
}

Span::Span(Tracer* tracer, const char* name, std::string detail) {
  if (tracer == nullptr || !tracer->active()) return;
  tracer_ = tracer;
  node_ = tracer->AddNode(name, std::move(detail));
  tracer->stack_.push_back(node_);
  pushed_ = true;
  if (tracer->io_ != nullptr) io_before_ = tracer->io_->Snapshot();
  if (tracer->scan_ != nullptr) scan_before_ = tracer->scan_->Snapshot();
  watch_.Restart();
}

Span::Span(Tracer* tracer, TraceNode* node) {
  if (tracer == nullptr || !tracer->active() || node == nullptr) return;
  tracer_ = tracer;
  node_ = node;
  if (tracer->io_ != nullptr) io_before_ = tracer->io_->Snapshot();
  if (tracer->scan_ != nullptr) scan_before_ = tracer->scan_->Snapshot();
  watch_.Restart();
}

Span::~Span() {
  if (node_ == nullptr) return;
  node_->stats.wall_seconds += watch_.ElapsedSeconds();
  if (tracer_->io_ != nullptr) {
    const fs::IoSnapshot delta = tracer_->io_->Snapshot() - io_before_;
    Accumulate(&node_->stats.io, delta);
    if (tracer_->cluster_ != nullptr) {
      node_->stats.modeled_seconds += tracer_->cluster_->JobSeconds(delta);
    }
  }
  if (tracer_->scan_ != nullptr) {
    Accumulate(&node_->stats.scan, tracer_->scan_->Snapshot() - scan_before_);
  }
  if (pushed_ && !tracer_->stack_.empty() && tracer_->stack_.back() == node_) {
    tracer_->stack_.pop_back();
  }
}

}  // namespace dtl::obs
