// Structured query log: one record per top-level SQL statement, captured by
// sql::Engine from the statement span plus registry deltas. A bounded
// mutex-guarded ring — statement execution already takes locks far heavier
// than this, so the hot-path argument that applies to metrics does not apply
// here. Records over the slow threshold are flagged (and counted in
// `query_log.slow`) so "show me the slow queries" is one filter away.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace dtl::obs {

struct QueryLogRecord {
  std::string kind;     // statement kind: select / insert / update / ...
  std::string sql;      // original statement text
  double wall_seconds = 0;
  double modeled_seconds = 0;     // cluster-model seconds for the io delta
  uint64_t rows = 0;              // result rows (or rows affected for DML)
  uint64_t bytes_decoded = 0;     // scan.bytes delta
  uint64_t stripe_cache_hits = 0;
  uint64_t index_probes = 0;      // index.lookups delta
  double snapshot_age_seconds = 0;  // oldest live snapshot at capture
  bool slow = false;
  bool ok = true;
  std::string error;  // status message when !ok
};

struct QueryLogOptions {
  size_t capacity = 256;
  double slow_threshold_seconds = 0.1;
};

class QueryLog {
 public:
  /// `registry` may be null (no counters); the log itself still records.
  explicit QueryLog(QueryLogOptions options = {}, MetricsRegistry* registry = nullptr);

  /// Stamps the slow flag from the threshold, appends, drops the oldest
  /// record past capacity.
  void Append(QueryLogRecord record);

  /// The most recent min(n, size) records, oldest first.
  std::vector<QueryLogRecord> Tail(size_t n) const;

  size_t size() const;
  uint64_t total() const;
  uint64_t slow_total() const;
  double slow_threshold_seconds() const { return options_.slow_threshold_seconds; }

  /// One JSON object per line, oldest first.
  std::string RenderJsonLines() const;

 private:
  QueryLogOptions options_;
  Counter* records_counter_ = nullptr;
  Counter* slow_counter_ = nullptr;

  mutable std::mutex mu_;
  std::deque<QueryLogRecord> ring_;
  uint64_t total_ = 0;
  uint64_t slow_total_ = 0;
};

}  // namespace dtl::obs
