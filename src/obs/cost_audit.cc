#include "obs/cost_audit.h"

#include <sstream>

namespace dtl::obs {

std::string CostAuditRecord::ToString() const {
  std::ostringstream out;
  out << statement << " " << table << " ratio=" << ratio
      << (ratio_from_hint ? " (hint)" : " (history)")
      << " predicted{edit=" << predicted_edit_seconds
      << "s overwrite=" << predicted_overwrite_seconds << "s winner="
      << predicted_plan << "}"
      << " executed{plan=" << executed_plan << " rows=" << rows_matched
      << " wall=" << measured_wall_seconds
      << "s modeled=" << measured_modeled_seconds << "s}"
      << " error=" << PredictionErrorFraction();
  return out.str();
}

std::string CostAuditRecord::ToJson() const {
  std::ostringstream out;
  out << "{\"table\":\"" << table << "\",\"statement\":\"" << statement
      << "\",\"ratio\":" << ratio
      << ",\"ratio_from_hint\":" << (ratio_from_hint ? "true" : "false")
      << ",\"predicted_edit_seconds\":" << predicted_edit_seconds
      << ",\"predicted_overwrite_seconds\":" << predicted_overwrite_seconds
      << ",\"predicted_plan\":\"" << predicted_plan
      << "\",\"executed_plan\":\"" << executed_plan
      << "\",\"rows_matched\":" << rows_matched
      << ",\"measured_wall_seconds\":" << measured_wall_seconds
      << ",\"measured_modeled_seconds\":" << measured_modeled_seconds
      << ",\"prediction_error\":" << PredictionErrorFraction() << "}";
  return out.str();
}

void CostAudit::Record(CostAuditRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(std::move(record));
}

std::vector<CostAuditRecord> CostAudit::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

std::vector<CostAuditRecord> CostAudit::RecordsSince(size_t cursor) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (cursor >= records_.size()) return {};
  return std::vector<CostAuditRecord>(records_.begin() + static_cast<long>(cursor),
                                      records_.end());
}

double CostAudit::MeanPredictionErrorSince(size_t cursor) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (cursor >= records_.size()) return 0;
  double sum = 0;
  for (size_t i = cursor; i < records_.size(); ++i) {
    sum += records_[i].PredictionErrorFraction();
  }
  return sum / static_cast<double>(records_.size() - cursor);
}

size_t CostAudit::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

void CostAudit::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

std::string CostAudit::RenderText() const {
  std::ostringstream out;
  for (const auto& r : Records()) out << r.ToString() << "\n";
  return out.str();
}

std::string CostAudit::RenderJson() const {
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const auto& r : Records()) {
    if (!first) out << ",";
    first = false;
    out << r.ToJson();
  }
  out << "]";
  return out.str();
}

}  // namespace dtl::obs
