#include "obs/query_log.h"

#include <sstream>

#include "obs/metric_names.h"

namespace dtl::obs {

namespace {

void AppendJsonString(std::ostringstream* out, std::string_view s) {
  *out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      *out << '\\' << c;
    } else if (c == '\n') {
      *out << "\\n";
    } else if (c == '\t') {
      *out << "\\t";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      *out << ' ';
    } else {
      *out << c;
    }
  }
  *out << '"';
}

}  // namespace

QueryLog::QueryLog(QueryLogOptions options, MetricsRegistry* registry)
    : options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
  if (registry != nullptr) {
    records_counter_ = registry->counter(names::kQueryLogRecords);
    slow_counter_ = registry->counter(names::kQueryLogSlow);
  }
}

void QueryLog::Append(QueryLogRecord record) {
  record.slow = options_.slow_threshold_seconds > 0 &&
                record.wall_seconds >= options_.slow_threshold_seconds;
  if (records_counter_ != nullptr) records_counter_->Inc();
  if (record.slow && slow_counter_ != nullptr) slow_counter_->Inc();
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  if (record.slow) ++slow_total_;
  ring_.push_back(std::move(record));
  if (ring_.size() > options_.capacity) ring_.pop_front();
}

std::vector<QueryLogRecord> QueryLog::Tail(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t take = n < ring_.size() ? n : ring_.size();
  return {ring_.end() - static_cast<ptrdiff_t>(take), ring_.end()};
}

size_t QueryLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t QueryLog::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

uint64_t QueryLog::slow_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_total_;
}

std::string QueryLog::RenderJsonLines() const {
  std::vector<QueryLogRecord> records;
  {
    std::lock_guard<std::mutex> lock(mu_);
    records.assign(ring_.begin(), ring_.end());
  }
  std::ostringstream out;
  for (const QueryLogRecord& r : records) {
    out << "{\"kind\":";
    AppendJsonString(&out, r.kind);
    out << ",\"sql\":";
    AppendJsonString(&out, r.sql);
    out << ",\"wall_seconds\":" << r.wall_seconds
        << ",\"modeled_seconds\":" << r.modeled_seconds << ",\"rows\":" << r.rows
        << ",\"bytes_decoded\":" << r.bytes_decoded
        << ",\"stripe_cache_hits\":" << r.stripe_cache_hits
        << ",\"index_probes\":" << r.index_probes
        << ",\"snapshot_age_seconds\":" << r.snapshot_age_seconds
        << ",\"slow\":" << (r.slow ? "true" : "false")
        << ",\"ok\":" << (r.ok ? "true" : "false");
    if (!r.ok) {
      out << ",\"error\":";
      AppendJsonString(&out, r.error);
    }
    out << "}\n";
  }
  return out.str();
}

}  // namespace dtl::obs
