// Cost-model decision audit: every PlanMode::kCostModel choice made by a
// DualTable records the predicted EDIT vs OVERWRITE cost (paper Eq. 1/2)
// next to the measured actuals of the path that ran, so the Section IV cost
// model is continuously checked against reality instead of trusted.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace dtl::obs {

/// One audited DML decision. Plans are stored as strings ("EDIT" /
/// "OVERWRITE") so the audit does not depend on the table layer's enums.
struct CostAuditRecord {
  std::string table;
  std::string statement;  // "UPDATE" | "DELETE"
  double ratio = 0;       // modification ratio the model was fed
  bool ratio_from_hint = false;
  double predicted_edit_seconds = 0;
  double predicted_overwrite_seconds = 0;
  std::string predicted_plan;  // the cheaper path per the model
  std::string executed_plan;   // the path that actually ran
  uint64_t rows_matched = 0;
  double measured_wall_seconds = 0;
  double measured_modeled_seconds = 0;  // JobSeconds over the metered io delta

  /// The model's prediction for the path that executed.
  double PredictedExecutedSeconds() const {
    return executed_plan == "EDIT" ? predicted_edit_seconds
                                   : predicted_overwrite_seconds;
  }
  /// |predicted - measured| / measured against the modelled actuals (both
  /// sides are cluster arithmetic, so the comparison is apples-to-apples);
  /// 0 when nothing was measured.
  double PredictionErrorFraction() const {
    if (measured_modeled_seconds <= 0) return 0;
    const double diff = PredictedExecutedSeconds() - measured_modeled_seconds;
    return (diff < 0 ? -diff : diff) / measured_modeled_seconds;
  }

  std::string ToString() const;
  std::string ToJson() const;
};

/// Append-only, thread-safe record log, owned by the session.
class CostAudit {
 public:
  CostAudit() = default;
  CostAudit(const CostAudit&) = delete;
  CostAudit& operator=(const CostAudit&) = delete;

  void Record(CostAuditRecord record);
  std::vector<CostAuditRecord> Records() const;
  /// Records appended at or after index `cursor` — the calibration loop's
  /// feedback accessor: callers remember the last size() they consumed and
  /// pull only the delta.
  std::vector<CostAuditRecord> RecordsSince(size_t cursor) const;
  /// Mean PredictionErrorFraction() over records at or after `cursor`
  /// (0 when the window is empty). Benches and tests use this to show the
  /// calibrated model's error shrinking versus the open-loop window.
  double MeanPredictionErrorSince(size_t cursor) const;
  size_t size() const;
  void Clear();

  std::string RenderText() const;
  std::string RenderJson() const;

 private:
  mutable std::mutex mu_;
  std::vector<CostAuditRecord> records_;
};

}  // namespace dtl::obs
