#include "obs/recorder.h"

#include <sstream>

#include "obs/metric_names.h"

namespace dtl::obs {

namespace {

// `name{label}` registry key -> ("name", "label").
std::pair<std::string_view, std::string_view> SplitKey(std::string_view key) {
  const size_t brace = key.find('{');
  if (brace == std::string_view::npos || key.back() != '}') return {key, {}};
  return {key.substr(0, brace), key.substr(brace + 1, key.size() - brace - 2)};
}

void AppendPromName(std::ostringstream* out, std::string_view name) {
  *out << "dtl_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    *out << (ok ? c : '_');
  }
}

void AppendPromKey(std::ostringstream* out, std::string_view key) {
  const auto [name, label] = SplitKey(key);
  AppendPromName(out, name);
  if (!label.empty()) *out << "{label=\"" << label << "\"}";
}

// Emit one `# TYPE` line per family (bare name); map iteration is sorted, so
// family members (`name`, `name{a}`, `name{b}`) are adjacent.
void MaybeType(std::ostringstream* out, std::string_view key, const char* type,
               std::string* last_family) {
  const auto [name, label] = SplitKey(key);
  if (*last_family == name) return;
  *last_family = std::string(name);
  *out << "# TYPE ";
  AppendPromName(out, name);
  *out << " " << type << "\n";
}

}  // namespace

MetricsRecorder::MetricsRecorder(MetricsRegistry* registry, RecorderOptions options)
    : registry_(registry),
      options_(options),
      clock_(options.clock != nullptr ? options.clock : DefaultTelemetryClock()),
      samples_counter_(registry->counter(names::kRecorderSamples)) {
  if (options_.capacity == 0) options_.capacity = 1;
}

void MetricsRecorder::Tick() {
  const uint64_t now = clock_->NowMicros();
  registry_->RotateWindows(now);
  samples_counter_->Inc();  // counted before capture so the delta includes it
  MetricsSnapshot snap = registry_->Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  RecorderSample sample;
  sample.t_us = now;
  sample.delta = has_last_ ? snap - last_ : snap;
  last_ = std::move(snap);
  has_last_ = true;
  ring_.push_back(std::move(sample));
  if (ring_.size() > options_.capacity) ring_.pop_front();
  ++total_;
}

std::vector<RecorderSample> MetricsRecorder::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

size_t MetricsRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t MetricsRecorder::total_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::map<std::string, HistogramSnapshot> MetricsRecorder::WindowSnapshots() const {
  return registry_->WindowSnapshots(options_.window_us, clock_->NowMicros());
}

std::string MetricsRecorder::RenderJsonLines() const {
  const std::vector<RecorderSample> samples = Samples();
  std::ostringstream out;
  for (const RecorderSample& s : samples) {
    out << "{\"t_us\":" << s.t_us << ",\"metrics\":" << RenderMetricsJson(s.delta)
        << "}\n";
  }
  return out.str();
}

std::string RenderPrometheusText(const MetricsSnapshot& snap) {
  std::ostringstream out;
  std::string last_family;
  for (const auto& [key, v] : snap.counters) {
    MaybeType(&out, key, "counter", &last_family);
    AppendPromKey(&out, key);
    out << " " << v << "\n";
  }
  last_family.clear();
  for (const auto& [key, v] : snap.gauges) {
    MaybeType(&out, key, "gauge", &last_family);
    AppendPromKey(&out, key);
    out << " " << v << "\n";
  }
  last_family.clear();
  for (const auto& [key, v] : snap.views) {
    MaybeType(&out, key, "gauge", &last_family);
    AppendPromKey(&out, key);
    out << " " << v << "\n";
  }
  last_family.clear();
  for (const auto& [key, h] : snap.histograms) {
    MaybeType(&out, key, "histogram", &last_family);
    const auto [name, label] = SplitKey(key);
    size_t highest = 0;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] != 0) highest = i;
    }
    uint64_t cum = 0;
    for (size_t i = 0; i <= highest && i < h.buckets.size(); ++i) {
      cum += h.buckets[i];
      // Bucket i spans [2^(i-1), 2^i); `le` is its inclusive upper bound.
      const uint64_t le = i == 0 ? 0 : (uint64_t{1} << i) - 1;
      AppendPromName(&out, name);
      out << "_bucket{";
      if (!label.empty()) out << "label=\"" << label << "\",";
      out << "le=\"" << le << "\"} " << cum << "\n";
    }
    AppendPromName(&out, name);
    out << "_bucket{";
    if (!label.empty()) out << "label=\"" << label << "\",";
    out << "le=\"+Inf\"} " << h.count << "\n";
    AppendPromName(&out, name);
    out << "_sum";
    if (!label.empty()) out << "{label=\"" << label << "\"}";
    out << " " << h.sum << "\n";
    AppendPromName(&out, name);
    out << "_count";
    if (!label.empty()) out << "{label=\"" << label << "\"}";
    out << " " << h.count << "\n";
  }
  return out.str();
}

}  // namespace dtl::obs
