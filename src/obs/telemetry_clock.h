// Clock source for the telemetry pipeline: histogram window rotation, the
// metrics recorder, and the adaptive-maintenance trigger all read time
// through this interface so tests can drive them deterministically with a
// manual clock (the same pattern as kv::SchedulerClock).
//
// Lives in src/obs, which is exempt from the no-raw-clock lint (rule 7):
// this is the one place wall time may be read directly.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace dtl::obs {

/// Monotonic microsecond clock.
class TelemetryClock {
 public:
  virtual ~TelemetryClock() = default;
  virtual uint64_t NowMicros() = 0;
};

/// Real steady clock.
class SystemTelemetryClock final : public TelemetryClock {
 public:
  uint64_t NowMicros() override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

/// Test clock: time moves only when told to. Thread-safe so TSan stress
/// tests can advance it while observers read it.
class ManualTelemetryClock final : public TelemetryClock {
 public:
  explicit ManualTelemetryClock(uint64_t start_us = 0) : now_us_(start_us) {}
  uint64_t NowMicros() override { return now_us_.load(std::memory_order_relaxed); }
  void Advance(uint64_t delta_us) {
    now_us_.fetch_add(delta_us, std::memory_order_relaxed);
  }
  void Set(uint64_t now_us) { now_us_.store(now_us, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> now_us_;
};

/// Process-wide default used when no clock is injected.
inline TelemetryClock* DefaultTelemetryClock() {
  static SystemTelemetryClock clock;
  return &clock;
}

}  // namespace dtl::obs
